//===- examples/webserver_hardening.cpp - §6.4 in practice -----------------===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The production-deployment scenario the paper motivates: take a network
/// server as-is (no source changes), transform it with SoftBound, and
/// compare the two checking modes. Full checking for testing; store-only
/// for production — it still stops the attack (every exploit needs an
/// out-of-bounds write) at a fraction of the overhead.
///
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace softbound;

int main() {
  std::printf("== Hardening a web server with SoftBound ==\n\n");
  std::string Src = httpServerSource();

  // Benign traffic, three build pipelines: the deployment choice is just
  // a different pipeline spec over the unmodified source.
  PipelinePlan Stock, Full, Store;
  std::string Err;
  if (!Stock.frontend(Src).appendSpec("optimize", &Err) ||
      !Full.frontend(Src).appendSpec("optimize,softbound,checkopt", &Err) ||
      !Store.frontend(Src).appendSpec("optimize,softbound(store-only),checkopt",
                                      &Err)) {
    std::fprintf(stderr, "bad pipeline spec: %s\n", Err.c_str());
    return 1;
  }

  RunOptions Traffic;
  Traffic.Args = {0};

  RunResult Plain = runSession(Stock, Traffic).Combined;
  std::printf("1. stock server:       %llu cycles, %d requests OK\n",
              static_cast<unsigned long long>(Plain.Counters.Cycles),
              Plain.ExitCode == 0 ? 120 : 0);

  RunResult F = runSession(Full, Traffic).Combined;
  std::printf("2. full checking:      %llu cycles (%.1f%% overhead), "
              "output identical: %s\n",
              static_cast<unsigned long long>(F.Counters.Cycles),
              100.0 * (double(F.Counters.Cycles) /
                           double(Plain.Counters.Cycles) -
                       1.0),
              F.Output == Plain.Output ? "yes" : "NO");

  RunResult S = runSession(Store, Traffic).Combined;
  std::printf("3. store-only (prod):  %llu cycles (%.1f%% overhead), "
              "output identical: %s\n\n",
              static_cast<unsigned long long>(S.Counters.Cycles),
              100.0 * (double(S.Counters.Cycles) /
                           double(Plain.Counters.Cycles) -
                       1.0),
              S.Output == Plain.Output ? "yes" : "NO");

  // Now the attack: a request whose query string overflows a fixed buffer
  // through an unbounded strcpy (the vulnerable code path).
  RunOptions Attack;
  Attack.Args = {1};
  RunResult Hit = runSession(Stock, Attack).Combined;
  std::printf("attack vs stock server:      trap=%s (exploitable "
              "corruption)\n",
              trapName(Hit.Trap));
  RunResult Blocked = runSession(Store, Attack).Combined;
  std::printf("attack vs store-only server: trap=%s\n  %s\n",
              trapName(Blocked.Trap), Blocked.Message.c_str());

  return Blocked.violationDetected() ? 0 : 1;
}
