//===- examples/custom_allocator.cpp - setbound() escape hatch -------------===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// §5.2's programmer-controlled bounds: an arena allocator hands out
/// sub-blocks of one big malloc. Without annotation every sub-block
/// inherits the whole arena's bounds (overflows between neighbours go
/// unseen); a single setbound() call at the allocation site gives each
/// block its own extent.
///
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"

#include <cstdio>

using namespace softbound;

namespace {

const char *MakeProgram(bool UseSetbound) {
  static char Buf[2048];
  std::snprintf(Buf, sizeof(Buf), R"(
char* g_arena;
long g_off;

char* arena_alloc(long n) {
  char* p = g_arena + g_off;
  g_off += (n + 15) / 16 * 16;
  %s
}

int main() {
  g_arena = malloc(1024);
  g_off = 0;
  char* a = arena_alloc(16);
  char* b = arena_alloc(16);
  b[0] = 'B';
  for (int i = 0; i < 20; i++) a[i] = 'A';   /* overflows a into b */
  return b[0] == 'B' ? 0 : 1;
}
)",
                UseSetbound ? "return __setbound(p, n);" : "return p;");
  return Buf;
}

} // namespace

int main() {
  std::printf("== Custom allocators and setbound() (§5.2) ==\n\n");

  auto Instrumented = [](const char *Src) {
    return PipelinePlan().frontend(Src).optimize().softbound().checkOpt();
  };

  // Without setbound: sub-blocks carry the arena's bounds, so the
  // neighbour overflow stays inside the arena and is missed.
  RunResult Plainish = runSession(Instrumented(MakeProgram(false))).Combined;
  std::printf("arena without setbound: trap=%s exit=%lld\n",
              trapName(Plainish.Trap),
              static_cast<long long>(Plainish.ExitCode));
  std::printf("  -> block b was silently corrupted (exit=1), the overflow "
              "stayed in the arena\n\n");

  // With setbound: each block gets its own extent; the overflow traps.
  RunResult Bounded = runSession(Instrumented(MakeProgram(true))).Combined;
  std::printf("arena with setbound:    trap=%s\n  %s\n",
              trapName(Bounded.Trap), Bounded.Message.c_str());

  return Bounded.violationDetected() && Plainish.ok() &&
                 Plainish.ExitCode == 1
             ? 0
             : 1;
}
