//===- examples/quickstart.cpp - five-minute tour ---------------------------===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quickstart: compile a C program with a latent off-by-one, run it
/// unprotected (silent memory corruption), then run it under SoftBound
/// (the overflowing store traps before any corruption). Builds go through
/// the composable PipelinePlan API (driver/PassManager.h); the example
/// also prints the per-pass timings and the instrumented IR of the hot
/// function so you can see the inserted metadata loads/stores and checks.
///
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "ir/IRPrinter.h"

#include <cstdio>

using namespace softbound;

namespace {

const char *Program = R"(
struct account { long balance[4]; long audit_flag; };

long total(struct account* a, int n) {
  long sum = 0;
  /* Off-by-one: reads/writes one slot past balance[4] — the audit flag. */
  for (int i = 0; i <= n; i++) sum += a->balance[i];
  a->balance[n] = sum;            /* clobbers audit_flag when n == 4 */
  return sum;
}

int main() {
  struct account acct;
  acct.audit_flag = 1;
  for (int i = 0; i < 4; i++) acct.balance[i] = 100 * (i + 1);
  long t = total(&acct, 4);
  print_str("total=");   print_int(t);
  print_str(" audit=");  print_int(acct.audit_flag);
  print_char('\n');
  return acct.audit_flag == 1 ? 0 : 1;
}
)";

} // namespace

int main() {
  std::printf("== SoftBound quickstart ==\n\n");

  // 1. Unprotected run: the program "works" but silently corrupts state.
  //    A pipeline is just frontend + optimizer.
  RunResult Plain =
      runSession(PipelinePlan().frontend(Program).optimize()).Combined;
  std::printf("unprotected run:  trap=%s exit=%lld\n", trapName(Plain.Trap),
              static_cast<long long>(Plain.ExitCode));
  std::printf("  output: %s", Plain.Output.c_str());
  std::printf("  -> the audit flag was silently overwritten (exit=1)\n\n");

  // 2. SoftBound full checking: append the instrumentation and the static
  //    check optimizer to the plan; the overflow traps at the faulty
  //    access. (Equivalently: plan.appendSpec("optimize,softbound,checkopt").)
  PipelinePlan ProtectedPlan =
      PipelinePlan().frontend(Program).optimize().softbound().checkOpt();
  BuildResult Prog = ProtectedPlan.build();
  if (!Prog.ok()) {
    std::printf("build failed: %s\n", Prog.errorText().c_str());
    return 1;
  }
  std::printf("SoftBound transformation stats (pipeline: %s):\n",
              ProtectedPlan.spec().c_str());
  const SoftBoundStats &SB = Prog.Pipeline.SB;
  std::printf("  functions transformed: %u (renamed to _sb_*)\n",
              SB.FunctionsTransformed);
  std::printf("  spatial checks inserted: %u\n", SB.ChecksInserted);
  std::printf("  metadata loads/stores:   %u/%u\n", SB.MetaLoadsInserted,
              SB.MetaStoresInserted);
  std::printf("  sub-object bounds shrunk: %u\n", SB.BoundsShrunk);
  for (const auto &T : Prog.Pipeline.Passes)
    std::printf("  pass %-10s %6.2f ms\n", T.Pass.c_str(), T.Millis);
  std::printf("\n");

  RunResult Protected = runSession(Prog).Combined;
  std::printf("protected run:    trap=%s\n", trapName(Protected.Trap));
  std::printf("  message: %s\n\n", Protected.Message.c_str());

  // 3. Show the instrumented IR of the buggy function.
  std::printf("instrumented IR of total():\n%s\n",
              printFunction(*Prog.M->getFunction("_sb_total")).c_str());
  return Protected.violationDetected() ? 0 : 1;
}
