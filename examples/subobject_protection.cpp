//===- examples/subobject_protection.cpp - §2.1's motivating bug -----------===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's §2.1 example: a string overflow inside a struct that
/// overwrites an adjacent function pointer. Object-granularity tools
/// (Jones–Kelly / Mudflap style) cannot see it — the access never leaves
/// the struct. SoftBound's shrunk field bounds catch the write itself;
/// and even with shrinking disabled, the disjoint metadata still catches
/// the corrupted function pointer at the indirect call.
///
//===----------------------------------------------------------------------===//

#include "baselines/ObjectTableChecker.h"
#include "driver/Pipeline.h"

#include <cstdio>

using namespace softbound;

namespace {

// §2.1, verbatim structure:
//   struct { char str[8]; void (*func)(); } node;
//   char* ptr = node.str;
//   strcpy(ptr, "overflow...");
const char *Program = R"(
struct node { char str[8]; int (*func)(int); };

int good(int x) { return x; }

int main() {
  struct node n;
  n.func = good;
  char* ptr = n.str;
  strcpy(ptr, "overflow...");
  return n.func(7);
}
)";

} // namespace

int main() {
  std::printf("== Sub-object overflow (§2.1) across four tools ==\n\n");

  // 1. Unprotected: function pointer corrupted, call goes wild.
  PipelinePlan Uninstrumented = PipelinePlan().frontend(Program).optimize();
  RunResult Plain = runSession(Uninstrumented).Combined;
  std::printf("unprotected:            trap=%s (%s)\n", trapName(Plain.Trap),
              Plain.Message.c_str());

  // 2. Object-table baseline: the write stays inside `struct node`.
  ObjectTableChecker OT;
  RunOptions R;
  R.Checker = &OT;
  R.RedzonePad = 16;
  R.GlobalPad = 16;
  RunResult Obj = runSession(Uninstrumented, R).Combined;
  std::printf("object table (mudflap): trap=%s  <- in-object overflow "
              "invisible\n",
              trapName(Obj.Trap));

  // 3. SoftBound without sub-object shrinking: the write passes, but the
  //    forged function pointer fails the base==bound==ptr encoding check.
  PipelinePlan NoShrink;
  NoShrink.frontend(Program);
  std::string Err;
  if (!NoShrink.appendSpec("optimize,softbound(no-shrink),checkopt", &Err)) {
    std::fprintf(stderr, "bad pipeline spec: %s\n", Err.c_str());
    return 1;
  }
  RunResult NS = runSession(NoShrink).Combined;
  std::printf("softbound, no shrink:   trap=%s  <- caught at the indirect "
              "call\n",
              trapName(NS.Trap));

  // 4. Full SoftBound: the overflowing strcpy itself is rejected.
  RunResult SB =
      runSession(
          PipelinePlan().frontend(Program).optimize().softbound().checkOpt())
          .Combined;
  std::printf("softbound (full):       trap=%s  <- caught at the write\n",
              trapName(SB.Trap));
  std::printf("  %s\n", SB.Message.c_str());

  // The object table must NOT have flagged the overflow (the later crash
  // is the uninstrumented program's own wild call, not a detection).
  return SB.violationDetected() && NS.violationDetected() &&
                 !Obj.violationDetected()
             ? 0
             : 1;
}
