//===- runtime/ShadowSpaceMetadata.cpp - tag-less shadow space -------------===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/ShadowSpaceMetadata.h"

#include "support/Telemetry.h"

using namespace softbound;

void ShadowSpaceMetadata::flushTelemetry() {
  if (!Telem)
    return;
  Telem->counter(TelemetryPrefix + "/pages_materialized") = Pages.size();
  Telem->counter(TelemetryPrefix + "/memory_bytes") = memoryBytes();
}

ShadowSpaceMetadata::Pair *ShadowSpaceMetadata::slotFor(uint64_t Addr,
                                                        bool Materialize) {
  uint64_t Slot = Addr >> 3;
  uint64_t PageId = Slot / SlotsPerPage;
  auto It = Pages.find(PageId);
  if (It == Pages.end()) {
    if (!Materialize)
      return nullptr;
    It = Pages.emplace(PageId, std::make_unique<Pair[]>(SlotsPerPage)).first;
  }
  return &It->second[Slot % SlotsPerPage];
}

void ShadowSpaceMetadata::lookup(uint64_t Addr, uint64_t &Base,
                                 uint64_t &Bound) {
  ++Stats.Lookups;
  if (Pair *P = slotFor(Addr, /*Materialize=*/false)) {
    Base = P->Base;
    Bound = P->Bound;
    return;
  }
  Base = 0;
  Bound = 0;
}

void ShadowSpaceMetadata::update(uint64_t Addr, uint64_t Base,
                                 uint64_t Bound) {
  ++Stats.Updates;
  Pair *P = slotFor(Addr, /*Materialize=*/true);
  P->Base = Base;
  P->Bound = Bound;
}

uint64_t ShadowSpaceMetadata::clearRange(uint64_t Addr, uint64_t Size) {
  uint64_t Cleared = 0;
  for (uint64_t A = Addr & ~7ULL; A < Addr + Size; A += 8) {
    Pair *P = slotFor(A, /*Materialize=*/false);
    if (!P || (P->Base == 0 && P->Bound == 0))
      continue;
    *P = Pair();
    ++Cleared;
  }
  Stats.Clears += Cleared;
  if (Telem) {
    ++Telem->counter(TelemetryPrefix + "/clear_calls");
    Telem->counter(TelemetryPrefix + "/clear_entries") += Cleared;
  }
  return Cleared;
}

uint64_t ShadowSpaceMetadata::copyRange(uint64_t Dst, uint64_t Src,
                                        uint64_t Size) {
  uint64_t Copied = 0;
  for (uint64_t A = Src & ~7ULL; A < Src + Size; A += 8) {
    Pair *SP = slotFor(A, /*Materialize=*/false);
    uint64_t DA = Dst + (A - Src);
    if (SP && (SP->Base || SP->Bound)) {
      update(DA, SP->Base, SP->Bound);
      ++Copied;
    } else if (Pair *DP = slotFor(DA, /*Materialize=*/false)) {
      *DP = Pair();
    }
  }
  if (Telem) {
    ++Telem->counter(TelemetryPrefix + "/copy_calls");
    Telem->counter(TelemetryPrefix + "/copy_entries") += Copied;
  }
  return Copied;
}

uint64_t ShadowSpaceMetadata::memoryBytes() const {
  return Pages.size() * SlotsPerPage * sizeof(Pair);
}

void ShadowSpaceMetadata::reset() {
  Pages.clear();
  Stats = MetadataStats();
}
