//===- runtime/ShadowSpaceMetadata.cpp - tag-less shadow space -------------===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/ShadowSpaceMetadata.h"

#include "support/Telemetry.h"

#include <algorithm>

using namespace softbound;

namespace {

inline uint64_t ld(const std::atomic<uint64_t> &W) {
  return W.load(std::memory_order_relaxed);
}
inline void st(std::atomic<uint64_t> &W, uint64_t V) {
  W.store(V, std::memory_order_relaxed);
}

} // namespace

ShadowSpaceMetadata::ShadowSpaceMetadata(FacilityOptions Options)
    : Opts(Options) {
  Opts.Shards = normalizeShards(Opts.Shards);
  Shards.reserve(Opts.Shards);
  for (unsigned K = 0; K < Opts.Shards; ++K)
    Shards.push_back(std::make_unique<Shard>());
}

void ShadowSpaceMetadata::flushTelemetry() {
  if (!Telem)
    return;
  uint64_t Pages = 0, Acquires = 0, Contended = 0;
  uint64_t SeqReads = 0, SeqRetries = 0;
  for (const auto &S : Shards) {
    Pages += S->PageCount;
    Acquires += S->Lock.Acquires.load(std::memory_order_relaxed);
    Contended += S->Lock.Contended.load(std::memory_order_relaxed);
    SeqReads += S->Seq.Reads.load(std::memory_order_relaxed);
    SeqRetries += S->Seq.Retries.load(std::memory_order_relaxed);
  }
  Telem->counter(TelemetryPrefix + "/pages_materialized") = Pages;
  Telem->counter(TelemetryPrefix + "/memory_bytes") = memoryBytes();
  Telem->counter(TelemetryPrefix + "/clear_calls") =
      ClearCalls.load(std::memory_order_relaxed);
  Telem->counter(TelemetryPrefix + "/clear_entries") =
      ClearEntries.load(std::memory_order_relaxed);
  Telem->counter(TelemetryPrefix + "/copy_calls") =
      CopyCalls.load(std::memory_order_relaxed);
  Telem->counter(TelemetryPrefix + "/copy_entries") =
      CopyEntries.load(std::memory_order_relaxed);
  if (Opts.Model != ConcurrencyModel::SingleThread) {
    Telem->counter(TelemetryPrefix + "/lock_acquires") = Acquires;
    Telem->counter(TelemetryPrefix + "/lock_contended") = Contended;
    for (size_t K = 0; K < Shards.size(); ++K) {
      std::string P = TelemetryPrefix + "/shard" + std::to_string(K);
      Telem->counter(P + "/pages_materialized") = Shards[K]->PageCount;
      Telem->counter(P + "/lock_acquires") =
          Shards[K]->Lock.Acquires.load(std::memory_order_relaxed);
      Telem->counter(P + "/lock_contended") =
          Shards[K]->Lock.Contended.load(std::memory_order_relaxed);
    }
  }
  if (Opts.Model == ConcurrencyModel::LockFreeRead) {
    Telem->counter(TelemetryPrefix + "/seqlock_reads") = SeqReads;
    Telem->counter(TelemetryPrefix + "/seqlock_retries") = SeqRetries;
  }
}

ShadowSpaceMetadata::Pair *ShadowSpaceMetadata::findSlot(const Shard &S,
                                                         uint64_t Addr) const {
  uint64_t Slot = Addr >> 3;
  uint64_t PageId = Slot / SlotsPerPage;
  for (PageNode *N =
           S.Buckets[bucketOf(PageId)].load(std::memory_order_acquire);
       N; N = N->Next)
    if (N->PageId == PageId)
      return &N->Slots[Slot % SlotsPerPage];
  return nullptr;
}

ShadowSpaceMetadata::Pair *
ShadowSpaceMetadata::slotFor(Shard &S, uint64_t Addr, bool Materialize) {
  if (Pair *P = findSlot(S, Addr))
    return P;
  if (!Materialize)
    return nullptr;
  uint64_t Slot = Addr >> 3;
  uint64_t PageId = Slot / SlotsPerPage;
  std::atomic<PageNode *> &Head = S.Buckets[bucketOf(PageId)];
  // The node is complete — zero-filled slots, id, next link — before the
  // release store makes it reachable; a racing lock-free reader therefore
  // sees either the old chain (page miss, null bounds: exactly what
  // zero-fill-on-demand would return) or the finished node.
  S.Nodes.push_back(std::make_unique<PageNode>(
      PageId, Head.load(std::memory_order_relaxed)));
  Head.store(S.Nodes.back().get(), std::memory_order_release);
  ++S.PageCount;
  return &S.Nodes.back()->Slots[Slot % SlotsPerPage];
}

Bounds ShadowSpaceMetadata::lookupLockFree(Shard &S, uint64_t Addr) {
  uint64_t S0 = S.Seq.readBegin();
  for (;;) {
    Bounds B{};
    if (Pair *P = findSlot(S, Addr))
      B = Bounds{ld(P->Base), ld(P->Bound)};
    if (S.Seq.readValidate(S0))
      return B;
    S0 = S.Seq.stableSeq();
  }
}

Bounds ShadowSpaceMetadata::lookup(uint64_t Addr) {
  Shard &S = *Shards[shardOf(Addr)];
  S.Lookups.fetch_add(1, std::memory_order_relaxed);
  if (Opts.Model == ConcurrencyModel::LockFreeRead)
    return lookupLockFree(S, Addr);
  ShardSharedGuard Guard(readLockOf(S));
  if (Pair *P = slotFor(S, Addr, /*Materialize=*/false))
    return Bounds{ld(P->Base), ld(P->Bound)};
  return Bounds{};
}

void ShadowSpaceMetadata::update(uint64_t Addr, Bounds B) {
  Shard &S = *Shards[shardOf(Addr)];
  ShardExclusiveGuard Guard(lockOf(S));
  S.Updates.fetch_add(1, std::memory_order_relaxed);
  SeqlockWriteScope Writing(seqOf(S));
  Pair *P = slotFor(S, Addr, /*Materialize=*/true);
  st(P->Base, B.Base);
  st(P->Bound, B.Bound);
}

uint64_t ShadowSpaceMetadata::clearRange(uint64_t Addr, uint64_t Size) {
  uint64_t Cleared = 0;
  uint64_t A = Addr & ~7ULL;
  uint64_t End = Addr + Size;
  while (A < End) {
    // One exclusive acquisition per stripe-sized chunk.
    uint64_t StripeEnd = ((A >> ShardStripeLog2) + 1) << ShardStripeLog2;
    uint64_t ChunkEnd = std::min(End, StripeEnd);
    Shard &S = *Shards[shardOf(A)];
    {
      ShardExclusiveGuard Guard(lockOf(S));
      SeqlockWriteScope Writing(seqOf(S));
      uint64_t ChunkCleared = 0;
      for (uint64_t A2 = A; A2 < ChunkEnd; A2 += 8) {
        Pair *P = slotFor(S, A2, /*Materialize=*/false);
        if (!P || (ld(P->Base) == 0 && ld(P->Bound) == 0))
          continue;
        st(P->Base, 0);
        st(P->Bound, 0);
        ++ChunkCleared;
      }
      S.Clears.fetch_add(ChunkCleared, std::memory_order_relaxed);
      Cleared += ChunkCleared;
    }
    A += ((ChunkEnd - A) + 7) & ~7ULL;
  }
  if (Telem) {
    ClearCalls.fetch_add(1, std::memory_order_relaxed);
    ClearEntries.fetch_add(Cleared, std::memory_order_relaxed);
  }
  return Cleared;
}

uint64_t ShadowSpaceMetadata::copyRange(uint64_t Dst, uint64_t Src,
                                        uint64_t Size) {
  uint64_t Copied = 0;
  for (uint64_t A = Src & ~7ULL; A < Src + Size; A += 8) {
    uint64_t DA = Dst + (A - Src);
    bool Have = false;
    Bounds B;
    {
      // Write-path operation: the source read keeps its shared
      // acquisition in both concurrent models (see HashTableMetadata's
      // copyRange for the rationale).
      Shard &S = *Shards[shardOf(A)];
      ShardSharedGuard Guard(lockOf(S));
      Pair *SP = slotFor(S, A, /*Materialize=*/false);
      if (SP && (ld(SP->Base) || ld(SP->Bound))) {
        B = Bounds{ld(SP->Base), ld(SP->Bound)};
        Have = true;
      }
    }
    if (Have) {
      update(DA, B);
      ++Copied;
    } else {
      Shard &DS = *Shards[shardOf(DA)];
      ShardExclusiveGuard Guard(lockOf(DS));
      SeqlockWriteScope Writing(seqOf(DS));
      if (Pair *DP = slotFor(DS, DA, /*Materialize=*/false)) {
        st(DP->Base, 0);
        st(DP->Bound, 0);
      }
    }
  }
  if (Telem) {
    CopyCalls.fetch_add(1, std::memory_order_relaxed);
    CopyEntries.fetch_add(Copied, std::memory_order_relaxed);
  }
  return Copied;
}

uint64_t ShadowSpaceMetadata::memoryBytes() const {
  uint64_t Bytes = 0;
  for (const auto &S : Shards) {
    ShardSharedGuard Guard(lockOf(*S));
    Bytes += S->PageCount * SlotsPerPage * sizeof(Pair);
  }
  return Bytes;
}

MetadataStats ShadowSpaceMetadata::stats() const {
  MetadataStats Out;
  for (const auto &S : Shards) {
    Out.Lookups += S->Lookups.load(std::memory_order_relaxed);
    Out.Updates += S->Updates.load(std::memory_order_relaxed);
    Out.Clears += S->Clears.load(std::memory_order_relaxed);
    Out.LockAcquires += S->Lock.Acquires.load(std::memory_order_relaxed);
    Out.LockContended += S->Lock.Contended.load(std::memory_order_relaxed);
    Out.SeqlockReads += S->Seq.Reads.load(std::memory_order_relaxed);
    Out.SeqlockRetries += S->Seq.Retries.load(std::memory_order_relaxed);
  }
  return Out;
}

void ShadowSpaceMetadata::reset() {
  // Quiescence required (MetadataFacility contract): published page
  // nodes are reclaimed here, so no lock-free reader may be in flight.
  for (auto &S : Shards) {
    ShardExclusiveGuard Guard(lockOf(*S));
    for (auto &Head : S->Buckets)
      Head.store(nullptr, std::memory_order_relaxed);
    S->Nodes.clear();
    S->PageCount = 0;
    S->Lookups.store(0, std::memory_order_relaxed);
    S->Updates.store(0, std::memory_order_relaxed);
    S->Clears.store(0, std::memory_order_relaxed);
    S->Lock.Acquires.store(0, std::memory_order_relaxed);
    S->Lock.Contended.store(0, std::memory_order_relaxed);
    S->Seq.Seq.store(0, std::memory_order_relaxed);
    S->Seq.Reads.store(0, std::memory_order_relaxed);
    S->Seq.Retries.store(0, std::memory_order_relaxed);
  }
  ClearCalls.store(0, std::memory_order_relaxed);
  ClearEntries.store(0, std::memory_order_relaxed);
  CopyCalls.store(0, std::memory_order_relaxed);
  CopyEntries.store(0, std::memory_order_relaxed);
}
