//===- runtime/ShadowSpaceMetadata.cpp - tag-less shadow space -------------===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/ShadowSpaceMetadata.h"

#include "support/Telemetry.h"

#include <algorithm>

using namespace softbound;

ShadowSpaceMetadata::ShadowSpaceMetadata(FacilityOptions Options)
    : Opts(Options) {
  Opts.Shards = normalizeShards(Opts.Shards);
  Shards.reserve(Opts.Shards);
  for (unsigned K = 0; K < Opts.Shards; ++K)
    Shards.push_back(std::make_unique<Shard>());
}

void ShadowSpaceMetadata::flushTelemetry() {
  if (!Telem)
    return;
  uint64_t Pages = 0, Acquires = 0, Contended = 0;
  for (const auto &S : Shards) {
    Pages += S->Pages.size();
    Acquires += S->Lock.Acquires.load(std::memory_order_relaxed);
    Contended += S->Lock.Contended.load(std::memory_order_relaxed);
  }
  Telem->counter(TelemetryPrefix + "/pages_materialized") = Pages;
  Telem->counter(TelemetryPrefix + "/memory_bytes") = memoryBytes();
  Telem->counter(TelemetryPrefix + "/clear_calls") =
      ClearCalls.load(std::memory_order_relaxed);
  Telem->counter(TelemetryPrefix + "/clear_entries") =
      ClearEntries.load(std::memory_order_relaxed);
  Telem->counter(TelemetryPrefix + "/copy_calls") =
      CopyCalls.load(std::memory_order_relaxed);
  Telem->counter(TelemetryPrefix + "/copy_entries") =
      CopyEntries.load(std::memory_order_relaxed);
  if (Opts.Model == ConcurrencyModel::Sharded) {
    Telem->counter(TelemetryPrefix + "/lock_acquires") = Acquires;
    Telem->counter(TelemetryPrefix + "/lock_contended") = Contended;
    for (size_t K = 0; K < Shards.size(); ++K) {
      std::string P = TelemetryPrefix + "/shard" + std::to_string(K);
      Telem->counter(P + "/pages_materialized") = Shards[K]->Pages.size();
      Telem->counter(P + "/lock_acquires") =
          Shards[K]->Lock.Acquires.load(std::memory_order_relaxed);
      Telem->counter(P + "/lock_contended") =
          Shards[K]->Lock.Contended.load(std::memory_order_relaxed);
    }
  }
}

ShadowSpaceMetadata::Pair *
ShadowSpaceMetadata::slotFor(Shard &S, uint64_t Addr, bool Materialize) {
  uint64_t Slot = Addr >> 3;
  uint64_t PageId = Slot / SlotsPerPage;
  auto It = S.Pages.find(PageId);
  if (It == S.Pages.end()) {
    if (!Materialize)
      return nullptr;
    It = S.Pages.emplace(PageId, std::make_unique<Pair[]>(SlotsPerPage)).first;
  }
  return &It->second[Slot % SlotsPerPage];
}

Bounds ShadowSpaceMetadata::lookup(uint64_t Addr) {
  Shard &S = *Shards[shardOf(Addr)];
  ShardSharedGuard Guard(lockOf(S));
  S.Lookups.fetch_add(1, std::memory_order_relaxed);
  if (Pair *P = slotFor(S, Addr, /*Materialize=*/false))
    return Bounds{P->Base, P->Bound};
  return Bounds{};
}

void ShadowSpaceMetadata::update(uint64_t Addr, Bounds B) {
  Shard &S = *Shards[shardOf(Addr)];
  ShardExclusiveGuard Guard(lockOf(S));
  S.Updates.fetch_add(1, std::memory_order_relaxed);
  Pair *P = slotFor(S, Addr, /*Materialize=*/true);
  P->Base = B.Base;
  P->Bound = B.Bound;
}

uint64_t ShadowSpaceMetadata::clearRange(uint64_t Addr, uint64_t Size) {
  uint64_t Cleared = 0;
  uint64_t A = Addr & ~7ULL;
  uint64_t End = Addr + Size;
  while (A < End) {
    // One exclusive acquisition per stripe-sized chunk.
    uint64_t StripeEnd = ((A >> ShardStripeLog2) + 1) << ShardStripeLog2;
    uint64_t ChunkEnd = std::min(End, StripeEnd);
    Shard &S = *Shards[shardOf(A)];
    {
      ShardExclusiveGuard Guard(lockOf(S));
      uint64_t ChunkCleared = 0;
      for (uint64_t A2 = A; A2 < ChunkEnd; A2 += 8) {
        Pair *P = slotFor(S, A2, /*Materialize=*/false);
        if (!P || (P->Base == 0 && P->Bound == 0))
          continue;
        *P = Pair();
        ++ChunkCleared;
      }
      S.Clears.fetch_add(ChunkCleared, std::memory_order_relaxed);
      Cleared += ChunkCleared;
    }
    A += ((ChunkEnd - A) + 7) & ~7ULL;
  }
  if (Telem) {
    ClearCalls.fetch_add(1, std::memory_order_relaxed);
    ClearEntries.fetch_add(Cleared, std::memory_order_relaxed);
  }
  return Cleared;
}

uint64_t ShadowSpaceMetadata::copyRange(uint64_t Dst, uint64_t Src,
                                        uint64_t Size) {
  uint64_t Copied = 0;
  for (uint64_t A = Src & ~7ULL; A < Src + Size; A += 8) {
    uint64_t DA = Dst + (A - Src);
    bool Have = false;
    Bounds B;
    {
      Shard &S = *Shards[shardOf(A)];
      ShardSharedGuard Guard(lockOf(S));
      Pair *SP = slotFor(S, A, /*Materialize=*/false);
      if (SP && (SP->Base || SP->Bound)) {
        B = Bounds{SP->Base, SP->Bound};
        Have = true;
      }
    }
    if (Have) {
      update(DA, B);
      ++Copied;
    } else {
      Shard &DS = *Shards[shardOf(DA)];
      ShardExclusiveGuard Guard(lockOf(DS));
      if (Pair *DP = slotFor(DS, DA, /*Materialize=*/false))
        *DP = Pair();
    }
  }
  if (Telem) {
    CopyCalls.fetch_add(1, std::memory_order_relaxed);
    CopyEntries.fetch_add(Copied, std::memory_order_relaxed);
  }
  return Copied;
}

uint64_t ShadowSpaceMetadata::memoryBytes() const {
  uint64_t Bytes = 0;
  for (const auto &S : Shards) {
    ShardSharedGuard Guard(lockOf(*S));
    Bytes += S->Pages.size() * SlotsPerPage * sizeof(Pair);
  }
  return Bytes;
}

MetadataStats ShadowSpaceMetadata::stats() const {
  MetadataStats Out;
  for (const auto &S : Shards) {
    Out.Lookups += S->Lookups.load(std::memory_order_relaxed);
    Out.Updates += S->Updates.load(std::memory_order_relaxed);
    Out.Clears += S->Clears.load(std::memory_order_relaxed);
    Out.LockAcquires += S->Lock.Acquires.load(std::memory_order_relaxed);
    Out.LockContended += S->Lock.Contended.load(std::memory_order_relaxed);
  }
  return Out;
}

void ShadowSpaceMetadata::reset() {
  for (auto &S : Shards) {
    ShardExclusiveGuard Guard(lockOf(*S));
    S->Pages.clear();
    S->Lookups.store(0, std::memory_order_relaxed);
    S->Updates.store(0, std::memory_order_relaxed);
    S->Clears.store(0, std::memory_order_relaxed);
    S->Lock.Acquires.store(0, std::memory_order_relaxed);
    S->Lock.Contended.store(0, std::memory_order_relaxed);
  }
  ClearCalls.store(0, std::memory_order_relaxed);
  ClearEntries.store(0, std::memory_order_relaxed);
  CopyCalls.store(0, std::memory_order_relaxed);
  CopyEntries.store(0, std::memory_order_relaxed);
}
