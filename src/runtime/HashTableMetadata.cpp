//===- runtime/HashTableMetadata.cpp - open-hash metadata ------------------===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/HashTableMetadata.h"

#include "support/Telemetry.h"

#include <algorithm>
#include <cassert>

using namespace softbound;

HashTableMetadata::HashTableMetadata(unsigned InitialLog2Size,
                                     FacilityOptions Options)
    : Opts(Options) {
  Opts.Shards = normalizeShards(Opts.Shards);
  Shards.reserve(Opts.Shards);
  for (unsigned K = 0; K < Opts.Shards; ++K) {
    Shards.push_back(std::make_unique<Shard>());
    Shards.back()->Entries.resize(size_t(1) << InitialLog2Size);
  }
}

void HashTableMetadata::attachTelemetry(Telemetry *T,
                                        const std::string &Prefix) {
  MetadataFacility::attachTelemetry(T, Prefix);
  for (size_t K = 0; K < Shards.size(); ++K) {
    std::string ShardPrefix =
        Shards.size() == 1 ? Prefix : Prefix + "/shard" + std::to_string(K);
    Shards[K]->ProbeHist =
        T ? &T->histogram(ShardPrefix + "/probe_length") : nullptr;
  }
}

void HashTableMetadata::flushTelemetry() {
  if (!Telem)
    return;
  uint64_t Live = 0, TableEntries = 0, Collisions = 0;
  uint64_t Acquires = 0, Contended = 0;
  for (const auto &S : Shards) {
    Live += S->Live;
    TableEntries += S->Entries.size();
    Collisions += S->Collisions.load(std::memory_order_relaxed);
    Acquires += S->Lock.Acquires.load(std::memory_order_relaxed);
    Contended += S->Lock.Contended.load(std::memory_order_relaxed);
  }
  Telem->counter(TelemetryPrefix + "/live_entries") = Live;
  Telem->counter(TelemetryPrefix + "/table_entries") = TableEntries;
  Telem->counter(TelemetryPrefix + "/load_factor_permille") =
      static_cast<uint64_t>(loadFactor() * 1000.0);
  Telem->counter(TelemetryPrefix + "/memory_bytes") = memoryBytes();
  Telem->counter(TelemetryPrefix + "/collisions") = Collisions;
  Telem->counter(TelemetryPrefix + "/clear_calls") =
      ClearCalls.load(std::memory_order_relaxed);
  Telem->counter(TelemetryPrefix + "/clear_entries") =
      ClearEntries.load(std::memory_order_relaxed);
  Telem->counter(TelemetryPrefix + "/copy_calls") =
      CopyCalls.load(std::memory_order_relaxed);
  Telem->counter(TelemetryPrefix + "/copy_entries") =
      CopyEntries.load(std::memory_order_relaxed);
  if (Opts.Model == ConcurrencyModel::Sharded) {
    Telem->counter(TelemetryPrefix + "/lock_acquires") = Acquires;
    Telem->counter(TelemetryPrefix + "/lock_contended") = Contended;
    for (size_t K = 0; K < Shards.size(); ++K) {
      std::string P = TelemetryPrefix + "/shard" + std::to_string(K);
      Telem->counter(P + "/live_entries") = Shards[K]->Live;
      Telem->counter(P + "/lock_acquires") =
          Shards[K]->Lock.Acquires.load(std::memory_order_relaxed);
      Telem->counter(P + "/lock_contended") =
          Shards[K]->Lock.Contended.load(std::memory_order_relaxed);
    }
  }
}

HashTableMetadata::Entry *HashTableMetadata::find(Shard &S, uint64_t Addr,
                                                  bool ForInsert) {
  // Tag is the slot address itself; addresses 0 and 1 never hold pointers.
  size_t Idx = hash(Addr, S.Entries.size());
  Entry *FirstTombstone = nullptr;
  for (size_t Probe = 0; Probe < S.Entries.size(); ++Probe) {
    Entry &E = S.Entries[(Idx + Probe) & (S.Entries.size() - 1)];
    if (E.Tag == Addr) {
      if (Probe)
        S.Collisions.fetch_add(Probe, std::memory_order_relaxed);
      if (S.ProbeHist)
        S.ProbeHist->record(Probe + 1);
      return &E;
    }
    if (E.Tag == EmptyTag) {
      if (Probe)
        S.Collisions.fetch_add(Probe, std::memory_order_relaxed);
      if (S.ProbeHist)
        S.ProbeHist->record(Probe + 1);
      if (ForInsert)
        return FirstTombstone ? FirstTombstone : &E;
      return nullptr;
    }
    if (E.Tag == TombstoneTag && !FirstTombstone)
      FirstTombstone = &E;
  }
  if (S.ProbeHist)
    S.ProbeHist->record(S.Entries.size());
  return ForInsert ? FirstTombstone : nullptr;
}

Bounds HashTableMetadata::lookup(uint64_t Addr) {
  Shard &S = *Shards[shardOf(Addr)];
  ShardSharedGuard Guard(lockOf(S));
  S.Lookups.fetch_add(1, std::memory_order_relaxed);
  if (Entry *E = find(S, Addr, /*ForInsert=*/false))
    return Bounds{E->Base, E->Bound};
  return Bounds{};
}

void HashTableMetadata::lookupN(const uint64_t *Addrs, Bounds *Out, size_t N) {
  // One shared acquisition per run of same-shard addresses, not per slot.
  size_t I = 0;
  while (I < N) {
    Shard &S = *Shards[shardOf(Addrs[I])];
    ShardSharedGuard Guard(lockOf(S));
    do {
      S.Lookups.fetch_add(1, std::memory_order_relaxed);
      Entry *E = find(S, Addrs[I], /*ForInsert=*/false);
      Out[I] = E ? Bounds{E->Base, E->Bound} : Bounds{};
      ++I;
    } while (I < N && Shards[shardOf(Addrs[I])].get() == &S);
  }
}

void HashTableMetadata::updateLocked(Shard &S, uint64_t Addr, Bounds B) {
  S.Updates.fetch_add(1, std::memory_order_relaxed);
  if (S.Used * 2 >= S.Entries.size())
    grow(S);
  Entry *E = find(S, Addr, /*ForInsert=*/true);
  assert(E && "hash table full despite growth policy");
  if (E->Tag != Addr) {
    if (E->Tag == EmptyTag)
      ++S.Used;
    E->Tag = Addr;
    ++S.Live;
  }
  E->Base = B.Base;
  E->Bound = B.Bound;
}

void HashTableMetadata::update(uint64_t Addr, Bounds B) {
  Shard &S = *Shards[shardOf(Addr)];
  ShardExclusiveGuard Guard(lockOf(S));
  updateLocked(S, Addr, B);
}

void HashTableMetadata::updateN(const uint64_t *Addrs, const Bounds *In,
                                size_t N) {
  size_t I = 0;
  while (I < N) {
    Shard &S = *Shards[shardOf(Addrs[I])];
    ShardExclusiveGuard Guard(lockOf(S));
    do {
      updateLocked(S, Addrs[I], In[I]);
      ++I;
    } while (I < N && Shards[shardOf(Addrs[I])].get() == &S);
  }
}

uint64_t HashTableMetadata::clearChunkLocked(Shard &S, uint64_t Addr,
                                             uint64_t Size) {
  uint64_t Cleared = 0;
  for (uint64_t A = Addr; A < Addr + Size; A += 8) {
    Entry *E = find(S, A, /*ForInsert=*/false);
    if (!E)
      continue;
    E->Tag = TombstoneTag;
    E->Base = E->Bound = 0;
    --S.Live;
    ++Cleared;
  }
  S.Clears.fetch_add(Cleared, std::memory_order_relaxed);
  return Cleared;
}

uint64_t HashTableMetadata::clearRange(uint64_t Addr, uint64_t Size) {
  uint64_t Cleared = 0;
  uint64_t A = Addr & ~7ULL;
  uint64_t End = Addr + Size;
  while (A < End) {
    // [A, ChunkEnd) stays inside one stripe, so one exclusive acquisition
    // covers the whole chunk.
    uint64_t StripeEnd = ((A >> ShardStripeLog2) + 1) << ShardStripeLog2;
    uint64_t ChunkEnd = std::min(End, StripeEnd);
    Shard &S = *Shards[shardOf(A)];
    {
      ShardExclusiveGuard Guard(lockOf(S));
      Cleared += clearChunkLocked(S, A, ChunkEnd - A);
    }
    // Advance to the first 8-aligned slot at or past the chunk end.
    A += ((ChunkEnd - A) + 7) & ~7ULL;
  }
  if (Telem) {
    ClearCalls.fetch_add(1, std::memory_order_relaxed);
    ClearEntries.fetch_add(Cleared, std::memory_order_relaxed);
  }
  return Cleared;
}

uint64_t HashTableMetadata::copyRange(uint64_t Dst, uint64_t Src,
                                      uint64_t Size) {
  if (Telem)
    CopyCalls.fetch_add(1, std::memory_order_relaxed);
  uint64_t Copied = 0;
  for (uint64_t Off = 0; Off + 8 <= Size + 7; Off += 8) {
    uint64_t SA = (Src & ~7ULL) + Off;
    if (SA >= Src + Size)
      break;
    uint64_t DA = Dst + (SA - Src);
    bool Have = false;
    Bounds B;
    {
      Shard &S = *Shards[shardOf(SA)];
      ShardSharedGuard Guard(lockOf(S));
      if (Entry *E = find(S, SA, /*ForInsert=*/false)) {
        B = Bounds{E->Base, E->Bound};
        Have = true;
      }
    }
    if (Have) {
      update(DA, B);
      ++Copied;
    } else {
      // Destination slots whose source had no metadata must be cleared, or
      // stale bounds could leak into the copied region.
      clearRange(DA, 8);
    }
  }
  if (Telem)
    CopyEntries.fetch_add(Copied, std::memory_order_relaxed);
  return Copied;
}

uint64_t HashTableMetadata::memoryBytes() const {
  uint64_t Bytes = 0;
  for (const auto &S : Shards) {
    ShardSharedGuard Guard(lockOf(*S));
    Bytes += S->Entries.size() * sizeof(Entry);
  }
  return Bytes;
}

double HashTableMetadata::loadFactor() const {
  uint64_t Live = 0, TableEntries = 0;
  for (const auto &S : Shards) {
    ShardSharedGuard Guard(lockOf(*S));
    Live += S->Live;
    TableEntries += S->Entries.size();
  }
  return TableEntries ? static_cast<double>(Live) /
                            static_cast<double>(TableEntries)
                      : 0.0;
}

MetadataStats HashTableMetadata::stats() const {
  MetadataStats Out;
  for (const auto &S : Shards) {
    Out.Lookups += S->Lookups.load(std::memory_order_relaxed);
    Out.Updates += S->Updates.load(std::memory_order_relaxed);
    Out.Clears += S->Clears.load(std::memory_order_relaxed);
    Out.Collisions += S->Collisions.load(std::memory_order_relaxed);
    Out.LockAcquires += S->Lock.Acquires.load(std::memory_order_relaxed);
    Out.LockContended += S->Lock.Contended.load(std::memory_order_relaxed);
  }
  return Out;
}

void HashTableMetadata::reset() {
  for (auto &S : Shards) {
    ShardExclusiveGuard Guard(lockOf(*S));
    for (auto &E : S->Entries)
      E = Entry();
    S->Live = S->Used = 0;
    S->Lookups.store(0, std::memory_order_relaxed);
    S->Updates.store(0, std::memory_order_relaxed);
    S->Clears.store(0, std::memory_order_relaxed);
    S->Collisions.store(0, std::memory_order_relaxed);
    S->Lock.Acquires.store(0, std::memory_order_relaxed);
    S->Lock.Contended.store(0, std::memory_order_relaxed);
  }
  ClearCalls.store(0, std::memory_order_relaxed);
  ClearEntries.store(0, std::memory_order_relaxed);
  CopyCalls.store(0, std::memory_order_relaxed);
  CopyEntries.store(0, std::memory_order_relaxed);
}

void HashTableMetadata::grow(Shard &S) {
  std::vector<Entry> Old;
  Old.swap(S.Entries);
  S.Entries.resize(Old.size() * 2);
  S.Live = S.Used = 0;
  for (const auto &E : Old) {
    if (E.Tag == EmptyTag || E.Tag == TombstoneTag)
      continue;
    Entry *N = find(S, E.Tag, /*ForInsert=*/true);
    N->Tag = E.Tag;
    N->Base = E.Base;
    N->Bound = E.Bound;
    ++S.Live;
    ++S.Used;
  }
}
