//===- runtime/HashTableMetadata.cpp - open-hash metadata ------------------===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/HashTableMetadata.h"

#include "support/Telemetry.h"

#include <algorithm>
#include <cassert>

using namespace softbound;

namespace {

// Entry words are relaxed atomics everywhere (see the header); these
// shorthands keep the probe loops readable.
inline uint64_t ld(const std::atomic<uint64_t> &W) {
  return W.load(std::memory_order_relaxed);
}
inline void st(std::atomic<uint64_t> &W, uint64_t V) {
  W.store(V, std::memory_order_relaxed);
}

} // namespace

HashTableMetadata::HashTableMetadata(unsigned InitialLog2Size,
                                     FacilityOptions Options)
    : Opts(Options) {
  Opts.Shards = normalizeShards(Opts.Shards);
  Shards.reserve(Opts.Shards);
  for (unsigned K = 0; K < Opts.Shards; ++K) {
    Shards.push_back(std::make_unique<Shard>());
    Shard &S = *Shards.back();
    S.Tables.push_back(std::make_unique<Table>(size_t(1) << InitialLog2Size));
    S.Tab.store(S.Tables.back().get(), std::memory_order_release);
  }
}

void HashTableMetadata::attachTelemetry(Telemetry *T,
                                        const std::string &Prefix) {
  MetadataFacility::attachTelemetry(T, Prefix);
  for (size_t K = 0; K < Shards.size(); ++K) {
    std::string ShardPrefix =
        Shards.size() == 1 ? Prefix : Prefix + "/shard" + std::to_string(K);
    Shards[K]->ProbeHist =
        T ? &T->histogram(ShardPrefix + "/probe_length") : nullptr;
  }
}

void HashTableMetadata::flushTelemetry() {
  if (!Telem)
    return;
  uint64_t Live = 0, TableEntries = 0, Collisions = 0;
  uint64_t Acquires = 0, Contended = 0, SeqReads = 0, SeqRetries = 0;
  for (const auto &S : Shards) {
    Live += S->Live;
    TableEntries += S->Tab.load(std::memory_order_relaxed)->Size;
    Collisions += S->Collisions.load(std::memory_order_relaxed);
    Acquires += S->Lock.Acquires.load(std::memory_order_relaxed);
    Contended += S->Lock.Contended.load(std::memory_order_relaxed);
    SeqReads += S->Seq.Reads.load(std::memory_order_relaxed);
    SeqRetries += S->Seq.Retries.load(std::memory_order_relaxed);
  }
  Telem->counter(TelemetryPrefix + "/live_entries") = Live;
  Telem->counter(TelemetryPrefix + "/table_entries") = TableEntries;
  Telem->counter(TelemetryPrefix + "/load_factor_permille") =
      static_cast<uint64_t>(loadFactor() * 1000.0);
  Telem->counter(TelemetryPrefix + "/memory_bytes") = memoryBytes();
  Telem->counter(TelemetryPrefix + "/collisions") = Collisions;
  Telem->counter(TelemetryPrefix + "/clear_calls") =
      ClearCalls.load(std::memory_order_relaxed);
  Telem->counter(TelemetryPrefix + "/clear_entries") =
      ClearEntries.load(std::memory_order_relaxed);
  Telem->counter(TelemetryPrefix + "/copy_calls") =
      CopyCalls.load(std::memory_order_relaxed);
  Telem->counter(TelemetryPrefix + "/copy_entries") =
      CopyEntries.load(std::memory_order_relaxed);
  if (Opts.Model != ConcurrencyModel::SingleThread) {
    Telem->counter(TelemetryPrefix + "/lock_acquires") = Acquires;
    Telem->counter(TelemetryPrefix + "/lock_contended") = Contended;
    for (size_t K = 0; K < Shards.size(); ++K) {
      std::string P = TelemetryPrefix + "/shard" + std::to_string(K);
      Telem->counter(P + "/live_entries") = Shards[K]->Live;
      Telem->counter(P + "/lock_acquires") =
          Shards[K]->Lock.Acquires.load(std::memory_order_relaxed);
      Telem->counter(P + "/lock_contended") =
          Shards[K]->Lock.Contended.load(std::memory_order_relaxed);
    }
  }
  if (Opts.Model == ConcurrencyModel::LockFreeRead) {
    Telem->counter(TelemetryPrefix + "/seqlock_reads") = SeqReads;
    Telem->counter(TelemetryPrefix + "/seqlock_retries") = SeqRetries;
  }
}

HashTableMetadata::Entry *HashTableMetadata::find(Shard &S, uint64_t Addr,
                                                  bool ForInsert) {
  // Tag is the slot address itself; addresses 0 and 1 never hold pointers.
  Table &T = *S.Tab.load(std::memory_order_relaxed);
  size_t Idx = hash(Addr, T.Size);
  Entry *FirstTombstone = nullptr;
  for (size_t Probe = 0; Probe < T.Size; ++Probe) {
    Entry &E = T.Slots[(Idx + Probe) & (T.Size - 1)];
    uint64_t Tag = ld(E.Tag);
    if (Tag == Addr) {
      if (Probe)
        S.Collisions.fetch_add(Probe, std::memory_order_relaxed);
      if (S.ProbeHist)
        S.ProbeHist->record(Probe + 1);
      return &E;
    }
    if (Tag == EmptyTag) {
      if (Probe)
        S.Collisions.fetch_add(Probe, std::memory_order_relaxed);
      if (S.ProbeHist)
        S.ProbeHist->record(Probe + 1);
      if (ForInsert)
        return FirstTombstone ? FirstTombstone : &E;
      return nullptr;
    }
    if (Tag == TombstoneTag && !FirstTombstone)
      FirstTombstone = &E;
  }
  if (S.ProbeHist)
    S.ProbeHist->record(T.Size);
  return ForInsert ? FirstTombstone : nullptr;
}

Bounds HashTableMetadata::lookupLockFree(Shard &S, uint64_t Addr) {
  // The classic seqlock read: copy the candidate entry between two
  // sequence reads and retry when a writer's window overlapped. The
  // probe itself acquires nothing; the table generation is published
  // through an atomic pointer so even a concurrent grow() cannot leave
  // this probe on a freed array (old generations are retired, not
  // freed). Probe statistics are recorded per attempt — a retried read
  // really does re-walk the chain, and the histogram should say so.
  uint64_t S0 = S.Seq.readBegin();
  for (;;) {
    Bounds B{};
    Table &T = *S.Tab.load(std::memory_order_acquire);
    size_t Idx = hash(Addr, T.Size);
    for (size_t Probe = 0; Probe < T.Size; ++Probe) {
      Entry &E = T.Slots[(Idx + Probe) & (T.Size - 1)];
      uint64_t Tag = ld(E.Tag);
      if (Tag == Addr) {
        B = Bounds{ld(E.Base), ld(E.Bound)};
        if (Probe)
          S.Collisions.fetch_add(Probe, std::memory_order_relaxed);
        if (S.ProbeHist)
          S.ProbeHist->record(Probe + 1);
        break;
      }
      if (Tag == EmptyTag) {
        if (Probe)
          S.Collisions.fetch_add(Probe, std::memory_order_relaxed);
        if (S.ProbeHist)
          S.ProbeHist->record(Probe + 1);
        break;
      }
    }
    if (S.Seq.readValidate(S0))
      return B;
    S0 = S.Seq.stableSeq();
  }
}

Bounds HashTableMetadata::lookup(uint64_t Addr) {
  Shard &S = *Shards[shardOf(Addr)];
  S.Lookups.fetch_add(1, std::memory_order_relaxed);
  if (Opts.Model == ConcurrencyModel::LockFreeRead)
    return lookupLockFree(S, Addr);
  ShardSharedGuard Guard(readLockOf(S));
  if (Entry *E = find(S, Addr, /*ForInsert=*/false))
    return Bounds{ld(E->Base), ld(E->Bound)};
  return Bounds{};
}

void HashTableMetadata::lookupN(const uint64_t *Addrs, Bounds *Out, size_t N) {
  if (Opts.Model == ConcurrencyModel::LockFreeRead) {
    // No lock to amortize: every slot is an independent seqlock read.
    for (size_t I = 0; I < N; ++I) {
      Shard &S = *Shards[shardOf(Addrs[I])];
      S.Lookups.fetch_add(1, std::memory_order_relaxed);
      Out[I] = lookupLockFree(S, Addrs[I]);
    }
    return;
  }
  // One shared acquisition per run of same-shard addresses, not per slot.
  size_t I = 0;
  while (I < N) {
    Shard &S = *Shards[shardOf(Addrs[I])];
    ShardSharedGuard Guard(readLockOf(S));
    do {
      S.Lookups.fetch_add(1, std::memory_order_relaxed);
      Entry *E = find(S, Addrs[I], /*ForInsert=*/false);
      Out[I] = E ? Bounds{ld(E->Base), ld(E->Bound)} : Bounds{};
      ++I;
    } while (I < N && Shards[shardOf(Addrs[I])].get() == &S);
  }
}

void HashTableMetadata::updateLocked(Shard &S, uint64_t Addr, Bounds B) {
  S.Updates.fetch_add(1, std::memory_order_relaxed);
  SeqlockWriteScope Writing(seqOf(S));
  if (S.Used * 2 >= S.Tab.load(std::memory_order_relaxed)->Size)
    grow(S);
  Entry *E = find(S, Addr, /*ForInsert=*/true);
  assert(E && "hash table full despite growth policy");
  if (ld(E->Tag) != Addr) {
    if (ld(E->Tag) == EmptyTag)
      ++S.Used;
    st(E->Tag, Addr);
    ++S.Live;
  }
  st(E->Base, B.Base);
  st(E->Bound, B.Bound);
}

void HashTableMetadata::update(uint64_t Addr, Bounds B) {
  Shard &S = *Shards[shardOf(Addr)];
  ShardExclusiveGuard Guard(lockOf(S));
  updateLocked(S, Addr, B);
}

void HashTableMetadata::updateN(const uint64_t *Addrs, const Bounds *In,
                                size_t N) {
  size_t I = 0;
  while (I < N) {
    Shard &S = *Shards[shardOf(Addrs[I])];
    ShardExclusiveGuard Guard(lockOf(S));
    do {
      updateLocked(S, Addrs[I], In[I]);
      ++I;
    } while (I < N && Shards[shardOf(Addrs[I])].get() == &S);
  }
}

uint64_t HashTableMetadata::clearChunkLocked(Shard &S, uint64_t Addr,
                                             uint64_t Size) {
  uint64_t Cleared = 0;
  SeqlockWriteScope Writing(seqOf(S));
  for (uint64_t A = Addr; A < Addr + Size; A += 8) {
    Entry *E = find(S, A, /*ForInsert=*/false);
    if (!E)
      continue;
    st(E->Tag, TombstoneTag);
    st(E->Base, 0);
    st(E->Bound, 0);
    --S.Live;
    ++Cleared;
  }
  S.Clears.fetch_add(Cleared, std::memory_order_relaxed);
  return Cleared;
}

uint64_t HashTableMetadata::clearRange(uint64_t Addr, uint64_t Size) {
  uint64_t Cleared = 0;
  uint64_t A = Addr & ~7ULL;
  uint64_t End = Addr + Size;
  while (A < End) {
    // [A, ChunkEnd) stays inside one stripe, so one exclusive acquisition
    // covers the whole chunk.
    uint64_t StripeEnd = ((A >> ShardStripeLog2) + 1) << ShardStripeLog2;
    uint64_t ChunkEnd = std::min(End, StripeEnd);
    Shard &S = *Shards[shardOf(A)];
    {
      ShardExclusiveGuard Guard(lockOf(S));
      Cleared += clearChunkLocked(S, A, ChunkEnd - A);
    }
    // Advance to the first 8-aligned slot at or past the chunk end.
    A += ((ChunkEnd - A) + 7) & ~7ULL;
  }
  if (Telem) {
    ClearCalls.fetch_add(1, std::memory_order_relaxed);
    ClearEntries.fetch_add(Cleared, std::memory_order_relaxed);
  }
  return Cleared;
}

uint64_t HashTableMetadata::copyRange(uint64_t Dst, uint64_t Src,
                                      uint64_t Size) {
  if (Telem)
    CopyCalls.fetch_add(1, std::memory_order_relaxed);
  uint64_t Copied = 0;
  for (uint64_t Off = 0; Off + 8 <= Size + 7; Off += 8) {
    uint64_t SA = (Src & ~7ULL) + Off;
    if (SA >= Src + Size)
      break;
    uint64_t DA = Dst + (SA - Src);
    bool Have = false;
    Bounds B;
    {
      // copyRange is a write-path operation; its source read keeps the
      // shared acquisition in both concurrent models (a shared_mutex
      // read alongside exclusive writers), so presence-vs-null-bounds
      // semantics stay identical across all three models.
      Shard &S = *Shards[shardOf(SA)];
      ShardSharedGuard Guard(lockOf(S));
      if (Entry *E = find(S, SA, /*ForInsert=*/false)) {
        B = Bounds{ld(E->Base), ld(E->Bound)};
        Have = true;
      }
    }
    if (Have) {
      update(DA, B);
      ++Copied;
    } else {
      // Destination slots whose source had no metadata must be cleared, or
      // stale bounds could leak into the copied region.
      clearRange(DA, 8);
    }
  }
  if (Telem)
    CopyEntries.fetch_add(Copied, std::memory_order_relaxed);
  return Copied;
}

uint64_t HashTableMetadata::memoryBytes() const {
  uint64_t Bytes = 0;
  for (const auto &S : Shards) {
    ShardSharedGuard Guard(lockOf(*S));
    Bytes += S->Tab.load(std::memory_order_relaxed)->Size * sizeof(Entry);
  }
  return Bytes;
}

double HashTableMetadata::loadFactor() const {
  uint64_t Live = 0, TableEntries = 0;
  for (const auto &S : Shards) {
    ShardSharedGuard Guard(lockOf(*S));
    Live += S->Live;
    TableEntries += S->Tab.load(std::memory_order_relaxed)->Size;
  }
  return TableEntries ? static_cast<double>(Live) /
                            static_cast<double>(TableEntries)
                      : 0.0;
}

MetadataStats HashTableMetadata::stats() const {
  MetadataStats Out;
  for (const auto &S : Shards) {
    Out.Lookups += S->Lookups.load(std::memory_order_relaxed);
    Out.Updates += S->Updates.load(std::memory_order_relaxed);
    Out.Clears += S->Clears.load(std::memory_order_relaxed);
    Out.Collisions += S->Collisions.load(std::memory_order_relaxed);
    Out.LockAcquires += S->Lock.Acquires.load(std::memory_order_relaxed);
    Out.LockContended += S->Lock.Contended.load(std::memory_order_relaxed);
    Out.SeqlockReads += S->Seq.Reads.load(std::memory_order_relaxed);
    Out.SeqlockRetries += S->Seq.Retries.load(std::memory_order_relaxed);
  }
  return Out;
}

void HashTableMetadata::reset() {
  // Quiescence required (MetadataFacility contract): retired generations
  // are reclaimed here, so no lock-free reader may be in flight.
  for (auto &S : Shards) {
    ShardExclusiveGuard Guard(lockOf(*S));
    Table *Live = S->Tab.load(std::memory_order_relaxed);
    for (size_t I = 0; I < Live->Size; ++I) {
      st(Live->Slots[I].Tag, 0);
      st(Live->Slots[I].Base, 0);
      st(Live->Slots[I].Bound, 0);
    }
    if (S->Tables.size() > 1) {
      std::unique_ptr<Table> Keep = std::move(S->Tables.back());
      S->Tables.clear();
      S->Tables.push_back(std::move(Keep));
    }
    S->Live = S->Used = 0;
    S->Lookups.store(0, std::memory_order_relaxed);
    S->Updates.store(0, std::memory_order_relaxed);
    S->Clears.store(0, std::memory_order_relaxed);
    S->Collisions.store(0, std::memory_order_relaxed);
    S->Lock.Acquires.store(0, std::memory_order_relaxed);
    S->Lock.Contended.store(0, std::memory_order_relaxed);
    S->Seq.Seq.store(0, std::memory_order_relaxed);
    S->Seq.Reads.store(0, std::memory_order_relaxed);
    S->Seq.Retries.store(0, std::memory_order_relaxed);
  }
  ClearCalls.store(0, std::memory_order_relaxed);
  ClearEntries.store(0, std::memory_order_relaxed);
  CopyCalls.store(0, std::memory_order_relaxed);
  CopyEntries.store(0, std::memory_order_relaxed);
}

void HashTableMetadata::grow(Shard &S) {
  // Build the next generation off to the side, publish it with a release
  // store, and retire the old one. In the LockFreeRead model a reader
  // may still be probing the retired generation, so it is kept until
  // reset()/destruction (total retained memory is bounded by the live
  // size — generations grow geometrically); the other models free it
  // immediately.
  Table *Old = S.Tab.load(std::memory_order_relaxed);
  auto Next = std::make_unique<Table>(Old->Size * 2);
  S.Live = S.Used = 0;
  S.Tables.push_back(std::move(Next));
  S.Tab.store(S.Tables.back().get(), std::memory_order_release);
  for (size_t I = 0; I < Old->Size; ++I) {
    uint64_t Tag = ld(Old->Slots[I].Tag);
    if (Tag == EmptyTag || Tag == TombstoneTag)
      continue;
    Entry *N = find(S, Tag, /*ForInsert=*/true);
    st(N->Tag, Tag);
    st(N->Base, ld(Old->Slots[I].Base));
    st(N->Bound, ld(Old->Slots[I].Bound));
    ++S.Live;
    ++S.Used;
  }
  if (Opts.Model != ConcurrencyModel::LockFreeRead) {
    // Only the freshly published generation needs to stay alive.
    std::unique_ptr<Table> Keep = std::move(S.Tables.back());
    S.Tables.clear();
    S.Tables.push_back(std::move(Keep));
  }
}
