//===- runtime/HashTableMetadata.cpp - open-hash metadata ------------------===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/HashTableMetadata.h"

#include "support/Telemetry.h"

#include <cassert>

using namespace softbound;

HashTableMetadata::HashTableMetadata(unsigned InitialLog2Size) {
  Entries.resize(size_t(1) << InitialLog2Size);
}

void HashTableMetadata::attachTelemetry(Telemetry *T,
                                        const std::string &Prefix) {
  MetadataFacility::attachTelemetry(T, Prefix);
  ProbeHist = T ? &T->histogram(Prefix + "/probe_length") : nullptr;
}

void HashTableMetadata::flushTelemetry() {
  if (!Telem)
    return;
  Telem->counter(TelemetryPrefix + "/live_entries") = Live;
  Telem->counter(TelemetryPrefix + "/table_entries") = Entries.size();
  Telem->counter(TelemetryPrefix + "/load_factor_permille") =
      static_cast<uint64_t>(loadFactor() * 1000.0);
  Telem->counter(TelemetryPrefix + "/memory_bytes") = memoryBytes();
  Telem->counter(TelemetryPrefix + "/collisions") = Stats.Collisions;
}

HashTableMetadata::Entry *HashTableMetadata::find(uint64_t Addr,
                                                  bool ForInsert) {
  // Tag is the slot address itself; addresses 0 and 1 never hold pointers.
  size_t Idx = hash(Addr);
  Entry *FirstTombstone = nullptr;
  for (size_t Probe = 0; Probe < Entries.size(); ++Probe) {
    Entry &E = Entries[(Idx + Probe) & (Entries.size() - 1)];
    if (E.Tag == Addr) {
      if (Probe)
        Stats.Collisions += Probe;
      if (ProbeHist)
        ProbeHist->record(Probe + 1);
      return &E;
    }
    if (E.Tag == EmptyTag) {
      if (Probe)
        Stats.Collisions += Probe;
      if (ProbeHist)
        ProbeHist->record(Probe + 1);
      if (ForInsert)
        return FirstTombstone ? FirstTombstone : &E;
      return nullptr;
    }
    if (E.Tag == TombstoneTag && !FirstTombstone)
      FirstTombstone = &E;
  }
  if (ProbeHist)
    ProbeHist->record(Entries.size());
  return ForInsert ? FirstTombstone : nullptr;
}

void HashTableMetadata::lookup(uint64_t Addr, uint64_t &Base,
                               uint64_t &Bound) {
  ++Stats.Lookups;
  if (Entry *E = find(Addr, /*ForInsert=*/false)) {
    Base = E->Base;
    Bound = E->Bound;
    return;
  }
  Base = 0;
  Bound = 0;
}

void HashTableMetadata::update(uint64_t Addr, uint64_t Base, uint64_t Bound) {
  ++Stats.Updates;
  if (Used * 2 >= Entries.size())
    grow();
  Entry *E = find(Addr, /*ForInsert=*/true);
  assert(E && "hash table full despite growth policy");
  if (E->Tag != Addr) {
    if (E->Tag == EmptyTag)
      ++Used;
    E->Tag = Addr;
    ++Live;
  }
  E->Base = Base;
  E->Bound = Bound;
}

uint64_t HashTableMetadata::clearRange(uint64_t Addr, uint64_t Size) {
  uint64_t Cleared = 0;
  uint64_t First = Addr & ~7ULL;
  for (uint64_t A = First; A < Addr + Size; A += 8) {
    Entry *E = find(A, /*ForInsert=*/false);
    if (!E)
      continue;
    E->Tag = TombstoneTag;
    E->Base = E->Bound = 0;
    --Live;
    ++Cleared;
  }
  Stats.Clears += Cleared;
  if (Telem) {
    ++Telem->counter(TelemetryPrefix + "/clear_calls");
    Telem->counter(TelemetryPrefix + "/clear_entries") += Cleared;
  }
  return Cleared;
}

uint64_t HashTableMetadata::copyRange(uint64_t Dst, uint64_t Src,
                                      uint64_t Size) {
  if (Telem)
    ++Telem->counter(TelemetryPrefix + "/copy_calls");
  uint64_t Copied = 0;
  for (uint64_t Off = 0; Off + 8 <= Size + 7; Off += 8) {
    uint64_t SA = (Src & ~7ULL) + Off;
    if (SA >= Src + Size)
      break;
    Entry *E = find(SA, /*ForInsert=*/false);
    uint64_t DA = Dst + (SA - Src);
    if (E) {
      update(DA, E->Base, E->Bound);
      ++Copied;
    } else {
      // Destination slots whose source had no metadata must be cleared, or
      // stale bounds could leak into the copied region.
      clearRange(DA, 8);
    }
  }
  if (Telem)
    Telem->counter(TelemetryPrefix + "/copy_entries") += Copied;
  return Copied;
}

uint64_t HashTableMetadata::memoryBytes() const {
  return Entries.size() * sizeof(Entry);
}

void HashTableMetadata::reset() {
  for (auto &E : Entries)
    E = Entry();
  Live = Used = 0;
  Stats = MetadataStats();
}

void HashTableMetadata::grow() {
  std::vector<Entry> Old;
  Old.swap(Entries);
  Entries.resize(Old.size() * 2);
  Live = Used = 0;
  for (const auto &E : Old) {
    if (E.Tag == EmptyTag || E.Tag == TombstoneTag)
      continue;
    Entry *N = find(E.Tag, /*ForInsert=*/true);
    N->Tag = E.Tag;
    N->Base = E.Base;
    N->Bound = E.Bound;
    ++Live;
    ++Used;
  }
}
