//===- runtime/HashTableMetadata.h - open-hash metadata ---------*- C++ -*-===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The hash-table implementation of the metadata facility (§5.1): entries of
/// {tag, base, bound} (24 bytes assuming 64-bit pointers), a shift-and-mask
/// hash of the double-word address, and open addressing. In the common
/// no-collision case a lookup models ~9 x86 instructions: shift, mask,
/// multiply, add, three loads, compare, branch.
///
//===----------------------------------------------------------------------===//

#ifndef SOFTBOUND_RUNTIME_HASHTABLEMETADATA_H
#define SOFTBOUND_RUNTIME_HASHTABLEMETADATA_H

#include "runtime/MetadataFacility.h"

#include <cstddef>
#include <vector>

namespace softbound {

/// Open-addressing hash table keyed by pointer-slot address.
class HashTableMetadata : public MetadataFacility {
public:
  /// \p InitialLog2Size is the log2 of the initial entry count. The paper
  /// sizes the table "large enough to keep average utilization low"; we grow
  /// at 50% occupancy.
  explicit HashTableMetadata(unsigned InitialLog2Size = 16);

  const char *name() const override { return "hashtable"; }
  void lookup(uint64_t Addr, uint64_t &Base, uint64_t &Bound) override;
  void update(uint64_t Addr, uint64_t Base, uint64_t Bound) override;
  uint64_t clearRange(uint64_t Addr, uint64_t Size) override;
  uint64_t copyRange(uint64_t Dst, uint64_t Src, uint64_t Size) override;
  uint64_t lookupCost() const override { return 9; }
  uint64_t updateCost() const override { return 9; }
  uint64_t memoryBytes() const override;
  void reset() override;
  void attachTelemetry(Telemetry *T, const std::string &Prefix) override;
  void flushTelemetry() override;

  /// Table occupancy in [0, 1] (for the ablation bench).
  double loadFactor() const {
    return static_cast<double>(Live) / static_cast<double>(Entries.size());
  }

private:
  struct Entry {
    uint64_t Tag = 0; ///< Slot address | state; 0 = empty, 1 = tombstone.
    uint64_t Base = 0;
    uint64_t Bound = 0;
  };
  static constexpr uint64_t EmptyTag = 0;
  static constexpr uint64_t TombstoneTag = 1;

  size_t hash(uint64_t Addr) const {
    // Double-word address modulo table size: shift and mask (§5.1), with a
    // multiplicative mix so adjacent slots spread.
    uint64_t H = (Addr >> 3) * 0x9e3779b97f4a7c15ULL;
    return static_cast<size_t>(H & (Entries.size() - 1));
  }

  /// Finds the entry for Addr, or the insertion slot; counts collisions.
  Entry *find(uint64_t Addr, bool ForInsert);

  void grow();

  std::vector<Entry> Entries;
  size_t Live = 0;
  size_t Used = 0; ///< Live + tombstones.
  /// Probe-length histogram (slots examined per find), cached from the
  /// attached telemetry sink; null in the disabled mode.
  TelemetryHistogram *ProbeHist = nullptr;
};

} // namespace softbound

#endif // SOFTBOUND_RUNTIME_HASHTABLEMETADATA_H
