//===- runtime/HashTableMetadata.h - open-hash metadata ---------*- C++ -*-===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The hash-table implementation of the metadata facility (§5.1): entries of
/// {tag, base, bound} (24 bytes assuming 64-bit pointers), a shift-and-mask
/// hash of the double-word address, and open addressing. In the common
/// no-collision case a lookup models ~9 x86 instructions: shift, mask,
/// multiply, add, three loads, compare, branch.
///
/// Sharding (facility API v2): each power-of-two address stripe
/// (MetadataFacility.h ShardStripeLog2) owns an independent sub-table with
/// its own striped reader-writer lock, statistics, and probe histogram.
/// With one shard and ConcurrencyModel::SingleThread (the default) the
/// probe sequences, collision counts and growth points are identical to
/// the unsharded pre-v2 table.
///
/// Lock-free reads (ConcurrencyModel::LockFreeRead): entry words are
/// relaxed atomics and every shard's table generation is published
/// through an atomic pointer, so a lookup probes with zero mutex
/// acquisitions and validates its copied entry against the stripe's
/// seqlock (StripeSeqlock) — writers, still under the exclusive
/// ShardLock, bump the sequence around each mutation, and grow() retires
/// the old generation instead of freeing it so a concurrent reader never
/// traverses a dangling table.
///
//===----------------------------------------------------------------------===//

#ifndef SOFTBOUND_RUNTIME_HASHTABLEMETADATA_H
#define SOFTBOUND_RUNTIME_HASHTABLEMETADATA_H

#include "runtime/MetadataFacility.h"

#include <memory>
#include <vector>

namespace softbound {

/// Open-addressing hash table keyed by pointer-slot address.
class HashTableMetadata : public MetadataFacility {
public:
  /// \p InitialLog2Size is the log2 of the initial entry count *per shard*.
  /// The paper sizes the table "large enough to keep average utilization
  /// low"; we grow at 50% occupancy.
  explicit HashTableMetadata(unsigned InitialLog2Size = 16,
                             FacilityOptions Options = {});

  using MetadataFacility::update;

  const char *name() const override { return "hashtable"; }
  Bounds lookup(uint64_t Addr) override;
  void update(uint64_t Addr, Bounds B) override;
  void lookupN(const uint64_t *Addrs, Bounds *Out, size_t N) override;
  void updateN(const uint64_t *Addrs, const Bounds *In, size_t N) override;
  uint64_t clearRange(uint64_t Addr, uint64_t Size) override;
  uint64_t copyRange(uint64_t Dst, uint64_t Src, uint64_t Size) override;
  uint64_t lookupCost() const override { return 9; }
  uint64_t updateCost() const override { return 9; }
  uint64_t memoryBytes() const override;
  void reset() override;
  MetadataStats stats() const override;
  unsigned shards() const override {
    return static_cast<unsigned>(Shards.size());
  }
  ConcurrencyModel concurrency() const override { return Opts.Model; }
  void attachTelemetry(Telemetry *T, const std::string &Prefix) override;
  void flushTelemetry() override;

  /// Table occupancy in [0, 1], aggregated over shards (for the ablation
  /// bench).
  double loadFactor() const;

private:
  /// One table slot. The words are relaxed atomics so the LockFreeRead
  /// probe can race a writer without host-level undefined behaviour (the
  /// seqlock discards any torn copy); on x86/ARM a relaxed load/store is
  /// a plain move, so the SingleThread path pays nothing for this.
  struct Entry {
    std::atomic<uint64_t> Tag{0}; ///< Slot address; 0 = empty, 1 = tombstone.
    std::atomic<uint64_t> Base{0};
    std::atomic<uint64_t> Bound{0};
  };
  static constexpr uint64_t EmptyTag = 0;
  static constexpr uint64_t TombstoneTag = 1;

  /// One generation of a shard's open-addressing table. Grown
  /// generations are immutable-from-then-on and, in the LockFreeRead
  /// model, retired rather than freed (a lock-free reader may still be
  /// probing them) until reset() or destruction.
  struct Table {
    explicit Table(size_t N) : Size(N), Slots(new Entry[N]) {}
    size_t Size;
    std::unique_ptr<Entry[]> Slots;
  };

  /// One address-range stripe: an independent open-addressing table plus
  /// its lock, seqlock, and statistics. Stats are relaxed atomics because
  /// lookups (shared acquisitions or lock-free reads) bump them
  /// concurrently.
  struct Shard {
    /// The live generation; readers acquire-load, writers publish with a
    /// release store. Ownership lives in Tables.
    std::atomic<Table *> Tab{nullptr};
    /// Every generation ever allocated; back() is live. Writer-only.
    std::vector<std::unique_ptr<Table>> Tables;
    size_t Live = 0;
    size_t Used = 0; ///< Live + tombstones.
    ShardLock Lock;
    StripeSeqlock Seq;
    std::atomic<uint64_t> Lookups{0};
    std::atomic<uint64_t> Updates{0};
    std::atomic<uint64_t> Clears{0};
    std::atomic<uint64_t> Collisions{0};
    /// Probe-length histogram (slots examined per find), cached from the
    /// attached telemetry sink; null in the disabled mode.
    TelemetryHistogram *ProbeHist = nullptr;
  };

  static size_t hash(uint64_t Addr, size_t TableSize) {
    // Double-word address modulo table size: shift and mask (§5.1), with a
    // multiplicative mix so adjacent slots spread.
    uint64_t H = (Addr >> 3) * 0x9e3779b97f4a7c15ULL;
    return static_cast<size_t>(H & (TableSize - 1));
  }

  size_t shardOf(uint64_t Addr) const {
    return static_cast<size_t>((Addr >> ShardStripeLog2) &
                               (Shards.size() - 1));
  }

  /// The stripe lock writers (and aggregate readers) guard with, or null
  /// in SingleThread mode. Both concurrent models lock the write path.
  const ShardLock *lockOf(const Shard &S) const {
    return Opts.Model == ConcurrencyModel::SingleThread ? nullptr : &S.Lock;
  }

  /// The stripe lock the *read* path guards with: only the Sharded model
  /// takes it — SingleThread needs none, LockFreeRead reads through the
  /// seqlock instead.
  const ShardLock *readLockOf(const Shard &S) const {
    return Opts.Model == ConcurrencyModel::Sharded ? &S.Lock : nullptr;
  }

  /// The stripe seqlock writers bump, or null outside LockFreeRead.
  StripeSeqlock *seqOf(Shard &S) const {
    return Opts.Model == ConcurrencyModel::LockFreeRead ? &S.Seq : nullptr;
  }

  /// Finds the entry for Addr in \p S, or the insertion slot; counts
  /// collisions. Caller holds the shard's lock (or runs SingleThread).
  Entry *find(Shard &S, uint64_t Addr, bool ForInsert);

  /// The lock-free read path: probes the published generation and
  /// validates the copied entry against the stripe's seqlock.
  Bounds lookupLockFree(Shard &S, uint64_t Addr);

  /// update() body minus locking; caller holds the shard exclusively.
  void updateLocked(Shard &S, uint64_t Addr, Bounds B);

  /// Clears the slots of [Addr, Addr+Size) that fall inside one stripe;
  /// caller holds the shard exclusively. Returns entries dropped.
  uint64_t clearChunkLocked(Shard &S, uint64_t Addr, uint64_t Size);

  void grow(Shard &S);

  FacilityOptions Opts;
  std::vector<std::unique_ptr<Shard>> Shards;
  std::atomic<uint64_t> ClearCalls{0};
  std::atomic<uint64_t> ClearEntries{0};
  std::atomic<uint64_t> CopyCalls{0};
  std::atomic<uint64_t> CopyEntries{0};
};

} // namespace softbound

#endif // SOFTBOUND_RUNTIME_HASHTABLEMETADATA_H
