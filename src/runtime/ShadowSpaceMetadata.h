//===- runtime/ShadowSpaceMetadata.h - tag-less shadow space ----*- C++ -*-===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shadow-space implementation of the metadata facility (§5.1): a region
/// of the (simulated) virtual address space large enough that collisions
/// cannot occur, so entries carry no tag and no tag check is needed — a
/// lookup models ~5 x86 instructions (shift, mask, add, two loads). Pages
/// are materialized on demand, modelling mmap's zero-fill-on-demand.
///
/// Sharding (facility API v2): shadow pages span exactly one address
/// stripe (2^ShardStripeLog2 bytes), so each shard owns whole pages and
/// a page never splits across stripe locks. The default single-shard,
/// SingleThread configuration behaves exactly like the pre-v2 space.
///
/// Lock-free reads (ConcurrencyModel::LockFreeRead): pages are published
/// RCU-style — a writer installs a fully-initialized (zero-filled) page
/// node at the head of its bucket chain with a release store, and a
/// reader acquire-loads the head and walks the immutable chain, so a
/// page-miss racing a materialization sees either no page (null bounds)
/// or a complete one, never a torn node. Slot words are relaxed atomics
/// and the per-stripe seqlock (StripeSeqlock) validates the copied
/// {base, bound} pair against concurrent in-place updates.
///
//===----------------------------------------------------------------------===//

#ifndef SOFTBOUND_RUNTIME_SHADOWSPACEMETADATA_H
#define SOFTBOUND_RUNTIME_SHADOWSPACEMETADATA_H

#include "runtime/MetadataFacility.h"

#include <array>
#include <memory>
#include <vector>

namespace softbound {

/// Demand-paged, tag-less shadow of the simulated address space; one
/// {base, bound} pair per 8-byte pointer slot.
class ShadowSpaceMetadata : public MetadataFacility {
public:
  explicit ShadowSpaceMetadata(FacilityOptions Options = {});

  using MetadataFacility::update;

  const char *name() const override { return "shadowspace"; }
  Bounds lookup(uint64_t Addr) override;
  void update(uint64_t Addr, Bounds B) override;
  uint64_t clearRange(uint64_t Addr, uint64_t Size) override;
  uint64_t copyRange(uint64_t Dst, uint64_t Src, uint64_t Size) override;
  uint64_t lookupCost() const override { return 5; }
  uint64_t updateCost() const override { return 5; }
  uint64_t memoryBytes() const override;
  void reset() override;
  MetadataStats stats() const override;
  unsigned shards() const override {
    return static_cast<unsigned>(Shards.size());
  }
  ConcurrencyModel concurrency() const override { return Opts.Model; }
  void flushTelemetry() override;

private:
  /// Slots per shadow page; one page shadows 8 * SlotsPerPage bytes —
  /// exactly one address stripe (static_assert below), so pages never
  /// straddle shards.
  static constexpr uint64_t SlotsPerPage = 4096;
  static_assert(SlotsPerPage * 8 == (uint64_t(1) << ShardStripeLog2),
                "a shadow page must span exactly one shard stripe");

  /// One shadow slot. Relaxed atomics for the same reason as the hash
  /// table's Entry: the LockFreeRead copy may race a writer and the
  /// seqlock discards torn pairs; plain moves on x86/ARM otherwise.
  struct Pair {
    std::atomic<uint64_t> Base{0};
    std::atomic<uint64_t> Bound{0};
  };

  /// One materialized shadow page, linked into its bucket's chain.
  /// Fully initialized (zero-filled slots, PageId, Next) *before* the
  /// release store that publishes it; PageId and Next are immutable
  /// afterwards, so readers walk the chain without synchronization
  /// beyond the acquire on the bucket head.
  struct PageNode {
    PageNode(uint64_t Id, PageNode *N)
        : PageId(Id), Slots(new Pair[SlotsPerPage]), Next(N) {}
    uint64_t PageId;
    std::unique_ptr<Pair[]> Slots;
    PageNode *Next;
  };

  /// Buckets per shard for the page-pointer table. Pages are found via a
  /// multiplicative mix of the page id, so ids that are congruent modulo
  /// the shard count still spread across buckets.
  static constexpr size_t PageBuckets = 64;

  /// One address-range stripe: its demand-paged shadow plus lock/stats.
  struct Shard {
    /// Chain heads; readers acquire-load, writers (under the exclusive
    /// lock) release-store freshly initialized nodes.
    std::array<std::atomic<PageNode *>, PageBuckets> Buckets{};
    /// Ownership of every node ever published. Writer-only; reclaimed at
    /// reset()/destruction (quiescent, per the facility contract).
    std::vector<std::unique_ptr<PageNode>> Nodes;
    uint64_t PageCount = 0;
    ShardLock Lock;
    StripeSeqlock Seq;
    std::atomic<uint64_t> Lookups{0};
    std::atomic<uint64_t> Updates{0};
    std::atomic<uint64_t> Clears{0};
  };

  size_t shardOf(uint64_t Addr) const {
    return static_cast<size_t>((Addr >> ShardStripeLog2) &
                               (Shards.size() - 1));
  }

  static size_t bucketOf(uint64_t PageId) {
    return static_cast<size_t>((PageId * 0x9e3779b97f4a7c15ULL) >>
                               (64 - 6)) &
           (PageBuckets - 1);
  }

  /// The stripe lock writers (and aggregate readers) guard with, or null
  /// in SingleThread mode. Both concurrent models lock the write path.
  const ShardLock *lockOf(const Shard &S) const {
    return Opts.Model == ConcurrencyModel::SingleThread ? nullptr : &S.Lock;
  }

  /// The stripe lock the *read* path guards with: only the Sharded model
  /// takes it — SingleThread needs none, LockFreeRead reads through the
  /// seqlock instead.
  const ShardLock *readLockOf(const Shard &S) const {
    return Opts.Model == ConcurrencyModel::Sharded ? &S.Lock : nullptr;
  }

  /// The stripe seqlock writers bump, or null outside LockFreeRead.
  StripeSeqlock *seqOf(Shard &S) const {
    return Opts.Model == ConcurrencyModel::LockFreeRead ? &S.Seq : nullptr;
  }

  /// Finds the page holding \p Addr's slot by walking its bucket chain.
  /// Safe to call from the lock-free read path (acquire head, immutable
  /// chain); returns null when the page is not materialized.
  Pair *findSlot(const Shard &S, uint64_t Addr) const;

  /// findSlot plus materialization; caller holds the shard exclusively
  /// (or runs SingleThread).
  Pair *slotFor(Shard &S, uint64_t Addr, bool Materialize);

  /// The lock-free read path: seqlock-validated copy of the slot.
  Bounds lookupLockFree(Shard &S, uint64_t Addr);

  FacilityOptions Opts;
  std::vector<std::unique_ptr<Shard>> Shards;
  std::atomic<uint64_t> ClearCalls{0};
  std::atomic<uint64_t> ClearEntries{0};
  std::atomic<uint64_t> CopyCalls{0};
  std::atomic<uint64_t> CopyEntries{0};
};

} // namespace softbound

#endif // SOFTBOUND_RUNTIME_SHADOWSPACEMETADATA_H
