//===- runtime/ShadowSpaceMetadata.h - tag-less shadow space ----*- C++ -*-===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shadow-space implementation of the metadata facility (§5.1): a region
/// of the (simulated) virtual address space large enough that collisions
/// cannot occur, so entries carry no tag and no tag check is needed — a
/// lookup models ~5 x86 instructions (shift, mask, add, two loads). Pages
/// are materialized on demand, modelling mmap's zero-fill-on-demand.
///
/// Sharding (facility API v2): shadow pages span exactly one address
/// stripe (2^ShardStripeLog2 bytes), so each shard owns whole pages and
/// a page never splits across stripe locks. The default single-shard,
/// SingleThread configuration behaves exactly like the pre-v2 space.
///
//===----------------------------------------------------------------------===//

#ifndef SOFTBOUND_RUNTIME_SHADOWSPACEMETADATA_H
#define SOFTBOUND_RUNTIME_SHADOWSPACEMETADATA_H

#include "runtime/MetadataFacility.h"

#include <memory>
#include <unordered_map>
#include <vector>

namespace softbound {

/// Demand-paged, tag-less shadow of the simulated address space; one
/// {base, bound} pair per 8-byte pointer slot.
class ShadowSpaceMetadata : public MetadataFacility {
public:
  explicit ShadowSpaceMetadata(FacilityOptions Options = {});

  using MetadataFacility::update;

  const char *name() const override { return "shadowspace"; }
  Bounds lookup(uint64_t Addr) override;
  void update(uint64_t Addr, Bounds B) override;
  uint64_t clearRange(uint64_t Addr, uint64_t Size) override;
  uint64_t copyRange(uint64_t Dst, uint64_t Src, uint64_t Size) override;
  uint64_t lookupCost() const override { return 5; }
  uint64_t updateCost() const override { return 5; }
  uint64_t memoryBytes() const override;
  void reset() override;
  MetadataStats stats() const override;
  unsigned shards() const override {
    return static_cast<unsigned>(Shards.size());
  }
  ConcurrencyModel concurrency() const override { return Opts.Model; }
  void flushTelemetry() override;

private:
  /// Slots per shadow page; one page shadows 8 * SlotsPerPage bytes —
  /// exactly one address stripe (static_assert below), so pages never
  /// straddle shards.
  static constexpr uint64_t SlotsPerPage = 4096;
  static_assert(SlotsPerPage * 8 == (uint64_t(1) << ShardStripeLog2),
                "a shadow page must span exactly one shard stripe");

  struct Pair {
    uint64_t Base = 0;
    uint64_t Bound = 0;
  };
  using Page = std::unique_ptr<Pair[]>;

  /// One address-range stripe: its demand-paged shadow plus lock/stats.
  struct Shard {
    std::unordered_map<uint64_t, Page> Pages;
    ShardLock Lock;
    std::atomic<uint64_t> Lookups{0};
    std::atomic<uint64_t> Updates{0};
    std::atomic<uint64_t> Clears{0};
  };

  size_t shardOf(uint64_t Addr) const {
    return static_cast<size_t>((Addr >> ShardStripeLog2) &
                               (Shards.size() - 1));
  }

  const ShardLock *lockOf(const Shard &S) const {
    return Opts.Model == ConcurrencyModel::Sharded ? &S.Lock : nullptr;
  }

  /// Caller holds the shard's lock (or runs SingleThread).
  Pair *slotFor(Shard &S, uint64_t Addr, bool Materialize);

  FacilityOptions Opts;
  std::vector<std::unique_ptr<Shard>> Shards;
  std::atomic<uint64_t> ClearCalls{0};
  std::atomic<uint64_t> ClearEntries{0};
  std::atomic<uint64_t> CopyCalls{0};
  std::atomic<uint64_t> CopyEntries{0};
};

} // namespace softbound

#endif // SOFTBOUND_RUNTIME_SHADOWSPACEMETADATA_H
