//===- runtime/ShadowSpaceMetadata.h - tag-less shadow space ----*- C++ -*-===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shadow-space implementation of the metadata facility (§5.1): a region
/// of the (simulated) virtual address space large enough that collisions
/// cannot occur, so entries carry no tag and no tag check is needed — a
/// lookup models ~5 x86 instructions (shift, mask, add, two loads). Pages
/// are materialized on demand, modelling mmap's zero-fill-on-demand.
///
//===----------------------------------------------------------------------===//

#ifndef SOFTBOUND_RUNTIME_SHADOWSPACEMETADATA_H
#define SOFTBOUND_RUNTIME_SHADOWSPACEMETADATA_H

#include "runtime/MetadataFacility.h"

#include <memory>
#include <unordered_map>

namespace softbound {

/// Demand-paged, tag-less shadow of the simulated address space; one
/// {base, bound} pair per 8-byte pointer slot.
class ShadowSpaceMetadata : public MetadataFacility {
public:
  ShadowSpaceMetadata() = default;

  const char *name() const override { return "shadowspace"; }
  void lookup(uint64_t Addr, uint64_t &Base, uint64_t &Bound) override;
  void update(uint64_t Addr, uint64_t Base, uint64_t Bound) override;
  uint64_t clearRange(uint64_t Addr, uint64_t Size) override;
  uint64_t copyRange(uint64_t Dst, uint64_t Src, uint64_t Size) override;
  uint64_t lookupCost() const override { return 5; }
  uint64_t updateCost() const override { return 5; }
  uint64_t memoryBytes() const override;
  void reset() override;
  void flushTelemetry() override;

private:
  /// Slots per shadow page; one page shadows 8 * SlotsPerPage bytes.
  static constexpr uint64_t SlotsPerPage = 4096;

  struct Pair {
    uint64_t Base = 0;
    uint64_t Bound = 0;
  };
  using Page = std::unique_ptr<Pair[]>;

  Pair *slotFor(uint64_t Addr, bool Materialize);

  std::unordered_map<uint64_t, Page> Pages;
};

} // namespace softbound

#endif // SOFTBOUND_RUNTIME_SHADOWSPACEMETADATA_H
