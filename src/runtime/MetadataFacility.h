//===- runtime/MetadataFacility.h - disjoint metadata space -----*- C++ -*-===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The disjoint metadata facility of §3.2/§5.1: maps the *address of a
/// pointer in memory* to the base/bound metadata of the pointer stored
/// there. Two implementations, matching the paper: an open hash table
/// (~9 x86 instructions per lookup) and a tag-less shadow space (~5).
///
//===----------------------------------------------------------------------===//

#ifndef SOFTBOUND_RUNTIME_METADATAFACILITY_H
#define SOFTBOUND_RUNTIME_METADATAFACILITY_H

#include <cstdint>
#include <string>

namespace softbound {

class Telemetry;
class TelemetryHistogram;

/// Aggregate statistics one facility gathers over a run.
struct MetadataStats {
  uint64_t Lookups = 0;
  uint64_t Updates = 0;
  uint64_t Clears = 0;
  uint64_t Collisions = 0; ///< Extra probes (hash table only).
};

/// Abstract interface of the disjoint metadata space.
///
/// The mapping is keyed by the location being loaded or stored, not by the
/// value of the pointer (§5.1). Addresses are simulated-VM addresses;
/// pointer slots are 8-byte aligned in all workloads.
class MetadataFacility {
public:
  virtual ~MetadataFacility() = default;

  virtual const char *name() const = 0;

  /// Returns the bounds recorded for the pointer stored at \p Addr;
  /// (0, 0) — the "null bounds" that fail every dereference check — when no
  /// metadata was ever recorded.
  virtual void lookup(uint64_t Addr, uint64_t &Base, uint64_t &Bound) = 0;

  /// Records bounds for the pointer stored at \p Addr.
  virtual void update(uint64_t Addr, uint64_t Base, uint64_t Bound) = 0;

  /// Clears metadata for every pointer slot in [Addr, Addr+Size) — used when
  /// memory is freed or a stack frame is deallocated (§5.2 "memory reuse and
  /// stale metadata"). Returns the number of entries cleared.
  virtual uint64_t clearRange(uint64_t Addr, uint64_t Size) = 0;

  /// Copies metadata for every pointer slot from [Src, Src+Size) to
  /// [Dst, Dst+Size) — the metadata half of an instrumented memcpy (§5.2).
  /// Returns the number of entries copied.
  virtual uint64_t copyRange(uint64_t Dst, uint64_t Src, uint64_t Size) = 0;

  /// Simulated instruction cost of one lookup (paper §5.1: hash ≈ 9, shadow
  /// ≈ 5 x86 instructions).
  virtual uint64_t lookupCost() const = 0;

  /// Simulated instruction cost of one update.
  virtual uint64_t updateCost() const = 0;

  /// Current metadata memory footprint in bytes.
  virtual uint64_t memoryBytes() const = 0;

  /// Drops all metadata and statistics.
  virtual void reset() = 0;

  const MetadataStats &stats() const { return Stats; }

  /// Attaches a telemetry sink; paths are rooted at \p Prefix (the run
  /// driver uses "facility/<name>"). Null detaches. Recording never
  /// changes behaviour or the modelled costs; with no sink attached the
  /// hot paths pay exactly one pointer test (the zero-cost disabled
  /// mode). Implementations override to cache direct histogram pointers.
  virtual void attachTelemetry(Telemetry *T, const std::string &Prefix) {
    Telem = T;
    TelemetryPrefix = Prefix;
  }

  /// Pushes end-of-run gauges (occupancy, memory footprint) into the
  /// attached sink; no-op when none is attached.
  virtual void flushTelemetry() {}

protected:
  MetadataStats Stats;
  Telemetry *Telem = nullptr;
  std::string TelemetryPrefix;
};

} // namespace softbound

#endif // SOFTBOUND_RUNTIME_METADATAFACILITY_H
