//===- runtime/MetadataFacility.h - disjoint metadata space -----*- C++ -*-===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The disjoint metadata facility of §3.2/§5.1: maps the *address of a
/// pointer in memory* to the base/bound metadata of the pointer stored
/// there. Two implementations, matching the paper: an open hash table
/// (~9 x86 instructions per lookup) and a tag-less shadow space (~5).
///
/// Facility API v2 (docs/runtime.md): value-returning `Bounds lookup`,
/// batch `lookupN`/`updateN` entry points, and an optional sharded
/// concurrency mode — the address space is divided into power-of-two
/// stripes, each stripe owned by one shard with its own striped
/// reader-writer lock, so N VM lanes can share one facility. The
/// default (`ConcurrencyModel::SingleThread`, one shard) takes no locks
/// at all and is bit-for-bit identical to the pre-v2 behaviour the
/// bench gate's baselines were recorded against.
///
/// Lock-free reads (`ConcurrencyModel::LockFreeRead`): the write path is
/// unchanged — updates and range operations still take the stripe's
/// exclusive ShardLock — but lookups acquire no mutex at all. Each
/// stripe carries a seqlock (StripeSeqlock): writers bump an atomic
/// sequence odd before mutating and even after; readers copy the entry
/// between two sequence reads and retry when the window was dirty.
/// Structures a reader traverses are published RCU-style (hash tables
/// retire grown generations, shadow pages install fully-initialized
/// behind a release store), so a racing reader can observe stale — but
/// never torn or dangling — state.
///
//===----------------------------------------------------------------------===//

#ifndef SOFTBOUND_RUNTIME_METADATAFACILITY_H
#define SOFTBOUND_RUNTIME_METADATAFACILITY_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <shared_mutex>
#include <string>
#include <thread>

namespace softbound {

class Telemetry;
class TelemetryHistogram;

/// The {base, bound} pair recorded for one pointer slot. (0, 0) is the
/// "null bounds" value that fails every dereference check; it doubles as
/// the miss result, so a lookup never needs an out-param or a found flag.
struct Bounds {
  uint64_t Base = 0;
  uint64_t Bound = 0;

  /// True for the never-recorded / cleared state.
  bool null() const { return Base == 0 && Bound == 0; }

  bool operator==(const Bounds &O) const {
    return Base == O.Base && Bound == O.Bound;
  }
  bool operator!=(const Bounds &O) const { return !(*this == O); }
};

/// How a facility instance synchronizes concurrent callers.
enum class ConcurrencyModel {
  /// No locking anywhere; callers guarantee single-threaded access. This
  /// is the default and the mode every gated baseline runs under.
  SingleThread,
  /// Striped reader-writer locks, one per shard: lookups take a shared
  /// (never mutually excluding) acquisition, updates and range ops an
  /// exclusive one. Required whenever more than one VM lane shares the
  /// facility.
  Sharded,
  /// Sharded write path (updates and range ops still take the stripe's
  /// exclusive ShardLock), but the read path is lock-free: lookups
  /// validate a copied entry against the stripe's seqlock and retry on
  /// a dirty window instead of acquiring any mutex.
  LockFreeRead,
};

/// log2 of the address-range stripe that maps to one shard: 32 KB, one
/// shadow page (ShadowSpaceMetadata::SlotsPerPage slots of 8 bytes), so
/// a stripe never splits a shadow page across shards.
inline constexpr unsigned ShardStripeLog2 = 15;

/// Simulated-cost prices for facility lock traffic (docs/runtime.md):
/// an uncontended striped-lock acquisition models one atomic op; a
/// contended one models the coherence miss plus re-acquisition. The
/// bench gate prices serialization as
///   uncontended * UncontendedLockCost + contended * ContendedLockCost
/// in the non-gated `contention_*` key group. SingleThread runs take no
/// locks, so this component is exactly zero on every gated baseline.
inline constexpr uint64_t UncontendedLockCost = 1;
inline constexpr uint64_t ContendedLockCost = 40;

/// One seqlock read retry (LockFreeRead model) is priced like a
/// contended lock acquisition: the reader observed a writer's dirty
/// window, which on real hardware is the same coherence miss plus
/// re-read. Clean seqlock reads are free — the sequence load rides the
/// entry's cache line, which is the whole point of the lock-free path.
inline constexpr uint64_t SeqlockRetryCost = ContendedLockCost;

/// Constructor-time facility configuration.
struct FacilityOptions {
  ConcurrencyModel Model = ConcurrencyModel::SingleThread;
  /// Shard count; rounded up to a power of two, minimum 1. Shard choice
  /// is `(Addr >> ShardStripeLog2) & (Shards - 1)`.
  unsigned Shards = 1;
};

/// Aggregate statistics one facility gathers over a run. In the Sharded
/// model these are summed over shards at read time.
struct MetadataStats {
  uint64_t Lookups = 0;
  uint64_t Updates = 0;
  uint64_t Clears = 0;
  uint64_t Collisions = 0;    ///< Extra probes (hash table only).
  uint64_t LockAcquires = 0;  ///< Striped-lock acquisitions (concurrent modes).
  uint64_t LockContended = 0; ///< Acquisitions that found the lock held.
  uint64_t SeqlockReads = 0;   ///< Lock-free lookups (LockFreeRead only).
  uint64_t SeqlockRetries = 0; ///< Reads re-run after a dirty seqlock window.

  /// The contention component of the simulated cost model (priced with
  /// UncontendedLockCost / ContendedLockCost / SeqlockRetryCost; zero
  /// when SingleThread). Clean seqlock reads carry no price.
  uint64_t contentionSimCost() const {
    return (LockAcquires - LockContended) * UncontendedLockCost +
           LockContended * ContendedLockCost +
           SeqlockRetries * SeqlockRetryCost;
  }
};

/// One shard's striped lock plus its contention tallies. A null pointer
/// passed to the guards below means "SingleThread mode": the guard
/// degenerates to a single branch, preserving the lock-free fast path
/// the gated baselines were measured on.
struct ShardLock {
  mutable std::shared_mutex Mu;
  mutable std::atomic<uint64_t> Acquires{0};
  mutable std::atomic<uint64_t> Contended{0};
};

/// Reader-side guard: shared acquisition, so concurrent lookups never
/// serialize against each other. Counts the acquisition and whether it
/// found the stripe exclusively held.
class ShardSharedGuard {
public:
  explicit ShardSharedGuard(const ShardLock *L) : L(L) {
    if (!L)
      return;
    L->Acquires.fetch_add(1, std::memory_order_relaxed);
    if (!L->Mu.try_lock_shared()) {
      L->Contended.fetch_add(1, std::memory_order_relaxed);
      L->Mu.lock_shared();
    }
  }
  ~ShardSharedGuard() {
    if (L)
      L->Mu.unlock_shared();
  }
  ShardSharedGuard(const ShardSharedGuard &) = delete;
  ShardSharedGuard &operator=(const ShardSharedGuard &) = delete;

private:
  const ShardLock *L;
};

/// Writer-side guard: exclusive acquisition for updates and range ops.
class ShardExclusiveGuard {
public:
  explicit ShardExclusiveGuard(const ShardLock *L) : L(L) {
    if (!L)
      return;
    L->Acquires.fetch_add(1, std::memory_order_relaxed);
    if (!L->Mu.try_lock()) {
      L->Contended.fetch_add(1, std::memory_order_relaxed);
      L->Mu.lock();
    }
  }
  ~ShardExclusiveGuard() {
    if (L)
      L->Mu.unlock();
  }
  ShardExclusiveGuard(const ShardExclusiveGuard &) = delete;
  ShardExclusiveGuard &operator=(const ShardExclusiveGuard &) = delete;

private:
  const ShardLock *L;
};

/// One stripe's seqlock: the sequence word writers bump around every
/// mutation in the LockFreeRead model, plus the read-side tallies behind
/// the SeqlockReads / SeqlockRetries statistics.
///
/// Protocol (the classic seqlock, with the data itself held in relaxed
/// atomics so racing copies are defined behaviour):
///
///   writer  — already holding the stripe's ShardLock exclusively, so
///             writers never race each other —
///             writeBegin(): Seq += 1 (now odd), release fence;
///             ...mutate (relaxed stores)...;
///             writeEnd():   Seq += 1 (now even, release).
///   reader  S0 = readBegin() (acquire; spins past odd, yielding so a
///             descheduled writer on a single-core host gets the CPU);
///             ...copy (relaxed loads)...;
///             readValidate(S0): acquire fence, re-read Seq; a changed
///             sequence means the copy may be torn — count a retry and
///             re-run the read.
struct StripeSeqlock {
  std::atomic<uint64_t> Seq{0};
  mutable std::atomic<uint64_t> Reads{0};
  mutable std::atomic<uint64_t> Retries{0};

  void writeBegin() {
    Seq.fetch_add(1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
  }
  void writeEnd() { Seq.fetch_add(1, std::memory_order_release); }

  /// Starts one counted read attempt sequence; returns an even sequence
  /// value to validate against.
  uint64_t readBegin() const {
    Reads.fetch_add(1, std::memory_order_relaxed);
    return stableSeq();
  }

  /// An even (no write in flight) sequence value. Each odd observation
  /// counts as one retry — the reader is paying for a writer's window.
  uint64_t stableSeq() const {
    for (;;) {
      uint64_t S = Seq.load(std::memory_order_acquire);
      if (!(S & 1))
        return S;
      Retries.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::yield();
    }
  }

  /// True when a copy taken since sequence \p S0 is consistent; on
  /// failure the retry is counted and the caller re-runs its read.
  bool readValidate(uint64_t S0) const {
    std::atomic_thread_fence(std::memory_order_acquire);
    if (Seq.load(std::memory_order_relaxed) == S0)
      return true;
    Retries.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
};

/// RAII writer window: brackets a mutation with writeBegin/writeEnd when
/// \p SL is non-null (the LockFreeRead model); free otherwise. Callers
/// hold the stripe's ShardLock exclusively for the whole window.
class SeqlockWriteScope {
public:
  explicit SeqlockWriteScope(StripeSeqlock *SL) : SL(SL) {
    if (SL)
      SL->writeBegin();
  }
  ~SeqlockWriteScope() {
    if (SL)
      SL->writeEnd();
  }
  SeqlockWriteScope(const SeqlockWriteScope &) = delete;
  SeqlockWriteScope &operator=(const SeqlockWriteScope &) = delete;

private:
  StripeSeqlock *SL;
};

/// Abstract interface of the disjoint metadata space.
///
/// Contract:
///  - The mapping is keyed by the location being loaded or stored, not by
///    the value of the pointer (§5.1). Addresses are simulated-VM
///    addresses; pointer slots are 8-byte aligned in all workloads.
///  - `lookup` returns the recorded Bounds by value; the null bounds
///    (0, 0) on a miss. There is no out-param form.
///  - In the Sharded model every single-slot operation is atomic with
///    respect to other callers; range operations (`clearRange`,
///    `copyRange`) are atomic per stripe but not across stripes — a
///    concurrent reader may observe a partially cleared/copied range,
///    which matches what a real multithreaded memcpy/free exposes.
///  - The LockFreeRead model keeps those write-path guarantees (writers
///    still serialize on the stripe's exclusive ShardLock) and makes the
///    same atomicity promise for lock-free lookups: a lookup racing an
///    update returns either the old or the new {base, bound} pair,
///    never a mix — the seqlock retry discards any torn copy.
///  - `reset()` and destruction require quiescence (no concurrent
///    callers): they reclaim the RCU-retired structures lock-free
///    readers may still be traversing otherwise.
///  - Statistics and telemetry never change behaviour or modelled costs.
class MetadataFacility {
public:
  virtual ~MetadataFacility() = default;

  virtual const char *name() const = 0;

  /// Returns the bounds recorded for the pointer stored at \p Addr;
  /// the null bounds — which fail every dereference check — when no
  /// metadata was ever recorded. Sharded model: shared (reader)
  /// acquisition only, so lookups scale across lanes. LockFreeRead
  /// model: zero mutex acquisitions — a seqlock-validated copy.
  virtual Bounds lookup(uint64_t Addr) = 0;

  /// Records bounds for the pointer stored at \p Addr.
  virtual void update(uint64_t Addr, Bounds B) = 0;

  /// Convenience spelling of update() for call sites that carry the pair
  /// as two scalars (the VM's reloc loader, tests).
  void update(uint64_t Addr, uint64_t Base, uint64_t Bound) {
    update(Addr, Bounds{Base, Bound});
  }

  /// Batch lookup: Out[i] = lookup(Addrs[i]). The default loops;
  /// sharded implementations hold each stripe's lock across runs of
  /// same-shard addresses so a batch pays one acquisition per run, not
  /// one per slot.
  virtual void lookupN(const uint64_t *Addrs, Bounds *Out, size_t N) {
    for (size_t I = 0; I < N; ++I)
      Out[I] = lookup(Addrs[I]);
  }

  /// Batch update: update(Addrs[i], In[i]) for each i. Same batching
  /// contract as lookupN.
  virtual void updateN(const uint64_t *Addrs, const Bounds *In, size_t N) {
    for (size_t I = 0; I < N; ++I)
      update(Addrs[I], In[I]);
  }

  /// Clears metadata for every pointer slot in [Addr, Addr+Size) — used when
  /// memory is freed or a stack frame is deallocated (§5.2 "memory reuse and
  /// stale metadata"). Returns the number of entries cleared.
  virtual uint64_t clearRange(uint64_t Addr, uint64_t Size) = 0;

  /// Copies metadata for every pointer slot from [Src, Src+Size) to
  /// [Dst, Dst+Size) — the metadata half of an instrumented memcpy (§5.2).
  /// Destination slots whose source slot carries no metadata are cleared
  /// (counted in MetadataStats::Clears, not in the return value), so stale
  /// bounds cannot leak into the copied region. Returns the number of
  /// entries copied.
  virtual uint64_t copyRange(uint64_t Dst, uint64_t Src, uint64_t Size) = 0;

  /// Simulated instruction cost of one lookup (paper §5.1: hash ≈ 9, shadow
  /// ≈ 5 x86 instructions).
  virtual uint64_t lookupCost() const = 0;

  /// Simulated instruction cost of one update.
  virtual uint64_t updateCost() const = 0;

  /// Current metadata memory footprint in bytes.
  virtual uint64_t memoryBytes() const = 0;

  /// Drops all metadata and statistics.
  virtual void reset() = 0;

  /// Aggregate statistics, summed over shards.
  virtual MetadataStats stats() const = 0;

  /// Number of address-range shards (1 in the default configuration).
  virtual unsigned shards() const { return 1; }

  /// The concurrency model this instance was constructed with.
  virtual ConcurrencyModel concurrency() const {
    return ConcurrencyModel::SingleThread;
  }

  /// Attaches a telemetry sink; paths are rooted at \p Prefix (the run
  /// driver uses "facility/<name>"). Null detaches. Recording never
  /// changes behaviour or the modelled costs; with no sink attached the
  /// hot paths pay exactly one pointer test (the zero-cost disabled
  /// mode). With more than one shard, per-shard series (probe
  /// histograms, contention counters) live under "<Prefix>/shard<K>".
  /// Implementations override to cache direct histogram pointers.
  virtual void attachTelemetry(Telemetry *T, const std::string &Prefix) {
    Telem = T;
    TelemetryPrefix = Prefix;
  }

  /// Pushes end-of-run gauges (occupancy, memory footprint, contention)
  /// into the attached sink; no-op when none is attached. Must be called
  /// from one thread, after all lanes joined.
  virtual void flushTelemetry() {}

protected:
  /// Normalized shard count: power of two, at least 1, capped at 1 << 16.
  static unsigned normalizeShards(unsigned Requested) {
    unsigned N = 1;
    while (N < Requested && N < (1u << 16))
      N <<= 1;
    return N;
  }

  Telemetry *Telem = nullptr;
  std::string TelemetryPrefix;
};

} // namespace softbound

#endif // SOFTBOUND_RUNTIME_METADATAFACILITY_H
