//===- runtime/MetadataFacility.h - disjoint metadata space -----*- C++ -*-===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The disjoint metadata facility of §3.2/§5.1: maps the *address of a
/// pointer in memory* to the base/bound metadata of the pointer stored
/// there. Two implementations, matching the paper: an open hash table
/// (~9 x86 instructions per lookup) and a tag-less shadow space (~5).
///
/// Facility API v2 (docs/runtime.md): value-returning `Bounds lookup`,
/// batch `lookupN`/`updateN` entry points, and an optional sharded
/// concurrency mode — the address space is divided into power-of-two
/// stripes, each stripe owned by one shard with its own striped
/// reader-writer lock, so N VM lanes can share one facility. The
/// default (`ConcurrencyModel::SingleThread`, one shard) takes no locks
/// at all and is bit-for-bit identical to the pre-v2 behaviour the
/// bench gate's baselines were recorded against.
///
//===----------------------------------------------------------------------===//

#ifndef SOFTBOUND_RUNTIME_METADATAFACILITY_H
#define SOFTBOUND_RUNTIME_METADATAFACILITY_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <shared_mutex>
#include <string>

namespace softbound {

class Telemetry;
class TelemetryHistogram;

/// The {base, bound} pair recorded for one pointer slot. (0, 0) is the
/// "null bounds" value that fails every dereference check; it doubles as
/// the miss result, so a lookup never needs an out-param or a found flag.
struct Bounds {
  uint64_t Base = 0;
  uint64_t Bound = 0;

  /// True for the never-recorded / cleared state.
  bool null() const { return Base == 0 && Bound == 0; }

  bool operator==(const Bounds &O) const {
    return Base == O.Base && Bound == O.Bound;
  }
  bool operator!=(const Bounds &O) const { return !(*this == O); }
};

/// How a facility instance synchronizes concurrent callers.
enum class ConcurrencyModel {
  /// No locking anywhere; callers guarantee single-threaded access. This
  /// is the default and the mode every gated baseline runs under.
  SingleThread,
  /// Striped reader-writer locks, one per shard: lookups take a shared
  /// (never mutually excluding) acquisition, updates and range ops an
  /// exclusive one. Required whenever more than one VM lane shares the
  /// facility.
  Sharded,
};

/// log2 of the address-range stripe that maps to one shard: 32 KB, one
/// shadow page (ShadowSpaceMetadata::SlotsPerPage slots of 8 bytes), so
/// a stripe never splits a shadow page across shards.
inline constexpr unsigned ShardStripeLog2 = 15;

/// Simulated-cost prices for facility lock traffic (docs/runtime.md):
/// an uncontended striped-lock acquisition models one atomic op; a
/// contended one models the coherence miss plus re-acquisition. The
/// bench gate prices serialization as
///   uncontended * UncontendedLockCost + contended * ContendedLockCost
/// in the non-gated `contention_*` key group. SingleThread runs take no
/// locks, so this component is exactly zero on every gated baseline.
inline constexpr uint64_t UncontendedLockCost = 1;
inline constexpr uint64_t ContendedLockCost = 40;

/// Constructor-time facility configuration.
struct FacilityOptions {
  ConcurrencyModel Model = ConcurrencyModel::SingleThread;
  /// Shard count; rounded up to a power of two, minimum 1. Shard choice
  /// is `(Addr >> ShardStripeLog2) & (Shards - 1)`.
  unsigned Shards = 1;
};

/// Aggregate statistics one facility gathers over a run. In the Sharded
/// model these are summed over shards at read time.
struct MetadataStats {
  uint64_t Lookups = 0;
  uint64_t Updates = 0;
  uint64_t Clears = 0;
  uint64_t Collisions = 0;    ///< Extra probes (hash table only).
  uint64_t LockAcquires = 0;  ///< Striped-lock acquisitions (Sharded only).
  uint64_t LockContended = 0; ///< Acquisitions that found the lock held.

  /// The contention component of the simulated cost model (priced with
  /// UncontendedLockCost / ContendedLockCost; zero when SingleThread).
  uint64_t contentionSimCost() const {
    return (LockAcquires - LockContended) * UncontendedLockCost +
           LockContended * ContendedLockCost;
  }
};

/// One shard's striped lock plus its contention tallies. A null pointer
/// passed to the guards below means "SingleThread mode": the guard
/// degenerates to a single branch, preserving the lock-free fast path
/// the gated baselines were measured on.
struct ShardLock {
  mutable std::shared_mutex Mu;
  mutable std::atomic<uint64_t> Acquires{0};
  mutable std::atomic<uint64_t> Contended{0};
};

/// Reader-side guard: shared acquisition, so concurrent lookups never
/// serialize against each other. Counts the acquisition and whether it
/// found the stripe exclusively held.
class ShardSharedGuard {
public:
  explicit ShardSharedGuard(const ShardLock *L) : L(L) {
    if (!L)
      return;
    L->Acquires.fetch_add(1, std::memory_order_relaxed);
    if (!L->Mu.try_lock_shared()) {
      L->Contended.fetch_add(1, std::memory_order_relaxed);
      L->Mu.lock_shared();
    }
  }
  ~ShardSharedGuard() {
    if (L)
      L->Mu.unlock_shared();
  }
  ShardSharedGuard(const ShardSharedGuard &) = delete;
  ShardSharedGuard &operator=(const ShardSharedGuard &) = delete;

private:
  const ShardLock *L;
};

/// Writer-side guard: exclusive acquisition for updates and range ops.
class ShardExclusiveGuard {
public:
  explicit ShardExclusiveGuard(const ShardLock *L) : L(L) {
    if (!L)
      return;
    L->Acquires.fetch_add(1, std::memory_order_relaxed);
    if (!L->Mu.try_lock()) {
      L->Contended.fetch_add(1, std::memory_order_relaxed);
      L->Mu.lock();
    }
  }
  ~ShardExclusiveGuard() {
    if (L)
      L->Mu.unlock();
  }
  ShardExclusiveGuard(const ShardExclusiveGuard &) = delete;
  ShardExclusiveGuard &operator=(const ShardExclusiveGuard &) = delete;

private:
  const ShardLock *L;
};

/// Abstract interface of the disjoint metadata space.
///
/// Contract:
///  - The mapping is keyed by the location being loaded or stored, not by
///    the value of the pointer (§5.1). Addresses are simulated-VM
///    addresses; pointer slots are 8-byte aligned in all workloads.
///  - `lookup` returns the recorded Bounds by value; the null bounds
///    (0, 0) on a miss. There is no out-param form.
///  - In the Sharded model every single-slot operation is atomic with
///    respect to other callers; range operations (`clearRange`,
///    `copyRange`) are atomic per stripe but not across stripes — a
///    concurrent reader may observe a partially cleared/copied range,
///    which matches what a real multithreaded memcpy/free exposes.
///  - Statistics and telemetry never change behaviour or modelled costs.
class MetadataFacility {
public:
  virtual ~MetadataFacility() = default;

  virtual const char *name() const = 0;

  /// Returns the bounds recorded for the pointer stored at \p Addr;
  /// the null bounds — which fail every dereference check — when no
  /// metadata was ever recorded. Sharded model: shared (reader)
  /// acquisition only, so lookups scale across lanes.
  virtual Bounds lookup(uint64_t Addr) = 0;

  /// Records bounds for the pointer stored at \p Addr.
  virtual void update(uint64_t Addr, Bounds B) = 0;

  /// Convenience spelling of update() for call sites that carry the pair
  /// as two scalars (the VM's reloc loader, tests).
  void update(uint64_t Addr, uint64_t Base, uint64_t Bound) {
    update(Addr, Bounds{Base, Bound});
  }

  /// Batch lookup: Out[i] = lookup(Addrs[i]). The default loops;
  /// sharded implementations hold each stripe's lock across runs of
  /// same-shard addresses so a batch pays one acquisition per run, not
  /// one per slot.
  virtual void lookupN(const uint64_t *Addrs, Bounds *Out, size_t N) {
    for (size_t I = 0; I < N; ++I)
      Out[I] = lookup(Addrs[I]);
  }

  /// Batch update: update(Addrs[i], In[i]) for each i. Same batching
  /// contract as lookupN.
  virtual void updateN(const uint64_t *Addrs, const Bounds *In, size_t N) {
    for (size_t I = 0; I < N; ++I)
      update(Addrs[I], In[I]);
  }

  /// Clears metadata for every pointer slot in [Addr, Addr+Size) — used when
  /// memory is freed or a stack frame is deallocated (§5.2 "memory reuse and
  /// stale metadata"). Returns the number of entries cleared.
  virtual uint64_t clearRange(uint64_t Addr, uint64_t Size) = 0;

  /// Copies metadata for every pointer slot from [Src, Src+Size) to
  /// [Dst, Dst+Size) — the metadata half of an instrumented memcpy (§5.2).
  /// Destination slots whose source slot carries no metadata are cleared
  /// (counted in MetadataStats::Clears, not in the return value), so stale
  /// bounds cannot leak into the copied region. Returns the number of
  /// entries copied.
  virtual uint64_t copyRange(uint64_t Dst, uint64_t Src, uint64_t Size) = 0;

  /// Simulated instruction cost of one lookup (paper §5.1: hash ≈ 9, shadow
  /// ≈ 5 x86 instructions).
  virtual uint64_t lookupCost() const = 0;

  /// Simulated instruction cost of one update.
  virtual uint64_t updateCost() const = 0;

  /// Current metadata memory footprint in bytes.
  virtual uint64_t memoryBytes() const = 0;

  /// Drops all metadata and statistics.
  virtual void reset() = 0;

  /// Aggregate statistics, summed over shards.
  virtual MetadataStats stats() const = 0;

  /// Number of address-range shards (1 in the default configuration).
  virtual unsigned shards() const { return 1; }

  /// The concurrency model this instance was constructed with.
  virtual ConcurrencyModel concurrency() const {
    return ConcurrencyModel::SingleThread;
  }

  /// Attaches a telemetry sink; paths are rooted at \p Prefix (the run
  /// driver uses "facility/<name>"). Null detaches. Recording never
  /// changes behaviour or the modelled costs; with no sink attached the
  /// hot paths pay exactly one pointer test (the zero-cost disabled
  /// mode). With more than one shard, per-shard series (probe
  /// histograms, contention counters) live under "<Prefix>/shard<K>".
  /// Implementations override to cache direct histogram pointers.
  virtual void attachTelemetry(Telemetry *T, const std::string &Prefix) {
    Telem = T;
    TelemetryPrefix = Prefix;
  }

  /// Pushes end-of-run gauges (occupancy, memory footprint, contention)
  /// into the attached sink; no-op when none is attached. Must be called
  /// from one thread, after all lanes joined.
  virtual void flushTelemetry() {}

protected:
  /// Normalized shard count: power of two, at least 1, capped at 1 << 16.
  static unsigned normalizeShards(unsigned Requested) {
    unsigned N = 1;
    while (N < Requested && N < (1u << 16))
      N <<= 1;
    return N;
  }

  Telemetry *Telem = nullptr;
  std::string TelemetryPrefix;
};

} // namespace softbound

#endif // SOFTBOUND_RUNTIME_METADATAFACILITY_H
