//===- ir/Module.cpp - top-level IR container -----------------------------===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Module.h"

using namespace softbound;

Function *Module::createFunction(const std::string &Name, FunctionType *FTy,
                                 bool Builtin) {
  assert(!FuncMap.count(Name) && "duplicate function name");
  auto F = std::make_unique<Function>(Ctx.ptrTo(FTy), FTy, Name, this,
                                      Builtin);
  Function *Out = F.get();
  FuncMap[Name] = Out;
  Funcs.push_back(std::move(F));
  return Out;
}

Function *Module::getFunction(const std::string &Name) const {
  auto It = FuncMap.find(Name);
  return It == FuncMap.end() ? nullptr : It->second;
}

Function *Module::entryFunction() const { return resolveEntry("main"); }

Function *Module::resolveEntry(const std::string &Name) const {
  if (Function *F = getFunction(Name))
    return F;
  return getFunction("_sb_" + Name);
}

void Module::recordInterProcContract(
    const std::vector<const Function *> &Internal) {
  InterProcContract = true;
  InterProcUnsafeEntries.insert(Internal.begin(), Internal.end());
}

unsigned Module::assignCheckSites() {
  for (const auto &F : Funcs) {
    if (!F->isDefinition())
      continue;
    // Names already claimed in this function by preserved IDs, so a new
    // site can never collide with one assigned on an earlier walk (a
    // pass may have deleted the instruction that once held an ordinal).
    std::set<std::string> Used;
    for (const auto &BB : F->blocks())
      for (const auto &I : *BB)
        if (I->site() >= 0 && static_cast<size_t>(I->site()) < Sites.size())
          Used.insert(Sites[I->site()].Name);
    unsigned Ordinal = 0;
    for (const auto &BB : F->blocks())
      for (const auto &I : *BB) {
        if (!isSiteKind(I->kind()))
          continue;
        const auto *Chk = dyn_cast<SpatialCheckInst>(I.get());
        if (I->site() >= 0) {
          // Preserved entry; only refresh the guard flag (hoisting can
          // change a check's guardedness without recreating it).
          if (static_cast<size_t>(I->site()) < Sites.size())
            Sites[I->site()].Guarded = Chk && Chk->isGuarded();
          continue;
        }
        std::string Name;
        do
          Name = F->name() + "#" + std::to_string(Ordinal++);
        while (Used.count(Name));
        I->setSite(static_cast<int>(Sites.size()));
        Sites.push_back({std::move(Name), I->kind(), Chk && Chk->isGuarded()});
      }
  }
  return static_cast<unsigned>(Sites.size());
}

void Module::renameFunction(Function *F, const std::string &NewName) {
  assert(!FuncMap.count(NewName) && "rename collides with existing function");
  FuncMap.erase(F->name());
  F->setName(NewName);
  FuncMap[NewName] = F;
}

GlobalVariable *Module::createGlobal(const std::string &Name, Type *ValueTy,
                                     GlobalInitializer Init, bool Constant) {
  assert(!GlobalMap.count(Name) && "duplicate global name");
  Init.Bytes.resize(ValueTy->sizeInBytes(), 0);
  auto G = std::make_unique<GlobalVariable>(Ctx.ptrTo(ValueTy), ValueTy, Name,
                                            std::move(Init), Constant);
  GlobalVariable *Out = G.get();
  GlobalMap[Name] = Out;
  Globals.push_back(std::move(G));
  return Out;
}

GlobalVariable *Module::getGlobal(const std::string &Name) const {
  auto It = GlobalMap.find(Name);
  return It == GlobalMap.end() ? nullptr : It->second;
}

GlobalVariable *Module::createStringLiteral(const std::string &Str) {
  GlobalInitializer Init;
  Init.Bytes.assign(Str.begin(), Str.end());
  Init.Bytes.push_back(0);
  Type *Ty = Ctx.arrayOf(Ctx.i8(), Init.Bytes.size());
  return createGlobal(".str" + std::to_string(NextStrId++), Ty,
                      std::move(Init), /*Constant=*/true);
}

ConstantInt *Module::constInt(IntType *Ty, int64_t V) {
  // Normalize to the type's width (sign-extended storage).
  unsigned Bits = Ty->bits();
  if (Bits < 64) {
    uint64_t Mask = (1ULL << Bits) - 1;
    uint64_t U = static_cast<uint64_t>(V) & Mask;
    // Sign extend.
    if (Bits > 1 && (U >> (Bits - 1)) & 1)
      U |= ~Mask;
    V = static_cast<int64_t>(U);
  }
  auto Key = std::make_pair(Ty, V);
  auto It = IntConsts.find(Key);
  if (It != IntConsts.end())
    return It->second.get();
  auto C = std::make_unique<ConstantInt>(Ty, V);
  ConstantInt *Out = C.get();
  IntConsts[Key] = std::move(C);
  return Out;
}

ConstantNull *Module::nullPtr(PointerType *Ty) {
  auto It = NullConsts.find(Ty);
  if (It != NullConsts.end())
    return It->second.get();
  auto C = std::make_unique<ConstantNull>(Ty);
  ConstantNull *Out = C.get();
  NullConsts[Ty] = std::move(C);
  return Out;
}

ConstantUndef *Module::undef(Type *Ty) {
  auto It = UndefConsts.find(Ty);
  if (It != UndefConsts.end())
    return It->second.get();
  auto C = std::make_unique<ConstantUndef>(Ty);
  ConstantUndef *Out = C.get();
  UndefConsts[Ty] = std::move(C);
  return Out;
}
