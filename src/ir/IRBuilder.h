//===- ir/IRBuilder.h - instruction construction helper ---------*- C++ -*-===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Convenience builder that constructs instructions and inserts them at a
/// chosen position, in the style of llvm::IRBuilder.
///
//===----------------------------------------------------------------------===//

#ifndef SOFTBOUND_IR_IRBUILDER_H
#define SOFTBOUND_IR_IRBUILDER_H

#include "ir/Module.h"

namespace softbound {

/// Builds and inserts instructions at an insertion point.
class IRBuilder {
public:
  explicit IRBuilder(Module &M) : M(M) {}

  Module &module() { return M; }
  TypeContext &ctx() { return M.ctx(); }

  /// Positions the builder at the end of \p Block.
  void setInsertPoint(BasicBlock *Block) {
    BB = Block;
    AtEnd = true;
  }

  /// Positions the builder immediately before \p Where in \p Block.
  void setInsertPoint(BasicBlock *Block, BasicBlock::iterator Where) {
    BB = Block;
    It = Where;
    AtEnd = false;
  }

  BasicBlock *insertBlock() const { return BB; }

  /// True if the current block already ends in a terminator.
  bool blockTerminated() const { return BB && BB->terminator() != nullptr; }

  //===--------------------------------------------------------------------===//
  // Core instructions
  //===--------------------------------------------------------------------===//

  AllocaInst *alloca_(Type *Ty, const std::string &Name) {
    return insert(new AllocaInst(ctx().ptrTo(Ty), Ty, Name));
  }
  LoadInst *load(Type *Ty, Value *Ptr, const std::string &Name = "ld") {
    return insert(new LoadInst(Ty, Ptr, Name));
  }
  StoreInst *store(Value *V, Value *Ptr) {
    return insert(new StoreInst(V, Ptr, ctx().voidTy()));
  }
  GEPInst *gep(Type *SourceTy, Value *Ptr, std::vector<Value *> Idx,
               const std::string &Name = "gep") {
    Type *Elem = GEPInst::resultElementType(SourceTy, Idx);
    return insert(
        new GEPInst(ctx().ptrTo(Elem), SourceTy, Ptr, std::move(Idx), Name));
  }
  BinOpInst *binop(BinOpInst::Op O, Value *L, Value *R,
                   const std::string &Name = "t") {
    return insert(new BinOpInst(O, L, R, Name));
  }
  Value *add(Value *L, Value *R) { return binop(BinOpInst::Op::Add, L, R); }
  Value *sub(Value *L, Value *R) { return binop(BinOpInst::Op::Sub, L, R); }
  Value *mul(Value *L, Value *R) { return binop(BinOpInst::Op::Mul, L, R); }
  ICmpInst *icmp(ICmpInst::Pred P, Value *L, Value *R,
                 const std::string &Name = "cmp") {
    return insert(new ICmpInst(P, L, R, ctx().i1(), Name));
  }
  CastInst *castOp(CastInst::Op O, Value *V, Type *DestTy,
                   const std::string &Name = "cast") {
    return insert(new CastInst(O, V, DestTy, Name));
  }
  CastInst *bitcast(Value *V, Type *DestTy) {
    return castOp(CastInst::Op::Bitcast, V, DestTy, "bc");
  }
  SelectInst *select(Value *C, Value *T, Value *F,
                     const std::string &Name = "sel") {
    return insert(new SelectInst(C, T, F, Name));
  }
  PhiInst *phi(Type *Ty, const std::string &Name = "phi") {
    // Phis always go to the front of the block.
    auto P = std::make_unique<PhiInst>(Ty, Name);
    PhiInst *Out = P.get();
    BB->insertBefore(BB->begin(), std::move(P));
    return Out;
  }
  CallInst *call(Function *Callee, std::vector<Value *> Args,
                 const std::string &Name = "call") {
    FunctionType *FTy = Callee->functionType();
    return insert(new CallInst(FTy, Callee, std::move(Args),
                               FTy->returnType(), Name));
  }
  CallInst *callIndirect(FunctionType *FTy, Value *Callee,
                         std::vector<Value *> Args,
                         const std::string &Name = "icall") {
    return insert(
        new CallInst(FTy, Callee, std::move(Args), FTy->returnType(), Name));
  }
  RetInst *ret(Value *V = nullptr) {
    return insert(new RetInst(ctx().voidTy(), V));
  }
  BrInst *br(BasicBlock *Dest) { return insert(new BrInst(ctx().voidTy(), Dest)); }
  BrInst *condBr(Value *Cond, BasicBlock *T, BasicBlock *F) {
    return insert(new BrInst(ctx().voidTy(), Cond, T, F));
  }
  UnreachableInst *unreachable() {
    return insert(new UnreachableInst(ctx().voidTy()));
  }

  //===--------------------------------------------------------------------===//
  // SoftBound instrumentation instructions
  //===--------------------------------------------------------------------===//

  MakeBoundsInst *makeBounds(Value *Base, Value *Bound,
                             const std::string &Name = "bnd") {
    return insert(new MakeBoundsInst(ctx().boundsTy(), Base, Bound, Name));
  }
  SpatialCheckInst *spatialCheck(Value *Ptr, Value *Bounds, uint64_t Size,
                                 bool IsStore, Value *Guard = nullptr) {
    return insert(new SpatialCheckInst(ctx().voidTy(), Ptr, Bounds, Size,
                                       IsStore, Guard));
  }
  FuncPtrCheckInst *funcPtrCheck(Value *Ptr, Value *Bounds) {
    return insert(new FuncPtrCheckInst(ctx().voidTy(), Ptr, Bounds));
  }
  MetaLoadInst *metaLoad(Value *Addr, const std::string &Name = "mld") {
    return insert(new MetaLoadInst(ctx().boundsTy(), Addr, Name));
  }
  MetaStoreInst *metaStore(Value *Addr, Value *Bounds) {
    return insert(new MetaStoreInst(ctx().voidTy(), Addr, Bounds));
  }
  PackPBInst *packPB(Value *Ptr, Value *Bounds,
                     const std::string &Name = "pp") {
    return insert(new PackPBInst(ctx().ptrPairTy(), Ptr, Bounds, Name));
  }
  ExtractPtrInst *extractPtr(PointerType *Ty, Value *Pair,
                             const std::string &Name = "p") {
    return insert(new ExtractPtrInst(Ty, Pair, Name));
  }
  ExtractBoundsInst *extractBounds(Value *Pair,
                                   const std::string &Name = "b") {
    return insert(new ExtractBoundsInst(ctx().boundsTy(), Pair, Name));
  }

private:
  template <typename T> T *insert(T *I) {
    assert(BB && "no insertion point set");
    std::unique_ptr<Instruction> P(I);
    if (AtEnd)
      BB->append(std::move(P));
    else
      BB->insertBefore(It, std::move(P));
    return I;
  }

  Module &M;
  BasicBlock *BB = nullptr;
  BasicBlock::iterator It;
  bool AtEnd = true;
};

} // namespace softbound

#endif // SOFTBOUND_IR_IRBUILDER_H
