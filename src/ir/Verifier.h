//===- ir/Verifier.h - structural IR validation -----------------*- C++ -*-===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural and type-level validation of IR modules, run after the
/// frontend, after each optimization pass (in tests), and after the
/// SoftBound transformation — instrumented modules must stay well typed.
///
//===----------------------------------------------------------------------===//

#ifndef SOFTBOUND_IR_VERIFIER_H
#define SOFTBOUND_IR_VERIFIER_H

#include <string>
#include <vector>

namespace softbound {

class Module;
class Function;

/// Verifies \p F; appends human-readable problems to \p Errors.
void verifyFunction(const Function &F, std::vector<std::string> &Errors);

/// Verifies the whole module. Returns the list of problems (empty = valid).
std::vector<std::string> verifyModule(const Module &M);

} // namespace softbound

#endif // SOFTBOUND_IR_VERIFIER_H
