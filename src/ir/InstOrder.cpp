//===- ir/InstOrder.cpp - intra-block instruction ordering ------------------===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/InstOrder.h"

using namespace softbound;

InstOrder::InstOrder(const Function &F) {
  for (const auto &BB : F.blocks()) {
    int N = 0;
    for (const auto &I : *BB)
      Ord[I.get()] = N++;
  }
}
