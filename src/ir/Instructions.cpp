//===- ir/Instructions.cpp - IR instruction set ---------------------------===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Instructions.h"

#include "ir/Function.h"
#include "support/Compiler.h"

using namespace softbound;

Type *GEPInst::resultElementType(Type *SourceTy,
                                 const std::vector<Value *> &Indices) {
  assert(!Indices.empty() && "GEP needs at least one index");
  Type *Cur = SourceTy;
  // The first index steps over whole SourceTy elements and does not change
  // the element type.
  for (size_t I = 1; I < Indices.size(); ++I) {
    if (auto *AT = dyn_cast<ArrayType>(Cur)) {
      Cur = AT->element();
      continue;
    }
    auto *ST = cast<StructType>(Cur);
    auto *CI = cast<ConstantInt>(Indices[I]);
    Cur = ST->field(static_cast<unsigned>(CI->value()));
  }
  return Cur;
}

bool GEPInst::isStructFieldAccess() const {
  // Walk the index path; report whether any step selects a struct field.
  Type *Cur = SourceTy;
  for (unsigned I = 1; I < numIndices(); ++I) {
    if (auto *AT = dyn_cast<ArrayType>(Cur)) {
      Cur = AT->element();
      continue;
    }
    if (isa<StructType>(Cur))
      return true;
  }
  return false;
}

const char *BinOpInst::opcodeName(Op O) {
  switch (O) {
  case Op::Add:
    return "add";
  case Op::Sub:
    return "sub";
  case Op::Mul:
    return "mul";
  case Op::SDiv:
    return "sdiv";
  case Op::UDiv:
    return "udiv";
  case Op::SRem:
    return "srem";
  case Op::URem:
    return "urem";
  case Op::And:
    return "and";
  case Op::Or:
    return "or";
  case Op::Xor:
    return "xor";
  case Op::Shl:
    return "shl";
  case Op::LShr:
    return "lshr";
  case Op::AShr:
    return "ashr";
  }
  sb_unreachable("covered switch");
}

const char *ICmpInst::predName(Pred P) {
  switch (P) {
  case Pred::EQ:
    return "eq";
  case Pred::NE:
    return "ne";
  case Pred::SLT:
    return "slt";
  case Pred::SLE:
    return "sle";
  case Pred::SGT:
    return "sgt";
  case Pred::SGE:
    return "sge";
  case Pred::ULT:
    return "ult";
  case Pred::ULE:
    return "ule";
  case Pred::UGT:
    return "ugt";
  case Pred::UGE:
    return "uge";
  }
  sb_unreachable("covered switch");
}

const char *CastInst::opcodeName(Op O) {
  switch (O) {
  case Op::Bitcast:
    return "bitcast";
  case Op::PtrToInt:
    return "ptrtoint";
  case Op::IntToPtr:
    return "inttoptr";
  case Op::Trunc:
    return "trunc";
  case Op::ZExt:
    return "zext";
  case Op::SExt:
    return "sext";
  }
  sb_unreachable("covered switch");
}

Function *CallInst::calledFunction() const {
  return dyn_cast<Function>(callee());
}
