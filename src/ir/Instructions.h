//===- ir/Instructions.h - IR instruction set -------------------*- C++ -*-===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// All IR instructions. The core set mirrors the LLVM instructions the paper's
/// transformation consumes (alloca/load/store/GEP/arithmetic/branches/calls/
/// phi), and the SoftBound set is the instrumentation vocabulary the pass
/// emits: bounds construction, spatial checks, and disjoint-metadata loads
/// and stores (§3.1–§3.2 of the paper).
///
//===----------------------------------------------------------------------===//

#ifndef SOFTBOUND_IR_INSTRUCTIONS_H
#define SOFTBOUND_IR_INSTRUCTIONS_H

#include "ir/Value.h"

#include <cassert>

namespace softbound {

class BasicBlock;
class Function;
class FunctionType;

/// Base class of all instructions. Operands are raw Value pointers; use
/// lists are computed on demand by analyses rather than maintained eagerly.
class Instruction : public Value {
public:
  BasicBlock *parent() const { return Parent; }
  void setParent(BasicBlock *BB) { Parent = BB; }

  unsigned numOperands() const { return Ops.size(); }
  Value *op(unsigned I) const {
    assert(I < Ops.size() && "operand index out of range");
    return Ops[I];
  }
  void setOp(unsigned I, Value *V) {
    assert(I < Ops.size() && "operand index out of range");
    Ops[I] = V;
  }
  const std::vector<Value *> &operands() const { return Ops; }

  /// Replaces every operand equal to \p From with \p To.
  void replaceUsesOf(Value *From, Value *To) {
    for (auto &Op : Ops)
      if (Op == From)
        Op = To;
  }

  bool isTerminator() const {
    return kind() == ValueKind::Ret || kind() == ValueKind::Br ||
           kind() == ValueKind::Unreachable;
  }

  /// Stable profiling site ID (Module::assignCheckSites), or -1 when
  /// unassigned. Only check and metadata instructions carry one; the VM
  /// indexes its per-site profile with it and the printer emits it as
  /// ", site N" so reports map back to textual IR.
  int site() const { return SiteId; }
  void setSite(int Id) { SiteId = Id; }

  /// True for instructions with no side effects that are removable when the
  /// result is unused.
  bool isPure() const {
    switch (kind()) {
    case ValueKind::BinOp:
    case ValueKind::ICmp:
    case ValueKind::Cast:
    case ValueKind::Select:
    case ValueKind::GEP:
    case ValueKind::Phi:
    case ValueKind::MakeBounds:
    case ValueKind::PackPB:
    case ValueKind::ExtractPtr:
    case ValueKind::ExtractBounds:
      return true;
    default:
      return false;
    }
  }

  static bool classof(const Value *V) {
    return V->kind() >= ValueKind::Alloca &&
           V->kind() <= ValueKind::ExtractBounds;
  }

protected:
  Instruction(ValueKind Kind, Type *Ty, std::vector<Value *> Operands,
              std::string Name = "")
      : Value(Kind, Ty, std::move(Name)), Ops(std::move(Operands)) {}

  std::vector<Value *> &mutableOps() { return Ops; }

private:
  BasicBlock *Parent = nullptr;
  std::vector<Value *> Ops;
  int SiteId = -1;
};

/// Stack allocation of one value of allocatedType() in the current frame.
/// Yields the address (a pointer to allocatedType()).
class AllocaInst : public Instruction {
public:
  AllocaInst(PointerType *PtrTy, Type *AllocatedTy, std::string Name)
      : Instruction(ValueKind::Alloca, PtrTy, {}, std::move(Name)),
        AllocatedTy(AllocatedTy) {}

  Type *allocatedType() const { return AllocatedTy; }

  static bool classof(const Value *V) { return V->kind() == ValueKind::Alloca; }

private:
  Type *AllocatedTy;
};

/// Loads a value of type() from the pointer operand.
class LoadInst : public Instruction {
public:
  LoadInst(Type *Ty, Value *Ptr, std::string Name)
      : Instruction(ValueKind::Load, Ty, {Ptr}, std::move(Name)) {}

  Value *pointer() const { return op(0); }

  static bool classof(const Value *V) { return V->kind() == ValueKind::Load; }
};

/// Stores the value operand through the pointer operand.
class StoreInst : public Instruction {
public:
  StoreInst(Value *Val, Value *Ptr, Type *VoidTy)
      : Instruction(ValueKind::Store, VoidTy, {Val, Ptr}) {}

  Value *value() const { return op(0); }
  Value *pointer() const { return op(1); }

  static bool classof(const Value *V) { return V->kind() == ValueKind::Store; }
};

/// LLVM-style getelementptr: ops[0] is the base pointer, ops[1..] are
/// indices. The first index scales by sizeof(sourceType()); later indices
/// step into arrays (any value) or structs (ConstantInt field numbers).
class GEPInst : public Instruction {
public:
  GEPInst(PointerType *ResultTy, Type *SourceTy, Value *Ptr,
          std::vector<Value *> Indices, std::string Name)
      : Instruction(ValueKind::GEP, ResultTy, {}, std::move(Name)),
        SourceTy(SourceTy) {
    mutableOps().push_back(Ptr);
    for (auto *I : Indices)
      mutableOps().push_back(I);
  }

  Type *sourceType() const { return SourceTy; }
  Value *pointer() const { return op(0); }
  unsigned numIndices() const { return numOperands() - 1; }
  Value *index(unsigned I) const { return op(I + 1); }

  /// Computes the element type a GEP with these indices points at, walking
  /// from \p SourceTy. Struct steps must be ConstantInt.
  static Type *resultElementType(Type *SourceTy,
                                 const std::vector<Value *> &Indices);

  /// True if this GEP selects a field of a struct (its last step is a struct
  /// field selection) — the case where SoftBound may shrink bounds (§3.1).
  bool isStructFieldAccess() const;

  static bool classof(const Value *V) { return V->kind() == ValueKind::GEP; }

private:
  Type *SourceTy;
};

/// Integer binary operation.
class BinOpInst : public Instruction {
public:
  enum class Op {
    Add,
    Sub,
    Mul,
    SDiv,
    UDiv,
    SRem,
    URem,
    And,
    Or,
    Xor,
    Shl,
    LShr,
    AShr,
  };

  BinOpInst(Op O, Value *L, Value *R, std::string Name)
      : Instruction(ValueKind::BinOp, L->type(), {L, R}, std::move(Name)),
        Opcode(O) {}

  Op opcode() const { return Opcode; }
  Value *lhs() const { return op(0); }
  Value *rhs() const { return op(1); }

  static const char *opcodeName(Op O);

  static bool classof(const Value *V) { return V->kind() == ValueKind::BinOp; }

private:
  Op Opcode;
};

/// Integer/pointer comparison producing an i1.
class ICmpInst : public Instruction {
public:
  enum class Pred { EQ, NE, SLT, SLE, SGT, SGE, ULT, ULE, UGT, UGE };

  ICmpInst(Pred P, Value *L, Value *R, Type *I1Ty, std::string Name)
      : Instruction(ValueKind::ICmp, I1Ty, {L, R}, std::move(Name)), P(P) {}

  Pred pred() const { return P; }
  Value *lhs() const { return op(0); }
  Value *rhs() const { return op(1); }

  static const char *predName(Pred P);

  static bool classof(const Value *V) { return V->kind() == ValueKind::ICmp; }

private:
  Pred P;
};

/// Value conversions. Bitcast covers pointer-to-pointer casts; IntToPtr /
/// PtrToInt model C's "wild" integer/pointer conversions (§5.2).
class CastInst : public Instruction {
public:
  enum class Op { Bitcast, PtrToInt, IntToPtr, Trunc, ZExt, SExt };

  CastInst(Op O, Value *V, Type *DestTy, std::string Name)
      : Instruction(ValueKind::Cast, DestTy, {V}, std::move(Name)), Opcode(O) {}

  Op opcode() const { return Opcode; }
  Value *source() const { return op(0); }

  static const char *opcodeName(Op O);

  static bool classof(const Value *V) { return V->kind() == ValueKind::Cast; }

private:
  Op Opcode;
};

/// Ternary select: cond ? ifTrue : ifFalse.
class SelectInst : public Instruction {
public:
  SelectInst(Value *Cond, Value *T, Value *F, std::string Name)
      : Instruction(ValueKind::Select, T->type(), {Cond, T, F},
                    std::move(Name)) {}

  Value *condition() const { return op(0); }
  Value *ifTrue() const { return op(1); }
  Value *ifFalse() const { return op(2); }

  static bool classof(const Value *V) { return V->kind() == ValueKind::Select; }
};

/// SSA phi node. Incoming values are the operands; incoming blocks are kept
/// in a parallel array.
class PhiInst : public Instruction {
public:
  PhiInst(Type *Ty, std::string Name)
      : Instruction(ValueKind::Phi, Ty, {}, std::move(Name)) {}

  void addIncoming(Value *V, BasicBlock *BB) {
    mutableOps().push_back(V);
    Blocks.push_back(BB);
  }

  unsigned numIncoming() const { return numOperands(); }
  Value *incomingValue(unsigned I) const { return op(I); }
  void setIncomingValue(unsigned I, Value *V) { setOp(I, V); }
  BasicBlock *incomingBlock(unsigned I) const { return Blocks[I]; }

  /// Returns the incoming value for \p BB, or null when absent.
  Value *incomingFor(const BasicBlock *BB) const {
    for (unsigned I = 0; I < Blocks.size(); ++I)
      if (Blocks[I] == BB)
        return incomingValue(I);
    return nullptr;
  }

  static bool classof(const Value *V) { return V->kind() == ValueKind::Phi; }

private:
  std::vector<BasicBlock *> Blocks;
};

/// Function call. ops[0] is the callee (a Function constant for direct
/// calls, any pointer value for indirect calls); ops[1..] are arguments.
class CallInst : public Instruction {
public:
  CallInst(FunctionType *CalleeTy, Value *Callee, std::vector<Value *> Args,
           Type *ResultTy, std::string Name)
      : Instruction(ValueKind::Call, ResultTy, {}, std::move(Name)),
        CalleeTy(CalleeTy) {
    mutableOps().push_back(Callee);
    for (auto *A : Args)
      mutableOps().push_back(A);
  }

  FunctionType *calleeType() const { return CalleeTy; }
  Value *callee() const { return op(0); }
  void setCallee(Value *V) { setOp(0, V); }
  unsigned numArgs() const { return numOperands() - 1; }
  Value *arg(unsigned I) const { return op(I + 1); }
  void setArg(unsigned I, Value *V) { setOp(I + 1, V); }
  void appendArg(Value *V) { mutableOps().push_back(V); }

  /// Returns the statically known callee, or null for indirect calls.
  Function *calledFunction() const;

  /// True when the callee is not a statically known Function — the case
  /// the inter-procedural analyses must treat as "could be any
  /// address-taken function" (§5.2 function-pointer encoding).
  bool isIndirect() const { return calledFunction() == nullptr; }

  static bool classof(const Value *V) { return V->kind() == ValueKind::Call; }

private:
  FunctionType *CalleeTy;
};

/// Function return, with an optional value.
class RetInst : public Instruction {
public:
  RetInst(Type *VoidTy, Value *V)
      : Instruction(ValueKind::Ret, VoidTy, V ? std::vector<Value *>{V}
                                              : std::vector<Value *>{}) {}

  bool hasValue() const { return numOperands() == 1; }
  Value *value() const { return hasValue() ? op(0) : nullptr; }

  static bool classof(const Value *V) { return V->kind() == ValueKind::Ret; }
};

/// Conditional or unconditional branch. Successors are block references,
/// not operands.
class BrInst : public Instruction {
public:
  /// Unconditional.
  BrInst(Type *VoidTy, BasicBlock *Dest)
      : Instruction(ValueKind::Br, VoidTy, {}), Succs{Dest, nullptr} {}
  /// Conditional.
  BrInst(Type *VoidTy, Value *Cond, BasicBlock *IfTrue, BasicBlock *IfFalse)
      : Instruction(ValueKind::Br, VoidTy, {Cond}), Succs{IfTrue, IfFalse} {}

  bool isConditional() const { return numOperands() == 1; }
  Value *condition() const {
    assert(isConditional() && "no condition on unconditional branch");
    return op(0);
  }
  unsigned numSuccessors() const { return isConditional() ? 2 : 1; }
  BasicBlock *successor(unsigned I) const {
    assert(I < numSuccessors() && "successor index out of range");
    return Succs[I];
  }
  void setSuccessor(unsigned I, BasicBlock *BB) {
    assert(I < numSuccessors() && "successor index out of range");
    Succs[I] = BB;
  }

  static bool classof(const Value *V) { return V->kind() == ValueKind::Br; }

private:
  BasicBlock *Succs[2];
};

/// Marks statically unreachable control flow; trap if executed.
class UnreachableInst : public Instruction {
public:
  explicit UnreachableInst(Type *VoidTy)
      : Instruction(ValueKind::Unreachable, VoidTy, {}) {}

  static bool classof(const Value *V) {
    return V->kind() == ValueKind::Unreachable;
  }
};

//===----------------------------------------------------------------------===//
// SoftBound instrumentation instructions (§3 of the paper).
//===----------------------------------------------------------------------===//

/// Builds a first-class bounds value from base and bound words (pointers or
/// i64). Corresponds to the paper's "ptr_base = …; ptr_bound = …" pairs.
class MakeBoundsInst : public Instruction {
public:
  MakeBoundsInst(Type *BoundsTy, Value *Base, Value *Bound, std::string Name)
      : Instruction(ValueKind::MakeBounds, BoundsTy, {Base, Bound},
                    std::move(Name)) {}

  Value *base() const { return op(0); }
  Value *bound() const { return op(1); }

  static bool classof(const Value *V) {
    return V->kind() == ValueKind::MakeBounds;
  }
};

/// The dereference check of §3.1: aborts unless
/// base <= ptr && ptr + accessSize <= bound.
///
/// A check may carry an optional i1 *guard* as a third operand: the check
/// is evaluated only when the guard is true at run time, and is a no-op
/// otherwise. This is the vocabulary of run-time-limit hull hoisting
/// (opt/checks/LoopHoist.cpp): the pre-loop hull checks are guarded by
/// the trip/wrap window over the loop limit, and the original in-loop
/// check survives as the fallback guarded by the window's complement.
/// Guarded checks are second-class for every static analysis — they must
/// never source facts or summaries, because nothing guarantees they
/// executed (see RedundantChecks.cpp / InterProc.cpp).
class SpatialCheckInst : public Instruction {
public:
  SpatialCheckInst(Type *VoidTy, Value *Ptr, Value *Bounds,
                   uint64_t AccessSize, bool IsStore, Value *Guard = nullptr)
      : Instruction(ValueKind::SpatialCheck, VoidTy,
                    Guard ? std::vector<Value *>{Ptr, Bounds, Guard}
                          : std::vector<Value *>{Ptr, Bounds}),
        AccessSize(AccessSize), Store(IsStore) {}

  Value *pointer() const { return op(0); }
  Value *bounds() const { return op(1); }
  /// The i1 guard, or null for an unconditional check.
  Value *guard() const { return numOperands() > 2 ? op(2) : nullptr; }
  bool isGuarded() const { return numOperands() > 2; }
  uint64_t accessSize() const { return AccessSize; }
  bool isStoreCheck() const { return Store; }

  static bool classof(const Value *V) {
    return V->kind() == ValueKind::SpatialCheck;
  }

private:
  uint64_t AccessSize;
  bool Store;
};

/// Indirect-call check (§5.2): aborts unless base == bound == ptr, the
/// encoding SoftBound reserves for function pointers.
class FuncPtrCheckInst : public Instruction {
public:
  FuncPtrCheckInst(Type *VoidTy, Value *Ptr, Value *Bounds)
      : Instruction(ValueKind::FuncPtrCheck, VoidTy, {Ptr, Bounds}) {}

  Value *pointer() const { return op(0); }
  Value *bounds() const { return op(1); }

  static bool classof(const Value *V) {
    return V->kind() == ValueKind::FuncPtrCheck;
  }
};

/// Disjoint-metadata lookup (§3.2): yields the bounds recorded for the
/// pointer stored at the given address.
class MetaLoadInst : public Instruction {
public:
  MetaLoadInst(Type *BoundsTy, Value *Addr, std::string Name)
      : Instruction(ValueKind::MetaLoad, BoundsTy, {Addr}, std::move(Name)) {}

  Value *address() const { return op(0); }

  static bool classof(const Value *V) {
    return V->kind() == ValueKind::MetaLoad;
  }
};

/// Disjoint-metadata update (§3.2): records bounds for the pointer stored
/// at the given address.
class MetaStoreInst : public Instruction {
public:
  MetaStoreInst(Type *VoidTy, Value *Addr, Value *Bounds)
      : Instruction(ValueKind::MetaStore, VoidTy, {Addr, Bounds}) {}

  Value *address() const { return op(0); }
  Value *bounds() const { return op(1); }

  static bool classof(const Value *V) {
    return V->kind() == ValueKind::MetaStore;
  }
};

/// Packs {ptr, bounds} into a ptrpair — the by-value triple a transformed
/// pointer-returning function returns (§3.3).
class PackPBInst : public Instruction {
public:
  PackPBInst(Type *PtrPairTy, Value *Ptr, Value *Bounds, std::string Name)
      : Instruction(ValueKind::PackPB, PtrPairTy, {Ptr, Bounds},
                    std::move(Name)) {}

  Value *pointer() const { return op(0); }
  Value *bounds() const { return op(1); }

  static bool classof(const Value *V) { return V->kind() == ValueKind::PackPB; }
};

/// Extracts the pointer component of a ptrpair.
class ExtractPtrInst : public Instruction {
public:
  ExtractPtrInst(PointerType *PtrTy, Value *Pair, std::string Name)
      : Instruction(ValueKind::ExtractPtr, PtrTy, {Pair}, std::move(Name)) {}

  Value *pair() const { return op(0); }

  static bool classof(const Value *V) {
    return V->kind() == ValueKind::ExtractPtr;
  }
};

/// Extracts the bounds component of a ptrpair.
class ExtractBoundsInst : public Instruction {
public:
  ExtractBoundsInst(Type *BoundsTy, Value *Pair, std::string Name)
      : Instruction(ValueKind::ExtractBounds, BoundsTy, {Pair},
                    std::move(Name)) {}

  Value *pair() const { return op(0); }

  static bool classof(const Value *V) {
    return V->kind() == ValueKind::ExtractBounds;
  }
};

} // namespace softbound

#endif // SOFTBOUND_IR_INSTRUCTIONS_H
