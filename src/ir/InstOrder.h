//===- ir/InstOrder.h - intra-block instruction ordering --------*- C++ -*-===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lazy instruction numbering for one function, giving O(log n)
/// "does A execute before B within their shared block" queries. Combined
/// with a block-level dominator tree this answers instruction-level
/// dominance questions — the query the check optimizer asks about pairs of
/// spatial-check instructions (see opt/checks/CheckOpt.h::instDominates).
///
//===----------------------------------------------------------------------===//

#ifndef SOFTBOUND_IR_INSTORDER_H
#define SOFTBOUND_IR_INSTORDER_H

#include "ir/Function.h"

#include <map>

namespace softbound {

/// Positions of every instruction of one function at construction time.
/// Invalidated by any insertion or deletion.
class InstOrder {
public:
  explicit InstOrder(const Function &F);

  /// Position of \p I within its block, or -1 when \p I was not present at
  /// construction time.
  int ordinal(const Instruction *I) const {
    auto It = Ord.find(I);
    return It == Ord.end() ? -1 : It->second;
  }

  /// True if \p A and \p B share a block and \p A strictly precedes \p B.
  bool precedes(const Instruction *A, const Instruction *B) const {
    if (A->parent() != B->parent())
      return false;
    int OA = ordinal(A), OB = ordinal(B);
    return OA >= 0 && OB >= 0 && OA < OB;
  }

private:
  std::map<const Instruction *, int> Ord;
};

} // namespace softbound

#endif // SOFTBOUND_IR_INSTORDER_H
