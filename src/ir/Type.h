//===- ir/Type.h - IR type system -------------------------------*- C++ -*-===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The IR type system: integers, pointers, arrays, named structs (and
/// unions), function types, plus two SoftBound-specific first-class types:
/// `bounds` (a base/bound metadata pair) and `ptrpair` (the {pointer, base,
/// bound} triple returned by transformed pointer-returning functions, §3.3
/// of the paper). Types are interned and owned by a TypeContext.
///
//===----------------------------------------------------------------------===//

#ifndef SOFTBOUND_IR_TYPE_H
#define SOFTBOUND_IR_TYPE_H

#include "support/Casting.h"

#include <cassert>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace softbound {

class TypeContext;

/// Discriminator for the Type hierarchy.
enum class TypeKind {
  Void,
  Int,
  Pointer,
  Array,
  Struct,
  Function,
  Bounds,  ///< First-class base/bound metadata pair (16 bytes, register-only).
  PtrPair, ///< {ptr, base, bound} triple for transformed returns.
};

/// Base class of all IR types. Immutable and interned; compare by pointer.
class Type {
public:
  TypeKind kind() const { return Kind; }

  bool isVoid() const { return Kind == TypeKind::Void; }
  bool isInt() const { return Kind == TypeKind::Int; }
  bool isPointer() const { return Kind == TypeKind::Pointer; }
  bool isArray() const { return Kind == TypeKind::Array; }
  bool isStruct() const { return Kind == TypeKind::Struct; }
  bool isFunction() const { return Kind == TypeKind::Function; }
  bool isBounds() const { return Kind == TypeKind::Bounds; }
  bool isPtrPair() const { return Kind == TypeKind::PtrPair; }
  /// True for types whose values fit a single 64-bit VM register.
  bool isScalar() const { return isInt() || isPointer(); }
  /// True for types that may live in simulated program memory.
  bool isStorable() const {
    return isInt() || isPointer() || isArray() || isStruct();
  }
  /// True for aggregate types (addressed via GEP, never SSA values).
  bool isAggregate() const { return isArray() || isStruct(); }

  /// Size of one value of this type in simulated memory, in bytes.
  uint64_t sizeInBytes() const;

  /// Natural alignment of this type in simulated memory.
  uint64_t alignment() const;

  /// Human-readable spelling for printing and diagnostics.
  std::string str() const;

  static bool classof(const Type *) { return true; }

  virtual ~Type() = default;

protected:
  explicit Type(TypeKind Kind) : Kind(Kind) {}

private:
  friend class TypeContext;
  TypeKind Kind;
};

/// Fixed-width integer type (i1, i8, i16, i32, i64).
class IntType : public Type {
public:
  unsigned bits() const { return Bits; }

  static bool classof(const Type *T) { return T->kind() == TypeKind::Int; }

private:
  friend class TypeContext;
  explicit IntType(unsigned Bits) : Type(TypeKind::Int), Bits(Bits) {}
  unsigned Bits;
};

/// Pointer to a pointee type. All pointers are 8 bytes.
class PointerType : public Type {
public:
  Type *pointee() const { return Pointee; }

  static bool classof(const Type *T) { return T->kind() == TypeKind::Pointer; }

private:
  friend class TypeContext;
  explicit PointerType(Type *Pointee)
      : Type(TypeKind::Pointer), Pointee(Pointee) {}
  Type *Pointee;
};

/// Fixed-length array type.
class ArrayType : public Type {
public:
  Type *element() const { return Elem; }
  uint64_t count() const { return Count; }

  static bool classof(const Type *T) { return T->kind() == TypeKind::Array; }

private:
  friend class TypeContext;
  ArrayType(Type *Elem, uint64_t Count)
      : Type(TypeKind::Array), Elem(Elem), Count(Count) {}
  Type *Elem;
  uint64_t Count;
};

/// Named struct or union with C-style layout (natural alignment).
/// Created opaque by TypeContext::createStruct and completed via setBody.
class StructType : public Type {
public:
  const std::string &name() const { return Name; }
  bool isUnion() const { return Union; }
  bool isOpaque() const { return !HasBody; }
  unsigned numFields() const { return Fields.size(); }
  Type *field(unsigned I) const {
    assert(I < Fields.size() && "field index out of range");
    return Fields[I];
  }
  const std::string &fieldName(unsigned I) const { return FieldNames[I]; }
  uint64_t fieldOffset(unsigned I) const {
    assert(I < Offsets.size() && "field index out of range");
    return Offsets[I];
  }
  /// Returns the index of the named field, or -1 if absent.
  int fieldIndex(const std::string &Name) const;

  /// Completes an opaque struct; computes offsets, size and alignment.
  void setBody(std::vector<Type *> FieldTys, std::vector<std::string> Names,
               bool IsUnion);

  uint64_t structSize() const { return Size; }
  uint64_t structAlign() const { return Align; }

  static bool classof(const Type *T) { return T->kind() == TypeKind::Struct; }

private:
  friend class TypeContext;
  explicit StructType(std::string Name)
      : Type(TypeKind::Struct), Name(std::move(Name)) {}
  std::string Name;
  std::vector<Type *> Fields;
  std::vector<std::string> FieldNames;
  std::vector<uint64_t> Offsets;
  uint64_t Size = 0;
  uint64_t Align = 1;
  bool Union = false;
  bool HasBody = false;
};

/// Function signature type.
class FunctionType : public Type {
public:
  Type *returnType() const { return Ret; }
  unsigned numParams() const { return Params.size(); }
  Type *param(unsigned I) const { return Params[I]; }
  const std::vector<Type *> &params() const { return Params; }
  bool isVarArg() const { return VarArg; }

  static bool classof(const Type *T) { return T->kind() == TypeKind::Function; }

private:
  friend class TypeContext;
  FunctionType(Type *Ret, std::vector<Type *> Params, bool VarArg)
      : Type(TypeKind::Function), Ret(Ret), Params(std::move(Params)),
        VarArg(VarArg) {}
  Type *Ret;
  std::vector<Type *> Params;
  bool VarArg;
};

/// Owns and interns all types of one module. Interning makes type equality a
/// pointer comparison, as in LLVM's LLVMContext.
class TypeContext {
public:
  TypeContext();
  TypeContext(const TypeContext &) = delete;
  TypeContext &operator=(const TypeContext &) = delete;

  Type *voidTy() { return VoidTy; }
  Type *boundsTy() { return BoundsTy; }
  Type *ptrPairTy() { return PtrPairTy; }
  IntType *intTy(unsigned Bits);
  IntType *i1() { return intTy(1); }
  IntType *i8() { return intTy(8); }
  IntType *i16() { return intTy(16); }
  IntType *i32() { return intTy(32); }
  IntType *i64() { return intTy(64); }
  PointerType *ptrTo(Type *Pointee);
  ArrayType *arrayOf(Type *Elem, uint64_t Count);
  FunctionType *funcTy(Type *Ret, std::vector<Type *> Params,
                       bool VarArg = false);

  /// Creates a fresh opaque named struct. Names must be unique per context.
  StructType *createStruct(const std::string &Name);
  /// Returns the named struct, or null if it does not exist.
  StructType *getStruct(const std::string &Name) const;

private:
  std::vector<std::unique_ptr<Type>> Owned;
  Type *VoidTy, *BoundsTy, *PtrPairTy;
  std::map<unsigned, IntType *> IntTypes;
  std::map<Type *, PointerType *> PtrTypes;
  std::map<std::pair<Type *, uint64_t>, ArrayType *> ArrTypes;
  std::map<std::string, StructType *> Structs;
  std::vector<FunctionType *> FuncTypes;

  template <typename T> T *take(T *Ty) {
    Owned.emplace_back(Ty);
    return Ty;
  }
};

/// Size in bytes of a simulated pointer. The evaluation targets 64-bit x86.
inline constexpr uint64_t PointerSize = 8;

} // namespace softbound

#endif // SOFTBOUND_IR_TYPE_H
