//===- ir/Module.h - top-level IR container ---------------------*- C++ -*-===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Module: owns the type context, functions, globals, and interned
/// constants of one translation unit.
///
//===----------------------------------------------------------------------===//

#ifndef SOFTBOUND_IR_MODULE_H
#define SOFTBOUND_IR_MODULE_H

#include "ir/Function.h"

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

namespace softbound {

/// One translation unit of IR.
class Module {
public:
  Module() = default;
  Module(const Module &) = delete;
  Module &operator=(const Module &) = delete;

  TypeContext &ctx() { return Ctx; }

  //===--------------------------------------------------------------------===//
  // Functions
  //===--------------------------------------------------------------------===//

  /// Creates a function with a unique name.
  Function *createFunction(const std::string &Name, FunctionType *FTy,
                           bool Builtin = false);

  /// Returns the named function, or null.
  Function *getFunction(const std::string &Name) const;

  /// The function the VM will enter: "main", or its `_sb_main` renamed
  /// form after the SoftBound transformation. Null when absent (library
  /// modules). Inter-procedural analyses must treat this function as
  /// having an unknown external caller.
  Function *entryFunction() const;

  /// Resolves a user-facing entry name to the function the VM executes:
  /// the name itself, or its "_sb_"-renamed form after the SoftBound
  /// transformation. Null when neither exists. The VM and every driver
  /// check (e.g. the interproc entry contract) must share this one
  /// resolution so they can never disagree about which function runs.
  Function *resolveEntry(const std::string &Name) const;

  /// Renames a function, updating the lookup map (the `_sb_` rewrite).
  void renameFunction(Function *F, const std::string &NewName);

  const std::vector<std::unique_ptr<Function>> &functions() const {
    return Funcs;
  }

  //===--------------------------------------------------------------------===//
  // Globals
  //===--------------------------------------------------------------------===//

  GlobalVariable *createGlobal(const std::string &Name, Type *ValueTy,
                               GlobalInitializer Init, bool Constant = false);

  GlobalVariable *getGlobal(const std::string &Name) const;

  const std::vector<std::unique_ptr<GlobalVariable>> &globals() const {
    return Globals;
  }

  /// Creates a private constant i8-array global holding \p Str plus NUL.
  GlobalVariable *createStringLiteral(const std::string &Str);

  //===--------------------------------------------------------------------===//
  // Whole-program optimization contract
  //===--------------------------------------------------------------------===//

  /// Records that a whole-program check optimization (checkopt(interproc))
  /// deleted checks from this module under the closed-module assumption,
  /// and that the \p Internal functions — those its call graph proved
  /// reachable only through analyzed direct call sites — are no longer
  /// valid VM entry points: entering one directly with arbitrary
  /// arguments would bypass the caller-side proofs that elided its
  /// checks. Constraints accumulate across calls.
  void recordInterProcContract(const std::vector<const Function *> &Internal);

  /// True when recordInterProcContract has ever been called on this
  /// module.
  bool hasInterProcContract() const { return InterProcContract; }

  /// True when entering \p F from outside the module is compatible with
  /// every recorded whole-program contract (trivially true when none was
  /// recorded). The run driver refuses entries for which this is false.
  bool isSafeEntry(const Function *F) const {
    return InterProcUnsafeEntries.find(F) == InterProcUnsafeEntries.end();
  }

  //===--------------------------------------------------------------------===//
  // Check-site table (telemetry)
  //===--------------------------------------------------------------------===//

  /// One profiling site: a check or metadata instruction with a stable
  /// identity (docs/observability.md).
  struct CheckSite {
    std::string Name; ///< "<function>#<ordinal>", stable across runs.
    ValueKind Kind;   ///< SpatialCheck, FuncPtrCheck, MetaLoad or MetaStore.
    bool Guarded = false; ///< Spatial check carrying a hull-fallback guard.
  };

  /// True for the instruction kinds that carry profiling site IDs.
  static bool isSiteKind(ValueKind K) {
    return K == ValueKind::SpatialCheck || K == ValueKind::FuncPtrCheck ||
           K == ValueKind::MetaLoad || K == ValueKind::MetaStore;
  }

  /// Walks functions, blocks, and instructions in their (deterministic)
  /// order and gives every check/metadata instruction without a site ID
  /// the next dense one, appending its entry to the site table.
  /// Idempotent: existing IDs and their table entries are preserved, so
  /// re-running after a pass only names the new instructions. The
  /// pipeline calls this once at the end of PipelinePlan::build(), after
  /// every pass, so hoisting-created checks are named too. Returns the
  /// table size.
  unsigned assignCheckSites();

  const std::vector<CheckSite> &checkSites() const { return Sites; }

  //===--------------------------------------------------------------------===//
  // Constants (interned)
  //===--------------------------------------------------------------------===//

  ConstantInt *constInt(IntType *Ty, int64_t V);
  ConstantInt *constI64(int64_t V) { return constInt(Ctx.i64(), V); }
  ConstantInt *constI32(int64_t V) { return constInt(Ctx.i32(), V); }
  ConstantInt *constI1(bool B) { return constInt(Ctx.i1(), B ? 1 : 0); }
  ConstantNull *nullPtr(PointerType *Ty);
  ConstantUndef *undef(Type *Ty);

private:
  TypeContext Ctx;
  std::vector<std::unique_ptr<Function>> Funcs;
  std::map<std::string, Function *> FuncMap;
  std::vector<std::unique_ptr<GlobalVariable>> Globals;
  std::map<std::string, GlobalVariable *> GlobalMap;
  std::map<std::pair<IntType *, int64_t>, std::unique_ptr<ConstantInt>>
      IntConsts;
  std::map<PointerType *, std::unique_ptr<ConstantNull>> NullConsts;
  std::map<Type *, std::unique_ptr<ConstantUndef>> UndefConsts;
  unsigned NextStrId = 0;
  bool InterProcContract = false;
  std::set<const Function *> InterProcUnsafeEntries;
  std::vector<CheckSite> Sites;
};

} // namespace softbound

#endif // SOFTBOUND_IR_MODULE_H
