//===- ir/Module.h - top-level IR container ---------------------*- C++ -*-===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Module: owns the type context, functions, globals, and interned
/// constants of one translation unit.
///
//===----------------------------------------------------------------------===//

#ifndef SOFTBOUND_IR_MODULE_H
#define SOFTBOUND_IR_MODULE_H

#include "ir/Function.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace softbound {

/// One translation unit of IR.
class Module {
public:
  Module() = default;
  Module(const Module &) = delete;
  Module &operator=(const Module &) = delete;

  TypeContext &ctx() { return Ctx; }

  //===--------------------------------------------------------------------===//
  // Functions
  //===--------------------------------------------------------------------===//

  /// Creates a function with a unique name.
  Function *createFunction(const std::string &Name, FunctionType *FTy,
                           bool Builtin = false);

  /// Returns the named function, or null.
  Function *getFunction(const std::string &Name) const;

  /// The function the VM will enter: "main", or its `_sb_main` renamed
  /// form after the SoftBound transformation. Null when absent (library
  /// modules). Inter-procedural analyses must treat this function as
  /// having an unknown external caller.
  Function *entryFunction() const;

  /// Renames a function, updating the lookup map (the `_sb_` rewrite).
  void renameFunction(Function *F, const std::string &NewName);

  const std::vector<std::unique_ptr<Function>> &functions() const {
    return Funcs;
  }

  //===--------------------------------------------------------------------===//
  // Globals
  //===--------------------------------------------------------------------===//

  GlobalVariable *createGlobal(const std::string &Name, Type *ValueTy,
                               GlobalInitializer Init, bool Constant = false);

  GlobalVariable *getGlobal(const std::string &Name) const;

  const std::vector<std::unique_ptr<GlobalVariable>> &globals() const {
    return Globals;
  }

  /// Creates a private constant i8-array global holding \p Str plus NUL.
  GlobalVariable *createStringLiteral(const std::string &Str);

  //===--------------------------------------------------------------------===//
  // Constants (interned)
  //===--------------------------------------------------------------------===//

  ConstantInt *constInt(IntType *Ty, int64_t V);
  ConstantInt *constI64(int64_t V) { return constInt(Ctx.i64(), V); }
  ConstantInt *constI32(int64_t V) { return constInt(Ctx.i32(), V); }
  ConstantInt *constI1(bool B) { return constInt(Ctx.i1(), B ? 1 : 0); }
  ConstantNull *nullPtr(PointerType *Ty);
  ConstantUndef *undef(Type *Ty);

private:
  TypeContext Ctx;
  std::vector<std::unique_ptr<Function>> Funcs;
  std::map<std::string, Function *> FuncMap;
  std::vector<std::unique_ptr<GlobalVariable>> Globals;
  std::map<std::string, GlobalVariable *> GlobalMap;
  std::map<std::pair<IntType *, int64_t>, std::unique_ptr<ConstantInt>>
      IntConsts;
  std::map<PointerType *, std::unique_ptr<ConstantNull>> NullConsts;
  std::map<Type *, std::unique_ptr<ConstantUndef>> UndefConsts;
  unsigned NextStrId = 0;
};

} // namespace softbound

#endif // SOFTBOUND_IR_MODULE_H
