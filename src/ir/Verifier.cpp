//===- ir/Verifier.cpp - structural IR validation --------------------------===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"

#include "ir/IRPrinter.h"
#include "ir/Module.h"

#include <map>
#include <set>

using namespace softbound;

namespace {

/// Per-function verification state.
class FunctionVerifier {
public:
  FunctionVerifier(const Function &F, std::vector<std::string> &Errors)
      : F(F), Errors(Errors) {}

  void run() {
    if (!F.isDefinition())
      return;
    collectBlocksAndDefs();
    for (const auto &BB : F.blocks())
      checkBlock(*BB);
  }

private:
  void error(const std::string &Msg) {
    Errors.push_back("in @" + F.name() + ": " + Msg);
  }
  void error(const Instruction &I, const std::string &Msg) {
    error(Msg + " in '" + printInstruction(I) + "'");
  }

  void collectBlocksAndDefs() {
    for (const auto &BB : F.blocks()) {
      Blocks.insert(BB.get());
      for (const auto &I : *BB)
        Defined.insert(I.get());
    }
    for (unsigned I = 0; I < F.numArgs(); ++I)
      Defined.insert(F.arg(I));
    for (const auto &BB : F.blocks())
      for (auto *S : BB->successors())
        Preds[S].insert(BB.get());
  }

  void checkBlock(const BasicBlock &BB) {
    if (BB.empty()) {
      error("empty block " + BB.name());
      return;
    }
    if (!BB.back()->isTerminator())
      error("block " + BB.name() + " does not end in a terminator");

    bool SeenNonPhi = false;
    std::set<const Instruction *> SeenHere;
    for (auto It = BB.begin(); It != BB.end(); ++It) {
      const Instruction &I = **It;
      if (I.isTerminator() && I.parent()->back() != &I)
        error(I, "terminator in the middle of block " + BB.name());
      if (isa<PhiInst>(I)) {
        if (SeenNonPhi)
          error(I, "phi after non-phi instruction");
      } else {
        SeenNonPhi = true;
        // Same-block SSA order: an operand defined in this block must be
        // defined *above* its use. (Phis are exempt: their operands flow
        // in along edges.) Cross-block dominance is not checked here.
        for (unsigned K = 0; K < I.numOperands(); ++K)
          if (const auto *OpI =
                  I.op(K) ? dyn_cast<Instruction>(I.op(K)) : nullptr)
            if (OpI->parent() == &BB && !SeenHere.count(OpI))
              error(I, "operand " + std::to_string(K) +
                           " is used before its definition in block " +
                           BB.name());
      }
      SeenHere.insert(&I);
      checkOperands(I);
      checkTyping(I);
    }
  }

  void checkOperands(const Instruction &I) {
    for (unsigned K = 0; K < I.numOperands(); ++K) {
      const Value *Op = I.op(K);
      if (!Op) {
        error(I, "null operand " + std::to_string(K));
        continue;
      }
      if (isa<Constant>(Op))
        continue;
      if (!Defined.count(Op))
        error(I, "operand " + std::to_string(K) +
                     " is not defined in this function");
    }
  }

  void checkTyping(const Instruction &I) {
    switch (I.kind()) {
    case ValueKind::Load: {
      const auto &L = cast<LoadInst>(I);
      if (!L.pointer()->type()->isPointer())
        error(I, "load from non-pointer");
      if (!I.type()->isScalar())
        error(I, "load of non-scalar type (aggregates are accessed via GEP)");
      break;
    }
    case ValueKind::Store: {
      const auto &S = cast<StoreInst>(I);
      if (!S.pointer()->type()->isPointer())
        error(I, "store to non-pointer");
      if (!S.value()->type()->isScalar())
        error(I, "store of non-scalar type");
      break;
    }
    case ValueKind::GEP: {
      const auto &G = cast<GEPInst>(I);
      if (!G.pointer()->type()->isPointer())
        error(I, "gep base is not a pointer");
      if (G.numIndices() == 0)
        error(I, "gep without indices");
      for (unsigned K = 0; K < G.numIndices(); ++K)
        if (!G.index(K)->type()->isInt())
          error(I, "gep index is not an integer");
      break;
    }
    case ValueKind::BinOp: {
      const auto &B = cast<BinOpInst>(I);
      if (B.lhs()->type() != B.rhs()->type())
        error(I, "binop operand type mismatch");
      if (!B.lhs()->type()->isInt())
        error(I, "binop on non-integer");
      break;
    }
    case ValueKind::ICmp: {
      const auto &C = cast<ICmpInst>(I);
      if (C.lhs()->type() != C.rhs()->type())
        error(I, "icmp operand type mismatch");
      break;
    }
    case ValueKind::Cast: {
      const auto &C = cast<CastInst>(I);
      Type *Src = C.source()->type();
      Type *Dst = I.type();
      switch (C.opcode()) {
      case CastInst::Op::Bitcast:
        if (!Src->isPointer() || !Dst->isPointer())
          error(I, "bitcast requires pointer operands");
        break;
      case CastInst::Op::PtrToInt:
        if (!Src->isPointer() || !Dst->isInt())
          error(I, "ptrtoint requires pointer source, int dest");
        break;
      case CastInst::Op::IntToPtr:
        if (!Src->isInt() || !Dst->isPointer())
          error(I, "inttoptr requires int source, pointer dest");
        break;
      case CastInst::Op::Trunc:
      case CastInst::Op::ZExt:
      case CastInst::Op::SExt:
        if (!Src->isInt() || !Dst->isInt())
          error(I, "integer cast on non-integers");
        break;
      }
      break;
    }
    case ValueKind::Phi: {
      const auto &P = cast<PhiInst>(I);
      if (P.numIncoming() == 0) {
        error(I, "phi with no incoming values");
        break;
      }
      for (unsigned K = 0; K < P.numIncoming(); ++K) {
        if (P.incomingValue(K)->type() != I.type())
          error(I, "phi incoming type mismatch");
        if (!Blocks.count(P.incomingBlock(K)))
          error(I, "phi incoming block not in function");
      }
      auto PIt = Preds.find(I.parent());
      const std::set<const BasicBlock *> Empty;
      const auto &BBPreds = PIt == Preds.end() ? Empty : PIt->second;
      std::set<const BasicBlock *> Incoming;
      for (unsigned K = 0; K < P.numIncoming(); ++K)
        Incoming.insert(P.incomingBlock(K));
      if (Incoming != BBPreds)
        error(I, "phi incoming blocks do not match predecessors");
      break;
    }
    case ValueKind::Call: {
      const auto &C = cast<CallInst>(I);
      const FunctionType *FTy = C.calleeType();
      if (C.numArgs() < FTy->numParams() ||
          (C.numArgs() > FTy->numParams() && !FTy->isVarArg()))
        error(I, "call argument count mismatch");
      for (unsigned K = 0; K < FTy->numParams() && K < C.numArgs(); ++K)
        if (C.arg(K)->type() != FTy->param(K))
          error(I, "call argument " + std::to_string(K) + " type mismatch");
      if (!FTy->returnType()->isVoid() && I.type() != FTy->returnType())
        error(I, "call result type mismatch");
      break;
    }
    case ValueKind::Ret: {
      const auto &R = cast<RetInst>(I);
      Type *RetTy = F.returnType();
      if (RetTy->isVoid()) {
        if (R.hasValue())
          error(I, "value returned from void function");
      } else if (!R.hasValue()) {
        error(I, "missing return value");
      } else if (R.value()->type() != RetTy) {
        error(I, "return type mismatch");
      }
      break;
    }
    case ValueKind::Br: {
      const auto &B = cast<BrInst>(I);
      for (unsigned K = 0; K < B.numSuccessors(); ++K)
        if (!Blocks.count(B.successor(K)))
          error(I, "branch to block outside function");
      if (B.isConditional() && B.condition()->type() != Ctx1())
        error(I, "branch condition is not i1");
      break;
    }
    case ValueKind::MakeBounds: {
      const auto &B = cast<MakeBoundsInst>(I);
      for (Value *Op : {B.base(), B.bound()})
        if (!Op->type()->isPointer() && !Op->type()->isInt())
          error(I, "make.bounds operand must be pointer or integer");
      break;
    }
    case ValueKind::SpatialCheck: {
      const auto &C = cast<SpatialCheckInst>(I);
      if (!C.pointer()->type()->isPointer())
        error(I, "spatial.check on non-pointer");
      if (!C.bounds()->type()->isBounds())
        error(I, "spatial.check bounds operand is not bounds-typed");
      if (C.numOperands() > 3)
        error(I, "spatial.check with more than one guard operand");
      if (const Value *G = C.guard(); G && G->type() != Ctx1())
        error(I, "spatial.check guard is not i1");
      break;
    }
    case ValueKind::FuncPtrCheck:
      if (!cast<FuncPtrCheckInst>(I).bounds()->type()->isBounds())
        error(I, "funcptr.check bounds operand is not bounds-typed");
      break;
    case ValueKind::MetaLoad:
      if (!cast<MetaLoadInst>(I).address()->type()->isPointer())
        error(I, "meta.load address is not a pointer");
      if (!I.type()->isBounds())
        error(I, "meta.load result is not bounds-typed");
      if (F.isUninstrumented())
        error(I, "meta.load inside uninstrumented function");
      break;
    case ValueKind::MetaStore: {
      const auto &MS = cast<MetaStoreInst>(I);
      if (!MS.address()->type()->isPointer())
        error(I, "meta.store address is not a pointer");
      if (!MS.bounds()->type()->isBounds())
        error(I, "meta.store bounds operand is not bounds-typed");
      if (F.isUninstrumented())
        error(I, "meta.store inside uninstrumented function");
      break;
    }
    case ValueKind::PackPB: {
      const auto &P = cast<PackPBInst>(I);
      if (!P.pointer()->type()->isPointer())
        error(I, "pack.pb pointer operand is not a pointer");
      if (!P.bounds()->type()->isBounds())
        error(I, "pack.pb bounds operand is not bounds-typed");
      break;
    }
    case ValueKind::ExtractPtr:
      if (!cast<ExtractPtrInst>(I).pair()->type()->isPtrPair())
        error(I, "extract.ptr operand is not a ptrpair");
      break;
    case ValueKind::ExtractBounds:
      if (!cast<ExtractBoundsInst>(I).pair()->type()->isPtrPair())
        error(I, "extract.bounds operand is not a ptrpair");
      break;
    default:
      break;
    }
  }

  /// The i1 type of the module's context (via any operand's context — we
  /// detect i1 by structural check instead to avoid threading the context).
  const Type *Ctx1() const {
    // i1 is unique per context; find it via the condition's own type check.
    // The caller compares pointers, so return the condition type when it is
    // an i1, forcing a mismatch otherwise.
    return I1Probe;
  }

  const Function &F;
  std::vector<std::string> &Errors;
  std::set<const BasicBlock *> Blocks;
  std::set<const Value *> Defined;
  std::map<const BasicBlock *, std::set<const BasicBlock *>> Preds;
  const Type *I1Probe = nullptr;

public:
  void setI1(const Type *T) { I1Probe = T; }
};

} // namespace

void softbound::verifyFunction(const Function &F,
                               std::vector<std::string> &Errors) {
  FunctionVerifier V(F, Errors);
  V.setI1(F.parent() ? F.parent()->ctx().i1() : nullptr);
  V.run();
}

std::vector<std::string> softbound::verifyModule(const Module &M) {
  std::vector<std::string> Errors;
  for (const auto &F : M.functions())
    verifyFunction(*F, Errors);

  // Profiling-site consistency (Module::assignCheckSites): a site ID may
  // only appear on a check/metadata instruction, must index the module's
  // site table with the recorded kind, and must be unique module-wide —
  // the VM's per-site profile indexes a dense array with it. Modules
  // that never ran site assignment (every ID -1) pass vacuously.
  std::set<int> SeenSites;
  for (const auto &F : M.functions())
    for (const auto &BB : F->blocks())
      for (const auto &I : *BB) {
        if (I->site() < 0)
          continue;
        std::string Where =
            "in @" + F->name() + ": site " + std::to_string(I->site());
        if (!Module::isSiteKind(I->kind()))
          Errors.push_back(Where + " on a non-check instruction '" +
                           printInstruction(*I) + "'");
        else if (static_cast<size_t>(I->site()) >= M.checkSites().size())
          Errors.push_back(Where + " outside the module site table (" +
                           std::to_string(M.checkSites().size()) +
                           " entries)");
        else if (!SeenSites.insert(I->site()).second)
          Errors.push_back(Where + " assigned to more than one instruction");
        else if (M.checkSites()[I->site()].Kind != I->kind())
          Errors.push_back(Where + " ('" +
                           M.checkSites()[I->site()].Name +
                           "') kind disagrees with the site table");
      }
  return Errors;
}
