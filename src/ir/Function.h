//===- ir/Function.h - functions --------------------------------*- C++ -*-===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Function: a Constant (its address is a value) owning arguments and basic
/// blocks. Builtins are declarations whose behaviour the VM implements
/// natively (malloc, memcpy, print, setjmp, …).
///
//===----------------------------------------------------------------------===//

#ifndef SOFTBOUND_IR_FUNCTION_H
#define SOFTBOUND_IR_FUNCTION_H

#include "ir/BasicBlock.h"

#include <list>
#include <memory>

namespace softbound {

class Module;

/// A function definition or builtin declaration.
class Function : public Constant {
public:
  using BlockList = std::list<std::unique_ptr<BasicBlock>>;

  Function(PointerType *AddrTy, FunctionType *FTy, std::string Name,
           Module *Parent, bool Builtin)
      : Constant(ValueKind::Func, AddrTy, std::move(Name)), FTy(FTy),
        Parent(Parent), Builtin(Builtin) {
    for (unsigned I = 0; I < FTy->numParams(); ++I)
      Args.push_back(std::make_unique<Argument>(
          FTy->param(I), "arg" + std::to_string(I), this, I));
  }

  FunctionType *functionType() const { return FTy; }
  Module *parent() const { return Parent; }
  bool isBuiltin() const { return Builtin; }
  bool isDefinition() const { return !Blocks.empty(); }
  Type *returnType() const { return FTy->returnType(); }

  unsigned numArgs() const { return Args.size(); }
  Argument *arg(unsigned I) const { return Args[I].get(); }

  /// Appends a fresh argument (used by the SoftBound signature rewrite,
  /// §3.3) and updates the function type. Returns the new argument.
  Argument *appendArg(Type *Ty, const std::string &Name, FunctionType *NewFTy) {
    Args.push_back(
        std::make_unique<Argument>(Ty, Name, this, Args.size()));
    FTy = NewFTy;
    return Args.back().get();
  }

  /// Replaces the function type (signature rewrites). Argument list must
  /// already match.
  void setFunctionType(FunctionType *T) { FTy = T; }

  BlockList &blocks() { return Blocks; }
  const BlockList &blocks() const { return Blocks; }
  BasicBlock *entry() {
    assert(!Blocks.empty() && "entry() on a declaration");
    return Blocks.front().get();
  }

  /// Creates a block appended at the end.
  BasicBlock *createBlock(const std::string &Name) {
    Blocks.push_back(std::make_unique<BasicBlock>(
        Name + "." + std::to_string(NextBlockId++), this));
    return Blocks.back().get();
  }

  /// Assigns VM register slots to arguments and value-producing
  /// instructions. Returns the frame register count.
  unsigned renumber();

  unsigned numRegs() const { return NumRegs; }

  /// Replaces all operand uses of \p From with \p To across the body.
  void replaceAllUsesWith(Value *From, Value *To);

  /// SoftBound transformation marker: set when this function has been
  /// renamed to its `_sb_` form and given metadata parameters.
  bool isTransformed() const { return Transformed; }
  void setTransformed() { Transformed = true; }

  /// Checked-region partitioning marker (opt/checks/Partition.cpp): set
  /// when every access was discharged statically and the function's
  /// metadata instructions were stripped. The Verifier enforces that an
  /// uninstrumented function contains no meta.load/meta.store.
  bool isUninstrumented() const { return Uninstrumented; }
  void setUninstrumented() { Uninstrumented = true; }

  static bool classof(const Value *V) { return V->kind() == ValueKind::Func; }

private:
  FunctionType *FTy;
  Module *Parent;
  bool Builtin;
  bool Transformed = false;
  bool Uninstrumented = false;
  std::vector<std::unique_ptr<Argument>> Args;
  BlockList Blocks;
  unsigned NumRegs = 0;
  unsigned NextBlockId = 0;
};

} // namespace softbound

#endif // SOFTBOUND_IR_FUNCTION_H
