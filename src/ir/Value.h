//===- ir/Value.h - SSA values and constants --------------------*- C++ -*-===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Value hierarchy: SSA values produced by instructions, function
/// arguments, and constants (integers, null pointers, undef, global
/// variables, and functions). Mirrors LLVM's Value/Constant design with a
/// Kind discriminator for isa/cast/dyn_cast.
///
//===----------------------------------------------------------------------===//

#ifndef SOFTBOUND_IR_VALUE_H
#define SOFTBOUND_IR_VALUE_H

#include "ir/Type.h"
#include "support/Casting.h"

#include <cstdint>
#include <string>
#include <vector>

namespace softbound {

class Function;
class Module;

/// Discriminator for the Value hierarchy. Instructions occupy the tail
/// range so that Instruction::classof is a range check.
enum class ValueKind {
  Argument,
  // Constants.
  ConstInt,
  ConstNull,
  ConstUndef,
  Global,
  Func,
  // Instructions (keep Alloca first and ExtractBounds last).
  Alloca,
  Load,
  Store,
  GEP,
  BinOp,
  ICmp,
  Cast,
  Select,
  Phi,
  Call,
  Ret,
  Br,
  Unreachable,
  // SoftBound instrumentation instructions (§3 of the paper).
  MakeBounds,
  SpatialCheck,
  FuncPtrCheck,
  MetaLoad,
  MetaStore,
  PackPB,
  ExtractPtr,
  ExtractBounds,
};

/// Base class of everything that can appear as an instruction operand.
class Value {
public:
  virtual ~Value() = default;
  Value(const Value &) = delete;
  Value &operator=(const Value &) = delete;

  ValueKind kind() const { return Kind; }
  Type *type() const { return Ty; }

  const std::string &name() const { return Name; }
  void setName(std::string N) { Name = std::move(N); }

  /// VM register slot assigned by Function::renumber; -1 when the value
  /// produces no register (void-typed instructions, constants).
  int slot() const { return Slot; }
  void setSlot(int S) { Slot = S; }

  static bool classof(const Value *) { return true; }

protected:
  Value(ValueKind Kind, Type *Ty, std::string Name = "")
      : Kind(Kind), Ty(Ty), Name(std::move(Name)) {}

  void setType(Type *T) { Ty = T; }

private:
  ValueKind Kind;
  Type *Ty;
  std::string Name;
  int Slot = -1;
};

/// A formal parameter of a Function.
class Argument : public Value {
public:
  Argument(Type *Ty, std::string Name, Function *Parent, unsigned Index)
      : Value(ValueKind::Argument, Ty, std::move(Name)), Parent(Parent),
        Index(Index) {}

  Function *parent() const { return Parent; }
  unsigned index() const { return Index; }
  void setIndex(unsigned I) { Index = I; }

  static bool classof(const Value *V) {
    return V->kind() == ValueKind::Argument;
  }

private:
  Function *Parent;
  unsigned Index;
};

/// Base class for immutable constant values, interned by the Module.
class Constant : public Value {
public:
  static bool classof(const Value *V) {
    return V->kind() >= ValueKind::ConstInt && V->kind() <= ValueKind::Func;
  }

protected:
  using Value::Value;
};

/// A constant integer of some IntType.
class ConstantInt : public Constant {
public:
  ConstantInt(IntType *Ty, int64_t V)
      : Constant(ValueKind::ConstInt, Ty), Val(V) {}

  /// Sign-extended value.
  int64_t value() const { return Val; }
  /// Value zero-extended from the type's width.
  uint64_t zextValue() const {
    unsigned Bits = cast<IntType>(type())->bits();
    if (Bits == 64)
      return static_cast<uint64_t>(Val);
    return static_cast<uint64_t>(Val) & ((1ULL << Bits) - 1);
  }
  bool isZero() const { return Val == 0; }

  static bool classof(const Value *V) {
    return V->kind() == ValueKind::ConstInt;
  }

private:
  int64_t Val;
};

/// The null pointer constant of some pointer type.
class ConstantNull : public Constant {
public:
  explicit ConstantNull(PointerType *Ty)
      : Constant(ValueKind::ConstNull, Ty) {}

  static bool classof(const Value *V) {
    return V->kind() == ValueKind::ConstNull;
  }
};

/// An undefined value of any type (used by mem2reg for uninitialized reads).
class ConstantUndef : public Constant {
public:
  explicit ConstantUndef(Type *Ty) : Constant(ValueKind::ConstUndef, Ty) {}

  static bool classof(const Value *V) {
    return V->kind() == ValueKind::ConstUndef;
  }
};

/// A static initializer image: raw bytes plus pointer relocations that the
/// VM loader patches with the final simulated addresses.
struct GlobalInitializer {
  /// One pointer-sized slot at Offset must be patched to Target's address.
  struct Reloc {
    uint64_t Offset;
    Constant *Target; ///< GlobalVariable or Function.
  };

  std::vector<uint8_t> Bytes; ///< Zero-padded to the global's size.
  std::vector<Reloc> Relocs;
};

/// A module-level global variable. As in LLVM, the Value itself has pointer
/// type; valueType() is the type of the pointed-to storage.
class GlobalVariable : public Constant {
public:
  GlobalVariable(PointerType *PtrTy, Type *ValueTy, std::string Name,
                 GlobalInitializer Init, bool Constant)
      : softbound::Constant(ValueKind::Global, PtrTy, std::move(Name)),
        ValueTy(ValueTy), Init(std::move(Init)), Const(Constant) {}

  Type *valueType() const { return ValueTy; }
  const GlobalInitializer &initializer() const { return Init; }
  GlobalInitializer &initializer() { return Init; }
  bool isConstant() const { return Const; }

  static bool classof(const Value *V) { return V->kind() == ValueKind::Global; }

private:
  Type *ValueTy;
  GlobalInitializer Init;
  bool Const;
};

} // namespace softbound

#endif // SOFTBOUND_IR_VALUE_H
