//===- ir/IRPrinter.cpp - textual IR dumping ------------------------------===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/IRPrinter.h"

#include "ir/Module.h"
#include "support/Compiler.h"

#include <map>

using namespace softbound;

namespace {

/// Assigns stable %N names to unnamed values while printing a function.
class NameMap {
public:
  std::string ref(const Value *V) {
    if (const auto *CI = dyn_cast<ConstantInt>(V))
      return std::to_string(CI->value());
    if (isa<ConstantNull>(V))
      return "null";
    if (isa<ConstantUndef>(V))
      return "undef";
    if (const auto *G = dyn_cast<GlobalVariable>(V))
      return "@" + G->name();
    if (const auto *F = dyn_cast<Function>(V))
      return "@" + F->name();
    auto It = Names.find(V);
    if (It != Names.end())
      return It->second;
    std::string N = "%" + (V->name().empty() ? std::to_string(Next++)
                                             : V->name() + "." +
                                                   std::to_string(Next++));
    Names[V] = N;
    return N;
  }

private:
  std::map<const Value *, std::string> Names;
  unsigned Next = 0;
};

std::string typedRef(NameMap &NM, const Value *V) {
  return V->type()->str() + " " + NM.ref(V);
}

/// The ", site N" suffix carried by check/metadata instructions once
/// Module::assignCheckSites has run (empty before assignment), so textual
/// IR diffs and profile reports name the same sites.
std::string siteTag(const Instruction &I) {
  return I.site() >= 0 ? ", site " + std::to_string(I.site()) : std::string();
}

std::string renderInst(NameMap &NM, const Instruction &I) {
  std::string S = "  ";
  if (!I.type()->isVoid())
    S += NM.ref(&I) + " = ";

  switch (I.kind()) {
  case ValueKind::Alloca: {
    const auto &A = cast<AllocaInst>(I);
    S += "alloca " + A.allocatedType()->str();
    break;
  }
  case ValueKind::Load: {
    const auto &L = cast<LoadInst>(I);
    S += "load " + I.type()->str() + ", " + typedRef(NM, L.pointer());
    break;
  }
  case ValueKind::Store: {
    const auto &St = cast<StoreInst>(I);
    S += "store " + typedRef(NM, St.value()) + ", " +
         typedRef(NM, St.pointer());
    break;
  }
  case ValueKind::GEP: {
    const auto &G = cast<GEPInst>(I);
    S += "gep " + G.sourceType()->str() + ", " + typedRef(NM, G.pointer());
    for (unsigned K = 0; K < G.numIndices(); ++K)
      S += ", " + NM.ref(G.index(K));
    break;
  }
  case ValueKind::BinOp: {
    const auto &B = cast<BinOpInst>(I);
    S += std::string(BinOpInst::opcodeName(B.opcode())) + " " +
         typedRef(NM, B.lhs()) + ", " + NM.ref(B.rhs());
    break;
  }
  case ValueKind::ICmp: {
    const auto &C = cast<ICmpInst>(I);
    S += std::string("icmp ") + ICmpInst::predName(C.pred()) + " " +
         typedRef(NM, C.lhs()) + ", " + NM.ref(C.rhs());
    break;
  }
  case ValueKind::Cast: {
    const auto &C = cast<CastInst>(I);
    S += std::string(CastInst::opcodeName(C.opcode())) + " " +
         typedRef(NM, C.source()) + " to " + I.type()->str();
    break;
  }
  case ValueKind::Select: {
    const auto &Sel = cast<SelectInst>(I);
    S += "select " + NM.ref(Sel.condition()) + ", " +
         typedRef(NM, Sel.ifTrue()) + ", " + NM.ref(Sel.ifFalse());
    break;
  }
  case ValueKind::Phi: {
    const auto &P = cast<PhiInst>(I);
    S += "phi " + I.type()->str();
    for (unsigned K = 0; K < P.numIncoming(); ++K) {
      S += K ? ", [" : " [";
      S += NM.ref(P.incomingValue(K)) + ", " + P.incomingBlock(K)->name() +
           "]";
    }
    break;
  }
  case ValueKind::Call: {
    const auto &C = cast<CallInst>(I);
    S += "call " + I.type()->str() + " " + NM.ref(C.callee()) + "(";
    for (unsigned K = 0; K < C.numArgs(); ++K) {
      if (K)
        S += ", ";
      S += typedRef(NM, C.arg(K));
    }
    S += ")";
    break;
  }
  case ValueKind::Ret: {
    const auto &R = cast<RetInst>(I);
    S += R.hasValue() ? "ret " + typedRef(NM, R.value()) : "ret void";
    break;
  }
  case ValueKind::Br: {
    const auto &B = cast<BrInst>(I);
    if (B.isConditional())
      S += "br " + NM.ref(B.condition()) + ", " + B.successor(0)->name() +
           ", " + B.successor(1)->name();
    else
      S += "br " + B.successor(0)->name();
    break;
  }
  case ValueKind::Unreachable:
    S += "unreachable";
    break;
  case ValueKind::MakeBounds: {
    const auto &B = cast<MakeBoundsInst>(I);
    S += "make.bounds " + typedRef(NM, B.base()) + ", " +
         typedRef(NM, B.bound());
    break;
  }
  case ValueKind::SpatialCheck: {
    const auto &C = cast<SpatialCheckInst>(I);
    S += std::string("spatial.check ") + (C.isStoreCheck() ? "store " : "load ") +
         typedRef(NM, C.pointer()) + ", " + NM.ref(C.bounds()) + ", size " +
         std::to_string(C.accessSize());
    if (C.guard())
      S += ", if " + NM.ref(C.guard());
    S += siteTag(I);
    break;
  }
  case ValueKind::FuncPtrCheck: {
    const auto &C = cast<FuncPtrCheckInst>(I);
    S += "funcptr.check " + typedRef(NM, C.pointer()) + ", " +
         NM.ref(C.bounds()) + siteTag(I);
    break;
  }
  case ValueKind::MetaLoad: {
    const auto &ML = cast<MetaLoadInst>(I);
    S += "meta.load " + typedRef(NM, ML.address()) + siteTag(I);
    break;
  }
  case ValueKind::MetaStore: {
    const auto &MS = cast<MetaStoreInst>(I);
    S += "meta.store " + typedRef(NM, MS.address()) + ", " +
         NM.ref(MS.bounds()) + siteTag(I);
    break;
  }
  case ValueKind::PackPB: {
    const auto &P = cast<PackPBInst>(I);
    S += "pack.pb " + typedRef(NM, P.pointer()) + ", " + NM.ref(P.bounds());
    break;
  }
  case ValueKind::ExtractPtr:
    S += "extract.ptr " + NM.ref(cast<ExtractPtrInst>(I).pair()) + " to " +
         I.type()->str();
    break;
  case ValueKind::ExtractBounds:
    // Symmetric with extract.ptr: both component extractions name their
    // result type.
    S += "extract.bounds " + NM.ref(cast<ExtractBoundsInst>(I).pair()) +
         " to " + I.type()->str();
    break;
  default:
    sb_unreachable("non-instruction kind in renderInst");
  }
  return S;
}

} // namespace

std::string softbound::printInstruction(const Instruction &I) {
  NameMap NM;
  return renderInst(NM, I);
}

std::string softbound::printFunction(const Function &F) {
  NameMap NM;
  std::string S = F.isBuiltin() ? "declare " : "define ";
  S += F.returnType()->str() + " @" + F.name() + "(";
  for (unsigned I = 0; I < F.numArgs(); ++I) {
    if (I)
      S += ", ";
    S += F.arg(I)->type()->str() + " " + NM.ref(F.arg(I));
  }
  if (F.functionType()->isVarArg())
    S += F.numArgs() ? ", ..." : "...";
  S += ")";
  if (F.isUninstrumented())
    S += " uninstrumented";
  if (!F.isDefinition())
    return S + "\n";
  S += " {\n";
  for (const auto &BB : F.blocks()) {
    S += BB->name() + ":\n";
    for (const auto &I : *BB)
      S += renderInst(NM, *I) + "\n";
  }
  return S + "}\n";
}

std::string softbound::printModule(const Module &M) {
  std::string S;
  for (const auto &G : M.globals()) {
    S += "@" + G->name() + " = " +
         std::string(G->isConstant() ? "constant " : "global ") +
         G->valueType()->str() + " ; " +
         std::to_string(G->valueType()->sizeInBytes()) + " bytes";
    if (!G->initializer().Relocs.empty())
      S += ", " + std::to_string(G->initializer().Relocs.size()) + " relocs";
    S += "\n";
  }
  if (!M.globals().empty())
    S += "\n";
  for (const auto &F : M.functions()) {
    S += printFunction(*F);
    S += "\n";
  }
  return S;
}
