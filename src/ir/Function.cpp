//===- ir/Function.cpp - functions ----------------------------------------===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Function.h"

using namespace softbound;

unsigned Function::renumber() {
  int Next = 0;
  for (auto &A : Args)
    A->setSlot(Next++);
  for (auto &BB : Blocks)
    for (auto &I : *BB) {
      if (I->type()->isVoid())
        I->setSlot(-1);
      else
        I->setSlot(Next++);
    }
  NumRegs = static_cast<unsigned>(Next);
  return NumRegs;
}

void Function::replaceAllUsesWith(Value *From, Value *To) {
  for (auto &BB : Blocks)
    for (auto &I : *BB)
      I->replaceUsesOf(From, To);
}
