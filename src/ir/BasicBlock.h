//===- ir/BasicBlock.h - basic blocks ---------------------------*- C++ -*-===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A basic block: an owning list of instructions ending in a terminator.
///
//===----------------------------------------------------------------------===//

#ifndef SOFTBOUND_IR_BASICBLOCK_H
#define SOFTBOUND_IR_BASICBLOCK_H

#include "ir/Instructions.h"

#include <list>
#include <memory>

namespace softbound {

class Function;

/// A straight-line instruction sequence with a single terminator.
class BasicBlock {
public:
  using InstList = std::list<std::unique_ptr<Instruction>>;
  using iterator = InstList::iterator;
  using const_iterator = InstList::const_iterator;

  BasicBlock(std::string Name, Function *Parent)
      : Name(std::move(Name)), Parent(Parent) {}

  const std::string &name() const { return Name; }
  Function *parent() const { return Parent; }

  iterator begin() { return Insts.begin(); }
  iterator end() { return Insts.end(); }
  const_iterator begin() const { return Insts.begin(); }
  const_iterator end() const { return Insts.end(); }
  bool empty() const { return Insts.empty(); }
  size_t size() const { return Insts.size(); }
  InstList &instructions() { return Insts; }

  Instruction *front() { return Insts.front().get(); }
  Instruction *back() { return Insts.back().get(); }
  const Instruction *back() const { return Insts.back().get(); }

  /// Appends an instruction, taking ownership, and returns it.
  Instruction *append(std::unique_ptr<Instruction> I) {
    I->setParent(this);
    Insts.push_back(std::move(I));
    return Insts.back().get();
  }

  /// Inserts before \p Where, taking ownership, and returns the instruction.
  Instruction *insertBefore(iterator Where, std::unique_ptr<Instruction> I) {
    I->setParent(this);
    return Insts.insert(Where, std::move(I))->get();
  }

  /// Removes and destroys the instruction at \p Where; returns the next
  /// iterator. Callers must have rewritten all uses first.
  iterator erase(iterator Where) { return Insts.erase(Where); }

  /// The block terminator, or null for still-under-construction blocks.
  Instruction *terminator() {
    if (Insts.empty() || !Insts.back()->isTerminator())
      return nullptr;
    return Insts.back().get();
  }
  const Instruction *terminator() const {
    return const_cast<BasicBlock *>(this)->terminator();
  }

  /// Successor blocks derived from the terminator (empty for ret).
  std::vector<BasicBlock *> successors() const {
    const Instruction *T = terminator();
    std::vector<BasicBlock *> Out;
    if (const auto *Br = dyn_cast<BrInst>(T))
      for (unsigned I = 0; I < Br->numSuccessors(); ++I)
        Out.push_back(Br->successor(I));
    return Out;
  }

private:
  std::string Name;
  Function *Parent;
  InstList Insts;
};

} // namespace softbound

#endif // SOFTBOUND_IR_BASICBLOCK_H
