//===- ir/IRPrinter.h - textual IR dumping ----------------------*- C++ -*-===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prints modules/functions in an LLVM-like textual form for debugging,
/// tests and golden-output checks.
///
//===----------------------------------------------------------------------===//

#ifndef SOFTBOUND_IR_IRPRINTER_H
#define SOFTBOUND_IR_IRPRINTER_H

#include <string>

namespace softbound {

class Module;
class Function;
class Instruction;

/// Renders the whole module as text.
std::string printModule(const Module &M);

/// Renders one function as text.
std::string printFunction(const Function &F);

/// Renders one instruction (single line, no trailing newline).
std::string printInstruction(const Instruction &I);

} // namespace softbound

#endif // SOFTBOUND_IR_IRPRINTER_H
