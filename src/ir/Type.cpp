//===- ir/Type.cpp - IR type system ---------------------------------------===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Type.h"

#include "support/Compiler.h"

using namespace softbound;

uint64_t Type::sizeInBytes() const {
  switch (Kind) {
  case TypeKind::Void:
    return 0;
  case TypeKind::Int: {
    unsigned Bits = cast<IntType>(this)->bits();
    return Bits <= 8 ? 1 : Bits / 8;
  }
  case TypeKind::Pointer:
    return PointerSize;
  case TypeKind::Array: {
    const auto *AT = cast<ArrayType>(this);
    return AT->element()->sizeInBytes() * AT->count();
  }
  case TypeKind::Struct:
    return cast<StructType>(this)->structSize();
  case TypeKind::Function:
    return 0;
  case TypeKind::Bounds:
    return 16;
  case TypeKind::PtrPair:
    return 24;
  }
  sb_unreachable("covered switch");
}

uint64_t Type::alignment() const {
  switch (Kind) {
  case TypeKind::Void:
  case TypeKind::Function:
    return 1;
  case TypeKind::Int:
    return sizeInBytes();
  case TypeKind::Pointer:
  case TypeKind::Bounds:
  case TypeKind::PtrPair:
    return 8;
  case TypeKind::Array:
    return cast<ArrayType>(this)->element()->alignment();
  case TypeKind::Struct:
    return cast<StructType>(this)->structAlign();
  }
  sb_unreachable("covered switch");
}

std::string Type::str() const {
  switch (Kind) {
  case TypeKind::Void:
    return "void";
  case TypeKind::Int:
    return "i" + std::to_string(cast<IntType>(this)->bits());
  case TypeKind::Pointer:
    return cast<PointerType>(this)->pointee()->str() + "*";
  case TypeKind::Array: {
    const auto *AT = cast<ArrayType>(this);
    return "[" + std::to_string(AT->count()) + " x " +
           AT->element()->str() + "]";
  }
  case TypeKind::Struct:
    return "%" + cast<StructType>(this)->name();
  case TypeKind::Function: {
    const auto *FT = cast<FunctionType>(this);
    std::string S = FT->returnType()->str() + " (";
    for (unsigned I = 0; I < FT->numParams(); ++I) {
      if (I)
        S += ", ";
      S += FT->param(I)->str();
    }
    if (FT->isVarArg())
      S += FT->numParams() ? ", ..." : "...";
    return S + ")";
  }
  case TypeKind::Bounds:
    return "bounds";
  case TypeKind::PtrPair:
    return "ptrpair";
  }
  sb_unreachable("covered switch");
}

int StructType::fieldIndex(const std::string &FName) const {
  for (unsigned I = 0; I < FieldNames.size(); ++I)
    if (FieldNames[I] == FName)
      return static_cast<int>(I);
  return -1;
}

static uint64_t alignTo(uint64_t Value, uint64_t Align) {
  return (Value + Align - 1) / Align * Align;
}

void StructType::setBody(std::vector<Type *> FieldTys,
                         std::vector<std::string> Names, bool IsUnion) {
  assert(!HasBody && "struct body set twice");
  assert(FieldTys.size() == Names.size() && "field/name count mismatch");
  Fields = std::move(FieldTys);
  FieldNames = std::move(Names);
  Union = IsUnion;
  HasBody = true;

  Offsets.assign(Fields.size(), 0);
  Size = 0;
  Align = 1;
  for (unsigned I = 0; I < Fields.size(); ++I) {
    Type *FT = Fields[I];
    uint64_t FAlign = FT->alignment();
    if (FAlign > Align)
      Align = FAlign;
    if (Union) {
      Offsets[I] = 0;
      if (FT->sizeInBytes() > Size)
        Size = FT->sizeInBytes();
      continue;
    }
    Size = alignTo(Size, FAlign);
    Offsets[I] = Size;
    Size += FT->sizeInBytes();
  }
  Size = alignTo(Size, Align);
  if (Size == 0)
    Size = 1; // Empty structs still occupy one byte, as in C++.
}

TypeContext::TypeContext() {
  VoidTy = take(new Type(TypeKind::Void));
  BoundsTy = take(new Type(TypeKind::Bounds));
  PtrPairTy = take(new Type(TypeKind::PtrPair));
}

IntType *TypeContext::intTy(unsigned Bits) {
  assert((Bits == 1 || Bits == 8 || Bits == 16 || Bits == 32 || Bits == 64) &&
         "unsupported integer width");
  auto It = IntTypes.find(Bits);
  if (It != IntTypes.end())
    return It->second;
  auto *T = take(new IntType(Bits));
  IntTypes[Bits] = T;
  return T;
}

PointerType *TypeContext::ptrTo(Type *Pointee) {
  auto It = PtrTypes.find(Pointee);
  if (It != PtrTypes.end())
    return It->second;
  auto *T = take(new PointerType(Pointee));
  PtrTypes[Pointee] = T;
  return T;
}

ArrayType *TypeContext::arrayOf(Type *Elem, uint64_t Count) {
  auto Key = std::make_pair(Elem, Count);
  auto It = ArrTypes.find(Key);
  if (It != ArrTypes.end())
    return It->second;
  auto *T = take(new ArrayType(Elem, Count));
  ArrTypes[Key] = T;
  return T;
}

FunctionType *TypeContext::funcTy(Type *Ret, std::vector<Type *> Params,
                                  bool VarArg) {
  for (auto *FT : FuncTypes) {
    if (FT->returnType() != Ret || FT->isVarArg() != VarArg ||
        FT->params() != Params)
      continue;
    return FT;
  }
  auto *T = take(new FunctionType(Ret, std::move(Params), VarArg));
  FuncTypes.push_back(T);
  return T;
}

StructType *TypeContext::createStruct(const std::string &Name) {
  assert(!Structs.count(Name) && "duplicate struct name");
  auto *T = take(new StructType(Name));
  Structs[Name] = T;
  return T;
}

StructType *TypeContext::getStruct(const std::string &Name) const {
  auto It = Structs.find(Name);
  return It == Structs.end() ? nullptr : It->second;
}
