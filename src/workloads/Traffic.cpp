//===- workloads/Traffic.cpp - sustained-traffic request harness ------------===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Schedule generation and driver emission for the traffic tier. The
/// generated driver embeds the unmodified handler fragment, so the code
/// under measurement is byte-identical to the single-shot §6.4 studies;
/// only the main loop differs (request tables + sb_guard windows).
///
//===----------------------------------------------------------------------===//

#include "workloads/Traffic.h"

#include "support/RNG.h"
#include "workloads/Workloads.h"

#include <cassert>

using namespace softbound;

const char *softbound::serverKindName(ServerKind K) {
  return K == ServerKind::Http ? "http" : "ftp";
}

namespace {

/// Benign request pools. Everything is printable ASCII with no quote or
/// backslash characters, so driver emission needs no string escaping.
/// HTTP note: under g_vuln the handler strcpy()s everything after `?`
/// (trailing " HTTP/1.0" included) into query[32], so benign queries keep
/// that remainder under 32 characters — benign traffic must stay benign
/// even with the bug compiled in.
const char *HttpPool[] = {
    "GET / HTTP/1.0",
    "GET /index.html HTTP/1.0",
    "GET /images/logo.png HTTP/1.0",
    "GET /cgi-bin/form?name=bob HTTP/1.0",
    "GET /search?q=ok HTTP/1.0",
    "POST /upload HTTP/1.0",
    "PUT /x HTTP/1.0",
    "GET /a/very/deep/path/with/segments/file.txt HTTP/1.0",
};

const char *FtpUserPool[] = {"USER alice", "USER bob", "USER carol"};

const char *FtpCmdPool[] = {
    "SYST",
    "PWD",
    "CWD /pub/files",
    "CWD ..",
    "CWD data",
    "LIST",
    "RETR readme.txt",
    "RETR data/archive2024.tar",
    "NOOP",
};

template <size_t N> const char *pick(RNG &R, const char *(&Pool)[N]) {
  return Pool[R.below(N)];
}

/// An HTTP attack: the query remainder (everything after `?`, trailing
/// " HTTP/1.0" included) is 47..79 characters — past query[32], inside
/// query+path (96 bytes), so the unchecked overflow stays deterministic.
std::string httpAttack(RNG &R) {
  std::string Pad(32 + R.below(33), static_cast<char>('A' + R.below(26)));
  return "GET /cgi-bin/form?token=" + Pad + " HTTP/1.0";
}

/// An FTP attack: a 20..48-character USER name overflows uname[16] into
/// the adjacent 64-byte scratch buffer (deterministic when unchecked).
std::string ftpAttack(RNG &R) {
  std::string Name(20 + R.below(29), static_cast<char>('a' + R.below(26)));
  return "USER " + Name;
}

} // namespace

TrafficSchedule TrafficSchedule::generate(ServerKind K,
                                          const TrafficConfig &C) {
  assert(C.Requests > 0 && C.SessionMin > 0 && C.SessionMax >= C.SessionMin);
  TrafficSchedule S;
  S.Kind = K;
  S.Config = C;
  RNG R(C.Seed ^ (K == ServerKind::Http ? 0x48545450ULL : 0x46545021ULL));
  auto Attack = [&] { return R.below(1000) < C.AttackPerMille; };
  while (S.Requests.size() < C.Requests) {
    unsigned Len = static_cast<unsigned>(
        C.SessionMin + R.below(C.SessionMax - C.SessionMin + 1));
    // FTP sessions mostly log in first; 1-in-8 sessions skip the login
    // and exercise the 530 path on every later command.
    bool Login = R.below(8) != 0;
    for (unsigned I = 0; I < Len && S.Requests.size() < C.Requests; ++I) {
      TrafficRequest Q;
      Q.ConnStart = I == 0;
      if (Attack()) {
        Q.Adversarial = true;
        Q.Text = K == ServerKind::Http ? httpAttack(R) : ftpAttack(R);
      } else if (K == ServerKind::Http) {
        Q.Text = pick(R, HttpPool);
      } else if (I == 0 && Login) {
        Q.Text = pick(R, FtpUserPool);
      } else if (I == 1 && Login) {
        Q.Text = "PASS hunter2";
      } else if (I + 1 == Len && R.below(2) == 0) {
        Q.Text = "QUIT";
      } else {
        Q.Text = pick(R, FtpCmdPool);
      }
      S.Requests.push_back(std::move(Q));
    }
  }
  return S;
}

unsigned TrafficSchedule::adversarialCount() const {
  unsigned N = 0;
  for (const auto &Q : Requests)
    N += Q.Adversarial;
  return N;
}

std::string TrafficSchedule::driverSource(bool Vuln) const {
  return trafficDriverSource(Kind, Requests, Vuln);
}

std::string
softbound::trafficDriverSource(ServerKind K,
                               const std::vector<TrafficRequest> &Requests,
                               bool Vuln) {
  assert(!Requests.empty());
  std::string Src =
      K == ServerKind::Http ? httpHandlerSource() : ftpHandlerSource();
  std::string N = std::to_string(Requests.size());

  Src += "\nchar* g_t_reqs[" + N + "] = {\n";
  for (size_t I = 0; I < Requests.size(); ++I)
    Src += "  \"" + Requests[I].Text + "\"" +
           (I + 1 < Requests.size() ? ",\n" : "\n");
  Src += "};\n\nint g_t_conn[" + N + "] = {";
  for (size_t I = 0; I < Requests.size(); ++I)
    Src += (I ? "," : "") + std::string(Requests[I].ConnStart ? "1" : "0");
  Src += "};\n\nlong g_t_handled;\nlong g_t_trapped;\n";

  Src += "\nint main() {\n";
  Src += std::string("  g_vuln = ") + (Vuln ? "1" : "0") + ";\n";
  if (K == ServerKind::Ftp)
    Src += "  g_cwd[0] = '/';\n  g_cwd[1] = 0;\n";
  // Close the prologue window (sample 0) so request samples start clean.
  Src += "  sb_request_end();\n";
  Src += "  for (int i = 0; i < " + N + "; i++) {\n";
  Src += "    if (g_t_conn[i] != 0) {\n";
  if (K == ServerKind::Ftp)
    Src += "      g_loggedin = 0;\n      g_cwd[0] = '/';\n      g_cwd[1] = "
           "0;\n";
  Src += "      g_conns = g_conns + 1;\n    }\n";
  Src += "    int rc = sb_guard();\n";
  Src += "    if (rc == 0) {\n";
  if (K == ServerKind::Http)
    Src += "      g_handled += handle(g_t_reqs[i]);\n";
  else
    Src += "      handle(g_t_reqs[i]);\n";
  Src += "      g_t_handled = g_t_handled + 1;\n";
  Src += "    } else {\n      g_t_trapped = g_t_trapped + 1;\n    }\n";
  Src += "    sb_request_end();\n  }\n";
  Src += "  if (g_t_handled + g_t_trapped == " + N + ") return 0;\n";
  Src += "  return 1;\n}\n";
  return Src;
}

TrafficReport
TrafficReport::fromSamples(const std::vector<TrafficRequest> &Reqs,
                           const std::vector<RequestSample> &Samples,
                           uint64_t LookupCost, uint64_t UpdateCost,
                           uint64_t CheckCost) {
  TrafficReport Rep;
  // Streams from the generated drivers carry one leading prologue
  // sample; tolerate its absence so hand-built streams fold too.
  size_t Skip = Samples.size() == Reqs.size() + 1 ? 1 : 0;
  size_t N = Samples.size() - Skip;
  if (N > Reqs.size())
    N = Reqs.size();
  Rep.Requests = N;
  for (size_t I = 0; I < N; ++I) {
    const RequestSample &S = Samples[Skip + I];
    bool Adv = Reqs[I].Adversarial;
    bool Trapped = S.Trap != TrapKind::None;
    Rep.Adversarial += Adv;
    Rep.Trapped += Trapped;
    Rep.Missed += Adv && !Trapped;
    Rep.FalseTraps += !Adv && Trapped;
    Rep.Checks += S.Delta.Checks;
    Rep.MetaOps += S.Delta.MetaLoads + S.Delta.MetaStores;
    Rep.GuardEvals += S.Delta.CheckGuards;
    Rep.Cycles += S.Delta.Cycles;
    // Identical formula to the fig2 bench gate: checks at CheckCost,
    // metadata ops at the facility's lookup/update cost, guard tests
    // at 1 (FuncPtrChecks excluded there too).
    Rep.SimCost += S.Delta.Checks * CheckCost +
                   S.Delta.MetaLoads * LookupCost +
                   S.Delta.MetaStores * UpdateCost + S.Delta.CheckGuards * 1;
  }
  return Rep;
}
