//===- workloads/Traffic.h - sustained-traffic request harness --*- C++ -*-===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The traffic tier: a deterministic request generator that drives the
/// §6.4 server handlers (Workloads.h handler fragments) through sustained
/// load — connection churn, mixed request sizes, and adversarial payloads
/// arriving as ordinary traffic. A generated mini-C driver brackets every
/// request with the VM's `sb_guard`/`sb_request_end` builtins, so each
/// request gets its own counter window (RequestSample) and a contained
/// violation never poisons the requests after it. `TrafficReport` folds a
/// lane's sample stream into the per-request metrics the bench baseline
/// gate consumes (checks/request, metadata-ops/request, sim-cost/request,
/// trapped/missed/false-trap detection outcomes).
///
/// Sample-stream convention: sample 0 is the driver prologue (globals and
/// table setup before the request loop); samples 1..N map 1:1 onto the
/// schedule's N requests, in order.
///
//===----------------------------------------------------------------------===//

#ifndef SOFTBOUND_WORKLOADS_TRAFFIC_H
#define SOFTBOUND_WORKLOADS_TRAFFIC_H

#include "vm/VM.h"

#include <cstdint>
#include <string>
#include <vector>

namespace softbound {

/// Which §6.4 server a schedule targets.
enum class ServerKind { Http, Ftp };

/// Printable name ("http" / "ftp").
const char *serverKindName(ServerKind K);

/// One request in a traffic schedule.
struct TrafficRequest {
  std::string Text;         ///< The request/command line the handler sees.
  bool ConnStart = false;   ///< First request of a connection (churn point).
  bool Adversarial = false; ///< Attack payload: must trap under checking.
};

/// Knobs of the seeded schedule generator. Identical configs produce
/// byte-identical schedules (xorshift RNG, no global state).
struct TrafficConfig {
  uint64_t Seed = 64;
  unsigned Requests = 1000;    ///< Total requests in the schedule.
  unsigned AttackPerMille = 20; ///< Per-request adversarial probability.
  unsigned SessionMin = 2;     ///< Connection length lower bound.
  unsigned SessionMax = 8;     ///< Connection length upper bound.
};

/// A generated request schedule plus its driver-source emitters.
struct TrafficSchedule {
  ServerKind Kind = ServerKind::Http;
  TrafficConfig Config;
  std::vector<TrafficRequest> Requests;

  /// Deterministically generates a schedule: sessions of SessionMin..
  /// SessionMax requests (each session opens with ConnStart), request
  /// texts drawn from per-server mixed-size pools, and each slot
  /// replaced by an attack payload with probability AttackPerMille/1000.
  static TrafficSchedule generate(ServerKind K, const TrafficConfig &C);

  unsigned adversarialCount() const;

  /// The generated mini-C traffic driver for this schedule: handler
  /// fragment + request/connection tables + a request loop bracketed by
  /// sb_guard/sb_request_end (plus one prologue sb_request_end).
  std::string driverSource(bool Vuln) const;
};

/// Driver source for an explicit request list (tests slice schedules into
/// prefixes/suffixes and single shots with this).
std::string trafficDriverSource(ServerKind K,
                                const std::vector<TrafficRequest> &Requests,
                                bool Vuln);

/// Per-request metrics folded from one lane's sample stream.
struct TrafficReport {
  uint64_t Requests = 0;    ///< Request samples folded (prologue excluded).
  uint64_t Adversarial = 0; ///< Adversarial requests in the schedule.
  uint64_t Trapped = 0;     ///< Requests ending in a contained violation.
  uint64_t Missed = 0;      ///< Adversarial requests that did NOT trap.
  uint64_t FalseTraps = 0;  ///< Benign requests that trapped.
  uint64_t Checks = 0;      ///< Spatial checks (wrapper checks included).
  uint64_t MetaOps = 0;     ///< Metadata loads + stores.
  uint64_t GuardEvals = 0;  ///< Guard tests on guarded (hoisted) checks.
  uint64_t Cycles = 0;      ///< Simulated cycles inside request windows.
  uint64_t SimCost = 0;     ///< Same formula as the fig2 gate (see .cpp).

  double checksPerRequest() const { return perRequest(Checks); }
  double metaOpsPerRequest() const { return perRequest(MetaOps); }
  double simCostPerRequest() const { return perRequest(SimCost); }

  /// Folds one lane's samples against the request list that produced
  /// them. \p LookupCost / \p UpdateCost price metadata ops (take them
  /// from the run's facility); \p CheckCost matches VMConfig::CheckCost.
  /// Accepts streams with or without the leading prologue sample.
  static TrafficReport fromSamples(const std::vector<TrafficRequest> &Reqs,
                                   const std::vector<RequestSample> &Samples,
                                   uint64_t LookupCost, uint64_t UpdateCost,
                                   uint64_t CheckCost = 3);

private:
  double perRequest(uint64_t Total) const {
    return Requests ? static_cast<double>(Total) / Requests : 0.0;
  }
};

} // namespace softbound

#endif // SOFTBOUND_WORKLOADS_TRAFFIC_H
