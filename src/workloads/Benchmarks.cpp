//===- workloads/Benchmarks.cpp - the 15 Figure-1/2 kernels -----------------===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Mini-C kernels named after the paper's benchmarks. Each reproduces its
/// namesake's pointer-operation density class: the SPEC-style kernels are
/// array codes with almost no pointer loads/stores, the Olden-style
/// kernels are pointer-chasing data-structure codes. Floating-point
/// originals (lbm, bh) use fixed-point arithmetic; this preserves the
/// memory-operation mix that drives Figures 1 and 2 (see DESIGN.md).
///
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

using namespace softbound;

namespace {

// SPEC go: board-scan flood fill over global int arrays. ~0% pointer ops.
const char *GoSrc = R"(
int board[361];
int mark[361];
int stk[400];
long chk = 0;

int gen = 0;

int liberties(int pos) {
  int top = 0;
  int libs = 0;
  gen++;                      /* generation stamp: no O(board) clearing */
  stk[top] = pos; top++;
  mark[pos] = gen;
  int color = board[pos];
  while (top > 0) {
    top--;
    int p = stk[top];
    int r = p / 19;
    int c = p % 19;
    for (int d = 0; d < 4; d++) {
      int nr = r; int nc = c;
      if (d == 0) nr = r - 1;
      if (d == 1) nr = r + 1;
      if (d == 2) nc = c - 1;
      if (d == 3) nc = c + 1;
      if (nr < 0 || nr >= 19 || nc < 0 || nc >= 19) continue;
      int np = nr * 19 + nc;
      if (mark[np] == gen) continue;
      mark[np] = gen;
      if (board[np] == 0) {
        /* Positional scoring: edge distance, influence falloff. */
        int er = nr; if (er > 9) er = 18 - er;
        int ec = nc; if (ec > 9) ec = 18 - ec;
        int infl = (er * ec * 7 + er + ec) % 13;
        int score = (infl * infl + 3 * infl + np % 5) % 11;
        libs += 1 + score % 2;
      }
      else if (board[np] == color && top < 399) { stk[top] = np; top++; }
    }
  }
  return libs;
}

int infl[361];
int gcfg[2];

int main() {
  sb_srand(7);
  for (int i = 0; i < 361; i++) board[i] = (int)(sb_rand() % 3);
  gcfg[0] = 19 + (int)(sb_rand() % 19);  /* scan window lo */
  gcfg[1] = 342 - (int)(sb_rand() % 19); /* scan window hi */
  int lo = gcfg[0];
  int hi = gcfg[1];
  for (int t = 0; t < 50; t++) {
    int pos = (int)(sb_rand() % 361);
    if (board[pos] == 0) board[pos] = 1 + (t % 2);
    chk += liberties(pos);
    /* Influence re-scan over the interior window [lo, hi): both bounds
       are run-time values (the symbolic-init loop shape). */
    for (int p = lo; p < hi; p++)
      infl[p] = (infl[p] + board[p] * 3 + t) % 251;
  }
  for (int p = lo; p < hi; p++) chk += infl[p];
  return (int)(chk % 251);
}
)";

// SPEC lbm: fixed-point 3-point lattice relaxation. ~0% pointer ops.
const char *LbmSrc = R"(
long cur[1024];
long nxt[1024];

int main() {
  for (int i = 0; i < 1024; i++) cur[i] = (i * 37) % 1000;
  for (int t = 0; t < 40; t++) {
    for (int i = 1; i < 1023; i++) {
      long w = cur[i - 1];
      long c = cur[i];
      long e = cur[i + 1];
      /* Collision operator (fixed point): equilibrium + relaxation. */
      long rho = w + c + e;
      long u = (e - w) * 341 / 1024;
      long eq0 = rho * 4 / 9 - u * u / 3;
      long eq1 = rho / 9 + u / 3 + u * u / 2;
      long eq2 = rho / 9 - u / 3 + u * u / 2;
      long v = (eq0 * 2 + eq1 * 3 + eq2 * 3 + c * 4) / 12;
      v += ((v * 7) % 5) - 2;
      if (c > 500) v = v - 3; else v = v + 3;
      nxt[i] = v;
    }
    nxt[0] = nxt[1];
    nxt[1023] = nxt[1022];
    for (int i = 0; i < 1024; i++) cur[i] = nxt[i];
  }
  long chk = 0;
  for (int i = 0; i < 1024; i++) chk += cur[i];
  return (int)(chk % 251);
}
)";

// SPEC hmmer: Viterbi-style dynamic programming over int tables, plus
// the traceback the real Viterbi has: a *decreasing* sweep from a
// run-time sequence length (`j = m - 1; j >= 0; j--` — the
// symbolic-init shape runtime-bound hull hoisting targets). ~1%.
const char *HmmerSrc = R"(
int dpm[130 * 130];
int dpi[130 * 130];
int score[130];
int seq[130];
int tpath[130];
int hcfg[1];

int max2(int a, int b) { if (a > b) return a; return b; }

int main() {
  sb_srand(11);
  for (int i = 0; i < 130; i++) {
    score[i] = (int)(sb_rand() % 17) - 8;
    seq[i] = (int)(sb_rand() % 4);
  }
  hcfg[0] = 120 + (int)(sb_rand() % 8); /* run-time model length */
  int m = hcfg[0];
  for (int r = 0; r < 6; r++) {
    for (int i = 1; i < 128; i++) {
      for (int j = 1; j < 128; j++) {
        int emit = score[(seq[i] * 31 + j) % 130];
        /* Odds-ratio scaling in fixed point. */
        int sc = emit * 17 + (emit * emit) % 23 - j % 3;
        sc = sc - sc / 4 + (sc * 3) % 7;
        int m2 = dpm[(i - 1) * 130 + (j - 1)] + sc % 16;
        int ins = dpi[(i - 1) * 130 + j] - 2;
        int best = max2(m2, ins);
        dpm[i * 130 + j] = best;
        dpi[i * 130 + j] = max2(best - 5, dpi[i * 130 + j - 1] - 1);
      }
    }
    /* Viterbi traceback: walk the last DP row backwards from the
       run-time model length down to 0. */
    for (int j = m - 1; j >= 0; j--)
      tpath[j] = (tpath[j] + dpm[127 * 130 + j] % 31 + r) % 97;
  }
  long chk = 0;
  for (int j = 0; j < 128; j++) chk += dpm[127 * 130 + j];
  for (int j = 0; j < 130; j++) chk += tpath[j];
  return (int)((chk % 251 + 251) % 251);
}
)";

// SPEC compress: LZW coding with open-addressed int hash tables. ~2%.
const char *CompressSrc = R"(
char inbuf[4096];
int hprefix[8192];
int hchar[8192];
int hcode[8192];
int outcodes[4096];

int main() {
  sb_srand(13);
  for (int i = 0; i < 4096; i++) {
    if (i % 7 < 4) inbuf[i] = (char)('a' + i % 5);
    else inbuf[i] = (char)('a' + (int)(sb_rand() % 9));
  }
  for (int i = 0; i < 8192; i++) hcode[i] = -1;
  int nextcode = 256;
  int nout = 0;
  long crc = 0xffff;
  int prefix = inbuf[0];
  for (int i = 1; i < 4096; i++) {
    int c = inbuf[i];
    /* CRC-style mixing (register-only). */
    crc = crc ^ c;
    for (int b = 0; b < 6; b++) {
      if ((crc & 1) != 0) crc = (crc >> 1) ^ 0xa001;
      else crc = crc >> 1;
    }
    int h = (prefix * 313 + c * 7 + 1) % 8192;
    if (h < 0) h = h + 8192;
    int found = -1;
    while (hcode[h] != -1) {
      if (hprefix[h] == prefix && hchar[h] == c) { found = hcode[h]; break; }
      h = (h + 1) % 8192;
    }
    if (found >= 0) { prefix = found; continue; }
    outcodes[nout] = prefix;
    nout++;
    if (nextcode < 4096) {
      hprefix[h] = prefix; hchar[h] = c; hcode[h] = nextcode;
      nextcode++;
    }
    prefix = c;
  }
  outcodes[nout] = prefix; nout++;
  long chk = crc % 97;
  for (int i = 0; i < nout; i++) chk += outcodes[i] * (i % 13 + 1);
  return (int)((chk % 251 + 251) % 251);
}
)";

// SPEC ijpeg: integer 8x8 DCT over an image buffer, plus the scan-band
// conditioning the original's progressive mode has: a row window
// [lo, hi) only known at run time (symbolic init *and* limit) and a
// stride-8 block-column sweep — the two-symbol and strided loop shapes
// runtime-bound hull hoisting targets. ~3%.
const char *IjpegSrc = R"(
int image[32 * 32];
int coef[32 * 32];
int cosT[64];
int jcfg[2];

int main() {
  sb_srand(17);
  for (int i = 0; i < 64; i++) cosT[i] = ((i * 29) % 181) - 90;
  for (int i = 0; i < 32 * 32; i++) image[i] = (int)(sb_rand() % 256) - 128;
  jcfg[0] = 3 + (int)(sb_rand() % 5);   /* scan band lo */
  jcfg[1] = 24 + (int)(sb_rand() % 8);  /* scan band hi (<= 31) */
  int lo = jcfg[0];
  int hi = jcfg[1];
  for (int pass = 0; pass < 8; pass++) {
    for (int by = 0; by < 4; by++) {
      for (int bx = 0; bx < 4; bx++) {
        for (int u = 0; u < 8; u++) {
          for (int v = 0; v < 8; v++) {
            int acc = 0;
            for (int x = 0; x < 8; x++) {
              int px = image[(by * 8 + u) * 32 + bx * 8 + x];
              acc += px * cosT[(v * 8 + x) % 64];
            }
            coef[(by * 8 + u) * 32 + bx * 8 + v] = acc / 128;
          }
        }
      }
    }
    /* Progressive scan band: rows [lo, hi) sharpen against the DCT
       output; both bounds are run-time values. */
    for (int r = lo; r < hi; r++)
      for (int c = 0; c < 32; c++)
        image[r * 32 + c] = (image[r * 32 + c] * 7 + coef[r * 32 + c]) % 256;
    /* Block-column accumulation: stride-8 sweep under a run-time limit. */
    int cols = hi * 32;
    for (int k = 0; k < cols; k = k + 8)
      coef[k] = (coef[k] + image[k]) % 256;
    for (int i = 0; i < 32 * 32; i++)
      image[i] = (image[i] + coef[i] / 4) % 256;
  }
  long chk = 0;
  for (int i = 0; i < 32 * 32; i++) chk += coef[i];
  return (int)((chk % 251 + 251) % 251);
}
)";

// Olden bh: Barnes-Hut-style pairwise forces on a body array plus a
// pointer-linked quadtree build. ~10% pointer ops.
const char *BhSrc = R"(
struct qnode {
  long cx; long cy; long mass;
  struct qnode* kid[4];
};
long bx[128]; long by[128]; long bm[128];
long fx[128]; long fy[128];

struct qnode* newnode(long cx, long cy) {
  struct qnode* n = (struct qnode*)malloc(sizeof(struct qnode));
  n->cx = cx; n->cy = cy; n->mass = 0;
  n->kid[0] = NULL; n->kid[1] = NULL; n->kid[2] = NULL; n->kid[3] = NULL;
  return n;
}

void insert(struct qnode* root, long x, long y, long m, int depth) {
  root->mass += m;
  if (depth >= 6) return;
  int q = 0;
  if (x > root->cx) q = q + 1;
  if (y > root->cy) q = q + 2;
  if (root->kid[q] == NULL) {
    long step = 512 >> depth;
    long nx = root->cx; long ny = root->cy;
    if (q % 2 == 1) nx = nx + step; else nx = nx - step;
    if (q / 2 == 1) ny = ny + step; else ny = ny - step;
    root->kid[q] = newnode(nx, ny);
  }
  insert(root->kid[q], x, y, m, depth + 1);
}

long treemass(struct qnode* n) {
  if (n == NULL) return 0;
  long s = n->mass;
  for (int i = 0; i < 4; i++) s += treemass(n->kid[i]);
  return s;
}

int main() {
  sb_srand(19);
  for (int i = 0; i < 128; i++) {
    bx[i] = (long)(sb_rand() % 2048);
    by[i] = (long)(sb_rand() % 2048);
    bm[i] = 1 + (long)(sb_rand() % 9);
  }
  for (int step = 0; step < 4; step++) {
    struct qnode* root = newnode(1024, 1024);
    for (int i = 0; i < 128; i++) insert(root, bx[i], by[i], bm[i], 0);
    for (int i = 0; i < 128; i++) {
      long ax = 0; long ay = 0;
      for (int j = 0; j < 128; j++) {
        if (i == j) continue;
        long dx = bx[j] - bx[i];
        long dy = by[j] - by[i];
        long d2 = dx * dx + dy * dy + 16;
        ax += dx * bm[j] * 256 / d2;
        ay += dy * bm[j] * 256 / d2;
      }
      fx[i] = ax; fy[i] = ay;
    }
    long tm = treemass(root);
    for (int i = 0; i < 128; i++) {
      bx[i] = (bx[i] + fx[i] / 16 + tm % 3) % 2048;
      by[i] = (by[i] + fy[i] / 16) % 2048;
      if (bx[i] < 0) bx[i] = -bx[i];
      if (by[i] < 0) by[i] = -by[i];
    }
  }
  long chk = 0;
  for (int i = 0; i < 128; i++) chk += bx[i] * 3 + by[i];
  return (int)(chk % 251);
}
)";

// Olden tsp: nearest-neighbour tour over a linked city list, fed by the
// point-set conditioning phase the real tsp's uniform() generation has —
// coordinate arrays swept under a run-time city count (the variable-limit
// shape runtime-limit hull hoisting targets). ~15%.
const char *TspSrc = R"(
struct city {
  long x; long y;
  int visited;
  struct city* next;
};

long xs[2048];
long ys[2048];
int cfg[1];

void gen_coords(int n) {
  for (int i = 0; i < n; i++) {
    xs[i] = (long)(sb_rand() % 4096);
    ys[i] = (long)(sb_rand() % 4096);
  }
}

/* Coupled Jacobi-style relaxation of the point cloud: 24 sweeps, the
   conditioning step before the tour (mirrors the original's point
   generation pass). The limit n is only known at run time. */
void smooth_coords(int n) {
  for (int r = 0; r < 24; r++) {
    for (int i = 0; i < n; i++) {
      long jx = xs[i];
      xs[i] = (jx * 3 + ys[i] + (i % 17)) / 4;
      ys[i] = (ys[i] * 3 + jx + 7) / 4;
    }
  }
}

int main() {
  sb_srand(23);
  cfg[0] = 1536 + (int)(sb_rand() % 256);
  int n = cfg[0];
  gen_coords(n);
  smooth_coords(n);
  struct city* head = NULL;
  for (int i = 0; i < 150; i++) {
    struct city* c = (struct city*)malloc(sizeof(struct city));
    int k = i * 10;
    c->x = xs[k] + i;
    c->y = ys[k] + 2 * i;
    c->visited = 0;
    c->next = head;
    head = c;
  }
  struct city* cur = head;
  cur->visited = 1;
  long tour = 0;
  for (int leg = 0; leg < 149; leg++) {
    struct city* best = NULL;
    long bestd = 0x7fffffffffffffff;
    for (struct city* p = head; p != NULL; p = p->next) {
      if (p->visited) continue;
      long dx = p->x - cur->x;
      long dy = p->y - cur->y;
      long d2 = dx * dx + dy * dy + 1;
      /* Integer Newton sqrt to convergence precision. */
      long r = d2 / 2 + 1;
      for (int it = 0; it < 12; it++) r = (r + d2 / r) / 2;
      if (r < bestd) { bestd = r; best = p; }
    }
    best->visited = 1;
    tour += bestd % 1000;
    cur = best;
  }
  return (int)(tour % 251);
}
)";

// SPEC libquantum: gate simulation over a register of amplitude cells
// addressed through a pointer table. ~18%.
const char *LibquantumSrc = R"(
struct amp { long state; long re; long im; };
struct amp* reg[512];

int main() {
  sb_srand(29);
  for (int i = 0; i < 512; i++) {
    struct amp* a = (struct amp*)malloc(sizeof(struct amp));
    a->state = i;
    a->re = 1000;
    a->im = 0;
    reg[i] = a;
  }
  for (int gate = 0; gate < 24; gate++) {
    int bit = gate % 9;
    int mask = 1 << bit;
    for (int i = 0; i < 512; i++) {
      struct amp* a = reg[i];
      if ((a->state & mask) != 0) {
        long re = a->re;
        long im = a->im;
        /* Fixed-point rotation with renormalization. */
        long nr = (re * 70 - im * 70) / 99;
        long ni = (re * 70 + im * 70) / 99;
        long norm = nr * nr + ni * ni;
        long scale = 1000;
        for (int it = 0; it < 14; it++)
          scale = (scale + (norm / 1000) * 1000 / (scale + 1)) / 2;
        nr = nr * 997 / (scale + 7);
        ni = ni * 997 / (scale + 7);
        a->re = nr % 100000;
        a->im = ni % 100000;
      } else {
        long re = a->re;
        long ph = (re * 13 + gate * 7) % 97;
        for (int it = 0; it < 7; it++)
          ph = (ph * ph + 3 * ph + it) % 89;
        a->re = re + ph % 5;
      }
    }
    // CNOT: swap amplitude cells whose control bit is set.
    int cbit = (gate + 3) % 9;
    int cmask = 1 << cbit;
    for (int i = 0; i < 512; i++) {
      int j = i ^ mask;
      if ((i & cmask) != 0 && j > i) {
        struct amp* t = reg[i];
        reg[i] = reg[j];
        reg[j] = t;
      }
    }
  }
  long chk = 0;
  for (int i = 0; i < 512; i++) chk += reg[i]->re + reg[i]->im * 3;
  return (int)((chk % 251 + 251) % 251);
}
)";

// Olden perimeter: quadtree over a bitmap; perimeter via recursive walks.
// ~28%.
const char *PerimeterSrc = R"(
struct quad {
  int color;
  struct quad* kid[4];
};

int hist[64];

struct quad* build(int x, int y, int size, int depth) {
  struct quad* q = (struct quad*)malloc(sizeof(struct quad));
  /* Scalar bookkeeping: level statistics (dilutes pointer traffic the way
     the original's image analysis does). */
  for (int h = 0; h < 3; h++) hist[(x + y + h) % 64] += size + h;
  if (depth == 0 || size == 1) {
    int v = (x * x + y * y + x * 3 + y) % 7;
    if (v < 3) q->color = 1; else q->color = 0;
    q->kid[0] = NULL; q->kid[1] = NULL; q->kid[2] = NULL; q->kid[3] = NULL;
    return q;
  }
  int h = size / 2;
  q->kid[0] = build(x, y, h, depth - 1);
  q->kid[1] = build(x + h, y, h, depth - 1);
  q->kid[2] = build(x, y + h, h, depth - 1);
  q->kid[3] = build(x + h, y + h, h, depth - 1);
  if (q->kid[0]->color == 1 && q->kid[1]->color == 1 &&
      q->kid[2]->color == 1 && q->kid[3]->color == 1) q->color = 1;
  else if (q->kid[0]->color == 0 && q->kid[1]->color == 0 &&
           q->kid[2]->color == 0 && q->kid[3]->color == 0) q->color = 0;
  else q->color = 2;
  return q;
}

long perim(struct quad* q, int size) {
  if (q == NULL) return 0;
  hist[size % 64] += 1;
  if (q->color == 1) return 4 * size;
  if (q->color == 0) return 0;
  long s = 0;
  for (int i = 0; i < 4; i++) s += perim(q->kid[i], size / 2);
  return s - size;
}

int main() {
  long chk = 0;
  for (int round = 0; round < 6; round++) {
    struct quad* root = build(round, round * 2, 64, 6);
    chk += perim(root, 64);
  }
  return (int)((chk % 251 + 251) % 251);
}
)";

// Olden health: hospital hierarchy with patient queues (linked lists
// moving between levels). ~35%.
const char *HealthSrc = R"(
struct patient { int id; int time; struct patient* next; };
struct village {
  struct patient* waiting;
  struct patient* treated;
  struct village* kid[4];
  int level;
};

struct village* buildv(int level) {
  struct village* v = (struct village*)malloc(sizeof(struct village));
  v->waiting = NULL; v->treated = NULL; v->level = level;
  for (int i = 0; i < 4; i++) {
    if (level > 0) v->kid[i] = buildv(level - 1);
    else v->kid[i] = NULL;
  }
  return v;
}

int nextid = 0;

int vstats[32];

void step(struct village* v) {
  if (v == NULL) return;
  /* Scalar epidemiology bookkeeping per village visit. */
  for (int h = 0; h < 9; h++) vstats[(v->level * 5 + h) % 32] += h + 1;
  for (int i = 0; i < 4; i++) step(v->kid[i]);
  // New patients arrive at leaves.
  if (v->level == 0 && sb_rand() % 3 == 0) {
    struct patient* p = (struct patient*)malloc(sizeof(struct patient));
    p->id = nextid; nextid++;
    p->time = 0;
    p->next = v->waiting;
    v->waiting = p;
  }
  // Treat one waiting patient; escalate every third to the parent level
  // by leaving it in 'waiting' of a child pulled up below.
  if (v->waiting != NULL) {
    struct patient* p = v->waiting;
    v->waiting = p->next;
    p->time += v->level + 1;
    p->next = v->treated;
    v->treated = p;
  }
  // Pull one treated patient up from each child.
  for (int i = 0; i < 4; i++) {
    struct village* k = v->kid[i];
    if (k != NULL && k->treated != NULL) {
      struct patient* p = k->treated;
      k->treated = p->next;
      p->next = v->waiting;
      v->waiting = p;
    }
  }
}

long count(struct patient* p, int mul) {
  long s = 0;
  while (p != NULL) { s += p->time * mul + p->id; p = p->next; }
  return s;
}

long tally(struct village* v) {
  if (v == NULL) return 0;
  long s = count(v->waiting, 2) + count(v->treated, 3);
  for (int i = 0; i < 4; i++) s += tally(v->kid[i]);
  return s;
}

int main() {
  sb_srand(31);
  struct village* root = buildv(3);
  for (int t = 0; t < 30; t++) step(root);
  long extra = 0;
  for (int i = 0; i < 32; i++) extra += vstats[i];
  return (int)(((tally(root) + extra) % 251 + 251) % 251);
}
)";

// Olden bisort: binary-tree sort with recursive merge phases. ~42%.
const char *BisortSrc = R"(
struct tnode { long val; struct tnode* l; struct tnode* r; };

int depthhist[64];

struct tnode* insert(struct tnode* t, long v) {
  if (t == NULL) {
    struct tnode* n = (struct tnode*)malloc(sizeof(struct tnode));
    n->val = v; n->l = NULL; n->r = NULL;
    return n;
  }
  depthhist[(int)(v % 64)] += 1;
  if ((v & 1) == 0) depthhist[(int)((v >> 1) % 64)] += 1;
  if (v < t->val) t->l = insert(t->l, v);
  else t->r = insert(t->r, v);
  return t;
}

long walk(struct tnode* t, long acc) {
  if (t == NULL) return acc;
  acc = walk(t->l, acc);
  acc = acc * 3 + t->val % 97;
  return walk(t->r, acc);
}

long minv(struct tnode* t) {
  while (t->l != NULL) t = t->l;
  return t->val;
}

int main() {
  sb_srand(37);
  long chk = 0;
  for (int round = 0; round < 5; round++) {
    struct tnode* root = NULL;
    for (int i = 0; i < 300; i++)
      root = insert(root, (long)(sb_rand() % 100000));
    chk += walk(root, 0) % 10007;
    chk += minv(root);
  }
  return (int)((chk % 251 + 251) % 251);
}
)";

// Olden mst: adjacency-list graph, Prim-style growth over a linked
// vertex worklist. ~48%.
const char *MstSrc = R"(
struct edge { long w; struct vert* to; struct edge* next; };
struct vert {
  struct edge* adj;
  long dist;
  struct vert* next;     /* unvisited worklist link */
};
struct vert* pool[96];

void addedge(struct vert* a, struct vert* b, long w) {
  struct edge* e = (struct edge*)malloc(sizeof(struct edge));
  e->to = b; e->w = w; e->next = a->adj; a->adj = e;
  struct edge* f = (struct edge*)malloc(sizeof(struct edge));
  f->to = a; f->w = w; f->next = b->adj; b->adj = f;
}

int main() {
  sb_srand(41);
  for (int i = 0; i < 96; i++) {
    struct vert* v = (struct vert*)malloc(sizeof(struct vert));
    v->adj = NULL; v->dist = 1 << 30; v->next = NULL;
    pool[i] = v;
  }
  for (int i = 1; i < 96; i++)
    addedge(pool[i], pool[(int)(sb_rand() % i)], 1 + (long)(sb_rand() % 1000));
  for (int i = 0; i < 240; i++) {
    int a = (int)(sb_rand() % 96);
    int b = (int)(sb_rand() % 96);
    if (a != b) addedge(pool[a], pool[b], 1 + (long)(sb_rand() % 1000));
  }
  /* Unvisited worklist. */
  struct vert* work = NULL;
  for (int i = 95; i >= 1; i--) { pool[i]->next = work; work = pool[i]; }
  pool[0]->dist = 0;
  struct vert* cur = pool[0];
  long total = 0;
  for (int round = 0; round < 8; round++) {
    /* Re-run Prim from scratch to scale the kernel. */
    for (int i = 0; i < 96; i++) pool[i]->dist = 1 << 30;
    work = NULL;
    for (int i = 95; i >= 1; i--) { pool[i]->next = work; work = pool[i]; }
    pool[0]->dist = 0;
    cur = pool[0];
    while (cur != NULL) {
      total += cur->dist % 1000;
      for (struct edge* e = cur->adj; e != NULL; e = e->next)
        if (e->w < e->to->dist) e->to->dist = e->w;
      /* Pick the nearest unvisited vertex, unlinking it. */
      struct vert* best = NULL;
      struct vert* bestprev = NULL;
      struct vert* prev = NULL;
      for (struct vert* p = work; p != NULL; p = p->next) {
        if (best == NULL || p->dist < best->dist) { best = p; bestprev = prev; }
        prev = p;
      }
      if (best == NULL) { cur = NULL; }
      else {
        if (bestprev == NULL) work = best->next;
        else bestprev->next = best->next;
        cur = best;
      }
    }
  }
  return (int)(total % 251);
}
)";

// SPEC li: cons-cell expression interpreter (eval over list structures).
// ~52%.
const char *LiSrc = R"SRC(
struct cell {
  int tag;           /* 0 = number, 1 = pair */
  long num;
  struct cell* car;
  struct cell* cdr;
};

/* xlisp reads program text before evaluating it: a reader buffer scanned
   under a strlen-derived (run-time) length — the variable-limit shape. */
char prog[384];
int toks[384];

int load_prog() {
  strcpy(prog, "( + ( * 12 7 ) ( - ( * 3 20 ) ( + 9 4 ) ) ( + ( * 2 31 ) ( - 44 5 ) ) ( - ( + 17 25 ) ( * 6 9 ) ) ( * ( + 1 2 ) ( + 3 4 ) ( - 9 2 ) ) ( + ( - 100 58 ) ( * 11 3 ) ( + 7 0 ) ( - 31 12 ) ) ( * ( - 50 29 ) ( + 8 13 ) ) ( + ( * 4 16 ) ( - 90 27 ) ( * 5 5 ) ) ( - ( * 14 3 ) ( + 6 28 ) ( - 77 41 ) )");
  return (int)strlen(prog);
}

/* Classify every character of the program text. */
int scan_text(int len) {
  int depth = 0;
  for (int i = 0; i < len; i++) {
    int c = prog[i];
    int t = 0;
    if (c == 40) { t = 1; depth = depth + 1; }
    else if (c == 41) { t = 2; depth = depth - 1; }
    else if (c >= 48 && c <= 57) { t = 3; }
    else if (c != 32) { t = 4; }
    toks[i] = t;
  }
  return depth;
}

long lex_hash(int len) {
  long h = 7;
  for (int i = 0; i < len; i++) h = h * 31 + toks[i] * 7 + prog[i];
  return h;
}

struct cell* mknum(long v) {
  struct cell* c = (struct cell*)malloc(sizeof(struct cell));
  c->tag = 0; c->num = v; c->car = NULL; c->cdr = NULL;
  return c;
}

struct cell* mkpair(struct cell* a, struct cell* d) {
  struct cell* c = (struct cell*)malloc(sizeof(struct cell));
  c->tag = 1; c->num = 0; c->car = a; c->cdr = d;
  return c;
}

/* Build a random expression tree: (op lhs rhs) encoded as nested pairs. */
struct cell* gen(int depth) {
  if (depth == 0 || sb_rand() % 4 == 0)
    return mknum((long)(sb_rand() % 100) - 50);
  struct cell* op = mknum((long)(sb_rand() % 3));
  return mkpair(op, mkpair(gen(depth - 1), mkpair(gen(depth - 1), NULL)));
}

long eval(struct cell* e) {
  if (e->tag == 0) return e->num;
  long op = e->car->num;
  struct cell* args = e->cdr;
  long a = eval(args->car);
  long b = eval(args->cdr->car);
  if (op == 0) return a + b;
  if (op == 1) return a - b;
  return (a % 31) * (b % 31);
}

/* Copy an expression (exercises allocation + pointer stores). */
struct cell* copy(struct cell* e) {
  if (e == NULL) return NULL;
  if (e->tag == 0) return mknum(e->num);
  return mkpair(copy(e->car), copy(e->cdr));
}

int main() {
  sb_srand(43);
  int len = load_prog();
  long chk = 0;
  for (int i = 0; i < 40; i++) {
    chk += scan_text(len) + lex_hash(len) % 31;
    struct cell* e = gen(6);
    struct cell* e2 = copy(e);
    chk += eval(e) + eval(e2) * 2;
  }
  return (int)((chk % 251 + 251) % 251);
}
)SRC";

// Olden em3d: bipartite graph relaxation through per-node pointer
// arrays. ~58%.
const char *Em3dSrc = R"(
struct node {
  long value;
  int degree;
  struct node** from;
  long* coeff;
  struct node* next;
};

struct node* mklist(int n, long seed) {
  struct node* head = NULL;
  for (int i = 0; i < n; i++) {
    struct node* nd = (struct node*)malloc(sizeof(struct node));
    nd->value = (seed * (i + 3)) % 1000;
    nd->degree = 0;
    nd->from = NULL;
    nd->coeff = NULL;
    nd->next = head;
    head = nd;
  }
  return head;
}

struct node* pick(struct node* head, int idx) {
  struct node* p = head;
  for (int i = 0; i < idx; i++) p = p->next;
  return p;
}

void wire(struct node* dsts, struct node* srcs, int n, int degree) {
  for (struct node* d = dsts; d != NULL; d = d->next) {
    d->degree = degree;
    d->from = (struct node**)malloc(sizeof(struct node*) * degree);
    d->coeff = (long*)malloc(sizeof(long) * degree);
    for (int k = 0; k < degree; k++) {
      d->from[k] = pick(srcs, (int)(sb_rand() % n));
      d->coeff[k] = (long)(sb_rand() % 7) + 1;
    }
  }
}

void relax(struct node* list) {
  for (struct node* d = list; d != NULL; d = d->next) {
    long acc = d->value;
    for (int k = 0; k < d->degree; k++)
      acc -= d->from[k]->value * d->coeff[k] / 8;
    d->value = acc % 100000;
  }
}

int main() {
  sb_srand(47);
  struct node* e = mklist(64, 17);
  struct node* h = mklist(64, 29);
  wire(e, h, 64, 6);
  wire(h, e, 64, 6);
  for (int t = 0; t < 12; t++) { relax(e); relax(h); }
  long chk = 0;
  for (struct node* p = e; p != NULL; p = p->next) chk += p->value;
  for (struct node* p = h; p != NULL; p = p->next) chk += 3 * p->value;
  return (int)((chk % 251 + 251) % 251);
}
)";

// Olden treeadd: recursive binary-tree summation — the most pointer-
// dominant kernel. ~62%.
const char *TreeaddSrc = R"(
struct tree { long val; struct tree* l; struct tree* r; };

struct tree* build(int depth, long seed) {
  struct tree* t = (struct tree*)malloc(sizeof(struct tree));
  t->val = seed % 100;
  if (depth <= 1) { t->l = NULL; t->r = NULL; return t; }
  t->l = build(depth - 1, seed * 3 + 1);
  t->r = build(depth - 1, seed * 5 + 2);
  return t;
}

long sum(struct tree* t) {
  if (t == NULL) return 0;
  return t->val + sum(t->l) + sum(t->r);
}

int main() {
  struct tree* root = build(11, 9);
  long chk = 0;
  for (int i = 0; i < 10; i++) chk += sum(root) % 10007;
  return (int)(chk % 251);
}
)";

} // namespace

const std::vector<Workload> &softbound::benchmarkSuite() {
  static const std::vector<Workload> Suite = {
      {"go", "SPEC", GoSrc, "board flood-fill liberty counting"},
      {"lbm", "SPEC", LbmSrc, "fixed-point lattice relaxation"},
      {"hmmer", "SPEC", HmmerSrc, "Viterbi dynamic programming"},
      {"compress", "SPEC", CompressSrc, "LZW coding with int hash tables"},
      {"ijpeg", "SPEC", IjpegSrc, "integer 8x8 DCT"},
      {"bh", "Olden", BhSrc, "Barnes-Hut forces + quadtree build"},
      {"tsp", "Olden", TspSrc, "nearest-neighbour tour over linked list"},
      {"libquantum", "SPEC", LibquantumSrc,
       "gate simulation over pointer-addressed register"},
      {"perimeter", "Olden", PerimeterSrc, "quadtree perimeter"},
      {"health", "Olden", HealthSrc, "hierarchical patient queues"},
      {"bisort", "Olden", BisortSrc, "binary-tree sort rounds"},
      {"mst", "Olden", MstSrc, "Prim over adjacency lists"},
      {"li", "SPEC", LiSrc, "cons-cell expression interpreter"},
      {"em3d", "Olden", Em3dSrc, "bipartite graph relaxation"},
      {"treeadd", "Olden", TreeaddSrc, "recursive tree summation"},
  };
  return Suite;
}
