//===- workloads/Attacks.cpp - the 18 Table-3 attacks -----------------------===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Wilander-style attack suite (Table 3). Each program really corrupts
/// control data living in simulated memory: return-address words, saved
/// frame pointers, function-pointer variables/parameters, and jmp_buf PC
/// fields. "Attack landed" = the VM reports hijacked control flow or the
/// payload runs (exit code 66). Under SoftBound both checking modes must
/// trap at the out-of-bounds *write* before any corruption takes effect.
///
/// Frame layout recap (vm/VM.cpp): [locals… ↑][saved FP][return addr],
/// allocas laid out downward in declaration order, so the LAST declared
/// buffer sits lowest and overflows sweep upward through earlier locals
/// into the control words.
///
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

using namespace softbound;

namespace {

/// Shared prologue: a benign function, the attack payload, and escape
/// sinks used to pin parameters into stack memory.
const char *Prologue = R"(
char* g_sink;
long g_dummy;

int legit(int x) { return x + 1; }

int attack_payload(int x) {
  print_str("HIJACKED");
  exit(66);
  return 0;
}
)";

std::string withPrologue(const char *Body) {
  return std::string(Prologue) + Body;
}

} // namespace

const std::vector<AttackCase> &softbound::attackSuite() {
  static const std::vector<AttackCase> Suite = {

      //===------------------------------------------------------------===//
      // Group 1: buffer overflow on the stack, all the way to the target.
      //===------------------------------------------------------------===//

      {"stack-direct-retaddr", "direct overflow", "stack", "return address",
       withPrologue(R"(
int f() {
  char buf[16];            /* [buf 16][saved fp][ret addr]               */
  long* w = (long*)buf;
  w[2] = (long)attack_payload;   /* saved fp word (swept through)       */
  w[3] = (long)attack_payload;   /* return address word                 */
  return 1;
}
int main() { return f(); }
)")},

      {"stack-direct-basepointer", "direct overflow", "stack",
       "old base pointer", withPrologue(R"(
int f() {
  char buf[16];
  long* w = (long*)buf;
  w[2] = (long)attack_payload;   /* saved frame pointer word only       */
  return 1;
}
int main() { return f(); }
)")},

      {"stack-direct-funcptr-local", "direct overflow", "stack",
       "function pointer local variable", withPrologue(R"(
int f() {
  int (*fp[1])(int);       /* first local: just below the saved fp      */
  char buf[16];            /* below fp: buf+16 == &fp[0]                */
  fp[0] = legit;
  long* w = (long*)buf;
  w[2] = (long)attack_payload;
  return fp[0](7);
}
int main() { return f(); }
)")},

      {"stack-direct-funcptr-param", "direct overflow", "stack",
       "function pointer parameter", withPrologue(R"(
int f(int (*fp)(int)) {
  char buf[16];
  g_sink = (char*)&fp;     /* pin the parameter spill slot in memory    */
  long* w = (long*)buf;
  w[2] = (long)attack_payload;   /* buf+16 == parameter slot            */
  return fp(5);
}
int main() { return f(legit); }
)")},

      {"stack-direct-longjmpbuf-local", "direct overflow", "stack",
       "longjmp buffer local variable", withPrologue(R"(
int f() {
  long jb[4];              /* first local                               */
  char buf[16];            /* buf+16 == &jb[0]                          */
  if (setjmp(jb) != 0) return 1;
  long* w = (long*)buf;
  w[2] = 1;                /* jb[0]: magic (swept)                      */
  w[3] = 1;                /* jb[1]: token                              */
  w[4] = (long)attack_payload;   /* jb[2]: PC field                     */
  longjmp(jb, 1);
  return 0;
}
int main() { return f(); }
)")},

      {"stack-direct-longjmpbuf-param", "direct overflow", "stack",
       "longjmp buffer function parameter", withPrologue(R"(
int f(long* jb) {
  char buf[16];            /* caller's jb sits above f's control words  */
  long* w = (long*)buf;
  w[2] = 1; w[3] = 1;      /* f's saved fp + ret addr (swept through)   */
  w[4] = 1; w[5] = 1;      /* jb[0], jb[1]                              */
  w[6] = (long)attack_payload;   /* jb[2]: PC field                     */
  longjmp(jb, 1);
  return 0;
}
int main() {
  long jb[4];
  if (setjmp(jb) != 0) return 1;
  return f(jb);
}
)")},

      //===------------------------------------------------------------===//
      // Group 2: buffer overflow on heap/BSS/data, all the way.
      //===------------------------------------------------------------===//

      {"heap-direct-funcptr", "direct overflow", "heap", "function pointer",
       withPrologue(R"(
int main() {
  char* buf = malloc(16);
  long* fpslot = (long*)malloc(8);   /* adjacent: buf+16 == fpslot      */
  fpslot[0] = (long)legit;
  long* w = (long*)buf;
  w[2] = (long)attack_payload;
  int (*fp)(int);
  fp = (int (*)(int))(char*)fpslot[0];
  return fp(3);
}
)")},

      {"data-direct-longjmpbuf", "direct overflow", "data",
       "longjmp buffer", withPrologue(R"(
long gbuf[2];              /* 8-aligned so gjb is exactly gbuf + 16     */
long gjb[4];
int main() {
  if (setjmp(gjb) != 0) return 1;
  long* w = (long*)gbuf;
  w[2] = 1; w[3] = 1;      /* gjb[0], gjb[1]                            */
  w[4] = (long)attack_payload;   /* gjb[2]: PC field                    */
  longjmp(gjb, 1);
  return 0;
}
)")},

      //===------------------------------------------------------------===//
      // Group 3: overflow a data pointer on the stack, then write through
      // it to the target.
      //===------------------------------------------------------------===//

      {"stack-indirect-retaddr", "overflow pointer, then write", "stack",
       "return address", withPrologue(R"(
int f() {
  long* p[1];              /* pointer variable just below saved fp      */
  char buf[16];            /* buf+16 == &p[0]                           */
  long* w = (long*)buf;
  w[2] = (long)buf + 32;   /* ret addr slot = buf + 32                  */
  *(p[0]) = (long)attack_payload;
  return 1;
}
int main() { return f(); }
)")},

      {"stack-indirect-basepointer", "overflow pointer, then write",
       "stack", "old base pointer", withPrologue(R"(
int f() {
  long* p[1];
  char buf[16];
  long* w = (long*)buf;
  w[2] = (long)buf + 24;   /* saved fp slot = buf + 24                  */
  *(p[0]) = (long)attack_payload;
  return 1;
}
int main() { return f(); }
)")},

      {"stack-indirect-funcptr-local", "overflow pointer, then write",
       "stack", "function pointer variable", withPrologue(R"(
int f() {
  int (*fp[1])(int);       /* at buf + 24                               */
  long* p[1];              /* at buf + 16                               */
  char buf[16];
  fp[0] = legit;
  long* w = (long*)buf;
  w[2] = (long)buf + 24;
  *(p[0]) = (long)attack_payload;
  return fp[0](2);
}
int main() { return f(); }
)")},

      {"stack-indirect-funcptr-param", "overflow pointer, then write",
       "stack", "function pointer parameter", withPrologue(R"(
int f(int (*fp)(int)) {
  long* p[1];
  char buf[16];
  g_sink = (char*)&fp;     /* parameter slot ends up at buf + 24        */
  long* w = (long*)buf;
  w[2] = (long)buf + 24;
  *(p[0]) = (long)attack_payload;
  return fp(2);
}
int main() { return f(legit); }
)")},

      {"stack-indirect-longjmpbuf-local", "overflow pointer, then write",
       "stack", "longjmp buffer variable", withPrologue(R"(
int f() {
  long jb[4];              /* jb[2] (PC field) sits at buf + 40         */
  long* p[1];              /* at buf + 16                               */
  char buf[16];
  if (setjmp(jb) != 0) return 1;
  long* w = (long*)buf;
  w[2] = (long)buf + 40;
  *(p[0]) = (long)attack_payload;
  longjmp(jb, 1);
  return 0;
}
int main() { return f(); }
)")},

      {"stack-indirect-longjmpbuf-param", "overflow pointer, then write",
       "stack", "longjmp buffer function parameter", withPrologue(R"(
int f(long* jb) {
  long* p[1];              /* at buf + 16                               */
  char buf[16];            /* caller jb[2] sits at buf + 56             */
  long* w = (long*)buf;
  w[2] = (long)buf + 56;
  *(p[0]) = (long)attack_payload;
  longjmp(jb, 1);
  return 0;
}
int main() {
  long jb[4];
  if (setjmp(jb) != 0) return 1;
  return f(jb);
}
)")},

      //===------------------------------------------------------------===//
      // Group 4: overflow a data pointer on heap/BSS, then write through.
      //===------------------------------------------------------------===//

      {"heap-indirect-retaddr", "overflow pointer, then write", "heap",
       "return address", withPrologue(R"(
int f() {
  long anchor;             /* only pinned local: ret slot = &anchor+16  */
  anchor = 5;
  g_sink = (char*)&anchor;
  char* buf = malloc(16);
  long** slot = (long**)malloc(8);   /* adjacent: buf+16 == slot        */
  *slot = &g_dummy;
  long* w = (long*)buf;
  w[2] = (long)&anchor + 16;
  long* t = *slot;
  *t = (long)attack_payload;
  return (int)anchor;
}
int main() { return f(); }
)")},

      {"heap-indirect-basepointer", "overflow pointer, then write", "heap",
       "old base pointer", withPrologue(R"(
int f() {
  long anchor;
  anchor = 5;
  g_sink = (char*)&anchor;
  char* buf = malloc(16);
  long** slot = (long**)malloc(8);
  *slot = &g_dummy;
  long* w = (long*)buf;
  w[2] = (long)&anchor + 8;        /* saved fp slot                     */
  long* t = *slot;
  *t = (long)attack_payload;
  return (int)anchor;
}
int main() { return f(); }
)")},

      {"bss-indirect-funcptr", "overflow pointer, then write", "data",
       "function pointer", withPrologue(R"(
int (*g_fp)(int);
int main() {
  g_fp = legit;
  char* buf = malloc(16);
  long** slot = (long**)malloc(8);
  *slot = &g_dummy;
  long* w = (long*)buf;
  w[2] = (long)(char*)&g_fp;
  long* t = *slot;
  *t = (long)attack_payload;
  return g_fp(1);
}
)")},

      {"bss-indirect-longjmpbuf", "overflow pointer, then write", "data",
       "longjmp buffer", withPrologue(R"(
long g_jb[4];
int main() {
  if (setjmp(g_jb) != 0) return 1;
  char* buf = malloc(16);
  long** slot = (long**)malloc(8);
  *slot = &g_dummy;
  long* w = (long*)buf;
  w[2] = (long)&g_jb[2];           /* the PC field                      */
  long* t = *slot;
  *t = (long)attack_payload;
  longjmp(g_jb, 1);
  return 0;
}
)")},
  };
  return Suite;
}
