//===- workloads/Workloads.h - benchmark/attack/bug registry ----*- C++ -*-===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The workload registry standing in for the paper's evaluation inputs:
///   * 15 benchmark kernels named after the paper's SPEC/Olden programs,
///     each reproducing that program's pointer-operation density class
///     (Figure 1's independent variable),
///   * the 18 Wilander-style attacks of Table 3,
///   * the four BugBench overflow kernels of Table 4,
///   * the two §6.4 network-server case studies.
///
/// All programs are deterministic mini-C (seeded PRNG, no input files).
///
//===----------------------------------------------------------------------===//

#ifndef SOFTBOUND_WORKLOADS_WORKLOADS_H
#define SOFTBOUND_WORKLOADS_WORKLOADS_H

#include <cstdint>
#include <string>
#include <vector>

namespace softbound {

/// One performance benchmark.
struct Workload {
  std::string Name;     ///< Paper benchmark this models (e.g. "treeadd").
  std::string Suite;    ///< "SPEC" or "Olden".
  std::string Source;   ///< mini-C program text.
  std::string Comment;  ///< What the kernel computes.
};

/// The 15 benchmarks of Figure 1/Figure 2, in the paper's sorted order
/// (ascending pointer-operation frequency).
const std::vector<Workload> &benchmarkSuite();

/// One synthetic attack from the Wilander-style suite (Table 3).
struct AttackCase {
  std::string Name;
  std::string Technique; ///< Table 3 grouping (direct overflow / via ptr).
  std::string Location;  ///< stack / heap / data.
  std::string Target;    ///< return address / old base ptr / func ptr / …
  std::string Source;
};

/// The 18 attacks of Table 3.
const std::vector<AttackCase> &attackSuite();

/// One seeded-bug kernel from the BugBench set (Table 4).
struct BugCase {
  std::string Name;     ///< go / compress / polymorph / gzip.
  std::string BugClass; ///< e.g. "sub-object read overflow (global)".
  std::string Source;
};

/// The four BugBench kernels of Table 4.
const std::vector<BugCase> &bugbenchSuite();

/// §6.4 case studies: protocol servers driven by embedded sessions.
/// Exit code 0 = all sessions handled; output holds response transcript.
/// `main` takes a vuln flag (0 when absent from Args): nonzero enables
/// the classic unbounded-copy bug in each handler.
std::string httpServerSource();
std::string ftpServerSource();

/// Handler-only fragments of the two servers (globals + helpers +
/// `handle(char*)`, no `main`). The single-shot sources above and the
/// traffic tier's generated drivers (Traffic.h) embed these verbatim, so
/// single-shot and traffic runs execute byte-identical handler code.
std::string httpHandlerSource();
std::string ftpHandlerSource();

} // namespace softbound

#endif // SOFTBOUND_WORKLOADS_WORKLOADS_H
