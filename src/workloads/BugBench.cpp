//===- workloads/BugBench.cpp - the Table-4 seeded bug kernels --------------===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Four kernels reproducing the documented overflow class of each BugBench
/// program the paper evaluates (Table 4). The detection matrix depends
/// only on the class:
///   go        — sub-object READ overflow (global struct): only full
///               checking sees it (not store-only, not red zones, not the
///               object table).
///   compress  — global array WRITE overflow crossing into the next
///               object: missed by heap-only red zones (Valgrind).
///   polymorph — heap strcpy WRITE overflow: everyone sees it.
///   gzip      — heap loop WRITE overflow: everyone sees it.
///
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

using namespace softbound;

const std::vector<BugCase> &softbound::bugbenchSuite() {
  static const std::vector<BugCase> Suite = {

      {"go", "sub-object read overflow (global struct)", R"(
/* Off-by-one read past a struct-internal array, as in BugBench go:
   the read stays inside the enclosing object, so object-granularity
   tools pass it and store-only checking never looks at loads. */
struct position { int joseki[8]; int owner; };
struct position g_pos;
int main() {
  g_pos.owner = 7;
  for (int i = 0; i < 8; i++) g_pos.joseki[i] = i + 1;
  long s = 0;
  for (int i = 0; i <= 8; i++) s += g_pos.joseki[i];  /* reads owner */
  return (int)(s % 100);
}
)"},

      {"compress", "global array write overflow", R"(
/* Write one slot past a global table into the adjacent table, as in
   BugBench compress. Heap-only checkers never see global writes. */
int htab[64];
int codetab[64];
int main() {
  codetab[0] = 42;
  for (int i = 0; i <= 64; i++) htab[i] = i;  /* htab[64] hits codetab */
  return codetab[0];
}
)"},

      {"polymorph", "heap strcpy write overflow", R"(
/* Unbounded filename copy into a small heap buffer (polymorph's bug). */
int main() {
  char* fname = malloc(8);
  strcpy(fname, "very_long_filename_overflowing.txt");
  return (int)(strlen(fname) % 100);
}
)"},

      {"gzip", "heap loop write overflow", R"(
/* Window fill loop runs past its heap buffer into the neighbouring
   allocation (gzip's bug shape). */
int main() {
  char* window = malloc(32);
  char* head = malloc(16);
  head[0] = 9;
  for (int i = 0; i < 40; i++) window[i] = (char)(i % 100);
  return head[0];
}
)"},
  };
  return Suite;
}
