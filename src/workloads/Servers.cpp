//===- workloads/Servers.cpp - §6.4 network-server case studies -------------===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The §6.4 compatibility case studies: an HTTP request handler
/// (nhttpd-style) and an FTP command loop (tinyftp-style). Each server is
/// split into a handler-only fragment (globals + helpers + `handle`) and a
/// classic single-shot driver, so the traffic tier (Traffic.h) can embed
/// the same handler under a request-generator main. The claim reproduced:
/// SoftBound transforms them with no source changes and no false
/// positives, while classic unbounded-copy vulnerabilities (enabled by a
/// flag) are caught.
///
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

using namespace softbound;

std::string softbound::httpHandlerSource() {
  return R"(
/* nhttpd-style request handling: parse a request line, route it, build a
   response. All copies are bounded; vulnerable mode (g_vuln) uses the
   classic unbounded strcpy on the query string. Handler-only fragment —
   the single-shot driver and the traffic tier both embed it. */

int g_vuln;
long g_handled;
long g_conns;

int copyToken(char* dst, int cap, char* src, int start, int stopch) {
  int i = start;
  int o = 0;
  while (src[i] != 0 && src[i] != stopch && src[i] != ' ') {
    if (o < cap - 1) { dst[o] = src[i]; o++; }
    i++;
  }
  dst[o] = 0;
  return i;
}

int handle(char* req) {
  char method[8];
  char path[64];
  char query[32];
  char resp[128];

  int pos = copyToken(method, 8, req, 0, ' ');
  while (req[pos] == ' ') pos++;
  int qpos = copyToken(path, 64, req, pos, '?');

  query[0] = 0;
  if (req[qpos] == '?') {
    if (g_vuln) {
      /* CVE-style bug: unbounded copy of attacker-controlled data. */
      strcpy(query, req + qpos + 1);
    } else {
      copyToken(query, 32, req, qpos + 1, ' ');
    }
  }

  int code = 200;
  if (strcmp(method, "GET") != 0 && strcmp(method, "POST") != 0) code = 405;
  if (strlen(path) > 40) code = 414;

  strcpy(resp, "HTTP/1.0 ");
  if (code == 200) strcat(resp, "200 OK");
  if (code == 405) strcat(resp, "405 Method Not Allowed");
  if (code == 414) strcat(resp, "414 URI Too Long");
  strcat(resp, " path=");
  strcat(resp, path);
  print_str(resp);
  print_char('\n');
  return code;
}
)";
}

std::string softbound::httpServerSource() {
  return httpHandlerSource() + R"(
char* g_requests[6] = {
  "GET / HTTP/1.0",
  "GET /index.html HTTP/1.0",
  "GET /cgi-bin/form?name=alice&age=30&token=0123456789abcdef0123456789abcdef HTTP/1.0",
  "POST /upload HTTP/1.0",
  "GET /images/logo.png HTTP/1.0",
  "GET /a/very/deep/path/with/segments/file.txt HTTP/1.0"
};

int main(int vuln) {
  g_vuln = vuln;
  for (int round = 0; round < 20; round++) {
    for (int i = 0; i < 6; i++) {
      g_handled += handle(g_requests[i]);
    }
  }
  if (g_handled == 20 * 6 * 200) return 0;
  return 1;
}
)";
}

std::string softbound::ftpHandlerSource() {
  return R"(
/* tinyftp-style command loop: parse commands, track session state,
   answer with status strings. All buffers bounded, and every write to the
   shared g_cwd is index-capped below 59 so concurrent lanes can never
   push it out of bounds (bytes 59..63 stay zero, keeping strlen bounded).
   Vulnerable mode (g_vuln) uses an unbounded strcpy of the USER name into
   a 16-byte buffer; the overflow lands in the adjacent scratch buffer, so
   unchecked runs stay deterministic. Handler-only fragment — the
   single-shot driver and the traffic tier both embed it. */

char g_cwd[64];
int g_loggedin;
int g_vuln;
long g_sum;
long g_conns;

int startsWith(char* s, char* prefix) {
  int i = 0;
  while (prefix[i] != 0) {
    if (s[i] != prefix[i]) return 0;
    i++;
  }
  return 1;
}

void reply(int code, char* text) {
  char line[96];
  line[0] = (char)('0' + code / 100);
  line[1] = (char)('0' + code / 10 % 10);
  line[2] = (char)('0' + code % 10);
  line[3] = ' ';
  line[4] = 0;
  strcat(line, text);
  print_str(line);
  print_char('\n');
  g_sum += code;
}

void handle(char* cmd) {
  if (startsWith(cmd, "USER ")) {
    char pend[64];
    char uname[16];
    if (g_vuln) {
      /* CVE-style bug: unbounded copy of the attacker-chosen user name. */
      strcpy(uname, cmd + 5);
    } else {
      int i = 5; int o = 0;
      while (cmd[i] != 0 && o < 15) { uname[o] = cmd[i]; o++; i++; }
      uname[o] = 0;
    }
    pend[0] = 0;
    strcat(pend, "password required for ");
    strcat(pend, uname);
    reply(331, pend);
    return;
  }
  if (startsWith(cmd, "PASS ")) { g_loggedin = 1; reply(230, "logged in"); return; }
  if (!g_loggedin) { reply(530, "not logged in"); return; }
  if (startsWith(cmd, "SYST")) { reply(215, "UNIX Type: L8"); return; }
  if (startsWith(cmd, "PWD")) { reply(257, g_cwd); return; }
  if (startsWith(cmd, "CWD ")) {
    char arg[48];
    int i = 4; int o = 0;
    while (cmd[i] != 0 && o < 47) { arg[o] = cmd[i]; o++; i++; }
    arg[o] = 0;
    if (strcmp(arg, "..") == 0) {
      long n = strlen(g_cwd);
      while (n > 1 && g_cwd[n - 1] != '/') { n--; }
      if (n > 1) n--;
      g_cwd[n] = 0;
      if (g_cwd[0] == 0) { g_cwd[0] = '/'; g_cwd[1] = 0; }
    } else if (arg[0] == '/') {
      if (strlen(arg) < 59) strcpy(g_cwd, arg);
    } else {
      long n = 0;
      while (n < 58 && g_cwd[n] != 0) n++;
      if (n > 1 && n < 58) { g_cwd[n] = '/'; n++; }
      int j = 0;
      while (arg[j] != 0 && n < 58) { g_cwd[n] = arg[j]; n++; j++; }
      g_cwd[n] = 0;
    }
    reply(250, g_cwd);
    return;
  }
  if (startsWith(cmd, "LIST")) { reply(226, "transfer complete"); return; }
  if (startsWith(cmd, "RETR ")) {
    char fname[64];
    int i = 5; int o = 0;
    while (cmd[i] != 0 && o < 63) { fname[o] = cmd[i]; o++; i++; }
    fname[o] = 0;
    long bytes = strlen(fname) * 100 + 37;
    reply(226, fname);
    g_sum += bytes % 7;
    return;
  }
  if (startsWith(cmd, "QUIT")) { reply(221, "goodbye"); return; }
  reply(500, "unknown command");
}
)";
}

std::string softbound::ftpServerSource() {
  return ftpHandlerSource() + R"(
char* g_session[10] = {
  "USER alice",
  "PASS hunter2",
  "SYST",
  "PWD",
  "CWD /pub/files",
  "LIST",
  "RETR readme.txt",
  "CWD ..",
  "RETR data/archive2024.tar",
  "QUIT"
};

int main(int vuln) {
  g_vuln = vuln;
  g_cwd[0] = '/';
  g_cwd[1] = 0;
  for (int round = 0; round < 15; round++) {
    g_loggedin = 0;
    g_cwd[0] = '/'; g_cwd[1] = 0;
    for (int i = 0; i < 10; i++) handle(g_session[i]);
  }
  return (int)(g_sum % 251);
}
)";
}
