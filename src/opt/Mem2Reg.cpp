//===- opt/Mem2Reg.cpp - scalar alloca promotion ----------------------------===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Standard SSA construction: for each promotable alloca, place phis at the
/// iterated dominance frontier of its defining blocks, then rename via a
/// dominator-tree walk. This is the "register promotion" step the paper
/// relies on to shrink the number of memory operations SoftBound must
/// instrument (§6.1).
///
//===----------------------------------------------------------------------===//

#include "opt/Dominators.h"
#include "opt/Passes.h"

#include <functional>
#include <map>
#include <set>

using namespace softbound;

namespace {

/// An alloca is promotable when it holds a scalar and its address never
/// escapes: every use is a direct load or a store *of a value through it*.
bool isPromotable(const AllocaInst *AI, Function &F) {
  if (!AI->allocatedType()->isScalar())
    return false;
  for (const auto &BB : F.blocks())
    for (const auto &I : *BB) {
      for (unsigned K = 0; K < I->numOperands(); ++K) {
        if (I->op(K) != AI)
          continue;
        if (isa<LoadInst>(I.get()) && K == 0)
          continue;
        if (isa<StoreInst>(I.get()) && K == 1)
          continue;
        return false; // Address escapes (GEP, call arg, stored value, …).
      }
    }
  return true;
}

} // namespace

void softbound::mem2reg(Function &F) {
  if (!F.isDefinition())
    return;

  std::vector<AllocaInst *> Promotable;
  for (auto &BB : F.blocks())
    for (auto &I : *BB)
      if (auto *AI = dyn_cast<AllocaInst>(I.get()))
        if (isPromotable(AI, F))
          Promotable.push_back(AI);
  if (Promotable.empty())
    return;

  DomTree DT(F);

  std::map<AllocaInst *, unsigned> Index;
  for (unsigned I = 0; I < Promotable.size(); ++I)
    Index[Promotable[I]] = I;

  // Phi placement at iterated dominance frontiers of defining blocks.
  std::map<PhiInst *, unsigned> PhiVar;
  for (auto *AI : Promotable) {
    std::set<BasicBlock *> DefBlocks;
    for (auto &BB : F.blocks())
      for (auto &I : *BB)
        if (auto *St = dyn_cast<StoreInst>(I.get()))
          if (St->pointer() == AI)
            DefBlocks.insert(BB.get());

    std::vector<BasicBlock *> Work(DefBlocks.begin(), DefBlocks.end());
    std::set<BasicBlock *> HasPhi;
    while (!Work.empty()) {
      BasicBlock *BB = Work.back();
      Work.pop_back();
      for (auto *Front : DT.frontier(BB)) {
        if (!HasPhi.insert(Front).second)
          continue;
        auto Phi = std::make_unique<PhiInst>(AI->allocatedType(),
                                             AI->name() + ".phi");
        PhiVar[Phi.get()] = Index[AI];
        Front->insertBefore(Front->begin(), std::move(Phi));
        if (!DefBlocks.count(Front))
          Work.push_back(Front);
      }
    }
  }

  // Renaming walk over the dominator tree.
  Module *Mod = F.parent();
  std::vector<Value *> Cur(Promotable.size(), nullptr);
  auto CurOrUndef = [&](unsigned Var) -> Value * {
    if (Cur[Var])
      return Cur[Var];
    return Mod->undef(Promotable[Var]->allocatedType());
  };

  std::set<BasicBlock *> Visited;
  std::function<void(BasicBlock *)> Walk = [&](BasicBlock *BB) {
    Visited.insert(BB);
    std::vector<std::pair<unsigned, Value *>> Saved;

    for (auto It = BB->begin(); It != BB->end();) {
      Instruction *I = It->get();
      if (auto *Phi = dyn_cast<PhiInst>(I)) {
        auto PV = PhiVar.find(Phi);
        if (PV != PhiVar.end()) {
          Saved.emplace_back(PV->second, Cur[PV->second]);
          Cur[PV->second] = Phi;
        }
        ++It;
        continue;
      }
      if (auto *Ld = dyn_cast<LoadInst>(I)) {
        if (auto *AI = dyn_cast<AllocaInst>(Ld->pointer())) {
          auto Idx = Index.find(AI);
          if (Idx != Index.end()) {
            F.replaceAllUsesWith(Ld, CurOrUndef(Idx->second));
            It = BB->erase(It);
            continue;
          }
        }
        ++It;
        continue;
      }
      if (auto *St = dyn_cast<StoreInst>(I)) {
        if (auto *AI = dyn_cast<AllocaInst>(St->pointer())) {
          auto Idx = Index.find(AI);
          if (Idx != Index.end()) {
            Saved.emplace_back(Idx->second, Cur[Idx->second]);
            Cur[Idx->second] = St->value();
            It = BB->erase(It);
            continue;
          }
        }
        ++It;
        continue;
      }
      ++It;
    }

    // Fill successor phi operands.
    for (auto *S : BB->successors())
      for (auto &I : *S) {
        auto *Phi = dyn_cast<PhiInst>(I.get());
        if (!Phi)
          break;
        auto PV = PhiVar.find(Phi);
        if (PV != PhiVar.end())
          Phi->addIncoming(CurOrUndef(PV->second), BB);
      }

    for (auto *Kid : DT.children(BB))
      Walk(Kid);

    for (auto It = Saved.rbegin(); It != Saved.rend(); ++It)
      Cur[It->first] = It->second;
  };
  Walk(F.entry());

  // Remove the promoted allocas.
  for (auto &BB : F.blocks())
    for (auto It = BB->begin(); It != BB->end();) {
      auto *AI = dyn_cast<AllocaInst>(It->get());
      if (AI && Index.count(AI))
        It = BB->erase(It);
      else
        ++It;
    }

  // Phis placed in unreachable blocks never got incoming values; drop them
  // (simplifyCFG removes those blocks anyway).
  for (auto &BB : F.blocks()) {
    if (Visited.count(BB.get()))
      continue;
    for (auto It = BB->begin(); It != BB->end();) {
      auto *Phi = dyn_cast<PhiInst>(It->get());
      if (Phi && PhiVar.count(Phi)) {
        F.replaceAllUsesWith(Phi, Mod->undef(Phi->type()));
        It = BB->erase(It);
      } else {
        ++It;
      }
    }
  }
}
