//===- opt/checks/RangeAnalysis.cpp - symbolic pointer ranges ---------------===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "opt/checks/RangeAnalysis.h"

#include "support/Casting.h"

#include <algorithm>

using namespace softbound;
using namespace softbound::checkopt;

namespace {

/// Offsets past this never appear in well-behaved programs; bailing out
/// (keeping the check) both avoids signed-overflow UB in the accumulation
/// below and keeps the facts honest where 64-bit address arithmetic could
/// wrap.
constexpr int64_t MaxDecomposedOffset = int64_t(1) << 40;

/// Acc += Idx * Scale with exact arithmetic; false on blow-up.
bool accumulate(__int128 &Acc, int64_t Idx, int64_t Scale) {
  Acc += __int128(Idx) * Scale;
  return Acc >= -__int128(MaxDecomposedOffset) &&
         Acc <= __int128(MaxDecomposedOffset);
}

} // namespace

bool checkopt::constantGEPOffset(const GEPInst *G, int64_t &OutBytes) {
  __int128 Off = 0;
  Type *Cur = G->sourceType();
  auto *First = dyn_cast<ConstantInt>(G->index(0));
  if (!First)
    return false;
  if (!accumulate(Off, First->value(),
                  static_cast<int64_t>(Cur->sizeInBytes())))
    return false;
  for (unsigned K = 1; K < G->numIndices(); ++K) {
    auto *CI = dyn_cast<ConstantInt>(G->index(K));
    if (!CI)
      return false;
    if (auto *AT = dyn_cast<ArrayType>(Cur)) {
      if (!accumulate(Off, CI->value(),
                      static_cast<int64_t>(AT->element()->sizeInBytes())))
        return false;
      Cur = AT->element();
      continue;
    }
    auto *ST = dyn_cast<StructType>(Cur);
    if (!ST)
      return false;
    unsigned FieldIdx = static_cast<unsigned>(CI->value());
    if (FieldIdx >= ST->numFields())
      return false;
    if (!accumulate(Off, 1, static_cast<int64_t>(ST->fieldOffset(FieldIdx))))
      return false;
    Cur = ST->field(FieldIdx);
  }
  OutBytes = static_cast<int64_t>(Off);
  return true;
}

PtrOffset checkopt::decomposePointer(Value *P) {
  PtrOffset Out;
  Out.Root = P;
  // Bounded walk: derivation chains are short, but guard against cycles in
  // malformed IR.
  for (int Depth = 0; Depth < 64; ++Depth) {
    if (auto *BC = dyn_cast<CastInst>(Out.Root);
        BC && BC->opcode() == CastInst::Op::Bitcast) {
      Out.Root = BC->source();
      continue;
    }
    if (auto *G = dyn_cast<GEPInst>(Out.Root)) {
      int64_t Off;
      __int128 Acc = Out.Offset;
      if (constantGEPOffset(G, Off) && accumulate(Acc, Off, 1)) {
        Out.Offset = static_cast<int64_t>(Acc);
        Out.Root = G->pointer();
        continue;
      }
    }
    break;
  }
  return Out;
}

Value *checkopt::stripSExt(Value *V) {
  for (int Depth = 0; Depth < 64; ++Depth) {
    auto *C = dyn_cast<CastInst>(V);
    if (!C || C->opcode() != CastInst::Op::SExt)
      break;
    V = C->source();
  }
  return V;
}

LinearPtr checkopt::decomposeLinearPtr(Value *P) {
  LinearPtr Out;
  Out.Root = P;
  for (int Depth = 0; Depth < 64; ++Depth) {
    if (auto *BC = dyn_cast<CastInst>(Out.Root);
        BC && BC->opcode() == CastInst::Op::Bitcast) {
      Out.Root = BC->source();
      continue;
    }
    auto *G = dyn_cast<GEPInst>(Out.Root);
    if (!G)
      break;

    // Fold this GEP's indices; on any unsupported shape keep Root at the
    // GEP itself (facts still work, just less sharing).
    __int128 Base = Out.Base;
    __int128 Scale = Out.Scale;
    Value *Idx = Out.Index;
    bool OK = true;
    Type *Cur = G->sourceType();
    for (unsigned K = 0; K < G->numIndices() && OK; ++K) {
      int64_t ElemSize;
      if (K == 0) {
        ElemSize = static_cast<int64_t>(Cur->sizeInBytes());
      } else if (auto *AT = dyn_cast<ArrayType>(Cur)) {
        Cur = AT->element();
        ElemSize = static_cast<int64_t>(Cur->sizeInBytes());
      } else {
        // Struct step: the verifier guarantees a constant field number.
        auto *ST = dyn_cast<StructType>(Cur);
        auto *CI = dyn_cast<ConstantInt>(G->index(K));
        if (!ST || !CI || CI->value() < 0 ||
            static_cast<uint64_t>(CI->value()) >= ST->numFields()) {
          OK = false;
          break;
        }
        unsigned FieldIdx = static_cast<unsigned>(CI->value());
        Base += static_cast<int64_t>(ST->fieldOffset(FieldIdx));
        Cur = ST->field(FieldIdx);
        continue;
      }
      if (auto *CI = dyn_cast<ConstantInt>(G->index(K))) {
        Base += __int128(CI->value()) * ElemSize;
        continue;
      }
      if (ElemSize == 0)
        continue; // Zero-sized step contributes nothing.
      Value *S = stripSExt(G->index(K));
      if (Idx && Idx != S) {
        OK = false; // Two distinct variable indices: stop at this GEP.
        break;
      }
      Idx = S;
      Scale += ElemSize;
    }
    if (!OK || Base < -__int128(MaxDecomposedOffset) ||
        Base > __int128(MaxDecomposedOffset) ||
        Scale > __int128(MaxDecomposedOffset))
      break;
    Out.Base = static_cast<int64_t>(Base);
    Out.Scale = static_cast<int64_t>(Scale);
    Out.Index = Idx;
    Out.Root = G->pointer();
  }
  if (Out.Scale == 0)
    Out.Index = nullptr;
  return Out;
}

bool IntervalSet::covers(int64_t Lo, int64_t Hi) const {
  if (Lo >= Hi)
    return true; // Empty access: trivially covered.
  // First interval whose Lo is > our Lo; the candidate is its predecessor.
  auto It = std::upper_bound(
      Iv.begin(), Iv.end(), Lo,
      [](int64_t V, const ByteInterval &B) { return V < B.Lo; });
  if (It == Iv.begin())
    return false;
  --It;
  return It->Lo <= Lo && Hi <= It->Hi;
}

void IntervalSet::add(int64_t Lo, int64_t Hi) {
  if (Lo >= Hi)
    return;
  // Find the insertion window: all intervals overlapping or adjacent to
  // [Lo, Hi) get merged into it.
  auto First = std::lower_bound(
      Iv.begin(), Iv.end(), Lo,
      [](const ByteInterval &B, int64_t V) { return B.Hi < V; });
  auto Last = First;
  while (Last != Iv.end() && Last->Lo <= Hi) {
    Lo = std::min(Lo, Last->Lo);
    Hi = std::max(Hi, Last->Hi);
    ++Last;
  }
  First = Iv.erase(First, Last);
  Iv.insert(First, ByteInterval{Lo, Hi});
}
