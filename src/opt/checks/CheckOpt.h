//===- opt/checks/CheckOpt.h - static spatial-check optimization *- C++ -*-===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The static check-optimization subsystem that runs after the SoftBound
/// transformation and before VM execution. It implements the §6.1 claim
/// that re-running the optimizers removes most redundant bounds checks,
/// with three cooperating sub-passes (each independently toggleable):
///
///   1. Value-range analysis (RangeAnalysis.h): pointers are decomposed
///      into an SSA root plus a constant byte offset, and a scoped table
///      of proven-in-bounds byte intervals per (root, bounds) pair is
///      carried down the dominator tree.
///   2. Dominance-based redundant-check elimination (RedundantChecks.cpp):
///      a spatial check dominated by an equal-or-stronger check on the
///      same pointer — or, with range subsumption, on any pointer whose
///      proven interval covers it — is deleted. Checks consume only SSA
///      values (the pointer and its bounds), so no call or store can
///      invalidate an established fact; this generalizes the paper's
///      "monotonically increasing pointer" example beyond single blocks.
///   3. Loop-invariant check hoisting with range widening (LoopHoist.cpp):
///      in counted loops, per-iteration checks on loop-invariant pointers
///      collapse to one pre-loop check, and checks on `base[affine(iv)]`
///      are replaced by checks at the two endpoints of the access range's
///      convex hull (à la CHOP), turning O(trip-count) dynamic checks
///      into O(1).
///   4. CCured-SAFE check elision (SafeElision.cpp, off by default): a
///      check whose pointer is an all-constant, per-index-validated GEP
///      chain into a known-size stack or global object, with the access
///      contained in the object, is deleted outright — the §6.5 CCured
///      comparison knob, formerly SoftBoundConfig::ElideSafePointerChecks
///      (same proof, same results).
///   5. Inter-procedural bounds propagation (InterProc.h, module-level):
///      a call-graph pass that elides callee-side checks every direct
///      call site already proves, turns callee-guaranteed checks into
///      caller-side facts, and settles global-array checks whose
///      argument-propagated index range stays inside the object. Only
///      reachable from the Module-level driver (it needs every call
///      site); the per-function overload ignores the knob.
///   6. Checked-region partitioning (Partition.h, module-level): after
///      every other sub-pass has run, classify each function fully-proven
///      (no checks left, no escaping metadata obligations) or
///      instrumented, and strip metadata propagation from the
///      fully-proven ones — the CheckedCBox-style checked/unchecked
///      region split. Module-level only, on by default, left off by
///      explicit knob lists (the A/B convention).
///
/// Soundness contract: sub-passes 1-3 only ever *strengthen or move
/// earlier* the set of conditions checked on any path — a program that
/// would have trapped still traps (possibly at an earlier instruction),
/// and a program that ran clean still runs clean. Every transformation is
/// gated on static proofs (constant trip counts, single-exit loops, no
/// in-loop control-flow escapes) described in LoopHoist.cpp. Sub-pass 4
/// is the deliberate exception: its leading pointer-arithmetic step is
/// judged against the *whole* object, so a sub-object overflow reached
/// through a derived field pointer plus constant arithmetic can lose its
/// (field-shrunk) check — the CCured-SAFE trade-off §6.5 measures — and
/// it is therefore not part of the default pipeline.
///
//===----------------------------------------------------------------------===//

#ifndef SOFTBOUND_OPT_CHECKS_CHECKOPT_H
#define SOFTBOUND_OPT_CHECKS_CHECKOPT_H

#include "ir/Module.h"

namespace softbound {

class DomTree;
class InstOrder;

/// Per-sub-pass toggles (ablation knobs, in the style of
/// SoftBoundConfig::ElideSafePointerChecks).
struct CheckOptConfig {
  /// Master switch for the whole subsystem.
  bool Enable = true;
  /// Delete checks dominated by an equal-or-stronger check on the same
  /// pointer SSA value.
  bool EliminateDominated = true;
  /// Use value-range analysis to also delete checks covered by dominating
  /// checks on *different* pointers into the same object (constant-offset
  /// subsumption with interval merging).
  bool RangeSubsumption = true;
  /// Hoist loop-invariant and affine-indexed checks out of counted loops.
  bool HoistLoopChecks = true;
  /// Extend hull hoisting to loops counted by loop-invariant *symbolic*
  /// bounds — `for (i = 0; i < n; i++)`, symbolic init
  /// (`for (i = lo; i < hi; i++)`), the decreasing
  /// `for (i = n-1; i >= 0; i--)` shape, and |step| > 1 sweeps behind a
  /// stride-divisibility test: hull endpoints are computed from the live
  /// bound values in the preheader behind a trip/wrap region guard, with
  /// the original in-loop check kept as the out-of-region fallback
  /// (LoopHoist.cpp "Run-time bounds"). Sub-knob of HoistLoopChecks;
  /// `checkopt(hoist,runtime-limit)` in pipeline specs.
  bool RuntimeLimitHulls = true;
  /// Inter-procedural bounds propagation (opt/checks/InterProc.h): elide
  /// callee checks proven at every call site, reuse callee-guaranteed
  /// checks as caller facts, and settle global-array checks via
  /// inter-procedural integer ranges. Module-level only.
  bool InterProc = true;
  /// Checked-region partitioning (opt/checks/Partition.h): classify each
  /// function as fully-proven or instrumented after the other sub-passes
  /// have run, and strip metadata propagation (meta.load/meta.store) from
  /// the fully-proven ones. Module-level only; leans on the closed-module
  /// contract like InterProc.
  bool Partition = true;
  /// CCured-SAFE elision (§6.5 modeling knob): delete checks statically
  /// proven inside their *whole* base object. Off by default — it gives up
  /// sub-object protection for constant-offset accesses.
  bool ElideSafeChecks = false;
};

/// One function's checked-region classification (Partition.cpp). Verdicts
/// are reported for every defined function the partition pass inspected,
/// in module order.
struct PartitionVerdict {
  std::string Func;           ///< Post-transform (`_sb_`) function name.
  bool FullyProven = false;   ///< Checked region: instrumentation stripped.
  std::string Reason;         ///< First blocking reason, or "proven".
  unsigned MetaLoadsRemoved = 0;  ///< meta.load instructions stripped.
  unsigned MetaStoresRemoved = 0; ///< meta.store instructions stripped.
};

/// What the subsystem did (reported by benches and asserted by tests).
struct CheckOptStats {
  unsigned ChecksBefore = 0;   ///< Static spatial checks entering the pass.
  unsigned ChecksAfter = 0;    ///< Static spatial checks remaining.
  unsigned DominatedEliminated = 0; ///< Same-pointer dominance deletions.
  unsigned RangeEliminated = 0;     ///< Range-subsumption deletions.
  unsigned FuncPtrEliminated = 0;   ///< Duplicate function-pointer checks.
  unsigned SafeChecksElided = 0;    ///< CCured-SAFE static elisions.
  unsigned LoopChecksHoisted = 0;   ///< In-loop checks replaced/deleted.
  unsigned HoistedChecksInserted = 0; ///< Pre-loop hull checks added.
  unsigned LoopsAnalyzed = 0;  ///< Natural loops inspected.
  unsigned LoopsCounted = 0;   ///< Loops with a provable constant trip set.

  // Runtime-bound hull hoisting (LoopHoist.cpp "Run-time bounds").
  unsigned LoopsCountedRuntime = 0; ///< Symbolic-bound counted loops.
  unsigned LoopsCountedSymInit = 0; ///< ... with a symbolic *init* (incl.
                                    ///< the decreasing `i = n-1; i >= 0`
                                    ///< shape).
  unsigned LoopsCountedStrided = 0; ///< ... with |step| > 1.
  unsigned RuntimeHullChecks = 0;   ///< Guard-protected hull checks added.
  unsigned RuntimeGuardedFallbacks = 0; ///< In-loop fallback checks kept.
  unsigned RuntimeGuardsDischarged = 0; ///< Guards settled by arg ranges.
  unsigned RuntimeDivisGuards = 0;      ///< Stride-divisibility tests emitted.

  // Inter-procedural bounds propagation (opt/checks/InterProc.h).
  unsigned InterProcChecksElided = 0;  ///< Total checks the pass deleted.
  unsigned InterProcCalleeElided = 0;  ///< Proven at every call site.
  unsigned InterProcCallerElided = 0;  ///< Covered by callee/caller facts.
  unsigned InterProcRangeElided = 0;   ///< Static index-range proofs.
  unsigned InterProcSunkElided = 0;    ///< Duplicates sunk into callees.
  unsigned InterProcArgSummaries = 0;  ///< Argument/global check summaries.
  unsigned InterProcRetSummaries = 0;  ///< Functions with return summaries.
  unsigned InterProcFunctionsAnalyzed = 0; ///< Defined functions visited.

  // Checked-region partitioning (opt/checks/Partition.h).
  unsigned PartitionFunctions = 0; ///< Defined functions classified.
  unsigned PartitionProven = 0;    ///< Classified fully-proven (stripped).
  unsigned PartitionMetaLoadsRemoved = 0;  ///< meta.loads stripped.
  unsigned PartitionMetaStoresRemoved = 0; ///< meta.stores stripped.
  std::vector<PartitionVerdict> Partition; ///< Per-function verdicts.

  /// Fraction of static checks removed, in [0, 1].
  double eliminationRate() const {
    return ChecksBefore
               ? 1.0 - static_cast<double>(ChecksAfter) / ChecksBefore
               : 0.0;
  }

  CheckOptStats &operator+=(const CheckOptStats &O) {
    ChecksBefore += O.ChecksBefore;
    ChecksAfter += O.ChecksAfter;
    DominatedEliminated += O.DominatedEliminated;
    RangeEliminated += O.RangeEliminated;
    FuncPtrEliminated += O.FuncPtrEliminated;
    SafeChecksElided += O.SafeChecksElided;
    LoopChecksHoisted += O.LoopChecksHoisted;
    HoistedChecksInserted += O.HoistedChecksInserted;
    LoopsAnalyzed += O.LoopsAnalyzed;
    LoopsCounted += O.LoopsCounted;
    LoopsCountedRuntime += O.LoopsCountedRuntime;
    LoopsCountedSymInit += O.LoopsCountedSymInit;
    LoopsCountedStrided += O.LoopsCountedStrided;
    RuntimeHullChecks += O.RuntimeHullChecks;
    RuntimeGuardedFallbacks += O.RuntimeGuardedFallbacks;
    RuntimeGuardsDischarged += O.RuntimeGuardsDischarged;
    RuntimeDivisGuards += O.RuntimeDivisGuards;
    InterProcChecksElided += O.InterProcChecksElided;
    InterProcCalleeElided += O.InterProcCalleeElided;
    InterProcCallerElided += O.InterProcCallerElided;
    InterProcRangeElided += O.InterProcRangeElided;
    InterProcSunkElided += O.InterProcSunkElided;
    InterProcArgSummaries += O.InterProcArgSummaries;
    InterProcRetSummaries += O.InterProcRetSummaries;
    InterProcFunctionsAnalyzed += O.InterProcFunctionsAnalyzed;
    PartitionFunctions += O.PartitionFunctions;
    PartitionProven += O.PartitionProven;
    PartitionMetaLoadsRemoved += O.PartitionMetaLoadsRemoved;
    PartitionMetaStoresRemoved += O.PartitionMetaStoresRemoved;
    Partition.insert(Partition.end(), O.Partition.begin(), O.Partition.end());
    return *this;
  }
};

/// Runs the configured sub-passes over one function, accumulating into
/// \p Stats. The function must be verifier-clean; it stays verifier-clean.
void optimizeChecks(Function &F, const CheckOptConfig &Cfg,
                    CheckOptStats &Stats);

/// Module-wide driver (hoist, then eliminate, then DCE the dead bounds
/// arithmetic the deletions exposed).
CheckOptStats optimizeChecks(Module &M, const CheckOptConfig &Cfg = {});

/// Instruction-level dominance: true when \p A executes before \p B on
/// every path reaching \p B (strict; an instruction does not dominate
/// itself). \p DT and \p Ord must be current for the containing function.
bool instDominates(const DomTree &DT, const InstOrder &Ord,
                   const Instruction *A, const Instruction *B);

namespace checkopt {

/// The SafeElision sub-pass (SafeElision.cpp), also reachable directly for
/// the deprecated SoftBoundConfig::ElideSafePointerChecks path: deletes
/// every spatial check whose pointer is a constant offset into a
/// known-size alloca/global with the access contained in the object.
void elideSafeChecks(Function &F, CheckOptStats &Stats);

} // namespace checkopt
} // namespace softbound

#endif // SOFTBOUND_OPT_CHECKS_CHECKOPT_H
