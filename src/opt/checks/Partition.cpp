//===- opt/checks/Partition.cpp - checked-region partitioning ---------------===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "opt/checks/Partition.h"

#include "opt/Passes.h"
#include "opt/checks/CallGraph.h"
#include "support/Casting.h"

#include <map>
#include <set>
#include <string>
#include <vector>

using namespace softbound;
using namespace softbound::checkopt;

namespace {

/// Strips GEP/bitcast address arithmetic down to the underlying root.
const Value *addressRoot(const Value *V) {
  while (true) {
    if (const auto *G = dyn_cast<GEPInst>(V))
      V = G->pointer();
    else if (const auto *C = dyn_cast<CastInst>(V);
             C && C->opcode() == CastInst::Op::Bitcast)
      V = C->source();
    else
      return V;
  }
}

/// True when \p Root's address provably never leaves the frame: the
/// alloca and every pointer derived from it by GEP/bitcast are used only
/// as load/store/metadata addresses (plus further derivation and bounds
/// creation — bounds are opaque, no pointer can be recovered from them).
/// Storing the address as a *value*, passing it to a call, returning it,
/// packing it, or casting it to an integer publishes it.
bool allocaStaysLocal(const AllocaInst *Root, const Function &F) {
  std::set<const Value *> Derived{Root};
  bool Grew = true;
  while (Grew) {
    Grew = false;
    for (const auto &BB : F.blocks())
      for (const auto &I : *BB) {
        if (Derived.count(I.get()))
          continue;
        if (Derived.count(addressRoot(I.get())))
          Grew = Derived.insert(I.get()).second || Grew;
      }
  }
  for (const auto &BB : F.blocks())
    for (const auto &I : *BB) {
      bool Uses = false;
      for (unsigned K = 0; K < I->numOperands() && !Uses; ++K)
        Uses = I->op(K) && Derived.count(I->op(K));
      if (!Uses || Derived.count(I.get()))
        continue;
      switch (I->kind()) {
      case ValueKind::Load:
      case ValueKind::MetaLoad:
      case ValueKind::MakeBounds:
        break;
      case ValueKind::Store:
        if (Derived.count(cast<StoreInst>(I.get())->value()))
          return false; // address stored as data
        break;
      case ValueKind::MetaStore:
        if (Derived.count(cast<MetaStoreInst>(I.get())->bounds()))
          return false;
        break;
      case ValueKind::SpatialCheck:
        break;
      default:
        return false; // call arg, ret, pack.pb, ptrtoint, phi, icmp, ...
      }
    }
  return true;
}

/// True when \p B is statically the null bounds: a make.bounds whose base
/// and bound are both zero constants. This is the value every metadata
/// facility reconstructs for an address with no entry (lookup miss =>
/// (0, 0), the bounds that fail every dereference check).
bool isNullBounds(const Value *B) {
  const auto *MB = dyn_cast<MakeBoundsInst>(B);
  if (!MB)
    return false;
  for (unsigned K = 0; K < 2; ++K) {
    const auto *CI = dyn_cast<ConstantInt>(MB->op(K));
    if (!CI || CI->value() != 0)
      return false;
  }
  return true;
}

/// If \p Addr is a constant offset into the result of a constant-size
/// malloc in the same function, with [offset, offset+8) inside the
/// block, returns that allocation call; otherwise null. Mirrors the
/// SafeElision constant-GEP walk, with a heap root instead of a stack
/// or global one.
const CallInst *freshMallocSlot(const Value *Addr) {
  uint64_t Offset = 0;
  const Value *Cur = Addr;
  for (int Depth = 0; Depth < 16; ++Depth) {
    if (const auto *BC = dyn_cast<CastInst>(Cur);
        BC && BC->opcode() == CastInst::Op::Bitcast) {
      Cur = BC->source();
      continue;
    }
    if (const auto *GI = dyn_cast<GEPInst>(Cur)) {
      Type *Ty = GI->sourceType();
      const auto *First = dyn_cast<ConstantInt>(GI->index(0));
      if (!First || First->value() < 0)
        return nullptr;
      Offset += static_cast<uint64_t>(First->value()) * Ty->sizeInBytes();
      for (unsigned K = 1; K < GI->numIndices(); ++K) {
        const auto *CI = dyn_cast<ConstantInt>(GI->index(K));
        if (!CI || CI->value() < 0)
          return nullptr;
        if (auto *AT = dyn_cast<ArrayType>(Ty)) {
          if (static_cast<uint64_t>(CI->value()) >= AT->count())
            return nullptr;
          Offset += static_cast<uint64_t>(CI->value()) *
                    AT->element()->sizeInBytes();
          Ty = AT->element();
          continue;
        }
        auto *ST = cast<StructType>(Ty);
        Offset += ST->fieldOffset(static_cast<unsigned>(CI->value()));
        Ty = ST->field(static_cast<unsigned>(CI->value()));
      }
      Cur = GI->pointer();
      continue;
    }
    const auto *Alloc = dyn_cast<CallInst>(Cur);
    if (!Alloc)
      return nullptr;
    const Function *Callee = Alloc->calledFunction();
    if (!Callee || Callee->name() != "malloc")
      return nullptr;
    const auto *Size = dyn_cast<ConstantInt>(Alloc->arg(0));
    if (!Size || Size->value() < 0 ||
        Offset + 8 > static_cast<uint64_t>(Size->value()))
      return nullptr;
    return Alloc;
  }
  return nullptr;
}

/// True when no call can execute between the most recent execution of
/// \p Alloc and \p MS. SSA dominance puts Alloc's block on every path to
/// MS, and any re-entry of Alloc's block re-executes Alloc itself (a
/// newer allocation), so the walk stops there: scan MS's block above MS,
/// Alloc's block below Alloc, and every block on a predecessor path in
/// between, in full. A call is a hazard because the callee could plant
/// real metadata over the fresh slots; straight-line code in this frame
/// cannot (its own meta.stores are visited by the same analysis).
using PredMap = std::map<const BasicBlock *, std::vector<const BasicBlock *>>;

bool callFreeFromAllocTo(const CallInst *Alloc, const Instruction *MS,
                         const Function &F, const PredMap &Preds) {
  const BasicBlock *AllocBB = nullptr, *MSBB = nullptr;
  for (const auto &BB : F.blocks())
    for (const auto &I : *BB) {
      if (I.get() == Alloc)
        AllocBB = BB.get();
      if (I.get() == MS)
        MSBB = BB.get();
    }
  if (!AllocBB || !MSBB)
    return false;

  auto Hazard = [&](const Instruction *I) {
    if (const auto *C = dyn_cast<CallInst>(I))
      return C != Alloc;
    if (const auto *S = dyn_cast<MetaStoreInst>(I))
      return !isNullBounds(S->bounds());
    return false;
  };

  // Segment scans within the endpoint blocks.
  auto ScanRange = [&](const BasicBlock *BB, const Instruction *After,
                       const Instruction *Until) {
    bool Active = After == nullptr;
    for (const auto &I : *BB) {
      if (I.get() == Until)
        return false;
      if (Active && Hazard(I.get()))
        return true;
      if (I.get() == After)
        Active = true;
    }
    return false;
  };

  if (AllocBB == MSBB)
    return !ScanRange(AllocBB, Alloc, MS);

  if (ScanRange(MSBB, nullptr, MS) || ScanRange(AllocBB, Alloc, nullptr))
    return false;
  std::set<const BasicBlock *> Seen{MSBB, AllocBB};
  std::vector<const BasicBlock *> Work;
  auto Push = [&](const BasicBlock *BB) {
    if (auto It = Preds.find(BB); It != Preds.end())
      for (const BasicBlock *P : It->second)
        if (Seen.insert(P).second)
          Work.push_back(P);
  };
  Push(MSBB);
  while (!Work.empty()) {
    const BasicBlock *BB = Work.back();
    Work.pop_back();
    for (const auto &I : *BB)
      if (Hazard(I.get()))
        return false;
    Push(BB);
  }
  return true;
}

/// Boundary-reconstruction elision: a meta.store of the null bounds into
/// freshly malloc'd memory writes exactly the value a lookup miss
/// reconstructs — the runtime clears metadata on free (§5.2), so fresh
/// heap slots never carry stale entries. Deleting the store is
/// behavior-equivalent for every caller (no closed-module assumption, no
/// entry contract). This is where tree builders' kid[i] = NULL
/// initialization traffic goes: the dominant metadata cost on bh,
/// perimeter, and treeadd.
unsigned elideReconstructibleStores(Function &F) {
  PredMap Preds;
  for (const auto &BB : F.blocks())
    for (BasicBlock *S : BB->successors())
      Preds[S].push_back(BB.get());
  std::vector<Instruction *> Dead;
  for (const auto &BB : F.blocks())
    for (const auto &I : *BB) {
      auto *MS = dyn_cast<MetaStoreInst>(I.get());
      if (!MS || !isNullBounds(MS->bounds()))
        continue;
      const CallInst *Alloc = freshMallocSlot(MS->address());
      if (Alloc && callFreeFromAllocTo(Alloc, MS, F, Preds))
        Dead.push_back(MS);
    }
  if (Dead.empty())
    return 0;
  std::set<const Instruction *> DeadSet(Dead.begin(), Dead.end());
  for (const auto &BB : F.blocks())
    for (auto It = BB->begin(); It != BB->end();)
      It = DeadSet.count(It->get()) ? BB->erase(It) : std::next(It);
  dce(F);
  return Dead.size();
}

/// What phase 1 learned about one defined function.
struct FuncInfo {
  bool Candidate = false;
  std::string Reason;
  std::vector<Instruction *> MetaLoads;
  std::vector<Instruction *> MetaStores;
};

} // namespace

unsigned checkopt::partitionCheckedRegions(Module &M, CheckOptStats &Stats) {
  CallGraph CG(M);

  // Phase 0: boundary reconstruction. Runs before classification so a
  // function whose only metadata stores were reconstructible null inits
  // can still reach the fully-proven verdict below.
  std::map<const Function *, unsigned> Reconstructed;
  unsigned Elided = 0;
  for (const auto &FP : M.functions())
    if (FP->isDefinition() && FP->isTransformed())
      if (unsigned N = elideReconstructibleStores(*FP)) {
        Reconstructed[FP.get()] = N;
        Elided += N;
      }

  // Phase 1: per-function obligations — no checks left, address never
  // taken, metadata stores confined to non-escaping locals.
  std::vector<Function *> Order;
  std::map<const Function *, FuncInfo> Info;
  for (const auto &FP : M.functions()) {
    Function *F = FP.get();
    if (!F->isDefinition())
      continue;
    Order.push_back(F);
    FuncInfo &FI = Info[F];
    if (!F->isTransformed()) {
      FI.Reason = "not instrumented";
      continue;
    }
    unsigned Spatial = 0, FuncPtr = 0;
    for (const auto &BB : F->blocks())
      for (const auto &I : *BB) {
        if (isa<SpatialCheckInst>(I.get()))
          ++Spatial;
        else if (isa<FuncPtrCheckInst>(I.get()))
          ++FuncPtr;
        else if (isa<MetaLoadInst>(I.get()))
          FI.MetaLoads.push_back(I.get());
        else if (isa<MetaStoreInst>(I.get()))
          FI.MetaStores.push_back(I.get());
      }
    if (Spatial) {
      FI.Reason = std::to_string(Spatial) + " spatial check(s) remain";
      continue;
    }
    if (FuncPtr) {
      FI.Reason = std::to_string(FuncPtr) + " funcptr check(s) remain";
      continue;
    }
    if (CG.isAddressTaken(F)) {
      FI.Reason = "address taken: indirect call sites are unresolvable";
      continue;
    }
    bool Escapes = false;
    for (Instruction *MS : FI.MetaStores) {
      const auto *A =
          dyn_cast<AllocaInst>(addressRoot(cast<MetaStoreInst>(MS)->address()));
      if (!A || !allocaStaysLocal(A, *F)) {
        Escapes = true;
        break;
      }
    }
    if (Escapes) {
      FI.Reason = "meta.store through an address visible outside the frame";
      continue;
    }
    FI.Candidate = true;
  }

  // Phase 2: stripped-bounds taint fixpoint. Deleting a candidate's
  // meta.loads replaces their results with null bounds, so every value
  // they feed — through the bounds-carrying instructions and across
  // direct calls — must stay inside the fully-proven region, where
  // nothing checks against it. A leak demotes the function; demotion
  // restores real metadata, so taint is recomputed until nothing demotes.
  auto InRegion = [&Info](const Function *F) {
    auto It = Info.find(F);
    return It != Info.end() && It->second.Candidate;
  };
  bool Demoted = true;
  while (Demoted) {
    Demoted = false;
    std::set<const Value *> Tainted;
    std::set<const Argument *> TaintedArgs;
    std::set<const Function *> TaintedRet;

    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (Function *F : Order) {
        if (!InRegion(F))
          continue;
        for (unsigned AI = 0; AI < F->numArgs(); ++AI)
          if (TaintedArgs.count(F->arg(AI)))
            Changed = Tainted.insert(F->arg(AI)).second || Changed;
        for (const auto &BB : F->blocks())
          for (const auto &I : *BB) {
            Instruction *P = I.get();
            bool T = false;
            switch (P->kind()) {
            case ValueKind::MetaLoad:
              T = true;
              break;
            case ValueKind::Phi:
            case ValueKind::Select:
            case ValueKind::PackPB:
            case ValueKind::ExtractBounds:
              for (unsigned K = 0; K < P->numOperands() && !T; ++K)
                T = P->op(K) && Tainted.count(P->op(K));
              break;
            case ValueKind::Call: {
              const Function *Callee = cast<CallInst>(P)->calledFunction();
              T = Callee && TaintedRet.count(Callee);
              break;
            }
            default:
              break;
            }
            if (T)
              Changed = Tainted.insert(P).second || Changed;
          }
        for (const auto &BB : F->blocks())
          for (const auto &I : *BB) {
            if (const auto *C = dyn_cast<CallInst>(I.get())) {
              const Function *Callee = C->calledFunction();
              if (!Callee || !InRegion(Callee))
                continue;
              for (unsigned K = 0;
                   K < C->numArgs() && K < Callee->numArgs(); ++K)
                if (C->arg(K) && Tainted.count(C->arg(K)))
                  Changed =
                      TaintedArgs.insert(Callee->arg(K)).second || Changed;
            } else if (const auto *R = dyn_cast<RetInst>(I.get())) {
              if (R->hasValue() && Tainted.count(R->value()))
                Changed = TaintedRet.insert(F).second || Changed;
            }
          }
      }
    }

    for (Function *F : Order) {
      if (!InRegion(F))
        continue;
      std::string Leak;
      for (const auto &BB : F->blocks()) {
        for (const auto &I : *BB) {
          const auto *C = dyn_cast<CallInst>(I.get());
          if (!C)
            continue;
          const Function *Callee = C->calledFunction();
          if (Callee && InRegion(Callee))
            continue;
          for (unsigned K = 0; K < C->numArgs() && Leak.empty(); ++K)
            if (C->arg(K) && Tainted.count(C->arg(K)))
              Leak = Callee ? "stripped bounds reach instrumented callee @" +
                                  Callee->name()
                            : std::string(
                                  "stripped bounds reach an indirect call");
          if (!Leak.empty())
            break;
        }
        if (!Leak.empty())
          break;
      }
      if (Leak.empty() && TaintedRet.count(F)) {
        if (CG.externallyReachable(F))
          Leak = "stripped return bounds are externally visible";
        else
          for (unsigned SI : CG.callersOf(F))
            if (const Function *Caller = CG.callSites()[SI].Caller;
                !InRegion(Caller)) {
              Leak = "stripped return bounds reach instrumented caller @" +
                     Caller->name();
              break;
            }
      }
      if (!Leak.empty()) {
        Info[F].Candidate = false;
        Info[F].Reason = Leak;
        Demoted = true;
      }
    }
  }

  // Phase 3: strip the proven region and emit verdicts in module order.
  unsigned Removed = 0;
  for (Function *F : Order) {
    FuncInfo &FI = Info[F];
    PartitionVerdict V;
    V.Func = F->name();
    V.MetaStoresRemoved = Reconstructed.count(F) ? Reconstructed[F] : 0;
    ++Stats.PartitionFunctions;
    if (!FI.Candidate) {
      V.Reason = FI.Reason;
      Stats.PartitionMetaStoresRemoved += V.MetaStoresRemoved;
      Stats.Partition.push_back(std::move(V));
      continue;
    }
    V.FullyProven = true;
    V.Reason = "proven";
    V.MetaLoadsRemoved = FI.MetaLoads.size();
    V.MetaStoresRemoved += FI.MetaStores.size();

    if (!FI.MetaLoads.empty()) {
      // One shared null-bounds value stands in for every deleted
      // meta.load; the taint fixpoint proved nothing checks against it.
      auto NB = std::make_unique<MakeBoundsInst>(
          M.ctx().boundsTy(), M.constI64(0), M.constI64(0), "stripped");
      MakeBoundsInst *Stripped = NB.get();
      BasicBlock *Entry = F->entry();
      Entry->insertBefore(Entry->begin(), std::move(NB));
      for (Instruction *ML : FI.MetaLoads)
        F->replaceAllUsesWith(ML, Stripped);
    }
    std::set<const Instruction *> Dead(FI.MetaLoads.begin(),
                                       FI.MetaLoads.end());
    Dead.insert(FI.MetaStores.begin(), FI.MetaStores.end());
    for (const auto &BB : F->blocks())
      for (auto It = BB->begin(); It != BB->end();)
        It = Dead.count(It->get()) ? BB->erase(It) : std::next(It);

    Stats.PartitionMetaLoadsRemoved += V.MetaLoadsRemoved;
    Stats.PartitionMetaStoresRemoved += V.MetaStoresRemoved;
    Removed += FI.MetaLoads.size() + FI.MetaStores.size();
    ++Stats.PartitionProven;
    F->setUninstrumented();
    // Deleted metadata ops strand their address arithmetic; sweep it.
    dce(*F);
    Stats.Partition.push_back(std::move(V));
  }

  // Caller-set reasoning above leaned on the closed-module assumption,
  // so stripping anything records the same whole-program entry contract
  // checkopt(interproc) records for its deletions. Phase 0's
  // reconstruction elisions are deliberately excluded: they hold for any
  // caller with any arguments, so they impose no entry restriction.
  if (Removed) {
    std::vector<const Function *> Internal;
    for (Function *F : Order)
      if (!CG.externallyReachable(F))
        Internal.push_back(F);
    M.recordInterProcContract(Internal);
  }
  return Removed + Elided;
}
