//===- opt/checks/Loops.h - natural & counted loop recognition --*- C++ -*-===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Loop recognition for the check hoister. Deliberately restrictive: only
/// loops whose shape lets us *prove* the exact set of induction-variable
/// values are usable (single latch, dedicated unconditional preheader,
/// single exit edge from the header, constant init/step/limit). Anything
/// else is skipped — missing an optimization is fine, a false trap is not.
///
//===----------------------------------------------------------------------===//

#ifndef SOFTBOUND_OPT_CHECKS_LOOPS_H
#define SOFTBOUND_OPT_CHECKS_LOOPS_H

#include "ir/Function.h"

#include <set>
#include <vector>

namespace softbound {

class DomTree;

namespace checkopt {

/// A natural loop in hoistable shape.
struct NaturalLoop {
  BasicBlock *Header = nullptr;
  BasicBlock *Latch = nullptr;     ///< The unique back-edge source.
  BasicBlock *Preheader = nullptr; ///< Unique entry; ends in `br Header`.
  std::set<BasicBlock *> Blocks;   ///< Header + body (includes Latch).

  bool contains(const BasicBlock *BB) const {
    return Blocks.count(const_cast<BasicBlock *>(BB)) != 0;
  }
  /// True when \p V is available on entry to the loop (constant, argument,
  /// or instruction defined outside the loop body).
  bool isInvariant(const Value *V) const {
    auto *I = dyn_cast<Instruction>(V);
    return !I || !contains(I->parent());
  }
};

/// Finds loops satisfying the shape restrictions above, innermost first
/// (sorted by block count, so nested hoisting cascades outward).
std::vector<NaturalLoop> findSimpleLoops(Function &F, const DomTree &DT);

/// A loop whose exact iteration-variable sequence is known statically:
/// IV takes Init, Init+Step, ... ; body blocks run BodyCount times; the
/// header runs BodyCount+1 times and additionally observes ExitIV.
struct CountedLoop {
  PhiInst *IV = nullptr;
  int64_t Init = 0;
  int64_t Step = 0;
  int64_t BodyCount = 0; ///< Executions of non-header loop blocks.
  int64_t LastBody = 0;  ///< IV value of the final body execution.
  int64_t ExitIV = 0;    ///< IV value the header sees on the exiting pass.
};

/// Recognizes \p L as a counted loop: header phi with constant init from
/// the preheader and `phi +/- constant` from the latch, exit branch
/// controlled by `icmp IV, constant` (through the frontend's
/// `(zext i1) != 0` re-test wrapper). Rejects any sequence that would
/// wrap its bit width or fail to terminate.
bool analyzeCountedLoop(const NaturalLoop &L, CountedLoop &Out);

/// True when no instruction in the loop can let a run finish *normally*
/// without executing every remaining iteration: no exit/setjmp/longjmp
/// and no indirect calls, transitively through every defined callee.
/// This is what makes it sound to assume "the program completes
/// normally => every iteration's checks executed". Instructions that can
/// only *trap* (division, nested checks, step limits) are deliberately
/// allowed: a trapped run did not complete, so the hoisted check firing
/// first merely reports a different — equally fatal — trap kind on a run
/// that was doomed either way.
bool loopBodyIsSafe(const NaturalLoop &L);

} // namespace checkopt
} // namespace softbound

#endif // SOFTBOUND_OPT_CHECKS_LOOPS_H
