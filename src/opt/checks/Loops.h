//===- opt/checks/Loops.h - natural & counted loop recognition --*- C++ -*-===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Loop recognition for the check hoister. Deliberately restrictive: only
/// loops whose shape lets us *prove* the exact set of induction-variable
/// values are usable (single latch, dedicated unconditional preheader,
/// single exit edge from the header, constant init/step/limit). Anything
/// else is skipped — missing an optimization is fine, a false trap is not.
///
//===----------------------------------------------------------------------===//

#ifndef SOFTBOUND_OPT_CHECKS_LOOPS_H
#define SOFTBOUND_OPT_CHECKS_LOOPS_H

#include "ir/Function.h"
#include "opt/checks/Predicates.h"

#include <cstdint>
#include <set>
#include <vector>

namespace softbound {

class DomTree;

namespace checkopt {

/// A natural loop in hoistable shape.
struct NaturalLoop {
  BasicBlock *Header = nullptr;
  BasicBlock *Latch = nullptr;     ///< The unique back-edge source.
  BasicBlock *Preheader = nullptr; ///< Unique entry; ends in `br Header`.
  std::set<BasicBlock *> Blocks;   ///< Header + body (includes Latch).

  bool contains(const BasicBlock *BB) const {
    return Blocks.count(const_cast<BasicBlock *>(BB)) != 0;
  }
  /// True when \p V is available on entry to the loop (constant, argument,
  /// or instruction defined outside the loop body). One definition shared
  /// with the inter-procedural engine: see availableOnEntry (Predicates.h).
  bool isInvariant(const Value *V) const {
    return availableOnEntry(V,
                            [this](const BasicBlock *BB) { return contains(BB); });
  }
};

/// Finds loops satisfying the shape restrictions above, innermost first
/// (sorted by block count, so nested hoisting cascades outward).
std::vector<NaturalLoop> findSimpleLoops(Function &F, const DomTree &DT);

/// A loop whose exact iteration-variable sequence is known statically:
/// IV takes Init, Init+Step, ... ; body blocks run BodyCount times; the
/// header runs BodyCount+1 times and additionally observes ExitIV.
struct CountedLoop {
  PhiInst *IV = nullptr;
  int64_t Init = 0;
  int64_t Step = 0;
  int64_t BodyCount = 0; ///< Executions of non-header loop blocks.
  int64_t LastBody = 0;  ///< IV value of the final body execution.
  int64_t ExitIV = 0;    ///< IV value the header sees on the exiting pass.
};

/// Recognizes \p L as a counted loop: header phi with constant init from
/// the preheader and `phi +/- constant` from the latch, exit branch
/// controlled by `icmp IV, constant` (through the frontend's
/// `(zext i1) != 0` re-test wrapper). Rejects any sequence that would
/// wrap its bit width or fail to terminate.
bool analyzeCountedLoop(const NaturalLoop &L, CountedLoop &Out);

/// A counted loop with up to two run-time bounds — the generalized
/// `for (i = lo; i < hi; i += s)` family. The IV starts at the init value
/// I (a compile-time constant, or the run-time value of the loop-invariant
/// SSA value InitV) and steps by the constant Step until the oriented
/// relational predicate against the limit value L (constant, or the
/// run-time value of the loop-invariant Limit) fails, so the body's IV
/// set is an interval with up to two run-time endpoints:
///
///   up   (Step > 0): IV in [I, L + EndAdj]  (EndAdj: SLT -Step, SLE 0)
///   down (Step < 0): IV in [L + EndAdj, I]  (EndAdj: SGT -Step, SGE 0)
///
/// At least one endpoint is symbolic (both constant is the constant
/// analyzer's territory). The closed form is valid only when
///
///   (a) the loop runs at least one body iteration — exactly the stay
///       predicate Pred(I, L), testable as one icmp on the live values;
///   (b) L lies in [LimitMin, LimitMax], the window inside which the IV
///       provably reaches the exit value without wrapping its bit width
///       (I needs no window: canonical values already fit the IV width;
///       when the limit is a compile-time constant the window has been
///       checked statically by the analyzer); and
///   (c) when |Step| > 1 (NeedDivis), the span (L - I) is divisible by
///       |Step| — otherwise the IV steps *past* the limit and the body
///       endpoint L + EndAdj is not the true last IV.
///
/// All three are run-time conditions on (I, L); the hoister
/// (LoopHoist.cpp) narrows the region further with its own
/// arithmetic-fidelity constraints and either proves it from
/// inter-procedural argument ranges (over both symbols) or tests it with
/// an emitted guard.
struct SymbolicCountedLoop {
  PhiInst *IV = nullptr;
  Value *InitV = nullptr; ///< Loop-invariant symbolic init, or null.
  int64_t InitC = 0;      ///< Constant init value when InitV is null.
  Value *Limit = nullptr; ///< Loop-invariant symbolic limit, or null.
  int64_t LimitC = 0;     ///< Constant limit value when Limit is null.
  int64_t Step = 0;       ///< Nonzero; |Step| may exceed 1.
  bool Up = false;        ///< True for Step > 0 loops (SLT/SLE).
  ICmpInst::Pred Pred = ICmpInst::Pred::SLT; ///< Oriented stay-predicate.
  int64_t EndAdj = 0;     ///< Run-time body-IV endpoint = L + EndAdj.
  bool NeedDivis = false; ///< |Step| > 1: closed form needs (L-I) % |Step| == 0.
  int64_t LimitMin = INT64_MIN; ///< IV-wrap window on L (inclusive).
  int64_t LimitMax = INT64_MAX;
};

/// Recognizes \p L as a symbolic counted loop: header phi whose preheader
/// incoming is a constant or any SSA value (SSA dominance makes it
/// available on loop entry by construction), `phi +/- constant` from the
/// latch, exit branch controlled by `icmp IV, limit` (through the
/// frontend's re-test wrapper and value-preserving sign extensions on
/// either side) where the limit is a constant or available on entry to
/// the loop, and at least one of init/limit is symbolic. Only the signed
/// relational predicates are accepted: unsigned and equality forms have
/// no sound interval closed form under unknown bounds. |Step| > 1 is
/// accepted with NeedDivis set (the hoister must guard divisibility);
/// a constant limit outside the IV-wrap window is rejected outright.
bool analyzeSymbolicCountedLoop(const NaturalLoop &L, SymbolicCountedLoop &Out);

/// True when no instruction in the loop can let a run finish *normally*
/// without executing every remaining iteration: no exit/setjmp/longjmp
/// and no indirect calls, transitively through every defined callee.
/// This is what makes it sound to assume "the program completes
/// normally => every iteration's checks executed". Instructions that can
/// only *trap* (division, nested checks, step limits) are deliberately
/// allowed: a trapped run did not complete, so the hoisted check firing
/// first merely reports a different — equally fatal — trap kind on a run
/// that was doomed either way.
bool loopBodyIsSafe(const NaturalLoop &L);

} // namespace checkopt
} // namespace softbound

#endif // SOFTBOUND_OPT_CHECKS_LOOPS_H
