//===- opt/checks/Loops.cpp - natural & counted loop recognition ------------===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "opt/checks/Loops.h"

#include "opt/Dominators.h"
#include "opt/checks/Predicates.h"
#include "opt/checks/RangeAnalysis.h"
#include "support/Casting.h"

#include <algorithm>


using namespace softbound;
using namespace softbound::checkopt;

//===----------------------------------------------------------------------===//
// Natural loop discovery
//===----------------------------------------------------------------------===//

std::vector<NaturalLoop> checkopt::findSimpleLoops(Function &F,
                                                   const DomTree &DT) {
  std::vector<NaturalLoop> Out;
  if (!F.isDefinition())
    return Out;

  // Back edges B -> H where H dominates B; reject headers with several
  // latches (continue statements) — their phi structure is ambiguous.
  // Headers are visited in RPO, never in pointer order: the emitted hull
  // IR (and hence the gated dynamic-check counts) must be identical from
  // run to run.
  std::map<BasicBlock *, std::vector<BasicBlock *>> Latches;
  for (BasicBlock *BB : DT.rpo())
    for (BasicBlock *S : BB->successors())
      if (DT.dominates(S, BB))
        Latches[S].push_back(BB);

  for (BasicBlock *Header : DT.rpo()) {
    auto LatchIt = Latches.find(Header);
    if (LatchIt == Latches.end())
      continue;
    const std::vector<BasicBlock *> &Backs = LatchIt->second;
    if (Backs.size() != 1)
      continue;
    NaturalLoop L;
    L.Header = Header;
    L.Latch = Backs[0];

    // Natural loop body: blocks that reach the latch without passing the
    // header.
    L.Blocks.insert(Header);
    std::vector<BasicBlock *> Work{L.Latch};
    while (!Work.empty()) {
      BasicBlock *BB = Work.back();
      Work.pop_back();
      if (!L.Blocks.insert(BB).second)
        continue;
      for (BasicBlock *P : DT.preds(BB))
        Work.push_back(P);
    }

    // Dedicated preheader: the single non-latch predecessor of the header,
    // outside the loop, ending in an unconditional branch to the header.
    BasicBlock *Pre = nullptr;
    bool Bad = false;
    for (BasicBlock *P : DT.preds(Header)) {
      if (P == L.Latch)
        continue;
      if (Pre || L.contains(P)) {
        Bad = true;
        break;
      }
      Pre = P;
    }
    if (Bad || !Pre)
      continue;
    auto *PreBr = dyn_cast<BrInst>(Pre->terminator());
    if (!PreBr || PreBr->isConditional())
      continue;
    L.Preheader = Pre;

    // Single exit edge, and it must leave from the header: every other
    // block's successors stay inside (this rejects break/return bodies).
    unsigned ExitEdges = 0;
    for (BasicBlock *BB : L.Blocks)
      for (BasicBlock *S : BB->successors())
        if (!L.contains(S)) {
          ++ExitEdges;
          if (BB != Header)
            Bad = true;
        }
    if (Bad || ExitEdges != 1)
      continue;

    Out.push_back(std::move(L));
  }

  // Innermost first, so hoisted inner checks can cascade out of enclosing
  // loops in the same pass. Stable: same-size loops keep their RPO
  // discovery order (determinism again).
  std::stable_sort(Out.begin(), Out.end(),
                   [](const NaturalLoop &A, const NaturalLoop &B) {
                     return A.Blocks.size() < B.Blocks.size();
                   });
  return Out;
}

//===----------------------------------------------------------------------===//
// Counted loop recognition
//===----------------------------------------------------------------------===//

namespace {

bool fitsWidth(__int128 V, unsigned Bits) {
  if (Bits > 64)
    Bits = 64;
  __int128 Max = (__int128(1) << (Bits - 1)) - 1;
  __int128 Min = -(__int128(1) << (Bits - 1));
  return V >= Min && V <= Max;
}

/// Matches \p Phi against the [init from the preheader, phi +/- constant
/// from a latch-side binop] shape, returning the raw preheader incoming
/// (constant *or* symbolic — the callers decide what they accept).
bool matchIVStep(const NaturalLoop &L, PhiInst *Phi, Value *&InitVal,
                 int64_t &Step) {
  if (Phi->numIncoming() != 2 || !isa<IntType>(Phi->type()))
    return false;
  Value *FromPre = Phi->incomingFor(L.Preheader);
  Value *FromLatch = Phi->incomingFor(L.Latch);
  auto *Next = FromLatch ? dyn_cast<BinOpInst>(FromLatch) : nullptr;
  if (!FromPre || !Next || !L.contains(Next->parent()))
    return false;
  int64_t S = 0;
  if (Next->opcode() == BinOpInst::Op::Add) {
    if (auto *C = dyn_cast<ConstantInt>(Next->rhs()); C && Next->lhs() == Phi)
      S = C->value();
    else if (auto *C2 = dyn_cast<ConstantInt>(Next->lhs());
             C2 && Next->rhs() == Phi)
      S = C2->value();
    else
      return false;
  } else if (Next->opcode() == BinOpInst::Op::Sub) {
    auto *C = dyn_cast<ConstantInt>(Next->rhs());
    // INT64_MIN checked pre-negation: -INT64_MIN is signed-overflow UB.
    if (!C || Next->lhs() != Phi || C->value() == INT64_MIN)
      return false;
    S = -C->value();
  } else {
    return false;
  }
  if (S == 0 || S == INT64_MIN)
    return false;
  InitVal = FromPre;
  Step = S;
  return true;
}

/// The exit comparison's predicate oriented so "Pred(IV, limit) true"
/// means "stay in the loop", with the limit-side operand returned raw.
/// Sign extensions are peeled off the IV side (the frontend widens i32
/// IVs to compare against i64 limits); canonical values are already
/// sign-extended, so the peeled comparison is value-identical.
bool orientExitCondition(const NaturalLoop &L, const BrInst *Br, PhiInst *IV,
                         ICmpInst::Pred &Pred, Value *&LimitSide) {
  bool Negate = false;
  const ICmpInst *Cmp = peelCondition(Br->condition(), Negate);
  if (!Cmp)
    return false;
  Pred = Cmp->pred();
  if (stripSExt(Cmp->lhs()) == IV) {
    LimitSide = Cmp->rhs();
  } else if (stripSExt(Cmp->rhs()) == IV) {
    LimitSide = Cmp->lhs();
    Pred = swapPred(Pred);
  } else {
    return false;
  }
  if (Negate)
    Pred = invertPred(Pred);
  bool TrueStays = L.contains(Br->successor(0));
  bool FalseStays = L.contains(Br->successor(1));
  if (TrueStays == FalseStays)
    return false; // Both or neither in-loop: not the exit branch shape.
  if (!TrueStays)
    Pred = invertPred(Pred);
  return true;
}

/// First header phi in IV-step shape that the exit comparison actually
/// tests, together with its oriented stay-predicate and the raw
/// limit-side operand. Iterating past phis the branch does not test keeps
/// accumulator phis (`s = s + 1` matches the step shape too) from masking
/// the real induction variable. Shared by both analyzers.
bool findOrientedIV(const NaturalLoop &L, const BrInst *Br, PhiInst *&IV,
                    Value *&InitVal, int64_t &Step, ICmpInst::Pred &Pred,
                    Value *&LimitSide) {
  for (auto &I : *L.Header) {
    auto *Phi = dyn_cast<PhiInst>(I.get());
    if (!Phi)
      break;
    Value *Init = nullptr;
    int64_t S = 0;
    if (!matchIVStep(L, Phi, Init, S))
      continue;
    ICmpInst::Pred P;
    Value *LS = nullptr;
    if (!orientExitCondition(L, Br, Phi, P, LS))
      continue;
    IV = Phi;
    InitVal = Init;
    Step = S;
    Pred = P;
    LimitSide = LS;
    return true;
  }
  return false;
}

} // namespace

bool checkopt::analyzeCountedLoop(const NaturalLoop &L, CountedLoop &Out) {
  // --- Induction variable: header phi = [Init, Preheader], [Next, Latch]
  // with Next = IV +/- constant, tested by the header's exit branch.
  auto *Br = dyn_cast<BrInst>(L.Header->terminator());
  if (!Br || !Br->isConditional())
    return false;

  PhiInst *IV = nullptr;
  Value *InitVal = nullptr;
  int64_t Step = 0;
  ICmpInst::Pred Pred;
  Value *LimitSide = nullptr;
  if (!findOrientedIV(L, Br, IV, InitVal, Step, Pred, LimitSide))
    return false;
  const auto *InitCI = dyn_cast<ConstantInt>(InitVal);
  if (!InitCI)
    return false;
  int64_t Init = InitCI->value();

  // --- Exit condition: icmp between the IV and a constant limit.
  const auto *LimitC = dyn_cast<ConstantInt>(LimitSide);
  if (!LimitC)
    return false;

  // --- Body count C: number of k >= 0 with pred(Init + k*Step, Limit).
  // Everything is computed in 128-bit: near-full-range i64 constants make
  // Lim - Lo overflow int64, and a wrapped count here would erase live
  // checks as "provably dead".
  const __int128 Lo = Init, Lim = LimitC->value(), S = Step;
  __int128 C = 0;
  using P = ICmpInst::Pred;
  switch (Pred) {
  case P::SLT:
    if (S <= 0)
      return false;
    C = Lo < Lim ? (Lim - Lo + S - 1) / S : 0;
    break;
  case P::SLE:
    if (S <= 0)
      return false;
    C = Lo <= Lim ? (Lim - Lo) / S + 1 : 0;
    break;
  case P::SGT:
    if (S >= 0)
      return false;
    C = Lo > Lim ? (Lo - Lim + (-S) - 1) / (-S) : 0;
    break;
  case P::SGE:
    if (S >= 0)
      return false;
    C = Lo >= Lim ? (Lo - Lim) / (-S) + 1 : 0;
    break;
  case P::ULT:
  case P::ULE:
    // Matches the signed analysis only when both operands stay non-negative.
    if (S <= 0 || Lo < 0 || Lim < 0)
      return false;
    C = Pred == P::ULT ? (Lo < Lim ? (Lim - Lo + S - 1) / S : 0)
                       : (Lo <= Lim ? (Lim - Lo) / S + 1 : 0);
    break;
  case P::UGT:
  case P::UGE:
    if (S >= 0 || Lo < 0 || Lim < 0)
      return false;
    C = Pred == P::UGT ? (Lo > Lim ? (Lo - Lim + (-S) - 1) / (-S) : 0)
                       : (Lo >= Lim ? (Lo - Lim) / (-S) + 1 : 0);
    break;
  case P::NE: {
    // Runs until IV == Limit exactly; anything else never terminates (or
    // wraps), so require an exact hit.
    __int128 Diff = Lim - Lo;
    if (S == 0 || Diff % S != 0 || Diff / S < 0)
      return false;
    C = Diff / S;
    break;
  }
  default:
    return false; // EQ as a continue-condition is degenerate.
  }
  if (C < 0 || C > (__int128(1) << 30))
    return false;

  // --- Wrap check: the real IV arithmetic is Width-bit; our closed form
  // is only valid if no value in Init..Init+C*Step leaves that range.
  unsigned Width = cast<IntType>(IV->type())->bits();
  __int128 ExitIV = Lo + C * S;
  if (!fitsWidth(Lo, Width) || !fitsWidth(ExitIV, Width))
    return false;

  Out.IV = IV;
  Out.Init = Init;
  Out.Step = Step;
  Out.BodyCount = static_cast<int64_t>(C);
  // LastBody lies between Lo and ExitIV, so the width checks above cover it.
  Out.LastBody = C > 0 ? static_cast<int64_t>(Lo + (C - 1) * S) : Init;
  Out.ExitIV = static_cast<int64_t>(ExitIV);
  return true;
}

//===----------------------------------------------------------------------===//
// Symbolic counted-loop recognition
//===----------------------------------------------------------------------===//

bool checkopt::analyzeSymbolicCountedLoop(const NaturalLoop &L,
                                          SymbolicCountedLoop &Out) {
  auto *Br = dyn_cast<BrInst>(L.Header->terminator());
  if (!Br || !Br->isConditional())
    return false;

  PhiInst *IV = nullptr;
  Value *InitVal = nullptr;
  int64_t Step = 0;
  ICmpInst::Pred Pred;
  Value *LimitSide = nullptr;
  if (!findOrientedIV(L, Br, IV, InitVal, Step, Pred, LimitSide))
    return false;
  // Steps large enough to threaten the window arithmetic itself are not
  // worth a guard; EndAdj and the wrap windows below stay exactly
  // representable under this cap.
  const int64_t AbsStep = Step > 0 ? Step : -Step;
  if (AbsStep > (int64_t(1) << 30))
    return false;

  unsigned W = cast<IntType>(IV->type())->bits();
  if (W > 64)
    return false;
  const int64_t WMax = W >= 64 ? INT64_MAX : (int64_t(1) << (W - 1)) - 1;
  const int64_t WMin = W >= 64 ? INT64_MIN : -(int64_t(1) << (W - 1));

  // The init: a constant (width-checked — an un-canonical hand-built
  // constant is refused) or the symbolic preheader incoming, which SSA
  // dominance already makes available on entry and whose canonical value
  // fits the IV width by construction. Sign extensions are peeled like
  // the limit's, so a symbol that is a widened copy of another loop's IV
  // is recognized as that IV (the hoister keys correlation checks on the
  // symbol's identity).
  InitVal = stripSExt(InitVal);
  if (auto *InitCI = dyn_cast<ConstantInt>(InitVal)) {
    Out.InitV = nullptr;
    Out.InitC = InitCI->value();
    if (Out.InitC < WMin || Out.InitC > WMax)
      return false;
  } else {
    if (!isa<IntType>(InitVal->type()))
      return false;
    Out.InitV = InitVal;
    Out.InitC = 0;
  }

  // The limit: peel value-preserving sign extensions (the peeled value is
  // canonically equal). A constant limit is allowed only alongside a
  // symbolic init (both constant is the constant analyzer's territory);
  // a symbolic one must be available on entry.
  Value *Limit = stripSExt(LimitSide);
  if (auto *LimitCI = dyn_cast<ConstantInt>(Limit)) {
    if (!Out.InitV)
      return false;
    Out.Limit = nullptr;
    Out.LimitC = LimitCI->value();
  } else {
    if (!isa<IntType>(Limit->type()) || !L.isInvariant(Limit) || Limit == IV)
      return false;
    Out.Limit = Limit;
    Out.LimitC = 0;
  }

  // Per-predicate shape. The LimitMin/LimitMax window guarantees the IV
  // reaches the exit value without leaving [WMin, WMax]: under the
  // divisibility condition (automatic for |Step| == 1) the sequence is
  // monotonic from I to the exit value (L for SLT/SGT, L +/- Step for
  // SLE/SGE), so bounding L bounds every intermediate — I itself is
  // canonical and needs no window.
  using P = ICmpInst::Pred;
  switch (Pred) {
  case P::SLT: // Body IVs [I, L-Step]; exit value L.
    if (Step <= 0)
      return false;
    Out.Up = true;
    Out.EndAdj = -Step;
    Out.LimitMin = INT64_MIN;
    Out.LimitMax = WMax;
    break;
  case P::SLE: // Body IVs [I, L]; exit value L+Step.
    if (Step <= 0)
      return false;
    Out.Up = true;
    Out.EndAdj = 0;
    Out.LimitMin = INT64_MIN;
    Out.LimitMax = WMax - Step; // WMax >= 0 > -Step: cannot overflow.
    break;
  case P::SGT: // Body IVs [L-Step, I]; exit value L.
    if (Step >= 0)
      return false;
    Out.Up = false;
    Out.EndAdj = -Step;
    Out.LimitMin = WMin;
    Out.LimitMax = INT64_MAX;
    break;
  case P::SGE: // Body IVs [L, I]; exit value L+Step.
    if (Step >= 0)
      return false;
    Out.Up = false;
    Out.EndAdj = 0;
    Out.LimitMin = WMin - Step; // WMin < 0 < -Step: cannot overflow.
    Out.LimitMax = INT64_MAX;
    break;
  default:
    // Unsigned and equality predicates: no sound signed interval form
    // under unknown bounds (ULT would additionally need L >= 0 and NE an
    // exact divisibility hit).
    return false;
  }
  // A constant limit must sit inside the wrap window statically; there is
  // no symbol to test it against at run time.
  if (!Out.Limit && (Out.LimitC < Out.LimitMin || Out.LimitC > Out.LimitMax))
    return false;

  Out.IV = IV;
  Out.Step = Step;
  Out.Pred = Pred;
  Out.NeedDivis = AbsStep != 1;
  return true;
}

//===----------------------------------------------------------------------===//
// Loop-body safety scan
//===----------------------------------------------------------------------===//

namespace {

/// Calls whose execution can end the run *normally* or resume it somewhere
/// else — the two ways a run could finish cleanly without executing every
/// remaining loop iteration. Traps (division, nested checks, step limits,
/// segfaults) need no exclusion: a trapped run did not complete normally,
/// which is all the hoisting argument relies on.
bool isEscapingBuiltin(const std::string &Name) {
  return Name == "exit" || Name == "setjmp" || Name == "longjmp";
}

/// True when \p F (a defined function) could, transitively, execute an
/// escaping call or an indirect call (unknown callee). Cycles in the call
/// graph are fine: recursion alone cannot escape.
bool calleeMayEscape(Function *F,
                     std::map<Function *, bool> &Memo) {
  auto It = Memo.find(F);
  if (It != Memo.end())
    return It->second;
  Memo[F] = false; // Optimistic for cycles; flipped below if a call escapes.
  for (auto &BB : F->blocks())
    for (auto &IP : *BB) {
      auto *CI = dyn_cast<CallInst>(IP.get());
      if (!CI)
        continue;
      Function *Callee = CI->calledFunction();
      if (!Callee || isEscapingBuiltin(Callee->name()) ||
          (Callee->isDefinition() && calleeMayEscape(Callee, Memo))) {
        Memo[F] = true;
        return true;
      }
    }
  return Memo[F];
}

} // namespace

bool checkopt::loopBodyIsSafe(const NaturalLoop &L) {
  std::map<Function *, bool> Memo;
  for (BasicBlock *BB : L.Blocks)
    for (auto &IP : *BB) {
      auto *CI = dyn_cast<CallInst>(IP.get());
      if (!CI)
        continue;
      Function *Callee = CI->calledFunction();
      if (!Callee) // Indirect call: unknown callee could escape.
        return false;
      if (isEscapingBuiltin(Callee->name()))
        return false;
      if (Callee->isDefinition() && calleeMayEscape(Callee, Memo))
        return false;
    }
  return true;
}
