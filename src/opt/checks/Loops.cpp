//===- opt/checks/Loops.cpp - natural & counted loop recognition ------------===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "opt/checks/Loops.h"

#include "opt/Dominators.h"
#include "opt/checks/Predicates.h"
#include "opt/checks/RangeAnalysis.h"
#include "support/Casting.h"

#include <algorithm>


using namespace softbound;
using namespace softbound::checkopt;

//===----------------------------------------------------------------------===//
// Natural loop discovery
//===----------------------------------------------------------------------===//

std::vector<NaturalLoop> checkopt::findSimpleLoops(Function &F,
                                                   const DomTree &DT) {
  std::vector<NaturalLoop> Out;
  if (!F.isDefinition())
    return Out;

  // Back edges B -> H where H dominates B; reject headers with several
  // latches (continue statements) — their phi structure is ambiguous.
  std::map<BasicBlock *, std::vector<BasicBlock *>> Latches;
  for (BasicBlock *BB : DT.rpo())
    for (BasicBlock *S : BB->successors())
      if (DT.dominates(S, BB))
        Latches[S].push_back(BB);

  for (auto &[Header, Backs] : Latches) {
    if (Backs.size() != 1)
      continue;
    NaturalLoop L;
    L.Header = Header;
    L.Latch = Backs[0];

    // Natural loop body: blocks that reach the latch without passing the
    // header.
    L.Blocks.insert(Header);
    std::vector<BasicBlock *> Work{L.Latch};
    while (!Work.empty()) {
      BasicBlock *BB = Work.back();
      Work.pop_back();
      if (!L.Blocks.insert(BB).second)
        continue;
      for (BasicBlock *P : DT.preds(BB))
        Work.push_back(P);
    }

    // Dedicated preheader: the single non-latch predecessor of the header,
    // outside the loop, ending in an unconditional branch to the header.
    BasicBlock *Pre = nullptr;
    bool Bad = false;
    for (BasicBlock *P : DT.preds(Header)) {
      if (P == L.Latch)
        continue;
      if (Pre || L.contains(P)) {
        Bad = true;
        break;
      }
      Pre = P;
    }
    if (Bad || !Pre)
      continue;
    auto *PreBr = dyn_cast<BrInst>(Pre->terminator());
    if (!PreBr || PreBr->isConditional())
      continue;
    L.Preheader = Pre;

    // Single exit edge, and it must leave from the header: every other
    // block's successors stay inside (this rejects break/return bodies).
    unsigned ExitEdges = 0;
    for (BasicBlock *BB : L.Blocks)
      for (BasicBlock *S : BB->successors())
        if (!L.contains(S)) {
          ++ExitEdges;
          if (BB != Header)
            Bad = true;
        }
    if (Bad || ExitEdges != 1)
      continue;

    Out.push_back(std::move(L));
  }

  // Innermost first, so hoisted inner checks can cascade out of enclosing
  // loops in the same pass.
  std::sort(Out.begin(), Out.end(),
            [](const NaturalLoop &A, const NaturalLoop &B) {
              return A.Blocks.size() < B.Blocks.size();
            });
  return Out;
}

//===----------------------------------------------------------------------===//
// Counted loop recognition
//===----------------------------------------------------------------------===//

namespace {

bool fitsWidth(__int128 V, unsigned Bits) {
  if (Bits > 64)
    Bits = 64;
  __int128 Max = (__int128(1) << (Bits - 1)) - 1;
  __int128 Min = -(__int128(1) << (Bits - 1));
  return V >= Min && V <= Max;
}

/// First header phi of the shape [constant Init from the preheader],
/// [phi +/- constant from a latch-side binop]. Shared by the constant and
/// symbolic counted-loop analyzers.
bool findInductionVar(const NaturalLoop &L, PhiInst *&IV, int64_t &Init,
                      int64_t &Step) {
  for (auto &I : *L.Header) {
    auto *Phi = dyn_cast<PhiInst>(I.get());
    if (!Phi)
      break;
    if (Phi->numIncoming() != 2 || !isa<IntType>(Phi->type()))
      continue;
    Value *FromPre = Phi->incomingFor(L.Preheader);
    Value *FromLatch = Phi->incomingFor(L.Latch);
    auto *InitC = FromPre ? dyn_cast<ConstantInt>(FromPre) : nullptr;
    auto *Next = FromLatch ? dyn_cast<BinOpInst>(FromLatch) : nullptr;
    if (!InitC || !Next || !L.contains(Next->parent()))
      continue;
    int64_t S = 0;
    if (Next->opcode() == BinOpInst::Op::Add) {
      if (auto *C = dyn_cast<ConstantInt>(Next->rhs());
          C && Next->lhs() == Phi)
        S = C->value();
      else if (auto *C2 = dyn_cast<ConstantInt>(Next->lhs());
               C2 && Next->rhs() == Phi)
        S = C2->value();
      else
        continue;
    } else if (Next->opcode() == BinOpInst::Op::Sub) {
      auto *C = dyn_cast<ConstantInt>(Next->rhs());
      if (!C || Next->lhs() != Phi)
        continue;
      S = -C->value();
    } else {
      continue;
    }
    if (S == 0)
      continue;
    IV = Phi;
    Init = InitC->value();
    Step = S;
    return true;
  }
  return false;
}

/// The exit comparison's predicate oriented so "Pred(IV, limit) true"
/// means "stay in the loop", with the limit-side operand returned raw.
/// Sign extensions are peeled off the IV side (the frontend widens i32
/// IVs to compare against i64 limits); canonical values are already
/// sign-extended, so the peeled comparison is value-identical.
bool orientExitCondition(const NaturalLoop &L, const BrInst *Br, PhiInst *IV,
                         ICmpInst::Pred &Pred, Value *&LimitSide) {
  bool Negate = false;
  const ICmpInst *Cmp = peelCondition(Br->condition(), Negate);
  if (!Cmp)
    return false;
  Pred = Cmp->pred();
  if (stripSExt(Cmp->lhs()) == IV) {
    LimitSide = Cmp->rhs();
  } else if (stripSExt(Cmp->rhs()) == IV) {
    LimitSide = Cmp->lhs();
    Pred = swapPred(Pred);
  } else {
    return false;
  }
  if (Negate)
    Pred = invertPred(Pred);
  bool TrueStays = L.contains(Br->successor(0));
  bool FalseStays = L.contains(Br->successor(1));
  if (TrueStays == FalseStays)
    return false; // Both or neither in-loop: not the exit branch shape.
  if (!TrueStays)
    Pred = invertPred(Pred);
  return true;
}

} // namespace

bool checkopt::analyzeCountedLoop(const NaturalLoop &L, CountedLoop &Out) {
  // --- Induction variable: header phi = [Init, Preheader], [Next, Latch]
  // with Next = IV +/- constant.
  auto *Br = dyn_cast<BrInst>(L.Header->terminator());
  if (!Br || !Br->isConditional())
    return false;

  PhiInst *IV = nullptr;
  int64_t Init = 0, Step = 0;
  if (!findInductionVar(L, IV, Init, Step))
    return false;

  // --- Exit condition: icmp between the IV and a constant limit.
  ICmpInst::Pred Pred;
  Value *LimitSide = nullptr;
  if (!orientExitCondition(L, Br, IV, Pred, LimitSide))
    return false;
  const auto *LimitC = dyn_cast<ConstantInt>(LimitSide);
  if (!LimitC)
    return false;

  // --- Body count C: number of k >= 0 with pred(Init + k*Step, Limit).
  // Everything is computed in 128-bit: near-full-range i64 constants make
  // Lim - Lo overflow int64, and a wrapped count here would erase live
  // checks as "provably dead".
  const __int128 Lo = Init, Lim = LimitC->value(), S = Step;
  __int128 C = 0;
  using P = ICmpInst::Pred;
  switch (Pred) {
  case P::SLT:
    if (S <= 0)
      return false;
    C = Lo < Lim ? (Lim - Lo + S - 1) / S : 0;
    break;
  case P::SLE:
    if (S <= 0)
      return false;
    C = Lo <= Lim ? (Lim - Lo) / S + 1 : 0;
    break;
  case P::SGT:
    if (S >= 0)
      return false;
    C = Lo > Lim ? (Lo - Lim + (-S) - 1) / (-S) : 0;
    break;
  case P::SGE:
    if (S >= 0)
      return false;
    C = Lo >= Lim ? (Lo - Lim) / (-S) + 1 : 0;
    break;
  case P::ULT:
  case P::ULE:
    // Matches the signed analysis only when both operands stay non-negative.
    if (S <= 0 || Lo < 0 || Lim < 0)
      return false;
    C = Pred == P::ULT ? (Lo < Lim ? (Lim - Lo + S - 1) / S : 0)
                       : (Lo <= Lim ? (Lim - Lo) / S + 1 : 0);
    break;
  case P::UGT:
  case P::UGE:
    if (S >= 0 || Lo < 0 || Lim < 0)
      return false;
    C = Pred == P::UGT ? (Lo > Lim ? (Lo - Lim + (-S) - 1) / (-S) : 0)
                       : (Lo >= Lim ? (Lo - Lim) / (-S) + 1 : 0);
    break;
  case P::NE: {
    // Runs until IV == Limit exactly; anything else never terminates (or
    // wraps), so require an exact hit.
    __int128 Diff = Lim - Lo;
    if (S == 0 || Diff % S != 0 || Diff / S < 0)
      return false;
    C = Diff / S;
    break;
  }
  default:
    return false; // EQ as a continue-condition is degenerate.
  }
  if (C < 0 || C > (__int128(1) << 30))
    return false;

  // --- Wrap check: the real IV arithmetic is Width-bit; our closed form
  // is only valid if no value in Init..Init+C*Step leaves that range.
  unsigned Width = cast<IntType>(IV->type())->bits();
  __int128 ExitIV = Lo + C * S;
  if (!fitsWidth(Lo, Width) || !fitsWidth(ExitIV, Width))
    return false;

  Out.IV = IV;
  Out.Init = Init;
  Out.Step = Step;
  Out.BodyCount = static_cast<int64_t>(C);
  // LastBody lies between Lo and ExitIV, so the width checks above cover it.
  Out.LastBody = C > 0 ? static_cast<int64_t>(Lo + (C - 1) * S) : Init;
  Out.ExitIV = static_cast<int64_t>(ExitIV);
  return true;
}

//===----------------------------------------------------------------------===//
// Symbolic counted-loop recognition
//===----------------------------------------------------------------------===//

bool checkopt::analyzeSymbolicCountedLoop(const NaturalLoop &L,
                                          SymbolicCountedLoop &Out) {
  auto *Br = dyn_cast<BrInst>(L.Header->terminator());
  if (!Br || !Br->isConditional())
    return false;

  PhiInst *IV = nullptr;
  int64_t Init = 0, Step = 0;
  if (!findInductionVar(L, IV, Init, Step))
    return false;
  // Only unit steps: for |Step| > 1 the IV can step *past* the limit and
  // wrap its width before the exit test ever fails, and proving it cannot
  // would need a divisibility guard the emitted window cannot express.
  if (Step != 1 && Step != -1)
    return false;

  ICmpInst::Pred Pred;
  Value *LimitSide = nullptr;
  if (!orientExitCondition(L, Br, IV, Pred, LimitSide))
    return false;

  // The limit: peel value-preserving sign extensions (the peeled value is
  // canonically equal), then require availability on entry. Constants are
  // the constant analyzer's territory.
  Value *Limit = stripSExt(LimitSide);
  if (isa<ConstantInt>(Limit) || !isa<IntType>(Limit->type()) ||
      !L.isInvariant(Limit) || Limit == IV)
    return false;

  unsigned W = cast<IntType>(IV->type())->bits();
  if (W > 64)
    return false;
  const int64_t WMax =
      W >= 64 ? INT64_MAX : (int64_t(1) << (W - 1)) - 1;
  const int64_t WMin = W >= 64 ? INT64_MIN : -(int64_t(1) << (W - 1));
  if (Init < WMin || Init > WMax)
    return false; // Un-canonical hand-built constant: refuse.

  // Per-predicate shape. The LimitMin/LimitMax window guarantees the IV
  // reaches the exit value without leaving [WMin, WMax]: with a unit step
  // the largest value the latch ever computes is the exit value itself
  // (L for SLT, L+1 for SLE; mirrored downward), so bounding L bounds
  // every intermediate.
  using P = ICmpInst::Pred;
  switch (Pred) {
  case P::SLT: // Body IVs [Init, L-1]; exit value L.
    if (Step != 1)
      return false;
    Out.Up = true;
    Out.EndAdj = -1;
    Out.LimitMin = INT64_MIN;
    Out.LimitMax = WMax;
    break;
  case P::SLE: // Body IVs [Init, L]; exit value L+1.
    if (Step != 1)
      return false;
    Out.Up = true;
    Out.EndAdj = 0;
    Out.LimitMin = INT64_MIN;
    Out.LimitMax = WMax == INT64_MAX ? INT64_MAX - 1 : WMax - 1;
    break;
  case P::SGT: // Body IVs [L+1, Init]; exit value L.
    if (Step != -1)
      return false;
    Out.Up = false;
    Out.EndAdj = 1;
    Out.LimitMin = WMin;
    Out.LimitMax = INT64_MAX;
    break;
  case P::SGE: // Body IVs [L, Init]; exit value L-1.
    if (Step != -1)
      return false;
    Out.Up = false;
    Out.EndAdj = 0;
    Out.LimitMin = WMin == INT64_MIN ? INT64_MIN + 1 : WMin + 1;
    Out.LimitMax = INT64_MAX;
    break;
  default:
    // Unsigned and equality predicates: no sound signed interval form
    // under an unknown limit (ULT would additionally need L >= 0 and
    // NE an exact divisibility hit).
    return false;
  }

  Out.IV = IV;
  Out.Init = Init;
  Out.Step = Step;
  Out.Limit = Limit;
  return true;
}

//===----------------------------------------------------------------------===//
// Loop-body safety scan
//===----------------------------------------------------------------------===//

namespace {

/// Calls whose execution can end the run *normally* or resume it somewhere
/// else — the two ways a run could finish cleanly without executing every
/// remaining loop iteration. Traps (division, nested checks, step limits,
/// segfaults) need no exclusion: a trapped run did not complete normally,
/// which is all the hoisting argument relies on.
bool isEscapingBuiltin(const std::string &Name) {
  return Name == "exit" || Name == "setjmp" || Name == "longjmp";
}

/// True when \p F (a defined function) could, transitively, execute an
/// escaping call or an indirect call (unknown callee). Cycles in the call
/// graph are fine: recursion alone cannot escape.
bool calleeMayEscape(Function *F,
                     std::map<Function *, bool> &Memo) {
  auto It = Memo.find(F);
  if (It != Memo.end())
    return It->second;
  Memo[F] = false; // Optimistic for cycles; flipped below if a call escapes.
  for (auto &BB : F->blocks())
    for (auto &IP : *BB) {
      auto *CI = dyn_cast<CallInst>(IP.get());
      if (!CI)
        continue;
      Function *Callee = CI->calledFunction();
      if (!Callee || isEscapingBuiltin(Callee->name()) ||
          (Callee->isDefinition() && calleeMayEscape(Callee, Memo))) {
        Memo[F] = true;
        return true;
      }
    }
  return Memo[F];
}

} // namespace

bool checkopt::loopBodyIsSafe(const NaturalLoop &L) {
  std::map<Function *, bool> Memo;
  for (BasicBlock *BB : L.Blocks)
    for (auto &IP : *BB) {
      auto *CI = dyn_cast<CallInst>(IP.get());
      if (!CI)
        continue;
      Function *Callee = CI->calledFunction();
      if (!Callee) // Indirect call: unknown callee could escape.
        return false;
      if (isEscapingBuiltin(Callee->name()))
        return false;
      if (Callee->isDefinition() && calleeMayEscape(Callee, Memo))
        return false;
    }
  return true;
}
