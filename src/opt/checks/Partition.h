//===- opt/checks/Partition.h - checked-region partitioning -----*- C++ -*-===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Whole-program checked-region partitioning, the `checkopt(partition)`
/// sub-pass. After the intra- and inter-procedural check optimizers have
/// run, many functions retain *no* spatial or function-pointer checks at
/// all — yet they still pay full metadata propagation: every pointer load
/// performs a `meta.load`, every pointer store a `meta.store`, and every
/// call forwards bounds through the shadow frame. On leaf-heavy pointer
/// workloads (bh, perimeter, treeadd) that propagation is now the larger
/// half of simulated cost.
///
/// This pass classifies each defined function as **fully-proven** or
/// **instrumented** (the CheckedCBox-style checked/unchecked split) and
/// strips the metadata instructions from the fully-proven ones. A function
/// is fully-proven only when:
///
///   * every spatial and function-pointer check in it was discharged
///     statically (no SpatialCheckInst/FuncPtrCheckInst remains — a
///     guarded fallback check still counts as a check);
///   * its address never escapes (CallGraph::isAddressTaken is false), so
///     the set of call sites that see its boundary is exactly the direct
///     call sites the CallGraph records;
///   * every `meta.store` it performs targets a provably non-escaping
///     local alloca (metadata no other frame can observe); and
///   * the *stripped-bounds taint* fixpoint holds: once its `meta.load`s
///     are deleted, every bounds value they produced — tracked through
///     phi/select/pack.pb/extract.bounds and across direct calls — stays
///     inside the fully-proven region. A tainted bounds value reaching an
///     instrumented callee, an indirect call, or a caller outside the
///     region (including the harness, via externallyReachable) demotes
///     the function; demotion iterates to the greatest fixpoint.
///
/// The `_sb_` ABI is left untouched: stripped functions keep their bounds
/// parameters and still pass bounds at calls (a shared `make.bounds 0, 0`
/// stands in for deleted metadata loads), so instrumented and proven
/// frames interleave freely. Because caller-set reasoning leans on the
/// closed-module assumption, any stripping records the entry contract via
/// Module::recordInterProcContract — exactly as checkopt(interproc) does —
/// and the Verifier enforces that functions marked uninstrumented contain
/// no metadata instructions.
///
//===----------------------------------------------------------------------===//

#ifndef SOFTBOUND_OPT_CHECKS_PARTITION_H
#define SOFTBOUND_OPT_CHECKS_PARTITION_H

#include "opt/checks/CheckOpt.h"

namespace softbound {
namespace checkopt {

/// Classifies every defined function and strips metadata propagation from
/// the fully-proven ones (see file comment for the proof obligations).
/// Appends one PartitionVerdict per inspected function to \p Stats and
/// bumps the partition counters. Records the inter-procedural entry
/// contract when anything was stripped. Returns the number of metadata
/// instructions removed.
unsigned partitionCheckedRegions(Module &M, CheckOptStats &Stats);

} // namespace checkopt
} // namespace softbound

#endif // SOFTBOUND_OPT_CHECKS_PARTITION_H
