//===- opt/checks/LoopHoist.cpp - loop check hoisting w/ range widening -----===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Replaces per-iteration spatial checks in counted loops with pre-loop
/// checks over the access range's convex hull. The checked address is
/// linearized into `Root + sum(Ak * ivk) + B` bytes, where Root is a
/// loop-invariant pointer, each ivk is the induction variable of the loop
/// being hoisted or of an enclosing counted loop in the same rectangular
/// nest, and the Ak/B are compile-time constants accumulated through
/// bitcasts, GEPs, and affine integer arithmetic. The hull is the pair of
/// addresses at the minimum and maximum of that linear form over the IV
/// box; one check per endpoint goes into the preheader (one total for an
/// invariant address) and the in-loop check is deleted — O(trip count)
/// dynamic checks become O(1), à la CHOP. Hull checks emitted for an inner
/// loop use only constants, so the enclosing loop's pass (loops are
/// processed innermost-first) hoists them again, collapsing a whole nest's
/// checks to two.
///
/// Soundness rests on three proofs, all established before any rewrite:
///
///   1. Exact iteration sets. analyzeCountedLoop() gives each IV sequence;
///      a check's block dominating the latch means the check runs on every
///      completed iteration (header checks also run on the exiting pass,
///      so they widen to the exit IV). loopBodyIsSafe() excludes anything
///      that could keep a normally-completing run from finishing every
///      iteration, and enclosing IVs are only used when the hoisted loop's
///      header dominates the enclosing latch (the nest runs every
///      enclosing iteration). Hence on a clean run the original program
///      itself evaluates checks at both hull corners: the hoisted checks
///      are a subset of the original dynamic checks, moved earlier. A run
///      that would have trapped still traps — though possibly earlier and,
///      when the original trap was of another kind (say, a division by
///      zero three iterations before the out-of-bounds access), as a
///      spatial violation instead. Clean runs are never affected.
///
///   2. Faithful re-evaluation. The linearizer verifies that every
///      intermediate node of the index expression stays inside its bit
///      width over the whole IV box; each node is linear (separable) in
///      the IVs, so its extremes sit at box corners and corner checks
///      cover every iteration. The real (wrapping) arithmetic therefore
///      equals the exact linear value, and the emitted `Root + constant`
///      address is bit-identical to what the deleted check would have
///      computed at that iteration.
///
///   3. Monotonicity. The byte offset is linear over the box, so the two
///      extreme-corner checks imply every intermediate one: an underflow
///      (addr < base) surfaces at the low corner, an overflow
///      (addr + size > bound) at the high one.
///
//===----------------------------------------------------------------------===//

#include "opt/Dominators.h"
#include "opt/checks/CheckOpt.h"
#include "opt/checks/Loops.h"
#include "support/Casting.h"

#include <map>

using namespace softbound;
using namespace softbound::checkopt;

namespace {

/// Offsets are capped well below any simulated address-space distance so
/// 64-bit address arithmetic can never wrap.
constexpr int64_t MaxByteOffset = int64_t(1) << 40;

/// Inclusive range of values an IV takes at the program point of interest.
struct IVRange {
  int64_t Lo = 0;
  int64_t Hi = 0;
};
using IVBox = std::map<const Value *, IVRange>;

/// An integer as an exact linear function B + sum(Coef[iv] * iv) over the
/// IVs of the box.
struct LinExpr {
  std::map<const Value *, int64_t> Coef;
  int64_t B = 0;
};

bool fitsWidth(__int128 V, unsigned Bits) {
  if (Bits >= 64)
    Bits = 64;
  __int128 Max = (__int128(1) << (Bits - 1)) - 1;
  __int128 Min = -(__int128(1) << (Bits - 1));
  return V >= Min && V <= Max;
}

/// Extremes of a (separable) linear form over the box.
void extremes(const LinExpr &E, const IVBox &Box, __int128 &Min,
              __int128 &Max) {
  Min = Max = E.B;
  for (const auto &[IV, A] : E.Coef) {
    const IVRange &R = Box.at(IV);
    Min += __int128(A) * (A >= 0 ? R.Lo : R.Hi);
    Max += __int128(A) * (A >= 0 ? R.Hi : R.Lo);
  }
}

/// Verifies the node's real (width-wrapped) evaluation matches the exact
/// linear value for every point of the box, and that it stays far below
/// the 64-bit wrap guard.
bool boxFits(const LinExpr &E, const IVBox &Box, unsigned Bits) {
  __int128 Min, Max;
  extremes(E, Box, Min, Max);
  return fitsWidth(Min, Bits) && fitsWidth(Max, Bits) &&
         Min >= -MaxByteOffset && Max <= MaxByteOffset;
}

bool addScaled(LinExpr &Acc, const LinExpr &E, int64_t Scale) {
  __int128 B = __int128(Acc.B) + __int128(E.B) * Scale;
  if (!fitsWidth(B, 64))
    return false;
  Acc.B = static_cast<int64_t>(B);
  for (const auto &[IV, A] : E.Coef) {
    __int128 C = __int128(Acc.Coef[IV]) + __int128(A) * Scale;
    if (!fitsWidth(C, 64))
      return false;
    Acc.Coef[IV] = static_cast<int64_t>(C);
  }
  return true;
}

/// Linearizes integer \p V over the IV box. Leaves must be constants or
/// box IVs — a loop-invariant but unknown value cannot contribute to a
/// compile-time hull.
bool linearizeInt(Value *V, const IVBox &Box, LinExpr &Out, int Depth = 0) {
  if (Depth > 16)
    return false;
  if (auto *C = dyn_cast<ConstantInt>(V)) {
    Out = LinExpr{{}, C->value()};
    return true;
  }
  if (Box.count(V)) {
    Out = LinExpr{{{V, 1}}, 0}; // IV values fit their width by construction.
    return true;
  }
  if (auto *Cast = dyn_cast<CastInst>(V)) {
    LinExpr Src;
    if (!linearizeInt(Cast->source(), Box, Src, Depth + 1))
      return false;
    switch (Cast->opcode()) {
    case CastInst::Op::SExt:
      Out = std::move(Src); // Canonical values are already sign-extended.
      return true;
    case CastInst::Op::ZExt: {
      // zext equals the identity only on non-negative values.
      __int128 Min, Max;
      extremes(Src, Box, Min, Max);
      if (Min < 0)
        return false;
      Out = std::move(Src);
      return true;
    }
    default:
      return false; // Trunc/PtrToInt/...: value-changing, reject.
    }
  }
  if (auto *BO = dyn_cast<BinOpInst>(V)) {
    LinExpr L, R;
    if (!linearizeInt(BO->lhs(), Box, L, Depth + 1) ||
        !linearizeInt(BO->rhs(), Box, R, Depth + 1))
      return false;
    LinExpr Res;
    switch (BO->opcode()) {
    case BinOpInst::Op::Add:
      Res = std::move(L);
      if (!addScaled(Res, R, 1))
        return false;
      break;
    case BinOpInst::Op::Sub:
      Res = std::move(L);
      if (!addScaled(Res, R, -1))
        return false;
      break;
    case BinOpInst::Op::Mul: {
      if (!L.Coef.empty() && !R.Coef.empty())
        return false; // Nonlinear in the IVs.
      const LinExpr &Var = L.Coef.empty() ? R : L;
      int64_t K = L.Coef.empty() ? L.B : R.B;
      Res = LinExpr{};
      if (!addScaled(Res, Var, K))
        return false;
      break;
    }
    case BinOpInst::Op::SRem:
    case BinOpInst::Op::URem: {
      // `X % C` is the identity when X provably stays in [0, C): the
      // common power-of-two wrap guard on an index that never wraps.
      if (!R.Coef.empty() || R.B <= 0)
        return false;
      __int128 Min, Max;
      extremes(L, Box, Min, Max);
      if (Min < 0 || Max >= R.B)
        return false;
      Res = std::move(L);
      break;
    }
    default:
      return false;
    }
    unsigned Bits = cast<IntType>(BO->type())->bits();
    if (!boxFits(Res, Box, Bits))
      return false;
    Out = std::move(Res);
    return true;
  }
  return false;
}

/// A pointer as Root (loop-invariant) plus a linear byte offset.
struct LinPtr {
  Value *Root = nullptr;
  LinExpr Off;
};

/// Linearizes pointer \p P through in-loop bitcasts and GEPs down to a
/// loop-invariant root.
bool linearizePtr(Value *P, const NaturalLoop &L, const IVBox &Box,
                  LinPtr &Out, int Depth = 0) {
  if (Depth > 16)
    return false;
  if (L.isInvariant(P)) {
    Out = LinPtr{P, {}};
    return true;
  }
  if (auto *BC = dyn_cast<CastInst>(P);
      BC && BC->opcode() == CastInst::Op::Bitcast)
    return linearizePtr(BC->source(), L, Box, Out, Depth + 1);
  auto *G = dyn_cast<GEPInst>(P);
  if (!G)
    return false;
  if (!linearizePtr(G->pointer(), L, Box, Out, Depth + 1))
    return false;

  Type *Cur = G->sourceType();
  for (unsigned K = 0; K < G->numIndices(); ++K) {
    int64_t Scale;
    if (K == 0) {
      Scale = static_cast<int64_t>(Cur->sizeInBytes());
    } else if (auto *AT = dyn_cast<ArrayType>(Cur)) {
      Scale = static_cast<int64_t>(AT->element()->sizeInBytes());
      Cur = AT->element();
    } else if (auto *ST = dyn_cast<StructType>(Cur)) {
      auto *CI = dyn_cast<ConstantInt>(G->index(K));
      if (!CI)
        return false;
      unsigned FieldIdx = static_cast<unsigned>(CI->value());
      if (FieldIdx >= ST->numFields())
        return false;
      Out.Off.B += static_cast<int64_t>(ST->fieldOffset(FieldIdx));
      Cur = ST->field(FieldIdx);
      continue;
    } else {
      return false;
    }
    LinExpr Idx;
    if (!linearizeInt(G->index(K), Box, Idx))
      return false;
    if (!addScaled(Out.Off, Idx, Scale))
      return false;
  }
  // Final guard: hull offsets stay far from any 64-bit wrap.
  return boxFits(Out.Off, Box, 64);
}

/// Inserts \p I before the terminator of \p BB.
template <typename T> T *insertAtEnd(BasicBlock *BB, T *I) {
  I->setParent(BB);
  BB->insertBefore(std::prev(BB->end()), std::unique_ptr<Instruction>(I));
  return I;
}

/// Per-loop hoisting context, caching the i8* view of each root pointer.
class LoopHoister {
public:
  using LoopOfIV = std::map<const Value *, const NaturalLoop *>;

  LoopHoister(Module &M, const NaturalLoop &L, const CountedLoop &CL,
              const DomTree &DT, const IVBox &Enclosing,
              const LoopOfIV &EnclosingLoops, CheckOptStats &Stats)
      : M(M), L(L), CL(CL), DT(DT), Enclosing(Enclosing),
        EnclosingLoops(EnclosingLoops), Stats(Stats) {}

  void run() {
    for (BasicBlock *BB : L.Blocks)
      if (DT.dominates(BB, L.Latch)) // Checks that run on every iteration.
        hoistInBlock(BB);
  }

private:
  void hoistInBlock(BasicBlock *BB);
  Value *byteView(Value *Root);
  void emitCheck(Value *Root, int64_t ByteOff, const SpatialCheckInst *Proto);

  Module &M;
  const NaturalLoop &L;
  const CountedLoop &CL;
  const DomTree &DT;
  const IVBox &Enclosing; ///< Usable IVs of enclosing counted loops.
  const LoopOfIV &EnclosingLoops; ///< Which loop each enclosing IV drives.
  CheckOptStats &Stats;
  std::map<Value *, Value *> ByteViews;
};

Value *LoopHoister::byteView(Value *Root) {
  auto It = ByteViews.find(Root);
  if (It != ByteViews.end())
    return It->second;
  Type *I8P = M.ctx().ptrTo(M.ctx().i8());
  Value *View = Root;
  if (Root->type() != I8P)
    View = insertAtEnd(L.Preheader,
                       new CastInst(CastInst::Op::Bitcast, Root, I8P,
                                    Root->name() + ".i8"));
  ByteViews[Root] = View;
  return View;
}

void LoopHoister::emitCheck(Value *Root, int64_t ByteOff,
                            const SpatialCheckInst *Proto) {
  Value *Ptr = byteView(Root);
  if (ByteOff != 0)
    Ptr = insertAtEnd(L.Preheader,
                      new GEPInst(cast<PointerType>(Ptr->type()), M.ctx().i8(),
                                  Ptr, {M.constI64(ByteOff)},
                                  Root->name() + ".hull"));
  insertAtEnd(L.Preheader,
              new SpatialCheckInst(Proto->type(), Ptr, Proto->bounds(),
                                   Proto->accessSize(),
                                   Proto->isStoreCheck()));
  ++Stats.HoistedChecksInserted;
}

void LoopHoister::hoistInBlock(BasicBlock *BB) {
  bool InHeader = BB == L.Header;
  for (auto It = BB->begin(); It != BB->end();) {
    auto *Chk = dyn_cast<SpatialCheckInst>(It->get());
    if (!Chk || !L.isInvariant(Chk->bounds())) {
      ++It;
      continue;
    }

    // IV values this check observes: body blocks run for Init..LastBody;
    // the header additionally executes on the exiting pass with ExitIV.
    if (!InHeader && CL.BodyCount == 0) {
      // Provably dead body: the check never executes at all.
      It = BB->erase(It);
      ++Stats.LoopChecksHoisted;
      continue;
    }
    int64_t IvLast = InHeader ? CL.ExitIV : CL.LastBody;
    IVBox Box = Enclosing;
    Box[CL.IV] = IVRange{std::min(CL.Init, IvLast), std::max(CL.Init, IvLast)};

    Value *P = Chk->pointer();
    if (L.isInvariant(P)) {
      insertAtEnd(L.Preheader,
                  new SpatialCheckInst(Chk->type(), P, Chk->bounds(),
                                       Chk->accessSize(),
                                       Chk->isStoreCheck()));
      ++Stats.HoistedChecksInserted;
      ++Stats.LoopChecksHoisted;
      It = BB->erase(It);
      continue;
    }

    LinPtr LP;
    if (!linearizePtr(P, L, Box, LP)) {
      ++It;
      continue;
    }
    // Widening over an enclosing IV is only sound when the root pointer
    // and bounds are themselves invariant in that enclosing loop:
    // otherwise the corner check would pair the *current* iteration's root
    // with another iteration's offset — an address the original program
    // never computes.
    bool EnclosingOk = true;
    for (const auto &[IV, A] : LP.Off.Coef) {
      if (A == 0 || IV == CL.IV)
        continue;
      const NaturalLoop *E = EnclosingLoops.at(IV);
      if (!E->isInvariant(LP.Root) || !E->isInvariant(Chk->bounds())) {
        EnclosingOk = false;
        break;
      }
    }
    if (!EnclosingOk) {
      ++It;
      continue;
    }
    __int128 Min, Max;
    extremes(LP.Off, Box, Min, Max);
    emitCheck(LP.Root, static_cast<int64_t>(Min), Chk);
    if (Max != Min)
      emitCheck(LP.Root, static_cast<int64_t>(Max), Chk);
    ++Stats.LoopChecksHoisted;
    It = BB->erase(It);
  }
}

} // namespace

namespace softbound {
namespace checkopt {

void hoistLoopChecks(Function &F, CheckOptStats &Stats) {
  if (!F.isDefinition())
    return;
  DomTree DT(F);
  std::vector<NaturalLoop> Loops = findSimpleLoops(F, DT);
  Stats.LoopsAnalyzed += Loops.size();
  Module &M = *F.parent();

  // Counted-loop analysis and body-safety for every loop up front, so each
  // loop can borrow the IV ranges of its safe counted ancestors.
  std::vector<CountedLoop> Counted(Loops.size());
  std::vector<bool> Usable(Loops.size());
  for (size_t I = 0; I < Loops.size(); ++I) {
    if (!analyzeCountedLoop(Loops[I], Counted[I]))
      continue;
    ++Stats.LoopsCounted;
    Usable[I] = loopBodyIsSafe(Loops[I]);
  }

  for (size_t I = 0; I < Loops.size(); ++I) {
    if (!Usable[I])
      continue;
    const NaturalLoop &L = Loops[I];
    // Enclosing counted loops whose every iteration runs this loop in
    // full: the nest is rectangular, so their IV ranges may widen hulls
    // (subject to the per-check root/bounds invariance test above).
    IVBox Enclosing;
    LoopHoister::LoopOfIV EnclosingLoops;
    for (size_t E = 0; E < Loops.size(); ++E) {
      if (E == I || !Usable[E] || !Loops[E].contains(L.Header) ||
          Counted[E].BodyCount <= 0)
        continue;
      if (!DT.dominates(L.Header, Loops[E].Latch))
        continue;
      const CountedLoop &CE = Counted[E];
      Enclosing[CE.IV] = IVRange{std::min(CE.Init, CE.LastBody),
                                 std::max(CE.Init, CE.LastBody)};
      EnclosingLoops[CE.IV] = &Loops[E];
    }
    LoopHoister(M, L, Counted[I], DT, Enclosing, EnclosingLoops, Stats)
        .run();
  }
}

} // namespace checkopt
} // namespace softbound
