//===- opt/checks/LoopHoist.cpp - loop check hoisting w/ range widening -----===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Replaces per-iteration spatial checks in counted loops with pre-loop
/// checks over the access range's convex hull. The checked address is
/// linearized into `Root + sum(Ak * ivk) + B` bytes, where Root is a
/// loop-invariant pointer, each ivk is the induction variable of the loop
/// being hoisted or of an enclosing counted loop in the same rectangular
/// nest, and the Ak/B are compile-time constants accumulated through
/// bitcasts, GEPs, and affine integer arithmetic. The hull is the pair of
/// addresses at the minimum and maximum of that linear form over the IV
/// box; one check per endpoint goes into the preheader (one total for an
/// invariant address) and the in-loop check is deleted — O(trip count)
/// dynamic checks become O(1), à la CHOP. Hull checks emitted for an inner
/// loop stay invariant in enclosing loops, so the enclosing loop's pass
/// (loops are processed innermost-first) hoists them again, collapsing a
/// whole nest's checks to two.
///
/// **Run-time limits.** Loops counted by a loop-invariant *symbolic* limit
/// (`for (i = 0; i < n; i++)` — Loops.h SymbolicCountedLoop) hoist too:
/// the IV box spans become affine in the limit's run-time value L
/// (`C + K*L`), the hull corner offsets are materialized in the preheader
/// as `Root + (K*L + C)` bytes, and every proof the constant case makes
/// statically becomes a *window* [WLo, WHi] of L values for which it
/// holds: at least one body iteration runs (the trip test — zero-trip
/// loops must perform no check), the IV reaches the exit without wrapping
/// its width, every intermediate node of the index expression stays inside
/// its bit width over the box, and the emitted i64 hull arithmetic cannot
/// wrap (the former compile-time far-from-wrap guard, now a dynamic
/// branch). The window becomes an i1 *guard*: hull checks execute only
/// when L is inside it, and the original in-loop check survives as a
/// fallback guarded by the window's complement — outside the window the
/// loop simply keeps its unmodified per-iteration checking. When the
/// limit is a function argument whose inter-procedurally propagated range
/// (checkopt(interproc)'s top-down argument ranges) lies inside the
/// window, the guard is discharged statically: unguarded hulls, no
/// fallback — and the module records the whole-program contract the range
/// proof leaned on (Module::recordInterProcContract).
///
/// Soundness rests on the same three proofs as the constant case, all
/// established before any rewrite and conditioned on the window:
///
///   1. Exact iteration sets. analyzeCountedLoop() /
///      analyzeSymbolicCountedLoop() give each IV sequence; a check's
///      block dominating the latch means the check runs on every
///      completed iteration (header checks widen to the exit IV; for
///      symbolic loops header checks are skipped — they run even on
///      zero-trip passes). loopBodyIsSafe() excludes anything that could
///      keep a normally-completing run from finishing every iteration,
///      and enclosing IVs are only used when the hoisted loop's header
///      dominates the enclosing latch. Hence on a clean run inside the
///      window the original program itself evaluates checks at both hull
///      corners: the hoisted checks are a subset of the original dynamic
///      checks, moved earlier. Outside the window the fallback checks are
///      the original checks, unmoved. A run that would have trapped still
///      traps — though possibly earlier and, when the original trap was
///      of another kind, as a spatial violation instead. Clean runs are
///      never affected.
///
///   2. Faithful re-evaluation. The linearizer verifies (for every L in
///      the window) that every intermediate node of the index expression
///      stays inside its bit width over the whole IV box; each node is
///      linear (separable) in the IVs, so its extremes sit at box corners
///      and corner checks cover every iteration. The real (wrapping)
///      arithmetic therefore equals the exact linear value, and the
///      emitted `Root + (K*L + C)` address is bit-identical to what the
///      deleted check would have computed at that iteration.
///
///   3. Monotonicity. The byte offset is linear over the box, so the two
///      extreme-corner checks imply every intermediate one: an underflow
///      (addr < base) surfaces at the low corner, an overflow
///      (addr + size > bound) at the high one.
///
/// Guarded checks are invisible to the other static passes (they may not
/// execute, so they prove nothing — see RedundantChecks.cpp and
/// InterProc.cpp); only this pass, which owns their guards, re-hoists
/// them out of enclosing loops. Re-hoisting moves the guard computation
/// and hull address chain (pure, non-trapping instructions over
/// enclosing-invariant leaves) into the enclosing preheader, so nests of
/// any depth still collapse to O(1) checks; hoisting out of an enclosing
/// *symbolic* loop conjoins that loop's exact trip test (trip false <=>
/// the inner preheader never ran) onto the moved guard.
///
//===----------------------------------------------------------------------===//

#include "opt/Dominators.h"
#include "opt/checks/CheckOpt.h"
#include "opt/checks/InterProc.h"
#include "opt/checks/Loops.h"
#include "opt/checks/RangeAnalysis.h"
#include "support/Casting.h"

#include <algorithm>
#include <map>
#include <set>
#include <tuple>
#include <vector>

using namespace softbound;
using namespace softbound::checkopt;

namespace {

/// Offsets are capped well below any simulated address-space distance so
/// 64-bit address arithmetic can never wrap.
constexpr int64_t MaxByteOffset = int64_t(1) << 40;

/// Bound on the |K * L| product term of an emitted hull offset: far from
/// the i64 edge, so `mul` and the following `add` cannot wrap.
constexpr int64_t MaxProductTerm = int64_t(1) << 62;

bool fitsWidth(__int128 V, unsigned Bits) {
  if (Bits >= 64)
    Bits = 64;
  __int128 Max = (__int128(1) << (Bits - 1)) - 1;
  __int128 Min = -(__int128(1) << (Bits - 1));
  return V >= Min && V <= Max;
}

__int128 widthMin(unsigned Bits) {
  if (Bits >= 64)
    Bits = 64;
  return -(__int128(1) << (Bits - 1));
}
__int128 widthMax(unsigned Bits) {
  if (Bits >= 64)
    Bits = 64;
  return (__int128(1) << (Bits - 1)) - 1;
}

__int128 floorDiv(__int128 A, __int128 B) { // B > 0
  __int128 Q = A / B;
  return Q * B > A ? Q - 1 : Q;
}
__int128 ceilDiv(__int128 A, __int128 B) { // B > 0
  __int128 Q = A / B;
  return Q * B < A ? Q + 1 : Q;
}

/// A value affine in the symbolic limit's run-time value L: C + K * L.
/// K == 0 is the compile-time-constant case.
struct AffVal {
  __int128 C = 0;
  int64_t K = 0;
  bool isConst() const { return K == 0; }
};

/// Inclusive IV span over the box; at most one dimension of a box is
/// affine (the one driven by the symbolic limit).
struct IVSpan {
  AffVal Lo, Hi;
};
using IVBox = std::map<const Value *, IVSpan>;

/// The window of L values for which every accumulated proof obligation
/// holds, intersected constraint by constraint. Constant obligations
/// (K == 0) either hold for every L or empty the window outright.
struct LimitWindow {
  int64_t Lo = INT64_MIN;
  int64_t Hi = INT64_MAX;
  bool Empty = false;

  void clampLo(__int128 V) {
    if (V > INT64_MAX) {
      Empty = true;
      return;
    }
    if (V > Lo)
      Lo = static_cast<int64_t>(V);
    if (Lo > Hi)
      Empty = true;
  }
  void clampHi(__int128 V) {
    if (V < INT64_MIN) {
      Empty = true;
      return;
    }
    if (V < Hi)
      Hi = static_cast<int64_t>(V);
    if (Lo > Hi)
      Empty = true;
  }
  bool bounded() const { return Lo > INT64_MIN || Hi < INT64_MAX; }
};

/// Requires A(L) >= Min for every L in the window (narrowing the window
/// to exactly the L values satisfying it).
void requireMin(LimitWindow &Win, const AffVal &A, __int128 Min) {
  if (A.K == 0) {
    if (A.C < Min)
      Win.Empty = true;
  } else if (A.K > 0) {
    Win.clampLo(ceilDiv(Min - A.C, A.K));
  } else {
    Win.clampHi(floorDiv(A.C - Min, -__int128(A.K)));
  }
}

/// Requires A(L) <= Max for every L in the window.
void requireMax(LimitWindow &Win, const AffVal &A, __int128 Max) {
  if (A.K == 0) {
    if (A.C > Max)
      Win.Empty = true;
  } else if (A.K > 0) {
    Win.clampHi(floorDiv(Max - A.C, A.K));
  } else {
    Win.clampLo(ceilDiv(A.C - Max, -__int128(A.K)));
  }
}

/// An integer as an exact linear function B + sum(Coef[iv] * iv) over the
/// IVs of the box.
struct LinExpr {
  std::map<const Value *, int64_t> Coef;
  int64_t B = 0;
};

/// Extremes of a (separable) linear form over the box, as affine
/// functions of L. False when a coefficient combination escapes i64.
bool extremes(const LinExpr &E, const IVBox &Box, AffVal &Min, AffVal &Max) {
  __int128 MinC = E.B, MaxC = E.B, MinK = 0, MaxK = 0;
  for (const auto &[IV, A] : E.Coef) {
    const IVSpan &S = Box.at(IV);
    const AffVal &ForMin = A >= 0 ? S.Lo : S.Hi;
    const AffVal &ForMax = A >= 0 ? S.Hi : S.Lo;
    MinC += __int128(A) * ForMin.C;
    MaxC += __int128(A) * ForMax.C;
    MinK += __int128(A) * ForMin.K;
    MaxK += __int128(A) * ForMax.K;
  }
  if (!fitsWidth(MinK, 64) || !fitsWidth(MaxK, 64))
    return false;
  Min = AffVal{MinC, static_cast<int64_t>(MinK)};
  Max = AffVal{MaxC, static_cast<int64_t>(MaxK)};
  return true;
}

/// Requires the node's real (width-wrapped) evaluation to match the exact
/// linear value for every point of the box and every L in the window, and
/// to stay far below the 64-bit wrap guard. Narrows the window; empties
/// it when no L qualifies.
bool boxFits(const LinExpr &E, const IVBox &Box, unsigned Bits,
             LimitWindow &Win) {
  AffVal Min, Max;
  if (!extremes(E, Box, Min, Max))
    return false;
  __int128 Lo = std::max<__int128>(widthMin(Bits), -__int128(MaxByteOffset));
  __int128 Hi = std::min<__int128>(widthMax(Bits), MaxByteOffset);
  requireMin(Win, Min, Lo);
  requireMax(Win, Max, Hi);
  return !Win.Empty;
}

bool addScaled(LinExpr &Acc, const LinExpr &E, int64_t Scale) {
  __int128 B = __int128(Acc.B) + __int128(E.B) * Scale;
  if (!fitsWidth(B, 64))
    return false;
  Acc.B = static_cast<int64_t>(B);
  for (const auto &[IV, A] : E.Coef) {
    __int128 C = __int128(Acc.Coef[IV]) + __int128(A) * Scale;
    if (!fitsWidth(C, 64))
      return false;
    Acc.Coef[IV] = static_cast<int64_t>(C);
  }
  return true;
}

/// Linearizes integer \p V over the IV box, accumulating proof-obligation
/// constraints on L into \p Win. Leaves must be constants or box IVs — a
/// loop-invariant but unknown value (other than the limit itself, which
/// only enters through span endpoints) cannot contribute to a hull.
/// Every box dimension the expression *touches* is recorded in \p Used —
/// including dimensions whose coefficient later cancels: any per-node
/// obligation was evaluated over that dimension's span, whose validity
/// needs the owning loop's wrap window.
bool linearizeInt(Value *V, const IVBox &Box, LimitWindow &Win,
                  std::set<const Value *> &Used, LinExpr &Out,
                  int Depth = 0) {
  if (Depth > 16)
    return false;
  if (auto *C = dyn_cast<ConstantInt>(V)) {
    Out = LinExpr{{}, C->value()};
    return true;
  }
  if (Box.count(V)) {
    Used.insert(V);
    Out = LinExpr{{{V, 1}}, 0}; // IV values fit their width by construction.
    return true;
  }
  if (auto *Cast = dyn_cast<CastInst>(V)) {
    LinExpr Src;
    if (!linearizeInt(Cast->source(), Box, Win, Used, Src, Depth + 1))
      return false;
    switch (Cast->opcode()) {
    case CastInst::Op::SExt:
      Out = std::move(Src); // Canonical values are already sign-extended.
      return true;
    case CastInst::Op::ZExt: {
      // zext equals the identity only on non-negative values.
      AffVal Min, Max;
      if (!extremes(Src, Box, Min, Max))
        return false;
      requireMin(Win, Min, 0);
      if (Win.Empty)
        return false;
      Out = std::move(Src);
      return true;
    }
    default:
      return false; // Trunc/PtrToInt/...: value-changing, reject.
    }
  }
  if (auto *BO = dyn_cast<BinOpInst>(V)) {
    LinExpr L, R;
    if (!linearizeInt(BO->lhs(), Box, Win, Used, L, Depth + 1) ||
        !linearizeInt(BO->rhs(), Box, Win, Used, R, Depth + 1))
      return false;
    LinExpr Res;
    switch (BO->opcode()) {
    case BinOpInst::Op::Add:
      Res = std::move(L);
      if (!addScaled(Res, R, 1))
        return false;
      break;
    case BinOpInst::Op::Sub:
      Res = std::move(L);
      if (!addScaled(Res, R, -1))
        return false;
      break;
    case BinOpInst::Op::Mul: {
      if (!L.Coef.empty() && !R.Coef.empty())
        return false; // Nonlinear in the IVs.
      const LinExpr &Var = L.Coef.empty() ? R : L;
      int64_t K = L.Coef.empty() ? L.B : R.B;
      Res = LinExpr{};
      if (!addScaled(Res, Var, K))
        return false;
      break;
    }
    case BinOpInst::Op::SRem:
    case BinOpInst::Op::URem: {
      // `X % C` is the identity when X provably stays in [0, C): the
      // common power-of-two wrap guard on an index that never wraps.
      if (!R.Coef.empty() || R.B <= 0)
        return false;
      AffVal Min, Max;
      if (!extremes(L, Box, Min, Max))
        return false;
      requireMin(Win, Min, 0);
      requireMax(Win, Max, R.B - 1);
      if (Win.Empty)
        return false;
      Res = std::move(L);
      break;
    }
    default:
      return false;
    }
    unsigned Bits = cast<IntType>(BO->type())->bits();
    if (!boxFits(Res, Box, Bits, Win))
      return false;
    Out = std::move(Res);
    return true;
  }
  return false;
}

/// A pointer as Root (loop-invariant) plus a linear byte offset.
struct LinPtr {
  Value *Root = nullptr;
  LinExpr Off;
};

/// Linearizes pointer \p P through in-loop bitcasts and GEPs down to a
/// loop-invariant root, narrowing \p Win with every node's obligations
/// and recording every box dimension touched in \p Used.
bool linearizePtr(Value *P, const NaturalLoop &L, const IVBox &Box,
                  LimitWindow &Win, std::set<const Value *> &Used, LinPtr &Out,
                  int Depth = 0) {
  if (Depth > 16)
    return false;
  if (L.isInvariant(P)) {
    Out = LinPtr{P, {}};
    return true;
  }
  if (auto *BC = dyn_cast<CastInst>(P);
      BC && BC->opcode() == CastInst::Op::Bitcast)
    return linearizePtr(BC->source(), L, Box, Win, Used, Out, Depth + 1);
  auto *G = dyn_cast<GEPInst>(P);
  if (!G)
    return false;
  if (!linearizePtr(G->pointer(), L, Box, Win, Used, Out, Depth + 1))
    return false;

  Type *Cur = G->sourceType();
  for (unsigned K = 0; K < G->numIndices(); ++K) {
    int64_t Scale;
    if (K == 0) {
      Scale = static_cast<int64_t>(Cur->sizeInBytes());
    } else if (auto *AT = dyn_cast<ArrayType>(Cur)) {
      Scale = static_cast<int64_t>(AT->element()->sizeInBytes());
      Cur = AT->element();
    } else if (auto *ST = dyn_cast<StructType>(Cur)) {
      auto *CI = dyn_cast<ConstantInt>(G->index(K));
      if (!CI)
        return false;
      unsigned FieldIdx = static_cast<unsigned>(CI->value());
      if (FieldIdx >= ST->numFields())
        return false;
      Out.Off.B += static_cast<int64_t>(ST->fieldOffset(FieldIdx));
      Cur = ST->field(FieldIdx);
      continue;
    } else {
      return false;
    }
    LinExpr Idx;
    if (!linearizeInt(G->index(K), Box, Win, Used, Idx))
      return false;
    if (!addScaled(Out.Off, Idx, Scale))
      return false;
  }
  // Final guard: hull offsets stay far from any 64-bit wrap.
  return boxFits(Out.Off, Box, 64, Win);
}

/// Inserts \p I before the terminator of \p BB.
template <typename T> T *insertAtEnd(BasicBlock *BB, T *I) {
  I->setParent(BB);
  BB->insertBefore(std::prev(BB->end()), std::unique_ptr<Instruction>(I));
  return I;
}

/// True when moving \p I to a dominating block cannot change behaviour:
/// pure and unable to trap (divisions stay put).
bool isSpeculatable(const Instruction *I) {
  switch (I->kind()) {
  case ValueKind::GEP:
  case ValueKind::Cast:
  case ValueKind::ICmp:
  case ValueKind::Select:
    return true;
  case ValueKind::BinOp:
    switch (cast<BinOpInst>(I)->opcode()) {
    case BinOpInst::Op::SDiv:
    case BinOpInst::Op::UDiv:
    case BinOpInst::Op::SRem:
    case BinOpInst::Op::URem:
      return false; // May trap on a zero divisor.
    default:
      return true;
    }
  default:
    return false;
  }
}

/// How each loop of the function was classified.
struct LoopShape {
  bool Constant = false;
  bool Symbolic = false;
  bool Usable = false; ///< Shape recognized and body safe.
  CountedLoop CL;
  SymbolicCountedLoop SCL;
};

/// Per-loop hoisting context, caching the i8* view of each root pointer,
/// the widened limit value, and the emitted guard values.
class LoopHoister {
public:
  using LoopOfIV = std::map<const Value *, const NaturalLoop *>;
  using ArgRangeMap = std::map<const Argument *, IntRange>;

  LoopHoister(Module &M, const NaturalLoop &L, const LoopShape &Shape,
              const DomTree &DT, const IVBox &Enclosing,
              const LoopOfIV &EnclosingLoops,
              const SymbolicCountedLoop *AncestorSym,
              const ArgRangeMap *ArgRanges, bool *DischargeUsed,
              CheckOptStats &Stats)
      : M(M), L(L), Shape(Shape), DT(DT), Enclosing(Enclosing),
        EnclosingLoops(EnclosingLoops), AncestorSym(AncestorSym),
        ArgRanges(ArgRanges), DischargeUsed(DischargeUsed), Stats(Stats) {
    if (Shape.Symbolic)
      Symbol = Shape.SCL.Limit;
    else if (AncestorSym)
      Symbol = AncestorSym->Limit;
  }

  void run() {
    for (BasicBlock *BB : L.Blocks) {
      if (!DT.dominates(BB, L.Latch)) // Checks that run on every iteration.
        continue;
      // Symbolic loops: header checks also run on the (possibly zero-trip)
      // exiting pass, whose IV is the limit itself — leave them alone.
      if (Shape.Symbolic && BB == L.Header)
        continue;
      hoistInBlock(BB);
    }
  }

private:
  void hoistInBlock(BasicBlock *BB);
  Value *byteView(Value *Root);
  Value *limit64();
  Value *guardFor(const LimitWindow &Win);
  Value *notOf(Value *G);
  Value *tripWindowGuard();
  void emitHull(Value *Root, const AffVal &Off, const SpatialCheckInst *Proto,
                Value *Guard);
  bool collectAvailChain(Value *V, std::vector<Instruction *> &PostOrder,
                         std::set<const Value *> &Visited, int Budget);
  void commitAvailChain(const std::vector<Instruction *> &PostOrder);

  /// The trip constraint on L: at least one body iteration runs. A
  /// half-line, exact in both directions (false <=> the body never runs).
  LimitWindow tripWindow() const {
    LimitWindow W;
    int64_t Edge = Shape.SCL.Init - Shape.SCL.EndAdj;
    if (Shape.SCL.Up)
      W.clampLo(Edge);
    else
      W.clampHi(Edge);
    return W;
  }

  /// The inter-procedural argument range of the symbol, or an empty
  /// IntRange when unknown.
  IntRange symbolRange() const {
    if (!ArgRanges || !Symbol)
      return IntRange();
    auto *A = dyn_cast<Argument>(Symbol);
    if (!A)
      return IntRange();
    auto It = ArgRanges->find(A);
    return It == ArgRanges->end() ? IntRange() : It->second;
  }

  /// True when the propagated symbol range proves every L lands inside
  /// \p Win — the static discharge of the trip/wrap guard.
  bool rangeDischarges(const LimitWindow &Win) const {
    IntRange R = symbolRange();
    return !R.empty() && !R.isFull() && R.Lo >= Win.Lo && R.Hi <= Win.Hi;
  }

  Module &M;
  const NaturalLoop &L;
  const LoopShape &Shape;
  const DomTree &DT;
  const IVBox &Enclosing; ///< Usable IVs of enclosing counted loops.
  const LoopOfIV &EnclosingLoops; ///< Which loop each enclosing IV drives.
  const SymbolicCountedLoop *AncestorSym; ///< Symbolic ancestor dim, if any.
  const ArgRangeMap *ArgRanges;           ///< Interproc argument ranges.
  bool *DischargeUsed; ///< Out-flag: a range proof was relied on.
  CheckOptStats &Stats;
  Value *Symbol = nullptr; ///< The one symbolic limit usable here.
  std::map<Value *, Value *> ByteViews;
  Value *Lim64 = nullptr;
  std::map<std::pair<int64_t, int64_t>, Value *> Guards;
  std::map<Value *, Value *> NotGuards;
  /// Hull emission dedup: (root, C, K, bounds, guard) -> strongest
  /// (size, is-store) already emitted for that address.
  std::map<std::tuple<Value *, int64_t, int64_t, Value *, Value *>,
           std::pair<uint64_t, bool>>
      Emitted;
};

Value *LoopHoister::byteView(Value *Root) {
  auto It = ByteViews.find(Root);
  if (It != ByteViews.end())
    return It->second;
  Type *I8P = M.ctx().ptrTo(M.ctx().i8());
  Value *View = Root;
  if (Root->type() != I8P)
    View = insertAtEnd(L.Preheader,
                       new CastInst(CastInst::Op::Bitcast, Root, I8P,
                                    Root->name() + ".i8"));
  ByteViews[Root] = View;
  return View;
}

Value *LoopHoister::limit64() {
  if (Lim64)
    return Lim64;
  Type *I64 = M.ctx().i64();
  Lim64 = Symbol;
  if (Symbol->type() != I64)
    Lim64 = insertAtEnd(L.Preheader, new CastInst(CastInst::Op::SExt, Symbol,
                                                  I64, "lim64"));
  return Lim64;
}

/// Materializes the window test `WLo <= L && L <= WHi` in the preheader.
/// A half already implied by the limit's own bit width (canonical values
/// always lie inside it) is elided; null when the whole window is.
Value *LoopHoister::guardFor(const LimitWindow &Win) {
  unsigned LBits = cast<IntType>(Symbol->type())->bits();
  bool NeedLo = Win.Lo > widthMin(LBits);
  bool NeedHi = Win.Hi < widthMax(LBits);
  auto Key = std::make_pair(NeedLo ? Win.Lo : INT64_MIN,
                            NeedHi ? Win.Hi : INT64_MAX);
  auto It = Guards.find(Key);
  if (It != Guards.end())
    return It->second;
  Type *I1 = M.ctx().i1();
  Value *G = nullptr;
  if (NeedLo)
    G = insertAtEnd(L.Preheader,
                    new ICmpInst(ICmpInst::Pred::SGE, limit64(),
                                 M.constI64(Win.Lo), I1, "hull.glo"));
  if (NeedHi) {
    Value *Hi = insertAtEnd(L.Preheader,
                            new ICmpInst(ICmpInst::Pred::SLE, limit64(),
                                         M.constI64(Win.Hi), I1, "hull.ghi"));
    G = G ? insertAtEnd(L.Preheader,
                        new BinOpInst(BinOpInst::Op::And, G, Hi, "hull.g"))
          : Hi;
  }
  Guards[Key] = G;
  return G;
}

Value *LoopHoister::notOf(Value *G) {
  auto It = NotGuards.find(G);
  if (It != NotGuards.end())
    return It->second;
  Value *N = insertAtEnd(L.Preheader,
                         new BinOpInst(BinOpInst::Op::Xor, G,
                                       M.constI1(true), "hull.ng"));
  NotGuards[G] = N;
  return N;
}

/// The exact "body runs at least once" test of a symbolic loop, for
/// conjoining onto guards of checks moved out of it.
Value *LoopHoister::tripWindowGuard() { return guardFor(tripWindow()); }

void LoopHoister::emitHull(Value *Root, const AffVal &Off,
                           const SpatialCheckInst *Proto, Value *Guard) {
  // Guard identity participates in the dedup key through the guard Value
  // itself (guardFor caches per window, so equal windows share a Value).
  auto Key = std::make_tuple(Root, static_cast<int64_t>(Off.C), Off.K,
                             Proto->bounds(), Guard);
  auto It = Emitted.find(Key);
  if (It != Emitted.end() && It->second.first >= Proto->accessSize() &&
      (It->second.second || !Proto->isStoreCheck()))
    return; // An equal-or-stronger hull for these bytes already exists.

  Value *Ptr = byteView(Root);
  if (!Off.isConst()) {
    Value *OffV = insertAtEnd(
        L.Preheader, new BinOpInst(BinOpInst::Op::Mul, limit64(),
                                   M.constI64(Off.K), Root->name() + ".kxl"));
    if (Off.C != 0)
      OffV = insertAtEnd(L.Preheader,
                         new BinOpInst(BinOpInst::Op::Add, OffV,
                                       M.constI64(static_cast<int64_t>(Off.C)),
                                       Root->name() + ".off"));
    Ptr = insertAtEnd(L.Preheader,
                      new GEPInst(cast<PointerType>(Ptr->type()), M.ctx().i8(),
                                  Ptr, {OffV}, Root->name() + ".hull"));
  } else if (Off.C != 0) {
    Ptr = insertAtEnd(L.Preheader,
                      new GEPInst(cast<PointerType>(Ptr->type()), M.ctx().i8(),
                                  Ptr, {M.constI64(static_cast<int64_t>(Off.C))},
                                  Root->name() + ".hull"));
  }
  insertAtEnd(L.Preheader,
              new SpatialCheckInst(Proto->type(), Ptr, Proto->bounds(),
                                   Proto->accessSize(), Proto->isStoreCheck(),
                                   Guard));
  Emitted[Key] = {std::max(It == Emitted.end() ? 0 : It->second.first,
                           Proto->accessSize()),
                  (It != Emitted.end() && It->second.second) ||
                      Proto->isStoreCheck()};
  ++Stats.HoistedChecksInserted;
  if (Guard)
    ++Stats.RuntimeHullChecks;
}

/// Collects the in-loop instructions (operands-first) that must move to
/// the preheader for \p V to be available there. Every node must be pure,
/// non-trapping, and rooted in loop-invariant leaves. Returns false when
/// \p V cannot be made available.
bool LoopHoister::collectAvailChain(Value *V,
                                    std::vector<Instruction *> &PostOrder,
                                    std::set<const Value *> &Visited,
                                    int Budget) {
  if (L.isInvariant(V))
    return true;
  if (Visited.count(V))
    return true;
  if (static_cast<int>(PostOrder.size()) >= Budget)
    return false;
  auto *I = dyn_cast<Instruction>(V);
  if (!I || !isSpeculatable(I))
    return false;
  Visited.insert(V);
  for (Value *Op : I->operands())
    if (!collectAvailChain(Op, PostOrder, Visited, Budget))
      return false;
  PostOrder.push_back(I);
  return true;
}

void LoopHoister::commitAvailChain(const std::vector<Instruction *> &PostOrder) {
  auto &Target = L.Preheader->instructions();
  for (Instruction *I : PostOrder) {
    BasicBlock *From = I->parent();
    auto &Src = From->instructions();
    for (auto It = Src.begin(); It != Src.end(); ++It) {
      if (It->get() != I)
        continue;
      Target.splice(std::prev(Target.end()), Src, It);
      I->setParent(L.Preheader);
      break;
    }
  }
}

void LoopHoister::hoistInBlock(BasicBlock *BB) {
  bool InHeader = BB == L.Header;
  for (auto It = BB->begin(); It != BB->end();) {
    auto *Chk = dyn_cast<SpatialCheckInst>(It->get());
    if (!Chk || !L.isInvariant(Chk->bounds())) {
      ++It;
      continue;
    }

    if (Shape.Constant && !InHeader && Shape.CL.BodyCount == 0) {
      // Provably dead body: the check never executes at all.
      It = BB->erase(It);
      ++Stats.LoopChecksHoisted;
      continue;
    }

    // --- Path 1: pointer (and guard) available on entry, possibly after
    // moving a pure chain. Covers plain invariant checks and the guarded
    // hull checks an inner loop's pass planted in its preheader.
    {
      Value *P = Chk->pointer();
      Value *G = Chk->guard();
      std::vector<Instruction *> Chain;
      std::set<const Value *> Visited;
      bool Avail = collectAvailChain(P, Chain, Visited, 64) &&
                   (!G || collectAvailChain(G, Chain, Visited, 64));
      if (Avail) {
        // Splice the moved chain in FIRST: everything emitted below (the
        // trip test, the conjoined guard, the hoisted check) must follow
        // the chain's definitions in the preheader, or the And would read
        // its guard operand before it is computed.
        commitAvailChain(Chain);
        Value *NewGuard = G;
        bool Discharged = false;
        if (Shape.Symbolic) {
          // A check hoisted out of a symbolic loop must not run on a
          // zero-trip pass: conjoin the *exact* trip test (false <=> the
          // body, and hence the original check, never executed) — unless
          // the propagated argument range settles it.
          IntRange R = symbolRange();
          LimitWindow TW = tripWindow();
          if (!R.empty() && !R.isFull() &&
              (Shape.SCL.Up ? R.Hi < TW.Lo : R.Lo > TW.Hi)) {
            // Provably zero-trip at every call site: the check is dead.
            It = BB->erase(It);
            ++Stats.LoopChecksHoisted;
            ++Stats.RuntimeGuardsDischarged;
            if (DischargeUsed)
              *DischargeUsed = true;
            continue;
          }
          if (rangeDischarges(TW)) {
            Discharged = true;
          } else if (Value *Trip = tripWindowGuard()) {
            NewGuard =
                G ? insertAtEnd(L.Preheader, new BinOpInst(BinOpInst::Op::And,
                                                           Trip, G, "hull.g"))
                  : Trip;
          }
          // A null trip guard means the window is the limit's whole width:
          // the loop provably runs, so the original guard (if any) stands.
        }
        insertAtEnd(L.Preheader,
                    new SpatialCheckInst(Chk->type(), P, Chk->bounds(),
                                         Chk->accessSize(), Chk->isStoreCheck(),
                                         NewGuard));
        ++Stats.HoistedChecksInserted;
        if (NewGuard)
          ++Stats.RuntimeHullChecks;
        if (Discharged) {
          ++Stats.RuntimeGuardsDischarged;
          if (DischargeUsed)
            *DischargeUsed = true;
        }
        ++Stats.LoopChecksHoisted;
        It = BB->erase(It);
        continue;
      }
    }

    // --- Path 2: affine hull. Guarded checks never take it: their guard
    // conditions belong to the pass invocation that emitted them.
    if (Chk->isGuarded()) {
      ++It;
      continue;
    }

    // IV values this check observes: body blocks run the body IV span;
    // a (constant-loop) header check additionally observes the exit IV.
    IVBox Box = Enclosing;
    if (Shape.Constant) {
      int64_t IvLast = InHeader ? Shape.CL.ExitIV : Shape.CL.LastBody;
      Box[Shape.CL.IV] =
          IVSpan{AffVal{std::min(Shape.CL.Init, IvLast), 0},
                 AffVal{std::max(Shape.CL.Init, IvLast), 0}};
    } else {
      const SymbolicCountedLoop &S = Shape.SCL;
      Box[S.IV] = S.Up ? IVSpan{AffVal{S.Init, 0}, AffVal{S.EndAdj, 1}}
                       : IVSpan{AffVal{S.EndAdj, 1}, AffVal{S.Init, 0}};
    }

    LimitWindow Win;
    LinPtr LP;
    std::set<const Value *> UsedDims;
    if (!linearizePtr(Chk->pointer(), L, Box, Win, UsedDims, LP)) {
      ++It;
      continue;
    }
    // Widening over an enclosing IV is only sound when the root pointer
    // and bounds are themselves invariant in that enclosing loop:
    // otherwise the corner check would pair the *current* iteration's root
    // with another iteration's offset — an address the original program
    // never computes.
    bool EnclosingOk = true;
    const Value *OwnIV = Shape.Constant
                             ? static_cast<const Value *>(Shape.CL.IV)
                             : static_cast<const Value *>(Shape.SCL.IV);
    for (const auto &[IV, A] : LP.Off.Coef) {
      if (A == 0 || IV == OwnIV)
        continue;
      const NaturalLoop *E = EnclosingLoops.at(IV);
      if (!E->isInvariant(LP.Root) || !E->isInvariant(Chk->bounds())) {
        EnclosingOk = false;
        break;
      }
    }
    if (!EnclosingOk) {
      ++It;
      continue;
    }
    // The ancestor's span (and hence every obligation evaluated over it)
    // is only the true iteration set while the ancestor's own IV cannot
    // wrap — required whenever the expression *touched* that dimension,
    // even if its coefficient cancelled out of the final offset.
    bool AncestorSymUsed =
        AncestorSym && UsedDims.count(AncestorSym->IV) != 0;

    // The window: per-node obligations are already in Win; add the IV
    // wrap windows of every symbolic dimension the hull relies on, and
    // the hoisted loop's own trip test (its hull checks run even when the
    // loop would not).
    if (Shape.Symbolic) {
      Win.clampLo(Shape.SCL.LimitMin);
      Win.clampHi(Shape.SCL.LimitMax);
      LimitWindow TW = tripWindow();
      Win.clampLo(TW.Lo);
      Win.clampHi(TW.Hi);
    }
    if (AncestorSymUsed) {
      // The ancestor's trip is execution-implied (this preheader only
      // runs inside its body); only its wrap window is needed.
      Win.clampLo(AncestorSym->LimitMin);
      Win.clampHi(AncestorSym->LimitMax);
    }

    AffVal Min, Max;
    if (!extremes(LP.Off, Box, Min, Max)) {
      ++It;
      continue;
    }
    // Emitted `K*L + C` hull arithmetic must not wrap i64: the product
    // term stays far from the edge, and C must be emittable as an i64
    // immediate (the sum is window-bounded already).
    for (const AffVal *Corner : {&Min, &Max})
      if (!Corner->isConst()) {
        if (!fitsWidth(Corner->C, 64)) {
          Win.Empty = true;
          break;
        }
        requireMin(Win, AffVal{0, Corner->K}, -MaxProductTerm);
        requireMax(Win, AffVal{0, Corner->K}, MaxProductTerm);
      }
    if (Win.Empty) {
      ++It;
      continue;
    }

    bool NeedGuard = Shape.Symbolic || Win.bounded();
    Value *Guard = nullptr;
    if (NeedGuard) {
      IntRange R = symbolRange();
      if (Shape.Symbolic && !R.empty() && !R.isFull()) {
        LimitWindow TW = tripWindow();
        if (Shape.SCL.Up ? R.Hi < TW.Lo : R.Lo > TW.Hi) {
          // Provably zero-trip at every call site: the check is dead.
          It = BB->erase(It);
          ++Stats.LoopChecksHoisted;
          ++Stats.RuntimeGuardsDischarged;
          if (DischargeUsed)
            *DischargeUsed = true;
          continue;
        }
      }
      if (rangeDischarges(Win)) {
        ++Stats.RuntimeGuardsDischarged;
        if (DischargeUsed)
          *DischargeUsed = true;
      } else {
        Guard = guardFor(Win);
      }
    }

    emitHull(LP.Root, Min, Chk, Guard);
    if (Max.C != Min.C || Max.K != Min.K)
      emitHull(LP.Root, Max, Chk, Guard);
    ++Stats.LoopChecksHoisted;
    if (Guard) {
      // Outside the window the loop keeps its original per-iteration
      // check: re-insert it guarded by the complement.
      BB->insertBefore(It, std::unique_ptr<Instruction>(new SpatialCheckInst(
                               Chk->type(), Chk->pointer(), Chk->bounds(),
                               Chk->accessSize(), Chk->isStoreCheck(),
                               notOf(Guard))));
      ++Stats.RuntimeGuardedFallbacks;
    }
    It = BB->erase(It);
  }
}

} // namespace

namespace softbound {
namespace checkopt {

void hoistLoopChecks(Function &F, CheckOptStats &Stats,
                     const CheckOptConfig &Cfg,
                     const std::map<const Argument *, IntRange> *ArgRanges,
                     bool *ArgRangeDischargeUsed) {
  if (!F.isDefinition())
    return;
  DomTree DT(F);
  std::vector<NaturalLoop> Loops = findSimpleLoops(F, DT);
  Stats.LoopsAnalyzed += Loops.size();
  Module &M = *F.parent();

  // Counted-loop analysis and body-safety for every loop up front, so each
  // loop can borrow the IV ranges of its safe counted ancestors.
  std::vector<LoopShape> Shapes(Loops.size());
  for (size_t I = 0; I < Loops.size(); ++I) {
    LoopShape &S = Shapes[I];
    if (analyzeCountedLoop(Loops[I], S.CL)) {
      S.Constant = true;
      ++Stats.LoopsCounted;
    } else if (Cfg.RuntimeLimitHulls &&
               analyzeSymbolicCountedLoop(Loops[I], S.SCL)) {
      S.Symbolic = true;
      ++Stats.LoopsCountedRuntime;
    } else {
      continue;
    }
    S.Usable = loopBodyIsSafe(Loops[I]);
  }

  for (size_t I = 0; I < Loops.size(); ++I) {
    if (!Shapes[I].Usable)
      continue;
    const NaturalLoop &L = Loops[I];
    // Enclosing counted loops whose every iteration runs this loop in
    // full: the nest is rectangular, so their IV ranges may widen hulls
    // (subject to the per-check root/bounds invariance test above). At
    // most one symbolic dimension may exist per hull — the hoisted loop's
    // own limit wins; otherwise the first symbolic ancestor claims it.
    IVBox Enclosing;
    LoopHoister::LoopOfIV EnclosingLoops;
    const SymbolicCountedLoop *AncestorSym = nullptr;
    bool SymbolTaken = Shapes[I].Symbolic;
    for (size_t E = 0; E < Loops.size(); ++E) {
      if (E == I || !Shapes[E].Usable || !Loops[E].contains(L.Header))
        continue;
      if (!DT.dominates(L.Header, Loops[E].Latch))
        continue;
      if (Shapes[E].Constant) {
        const CountedLoop &CE = Shapes[E].CL;
        if (CE.BodyCount <= 0)
          continue;
        Enclosing[CE.IV] = IVSpan{AffVal{std::min(CE.Init, CE.LastBody), 0},
                                  AffVal{std::max(CE.Init, CE.LastBody), 0}};
        EnclosingLoops[CE.IV] = &Loops[E];
      } else if (Shapes[E].Symbolic && !SymbolTaken) {
        const SymbolicCountedLoop &SE = Shapes[E].SCL;
        Enclosing[SE.IV] =
            SE.Up ? IVSpan{AffVal{SE.Init, 0}, AffVal{SE.EndAdj, 1}}
                  : IVSpan{AffVal{SE.EndAdj, 1}, AffVal{SE.Init, 0}};
        EnclosingLoops[SE.IV] = &Loops[E];
        AncestorSym = &SE;
        SymbolTaken = true;
      }
    }
    LoopHoister(M, L, Shapes[I], DT, Enclosing, EnclosingLoops, AncestorSym,
                ArgRanges, ArgRangeDischargeUsed, Stats)
        .run();
  }
}

} // namespace checkopt
} // namespace softbound
