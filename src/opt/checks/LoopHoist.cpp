//===- opt/checks/LoopHoist.cpp - loop check hoisting w/ range widening -----===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Replaces per-iteration spatial checks in counted loops with pre-loop
/// checks over the access range's convex hull. The checked address is
/// linearized into `Root + sum(Ak * ivk) + B` bytes, where Root is a
/// loop-invariant pointer, each ivk is the induction variable of the loop
/// being hoisted or of an enclosing counted loop in the same rectangular
/// nest, and the Ak/B are compile-time constants accumulated through
/// bitcasts, GEPs, and affine integer arithmetic. The hull is the pair of
/// addresses at the minimum and maximum of that linear form over the IV
/// box; one check per endpoint goes into the preheader (one total for an
/// invariant address) and the in-loop check is deleted — O(trip count)
/// dynamic checks become O(1), à la CHOP. Hull checks emitted for an inner
/// loop stay invariant in enclosing loops, so the enclosing loop's pass
/// (loops are processed innermost-first) hoists them again, collapsing a
/// whole nest's checks to two.
///
/// **Run-time bounds.** Loops counted by up to two loop-invariant
/// *symbolic* bounds (Loops.h SymbolicCountedLoop) hoist too — symbolic
/// init (`for (i = lo; i < hi; i++)`), the decreasing shape
/// (`for (i = n - 1; i >= 0; i--)`), and |step| > 1 sweeps. The IV box
/// spans become affine in the run-time values of the init symbol I and
/// limit symbol L (`C + KI*I + KL*L`), the hull corner offsets are
/// materialized in the preheader as `Root + (KI*I + KL*L + C)` bytes, and
/// every proof the constant case makes statically becomes a *region* of
/// (I, L) values for which it holds:
///
///   * at least one body iteration runs — exactly the loop's oriented
///     stay-predicate Pred(I, L), one icmp on the live values (zero-trip
///     loops must perform no check);
///   * when |step| > 1, the span L - I is divisible by |step| (otherwise
///     the IV steps past the limit and the closed-form endpoint is not
///     the true last IV) — an emitted `(L - I) % s == 0` test;
///   * the IV reaches the exit without wrapping its width, every
///     intermediate node of the index expression stays inside its bit
///     width over the box, and the emitted i64 hull/guard arithmetic
///     cannot wrap. Each such obligation is an affine inequality over
///     (I, L): one-symbol obligations narrow a per-symbol interval
///     exactly, two-symbol ones append `KI*I + KL*L + C >= 0` constraints
///     (with interval clamps keeping their own test arithmetic exact).
///
/// The region becomes an i1 *guard*: hull checks execute only when (I, L)
/// is inside it, and the original in-loop check survives as a fallback
/// guarded by the region's complement — outside it the loop simply keeps
/// its unmodified per-iteration checking. When the symbols' inter-
/// procedurally propagated ranges (checkopt(interproc)'s top-down
/// argument ranges, peeled through sign extensions and constant +/-) lie
/// inside the region, the guard is discharged statically: unguarded
/// hulls, no fallback — and the module records the whole-program contract
/// the range proof leaned on (Module::recordInterProcContract).
///
/// Soundness rests on the same three proofs as the constant case, all
/// established before any rewrite and conditioned on the region:
///
///   1. Exact iteration sets. analyzeCountedLoop() /
///      analyzeSymbolicCountedLoop() give each IV sequence; a check's
///      block dominating the latch means the check runs on every
///      completed iteration (header checks widen to the exit IV; for
///      symbolic loops header checks are skipped — they run even on
///      zero-trip passes). loopBodyIsSafe() excludes anything that could
///      keep a normally-completing run from finishing every iteration,
///      and enclosing IVs are only used when the hoisted loop's header
///      dominates the enclosing latch. Hence on a clean run inside the
///      region the original program itself evaluates checks at both hull
///      corners: the hoisted checks are a subset of the original dynamic
///      checks, moved earlier. Outside the region the fallback checks are
///      the original checks, unmoved. A run that would have trapped still
///      traps — though possibly earlier and, when the original trap was
///      of another kind, as a spatial violation instead. Clean runs are
///      never affected. A symbol that coincides with an enclosing loop's
///      IV is never paired with widening over that IV: the dimension is
///      dropped from the box and every occurrence reads the one live
///      value through the symbol instead, so corners mix no two
///      iterations (see hoistLoopChecks).
///
///   2. Faithful re-evaluation. The linearizer verifies (for every (I, L)
///      in the region) that every intermediate node of the index
///      expression stays inside its bit width over the whole IV box; each
///      node is linear (separable) in the IVs, so its extremes sit at box
///      corners and corner checks cover every iteration. The real
///      (wrapping) arithmetic therefore equals the exact linear value,
///      and the emitted `Root + (KI*I + KL*L + C)` address is
///      bit-identical to what the deleted check would have computed at
///      that iteration. Guard tests themselves never trap and are exact
///      whenever their interval clamps pass; when a clamp fails the
///      conjunction is already false and the garbage cross/divisibility
///      value is ignored.
///
///   3. Monotonicity. The byte offset is linear over the box, so the two
///      extreme-corner checks imply every intermediate one: an underflow
///      (addr < base) surfaces at the low corner, an overflow
///      (addr + size > bound) at the high one.
///
/// Guarded checks are invisible to the other static passes (they may not
/// execute, so they prove nothing — see RedundantChecks.cpp and
/// InterProc.cpp); only this pass, which owns their guards, re-hoists
/// them out of enclosing loops. Re-hoisting moves the guard computation
/// and hull address chain (pure, non-trapping instructions over
/// enclosing-invariant leaves) into the enclosing preheader, so nests of
/// any depth still collapse to O(1) checks; hoisting out of an enclosing
/// *symbolic* loop conjoins that loop's exact trip test (trip false <=>
/// the inner preheader never ran) onto the moved guard.
///
//===----------------------------------------------------------------------===//

#include "opt/checks/LoopHoist.h"

#include "opt/Dominators.h"
#include "opt/checks/CheckOpt.h"
#include "opt/checks/Loops.h"
#include "opt/checks/RangeAnalysis.h"
#include "support/Casting.h"

#include <algorithm>
#include <map>
#include <set>
#include <tuple>
#include <vector>

using namespace softbound;
using namespace softbound::checkopt;

namespace {

/// Offsets are capped well below any simulated address-space distance so
/// 64-bit address arithmetic can never wrap.
constexpr int64_t MaxByteOffset = int64_t(1) << 40;

/// Bound on each |K * symbol| product term of an emitted hull offset: far
/// from the i64 edge, so the two `mul`s and the following `add`s cannot
/// wrap (their mathematical sum is the region-bounded offset).
constexpr int64_t MaxProductTerm = int64_t(1) << 62;

/// Bounds for the arithmetic of an emitted cross-constraint test
/// `KI*I + KL*L + C >= 0`: products clamped to 2^60 and |C| to 2^61 keep
/// every intermediate i64 sum below 2^62.
constexpr int64_t CrossProdMax = int64_t(1) << 60;
constexpr int64_t CrossCMax = int64_t(1) << 61;

bool fitsWidth(__int128 V, unsigned Bits) {
  if (Bits >= 64)
    Bits = 64;
  __int128 Max = (__int128(1) << (Bits - 1)) - 1;
  __int128 Min = -(__int128(1) << (Bits - 1));
  return V >= Min && V <= Max;
}

__int128 widthMin(unsigned Bits) {
  if (Bits >= 64)
    Bits = 64;
  return -(__int128(1) << (Bits - 1));
}
__int128 widthMax(unsigned Bits) {
  if (Bits >= 64)
    Bits = 64;
  return (__int128(1) << (Bits - 1)) - 1;
}

__int128 floorDiv(__int128 A, __int128 B) { // B > 0
  __int128 Q = A / B;
  return Q * B > A ? Q - 1 : Q;
}
__int128 ceilDiv(__int128 A, __int128 B) { // B > 0
  __int128 Q = A / B;
  return Q * B < A ? Q + 1 : Q;
}

/// A value affine in the run-time values of the (up to two) symbols of
/// the active symbolic dimension: C + KI * init-symbol + KL * limit-symbol.
/// KI == KL == 0 is the compile-time-constant case.
struct AffVal {
  __int128 C = 0;
  int64_t KI = 0;
  int64_t KL = 0;
  bool isConst() const { return KI == 0 && KL == 0; }
};

/// Inclusive IV span over the box; at most one dimension of a box is
/// affine (the one driven by the symbolic bounds).
struct IVSpan {
  AffVal Lo, Hi;
};
using IVBox = std::map<const Value *, IVSpan>;

/// The (up to two) symbols a hull may be affine in. Either may be null:
/// a constant init or constant limit contributes through AffVal::C only.
struct SymPair {
  const Value *I = nullptr;
  const Value *L = nullptr;
};

/// One two-symbol constraint KI*I + KL*L + C >= 0 (both coefficients
/// nonzero — single-symbol constraints narrow the intervals instead).
struct CrossIneq {
  int64_t KI = 0;
  int64_t KL = 0;
  int64_t C = 0;
  bool operator<(const CrossIneq &O) const {
    return std::tie(KI, KL, C) < std::tie(O.KI, O.KL, O.C);
  }
  bool operator==(const CrossIneq &O) const {
    return KI == O.KI && KL == O.KL && C == O.C;
  }
};

/// One inclusive interval of symbol values.
struct SymInterval {
  int64_t Lo = INT64_MIN;
  int64_t Hi = INT64_MAX;
};

/// The region of (I, L) values for which every accumulated proof
/// obligation holds: a rectangle of per-symbol intervals intersected with
/// two-symbol half-planes, narrowed constraint by constraint. Constant
/// obligations either hold for every (I, L) or empty the region outright.
struct SymRegion {
  SymInterval I, L;
  std::vector<CrossIneq> Cross;
  bool Empty = false;

  void clampLo(SymInterval &S, __int128 V) {
    if (V > INT64_MAX) {
      Empty = true;
      return;
    }
    if (V > S.Lo)
      S.Lo = static_cast<int64_t>(V);
    if (S.Lo > S.Hi)
      Empty = true;
  }
  void clampHi(SymInterval &S, __int128 V) {
    if (V < INT64_MIN) {
      Empty = true;
      return;
    }
    if (V < S.Hi)
      S.Hi = static_cast<int64_t>(V);
    if (S.Lo > S.Hi)
      Empty = true;
  }
  bool bounded() const {
    return I.Lo > INT64_MIN || I.Hi < INT64_MAX || L.Lo > INT64_MIN ||
           L.Hi < INT64_MAX || !Cross.empty();
  }
};

/// Appends the two-symbol constraint KI*I + KL*L + C >= 0, conjoining the
/// interval clamps that keep its emitted i64 test arithmetic exact (a
/// failed clamp falsifies the conjunction before the cross value is
/// read). A constant term too large to test empties the region — the
/// hull is simply not built.
void addCross(SymRegion &R, __int128 KI, __int128 KL, __int128 C) {
  if (R.Empty)
    return;
  if (!fitsWidth(KI, 64) || !fitsWidth(KL, 64) || C < -__int128(CrossCMax) ||
      C > __int128(CrossCMax)) {
    R.Empty = true;
    return;
  }
  __int128 AbsKI = KI > 0 ? KI : -KI;
  __int128 AbsKL = KL > 0 ? KL : -KL;
  __int128 QI = CrossProdMax / AbsKI;
  __int128 QL = CrossProdMax / AbsKL;
  R.clampLo(R.I, -QI);
  R.clampHi(R.I, QI);
  R.clampLo(R.L, -QL);
  R.clampHi(R.L, QL);
  if (R.Empty)
    return;
  CrossIneq CI{static_cast<int64_t>(KI), static_cast<int64_t>(KL),
               static_cast<int64_t>(C)};
  if (std::find(R.Cross.begin(), R.Cross.end(), CI) == R.Cross.end())
    R.Cross.push_back(CI);
}

/// Requires A(I, L) >= Min for every (I, L) in the region (narrowing the
/// region to exactly the values satisfying it; two-symbol obligations
/// narrow to the half-plane plus its test clamps).
void requireMin(SymRegion &R, const AffVal &A, __int128 Min) {
  if (R.Empty)
    return;
  if (A.KI == 0 && A.KL == 0) {
    if (A.C < Min)
      R.Empty = true;
  } else if (A.KL == 0) {
    if (A.KI > 0)
      R.clampLo(R.I, ceilDiv(Min - A.C, A.KI));
    else
      R.clampHi(R.I, floorDiv(A.C - Min, -__int128(A.KI)));
  } else if (A.KI == 0) {
    if (A.KL > 0)
      R.clampLo(R.L, ceilDiv(Min - A.C, A.KL));
    else
      R.clampHi(R.L, floorDiv(A.C - Min, -__int128(A.KL)));
  } else {
    addCross(R, A.KI, A.KL, A.C - Min);
  }
}

/// Requires A(I, L) <= Max for every (I, L) in the region.
void requireMax(SymRegion &R, const AffVal &A, __int128 Max) {
  if (R.Empty)
    return;
  if (A.KI == 0 && A.KL == 0) {
    if (A.C > Max)
      R.Empty = true;
  } else if (A.KL == 0) {
    if (A.KI > 0)
      R.clampHi(R.I, floorDiv(Max - A.C, A.KI));
    else
      R.clampLo(R.I, ceilDiv(A.C - Max, -__int128(A.KI)));
  } else if (A.KI == 0) {
    if (A.KL > 0)
      R.clampHi(R.L, floorDiv(Max - A.C, A.KL));
    else
      R.clampLo(R.L, ceilDiv(A.C - Max, -__int128(A.KL)));
  } else {
    addCross(R, -__int128(A.KI), -__int128(A.KL), Max - A.C);
  }
}

/// An integer as an exact linear function B + SI*I + SL*L +
/// sum(Coef[iv] * iv) over the box IVs and the symbols.
struct LinExpr {
  std::map<const Value *, int64_t> Coef;
  int64_t B = 0;
  int64_t SI = 0; ///< Coefficient of the init symbol used as a leaf.
  int64_t SL = 0; ///< Coefficient of the limit symbol used as a leaf.
  bool isPureConst() const { return Coef.empty() && SI == 0 && SL == 0; }
};

/// Extremes of a (separable) linear form over the box, as affine
/// functions of (I, L). False when a coefficient combination escapes i64.
bool extremes(const LinExpr &E, const IVBox &Box, AffVal &Min, AffVal &Max) {
  __int128 MinC = E.B, MaxC = E.B;
  __int128 MinKI = E.SI, MaxKI = E.SI, MinKL = E.SL, MaxKL = E.SL;
  for (const auto &[IV, A] : E.Coef) {
    const IVSpan &S = Box.at(IV);
    const AffVal &ForMin = A >= 0 ? S.Lo : S.Hi;
    const AffVal &ForMax = A >= 0 ? S.Hi : S.Lo;
    MinC += __int128(A) * ForMin.C;
    MaxC += __int128(A) * ForMax.C;
    MinKI += __int128(A) * ForMin.KI;
    MaxKI += __int128(A) * ForMax.KI;
    MinKL += __int128(A) * ForMin.KL;
    MaxKL += __int128(A) * ForMax.KL;
  }
  if (!fitsWidth(MinKI, 64) || !fitsWidth(MaxKI, 64) ||
      !fitsWidth(MinKL, 64) || !fitsWidth(MaxKL, 64))
    return false;
  Min = AffVal{MinC, static_cast<int64_t>(MinKI), static_cast<int64_t>(MinKL)};
  Max = AffVal{MaxC, static_cast<int64_t>(MaxKI), static_cast<int64_t>(MaxKL)};
  return true;
}

/// Requires the node's real (width-wrapped) evaluation to match the exact
/// linear value for every point of the box and every (I, L) in the
/// region, and to stay far below the 64-bit wrap guard. Narrows the
/// region; empties it when no (I, L) qualifies.
bool boxFits(const LinExpr &E, const IVBox &Box, unsigned Bits,
             SymRegion &Win) {
  AffVal Min, Max;
  if (!extremes(E, Box, Min, Max))
    return false;
  __int128 Lo = std::max<__int128>(widthMin(Bits), -__int128(MaxByteOffset));
  __int128 Hi = std::min<__int128>(widthMax(Bits), MaxByteOffset);
  requireMin(Win, Min, Lo);
  requireMax(Win, Max, Hi);
  return !Win.Empty;
}

bool addScaled(LinExpr &Acc, const LinExpr &E, int64_t Scale) {
  __int128 B = __int128(Acc.B) + __int128(E.B) * Scale;
  __int128 SI = __int128(Acc.SI) + __int128(E.SI) * Scale;
  __int128 SL = __int128(Acc.SL) + __int128(E.SL) * Scale;
  if (!fitsWidth(B, 64) || !fitsWidth(SI, 64) || !fitsWidth(SL, 64))
    return false;
  Acc.B = static_cast<int64_t>(B);
  Acc.SI = static_cast<int64_t>(SI);
  Acc.SL = static_cast<int64_t>(SL);
  for (const auto &[IV, A] : E.Coef) {
    __int128 C = __int128(Acc.Coef[IV]) + __int128(A) * Scale;
    if (!fitsWidth(C, 64))
      return false;
    Acc.Coef[IV] = static_cast<int64_t>(C);
  }
  return true;
}

/// Linearizes integer \p V over the IV box, accumulating proof-obligation
/// constraints on (I, L) into \p Win. Leaves must be constants, box IVs,
/// or the symbols themselves (loop-invariant and canonical, so a direct
/// use reads the same value the span endpoints do — exact, no widening);
/// any other loop-invariant but unknown value cannot contribute to a
/// hull. Every box dimension the expression *touches* is recorded in
/// \p Used — including dimensions whose coefficient later cancels: any
/// per-node obligation was evaluated over that dimension's span, whose
/// validity needs the owning loop's wrap window.
bool linearizeInt(Value *V, const IVBox &Box, const SymPair &Syms,
                  SymRegion &Win, std::set<const Value *> &Used, LinExpr &Out,
                  int Depth = 0) {
  if (Depth > 16)
    return false;
  if (auto *C = dyn_cast<ConstantInt>(V)) {
    Out = LinExpr{{}, C->value(), 0, 0};
    return true;
  }
  if (Box.count(V)) {
    Used.insert(V);
    Out = LinExpr{{{V, 1}}, 0, 0, 0}; // IV values fit their width.
    return true;
  }
  if (V == Syms.I) {
    Out = LinExpr{{}, 0, 1, 0}; // Canonical symbol value: fits its width.
    return true;
  }
  if (V == Syms.L) {
    Out = LinExpr{{}, 0, 0, 1};
    return true;
  }
  if (auto *Cast = dyn_cast<CastInst>(V)) {
    LinExpr Src;
    if (!linearizeInt(Cast->source(), Box, Syms, Win, Used, Src, Depth + 1))
      return false;
    switch (Cast->opcode()) {
    case CastInst::Op::SExt:
      Out = std::move(Src); // Canonical values are already sign-extended.
      return true;
    case CastInst::Op::ZExt: {
      // zext equals the identity only on non-negative values.
      AffVal Min, Max;
      if (!extremes(Src, Box, Min, Max))
        return false;
      requireMin(Win, Min, 0);
      if (Win.Empty)
        return false;
      Out = std::move(Src);
      return true;
    }
    default:
      return false; // Trunc/PtrToInt/...: value-changing, reject.
    }
  }
  if (auto *BO = dyn_cast<BinOpInst>(V)) {
    LinExpr L, R;
    if (!linearizeInt(BO->lhs(), Box, Syms, Win, Used, L, Depth + 1) ||
        !linearizeInt(BO->rhs(), Box, Syms, Win, Used, R, Depth + 1))
      return false;
    LinExpr Res;
    switch (BO->opcode()) {
    case BinOpInst::Op::Add:
      Res = std::move(L);
      if (!addScaled(Res, R, 1))
        return false;
      break;
    case BinOpInst::Op::Sub:
      Res = std::move(L);
      if (!addScaled(Res, R, -1))
        return false;
      break;
    case BinOpInst::Op::Mul: {
      if (!L.isPureConst() && !R.isPureConst())
        return false; // Nonlinear in the IVs or symbols.
      const LinExpr &Var = L.isPureConst() ? R : L;
      int64_t K = L.isPureConst() ? L.B : R.B;
      Res = LinExpr{};
      if (!addScaled(Res, Var, K))
        return false;
      break;
    }
    case BinOpInst::Op::SRem:
    case BinOpInst::Op::URem: {
      // `X % C` is the identity when X provably stays in [0, C): the
      // common power-of-two wrap guard on an index that never wraps.
      if (!R.isPureConst() || R.B <= 0)
        return false;
      AffVal Min, Max;
      if (!extremes(L, Box, Min, Max))
        return false;
      requireMin(Win, Min, 0);
      requireMax(Win, Max, R.B - 1);
      if (Win.Empty)
        return false;
      Res = std::move(L);
      break;
    }
    default:
      return false;
    }
    unsigned Bits = cast<IntType>(BO->type())->bits();
    if (!boxFits(Res, Box, Bits, Win))
      return false;
    Out = std::move(Res);
    return true;
  }
  return false;
}

/// A pointer as Root (loop-invariant) plus a linear byte offset.
struct LinPtr {
  Value *Root = nullptr;
  LinExpr Off;
};

/// Linearizes pointer \p P through in-loop bitcasts and GEPs down to a
/// loop-invariant root, narrowing \p Win with every node's obligations
/// and recording every box dimension touched in \p Used.
bool linearizePtr(Value *P, const NaturalLoop &L, const IVBox &Box,
                  const SymPair &Syms, SymRegion &Win,
                  std::set<const Value *> &Used, LinPtr &Out, int Depth = 0) {
  if (Depth > 16)
    return false;
  if (L.isInvariant(P)) {
    Out = LinPtr{P, {}};
    return true;
  }
  if (auto *BC = dyn_cast<CastInst>(P);
      BC && BC->opcode() == CastInst::Op::Bitcast)
    return linearizePtr(BC->source(), L, Box, Syms, Win, Used, Out, Depth + 1);
  auto *G = dyn_cast<GEPInst>(P);
  if (!G)
    return false;
  if (!linearizePtr(G->pointer(), L, Box, Syms, Win, Used, Out, Depth + 1))
    return false;

  Type *Cur = G->sourceType();
  for (unsigned K = 0; K < G->numIndices(); ++K) {
    int64_t Scale;
    if (K == 0) {
      Scale = static_cast<int64_t>(Cur->sizeInBytes());
    } else if (auto *AT = dyn_cast<ArrayType>(Cur)) {
      Scale = static_cast<int64_t>(AT->element()->sizeInBytes());
      Cur = AT->element();
    } else if (auto *ST = dyn_cast<StructType>(Cur)) {
      auto *CI = dyn_cast<ConstantInt>(G->index(K));
      if (!CI)
        return false;
      unsigned FieldIdx = static_cast<unsigned>(CI->value());
      if (FieldIdx >= ST->numFields())
        return false;
      Out.Off.B += static_cast<int64_t>(ST->fieldOffset(FieldIdx));
      Cur = ST->field(FieldIdx);
      continue;
    } else {
      return false;
    }
    LinExpr Idx;
    if (!linearizeInt(G->index(K), Box, Syms, Win, Used, Idx))
      return false;
    if (!addScaled(Out.Off, Idx, Scale))
      return false;
  }
  // Final guard: hull offsets stay far from any 64-bit wrap.
  return boxFits(Out.Off, Box, 64, Win);
}

/// Inserts \p I before the terminator of \p BB.
template <typename T> T *insertAtEnd(BasicBlock *BB, T *I) {
  I->setParent(BB);
  BB->insertBefore(std::prev(BB->end()), std::unique_ptr<Instruction>(I));
  return I;
}

/// True when moving \p I to a dominating block cannot change behaviour:
/// pure and unable to trap (divisions stay put — except by a nonzero
/// constant, which the stride-divisibility guards rely on).
bool isSpeculatable(const Instruction *I) {
  switch (I->kind()) {
  case ValueKind::GEP:
  case ValueKind::Cast:
  case ValueKind::ICmp:
  case ValueKind::Select:
    return true;
  case ValueKind::BinOp:
    switch (cast<BinOpInst>(I)->opcode()) {
    case BinOpInst::Op::SDiv:
    case BinOpInst::Op::UDiv:
    case BinOpInst::Op::SRem:
    case BinOpInst::Op::URem: {
      // May trap on a zero divisor — unless the divisor is a nonzero
      // compile-time constant (the emitted divisibility tests). Nonzero
      // is judged *after* masking to the instruction's width: the VM's
      // unsigned-division trap test masks, so an un-canonical constant
      // like (i8 256) is a zero divisor at run time.
      auto *C = dyn_cast<ConstantInt>(cast<BinOpInst>(I)->rhs());
      if (!C)
        return false;
      uint64_t V = static_cast<uint64_t>(C->value());
      unsigned Bits = cast<IntType>(C->type())->bits();
      if (Bits < 64)
        V &= (uint64_t(1) << Bits) - 1;
      return V != 0;
    }
    default:
      return true;
    }
  default:
    return false;
  }
}

/// How each loop of the function was classified.
struct LoopShape {
  bool Constant = false;
  bool Symbolic = false;
  bool Usable = false; ///< Shape recognized and body safe.
  CountedLoop CL;
  SymbolicCountedLoop SCL;
};

/// The body-IV span of a symbolic counted loop as affine endpoints.
IVSpan symbolicSpan(const SymbolicCountedLoop &S) {
  AffVal Init = S.InitV ? AffVal{0, 1, 0} : AffVal{S.InitC, 0, 0};
  AffVal End = S.Limit ? AffVal{S.EndAdj, 0, 1}
                       : AffVal{__int128(S.LimitC) + S.EndAdj, 0, 0};
  return S.Up ? IVSpan{Init, End} : IVSpan{End, Init};
}

/// Per-loop hoisting context, caching the i8* view of each root pointer,
/// the widened symbol values, and the emitted guard values.
class LoopHoister {
public:
  using LoopOfIV = std::map<const Value *, const NaturalLoop *>;
  using ArgRangeMap = std::map<const Argument *, IntRange>;

  using BlockPosMap = std::map<const BasicBlock *, unsigned>;

  LoopHoister(Module &M, const NaturalLoop &L, const LoopShape &Shape,
              const DomTree &DT, const BlockPosMap &BlockPos,
              const IVBox &Enclosing, const LoopOfIV &EnclosingLoops,
              const SymbolicCountedLoop *AncestorSym,
              const ArgRangeMap *ArgRanges, bool *DischargeUsed,
              CheckOptStats &Stats)
      : M(M), L(L), Shape(Shape), DT(DT), BlockPos(BlockPos),
        Enclosing(Enclosing), EnclosingLoops(EnclosingLoops),
        AncestorSym(AncestorSym), ArgRanges(ArgRanges),
        DischargeUsed(DischargeUsed), Stats(Stats) {
    if (Shape.Symbolic)
      SymSrc = &Shape.SCL;
    else if (AncestorSym)
      SymSrc = AncestorSym;
    if (SymSrc) {
      Syms.I = SymSrc->InitV;
      Syms.L = SymSrc->Limit;
    }
  }

  void run() {
    // Visit the loop's blocks in function order, never in pointer-set
    // order: hull emission order must be identical from run to run, or
    // the gated dynamic-check counts drift under ASLR.
    std::vector<BasicBlock *> Ordered(L.Blocks.begin(), L.Blocks.end());
    std::sort(Ordered.begin(), Ordered.end(),
              [&](const BasicBlock *A, const BasicBlock *B) {
                return BlockPos.at(A) < BlockPos.at(B);
              });
    for (BasicBlock *BB : Ordered) {
      if (!DT.dominates(BB, L.Latch)) // Checks that run on every iteration.
        continue;
      // Symbolic loops: header checks also run on the (possibly zero-trip)
      // exiting pass, whose IV is the exit value — leave them alone.
      if (Shape.Symbolic && BB == L.Header)
        continue;
      hoistInBlock(BB);
    }
  }

private:
  void hoistInBlock(BasicBlock *BB);
  Value *byteView(Value *Root);
  Value *sym64(const Value *Sym);
  Value *symOrConst64(const Value *Sym, int64_t C);
  Value *scaled(Value *V, int64_t K, const std::string &Name);
  Value *andOf(Value *A, Value *B);
  Value *guardFor(const SymRegion &Win);
  Value *tripGuard();
  Value *divisGuard();
  Value *combinedGuard(const SymRegion &Win, bool NeedTrip, bool NeedDiv);
  Value *notOf(Value *G);
  void emitHull(Value *Root, const AffVal &Off, const SpatialCheckInst *Proto,
                Value *Guard);
  bool collectAvailChain(Value *V, std::vector<Instruction *> &PostOrder,
                         std::set<const Value *> &Visited, int Budget);
  void commitAvailChain(const std::vector<Instruction *> &PostOrder);

  /// The symbols' values as affine forms (constants collapse to C).
  AffVal initAff() const {
    return SymSrc->InitV ? AffVal{0, 1, 0} : AffVal{SymSrc->InitC, 0, 0};
  }
  AffVal limitAff() const {
    return SymSrc->Limit ? AffVal{0, 0, 1} : AffVal{SymSrc->LimitC, 0, 0};
  }

  /// The inter-procedurally propagated range of a symbol's run-time
  /// value: argument ranges peeled through value-preserving sign
  /// extensions and constant +/- chains (each step width-checked — a
  /// shift that could wrap its node's width collapses to full). Constants
  /// are point ranges. Sets \p UsedArg when an Argument range was read;
  /// any proof built on the result must then record the entry contract.
  IntRange rangeOf(const Value *V, bool &UsedArg, int Depth = 0) const {
    if (Depth > 8)
      return IntRange::full();
    if (auto *C = dyn_cast<ConstantInt>(V))
      return IntRange::of(C->value());
    if (auto *A = dyn_cast<Argument>(V)) {
      if (!ArgRanges)
        return IntRange::full();
      auto It = ArgRanges->find(A);
      if (It == ArgRanges->end())
        return IntRange::full();
      UsedArg = true;
      return It->second;
    }
    if (auto *CI = dyn_cast<CastInst>(V);
        CI && CI->opcode() == CastInst::Op::SExt)
      return rangeOf(CI->source(), UsedArg, Depth + 1);
    if (auto *B = dyn_cast<BinOpInst>(V)) {
      const ConstantInt *C = nullptr;
      const Value *Other = nullptr;
      int Sign = 0;
      if (B->opcode() == BinOpInst::Op::Add) {
        if ((C = dyn_cast<ConstantInt>(B->rhs()))) {
          Other = B->lhs();
          Sign = 1;
        } else if ((C = dyn_cast<ConstantInt>(B->lhs()))) {
          Other = B->rhs();
          Sign = 1;
        }
      } else if (B->opcode() == BinOpInst::Op::Sub) {
        if ((C = dyn_cast<ConstantInt>(B->rhs()))) {
          Other = B->lhs();
          Sign = -1;
        }
      }
      if (C && Other) {
        IntRange R = rangeOf(Other, UsedArg, Depth + 1);
        if (R.empty() || R.isFull())
          return R;
        unsigned Bits = cast<IntType>(B->type())->bits();
        __int128 Lo = __int128(R.Lo) + Sign * __int128(C->value());
        __int128 Hi = __int128(R.Hi) + Sign * __int128(C->value());
        // The binop wraps at its width; the shifted range is its value
        // only when no point of it can leave that width.
        if (Lo < widthMin(Bits) || Hi > widthMax(Bits))
          return IntRange::full();
        return IntRange::make(static_cast<int64_t>(Lo),
                              static_cast<int64_t>(Hi));
      }
    }
    return IntRange::full();
  }

  bool usable(const IntRange &R) const { return !R.empty() && !R.isFull(); }

  /// The symbol ranges are fixed for the hoister's lifetime (SymSrc never
  /// changes), so they are resolved once, on first use. RangesUsedArg
  /// remembers whether an Argument range was consulted; every proof built
  /// on the cached ranges reports that through its UsedArg out-flag.
  void ensureRanges() const {
    if (RangesCached)
      return;
    RangesCached = true;
    CachedRI = SymSrc->InitV ? rangeOf(SymSrc->InitV, RangesUsedArg)
                             : IntRange::of(SymSrc->InitC);
    CachedRL = SymSrc->Limit ? rangeOf(SymSrc->Limit, RangesUsedArg)
                             : IntRange::of(SymSrc->LimitC);
  }

  /// True when the propagated symbol ranges prove the loop can never run
  /// a body iteration — the stay-predicate is false for every (I, L).
  bool provablyZeroTrip(bool &UsedArg) const {
    ensureRanges();
    const IntRange &RI = CachedRI, &RL = CachedRL;
    if (!usable(RI) || !usable(RL))
      return false;
    if (RangesUsedArg)
      UsedArg = true;
    switch (SymSrc->Pred) {
    case ICmpInst::Pred::SLT:
      return RI.Lo >= RL.Hi;
    case ICmpInst::Pred::SLE:
      return RI.Lo > RL.Hi;
    case ICmpInst::Pred::SGT:
      return RI.Hi <= RL.Lo;
    case ICmpInst::Pred::SGE:
      return RI.Hi < RL.Lo;
    default:
      return false;
    }
  }

  /// True when the ranges prove at least one body iteration always runs.
  bool provablyTrips(const IntRange &RI, const IntRange &RL) const {
    if (!usable(RI) || !usable(RL))
      return false;
    switch (SymSrc->Pred) {
    case ICmpInst::Pred::SLT:
      return RI.Hi < RL.Lo;
    case ICmpInst::Pred::SLE:
      return RI.Hi <= RL.Lo;
    case ICmpInst::Pred::SGT:
      return RI.Lo > RL.Hi;
    case ICmpInst::Pred::SGE:
      return RI.Lo >= RL.Hi;
    default:
      return false;
    }
  }

  /// provablyTrips over the cached symbol ranges.
  bool provablyTripsNow(bool &UsedArg) const {
    ensureRanges();
    if (RangesUsedArg)
      UsedArg = true;
    return provablyTrips(CachedRI, CachedRL);
  }

  /// True when the propagated symbol ranges prove every (I, L) lands
  /// inside \p Win — plus the trip and divisibility conditions when
  /// requested — the static discharge of the region guard.
  bool rangeDischarges(const SymRegion &Win, bool NeedTrip, bool NeedDiv,
                       bool &UsedArg) const {
    if (!SymSrc)
      return false;
    ensureRanges();
    const IntRange &RI = CachedRI, &RL = CachedRL;
    if (!usable(RI) || !usable(RL))
      return false;
    if (RangesUsedArg)
      UsedArg = true;
    if (RI.Lo < Win.I.Lo || RI.Hi > Win.I.Hi || RL.Lo < Win.L.Lo ||
        RL.Hi > Win.L.Hi)
      return false;
    for (const CrossIneq &X : Win.Cross) {
      __int128 Min = __int128(X.C) +
                     __int128(X.KI) * (X.KI > 0 ? RI.Lo : RI.Hi) +
                     __int128(X.KL) * (X.KL > 0 ? RL.Lo : RL.Hi);
      if (Min < 0)
        return false;
    }
    if (NeedTrip && !provablyTrips(RI, RL))
      return false;
    if (NeedDiv) {
      // Only point ranges can settle divisibility statically.
      if (RI.Lo != RI.Hi || RL.Lo != RL.Hi)
        return false;
      int64_t S = SymSrc->Step > 0 ? SymSrc->Step : -SymSrc->Step;
      if ((__int128(RL.Lo) - RI.Lo) % S != 0)
        return false;
    }
    return true;
  }

  Module &M;
  const NaturalLoop &L;
  const LoopShape &Shape;
  const DomTree &DT;
  const BlockPosMap &BlockPos; ///< Function-order index of every block.
  const IVBox &Enclosing; ///< Usable IVs of enclosing counted loops.
  const LoopOfIV &EnclosingLoops; ///< Which loop each enclosing IV drives.
  const SymbolicCountedLoop *AncestorSym; ///< Symbolic ancestor dim, if any.
  const ArgRangeMap *ArgRanges;           ///< Interproc argument ranges.
  bool *DischargeUsed; ///< Out-flag: a range proof was relied on.
  CheckOptStats &Stats;
  const SymbolicCountedLoop *SymSrc = nullptr; ///< Owner of the symbols.
  SymPair Syms; ///< The (up to two) symbols usable here.
  mutable bool RangesCached = false;   ///< ensureRanges() ran.
  mutable IntRange CachedRI, CachedRL; ///< Symbol ranges (once per loop).
  mutable bool RangesUsedArg = false;  ///< They consulted an Argument range.
  std::map<Value *, Value *> ByteViews;
  std::map<const Value *, Value *> Sym64s;
  using GuardKey = std::tuple<int64_t, int64_t, int64_t, int64_t,
                              std::vector<CrossIneq>>;
  std::map<GuardKey, Value *> Guards;
  std::map<std::tuple<Value *, bool, bool>, Value *> Combined;
  Value *TripG = nullptr;
  Value *DivisG = nullptr;
  std::map<Value *, Value *> NotGuards;
  /// Hull emission dedup: (root, C, KI, KL, bounds, guard) -> strongest
  /// (size, is-store) already emitted for that address.
  std::map<std::tuple<Value *, int64_t, int64_t, int64_t, Value *, Value *>,
           std::pair<uint64_t, bool>>
      Emitted;
};

Value *LoopHoister::byteView(Value *Root) {
  auto It = ByteViews.find(Root);
  if (It != ByteViews.end())
    return It->second;
  Type *I8P = M.ctx().ptrTo(M.ctx().i8());
  Value *View = Root;
  if (Root->type() != I8P)
    View = insertAtEnd(L.Preheader,
                       new CastInst(CastInst::Op::Bitcast, Root, I8P,
                                    Root->name() + ".i8"));
  ByteViews[Root] = View;
  return View;
}

/// The symbol's run-time value widened to i64 in the preheader.
Value *LoopHoister::sym64(const Value *Sym) {
  auto It = Sym64s.find(Sym);
  if (It != Sym64s.end())
    return It->second;
  Type *I64 = M.ctx().i64();
  Value *V = const_cast<Value *>(Sym);
  if (V->type() != I64)
    V = insertAtEnd(L.Preheader,
                    new CastInst(CastInst::Op::SExt, V, I64, "sym64"));
  Sym64s[Sym] = V;
  return V;
}

Value *LoopHoister::symOrConst64(const Value *Sym, int64_t C) {
  return Sym ? sym64(Sym) : static_cast<Value *>(M.constI64(C));
}

Value *LoopHoister::scaled(Value *V, int64_t K, const std::string &Name) {
  if (K == 1)
    return V;
  return insertAtEnd(L.Preheader,
                     new BinOpInst(BinOpInst::Op::Mul, V, M.constI64(K), Name));
}

Value *LoopHoister::andOf(Value *A, Value *B) {
  if (!A)
    return B;
  if (!B)
    return A;
  return insertAtEnd(L.Preheader,
                     new BinOpInst(BinOpInst::Op::And, A, B, "hull.g"));
}

/// Materializes the region test in the preheader: per-symbol interval
/// halves (those already implied by the symbol's own bit width — every
/// canonical value lies inside it — are elided) conjoined with each
/// two-symbol constraint test. Null when the whole region is implied.
Value *LoopHoister::guardFor(const SymRegion &Win) {
  int64_t ILo = INT64_MIN, IHi = INT64_MAX, LLo = INT64_MIN, LHi = INT64_MAX;
  if (Syms.I) {
    unsigned B = cast<IntType>(Syms.I->type())->bits();
    if (Win.I.Lo > widthMin(B))
      ILo = Win.I.Lo;
    if (Win.I.Hi < widthMax(B))
      IHi = Win.I.Hi;
  }
  if (Syms.L) {
    unsigned B = cast<IntType>(Syms.L->type())->bits();
    if (Win.L.Lo > widthMin(B))
      LLo = Win.L.Lo;
    if (Win.L.Hi < widthMax(B))
      LHi = Win.L.Hi;
  }
  std::vector<CrossIneq> Cross = Win.Cross;
  std::sort(Cross.begin(), Cross.end());
  GuardKey Key{ILo, IHi, LLo, LHi, Cross};
  auto It = Guards.find(Key);
  if (It != Guards.end())
    return It->second;

  Type *I1 = M.ctx().i1();
  Value *G = nullptr;
  auto AddCmp = [&](ICmpInst::Pred P, const Value *Sym, int64_t C,
                    const char *Nm) {
    G = andOf(G, insertAtEnd(L.Preheader,
                             new ICmpInst(P, sym64(Sym), M.constI64(C), I1,
                                          Nm)));
  };
  if (ILo != INT64_MIN)
    AddCmp(ICmpInst::Pred::SGE, Syms.I, ILo, "hull.gilo");
  if (IHi != INT64_MAX)
    AddCmp(ICmpInst::Pred::SLE, Syms.I, IHi, "hull.gihi");
  if (LLo != INT64_MIN)
    AddCmp(ICmpInst::Pred::SGE, Syms.L, LLo, "hull.gllo");
  if (LHi != INT64_MAX)
    AddCmp(ICmpInst::Pred::SLE, Syms.L, LHi, "hull.glhi");
  for (const CrossIneq &X : Cross) {
    Value *Sum = insertAtEnd(
        L.Preheader,
        new BinOpInst(BinOpInst::Op::Add, scaled(sym64(Syms.I), X.KI, "hull.xi"),
                      scaled(sym64(Syms.L), X.KL, "hull.xl"), "hull.xs"));
    if (X.C != 0)
      Sum = insertAtEnd(L.Preheader,
                        new BinOpInst(BinOpInst::Op::Add, Sum,
                                      M.constI64(X.C), "hull.xc"));
    G = andOf(G, insertAtEnd(L.Preheader,
                             new ICmpInst(ICmpInst::Pred::SGE, Sum,
                                          M.constI64(0), I1, "hull.gx")));
  }
  Guards[Key] = G;
  return G;
}

/// The exact "body runs at least once" test: the loop's oriented
/// stay-predicate over the live init and limit values. One icmp on
/// canonical i64 values — no arithmetic, so exact in both directions
/// (false <=> the body, and hence any original in-loop check, never
/// executed).
Value *LoopHoister::tripGuard() {
  if (TripG)
    return TripG;
  TripG = insertAtEnd(
      L.Preheader,
      new ICmpInst(SymSrc->Pred, symOrConst64(SymSrc->InitV, SymSrc->InitC),
                   symOrConst64(SymSrc->Limit, SymSrc->LimitC), M.ctx().i1(),
                   "hull.trip"));
  return TripG;
}

/// The stride-divisibility test `(L - I) % |step| == 0`. Its subtraction
/// is exact only under the |I|, |L| <= 2^61 interval clamps the caller
/// conjoins into the region whenever this guard is needed; outside them
/// the region conjunct is already false and the garbage remainder is
/// ignored. srem by a nonzero constant cannot trap.
Value *LoopHoister::divisGuard() {
  if (DivisG)
    return DivisG;
  int64_t S = SymSrc->Step > 0 ? SymSrc->Step : -SymSrc->Step;
  Value *D = insertAtEnd(
      L.Preheader,
      new BinOpInst(BinOpInst::Op::Sub,
                    symOrConst64(SymSrc->Limit, SymSrc->LimitC),
                    symOrConst64(SymSrc->InitV, SymSrc->InitC), "hull.span"));
  Value *R = insertAtEnd(L.Preheader, new BinOpInst(BinOpInst::Op::SRem, D,
                                                    M.constI64(S), "hull.rem"));
  DivisG = insertAtEnd(L.Preheader,
                       new ICmpInst(ICmpInst::Pred::EQ, R, M.constI64(0),
                                    M.ctx().i1(), "hull.div"));
  ++Stats.RuntimeDivisGuards;
  return DivisG;
}

/// The full hull guard: region test AND exact trip test AND divisibility,
/// as requested. Cached so every check of the loop sharing a region
/// shares one guard value (the Emitted dedup and the VM's guard
/// accounting both key on value identity).
Value *LoopHoister::combinedGuard(const SymRegion &Win, bool NeedTrip,
                                  bool NeedDiv) {
  Value *Region = guardFor(Win);
  auto Key = std::make_tuple(Region, NeedTrip, NeedDiv);
  auto It = Combined.find(Key);
  if (It != Combined.end())
    return It->second;
  Value *G = Region;
  if (NeedTrip)
    G = andOf(G, tripGuard());
  if (NeedDiv)
    G = andOf(G, divisGuard());
  Combined[Key] = G;
  return G;
}

Value *LoopHoister::notOf(Value *G) {
  auto It = NotGuards.find(G);
  if (It != NotGuards.end())
    return It->second;
  Value *N = insertAtEnd(L.Preheader,
                         new BinOpInst(BinOpInst::Op::Xor, G,
                                       M.constI1(true), "hull.ng"));
  NotGuards[G] = N;
  return N;
}

void LoopHoister::emitHull(Value *Root, const AffVal &Off,
                           const SpatialCheckInst *Proto, Value *Guard) {
  // Guard identity participates in the dedup key through the guard Value
  // itself (combinedGuard caches per region, so equal regions share one).
  auto Key = std::make_tuple(Root, static_cast<int64_t>(Off.C), Off.KI,
                             Off.KL, Proto->bounds(), Guard);
  auto It = Emitted.find(Key);
  if (It != Emitted.end() && It->second.first >= Proto->accessSize() &&
      (It->second.second || !Proto->isStoreCheck()))
    return; // An equal-or-stronger hull for these bytes already exists.

  Value *Ptr = byteView(Root);
  if (!Off.isConst()) {
    Value *OffV = nullptr;
    if (Off.KI != 0)
      OffV = scaled(sym64(Syms.I), Off.KI, Root->name() + ".kxi");
    if (Off.KL != 0) {
      Value *T = scaled(sym64(Syms.L), Off.KL, Root->name() + ".kxl");
      OffV = OffV ? insertAtEnd(L.Preheader,
                                new BinOpInst(BinOpInst::Op::Add, OffV, T,
                                              Root->name() + ".kx"))
                  : T;
    }
    if (Off.C != 0)
      OffV = insertAtEnd(L.Preheader,
                         new BinOpInst(BinOpInst::Op::Add, OffV,
                                       M.constI64(static_cast<int64_t>(Off.C)),
                                       Root->name() + ".off"));
    Ptr = insertAtEnd(L.Preheader,
                      new GEPInst(cast<PointerType>(Ptr->type()), M.ctx().i8(),
                                  Ptr, {OffV}, Root->name() + ".hull"));
  } else if (Off.C != 0) {
    Ptr = insertAtEnd(L.Preheader,
                      new GEPInst(cast<PointerType>(Ptr->type()), M.ctx().i8(),
                                  Ptr, {M.constI64(static_cast<int64_t>(Off.C))},
                                  Root->name() + ".hull"));
  }
  insertAtEnd(L.Preheader,
              new SpatialCheckInst(Proto->type(), Ptr, Proto->bounds(),
                                   Proto->accessSize(), Proto->isStoreCheck(),
                                   Guard));
  Emitted[Key] = {std::max(It == Emitted.end() ? 0 : It->second.first,
                           Proto->accessSize()),
                  (It != Emitted.end() && It->second.second) ||
                      Proto->isStoreCheck()};
  ++Stats.HoistedChecksInserted;
  if (Guard)
    ++Stats.RuntimeHullChecks;
}

/// Collects the in-loop instructions (operands-first) that must move to
/// the preheader for \p V to be available there. Every node must be pure,
/// non-trapping, and rooted in loop-invariant leaves. Returns false when
/// \p V cannot be made available.
bool LoopHoister::collectAvailChain(Value *V,
                                    std::vector<Instruction *> &PostOrder,
                                    std::set<const Value *> &Visited,
                                    int Budget) {
  if (L.isInvariant(V))
    return true;
  if (Visited.count(V))
    return true;
  if (static_cast<int>(PostOrder.size()) >= Budget)
    return false;
  auto *I = dyn_cast<Instruction>(V);
  if (!I || !isSpeculatable(I))
    return false;
  Visited.insert(V);
  for (Value *Op : I->operands())
    if (!collectAvailChain(Op, PostOrder, Visited, Budget))
      return false;
  PostOrder.push_back(I);
  return true;
}

void LoopHoister::commitAvailChain(const std::vector<Instruction *> &PostOrder) {
  auto &Target = L.Preheader->instructions();
  for (Instruction *I : PostOrder) {
    BasicBlock *From = I->parent();
    auto &Src = From->instructions();
    for (auto It = Src.begin(); It != Src.end(); ++It) {
      if (It->get() != I)
        continue;
      Target.splice(std::prev(Target.end()), Src, It);
      I->setParent(L.Preheader);
      break;
    }
  }
}

void LoopHoister::hoistInBlock(BasicBlock *BB) {
  bool InHeader = BB == L.Header;
  for (auto It = BB->begin(); It != BB->end();) {
    auto *Chk = dyn_cast<SpatialCheckInst>(It->get());
    if (!Chk || !L.isInvariant(Chk->bounds())) {
      ++It;
      continue;
    }

    if (Shape.Constant && !InHeader && Shape.CL.BodyCount == 0) {
      // Provably dead body: the check never executes at all.
      It = BB->erase(It);
      ++Stats.LoopChecksHoisted;
      continue;
    }

    // --- Path 1: pointer (and guard) available on entry, possibly after
    // moving a pure chain. Covers plain invariant checks and the guarded
    // hull checks an inner loop's pass planted in its preheader.
    {
      Value *P = Chk->pointer();
      Value *G = Chk->guard();
      std::vector<Instruction *> Chain;
      std::set<const Value *> Visited;
      bool Avail = collectAvailChain(P, Chain, Visited, 64) &&
                   (!G || collectAvailChain(G, Chain, Visited, 64));
      if (Avail) {
        // Splice the moved chain in FIRST: everything emitted below (the
        // trip test, the conjoined guard, the hoisted check) must follow
        // the chain's definitions in the preheader, or the And would read
        // its guard operand before it is computed.
        commitAvailChain(Chain);
        Value *NewGuard = G;
        bool Discharged = false;
        if (Shape.Symbolic) {
          // A check hoisted out of a symbolic loop must not run on a
          // zero-trip pass: conjoin the *exact* trip test (false <=> the
          // body, and hence the original check, never executed) — unless
          // the propagated symbol ranges settle it.
          bool UsedArg = false;
          if (provablyZeroTrip(UsedArg)) {
            // Provably zero-trip at every call site: the check is dead.
            It = BB->erase(It);
            ++Stats.LoopChecksHoisted;
            ++Stats.RuntimeGuardsDischarged;
            if (UsedArg && DischargeUsed)
              *DischargeUsed = true;
            continue;
          }
          bool UsedArg2 = false;
          if (provablyTripsNow(UsedArg2)) {
            Discharged = true;
            if (UsedArg2 && DischargeUsed)
              *DischargeUsed = true;
          } else {
            NewGuard = G ? insertAtEnd(L.Preheader,
                                       new BinOpInst(BinOpInst::Op::And,
                                                     tripGuard(), G, "hull.g"))
                         : tripGuard();
          }
        }
        insertAtEnd(L.Preheader,
                    new SpatialCheckInst(Chk->type(), P, Chk->bounds(),
                                         Chk->accessSize(), Chk->isStoreCheck(),
                                         NewGuard));
        ++Stats.HoistedChecksInserted;
        if (NewGuard)
          ++Stats.RuntimeHullChecks;
        if (Discharged)
          ++Stats.RuntimeGuardsDischarged;
        ++Stats.LoopChecksHoisted;
        It = BB->erase(It);
        continue;
      }
    }

    // --- Path 2: affine hull. Guarded checks never take it: their guard
    // conditions belong to the pass invocation that emitted them.
    if (Chk->isGuarded()) {
      ++It;
      continue;
    }

    // IV values this check observes: body blocks run the body IV span;
    // a (constant-loop) header check additionally observes the exit IV.
    IVBox Box = Enclosing;
    if (Shape.Constant) {
      int64_t IvLast = InHeader ? Shape.CL.ExitIV : Shape.CL.LastBody;
      Box[Shape.CL.IV] =
          IVSpan{AffVal{std::min(Shape.CL.Init, IvLast), 0, 0},
                 AffVal{std::max(Shape.CL.Init, IvLast), 0, 0}};
    } else {
      Box[Shape.SCL.IV] = symbolicSpan(Shape.SCL);
    }

    SymRegion Win;
    LinPtr LP;
    std::set<const Value *> UsedDims;
    if (!linearizePtr(Chk->pointer(), L, Box, Syms, Win, UsedDims, LP)) {
      ++It;
      continue;
    }
    // Widening over an enclosing IV is only sound when the root pointer
    // and bounds are themselves invariant in that enclosing loop:
    // otherwise the corner check would pair the *current* iteration's root
    // with another iteration's offset — an address the original program
    // never computes.
    bool EnclosingOk = true;
    const Value *OwnIV = Shape.Constant
                             ? static_cast<const Value *>(Shape.CL.IV)
                             : static_cast<const Value *>(Shape.SCL.IV);
    for (const auto &[IV, A] : LP.Off.Coef) {
      if (A == 0 || IV == OwnIV)
        continue;
      const NaturalLoop *E = EnclosingLoops.at(IV);
      if (!E->isInvariant(LP.Root) || !E->isInvariant(Chk->bounds())) {
        EnclosingOk = false;
        break;
      }
      // Widening over E is equally unsound when a hull *symbol* varies
      // inside E: the corner would pair the live symbol value with other
      // E iterations' span points — a triangular nest (`i = j+1`), whose
      // mixed corners are addresses the program never computes. (A symbol
      // that IS E's IV never reaches here: that dimension was dropped
      // from the box up front and reads through the symbol instead.)
      if ((Syms.I && !E->isInvariant(Syms.I)) ||
          (Syms.L && !E->isInvariant(Syms.L))) {
        EnclosingOk = false;
        break;
      }
    }
    if (!EnclosingOk) {
      ++It;
      continue;
    }
    // The ancestor's span (and hence every obligation evaluated over it)
    // is only the true iteration set while the ancestor's own IV cannot
    // wrap — required whenever the expression *touched* that dimension,
    // even if its coefficient cancelled out of the final offset.
    bool AncestorSymUsed =
        AncestorSym && UsedDims.count(AncestorSym->IV) != 0;

    // The region: per-node obligations are already in Win; add the
    // IV-wrap windows of every symbolic dimension the hull relies on.
    // The hoisted loop's own trip test is a separate exact conjunct (its
    // hull checks run even when the loop would not); the ancestor's trip
    // is execution-implied (this preheader only runs inside its body),
    // so only its wrap window — and, for strided shapes, divisibility —
    // is needed.
    bool NeedTrip = Shape.Symbolic;
    // Divisibility validates only a strided span's closed-form endpoint,
    // so it is needed exactly when the expression touched that span's
    // dimension — for the hoisted loop just as for the ancestor.
    bool NeedDiv = (Shape.Symbolic && Shape.SCL.NeedDivis &&
                    UsedDims.count(Shape.SCL.IV) != 0) ||
                   (AncestorSymUsed && AncestorSym->NeedDivis);
    if (Shape.Symbolic) {
      requireMin(Win, limitAff(), Shape.SCL.LimitMin);
      requireMax(Win, limitAff(), Shape.SCL.LimitMax);
    }
    if (AncestorSymUsed) {
      requireMin(Win, limitAff(), AncestorSym->LimitMin);
      requireMax(Win, limitAff(), AncestorSym->LimitMax);
    }
    if (NeedDiv) {
      // Keep the divisibility test's i64 subtraction exact.
      requireMin(Win, initAff(), -CrossCMax);
      requireMax(Win, initAff(), CrossCMax);
      requireMin(Win, limitAff(), -CrossCMax);
      requireMax(Win, limitAff(), CrossCMax);
    }

    AffVal Min, Max;
    if (!extremes(LP.Off, Box, Min, Max)) {
      ++It;
      continue;
    }
    // Emitted `KI*I + KL*L + C` hull arithmetic must not wrap i64: each
    // product term stays far from the edge, and C must be emittable as
    // an i64 immediate with headroom (the final sum is region-bounded to
    // |offset| <= MaxByteOffset already).
    for (const AffVal *Corner : {&Min, &Max})
      if (!Corner->isConst()) {
        if (!fitsWidth(Corner->C, 64) || Corner->C > __int128(CrossCMax) ||
            Corner->C < -__int128(CrossCMax)) {
          Win.Empty = true;
          break;
        }
        if (Corner->KI != 0) {
          requireMin(Win, AffVal{0, Corner->KI, 0}, -MaxProductTerm);
          requireMax(Win, AffVal{0, Corner->KI, 0}, MaxProductTerm);
        }
        if (Corner->KL != 0) {
          requireMin(Win, AffVal{0, 0, Corner->KL}, -MaxProductTerm);
          requireMax(Win, AffVal{0, 0, Corner->KL}, MaxProductTerm);
        }
      }
    if (Win.Empty) {
      ++It;
      continue;
    }

    bool WantGuard = NeedTrip || NeedDiv || Win.bounded();
    Value *Guard = nullptr;
    if (WantGuard) {
      if (NeedTrip) {
        bool UsedArg = false;
        if (provablyZeroTrip(UsedArg)) {
          // Provably zero-trip at every call site: the check is dead.
          It = BB->erase(It);
          ++Stats.LoopChecksHoisted;
          ++Stats.RuntimeGuardsDischarged;
          if (UsedArg && DischargeUsed)
            *DischargeUsed = true;
          continue;
        }
      }
      bool UsedArg = false;
      if (rangeDischarges(Win, NeedTrip, NeedDiv, UsedArg)) {
        ++Stats.RuntimeGuardsDischarged;
        if (UsedArg && DischargeUsed)
          *DischargeUsed = true;
      } else {
        Guard = combinedGuard(Win, NeedTrip, NeedDiv);
      }
    }

    emitHull(LP.Root, Min, Chk, Guard);
    if (Max.C != Min.C || Max.KI != Min.KI || Max.KL != Min.KL)
      emitHull(LP.Root, Max, Chk, Guard);
    ++Stats.LoopChecksHoisted;
    if (Guard) {
      // Outside the region the loop keeps its original per-iteration
      // check: re-insert it guarded by the complement.
      BB->insertBefore(It, std::unique_ptr<Instruction>(new SpatialCheckInst(
                               Chk->type(), Chk->pointer(), Chk->bounds(),
                               Chk->accessSize(), Chk->isStoreCheck(),
                               notOf(Guard))));
      ++Stats.RuntimeGuardedFallbacks;
    }
    It = BB->erase(It);
  }
}

} // namespace

namespace softbound {
namespace checkopt {

void hoistLoopChecks(Function &F, CheckOptStats &Stats,
                     const CheckOptConfig &Cfg,
                     const std::map<const Argument *, IntRange> *ArgRanges,
                     bool *ArgRangeDischargeUsed) {
  if (!F.isDefinition())
    return;
  DomTree DT(F);
  std::vector<NaturalLoop> Loops = findSimpleLoops(F, DT);
  Stats.LoopsAnalyzed += Loops.size();
  Module &M = *F.parent();

  // One function-order index shared by every loop's hoister (block visit
  // order must be deterministic; see LoopHoister::run).
  LoopHoister::BlockPosMap BlockPos;
  {
    unsigned Pos = 0;
    for (const auto &BB : F.blocks())
      BlockPos[BB.get()] = Pos++;
  }

  // Counted-loop analysis and body-safety for every loop up front, so each
  // loop can borrow the IV ranges of its safe counted ancestors.
  std::vector<LoopShape> Shapes(Loops.size());
  for (size_t I = 0; I < Loops.size(); ++I) {
    LoopShape &S = Shapes[I];
    if (analyzeCountedLoop(Loops[I], S.CL)) {
      S.Constant = true;
      ++Stats.LoopsCounted;
    } else if (Cfg.RuntimeLimitHulls &&
               analyzeSymbolicCountedLoop(Loops[I], S.SCL)) {
      S.Symbolic = true;
      ++Stats.LoopsCountedRuntime;
      if (S.SCL.InitV)
        ++Stats.LoopsCountedSymInit;
      if (S.SCL.NeedDivis)
        ++Stats.LoopsCountedStrided;
    } else {
      continue;
    }
    S.Usable = loopBodyIsSafe(Loops[I]);
  }

  for (size_t I = 0; I < Loops.size(); ++I) {
    if (!Shapes[I].Usable)
      continue;
    const NaturalLoop &L = Loops[I];
    // Enclosing counted loops whose every iteration runs this loop in
    // full: the nest is rectangular, so their IV ranges may widen hulls
    // (subject to the per-check root/bounds invariance test above). At
    // most one symbolic dimension may exist per hull — the hoisted loop's
    // own bounds win; otherwise the first symbolic ancestor claims it.
    std::vector<size_t> Encl;
    for (size_t E = 0; E < Loops.size(); ++E) {
      if (E == I || !Shapes[E].Usable || !Loops[E].contains(L.Header))
        continue;
      if (!DT.dominates(L.Header, Loops[E].Latch))
        continue;
      Encl.push_back(E);
    }
    const SymbolicCountedLoop *AncestorSym = nullptr;
    if (!Shapes[I].Symbolic)
      for (size_t E : Encl)
        if (Shapes[E].Symbolic) {
          AncestorSym = &Shapes[E].SCL;
          break;
        }
    const SymbolicCountedLoop *SymSrc =
        Shapes[I].Symbolic ? &Shapes[I].SCL : AncestorSym;
    const Value *SymI = SymSrc ? SymSrc->InitV : nullptr;
    const Value *SymL = SymSrc ? SymSrc->Limit : nullptr;

    IVBox Enclosing;
    LoopHoister::LoopOfIV EnclosingLoops;
    for (size_t E : Encl) {
      if (Shapes[E].Constant) {
        const CountedLoop &CE = Shapes[E].CL;
        if (CE.BodyCount <= 0)
          continue;
        // A dimension whose IV *is* one of the symbols is never widened:
        // the hull would pair the symbol's one live value with other
        // iterations' span points — addresses the program never computes.
        // Dropping the dimension makes in-expression uses of the IV
        // linearize through the symbol leaf instead, which reads exactly
        // the current iteration's value.
        if (CE.IV == SymI || CE.IV == SymL)
          continue;
        Enclosing[CE.IV] =
            IVSpan{AffVal{std::min(CE.Init, CE.LastBody), 0, 0},
                   AffVal{std::max(CE.Init, CE.LastBody), 0, 0}};
        EnclosingLoops[CE.IV] = &Loops[E];
      } else if (Shapes[E].Symbolic && &Shapes[E].SCL == AncestorSym) {
        Enclosing[AncestorSym->IV] = symbolicSpan(*AncestorSym);
        EnclosingLoops[AncestorSym->IV] = &Loops[E];
      }
    }
    LoopHoister(M, L, Shapes[I], DT, BlockPos, Enclosing, EnclosingLoops,
                AncestorSym, ArgRanges, ArgRangeDischargeUsed, Stats)
        .run();
  }
}

} // namespace checkopt
} // namespace softbound
