//===- opt/checks/LoopHoist.h - loop check hoisting entry point -*- C++ -*-===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Entry point of the loop-hull hoisting sub-pass (LoopHoist.cpp). The
/// implementation notes — the affine-form model, the obligation region,
/// the guarded-fallback design and its soundness argument — live at the
/// top of LoopHoist.cpp; this header states only the caller contract.
///
//===----------------------------------------------------------------------===//

#ifndef SOFTBOUND_OPT_CHECKS_LOOPHOIST_H
#define SOFTBOUND_OPT_CHECKS_LOOPHOIST_H

#include "ir/Function.h"
#include "opt/checks/InterProc.h"

#include <map>

namespace softbound {

struct CheckOptConfig;
struct CheckOptStats;

namespace checkopt {

/// Replaces per-iteration spatial checks in counted loops of \p F with
/// pre-loop checks over the access range's convex hull, in place.
///
/// Contract and soundness preconditions:
///  * \p F must be verifier-clean; it stays verifier-clean.
///  * The pass only ever strengthens-or-moves-earlier the checked
///    conditions on any path: a run that would have trapped still traps
///    (possibly earlier, possibly reported as a spatial violation where
///    the original trap was of another kind), and a clean run stays
///    clean and keeps its exact observable behaviour.
///  * Checks it emits with an i1 guard operand may be skipped at run
///    time; they are valid *fact sources for no other pass* (see the
///    guarded-check rules in RedundantChecks.cpp / InterProc.cpp).
///  * \p ArgRanges (optional) must be a computeInterProcArgRanges()
///    result for the enclosing module that is still current — i.e. no
///    pass has changed any call argument's value since it was computed.
///    When a hull guard is discharged from it, \p ArgRangeDischargeUsed
///    (when non-null) is set and the caller MUST record the entry
///    contract on the module (Module::recordInterProcContract with the
///    ranges' Internal cohort) before the module runs.
void hoistLoopChecks(Function &F, CheckOptStats &Stats,
                     const CheckOptConfig &Cfg,
                     const std::map<const Argument *, IntRange> *ArgRanges,
                     bool *ArgRangeDischargeUsed);

} // namespace checkopt
} // namespace softbound

#endif // SOFTBOUND_OPT_CHECKS_LOOPHOIST_H
