//===- opt/checks/InterProc.cpp - inter-procedural bounds propagation -------===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implementation of the propagation described in InterProc.h. The moving
/// parts, in the order they appear below:
///
///   * IntRange arithmetic — interval transfer functions that mirror the
///     VM's wrap-around semantics: any result whose exact endpoints
///     escape the type's signed window collapses to the type's full
///     range, so the lattice stays sound whether or not a computation
///     wraps. This includes the i64 window itself (the VM wraps 64-bit
///     arithmetic, canon() is the identity there), so transfers never
///     saturate endpoints — a saturated bound would claim a wrapped value
///     still lies on the unwrapped side.
///   * ScalarRanges — per-function interval analysis: RPO fixpoint with
///     phi widening (thresholds {0, +/-inf}) and branch-condition
///     refinement accumulated down the dominator tree, so `if (i < 128)`
///     and `while (top > 0)` guards narrow their regions.
///   * CanonBounds — bounds values normalized to (anchor, [Lo, Hi))
///     intervals; two MakeBounds over the same anchor with equal offsets
///     denote the same dynamic bounds, and a whole-global canon is the
///     license for static range elision (shrunk sub-object bounds never
///     canonicalize to their global).
///   * FactEnv — scoped facts keyed (root, scale, index, bounds) holding
///     proven byte-interval sets, the symbolic generalization of
///     RangeAnalysis.h's ProvenRanges.
///   * Summaries + substitution — per-function argument/global check
///     requirements, must-execute check hulls, and return-checked hulls,
///     each substitutable at a call site through the sbabi layout.
///   * The Engine — argument-range propagation to fixpoint, one fact walk
///     per function, and the final mark-and-sweep.
///
//===----------------------------------------------------------------------===//

#include "opt/checks/InterProc.h"

#include "ir/InstOrder.h"
#include "opt/Dominators.h"
#include "opt/Passes.h"
#include "opt/checks/CallGraph.h"
#include "opt/checks/CheckOpt.h"
#include "opt/checks/Predicates.h"
#include "opt/checks/RangeAnalysis.h"
#include "softbound/SoftBoundPass.h"
#include "support/Casting.h"

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <vector>

using namespace softbound;
using namespace softbound::checkopt;

//===----------------------------------------------------------------------===//
// Interval arithmetic
//===----------------------------------------------------------------------===//

namespace {

int64_t sat(__int128 V) {
  if (V < INT64_MIN)
    return INT64_MIN;
  if (V > INT64_MAX)
    return INT64_MAX;
  return static_cast<int64_t>(V);
}

/// True when \p V lies outside the i64 lattice domain. A transfer whose
/// exact endpoint escapes must collapse to IntRange::full(), never
/// saturate: the VM wraps 64-bit arithmetic, so the runtime value lands
/// on the *other* side of the window, outside any saturated interval —
/// and clampWidth cannot catch the escape at width 64 because
/// fullWidth(64) contains every saturated range.
bool escapesI64(__int128 V) { return V < INT64_MIN || V > INT64_MAX; }

IntRange join(IntRange A, IntRange B) {
  if (A.empty())
    return B;
  if (B.empty())
    return A;
  return {std::min(A.Lo, B.Lo), std::max(A.Hi, B.Hi)};
}

IntRange meet(IntRange A, IntRange B) {
  if (A.empty() || B.empty())
    return IntRange();
  IntRange R{std::max(A.Lo, B.Lo), std::min(A.Hi, B.Hi)};
  return R.Lo > R.Hi ? IntRange() : R;
}

/// The canonical value range of a \p Bits-wide integer. i1 is special: the
/// VM stores comparison results as raw 0/1 but canonicalizes arithmetic
/// results, so both 1 and -1 can represent true.
IntRange fullWidth(unsigned Bits) {
  if (Bits >= 64)
    return IntRange::full();
  if (Bits <= 1)
    return IntRange::make(-1, 1);
  int64_t M = int64_t(1) << (Bits - 1);
  return IntRange::make(-M, M - 1);
}

/// Threshold widening for a value whose joined inputs are already
/// canonical in \p Bits: a bound that moved jumps to 0 first
/// (non-negativity is the property the global-array proofs need), then to
/// the width's window edge — never past it, so a widened non-negative
/// lower bound survives the width clamp.
IntRange widen(IntRange Old, IntRange New, unsigned Bits) {
  if (Old.empty())
    return New;
  IntRange FW = fullWidth(Bits);
  IntRange W = New;
  if (New.Lo < Old.Lo)
    W.Lo = New.Lo >= 0 ? 0 : FW.Lo;
  if (New.Hi > Old.Hi)
    W.Hi = New.Hi <= 0 ? 0 : FW.Hi;
  return W;
}

/// Collapses any range escaping the type's canonical window to the full
/// window — sound whether the escaping computation wraps (the VM
/// canonicalizes) or not.
IntRange clampWidth(IntRange R, unsigned Bits) {
  if (R.empty())
    return R;
  IntRange FW = fullWidth(Bits);
  return FW.contains(R.Lo, R.Hi) ? R : FW;
}

IntRange addR(IntRange A, IntRange B) {
  if (A.empty() || B.empty())
    return IntRange();
  __int128 Lo = __int128(A.Lo) + B.Lo, Hi = __int128(A.Hi) + B.Hi;
  if (escapesI64(Lo) || escapesI64(Hi))
    return IntRange::full();
  return {static_cast<int64_t>(Lo), static_cast<int64_t>(Hi)};
}

IntRange subR(IntRange A, IntRange B) {
  if (A.empty() || B.empty())
    return IntRange();
  __int128 Lo = __int128(A.Lo) - B.Hi, Hi = __int128(A.Hi) - B.Lo;
  if (escapesI64(Lo) || escapesI64(Hi))
    return IntRange::full();
  return {static_cast<int64_t>(Lo), static_cast<int64_t>(Hi)};
}

IntRange mulR(IntRange A, IntRange B) {
  if (A.empty() || B.empty())
    return IntRange();
  __int128 C[4] = {__int128(A.Lo) * B.Lo, __int128(A.Lo) * B.Hi,
                   __int128(A.Hi) * B.Lo, __int128(A.Hi) * B.Hi};
  __int128 Lo = C[0], Hi = C[0];
  for (__int128 V : C) {
    Lo = std::min(Lo, V);
    Hi = std::max(Hi, V);
  }
  if (escapesI64(Lo) || escapesI64(Hi))
    return IntRange::full();
  return {static_cast<int64_t>(Lo), static_cast<int64_t>(Hi)};
}

/// Truncating signed division by a provably positive divisor range.
IntRange divR(IntRange A, IntRange B) {
  if (A.empty() || B.empty())
    return IntRange();
  if (B.Lo < 1)
    return IntRange::full();
  int64_t C[4] = {A.Lo / B.Lo, A.Lo / B.Hi, A.Hi / B.Lo, A.Hi / B.Hi};
  return {*std::min_element(C, C + 4), *std::max_element(C, C + 4)};
}

/// Signed remainder by a provably positive divisor range: |result| is
/// bounded by divisor-1 and by the dividend, and takes the dividend's sign.
IntRange remR(IntRange A, IntRange B) {
  if (A.empty() || B.empty())
    return IntRange();
  if (B.Lo < 1)
    return IntRange::full();
  int64_t M = B.Hi - 1;
  int64_t Lo = A.Lo >= 0 ? 0 : std::max(A.Lo, -M);
  int64_t Hi = A.Hi <= 0 ? 0 : std::min(A.Hi, M);
  return {Lo, Hi};
}

//===----------------------------------------------------------------------===//
// Branch refinement
//===----------------------------------------------------------------------===//

/// One `v PRED C` fact attached to a block or edge, keyed on the
/// sign-extension-stripped SSA value.
struct Refine {
  const Value *Key;
  ICmpInst::Pred P;
  int64_t C;
};

IntRange applyRefine(IntRange R, ICmpInst::Pred P, int64_t C) {
  using Pred = ICmpInst::Pred;
  if (R.empty())
    return R;
  switch (P) {
  case Pred::SLT:
    if (C == INT64_MIN)
      return IntRange();
    R.Hi = std::min(R.Hi, C - 1);
    break;
  case Pred::SLE:
    R.Hi = std::min(R.Hi, C);
    break;
  case Pred::SGT:
    if (C == INT64_MAX)
      return IntRange();
    R.Lo = std::max(R.Lo, C + 1);
    break;
  case Pred::SGE:
    R.Lo = std::max(R.Lo, C);
    break;
  case Pred::EQ:
    return meet(R, IntRange::of(C));
  case Pred::NE:
    if (R.Lo == C && R.Lo < INT64_MAX)
      R.Lo = C + 1;
    if (R.Hi == C && R.Hi > INT64_MIN)
      R.Hi = C - 1;
    break;
  // Unsigned comparisons against a non-negative (sign-extended) constant:
  // a negative canonical value masks to >= 2^(w-1) > C, so `v u< C`
  // implies v in [0, C-1]. Negative constants and the >= direction carry
  // no interval information (the satisfying set has a hole).
  case Pred::ULT:
    if (C >= 0)
      return meet(R, IntRange::make(0, C - 1));
    break;
  case Pred::ULE:
    if (C >= 0)
      return meet(R, IntRange::make(0, C));
    break;
  case Pred::UGT:
  case Pred::UGE:
    break;
  }
  return R.Lo > R.Hi ? IntRange() : R;
}

/// Extracts a `value PRED constant` refinement from \p IC, or false.
bool extractRefine(const ICmpInst *IC, Refine &Out) {
  if (!IC->lhs()->type()->isInt())
    return false;
  if (auto *C = dyn_cast<ConstantInt>(IC->rhs());
      C && !isa<ConstantInt>(IC->lhs())) {
    Out = {stripSExt(IC->lhs()), IC->pred(), C->value()};
    return true;
  }
  if (auto *C = dyn_cast<ConstantInt>(IC->lhs());
      C && !isa<ConstantInt>(IC->rhs())) {
    Out = {stripSExt(IC->rhs()), swapPred(IC->pred()), C->value()};
    return true;
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Per-function scalar range analysis
//===----------------------------------------------------------------------===//

class ScalarRanges {
public:
  ScalarRanges(Function &F, const DomTree &DT,
               const std::vector<IntRange> &ArgRanges)
      : F(F), DT(DT), Args(ArgRanges) {
    for (BasicBlock *BB : DT.rpo())
      Reachable.insert(BB);
    buildRefinements();
    iterate();
  }

  /// Range of \p V's canonical value when observed in \p B. An
  /// interrupted ascending fixpoint under-approximates, which would be
  /// unsound to act on, so external queries degrade to the type's full
  /// window unless the iteration converged.
  IntRange at(const Value *V, const BasicBlock *B) const {
    if (isa<ConstantInt>(V))
      return base(V);
    if (!Converged)
      return V->type()->isInt()
                 ? fullWidth(cast<IntType>(V->type())->bits())
                 : IntRange::full();
    return atImpl(V, B);
  }

private:
  /// The unguarded lookup the fixpoint itself evaluates with.
  IntRange atImpl(const Value *V, const BasicBlock *B) const {
    IntRange R = base(V);
    if (isa<ConstantInt>(V))
      return R;
    const Value *Key = stripSExt(const_cast<Value *>(V));
    auto It = AccRef.find(B);
    if (It != AccRef.end())
      for (const Refine &Rf : It->second)
        if (Rf.Key == Key)
          R = applyRefine(R, Rf.P, Rf.C);
    return R;
  }
  IntRange base(const Value *V) const {
    if (auto *C = dyn_cast<ConstantInt>(V))
      return IntRange::of(C->value());
    if (auto *A = dyn_cast<Argument>(V)) {
      if (A->parent() != &F || !A->type()->isInt())
        return IntRange::full();
      IntRange R = A->index() < Args.size() ? Args[A->index()]
                                            : IntRange::full();
      return clampWidth(R, cast<IntType>(A->type())->bits());
    }
    if (auto *I = dyn_cast<Instruction>(V)) {
      auto It = Ranges.find(I);
      return It == Ranges.end() ? IntRange() : It->second;
    }
    return IntRange::full(); // Undef and friends: anything.
  }

  /// Range of \p V on the \p P -> \p B edge (for phi incomings).
  IntRange atEdge(const Value *V, const BasicBlock *P,
                  const BasicBlock *B) const {
    IntRange R = atImpl(V, P);
    if (isa<ConstantInt>(V))
      return R;
    const Value *Key = stripSExt(const_cast<Value *>(V));
    auto It = EdgeRef.find({P, B});
    if (It != EdgeRef.end())
      for (const Refine &Rf : It->second)
        if (Rf.Key == Key)
          R = applyRefine(R, Rf.P, Rf.C);
    return R;
  }

  void buildRefinements() {
    for (BasicBlock *BB : DT.rpo()) {
      if (BB->empty())
        continue;
      auto *Br = dyn_cast<BrInst>(BB->terminator());
      if (!Br || !Br->isConditional() ||
          Br->successor(0) == Br->successor(1))
        continue;
      bool Negate = false;
      const ICmpInst *IC = peelCondition(Br->condition(), Negate);
      Refine R;
      if (!IC || !extractRefine(IC, R))
        continue;
      if (Negate) // The branch tests the comparison's complement.
        R.P = invertPred(R.P);
      EdgeRef[{BB, Br->successor(0)}].push_back(R);
      EdgeRef[{BB, Br->successor(1)}].push_back(
          {R.Key, invertPred(R.P), R.C});
    }
    // Accumulate down the dominator tree: a block with a unique CFG
    // predecessor inherits that edge's refinements for itself and its
    // dominated subtree. Iterative preorder (a pathologically deep CFG
    // must not overflow the host stack); a block's immediate dominator is
    // always processed before the block itself.
    std::vector<BasicBlock *> Work{F.entry()};
    while (!Work.empty()) {
      BasicBlock *BB = Work.back();
      Work.pop_back();
      std::vector<Refine> Acc;
      if (BasicBlock *P = DT.idom(BB))
        Acc = AccRef[P];
      const auto &Preds = DT.preds(BB);
      if (Preds.size() == 1) {
        auto It = EdgeRef.find({Preds[0], BB});
        if (It != EdgeRef.end())
          for (const Refine &R : It->second)
            Acc.push_back(R);
      }
      AccRef[BB] = std::move(Acc);
      for (BasicBlock *Child : DT.children(BB))
        Work.push_back(Child);
    }
  }

  IntRange evalInst(const Instruction *I, const BasicBlock *B) const {
    unsigned Bits = I->type()->isInt() ? cast<IntType>(I->type())->bits() : 64;
    switch (I->kind()) {
    case ValueKind::Phi: {
      auto *P = cast<PhiInst>(I);
      IntRange R;
      for (unsigned K = 0; K < P->numIncoming(); ++K) {
        BasicBlock *Pred = P->incomingBlock(K);
        if (!Reachable.count(Pred))
          continue;
        R = join(R, atEdge(P->incomingValue(K), Pred, B));
      }
      return clampWidth(R, Bits);
    }
    case ValueKind::BinOp: {
      auto *BO = cast<BinOpInst>(I);
      IntRange L = atImpl(BO->lhs(), B), R = atImpl(BO->rhs(), B);
      if (L.empty() || R.empty())
        return IntRange();
      IntRange Out;
      switch (BO->opcode()) {
      case BinOpInst::Op::Add:
        Out = addR(L, R);
        break;
      case BinOpInst::Op::Sub:
        Out = subR(L, R);
        break;
      case BinOpInst::Op::Mul:
        Out = mulR(L, R);
        break;
      case BinOpInst::Op::SDiv:
        Out = divR(L, R);
        break;
      case BinOpInst::Op::SRem:
        Out = remR(L, R);
        break;
      case BinOpInst::Op::UDiv:
      case BinOpInst::Op::URem: {
        // The VM masks operands to the unsigned width; when both ranges
        // are provably within the non-negative signed window the masking
        // is the identity and the signed rules apply.
        IntRange NonNeg = IntRange::make(0, fullWidth(Bits).Hi);
        if (NonNeg.contains(L.Lo, L.Hi) && NonNeg.contains(R.Lo, R.Hi))
          Out = BO->opcode() == BinOpInst::Op::UDiv ? divR(L, R) : remR(L, R);
        else
          Out = fullWidth(Bits);
        break;
      }
      case BinOpInst::Op::And:
        Out = (L.Lo >= 0 && R.Lo >= 0)
                  ? IntRange::make(0, std::min(L.Hi, R.Hi))
                  : fullWidth(Bits);
        break;
      default:
        Out = fullWidth(Bits);
        break;
      }
      return clampWidth(Out, Bits);
    }
    case ValueKind::ICmp:
      return IntRange::make(0, 1);
    case ValueKind::Cast: {
      auto *C = cast<CastInst>(I);
      switch (C->opcode()) {
      case CastInst::Op::SExt:
        return clampWidth(atImpl(C->source(), B), Bits);
      case CastInst::Op::ZExt: {
        IntRange S = atImpl(C->source(), B);
        unsigned SrcBits = cast<IntType>(C->source()->type())->bits();
        if (S.empty())
          return S;
        if (S.Lo >= 0)
          return clampWidth(S, Bits);
        if (SrcBits >= 64)
          return fullWidth(Bits);
        return clampWidth(
            IntRange::make(0, (int64_t(1) << SrcBits) - 1), Bits);
      }
      case CastInst::Op::Trunc: {
        IntRange S = atImpl(C->source(), B);
        if (S.empty())
          return S;
        return fullWidth(Bits).contains(S.Lo, S.Hi) ? S : fullWidth(Bits);
      }
      default:
        return fullWidth(Bits);
      }
    }
    case ValueKind::Select: {
      auto *S = cast<SelectInst>(I);
      return clampWidth(join(atImpl(S->ifTrue(), B), atImpl(S->ifFalse(), B)),
                        Bits);
    }
    default:
      return fullWidth(Bits); // Loads, calls, extracts: unknown.
    }
  }

  void iterate() {
    // Optimistic ascending fixpoint: everything starts empty, phis widen
    // after round 3 so decreasing counters and recursions terminate.
    // Widening bounds each phi to two more moves, so convergence within
    // the round budget is the overwhelmingly common case; if a deep phi
    // chain ever exhausts it, Converged stays false and at() degrades to
    // full-width answers rather than trusting a half-climbed lattice.
    for (unsigned Round = 0; Round < 16; ++Round) {
      bool Changed = false;
      for (BasicBlock *BB : DT.rpo()) {
        for (const auto &IP : *BB) {
          Instruction *I = IP.get();
          if (!I->type()->isInt())
            continue;
          unsigned Bits = cast<IntType>(I->type())->bits();
          IntRange New = evalInst(I, BB);
          IntRange &Slot = Ranges[I];
          IntRange J = join(Slot, New);
          if (Round >= 3 && isa<PhiInst>(I))
            J = widen(Slot, J, Bits);
          J = clampWidth(J, Bits);
          if (J != Slot) {
            Slot = J;
            Changed = true;
          }
        }
      }
      if (!Changed) {
        Converged = true;
        break;
      }
    }
  }

  Function &F;
  const DomTree &DT;
  std::vector<IntRange> Args;
  bool Converged = false;
  std::set<const BasicBlock *> Reachable;
  std::map<const Instruction *, IntRange> Ranges;
  std::map<const BasicBlock *, std::vector<Refine>> AccRef;
  std::map<std::pair<const BasicBlock *, const BasicBlock *>,
           std::vector<Refine>>
      EdgeRef;
};

//===----------------------------------------------------------------------===//
// Bounds canonicalization
//===----------------------------------------------------------------------===//

/// A bounds value normalized to anchor + [Lo, Hi) when its MakeBounds
/// decomposes over one root (whole globals, shrunk fields, allocas);
/// otherwise an opaque identity (Sized == false, Anchor == the SSA value).
struct CanonBounds {
  const Value *Anchor = nullptr;
  int64_t Lo = 0, Hi = 0;
  bool Sized = false;

  bool operator==(const CanonBounds &O) const {
    return Anchor == O.Anchor && Lo == O.Lo && Hi == O.Hi && Sized == O.Sized;
  }
  bool operator<(const CanonBounds &O) const {
    return std::tie(Anchor, Lo, Hi, Sized) <
           std::tie(O.Anchor, O.Lo, O.Hi, O.Sized);
  }
};

CanonBounds canonBounds(Value *B) {
  CanonBounds CB;
  CB.Anchor = B;
  auto *MB = dyn_cast<MakeBoundsInst>(B);
  if (!MB)
    return CB;
  LinearPtr LB = decomposeLinearPtr(MB->base());
  LinearPtr LE = decomposeLinearPtr(MB->bound());
  if (LB.Index || LE.Index || LB.Root != LE.Root)
    return CB;
  CB.Anchor = LB.Root;
  CB.Lo = LB.Base;
  CB.Hi = LE.Base;
  CB.Sized = true;
  return CB;
}

/// The global whose entire object \p CB spans, or null.
const GlobalVariable *wholeGlobal(const CanonBounds &CB) {
  auto *G = dyn_cast<GlobalVariable>(CB.Anchor);
  if (!CB.Sized || !G || CB.Lo != 0 ||
      CB.Hi != static_cast<int64_t>(G->valueType()->sizeInBytes()))
    return nullptr;
  return G;
}

//===----------------------------------------------------------------------===//
// Fact environment
//===----------------------------------------------------------------------===//

/// Key of one provable family of byte intervals: bytes
/// [I.Lo, I.Hi) past (Root + Scale * Index) lie inside Bounds.
struct FactKey {
  const Value *Root = nullptr;
  int64_t Scale = 0;
  const Value *Index = nullptr;
  CanonBounds B;

  bool operator<(const FactKey &O) const {
    return std::tie(Root, Scale, Index, B) <
           std::tie(O.Root, O.Scale, O.Index, O.B);
  }
};

/// Scoped FactKey -> IntervalSet table for the dominator-tree walk
/// (ProvenRanges with the symbolic key). The walk snapshots mark() when
/// entering a tree node and rollbackTo() when leaving it, so only facts
/// established on the dominating path stay visible.
class FactEnv {
public:
  bool covers(const FactKey &K, int64_t Lo, int64_t Hi) const {
    auto It = Facts.find(K);
    return It != Facts.end() && It->second.covers(Lo, Hi);
  }

  void add(const FactKey &K, int64_t Lo, int64_t Hi) {
    if (Lo >= Hi)
      return;
    Undo.emplace_back(K, Facts[K]);
    Facts[K].add(Lo, Hi);
  }

  size_t mark() const { return Undo.size(); }

  void rollbackTo(size_t Mark) {
    while (Undo.size() > Mark) {
      Facts[Undo.back().first] = std::move(Undo.back().second);
      Undo.pop_back();
    }
  }

private:
  std::map<FactKey, IntervalSet> Facts;
  std::vector<std::pair<FactKey, IntervalSet>> Undo;
};

//===----------------------------------------------------------------------===//
// Summaries
//===----------------------------------------------------------------------===//

/// One check of a callee in substitutable form. The checked bytes are
/// [Base, Base + Size) past the root, plus Scale * (integer argument
/// IdxArgNo) when IdxArgNo >= 0.
struct CheckReq {
  SpatialCheckInst *Check = nullptr;
  bool GlobalRootK = false;
  unsigned ArgNo = 0;               ///< Pointer parameter (argument roots).
  const GlobalVariable *G = nullptr; ///< Global roots.
  int64_t Base = 0, Scale = 0;
  int IdxArgNo = -1;
  int64_t Size = 0;
  enum class BK { ArgBounds, WholeGlobal, SizedFromArg } Bk = BK::ArgBounds;
  int64_t BLo = 0, BHi = 0; ///< SizedFromArg: bounds anchor offsets.
};

struct FuncSummary {
  std::vector<CheckReq> Elidable;  ///< Callee-side elision candidates.
  std::vector<CheckReq> MustCheck; ///< Dominate-every-return facts.
  /// Checks that execute immediately on entry, before any call, memory
  /// access, or other observable effect (an entry-block prefix of pure
  /// instructions and checks). Only these may justify sinking a caller's
  /// duplicate: the callee re-verifies before an exit()/longjmp or any
  /// output could intervene, so the trap only moves from "just before
  /// the call" to "just inside it".
  std::vector<CheckReq> EntryChecks;
  IntervalSet RetChecked; ///< Bytes past the returned ptr checked against
                          ///< the returned bounds on every return path.
  bool HasRet = false;
};

IntervalSet intersectSets(const IntervalSet &A, const IntervalSet &B) {
  IntervalSet Out;
  const auto &IA = A.intervals();
  const auto &IB = B.intervals();
  size_t I = 0, J = 0;
  while (I < IA.size() && J < IB.size()) {
    int64_t Lo = std::max(IA[I].Lo, IB[J].Lo);
    int64_t Hi = std::min(IA[I].Hi, IB[J].Hi);
    if (Lo < Hi)
      Out.add(Lo, Hi);
    if (IA[I].Hi < IB[J].Hi)
      ++I;
    else
      ++J;
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Engine
//===----------------------------------------------------------------------===//

class Engine {
public:
  explicit Engine(Module &M) : M(M), CG(M) {
    for (const auto &F : M.functions())
      if (F->isDefinition())
        Defined.push_back(F.get());
  }

  unsigned run(CheckOptStats &Stats,
               const std::map<const Argument *, IntRange> *Seed = nullptr);

  /// Just the argument-range phase (see InterProc.h
  /// computeInterProcArgRanges).
  InterProcArgRanges argRanges();

private:
  void prepare();
  void adoptArgRanges(const std::map<const Argument *, IntRange> &Seed);

  struct FuncInfo {
    std::unique_ptr<DomTree> DT;
    std::unique_ptr<InstOrder> Ord;
    std::unique_ptr<ScalarRanges> SR;
    /// Call -> (ExtractPtr, ExtractBounds) users, for return summaries.
    std::map<const CallInst *, std::pair<Value *, Value *>> Extracts;
  };

  enum class Reason { Range, Caller, Sunk, Callee };

  void propagateArgRanges();
  void summarize(Function &F);
  void walk(Function &F);
  void walkBlockBody(FuncInfo &FI, FactEnv &Env, BasicBlock *BB);
  void visitCheck(FuncInfo &FI, FactEnv &Env, BasicBlock *BB,
                  BasicBlock::iterator It);
  void visitCall(FactEnv &Env, CallInst *Call, Function *Callee);
  bool substituteReq(const CheckReq &R, const CallInst &Call,
                     const Function &Callee, FactKey &Key, int64_t &Lo,
                     int64_t &Hi) const;
  void mark(SpatialCheckInst *C, Reason R) { Deleted.emplace(C, R); }

  Module &M;
  CallGraph CG;
  std::vector<Function *> Defined;
  std::map<const Function *, FuncInfo> Infos;
  std::map<const Function *, FuncSummary> Summaries;
  std::map<const Function *, std::vector<IntRange>> ArgRanges;
  std::map<SpatialCheckInst *, bool> AllSitesProve;
  std::map<SpatialCheckInst *, Reason> Deleted;
};

void Engine::propagateArgRanges() {
  for (Function *F : Defined) {
    std::vector<IntRange> Init(F->numArgs());
    for (unsigned I = 0; I < F->numArgs(); ++I)
      if (CG.externallyReachable(F))
        Init[I] = F->arg(I)->type()->isInt()
                      ? fullWidth(cast<IntType>(F->arg(I)->type())->bits())
                      : IntRange::full();
    ArgRanges[F] = std::move(Init);
  }

  // Chaotic top-down iteration, callers first; argument ranges only grow,
  // and widening after round 3 bounds the climb through recursions. A
  // cascade that outlives the round budget (very deep call chains) must
  // not leave half-climbed — i.e. under-approximated — ranges behind, so
  // non-convergence falls back to full-width arguments everywhere.
  // ScalarRanges is a pure function of (F, ArgRanges[F]), so a caller's
  // analysis is cached and only rebuilt after its own argument ranges
  // moved — most functions settle in the first round and would otherwise
  // pay the per-function fixpoint on every one of the 16 rounds.
  std::vector<Function *> TopDown(CG.bottomUp().rbegin(),
                                  CG.bottomUp().rend());
  std::map<const Function *, std::unique_ptr<ScalarRanges>> SRCache;
  std::set<const Function *> Dirty(Defined.begin(), Defined.end());
  bool Converged = false;
  for (unsigned Round = 0; Round < 16 && !Converged; ++Round) {
    bool Changed = false;
    for (Function *F : TopDown) {
      if (CG.callSitesIn(F).empty())
        continue;
      std::unique_ptr<ScalarRanges> &SRp = SRCache[F];
      if (!SRp || Dirty.count(F)) {
        SRp = std::make_unique<ScalarRanges>(*F, *Infos[F].DT, ArgRanges[F]);
        Dirty.erase(F);
      }
      const ScalarRanges &SR = *SRp;
      for (unsigned SiteId : CG.callSitesIn(F)) {
        const CallSite &S = CG.callSites()[SiteId];
        if (CG.externallyReachable(S.Callee))
          continue; // Already full.
        auto &Callee = ArgRanges[S.Callee];
        unsigned N = std::min<unsigned>(S.Call->numArgs(), Callee.size());
        for (unsigned J = 0; J < N; ++J) {
          if (!S.Callee->arg(J)->type()->isInt())
            continue;
          IntRange R = SR.at(S.Call->arg(J), S.Call->parent());
          IntRange Joined = join(Callee[J], R);
          if (Round >= 3)
            Joined = widen(Callee[J], Joined,
                           cast<IntType>(S.Callee->arg(J)->type())->bits());
          if (Joined != Callee[J]) {
            Callee[J] = Joined;
            Dirty.insert(S.Callee);
            Changed = true;
          }
        }
      }
    }
    Converged = !Changed;
  }
  if (!Converged) {
    for (Function *F : Defined)
      for (unsigned I = 0; I < F->numArgs(); ++I)
        ArgRanges[F][I] =
            F->arg(I)->type()->isInt()
                ? fullWidth(cast<IntType>(F->arg(I)->type())->bits())
                : IntRange::full();
    SRCache.clear(); // Every cached analysis saw narrower arguments.
  }

  // Final per-function analyses for the fact walk: adopt cached ones
  // whose inputs already are the final argument ranges; build the rest
  // (leaf functions are never visited above, so never cached).
  for (Function *F : Defined) {
    auto It = SRCache.find(F);
    if (It != SRCache.end() && It->second && !Dirty.count(F))
      Infos[F].SR = std::move(It->second);
    else
      Infos[F].SR =
          std::make_unique<ScalarRanges>(*F, *Infos[F].DT, ArgRanges[F]);
  }
}

void Engine::summarize(Function &F) {
  FuncInfo &FI = Infos[&F];
  FuncSummary &Sum = Summaries[&F];
  unsigned OrigCount = sbabi::originalParamCount(F);
  bool Analyzable = !CG.externallyReachable(&F);

  std::vector<RetInst *> Rets;
  for (const auto &BB : F.blocks())
    for (const auto &IP : *BB)
      if (auto *R = dyn_cast<RetInst>(IP.get()))
        Rets.push_back(R);

  // The must-execute-first entry prefix: checks reached before anything
  // observable (see FuncSummary::EntryChecks).
  std::set<const SpatialCheckInst *> EntryPrefix;
  for (const auto &IP : *F.entry()) {
    Instruction *I = IP.get();
    if (auto *C = dyn_cast<SpatialCheckInst>(I)) {
      // A guarded check may be skipped at run time, so it can never be a
      // must-execute entry check; stepping over it is fine (it has no
      // effect beyond a possible — equally fatal — trap).
      if (!C->isGuarded())
        EntryPrefix.insert(C);
      continue;
    }
    if (!isUnobservableBeforeCheck(I))
      break;
  }

  for (const auto &BB : F.blocks()) {
    for (const auto &IP : *BB) {
      auto *C = dyn_cast<SpatialCheckInst>(IP.get());
      if (!C || C->isGuarded())
        continue;
      LinearPtr L = decomposeLinearPtr(C->pointer());
      CanonBounds CB = canonBounds(C->bounds());

      CheckReq R;
      R.Check = C;
      R.Base = L.Base;
      R.Scale = L.Scale;
      R.Size = static_cast<int64_t>(C->accessSize());

      if (L.Index) {
        auto *A = dyn_cast<Argument>(L.Index);
        if (!A || A->parent() != &F || A->index() >= OrigCount ||
            !A->type()->isInt())
          continue;
        R.IdxArgNo = static_cast<int>(A->index());
      }

      if (auto *G = dyn_cast<GlobalVariable>(L.Root)) {
        if (wholeGlobal(CB) != G)
          continue;
        R.GlobalRootK = true;
        R.G = G;
        R.Bk = CheckReq::BK::WholeGlobal;
      } else if (auto *A = dyn_cast<Argument>(L.Root)) {
        if (A->parent() != &F || A->index() >= OrigCount ||
            !A->type()->isPointer())
          continue;
        R.ArgNo = A->index();
        if (CB.Sized) {
          if (CB.Anchor != A)
            continue;
          R.Bk = CheckReq::BK::SizedFromArg;
          R.BLo = CB.Lo;
          R.BHi = CB.Hi;
        } else {
          int BIdx = sbabi::boundsParamIndex(F, A->index());
          if (BIdx < 0 || CB.Anchor != F.arg(static_cast<unsigned>(BIdx)))
            continue;
          R.Bk = CheckReq::BK::ArgBounds;
        }
      } else {
        continue;
      }

      if (Analyzable)
        Sum.Elidable.push_back(R);
      bool DominatesRets = !Rets.empty();
      for (RetInst *Ret : Rets)
        DominatesRets =
            DominatesRets && instDominates(*FI.DT, *FI.Ord, C, Ret);
      if (DominatesRets)
        Sum.MustCheck.push_back(R);
      if (EntryPrefix.count(C))
        Sum.EntryChecks.push_back(R);
    }
  }

  // Return summary: bytes past the returned pointer checked against the
  // returned bounds, intersected over every return path.
  if (!Rets.empty()) {
    bool First = true;
    bool AllPacked = true;
    IntervalSet Hull;
    for (RetInst *Ret : Rets) {
      auto *Pack = Ret->hasValue()
                       ? dyn_cast<PackPBInst>(Ret->value())
                       : nullptr;
      if (!Pack) {
        AllPacked = false;
        break;
      }
      LinearPtr LV = decomposeLinearPtr(Pack->pointer());
      CanonBounds CBv = canonBounds(Pack->bounds());
      IntervalSet SetR;
      if (!LV.Index) {
        for (const auto &BB : F.blocks())
          for (const auto &IP : *BB) {
            auto *C = dyn_cast<SpatialCheckInst>(IP.get());
            if (!C || C->isGuarded() ||
                !instDominates(*FI.DT, *FI.Ord, C, Ret))
              continue;
            LinearPtr LC = decomposeLinearPtr(C->pointer());
            if (LC.Index || LC.Root != LV.Root ||
                !(canonBounds(C->bounds()) == CBv))
              continue;
            SetR.add(LC.Base - LV.Base,
                     LC.Base - LV.Base +
                         static_cast<int64_t>(C->accessSize()));
          }
      }
      Hull = First ? SetR : intersectSets(Hull, SetR);
      First = false;
    }
    if (AllPacked && Hull.size() > 0) {
      Sum.RetChecked = std::move(Hull);
      Sum.HasRet = true;
    }
  }
}

bool Engine::substituteReq(const CheckReq &R, const CallInst &Call,
                           const Function &Callee, FactKey &Key, int64_t &Lo,
                           int64_t &Hi) const {
  __int128 Base = R.Base;
  int64_t Scale = R.IdxArgNo >= 0 ? R.Scale : 0;
  const Value *Idx = nullptr;

  if (R.IdxArgNo >= 0) {
    if (static_cast<unsigned>(R.IdxArgNo) >= Call.numArgs())
      return false;
    Value *A = Call.arg(static_cast<unsigned>(R.IdxArgNo));
    if (auto *CI = dyn_cast<ConstantInt>(A)) {
      Base += __int128(R.Scale) * CI->value();
      Scale = 0;
    } else {
      Idx = stripSExt(A);
    }
  }

  CanonBounds BReq;
  const Value *Root;
  if (R.GlobalRootK) {
    Root = R.G;
    BReq.Anchor = R.G;
    BReq.Lo = 0;
    BReq.Hi = static_cast<int64_t>(R.G->valueType()->sizeInBytes());
    BReq.Sized = true;
  } else {
    if (R.ArgNo >= Call.numArgs())
      return false;
    LinearPtr LA = decomposeLinearPtr(Call.arg(R.ArgNo));
    if (LA.Index) {
      if (Idx && LA.Index != Idx)
        return false; // Two distinct symbols: give up.
      if (!Idx) {
        Idx = LA.Index;
        Scale = LA.Scale;
      } else {
        __int128 S = __int128(Scale) + LA.Scale;
        if (escapesI64(S))
          return false;
        Scale = static_cast<int64_t>(S);
      }
    }
    Base += LA.Base;
    Root = LA.Root;
    if (R.Bk == CheckReq::BK::ArgBounds) {
      Value *PB = sbabi::passedBounds(Call, Callee, R.ArgNo);
      if (!PB)
        return false;
      BReq = canonBounds(PB);
    } else { // SizedFromArg: shift the anchored interval by the actual's
             // constant offset.
      if (LA.Index)
        return false;
      __int128 BLo = __int128(R.BLo) + LA.Base, BHi = __int128(R.BHi) + LA.Base;
      if (escapesI64(BLo) || escapesI64(BHi))
        return false;
      BReq.Anchor = LA.Root;
      BReq.Lo = static_cast<int64_t>(BLo);
      BReq.Hi = static_cast<int64_t>(BHi);
      BReq.Sized = true;
    }
  }

  // The substituted extent must be exact: a saturated end would ask the
  // call site to prove fewer bytes than the callee accesses.
  __int128 End = Base + R.Size;
  if (escapesI64(Base) || escapesI64(End))
    return false;
  if (Scale == 0)
    Idx = nullptr;
  if (!Idx)
    Scale = 0;
  Key = FactKey{Root, Scale, Idx, BReq};
  Lo = static_cast<int64_t>(Base);
  Hi = static_cast<int64_t>(End);
  return true;
}

void Engine::visitCheck(FuncInfo &FI, FactEnv &Env, BasicBlock *BB,
                        BasicBlock::iterator It) {
  auto *C = cast<SpatialCheckInst>(It->get());
  LinearPtr L = decomposeLinearPtr(C->pointer());
  CanonBounds CB = canonBounds(C->bounds());
  int64_t Size = static_cast<int64_t>(C->accessSize());
  if (Size < 0)
    return; // Absurd hand-built size: prove nothing, keep the check.
  FactKey Key{L.Root, L.Scale, L.Index, CB};

  // This check's byte extent past the root. When it escapes i64 the
  // check may only *contribute* a (truncated, hence under-claiming)
  // fact; it must never be elided against a fact or summary, which
  // would compare a smaller extent than the check verifies.
  __int128 End128 = __int128(L.Base) + Size;
  bool ExactEnd = !escapesI64(End128);
  int64_t End = ExactEnd ? static_cast<int64_t>(End128) : INT64_MAX;

  // 1. Static range proof against whole-object global bounds.
  if (auto *G = dyn_cast<GlobalVariable>(L.Root);
      G && wholeGlobal(CB) == G) {
    IntRange Off = IntRange::of(L.Base);
    if (L.Index)
      Off = addR(Off, mulR(FI.SR->at(L.Index, BB), IntRange::of(L.Scale)));
    int64_t ObjSize = static_cast<int64_t>(G->valueType()->sizeInBytes());
    if (!Off.empty() && Off.Lo >= 0 && Off.Hi <= ObjSize - Size) {
      mark(C, Reason::Range);
      Env.add(Key, L.Base, End);
      return;
    }
  }

  // 2. Covered by a dominating fact (a caller check, a dominating call's
  //    callee-guaranteed checks, or a return summary).
  if (ExactEnd && Env.covers(Key, L.Base, End)) {
    mark(C, Reason::Caller);
    return;
  }

  // 3. Sink: a call later in this block re-verifies the same condition
  //    as one of the callee's *entry* checks — the callee checks it
  //    before any memory access or observable effect (including its own
  //    calls, so no exit()/longjmp can skip it) — making this copy the
  //    caller-side duplicate. A sunk check contributes NO fact: its
  //    verification happens inside the call, i.e. in the future, so it
  //    must not prove the very call-site requirements (step 1 of
  //    visitCall) that would delete the callee's re-check too.
  for (auto J = std::next(It); J != BB->end(); ++J) {
    Instruction *I = J->get();
    if (auto *Call = dyn_cast<CallInst>(I)) {
      Function *Callee = Call->calledFunction();
      if (Callee && Callee->isDefinition()) {
        for (const CheckReq &MC : Summaries[Callee].EntryChecks) {
          FactKey MK;
          int64_t MLo, MHi;
          if (ExactEnd && substituteReq(MC, *Call, *Callee, MK, MLo, MHi) &&
              !(MK < Key) && !(Key < MK) && MLo <= L.Base && End <= MHi) {
            mark(C, Reason::Sunk);
            return;
          }
        }
      }
      break; // Any call is an effect barrier either way.
    }
    if (isUnobservableBeforeCheck(I))
      continue;
    break; // Loads, stores, metadata ops, terminators: barrier.
  }

  Env.add(Key, L.Base, End);
}

void Engine::visitCall(FactEnv &Env, CallInst *Call, Function *Callee) {
  const FuncSummary &Sum = Summaries[Callee];

  // Requirements first: facts established *by* this call must not prove
  // this same call's preconditions.
  for (const CheckReq &R : Sum.Elidable) {
    auto It = AllSitesProve.find(R.Check);
    if (It == AllSitesProve.end() || !It->second)
      continue;
    FactKey Key;
    int64_t Lo, Hi;
    if (!substituteReq(R, *Call, *Callee, Key, Lo, Hi) ||
        !Env.covers(Key, Lo, Hi))
      It->second = false;
  }

  // The callee checks these on every path to a return, so once the call
  // completed they hold — for the rest of the dominated region.
  for (const CheckReq &R : Sum.MustCheck) {
    FactKey Key;
    int64_t Lo, Hi;
    if (substituteReq(R, *Call, *Callee, Key, Lo, Hi))
      Env.add(Key, Lo, Hi);
  }

  if (Sum.HasRet) {
    Function *Caller = Call->parent()->parent();
    auto &Ex = Infos[Caller].Extracts;
    auto It = Ex.find(Call);
    if (It != Ex.end() && It->second.first && It->second.second) {
      FactKey Key{It->second.first, 0, nullptr,
                  canonBounds(It->second.second)};
      for (const ByteInterval &Iv : Sum.RetChecked.intervals())
        Env.add(Key, Iv.Lo, Iv.Hi);
    }
  }
}

void Engine::walkBlockBody(FuncInfo &FI, FactEnv &Env, BasicBlock *BB) {
  for (auto It = BB->begin(); It != BB->end(); ++It) {
    Instruction *I = It->get();
    if (auto *C = dyn_cast<SpatialCheckInst>(I)) {
      // Guarded checks (runtime-limit hulls and their in-loop fallbacks)
      // are invisible to the inter-procedural propagation: they may not
      // have executed, so they prove nothing, and their conditions are
      // managed entirely by the hoister that emitted them.
      if (!C->isGuarded())
        visitCheck(FI, Env, BB, It);
      continue;
    }
    if (auto *Call = dyn_cast<CallInst>(I)) {
      Function *Callee = Call->calledFunction();
      if (Callee && Callee->isDefinition())
        visitCall(Env, Call, Callee);
    }
  }
}

void Engine::walk(Function &F) {
  FuncInfo &FI = Infos[&F];
  FactEnv Env;
  // Iterative preorder over the dominator tree (a deep CFG must not
  // overflow the host stack). Each frame records the undo mark taken on
  // entry and rolls its block's facts back once the dominated subtree
  // completes — popped innermost-first, matching the scope nesting of
  // the recursive formulation.
  struct Frame {
    BasicBlock *BB;
    size_t NextChild;
    size_t Mark;
  };
  std::vector<Frame> Stack;
  auto enter = [&](BasicBlock *BB) {
    Stack.push_back({BB, 0, Env.mark()});
    walkBlockBody(FI, Env, BB);
  };
  enter(F.entry());
  while (!Stack.empty()) {
    Frame &Top = Stack.back();
    const std::vector<BasicBlock *> &Kids = FI.DT->children(Top.BB);
    if (Top.NextChild == Kids.size()) {
      Env.rollbackTo(Top.Mark);
      Stack.pop_back();
      continue;
    }
    enter(Kids[Top.NextChild++]); // Invalidates Top; re-fetched next turn.
  }
}

void Engine::prepare() {
  for (Function *F : Defined) {
    FuncInfo &FI = Infos[F];
    FI.DT = std::make_unique<DomTree>(*F);
    FI.Ord = std::make_unique<InstOrder>(*F);
    for (const auto &BB : F->blocks())
      for (const auto &IP : *BB) {
        if (auto *EP = dyn_cast<ExtractPtrInst>(IP.get())) {
          if (auto *C = dyn_cast<CallInst>(EP->pair()))
            if (!FI.Extracts[C].first)
              FI.Extracts[C].first = EP;
        } else if (auto *EB = dyn_cast<ExtractBoundsInst>(IP.get())) {
          if (auto *C = dyn_cast<CallInst>(EB->pair()))
            if (!FI.Extracts[C].second)
              FI.Extracts[C].second = EB;
        }
      }
  }
}

InterProcArgRanges Engine::argRanges() {
  InterProcArgRanges Out;
  if (Defined.empty())
    return Out;
  prepare();
  propagateArgRanges();
  for (Function *F : Defined) {
    const auto &Rs = ArgRanges[F];
    for (unsigned I = 0; I < F->numArgs() && I < Rs.size(); ++I)
      Out.Ranges[F->arg(I)] = Rs[I];
    if (!CG.externallyReachable(F))
      Out.Internal.push_back(F);
  }
  return Out;
}

/// Re-seeds ArgRanges from a prior computeInterProcArgRanges() of the
/// same module and builds the per-function analyses on the current IR —
/// the fixpoint itself is not repeated (see the seed contract in
/// InterProc.h).
void Engine::adoptArgRanges(
    const std::map<const Argument *, IntRange> &Seed) {
  for (Function *F : Defined) {
    std::vector<IntRange> Rs(F->numArgs());
    for (unsigned I = 0; I < F->numArgs(); ++I)
      if (auto It = Seed.find(F->arg(I)); It != Seed.end())
        Rs[I] = It->second;
    ArgRanges[F] = std::move(Rs);
    Infos[F].SR =
        std::make_unique<ScalarRanges>(*F, *Infos[F].DT, ArgRanges[F]);
  }
}

unsigned Engine::run(CheckOptStats &Stats,
                     const std::map<const Argument *, IntRange> *Seed) {
  if (Defined.empty())
    return 0;

  prepare();

  if (Seed)
    adoptArgRanges(*Seed); // Installs every Infos[F].SR from the seed.
  else
    propagateArgRanges(); // Also installs every Infos[F].SR.

  for (Function *F : CG.bottomUp())
    summarize(*F);
  for (Function *F : Defined) {
    const FuncSummary &S = Summaries[F];
    Stats.InterProcArgSummaries +=
        static_cast<unsigned>(S.Elidable.size() + S.MustCheck.size());
    if (S.HasRet)
      ++Stats.InterProcRetSummaries;
    for (const CheckReq &R : S.Elidable)
      AllSitesProve.emplace(R.Check, true);
  }
  Stats.InterProcFunctionsAnalyzed += static_cast<unsigned>(Defined.size());

  for (Function *F : Defined)
    walk(*F);

  // Callee-side elision: every direct call site proved the requirement,
  // and no unknown caller exists (the summary was only built for
  // non-externallyReachable functions).
  for (auto &[Check, AllProve] : AllSitesProve)
    if (AllProve && !Deleted.count(Check))
      mark(Check, Reason::Callee);

  unsigned N = 0;
  for (Function *F : Defined) {
    bool Touched = false;
    for (const auto &BB : F->blocks()) {
      for (auto It = BB->begin(); It != BB->end();) {
        auto *C = dyn_cast<SpatialCheckInst>(It->get());
        auto DIt = C ? Deleted.find(C) : Deleted.end();
        if (DIt == Deleted.end()) {
          ++It;
          continue;
        }
        switch (DIt->second) {
        case Reason::Range:
          ++Stats.InterProcRangeElided;
          break;
        case Reason::Caller:
          ++Stats.InterProcCallerElided;
          break;
        case Reason::Sunk:
          ++Stats.InterProcSunkElided;
          break;
        case Reason::Callee:
          ++Stats.InterProcCalleeElided;
          break;
        }
        It = BB->erase(It);
        Touched = true;
        ++N;
      }
    }
    if (Touched)
      dce(*F); // Sweep the bounds arithmetic the deletions stranded.
  }
  Stats.InterProcChecksElided += N;

  // Every deletion above leans on the closed-module assumption, so once
  // anything was elided, record which functions must no longer be entered
  // directly: the run driver enforces this (see RunOptions::Entry).
  if (N > 0) {
    std::vector<const Function *> Internal;
    for (Function *F : Defined)
      if (!CG.externallyReachable(F))
        Internal.push_back(F);
    M.recordInterProcContract(Internal);
  }
  return N;
}

} // namespace

unsigned checkopt::propagateInterProcChecks(
    Module &M, CheckOptStats &Stats,
    const std::map<const Argument *, IntRange> *SeedArgRanges) {
  Engine E(M);
  return E.run(Stats, SeedArgRanges);
}

InterProcArgRanges checkopt::computeInterProcArgRanges(Module &M) {
  Engine E(M);
  return E.argRanges();
}
