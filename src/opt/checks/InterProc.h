//===- opt/checks/InterProc.h - inter-procedural bounds propagation -*- C++ -*-===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Inter-procedural bounds propagation: the check-optimization sub-pass
/// that removes the cross-function redundancy the intra-procedural passes
/// cannot see — `_sb_` callees re-checking pointers their callers already
/// proved in bounds (the dominant remaining checks in perimeter/bh/go
/// style recursive code). Three cooperating mechanisms share one
/// propagation lattice over a CallGraph (CallGraph.h):
///
///   1. Callee-side entry-check elision ("pointer argument k is accessed
///      within [lo, hi) of its base"): every spatial check in a function
///      reachable only through direct calls is summarized as a
///      *requirement* — a root (pointer argument or global), a byte
///      interval that may be linear in one integer argument, and a bounds
///      shape (the argument's bounds parameter, a field of the argument,
///      or the whole global). If every call site in the module passes
///      arguments whose substituted requirement is covered by a fact
///      dominating the call, the callee's check is deleted.
///   2. Caller-side elision ("callee performs its own check on arg k"):
///      checks that dominate every return of a callee become facts after
///      each dominating call site, killing caller re-checks; the same
///      summaries delete a caller check immediately preceding a call that
///      re-verifies it (with no memory access in between) — the net
///      effect of sinking the callers' duplicate copies into the unique
///      callee's existing check. Return summaries ("the returned pointer
///      was checked over [lo, hi) against the returned bounds on every
///      return path") seed facts for constructor-style callees (newnode,
///      build).
///   3. Inter-procedural value-range propagation: integer argument ranges
///      flow top-down over the call graph (with threshold widening for
///      recursion), feed a per-function interval analysis with
///      branch-condition refinement, and statically settle checks on
///      global arrays whose index range provably stays inside the object
///      — `hist[(x + y + h) % 64]` in a tree walk needs no dynamic check
///      once `x, y, h >= 0` has propagated into the recursion.
///
/// Soundness. Every deletion is justified by one of: (a) the check's
/// condition is statically true (range propagation over whole-object
/// bounds — shrunk sub-object bounds never canonicalize to their global,
/// so §3.1 field protection is preserved); (b) the same condition — equal
/// SSA values, which no store, call, or metadata update can change — was
/// verified by a check that executed strictly earlier on every path
/// (dominating facts, including facts carried across call boundaries by
/// argument/return summaries); or (c) the condition is re-verified by the
/// callee before any memory access or observable effect can occur (the
/// sink case, which requires the call to follow the check in the same
/// block with only pure instructions between). Facts sourced from checks
/// that are themselves deleted stay valid by induction over execution
/// time: a deleted check's condition was verified (or statically true)
/// before its program point, so any fact derived from it refers to a
/// verification that happened strictly earlier — recursion included,
/// because the first entry into any cycle of calls is proven at an
/// external call site or by a static range proof. Function-pointer calls
/// bottom the lattice conservatively: address-taken functions and the VM
/// entry are externallyReachable, their argument ranges are unbounded,
/// and their callee-side checks are never elided.
///
/// Whole-program assumption: the module is closed — execution enters at
/// Module::entryFunction() ("main"/"_sb_main") and every other call
/// arrives through an analyzed site. Driving a transformed module from a
/// custom RunOptions::Entry naming an internally-called function would
/// bypass these proofs, so whenever the pass deletes a check it records
/// the contract on the module (Module::recordInterProcContract) with the
/// set of functions that must not be entered directly, and runProgram
/// refuses such entries (see the contract note on RunOptions::Entry).
///
//===----------------------------------------------------------------------===//

#ifndef SOFTBOUND_OPT_CHECKS_INTERPROC_H
#define SOFTBOUND_OPT_CHECKS_INTERPROC_H

#include "ir/Module.h"

#include <cstdint>
#include <map>
#include <vector>

namespace softbound {

struct CheckOptStats;

namespace checkopt {

/// A signed-integer interval [Lo, Hi] (inclusive), Lo > Hi encoding the
/// empty range. The scalar lattice of the inter-procedural propagation;
/// exposed for tests.
struct IntRange {
  int64_t Lo = 1;
  int64_t Hi = 0;

  bool empty() const { return Lo > Hi; }
  bool isFull() const { return Lo == INT64_MIN && Hi == INT64_MAX; }
  bool contains(int64_t Vlo, int64_t Vhi) const {
    return !empty() && Lo <= Vlo && Vhi <= Hi;
  }
  bool operator==(const IntRange &O) const { return Lo == O.Lo && Hi == O.Hi; }
  bool operator!=(const IntRange &O) const { return !(*this == O); }

  static IntRange full() { return {INT64_MIN, INT64_MAX}; }
  static IntRange of(int64_t V) { return {V, V}; }
  static IntRange make(int64_t Lo, int64_t Hi) { return {Lo, Hi}; }
};

/// Runs the whole propagation over \p M: builds the call graph, iterates
/// argument ranges to a (widened) fixpoint, computes per-function
/// summaries, walks every function's dominator tree collecting and
/// consuming facts, and deletes every check all three mechanisms proved
/// redundant (sweeping stranded bounds arithmetic with dce). Updates the
/// InterProc* counters of \p Stats and returns the number of spatial
/// checks deleted (the caller owns the ChecksAfter adjustment).
///
/// \p SeedArgRanges (optional) is a previously computed
/// computeInterProcArgRanges() result for the same module: the argument
/// fixpoint is skipped and the seed adopted verbatim. Sound across the
/// per-function check passes because they never change a call argument's
/// value (hoisting only adds pure arithmetic, elimination only deletes
/// checks, CSE substitutes value-identical SSA names), so the pre-pass
/// fixpoint still over-approximates every argument.
unsigned propagateInterProcChecks(
    Module &M, CheckOptStats &Stats,
    const std::map<const Argument *, IntRange> *SeedArgRanges = nullptr);

/// The propagation's first phase on its own: top-down integer argument
/// ranges over the call graph (threshold widening, branch refinement),
/// flattened per Argument. Externally reachable functions (the VM entry,
/// address-taken functions) get full-width ranges; arguments of functions
/// with no observed call site come back empty (bottom). `Internal` is the
/// call graph's non-externally-reachable cohort: every range here leans on
/// the closed-module assumption, so a consumer that deletes (or weakens)
/// a check based on one must record the entry contract with exactly this
/// set (Module::recordInterProcContract) — the runtime-limit hull hoister
/// does this when it discharges a trip/wrap guard statically.
struct InterProcArgRanges {
  std::map<const Argument *, IntRange> Ranges;
  std::vector<const Function *> Internal;
};
InterProcArgRanges computeInterProcArgRanges(Module &M);

} // namespace checkopt
} // namespace softbound

#endif // SOFTBOUND_OPT_CHECKS_INTERPROC_H
