//===- opt/checks/RedundantChecks.cpp - dominance-based check RCE -----------===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dominance-based redundant spatial-check elimination. A preorder walk of
/// the dominator tree carries two scoped fact tables:
///
///   * Exact facts: proven intervals keyed by the checked pointer SSA
///     value itself — a later check on the same SSA pointer with an
///     equal-or-smaller access size is deleted (the dominance
///     generalization of the block-local eliminateRedundantChecks).
///   * Range facts: proven intervals keyed by the *decomposed* root, so a
///     dominating check on `p+8` with size 8 also kills a check on
///     `(int*)p + 3` with size 4 — different SSA pointers, same bytes.
///
/// Deleting a dominated check is sound because the dominating check traps
/// first on any path where the dominated one would have: both read only
/// SSA values, which nothing between them can change.
///
//===----------------------------------------------------------------------===//

#include "ir/InstOrder.h"
#include "opt/Dominators.h"
#include "opt/checks/CheckOpt.h"
#include "opt/checks/RangeAnalysis.h"

#include <set>

using namespace softbound;
using namespace softbound::checkopt;

bool softbound::instDominates(const DomTree &DT, const InstOrder &Ord,
                              const Instruction *A, const Instruction *B) {
  if (A == B)
    return false;
  if (A->parent() == B->parent())
    return Ord.precedes(A, B);
  return DT.dominates(A->parent(), B->parent());
}

namespace {

/// The recursive dominator-tree walk. Facts live in the two ProvenRanges
/// tables; FuncPtrSeen deduplicates function-pointer encoding checks.
class RCEWalker {
public:
  RCEWalker(Function &F, const CheckOptConfig &Cfg, CheckOptStats &Stats)
      : F(F), DT(F), Cfg(Cfg), Stats(Stats) {}

  void run() { walk(F.entry()); }

private:
  void walk(BasicBlock *BB);

  Function &F;
  DomTree DT;
  const CheckOptConfig &Cfg;
  CheckOptStats &Stats;

  ProvenRanges Exact; ///< Keyed by (checked pointer SSA value, bounds).
  ProvenRanges Ranged; ///< Keyed by (decomposed root, bounds).
  std::set<std::pair<const Value *, const Value *>> FuncPtrSeen;
};

void RCEWalker::walk(BasicBlock *BB) {
  ProvenRanges::Scope ExactScope(Exact);
  ProvenRanges::Scope RangedScope(Ranged);
  std::vector<std::pair<const Value *, const Value *>> LocalFuncPtr;

  for (auto It = BB->begin(); It != BB->end();) {
    Instruction *I = It->get();

    if (auto *Chk = dyn_cast<SpatialCheckInst>(I)) {
      Value *P = Chk->pointer();
      Value *B = Chk->bounds();
      int64_t Size = static_cast<int64_t>(Chk->accessSize());

      if (Cfg.EliminateDominated && Exact.covers(P, B, 0, Size)) {
        It = BB->erase(It);
        ++Stats.DominatedEliminated;
        continue;
      }
      PtrOffset PO = decomposePointer(P);
      if (Cfg.RangeSubsumption &&
          Ranged.covers(PO.Root, B, PO.Offset, PO.Offset + Size)) {
        It = BB->erase(It);
        ++Stats.RangeEliminated;
        continue;
      }
      // A guarded check (runtime-limit hull or its fallback) may be
      // *deleted* when a dominating unconditional check proves its bytes —
      // skipping a proven check is always sound — but it must never source
      // a fact: nothing guarantees it executed.
      if (!Chk->isGuarded()) {
        if (Cfg.EliminateDominated)
          Exact.add(P, B, 0, Size);
        if (Cfg.RangeSubsumption)
          Ranged.add(PO.Root, B, PO.Offset, PO.Offset + Size);
      }
      ++It;
      continue;
    }

    if (auto *FPC = dyn_cast<FuncPtrCheckInst>(I);
        FPC && Cfg.EliminateDominated) {
      auto Key = std::make_pair(static_cast<const Value *>(FPC->pointer()),
                                static_cast<const Value *>(FPC->bounds()));
      if (FuncPtrSeen.count(Key)) {
        It = BB->erase(It);
        ++Stats.FuncPtrEliminated;
        continue;
      }
      FuncPtrSeen.insert(Key);
      LocalFuncPtr.push_back(Key);
      ++It;
      continue;
    }

    ++It;
  }

  for (BasicBlock *Child : DT.children(BB))
    walk(Child);

  for (const auto &Key : LocalFuncPtr)
    FuncPtrSeen.erase(Key);
}

} // namespace

namespace softbound {
namespace checkopt {

void eliminateRedundantSpatialChecks(Function &F, const CheckOptConfig &Cfg,
                                     CheckOptStats &Stats) {
  if (!F.isDefinition())
    return;
  RCEWalker(F, Cfg, Stats).run();
}

} // namespace checkopt
} // namespace softbound
