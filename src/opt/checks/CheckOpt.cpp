//===- opt/checks/CheckOpt.cpp - check-optimization driver ------------------===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "opt/checks/CheckOpt.h"

#include "opt/Passes.h"
#include "opt/checks/InterProc.h"
#include "support/Casting.h"

#include <algorithm>

using namespace softbound;

namespace softbound {
namespace checkopt {

// Sub-pass entry points (RedundantChecks.cpp / LoopHoist.cpp).
void eliminateRedundantSpatialChecks(Function &F, const CheckOptConfig &Cfg,
                                     CheckOptStats &Stats);
void hoistLoopChecks(Function &F, CheckOptStats &Stats);

} // namespace checkopt
} // namespace softbound

namespace {

unsigned countSpatialChecks(const Function &F) {
  unsigned N = 0;
  for (const auto &BB : F.blocks())
    for (const auto &I : *BB)
      if (isa<SpatialCheckInst>(I.get()))
        ++N;
  return N;
}

} // namespace

void softbound::optimizeChecks(Function &F, const CheckOptConfig &Cfg,
                               CheckOptStats &Stats) {
  if (!Cfg.Enable || !F.isDefinition())
    return;
  Stats.ChecksBefore += countSpatialChecks(F);

  // CCured-SAFE elision first (opt-in): checks it deletes are statically
  // settled, so the later sub-passes need not reason about them at all.
  if (Cfg.ElideSafeChecks)
    checkopt::elideSafeChecks(F, Stats);

  // Hoist before eliminating: the hull checks it plants in preheaders
  // become dominating facts that the elimination walk can use to subsume
  // checks in later loops over the same object.
  if (Cfg.HoistLoopChecks) {
    checkopt::hoistLoopChecks(F, Stats);
    // Identical hull pointers materialized for several checks of the same
    // loop collapse here, letting exact-fact elimination dedup their checks.
    localCSE(F);
  }
  if (Cfg.EliminateDominated || Cfg.RangeSubsumption)
    checkopt::eliminateRedundantSpatialChecks(F, Cfg, Stats);

  // Deleted checks strand their bounds/GEP arithmetic; sweep it.
  dce(F);

  Stats.ChecksAfter += countSpatialChecks(F);
}

CheckOptStats softbound::optimizeChecks(Module &M, const CheckOptConfig &Cfg) {
  CheckOptStats Stats;
  for (const auto &F : M.functions())
    optimizeChecks(*F, Cfg, Stats);
  // Inter-procedural propagation runs after the per-function passes so
  // hoisted hull checks and surviving dominating checks serve as call-site
  // facts; it needs every call site, so only the module driver can run it.
  if (Cfg.Enable && Cfg.InterProc) {
    unsigned Deleted = checkopt::propagateInterProcChecks(M, Stats);
    Stats.ChecksAfter -= std::min(Deleted, Stats.ChecksAfter);
  }
  return Stats;
}
