//===- opt/checks/CheckOpt.cpp - check-optimization driver ------------------===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "opt/checks/CheckOpt.h"

#include "opt/Passes.h"
#include "opt/checks/InterProc.h"
#include "opt/checks/LoopHoist.h"
#include "opt/checks/Partition.h"
#include "support/Casting.h"

#include <algorithm>

using namespace softbound;

namespace softbound {
namespace checkopt {

// Sub-pass entry point (RedundantChecks.cpp).
void eliminateRedundantSpatialChecks(Function &F, const CheckOptConfig &Cfg,
                                     CheckOptStats &Stats);

} // namespace checkopt
} // namespace softbound

namespace {

unsigned countSpatialChecks(const Function &F) {
  unsigned N = 0;
  for (const auto &BB : F.blocks())
    for (const auto &I : *BB)
      if (isa<SpatialCheckInst>(I.get()))
        ++N;
  return N;
}

} // namespace

namespace {

/// Shared body of the function- and module-level drivers. \p ArgRanges
/// (optional) feeds the runtime-limit hull hoister's static guard
/// discharge; \p DischargeUsed reports whether any discharge leaned on it.
void optimizeChecksImpl(Function &F, const CheckOptConfig &Cfg,
                        CheckOptStats &Stats,
                        const std::map<const Argument *, checkopt::IntRange>
                            *ArgRanges,
                        bool *DischargeUsed) {
  if (!Cfg.Enable || !F.isDefinition())
    return;
  Stats.ChecksBefore += countSpatialChecks(F);

  // CCured-SAFE elision first (opt-in): checks it deletes are statically
  // settled, so the later sub-passes need not reason about them at all.
  if (Cfg.ElideSafeChecks)
    checkopt::elideSafeChecks(F, Stats);

  // Hoist before eliminating: the hull checks it plants in preheaders
  // become dominating facts that the elimination walk can use to subsume
  // checks in later loops over the same object.
  if (Cfg.HoistLoopChecks) {
    checkopt::hoistLoopChecks(F, Stats, Cfg, ArgRanges, DischargeUsed);
    // Identical hull pointers materialized for several checks of the same
    // loop collapse here, letting exact-fact elimination dedup their checks.
    localCSE(F);
  }
  if (Cfg.EliminateDominated || Cfg.RangeSubsumption)
    checkopt::eliminateRedundantSpatialChecks(F, Cfg, Stats);

  // Deleted checks strand their bounds/GEP arithmetic; sweep it.
  dce(F);

  Stats.ChecksAfter += countSpatialChecks(F);
}

} // namespace

void softbound::optimizeChecks(Function &F, const CheckOptConfig &Cfg,
                               CheckOptStats &Stats) {
  optimizeChecksImpl(F, Cfg, Stats, nullptr, nullptr);
}

CheckOptStats softbound::optimizeChecks(Module &M, const CheckOptConfig &Cfg) {
  CheckOptStats Stats;
  // Top-down argument ranges let the runtime-limit hoister discharge its
  // trip/wrap guards statically. They lean on the closed-module
  // assumption, so any use is recorded as an entry contract below —
  // exactly as checkopt(interproc) records its own deletions. Module
  // driver only: the ranges need every call site.
  checkopt::InterProcArgRanges IPR;
  const std::map<const Argument *, checkopt::IntRange> *Ranges = nullptr;
  bool DischargeUsed = false;
  if (Cfg.Enable && Cfg.HoistLoopChecks && Cfg.RuntimeLimitHulls &&
      Cfg.InterProc) {
    IPR = checkopt::computeInterProcArgRanges(M);
    Ranges = &IPR.Ranges;
  }
  for (const auto &F : M.functions())
    optimizeChecksImpl(*F, Cfg, Stats, Ranges, &DischargeUsed);
  if (DischargeUsed)
    M.recordInterProcContract(IPR.Internal);
  // Inter-procedural propagation runs after the per-function passes so
  // hoisted hull checks and surviving dominating checks serve as call-site
  // facts; it needs every call site, so only the module driver can run it.
  // When the hoister already computed the argument-range fixpoint above,
  // the propagation adopts it instead of repeating the most expensive
  // phase (the per-function passes never change a call argument's value).
  if (Cfg.Enable && Cfg.InterProc) {
    unsigned Deleted = checkopt::propagateInterProcChecks(M, Stats, Ranges);
    Stats.ChecksAfter -= std::min(Deleted, Stats.ChecksAfter);
  }
  // Partitioning runs last: it can only prove a function once every other
  // sub-pass has discharged its checks, and it never creates or removes a
  // check itself — it converts check elision into metadata-op elision.
  if (Cfg.Enable && Cfg.Partition)
    checkopt::partitionCheckedRegions(M, Stats);
  return Stats;
}
