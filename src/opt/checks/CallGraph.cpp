//===- opt/checks/CallGraph.cpp - module call graph -------------------------===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "opt/checks/CallGraph.h"

#include "support/Casting.h"

#include <algorithm>

using namespace softbound;
using namespace softbound::checkopt;

CallGraph::CallGraph(Module &M) {
  // Seed a node per defined function so lookups never miss. Module order
  // is recorded so every derived order (DFS roots, SCC ids, bottomUp) is
  // deterministic across runs — the bench-regression gate compares
  // counts produced under order-sensitive widening.
  std::vector<Function *> InModuleOrder;
  for (const auto &F : M.functions())
    if (F->isDefinition()) {
      Nodes[F.get()].ModIdx = static_cast<unsigned>(InModuleOrder.size());
      InModuleOrder.push_back(F.get());
    }

  // A function whose address is baked into a global initializer escapes
  // exactly like one stored by an instruction.
  for (const auto &G : M.globals())
    for (const auto &R : G->initializer().Relocs)
      if (auto *F = dyn_cast<Function>(R.Target))
        if (auto It = Nodes.find(F); It != Nodes.end())
          It->second.AddressTaken = true;

  for (const auto &F : M.functions()) {
    if (!F->isDefinition())
      continue;
    Node &N = Nodes[F.get()];
    for (const auto &BB : F->blocks()) {
      for (const auto &IP : *BB) {
        Instruction *I = IP.get();
        auto *Call = dyn_cast<CallInst>(I);
        if (Call && Call->isIndirect())
          N.HasIndirect = true;
        for (unsigned K = 0; K < I->numOperands(); ++K) {
          auto *Target = dyn_cast<Function>(I->op(K));
          if (!Target)
            continue;
          if (Call && K == 0) {
            // Direct callee position: an edge when the target is defined.
            if (Target->isDefinition()) {
              unsigned Id = static_cast<unsigned>(Sites.size());
              Sites.push_back({Call, F.get(), Target});
              N.Out.push_back(Id);
              Nodes[Target].In.push_back(Id);
              if (Target == F.get())
                N.SelfEdge = true;
            }
            continue;
          }
          // Any other use leaks the address.
          if (auto It = Nodes.find(Target); It != Nodes.end())
            It->second.AddressTaken = true;
        }
      }
    }
  }

  // External reachability: entry, escaped, or never called from IR.
  Function *Entry = M.entryFunction();
  for (auto &[F, N] : Nodes)
    N.External = F == Entry || N.AddressTaken || N.In.empty();

  // Tarjan SCCs, assigning ids in completion order — callees complete
  // before their callers, so ascending sccId is bottom-up. Iterative with
  // explicit DFS frames: call-graph depth is program-sized, and a long
  // call chain must not overflow the host stack in a default-on pass.
  unsigned NextIndex = 0, NextScc = 0;
  std::map<const Function *, unsigned> Index, Low;
  std::vector<const Function *> Stack;
  std::map<const Function *, bool> OnStack;
  struct Frame {
    const Function *F;
    size_t NextOut;
  };
  std::vector<Frame> Frames;
  auto discover = [&](const Function *F) {
    Index[F] = Low[F] = NextIndex++;
    Stack.push_back(F);
    OnStack[F] = true;
    Frames.push_back({F, 0});
  };
  for (Function *Root : InModuleOrder) {
    if (Index.count(Root))
      continue;
    discover(Root);
    while (!Frames.empty()) {
      Frame &Top = Frames.back();
      const std::vector<unsigned> &Out = Nodes[Top.F].Out;
      if (Top.NextOut < Out.size()) {
        const Function *Callee = Sites[Out[Top.NextOut++]].Callee;
        if (!Index.count(Callee))
          discover(Callee); // Invalidates Top; re-fetched next turn.
        else if (OnStack[Callee])
          Low[Top.F] = std::min(Low[Top.F], Index[Callee]);
        continue;
      }
      // Subtree complete: fold this node's low-link into its DFS parent
      // (the recursive formulation's post-call min), then test for root.
      const Function *F = Top.F;
      Frames.pop_back();
      if (!Frames.empty())
        Low[Frames.back().F] = std::min(Low[Frames.back().F], Low[F]);
      if (Low[F] == Index[F]) {
        unsigned Members = 0;
        const Function *Member;
        std::vector<const Function *> Scc;
        do {
          Member = Stack.back();
          Stack.pop_back();
          OnStack[Member] = false;
          Nodes[Member].Scc = NextScc;
          Scc.push_back(Member);
          ++Members;
        } while (Member != F);
        for (const Function *S : Scc)
          Nodes[S].SccNontrivial = Members > 1;
        ++NextScc;
      }
    }
  }

  BottomUp = InModuleOrder;
  std::sort(BottomUp.begin(), BottomUp.end(),
            [this](const Function *A, const Function *B) {
              const Node &NA = Nodes.at(A), &NB = Nodes.at(B);
              return NA.Scc != NB.Scc ? NA.Scc < NB.Scc
                                      : NA.ModIdx < NB.ModIdx;
            });
}

const CallGraph::Node *CallGraph::node(const Function *F) const {
  auto It = Nodes.find(F);
  return It == Nodes.end() ? nullptr : &It->second;
}

const std::vector<unsigned> &CallGraph::callersOf(const Function *F) const {
  static const std::vector<unsigned> Empty;
  const Node *N = node(F);
  return N ? N->In : Empty;
}

const std::vector<unsigned> &CallGraph::callSitesIn(const Function *F) const {
  static const std::vector<unsigned> Empty;
  const Node *N = node(F);
  return N ? N->Out : Empty;
}

bool CallGraph::isAddressTaken(const Function *F) const {
  const Node *N = node(F);
  return N && N->AddressTaken;
}

bool CallGraph::hasIndirectCallSites(const Function *F) const {
  const Node *N = node(F);
  return N && N->HasIndirect;
}

bool CallGraph::externallyReachable(const Function *F) const {
  const Node *N = node(F);
  return !N || N->External; // Unknown functions: assume the worst.
}

bool CallGraph::isRecursive(const Function *F) const {
  const Node *N = node(F);
  return N && (N->SelfEdge || N->SccNontrivial);
}

unsigned CallGraph::sccId(const Function *F) const {
  const Node *N = node(F);
  return N ? N->Scc : 0;
}
