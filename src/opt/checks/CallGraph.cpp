//===- opt/checks/CallGraph.cpp - module call graph -------------------------===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "opt/checks/CallGraph.h"

#include "support/Casting.h"

#include <algorithm>
#include <functional>

using namespace softbound;
using namespace softbound::checkopt;

CallGraph::CallGraph(Module &M) {
  // Seed a node per defined function so lookups never miss. Module order
  // is recorded so every derived order (DFS roots, SCC ids, bottomUp) is
  // deterministic across runs — the bench-regression gate compares
  // counts produced under order-sensitive widening.
  std::vector<Function *> InModuleOrder;
  for (const auto &F : M.functions())
    if (F->isDefinition()) {
      Nodes[F.get()].ModIdx = static_cast<unsigned>(InModuleOrder.size());
      InModuleOrder.push_back(F.get());
    }

  // A function whose address is baked into a global initializer escapes
  // exactly like one stored by an instruction.
  for (const auto &G : M.globals())
    for (const auto &R : G->initializer().Relocs)
      if (auto *F = dyn_cast<Function>(R.Target))
        if (auto It = Nodes.find(F); It != Nodes.end())
          It->second.AddressTaken = true;

  for (const auto &F : M.functions()) {
    if (!F->isDefinition())
      continue;
    Node &N = Nodes[F.get()];
    for (const auto &BB : F->blocks()) {
      for (const auto &IP : *BB) {
        Instruction *I = IP.get();
        auto *Call = dyn_cast<CallInst>(I);
        if (Call && Call->isIndirect())
          N.HasIndirect = true;
        for (unsigned K = 0; K < I->numOperands(); ++K) {
          auto *Target = dyn_cast<Function>(I->op(K));
          if (!Target)
            continue;
          if (Call && K == 0) {
            // Direct callee position: an edge when the target is defined.
            if (Target->isDefinition()) {
              unsigned Id = static_cast<unsigned>(Sites.size());
              Sites.push_back({Call, F.get(), Target});
              N.Out.push_back(Id);
              Nodes[Target].In.push_back(Id);
              if (Target == F.get())
                N.SelfEdge = true;
            }
            continue;
          }
          // Any other use leaks the address.
          if (auto It = Nodes.find(Target); It != Nodes.end())
            It->second.AddressTaken = true;
        }
      }
    }
  }

  // External reachability: entry, escaped, or never called from IR.
  Function *Entry = M.entryFunction();
  for (auto &[F, N] : Nodes)
    N.External = F == Entry || N.AddressTaken || N.In.empty();

  // Tarjan SCCs, assigning ids in completion order — callees complete
  // before their callers, so ascending sccId is bottom-up.
  unsigned NextIndex = 0, NextScc = 0;
  std::map<const Function *, unsigned> Index, Low;
  std::vector<const Function *> Stack;
  std::map<const Function *, bool> OnStack;
  std::function<void(const Function *)> Strong = [&](const Function *F) {
    Index[F] = Low[F] = NextIndex++;
    Stack.push_back(F);
    OnStack[F] = true;
    for (unsigned SiteId : Nodes[F].Out) {
      const Function *Callee = Sites[SiteId].Callee;
      if (!Index.count(Callee)) {
        Strong(Callee);
        Low[F] = std::min(Low[F], Low[Callee]);
      } else if (OnStack[Callee]) {
        Low[F] = std::min(Low[F], Index[Callee]);
      }
    }
    if (Low[F] == Index[F]) {
      unsigned Members = 0;
      const Function *Member;
      std::vector<const Function *> Scc;
      do {
        Member = Stack.back();
        Stack.pop_back();
        OnStack[Member] = false;
        Nodes[Member].Scc = NextScc;
        Scc.push_back(Member);
        ++Members;
      } while (Member != F);
      for (const Function *S : Scc)
        Nodes[S].SccNontrivial = Members > 1;
      ++NextScc;
    }
  };
  for (Function *F : InModuleOrder)
    if (!Index.count(F))
      Strong(F);

  BottomUp = InModuleOrder;
  std::sort(BottomUp.begin(), BottomUp.end(),
            [this](const Function *A, const Function *B) {
              const Node &NA = Nodes.at(A), &NB = Nodes.at(B);
              return NA.Scc != NB.Scc ? NA.Scc < NB.Scc
                                      : NA.ModIdx < NB.ModIdx;
            });
}

const CallGraph::Node *CallGraph::node(const Function *F) const {
  auto It = Nodes.find(F);
  return It == Nodes.end() ? nullptr : &It->second;
}

const std::vector<unsigned> &CallGraph::callersOf(const Function *F) const {
  static const std::vector<unsigned> Empty;
  const Node *N = node(F);
  return N ? N->In : Empty;
}

const std::vector<unsigned> &CallGraph::callSitesIn(const Function *F) const {
  static const std::vector<unsigned> Empty;
  const Node *N = node(F);
  return N ? N->Out : Empty;
}

bool CallGraph::isAddressTaken(const Function *F) const {
  const Node *N = node(F);
  return N && N->AddressTaken;
}

bool CallGraph::hasIndirectCallSites(const Function *F) const {
  const Node *N = node(F);
  return N && N->HasIndirect;
}

bool CallGraph::externallyReachable(const Function *F) const {
  const Node *N = node(F);
  return !N || N->External; // Unknown functions: assume the worst.
}

bool CallGraph::isRecursive(const Function *F) const {
  const Node *N = node(F);
  return N && (N->SelfEdge || N->SccNontrivial);
}

unsigned CallGraph::sccId(const Function *F) const {
  const Node *N = node(F);
  return N ? N->Scc : 0;
}
