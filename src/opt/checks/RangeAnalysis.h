//===- opt/checks/RangeAnalysis.h - symbolic pointer ranges -----*- C++ -*-===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The value-range analysis underneath the check optimizer. Pointer SSA
/// values are decomposed into a *root* (the SSA value the pointer was
/// derived from by bitcasts and constant-index GEPs) plus a constant byte
/// offset. A spatial check `check(p, b, size)` then proves the symbolic
/// fact "bytes [off, off+size) past root are inside [base(b), bound(b))",
/// and those facts — keyed by (root, bounds) and held as merged interval
/// sets — flow down the dominator tree: any later check whose interval is
/// covered is statically redundant.
///
/// Facts never need invalidation: a check consumes only its two SSA
/// operands, whose dynamic values no store, call, or metadata update can
/// change. (Temporal safety is out of scope, exactly as in the paper.)
///
//===----------------------------------------------------------------------===//

#ifndef SOFTBOUND_OPT_CHECKS_RANGEANALYSIS_H
#define SOFTBOUND_OPT_CHECKS_RANGEANALYSIS_H

#include "ir/BasicBlock.h"

#include <map>
#include <utility>
#include <vector>

namespace softbound {
namespace checkopt {

/// A pointer expressed as a root SSA value plus a constant byte offset.
struct PtrOffset {
  Value *Root = nullptr;
  int64_t Offset = 0;
};

/// Byte offset of a GEP whose indices are all constants. Returns false for
/// variable indices or unsized element types.
bool constantGEPOffset(const GEPInst *G, int64_t &OutBytes);

/// Strips bitcasts and constant-index GEPs off \p P, accumulating the byte
/// offset. Always succeeds: the worst case is Root == P, Offset == 0.
PtrOffset decomposePointer(Value *P);

/// A pointer expressed as root + Base + Scale * Index bytes, where Index
/// is a single SSA integer (null for purely constant offsets). This is the
/// symbolic generalization of PtrOffset the inter-procedural propagation
/// keys its facts on: two checks on `a[i]` prove the same bytes whenever
/// their roots, scales, and index SSA values coincide.
struct LinearPtr {
  Value *Root = nullptr;
  int64_t Base = 0;
  int64_t Scale = 0;       ///< 0 when Index is null.
  Value *Index = nullptr;  ///< Sign-extension-stripped SSA index, or null.
};

/// Strips value-preserving sign extensions (the frontend widens every
/// array index to i64 with sext). Identity for everything else.
Value *stripSExt(Value *V);

/// Decomposes \p P as root + Base + Scale * Index, walking bitcasts and
/// GEPs. At most one distinct variable index is folded in (repeated uses
/// of the same SSA index accumulate into Scale); a second distinct
/// variable stops the walk at the containing GEP's pointer. Always
/// succeeds in the PtrOffset sense: worst case Root == P.
LinearPtr decomposeLinearPtr(Value *P);

/// Half-open byte interval [Lo, Hi).
struct ByteInterval {
  int64_t Lo = 0;
  int64_t Hi = 0;
};

/// A sorted set of disjoint intervals with merge-on-insert, so adjacent
/// proven ranges ([0,4) then [4,8)) cover their union ([0,8)).
class IntervalSet {
public:
  bool covers(int64_t Lo, int64_t Hi) const;
  void add(int64_t Lo, int64_t Hi);
  size_t size() const { return Iv.size(); }
  const std::vector<ByteInterval> &intervals() const { return Iv; }

private:
  std::vector<ByteInterval> Iv; ///< Sorted by Lo; disjoint, non-adjacent.
};

/// Scoped (root, bounds) -> proven-interval facts for a preorder walk of
/// the dominator tree. Enter a Scope per tree node; facts added inside it
/// are rolled back when it is destroyed, so only facts established on the
/// dominating path remain visible.
class ProvenRanges {
public:
  using Key = std::pair<const Value *, const Value *>;

  class Scope {
  public:
    explicit Scope(ProvenRanges &PR) : PR(PR), Mark(PR.Undo.size()) {}
    ~Scope() { PR.rollbackTo(Mark); }
    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;

  private:
    ProvenRanges &PR;
    size_t Mark;
  };

  bool covers(const Value *Root, const Value *Bounds, int64_t Lo,
              int64_t Hi) const {
    auto It = Facts.find(Key(Root, Bounds));
    return It != Facts.end() && It->second.covers(Lo, Hi);
  }

  void add(const Value *Root, const Value *Bounds, int64_t Lo, int64_t Hi) {
    Key K(Root, Bounds);
    Undo.emplace_back(K, Facts[K]); // Snapshot for scope rollback.
    Facts[K].add(Lo, Hi);
  }

private:
  void rollbackTo(size_t Mark) {
    while (Undo.size() > Mark) {
      Facts[Undo.back().first] = std::move(Undo.back().second);
      Undo.pop_back();
    }
  }

  std::map<Key, IntervalSet> Facts;
  std::vector<std::pair<Key, IntervalSet>> Undo;
};

} // namespace checkopt
} // namespace softbound

#endif // SOFTBOUND_OPT_CHECKS_RANGEANALYSIS_H
