//===- opt/checks/Predicates.h - branch-condition utilities -----*- C++ -*-===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared predicate utilities for the check-optimization passes: peeling
/// the frontend's boolean re-test wrappers off a branch condition (with
/// negation parity) and the ICmp predicate swap/invert tables. One
/// implementation serves both the counted-loop recognizer (Loops.cpp)
/// and the inter-procedural range analysis (InterProc.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef SOFTBOUND_OPT_CHECKS_PREDICATES_H
#define SOFTBOUND_OPT_CHECKS_PREDICATES_H

#include "ir/BasicBlock.h"
#include "support/Casting.h"

namespace softbound {
namespace checkopt {

/// True when \p V is available on entry to a single-entry region whose
/// blocks \p Contains describes: a constant, global, or argument, or an
/// instruction defined outside the region. Because SSA values consume no
/// memory state, such a value's dynamic value is the same on entry and at
/// every point inside the region — no store, call, or metadata update can
/// change it. This is the one definition of "invariant" shared by the
/// loop hoister (NaturalLoop::isInvariant, symbolic-limit recognition in
/// Loops.cpp) and the inter-procedural engine's cross-call reasoning, so
/// the two passes can never disagree about what survives a region.
template <typename InRegion>
inline bool availableOnEntry(const Value *V, InRegion &&Contains) {
  const auto *I = dyn_cast<Instruction>(V);
  return !I || !Contains(I->parent());
}

/// True when executing \p I cannot produce an observable effect other
/// than a (fatal) trap: pure instructions and the check instructions
/// themselves. This is the barrier test behind both of InterProc's
/// "nothing observable can intervene" scans — the must-execute entry
/// prefix and the duplicate-check sink — one definition, so the two scans
/// cannot drift apart.
inline bool isUnobservableBeforeCheck(const Instruction *I) {
  return I->isPure() || isa<SpatialCheckInst>(I) || isa<FuncPtrCheckInst>(I);
}

/// Peels the frontend's boolean re-test wrappers — `icmp ne (zext i1 X), 0`
/// and `icmp eq (zext i1 X), 0` — off a branch condition, tracking parity,
/// until the underlying relational comparison is reached. \p Negate is true
/// when the branch tests the comparison's complement.
inline const ICmpInst *peelCondition(const Value *Cond, bool &Negate) {
  auto IsI1 = [](const Type *Ty) {
    const auto *IT = dyn_cast<IntType>(Ty);
    return IT && IT->bits() == 1;
  };
  Negate = false;
  for (int Depth = 0; Depth < 8; ++Depth) {
    const auto *IC = dyn_cast<ICmpInst>(Cond);
    if (!IC)
      return nullptr;
    const auto *RhsC = dyn_cast<ConstantInt>(IC->rhs());
    bool BoolTest = RhsC && RhsC->isZero() &&
                    (IC->pred() == ICmpInst::Pred::NE ||
                     IC->pred() == ICmpInst::Pred::EQ);
    if (BoolTest) {
      const Value *X = IC->lhs();
      if (const auto *Z = dyn_cast<CastInst>(X);
          Z && (Z->opcode() == CastInst::Op::ZExt ||
                Z->opcode() == CastInst::Op::SExt) &&
          IsI1(Z->source()->type()))
        X = Z->source();
      if (IsI1(X->type())) {
        if (IC->pred() == ICmpInst::Pred::EQ)
          Negate = !Negate;
        Cond = X;
        continue;
      }
    }
    return IC; // A genuine relational comparison.
  }
  return nullptr;
}

/// The predicate satisfied when the operands are exchanged.
inline ICmpInst::Pred swapPred(ICmpInst::Pred P) {
  using Pred = ICmpInst::Pred;
  switch (P) {
  case Pred::SLT:
    return Pred::SGT;
  case Pred::SLE:
    return Pred::SGE;
  case Pred::SGT:
    return Pred::SLT;
  case Pred::SGE:
    return Pred::SLE;
  case Pred::ULT:
    return Pred::UGT;
  case Pred::ULE:
    return Pred::UGE;
  case Pred::UGT:
    return Pred::ULT;
  case Pred::UGE:
    return Pred::ULE;
  default:
    return P; // EQ/NE are symmetric.
  }
}

/// The predicate satisfied exactly when \p P is not (the complement).
inline ICmpInst::Pred invertPred(ICmpInst::Pred P) {
  using Pred = ICmpInst::Pred;
  switch (P) {
  case Pred::EQ:
    return Pred::NE;
  case Pred::NE:
    return Pred::EQ;
  case Pred::SLT:
    return Pred::SGE;
  case Pred::SLE:
    return Pred::SGT;
  case Pred::SGT:
    return Pred::SLE;
  case Pred::SGE:
    return Pred::SLT;
  case Pred::ULT:
    return Pred::UGE;
  case Pred::ULE:
    return Pred::UGT;
  case Pred::UGT:
    return Pred::ULE;
  case Pred::UGE:
    return Pred::ULT;
  }
  return P;
}

} // namespace checkopt
} // namespace softbound

#endif // SOFTBOUND_OPT_CHECKS_PREDICATES_H
