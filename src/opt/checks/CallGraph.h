//===- opt/checks/CallGraph.h - module call graph ---------------*- C++ -*-===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The call graph underneath the inter-procedural bounds propagation
/// (InterProc.cpp). Direct calls between defined functions form the
/// edges; everything the graph cannot see is folded into two conservative
/// attributes instead of edges:
///
///   * externallyReachable(F): F can be entered by a caller the analysis
///     will never inspect — the VM entry function, any address-taken
///     function (a function-pointer call could target it; §5.2's
///     base==bound==ptr encoding makes every escaped function callable),
///     or a builtin/declaration. Summaries for such functions must assume
///     nothing about their arguments and their callee-side checks can
///     never be elided.
///   * hasIndirectCallSites(F): F contains a call through a pointer. The
///     *edge* is not recorded (the target set is unknowable), which is
///     sound because every possible target is address-taken and therefore
///     already externallyReachable.
///
/// Tarjan SCCs provide the bottom-up order and the recursion test: a
/// function is recursive when its SCC has more than one member or calls
/// itself directly.
///
//===----------------------------------------------------------------------===//

#ifndef SOFTBOUND_OPT_CHECKS_CALLGRAPH_H
#define SOFTBOUND_OPT_CHECKS_CALLGRAPH_H

#include "ir/Module.h"

#include <map>
#include <vector>

namespace softbound {
namespace checkopt {

/// One direct call from a defined function to a defined function.
struct CallSite {
  CallInst *Call = nullptr;
  Function *Caller = nullptr;
  Function *Callee = nullptr;
};

class CallGraph {
public:
  explicit CallGraph(Module &M);

  /// Every direct defined-to-defined call site, in module order.
  const std::vector<CallSite> &callSites() const { return Sites; }

  /// Direct call sites targeting \p F (indices into callSites()).
  const std::vector<unsigned> &callersOf(const Function *F) const;

  /// Direct call sites contained in \p F (indices into callSites()).
  const std::vector<unsigned> &callSitesIn(const Function *F) const;

  /// True when \p F's address escapes into data flow: used as an operand
  /// anywhere other than the callee slot of a direct call (stored,
  /// passed, compared, or given bounds for an indirect call).
  bool isAddressTaken(const Function *F) const;

  /// True when \p F contains a call whose callee is not a static Function.
  bool hasIndirectCallSites(const Function *F) const;

  /// True when some caller of \p F is outside the graph: the VM entry
  /// function, address-taken functions, builtins/declarations, and
  /// defined functions with no recorded call site (nothing links to them,
  /// but the harness may still invoke them directly).
  bool externallyReachable(const Function *F) const;

  /// True when \p F can reenter itself: self edge or non-trivial SCC.
  bool isRecursive(const Function *F) const;

  /// SCC id of \p F; ids are assigned in bottom-up (callee-first) order,
  /// so sorting functions by sccId yields a valid order for bottom-up
  /// summary propagation.
  unsigned sccId(const Function *F) const;

  /// Defined functions in bottom-up (callee-before-caller) order; members
  /// of one SCC are adjacent.
  const std::vector<Function *> &bottomUp() const { return BottomUp; }

private:
  struct Node {
    std::vector<unsigned> In;   ///< Sites calling this function.
    std::vector<unsigned> Out;  ///< Sites inside this function.
    unsigned ModIdx = 0;        ///< Position in module order (determinism).
    bool AddressTaken = false;
    bool HasIndirect = false;
    bool External = false;
    bool SelfEdge = false;
    unsigned Scc = 0;
    bool SccNontrivial = false;
  };

  const Node *node(const Function *F) const;

  std::vector<CallSite> Sites;
  std::map<const Function *, Node> Nodes;
  std::vector<Function *> BottomUp;
};

} // namespace checkopt
} // namespace softbound

#endif // SOFTBOUND_OPT_CHECKS_CALLGRAPH_H
