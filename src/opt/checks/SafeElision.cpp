//===- opt/checks/SafeElision.cpp - CCured-SAFE check elision ---------------===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The CCured-SAFE elision sub-pass (§6.5 comparison): a spatial check is
/// deleted when its pointer reaches a stack or global object of statically
/// known size through bitcasts and GEPs whose indices are all non-negative
/// constants with every *interior* (sub-object) step in range, and the
/// checked access fits inside the object. This models CCured's
/// SAFE-pointer inference: such accesses can never leave the allocation,
/// so the dynamic check is pure overhead.
///
/// The proof is a faithful port of the inline staticallyInBounds this
/// sub-pass replaced (formerly in SoftBoundPass.cpp), so the deprecated
/// SoftBoundConfig::ElideSafePointerChecks path keeps its seed behavior
/// on load/store checks — the only intentional delta is that checks
/// synthesized for setjmp/longjmp buffers are now also eligible (the
/// inline proof ran only at loads and stores). Such checks are provably
/// in bounds, so traps are unchanged; only check counters can differ on
/// setjmp-heavy code. An out-of-range constant interior index
/// (s.buf[9] on char buf[8]) is *rejected* and its check survives to trap;
/// only containment of the leading pointer-arithmetic step is judged
/// against the whole object, so sub-object overflows through a derived
/// field pointer plus arithmetic can still be missed — the §6.5
/// compatibility/precision trade-off, and why this sub-pass is off by
/// default.
///
//===----------------------------------------------------------------------===//

#include "opt/checks/CheckOpt.h"
#include "support/Casting.h"

using namespace softbound;

namespace {

/// CCured-SAFE-style static proof: \p Ptr is a constant offset into an
/// object of known size and [offset, offset+AccessSize) is in bounds.
bool staticallyInBounds(Value *Ptr, uint64_t AccessSize) {
  uint64_t Offset = 0;
  Value *Cur = Ptr;
  for (int Depth = 0; Depth < 16; ++Depth) {
    if (auto *BC = dyn_cast<CastInst>(Cur);
        BC && BC->opcode() == CastInst::Op::Bitcast) {
      Cur = BC->source();
      continue;
    }
    if (auto *GI = dyn_cast<GEPInst>(Cur)) {
      // All indices must be constants to accumulate a static offset.
      Type *Ty = GI->sourceType();
      auto *First = dyn_cast<ConstantInt>(GI->index(0));
      if (!First || First->value() < 0)
        return false;
      Offset += static_cast<uint64_t>(First->value()) * Ty->sizeInBytes();
      for (unsigned K = 1; K < GI->numIndices(); ++K) {
        auto *CI = dyn_cast<ConstantInt>(GI->index(K));
        if (!CI || CI->value() < 0)
          return false;
        if (auto *AT = dyn_cast<ArrayType>(Ty)) {
          if (static_cast<uint64_t>(CI->value()) >= AT->count())
            return false;
          Offset += static_cast<uint64_t>(CI->value()) *
                    AT->element()->sizeInBytes();
          Ty = AT->element();
          continue;
        }
        auto *ST = cast<StructType>(Ty);
        Offset += ST->fieldOffset(static_cast<unsigned>(CI->value()));
        Ty = ST->field(static_cast<unsigned>(CI->value()));
      }
      Cur = GI->pointer();
      continue;
    }
    // Base object with statically known size?
    if (auto *AI = dyn_cast<AllocaInst>(Cur))
      return Offset + AccessSize <= AI->allocatedType()->sizeInBytes();
    if (auto *G = dyn_cast<GlobalVariable>(Cur))
      return Offset + AccessSize <= G->valueType()->sizeInBytes();
    return false;
  }
  return false;
}

} // namespace

void softbound::checkopt::elideSafeChecks(Function &F, CheckOptStats &Stats) {
  for (const auto &BB : F.blocks()) {
    for (auto It = BB->begin(); It != BB->end();) {
      auto *Chk = dyn_cast<SpatialCheckInst>(It->get());
      if (!Chk || !staticallyInBounds(Chk->pointer(), Chk->accessSize())) {
        ++It;
        continue;
      }
      It = BB->erase(It);
      ++Stats.SafeChecksElided;
    }
  }
}
