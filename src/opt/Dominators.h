//===- opt/Dominators.h - dominator tree and frontiers ----------*- C++ -*-===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dominator tree (Cooper–Harvey–Kennedy iterative algorithm) and dominance
/// frontiers, used by mem2reg for SSA construction.
///
//===----------------------------------------------------------------------===//

#ifndef SOFTBOUND_OPT_DOMINATORS_H
#define SOFTBOUND_OPT_DOMINATORS_H

#include "ir/Function.h"

#include <map>
#include <set>
#include <vector>

namespace softbound {

/// Dominator information for one function.
class DomTree {
public:
  explicit DomTree(Function &F);

  /// Immediate dominator, or null for the entry block.
  BasicBlock *idom(BasicBlock *BB) const {
    auto It = IDom.find(BB);
    return It == IDom.end() ? nullptr : It->second;
  }

  /// True if A dominates B (reflexive).
  bool dominates(BasicBlock *A, BasicBlock *B) const;

  /// Dominance frontier of a block.
  const std::set<BasicBlock *> &frontier(BasicBlock *BB) const {
    static const std::set<BasicBlock *> Empty;
    auto It = DF.find(BB);
    return It == DF.end() ? Empty : It->second;
  }

  /// Dominator-tree children (for the mem2reg renaming walk).
  const std::vector<BasicBlock *> &children(BasicBlock *BB) const {
    static const std::vector<BasicBlock *> Empty;
    auto It = Kids.find(BB);
    return It == Kids.end() ? Empty : It->second;
  }

  /// Blocks in reverse postorder (reachable blocks only).
  const std::vector<BasicBlock *> &rpo() const { return RPO; }

  /// Predecessors of reachable blocks.
  const std::vector<BasicBlock *> &preds(BasicBlock *BB) const {
    static const std::vector<BasicBlock *> Empty;
    auto It = Preds.find(BB);
    return It == Preds.end() ? Empty : It->second;
  }

private:
  std::map<BasicBlock *, BasicBlock *> IDom;
  std::map<BasicBlock *, std::set<BasicBlock *>> DF;
  std::map<BasicBlock *, std::vector<BasicBlock *>> Kids;
  std::map<BasicBlock *, std::vector<BasicBlock *>> Preds;
  std::map<BasicBlock *, int> Order; ///< RPO index.
  std::vector<BasicBlock *> RPO;
};

} // namespace softbound

#endif // SOFTBOUND_OPT_DOMINATORS_H
