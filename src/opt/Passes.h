//===- opt/Passes.h - optimization pass entry points ------------*- C++ -*-===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The optimizer the paper layers SoftBound on: register promotion
/// (mem2reg), CFG simplification, constant folding, local CSE and DCE.
/// Instrumentation happens *after* optimization so register promotion has
/// already removed most scalar memory traffic (§6.1), and the optimizer is
/// re-run afterwards, which — together with eliminateRedundantChecks —
/// removes duplicate bounds checks (§6.1, §6.3).
///
//===----------------------------------------------------------------------===//

#ifndef SOFTBOUND_OPT_PASSES_H
#define SOFTBOUND_OPT_PASSES_H

#include "ir/Module.h"
#include "opt/checks/CheckOpt.h"

namespace softbound {

/// Promotes non-address-taken scalar allocas to SSA registers (classic
/// iterated-dominance-frontier phi placement + renaming).
void mem2reg(Function &F);

/// Removes unreachable blocks, folds constant branches, merges straight-line
/// block chains. Returns true if anything changed.
bool simplifyCFG(Function &F);

/// Folds constant expressions and algebraic identities. Returns true if
/// anything changed.
bool constantFold(Function &F, Module &M);

/// Removes side-effect-free instructions whose results are unused.
bool dce(Function &F);

/// Block-local common-subexpression elimination over pure instructions.
bool localCSE(Function &F);

/// Standard pipeline: mem2reg then (fold, CSE, simplify, DCE) to fixpoint.
void optimizeFunction(Function &F, Module &M);

/// Runs optimizeFunction over every definition in the module.
void optimizeModule(Module &M);

/// SoftBound-specific cleanup run after instrumentation: removes bounds
/// checks dominated by an identical check and block-local duplicate
/// metadata loads. Returns the number of instructions removed.
unsigned eliminateRedundantChecks(Function &F);

/// Module-wide eliminateRedundantChecks; returns total removed.
unsigned eliminateRedundantChecks(Module &M);

/// The paper's §6.1 post-instrumentation cleanup as one unit:
/// eliminateRedundantChecks over the module, then localCSE + dce over
/// every definition. Shared by SoftBoundConfig::ReoptimizeAfter and the
/// standalone "reoptimize" pipeline pass so the two stay equivalent.
/// Returns the number of checks eliminated.
unsigned reoptimizeInstrumented(Module &M);

// The static check-optimization subsystem (range analysis, dominance-based
// redundant-check elimination, loop-invariant check hoisting) is declared
// in opt/checks/CheckOpt.h and re-exported here: run
// optimizeChecks(Module&, CheckOptConfig) after applySoftBound and before
// VM execution.

} // namespace softbound

#endif // SOFTBOUND_OPT_PASSES_H
