//===- opt/Dominators.cpp - dominator tree and frontiers --------------------===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "opt/Dominators.h"

#include <algorithm>
#include <functional>

using namespace softbound;

DomTree::DomTree(Function &F) {
  // Postorder DFS from entry over successor edges.
  std::set<BasicBlock *> Visited;
  std::vector<BasicBlock *> Post;
  std::function<void(BasicBlock *)> DFS = [&](BasicBlock *BB) {
    if (!Visited.insert(BB).second)
      return;
    for (auto *S : BB->successors())
      DFS(S);
    Post.push_back(BB);
  };
  BasicBlock *Entry = F.entry();
  DFS(Entry);

  RPO.assign(Post.rbegin(), Post.rend());
  for (size_t I = 0; I < RPO.size(); ++I)
    Order[RPO[I]] = static_cast<int>(I);

  for (auto *BB : RPO)
    for (auto *S : BB->successors())
      if (Visited.count(S))
        Preds[S].push_back(BB);

  // Cooper–Harvey–Kennedy iteration.
  IDom[Entry] = Entry;
  auto Intersect = [&](BasicBlock *A, BasicBlock *B) {
    while (A != B) {
      while (Order[A] > Order[B])
        A = IDom[A];
      while (Order[B] > Order[A])
        B = IDom[B];
    }
    return A;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (auto *BB : RPO) {
      if (BB == Entry)
        continue;
      BasicBlock *NewIDom = nullptr;
      for (auto *P : Preds[BB]) {
        if (!IDom.count(P))
          continue;
        NewIDom = NewIDom ? Intersect(P, NewIDom) : P;
      }
      if (!NewIDom)
        continue;
      auto It = IDom.find(BB);
      if (It == IDom.end() || It->second != NewIDom) {
        IDom[BB] = NewIDom;
        Changed = true;
      }
    }
  }
  IDom[Entry] = nullptr; // External convention: entry has no idom.

  for (auto &[BB, Dom] : IDom)
    if (Dom)
      Kids[Dom].push_back(BB);
  // Deterministic child order.
  for (auto &[BB, Ch] : Kids)
    std::sort(Ch.begin(), Ch.end(),
              [&](BasicBlock *A, BasicBlock *B) { return Order[A] < Order[B]; });

  // Dominance frontiers.
  for (auto *BB : RPO) {
    const auto &P = Preds[BB];
    if (P.size() < 2)
      continue;
    for (auto *Runner : P) {
      while (Runner && Runner != IDom[BB]) {
        DF[Runner].insert(BB);
        Runner = IDom[Runner];
      }
    }
  }
}

bool DomTree::dominates(BasicBlock *A, BasicBlock *B) const {
  while (B) {
    if (A == B)
      return true;
    auto It = IDom.find(B);
    B = It == IDom.end() ? nullptr : It->second;
  }
  return false;
}
