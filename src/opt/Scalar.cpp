//===- opt/Scalar.cpp - simplifycfg, constfold, cse, dce --------------------===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "opt/Passes.h"

#include "support/Compiler.h"

#include <map>
#include <set>
#include <tuple>

using namespace softbound;

//===----------------------------------------------------------------------===//
// simplifyCFG
//===----------------------------------------------------------------------===//

namespace {

/// Computes the set of blocks reachable from the entry.
std::set<BasicBlock *> reachableBlocks(Function &F) {
  std::set<BasicBlock *> Seen;
  std::vector<BasicBlock *> Work{F.entry()};
  while (!Work.empty()) {
    BasicBlock *BB = Work.back();
    Work.pop_back();
    if (!Seen.insert(BB).second)
      continue;
    for (auto *S : BB->successors())
      Work.push_back(S);
  }
  return Seen;
}

/// Drops phi entries whose incoming block is \p Pred.
void removePhiEntriesFor(BasicBlock *BB, BasicBlock *Pred) {
  for (auto &I : *BB) {
    auto *Phi = dyn_cast<PhiInst>(I.get());
    if (!Phi)
      break;
    // Rebuild the phi without entries from Pred.
    std::vector<std::pair<Value *, BasicBlock *>> Keep;
    for (unsigned K = 0; K < Phi->numIncoming(); ++K)
      if (Phi->incomingBlock(K) != Pred)
        Keep.emplace_back(Phi->incomingValue(K), Phi->incomingBlock(K));
    if (Keep.size() == Phi->numIncoming())
      continue;
    auto Fresh = std::make_unique<PhiInst>(Phi->type(), Phi->name());
    for (auto &[V, B] : Keep)
      Fresh->addIncoming(V, B);
    // Swap in place: replace uses and substitute the instruction.
    PhiInst *FreshP = Fresh.get();
    BB->parent()->replaceAllUsesWith(Phi, FreshP);
    for (auto It = BB->begin(); It != BB->end(); ++It)
      if (It->get() == Phi) {
        FreshP->setParent(BB);
        *It = std::move(Fresh);
        break;
      }
  }
}

/// Replaces single-entry phis by their value.
bool foldTrivialPhis(Function &F, const std::set<BasicBlock *> &Live) {
  bool Changed = false;
  for (auto &BB : F.blocks()) {
    if (!Live.count(BB.get()))
      continue;
    for (auto It = BB->begin(); It != BB->end();) {
      auto *Phi = dyn_cast<PhiInst>(It->get());
      if (!Phi)
        break;
      if (Phi->numIncoming() == 1) {
        F.replaceAllUsesWith(Phi, Phi->incomingValue(0));
        It = BB->erase(It);
        Changed = true;
        continue;
      }
      ++It;
    }
  }
  return Changed;
}

} // namespace

bool softbound::simplifyCFG(Function &F) {
  if (!F.isDefinition())
    return false;
  bool Changed = false;

  // 1. Fold constant conditional branches.
  for (auto &BB : F.blocks()) {
    auto *Br = dyn_cast<BrInst>(BB->terminator());
    if (!Br || !Br->isConditional())
      continue;
    BasicBlock *Dead = nullptr;
    if (auto *CI = dyn_cast<ConstantInt>(Br->condition())) {
      BasicBlock *Taken = CI->isZero() ? Br->successor(1) : Br->successor(0);
      Dead = CI->isZero() ? Br->successor(0) : Br->successor(1);
      if (Dead == Taken)
        Dead = nullptr;
      auto It = std::prev(BB->end());
      BB->erase(It);
      BB->append(std::make_unique<BrInst>(F.parent()->ctx().voidTy(), Taken));
      if (Dead)
        removePhiEntriesFor(Dead, BB.get());
      Changed = true;
    } else if (Br->successor(0) == Br->successor(1)) {
      BasicBlock *Taken = Br->successor(0);
      auto It = std::prev(BB->end());
      BB->erase(It);
      BB->append(std::make_unique<BrInst>(F.parent()->ctx().voidTy(), Taken));
      Changed = true;
    }
  }

  // 2. Remove unreachable blocks.
  std::set<BasicBlock *> Live = reachableBlocks(F);
  for (auto &BB : F.blocks()) {
    if (Live.count(BB.get()))
      continue;
    for (auto *S : BB->successors())
      if (Live.count(S))
        removePhiEntriesFor(S, BB.get());
  }
  for (auto It = F.blocks().begin(); It != F.blocks().end();) {
    if (!Live.count(It->get())) {
      It = F.blocks().erase(It);
      Changed = true;
    } else {
      ++It;
    }
  }

  Changed |= foldTrivialPhis(F, Live);

  // 3. Merge B into P when P -> B is the only edge in either direction.
  bool Merged = true;
  while (Merged) {
    Merged = false;
    std::map<BasicBlock *, std::vector<BasicBlock *>> Preds;
    for (auto &BB : F.blocks())
      for (auto *S : BB->successors())
        Preds[S].push_back(BB.get());

    for (auto &BBPtr : F.blocks()) {
      BasicBlock *P = BBPtr.get();
      auto *Br = dyn_cast<BrInst>(P->terminator());
      if (!Br || Br->isConditional())
        continue;
      BasicBlock *B = Br->successor(0);
      if (B == P || B == F.entry())
        continue;
      auto &BP = Preds[B];
      if (BP.size() != 1 || BP[0] != P)
        continue;
      // B's phis have exactly one incoming (from P): fold them.
      for (auto It = B->begin(); It != B->end();) {
        auto *Phi = dyn_cast<PhiInst>(It->get());
        if (!Phi)
          break;
        F.replaceAllUsesWith(Phi, Phi->numIncoming()
                                      ? Phi->incomingValue(0)
                                      : F.parent()->undef(Phi->type()));
        It = B->erase(It);
      }
      // Remove P's terminator, splice B's instructions into P.
      P->erase(std::prev(P->end()));
      while (!B->empty()) {
        std::unique_ptr<Instruction> I = std::move(B->instructions().front());
        B->instructions().pop_front();
        I->setParent(P);
        P->instructions().push_back(std::move(I));
      }
      // Successor phis that referenced B now come from P.
      for (auto *S : P->successors())
        for (auto &I : *S) {
          auto *Phi = dyn_cast<PhiInst>(I.get());
          if (!Phi)
            break;
          for (unsigned K = 0; K < Phi->numIncoming(); ++K)
            if (Phi->incomingBlock(K) == B) {
              // Rebuild entry: cheapest is to rewrite the block array via a
              // fresh phi; incoming block arrays are private, so rebuild.
              std::vector<std::pair<Value *, BasicBlock *>> Entries;
              for (unsigned J = 0; J < Phi->numIncoming(); ++J)
                Entries.emplace_back(Phi->incomingValue(J),
                                     Phi->incomingBlock(J) == B
                                         ? P
                                         : Phi->incomingBlock(J));
              auto Fresh =
                  std::make_unique<PhiInst>(Phi->type(), Phi->name());
              for (auto &[V, Blk] : Entries)
                Fresh->addIncoming(V, Blk);
              PhiInst *FreshP = Fresh.get();
              F.replaceAllUsesWith(Phi, FreshP);
              for (auto It2 = S->begin(); It2 != S->end(); ++It2)
                if (It2->get() == Phi) {
                  FreshP->setParent(S);
                  *It2 = std::move(Fresh);
                  break;
                }
              break;
            }
        }
      // Delete the now-empty block B.
      for (auto It = F.blocks().begin(); It != F.blocks().end(); ++It)
        if (It->get() == B) {
          F.blocks().erase(It);
          break;
        }
      Merged = true;
      Changed = true;
      break; // Preds map is stale; recompute.
    }
  }
  return Changed;
}

//===----------------------------------------------------------------------===//
// constantFold
//===----------------------------------------------------------------------===//

namespace {

int64_t canonBits(uint64_t V, unsigned Bits) {
  if (Bits >= 64)
    return static_cast<int64_t>(V);
  uint64_t Mask = (1ULL << Bits) - 1;
  V &= Mask;
  if (Bits > 1 && ((V >> (Bits - 1)) & 1))
    V |= ~Mask;
  return static_cast<int64_t>(V);
}

/// Folds one instruction to a constant or simpler value, or null.
Value *foldInst(Instruction *I, Module &M) {
  if (auto *B = dyn_cast<BinOpInst>(I)) {
    auto *L = dyn_cast<ConstantInt>(B->lhs());
    auto *R = dyn_cast<ConstantInt>(B->rhs());
    auto *Ty = cast<IntType>(B->type());
    unsigned Bits = Ty->bits();
    if (L && R) {
      uint64_t A = static_cast<uint64_t>(L->value());
      uint64_t C = static_cast<uint64_t>(R->value());
      uint64_t UA = Bits >= 64 ? A : A & ((1ULL << Bits) - 1);
      uint64_t UC = Bits >= 64 ? C : C & ((1ULL << Bits) - 1);
      int64_t Out;
      switch (B->opcode()) {
      case BinOpInst::Op::Add:
        Out = canonBits(A + C, Bits);
        break;
      case BinOpInst::Op::Sub:
        Out = canonBits(A - C, Bits);
        break;
      case BinOpInst::Op::Mul:
        Out = canonBits(A * C, Bits);
        break;
      case BinOpInst::Op::SDiv:
        if (C == 0 || (L->value() == INT64_MIN && R->value() == -1))
          return nullptr;
        Out = canonBits(static_cast<uint64_t>(L->value() / R->value()), Bits);
        break;
      case BinOpInst::Op::SRem:
        if (C == 0 || (L->value() == INT64_MIN && R->value() == -1))
          return nullptr;
        Out = canonBits(static_cast<uint64_t>(L->value() % R->value()), Bits);
        break;
      case BinOpInst::Op::UDiv:
        if (UC == 0)
          return nullptr;
        Out = canonBits(UA / UC, Bits);
        break;
      case BinOpInst::Op::URem:
        if (UC == 0)
          return nullptr;
        Out = canonBits(UA % UC, Bits);
        break;
      case BinOpInst::Op::And:
        Out = canonBits(A & C, Bits);
        break;
      case BinOpInst::Op::Or:
        Out = canonBits(A | C, Bits);
        break;
      case BinOpInst::Op::Xor:
        Out = canonBits(A ^ C, Bits);
        break;
      case BinOpInst::Op::Shl:
        Out = canonBits(UA << (C & (Bits - 1)), Bits);
        break;
      case BinOpInst::Op::LShr:
        Out = canonBits(UA >> (C & (Bits - 1)), Bits);
        break;
      case BinOpInst::Op::AShr:
        Out = canonBits(
            static_cast<uint64_t>(L->value() >> (C & (Bits - 1))), Bits);
        break;
      default:
        return nullptr;
      }
      return M.constInt(Ty, Out);
    }
    // Algebraic identities with a constant on the right.
    if (R) {
      switch (B->opcode()) {
      case BinOpInst::Op::Add:
      case BinOpInst::Op::Sub:
      case BinOpInst::Op::Shl:
      case BinOpInst::Op::LShr:
      case BinOpInst::Op::AShr:
      case BinOpInst::Op::Or:
      case BinOpInst::Op::Xor:
        if (R->isZero())
          return B->lhs();
        break;
      case BinOpInst::Op::Mul:
        if (R->isZero())
          return M.constInt(Ty, 0);
        if (R->value() == 1)
          return B->lhs();
        break;
      case BinOpInst::Op::And:
        if (R->isZero())
          return M.constInt(Ty, 0);
        break;
      default:
        break;
      }
    }
    return nullptr;
  }

  if (auto *C = dyn_cast<ICmpInst>(I)) {
    auto *L = dyn_cast<ConstantInt>(C->lhs());
    auto *R = dyn_cast<ConstantInt>(C->rhs());
    if (L && R) {
      int64_t A = L->value(), B2 = R->value();
      uint64_t UA = L->zextValue(), UB = R->zextValue();
      bool Out;
      switch (C->pred()) {
      case ICmpInst::Pred::EQ:
        Out = A == B2;
        break;
      case ICmpInst::Pred::NE:
        Out = A != B2;
        break;
      case ICmpInst::Pred::SLT:
        Out = A < B2;
        break;
      case ICmpInst::Pred::SLE:
        Out = A <= B2;
        break;
      case ICmpInst::Pred::SGT:
        Out = A > B2;
        break;
      case ICmpInst::Pred::SGE:
        Out = A >= B2;
        break;
      case ICmpInst::Pred::ULT:
        Out = UA < UB;
        break;
      case ICmpInst::Pred::ULE:
        Out = UA <= UB;
        break;
      case ICmpInst::Pred::UGT:
        Out = UA > UB;
        break;
      case ICmpInst::Pred::UGE:
        Out = UA >= UB;
        break;
      }
      return M.constInt(M.ctx().i1(), Out ? 1 : 0);
    }
    // Null-pointer equality folds.
    if (isa<ConstantNull>(C->lhs()) && isa<ConstantNull>(C->rhs())) {
      if (C->pred() == ICmpInst::Pred::EQ)
        return M.constInt(M.ctx().i1(), 1);
      if (C->pred() == ICmpInst::Pred::NE)
        return M.constInt(M.ctx().i1(), 0);
    }
    return nullptr;
  }

  if (auto *Ca = dyn_cast<CastInst>(I)) {
    auto *C = dyn_cast<ConstantInt>(Ca->source());
    if (!C)
      return nullptr;
    switch (Ca->opcode()) {
    case CastInst::Op::Trunc:
    case CastInst::Op::SExt:
      return M.constInt(cast<IntType>(Ca->type()),
                        canonBits(static_cast<uint64_t>(C->value()),
                                  cast<IntType>(Ca->type())->bits()));
    case CastInst::Op::ZExt:
      return M.constInt(cast<IntType>(Ca->type()),
                        static_cast<int64_t>(C->zextValue()));
    default:
      return nullptr;
    }
  }

  if (auto *S = dyn_cast<SelectInst>(I)) {
    if (auto *C = dyn_cast<ConstantInt>(S->condition()))
      return C->isZero() ? S->ifFalse() : S->ifTrue();
    return nullptr;
  }

  return nullptr;
}

} // namespace

bool softbound::constantFold(Function &F, Module &M) {
  if (!F.isDefinition())
    return false;
  bool Changed = false;
  for (auto &BB : F.blocks())
    for (auto It = BB->begin(); It != BB->end();) {
      Instruction *I = It->get();
      Value *Folded = I->isPure() || isa<BinOpInst>(I) ? foldInst(I, M)
                                                       : nullptr;
      if (Folded && Folded != I) {
        F.replaceAllUsesWith(I, Folded);
        It = BB->erase(It);
        Changed = true;
        continue;
      }
      ++It;
    }
  return Changed;
}

//===----------------------------------------------------------------------===//
// dce
//===----------------------------------------------------------------------===//

bool softbound::dce(Function &F) {
  if (!F.isDefinition())
    return false;
  bool Changed = false;
  bool Local = true;
  while (Local) {
    Local = false;
    std::map<const Value *, unsigned> Uses;
    for (auto &BB : F.blocks())
      for (auto &I : *BB)
        for (unsigned K = 0; K < I->numOperands(); ++K)
          ++Uses[I->op(K)];
    for (auto &BB : F.blocks())
      for (auto It = BB->begin(); It != BB->end();) {
        Instruction *I = It->get();
        bool Removable = I->isPure() || isa<LoadInst>(I) ||
                         isa<AllocaInst>(I) || isa<MetaLoadInst>(I);
        if (Removable && Uses[I] == 0) {
          It = BB->erase(It);
          Local = Changed = true;
          continue;
        }
        ++It;
      }
  }
  return Changed;
}

//===----------------------------------------------------------------------===//
// localCSE
//===----------------------------------------------------------------------===//

namespace {

/// Structural key for pure instructions (block-local value numbering).
using CSEKey = std::tuple<ValueKind, int, std::vector<Value *>, Type *,
                          const void *>;

bool makeKey(Instruction *I, CSEKey &Key) {
  int Sub = 0;
  const void *Extra = nullptr;
  switch (I->kind()) {
  case ValueKind::BinOp:
    Sub = static_cast<int>(cast<BinOpInst>(I)->opcode());
    break;
  case ValueKind::ICmp:
    Sub = static_cast<int>(cast<ICmpInst>(I)->pred());
    break;
  case ValueKind::Cast:
    Sub = static_cast<int>(cast<CastInst>(I)->opcode());
    break;
  case ValueKind::GEP:
    Extra = cast<GEPInst>(I)->sourceType();
    break;
  case ValueKind::Select:
  case ValueKind::MakeBounds:
  case ValueKind::PackPB:
  case ValueKind::ExtractPtr:
  case ValueKind::ExtractBounds:
    break;
  default:
    return false;
  }
  Key = CSEKey(I->kind(), Sub, I->operands(), I->type(), Extra);
  return true;
}

} // namespace

bool softbound::localCSE(Function &F) {
  if (!F.isDefinition())
    return false;
  bool Changed = false;
  for (auto &BB : F.blocks()) {
    std::map<CSEKey, Instruction *> Seen;
    for (auto It = BB->begin(); It != BB->end();) {
      Instruction *I = It->get();
      CSEKey Key;
      if (!makeKey(I, Key)) {
        ++It;
        continue;
      }
      auto Found = Seen.find(Key);
      if (Found != Seen.end()) {
        F.replaceAllUsesWith(I, Found->second);
        It = BB->erase(It);
        Changed = true;
        continue;
      }
      Seen[Key] = I;
      ++It;
    }
  }
  return Changed;
}

//===----------------------------------------------------------------------===//
// Pipeline
//===----------------------------------------------------------------------===//

void softbound::optimizeFunction(Function &F, Module &M) {
  if (!F.isDefinition())
    return;
  simplifyCFG(F); // Remove frontend dead blocks before dominance analysis.
  mem2reg(F);
  for (int Round = 0; Round < 4; ++Round) {
    bool Changed = false;
    Changed |= constantFold(F, M);
    Changed |= localCSE(F);
    Changed |= simplifyCFG(F);
    Changed |= dce(F);
    if (!Changed)
      break;
  }
}

void softbound::optimizeModule(Module &M) {
  for (const auto &F : M.functions())
    optimizeFunction(*F, M);
}

//===----------------------------------------------------------------------===//
// eliminateRedundantChecks (§6.1/§6.3 re-optimization after instrumentation)
//===----------------------------------------------------------------------===//

unsigned softbound::eliminateRedundantChecks(Function &F) {
  if (!F.isDefinition())
    return 0;
  unsigned Removed = 0;
  for (auto &BB : F.blocks()) {
    // (ptr, bounds) -> largest access size already checked in this block.
    std::map<std::pair<Value *, Value *>, uint64_t> CheckedStore;
    std::map<std::pair<Value *, Value *>, uint64_t> CheckedAny;
    std::map<Value *, Instruction *> MetaLoaded; // addr -> live meta.load

    for (auto It = BB->begin(); It != BB->end();) {
      Instruction *I = It->get();

      if (auto *Chk = dyn_cast<SpatialCheckInst>(I)) {
        auto Key = std::make_pair(Chk->pointer(), Chk->bounds());
        auto &Best = Chk->isStoreCheck() ? CheckedStore : CheckedAny;
        // A store check subsumes a load check for the same pointer.
        uint64_t Prior = std::max(CheckedStore.count(Key) ? CheckedStore[Key]
                                                          : 0,
                                  CheckedAny.count(Key) ? CheckedAny[Key] : 0);
        if (Prior >= Chk->accessSize()) {
          It = BB->erase(It);
          ++Removed;
          continue;
        }
        // Guarded checks may consume prior facts (above) but never supply
        // them: a skipped guard means the check did not execute.
        if (!Chk->isGuarded())
          Best[Key] = std::max(Best[Key], Chk->accessSize());
        ++It;
        continue;
      }

      if (auto *ML = dyn_cast<MetaLoadInst>(I)) {
        auto Found = MetaLoaded.find(ML->address());
        if (Found != MetaLoaded.end()) {
          F.replaceAllUsesWith(ML, Found->second);
          It = BB->erase(It);
          ++Removed;
          continue;
        }
        MetaLoaded[ML->address()] = ML;
        ++It;
        continue;
      }

      // Calls may free memory or longjmp; metadata may change and pointers
      // may die. Conservatively invalidate both caches.
      if (isa<CallInst>(I) || isa<MetaStoreInst>(I)) {
        MetaLoaded.clear();
        if (isa<CallInst>(I)) {
          CheckedStore.clear();
          CheckedAny.clear();
        }
      }
      ++It;
    }
  }
  return Removed;
}

unsigned softbound::eliminateRedundantChecks(Module &M) {
  unsigned Total = 0;
  for (const auto &F : M.functions())
    Total += eliminateRedundantChecks(*F);
  return Total;
}

unsigned softbound::reoptimizeInstrumented(Module &M) {
  unsigned Eliminated = eliminateRedundantChecks(M);
  for (const auto &F : M.functions()) {
    if (!F->isDefinition())
      continue;
    localCSE(*F);
    dce(*F);
  }
  return Eliminated;
}
