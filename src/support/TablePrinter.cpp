//===- support/TablePrinter.cpp - aligned ASCII table output --------------===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/TablePrinter.h"

#include <cstdio>

using namespace softbound;

TablePrinter::TablePrinter(std::vector<std::string> Headers)
    : Headers(std::move(Headers)) {}

void TablePrinter::addRow(std::vector<std::string> Cells) {
  Cells.resize(Headers.size());
  Rows.push_back(std::move(Cells));
}

std::string TablePrinter::fmt(double V, int Precision) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Precision, V);
  return Buf;
}

std::string TablePrinter::pct(double Ratio, int Precision) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f%%", Precision, Ratio * 100.0);
  return Buf;
}

std::string TablePrinter::render() const {
  std::vector<size_t> Widths(Headers.size(), 0);
  for (size_t I = 0; I < Headers.size(); ++I)
    Widths[I] = Headers[I].size();
  for (const auto &Row : Rows)
    for (size_t I = 0; I < Row.size(); ++I)
      if (Row[I].size() > Widths[I])
        Widths[I] = Row[I].size();

  auto EmitRow = [&](const std::vector<std::string> &Cells, std::string &Out) {
    for (size_t I = 0; I < Cells.size(); ++I) {
      Out += "| ";
      Out += Cells[I];
      Out.append(Widths[I] - Cells[I].size() + 1, ' ');
    }
    Out += "|\n";
  };

  std::string Out;
  EmitRow(Headers, Out);
  for (size_t I = 0; I < Widths.size(); ++I) {
    Out += "|";
    Out.append(Widths[I] + 2, '-');
  }
  Out += "|\n";
  for (const auto &Row : Rows)
    EmitRow(Row, Out);
  return Out;
}

void TablePrinter::print() const {
  std::fputs(render().c_str(), stdout);
}
