//===- support/Casting.h - isa/cast/dyn_cast templates ----------*- C++ -*-===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-rolled, opt-in RTTI in the style of LLVM's llvm/Support/Casting.h.
/// A class hierarchy participates by exposing a Kind discriminator and a
/// static `bool classof(const Base *)` on each subclass.
///
//===----------------------------------------------------------------------===//

#ifndef SOFTBOUND_SUPPORT_CASTING_H
#define SOFTBOUND_SUPPORT_CASTING_H

#include <cassert>
#include <type_traits>

namespace softbound {

/// Returns true if \p Val is an instance of type To.
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

template <typename To, typename From>
  requires(!std::is_pointer_v<From>)
bool isa(const From &Val) {
  return To::classof(&Val);
}

/// Checked downcast: asserts that the dynamic type matches.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<To *>(Val);
}

template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<const To *>(Val);
}

template <typename To, typename From> To &cast(From &Val) {
  assert(isa<To>(&Val) && "cast<> argument of incompatible type");
  return static_cast<To &>(Val);
}

template <typename To, typename From> const To &cast(const From &Val) {
  assert(isa<To>(&Val) && "cast<> argument of incompatible type");
  return static_cast<const To &>(Val);
}

/// Downcast that returns null when the dynamic type does not match.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return (Val && isa<To>(Val)) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return (Val && isa<To>(Val)) ? static_cast<const To *>(Val) : nullptr;
}

} // namespace softbound

#endif // SOFTBOUND_SUPPORT_CASTING_H
