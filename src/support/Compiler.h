//===- support/Compiler.h - compiler abstraction macros ---------*- C++ -*-===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small compiler-portability helpers (unreachable marker, likely hints).
///
//===----------------------------------------------------------------------===//

#ifndef SOFTBOUND_SUPPORT_COMPILER_H
#define SOFTBOUND_SUPPORT_COMPILER_H

#include <cstdio>
#include <cstdlib>

namespace softbound {

/// Reports a fatal internal error and aborts. Used by sb_unreachable.
[[noreturn]] inline void reportUnreachable(const char *Msg, const char *File,
                                           unsigned Line) {
  std::fprintf(stderr, "UNREACHABLE executed at %s:%u: %s\n", File, Line, Msg);
  std::abort();
}

} // namespace softbound

/// Marks a point in code that must never be reached.
#define sb_unreachable(MSG)                                                    \
  ::softbound::reportUnreachable(MSG, __FILE__, __LINE__)

#endif // SOFTBOUND_SUPPORT_COMPILER_H
