//===- support/Telemetry.h - counters, histograms, trace export -*- C++ -*-===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The repo-wide telemetry registry (docs/observability.md): hierarchical
/// counters, power-of-two histograms, wall-clock timers, and a
/// Chrome-trace-event buffer, shared by the VM, the metadata facilities,
/// and the pass pipeline.
///
/// The disabled mode is the default and costs nothing observable: every
/// producer holds a `Telemetry *` (or a cached `TelemetryHistogram *`)
/// that is null unless a bench or test attached a sink, so the hot paths
/// pay exactly one pointer test and — crucially — never touch the
/// simulated cycle accounting. Counters and histograms recorded from the
/// VM or the facilities are deterministic; only the timers and the
/// pipeline-phase trace timestamps carry wall-clock time, and those are
/// never baseline-gated.
///
//===----------------------------------------------------------------------===//

#ifndef SOFTBOUND_SUPPORT_TELEMETRY_H
#define SOFTBOUND_SUPPORT_TELEMETRY_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace softbound {

/// Power-of-two-bucketed histogram: bucket 0 counts the value 0; bucket B
/// (B >= 1) counts values in [2^(B-1), 2^B - 1]; the last bucket absorbs
/// everything above its lower bound. Deterministic and mergeable — the
/// shape the facility probe-length distributions need.
///
/// record() is thread-safe (relaxed atomics): sharded metadata
/// facilities record probe lengths from concurrent VM lanes into one
/// shared histogram. Readers see exact totals once the writers joined.
class TelemetryHistogram {
public:
  static constexpr unsigned NumBuckets = 33;

  TelemetryHistogram() = default;
  TelemetryHistogram(const TelemetryHistogram &O) { *this = O; }
  TelemetryHistogram &operator=(const TelemetryHistogram &O) {
    for (unsigned B = 0; B < NumBuckets; ++B)
      Buckets[B].store(O.Buckets[B].load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    N.store(O.N.load(std::memory_order_relaxed), std::memory_order_relaxed);
    Total.store(O.Total.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    Peak.store(O.Peak.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
    return *this;
  }

  /// The bucket index \p V falls into.
  static unsigned bucketFor(uint64_t V) {
    if (V == 0)
      return 0;
    unsigned B = 0;
    while (V >>= 1)
      ++B;
    return B + 1 < NumBuckets ? B + 1 : NumBuckets - 1;
  }

  /// Smallest value bucket \p B counts.
  static uint64_t bucketLo(unsigned B) {
    return B == 0 ? 0 : uint64_t(1) << (B - 1);
  }

  /// Largest value bucket \p B counts (the last bucket is open-ended and
  /// reports UINT64_MAX).
  static uint64_t bucketHi(unsigned B) {
    if (B == 0)
      return 0;
    if (B >= NumBuckets - 1)
      return UINT64_MAX;
    return (uint64_t(1) << B) - 1;
  }

  void record(uint64_t V) {
    Buckets[bucketFor(V)].fetch_add(1, std::memory_order_relaxed);
    N.fetch_add(1, std::memory_order_relaxed);
    Total.fetch_add(V, std::memory_order_relaxed);
    uint64_t P = Peak.load(std::memory_order_relaxed);
    while (V > P && !Peak.compare_exchange_weak(P, V,
                                                std::memory_order_relaxed)) {
    }
  }

  /// Adds \p O's samples into this histogram (deterministic lane joins).
  void merge(const TelemetryHistogram &O) {
    for (unsigned B = 0; B < NumBuckets; ++B)
      Buckets[B].fetch_add(O.Buckets[B].load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
    N.fetch_add(O.N.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    Total.fetch_add(O.Total.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
    uint64_t V = O.Peak.load(std::memory_order_relaxed);
    uint64_t P = Peak.load(std::memory_order_relaxed);
    while (V > P && !Peak.compare_exchange_weak(P, V,
                                                std::memory_order_relaxed)) {
    }
  }

  uint64_t count() const { return N.load(std::memory_order_relaxed); }
  uint64_t sum() const { return Total.load(std::memory_order_relaxed); }
  uint64_t max() const { return Peak.load(std::memory_order_relaxed); }
  double mean() const {
    uint64_t C = count();
    return C ? static_cast<double>(sum()) / static_cast<double>(C) : 0.0;
  }
  uint64_t bucketCount(unsigned B) const {
    return B < NumBuckets ? Buckets[B].load(std::memory_order_relaxed) : 0;
  }

private:
  std::atomic<uint64_t> Buckets[NumBuckets] = {};
  std::atomic<uint64_t> N{0};
  std::atomic<uint64_t> Total{0};
  std::atomic<uint64_t> Peak{0};
};

/// One complete ("ph":"X") Chrome trace event. Timestamps are
/// microseconds in the trace format; VM phases use simulated cycles as
/// the microsecond unit so timelines are deterministic, pipeline phases
/// use wall-clock offsets from the start of the build.
struct TraceEvent {
  std::string Name;
  std::string Cat; ///< "pipeline" or "vm".
  int Tid = 0;
  uint64_t TsMicros = 0;
  uint64_t DurMicros = 0;
};

/// The registry. Paths are '/'-separated hierarchical names
/// ("facility/hashtable/probe_length"); iteration order is the sorted
/// path order, so reports are stable.
class Telemetry {
public:
  /// Trace thread IDs, one lane per producing layer.
  static constexpr int TidPipeline = 1;
  static constexpr int TidVM = 2;

  uint64_t &counter(const std::string &Path) { return Counters[Path]; }
  TelemetryHistogram &histogram(const std::string &Path) {
    return Histograms[Path];
  }
  double &timerMs(const std::string &Path) { return TimersMs[Path]; }

  const std::map<std::string, uint64_t> &counters() const { return Counters; }
  const std::map<std::string, TelemetryHistogram> &histograms() const {
    return Histograms;
  }
  const std::map<std::string, double> &timersMs() const { return TimersMs; }

  /// Appends a complete trace event; drops silently past the buffer cap
  /// (a runaway-recursion backstop, far above any real timeline).
  void addCompleteEvent(std::string Name, std::string Cat, int Tid,
                        uint64_t TsMicros, uint64_t DurMicros) {
    if (Events.size() >= MaxTraceEvents)
      return;
    Events.push_back(
        {std::move(Name), std::move(Cat), Tid, TsMicros, DurMicros});
  }

  const std::vector<TraceEvent> &traceEvents() const { return Events; }

  /// The trace buffer as Chrome trace-event JSON
  /// (https://chromium.googlesource.com — loads in chrome://tracing and
  /// Perfetto): {"traceEvents": [{name, cat, ph:"X", ts, dur, pid, tid}]}.
  std::string chromeTraceJson() const;

  /// Writes chromeTraceJson() to \p Path; false on I/O failure.
  bool writeChromeTrace(const std::string &Path) const;

  /// Folds \p O into this registry: counters and timers add, histograms
  /// merge sample-wise, trace events append in \p O's order (up to the
  /// buffer cap). Multi-lane sessions give every lane a private sink and
  /// merge them in lane-index order at join, so the combined registry is
  /// deterministic whenever each lane's recording is.
  void mergeFrom(const Telemetry &O) {
    for (const auto &[Path, V] : O.Counters)
      Counters[Path] += V;
    for (const auto &[Path, H] : O.Histograms)
      Histograms[Path].merge(H);
    for (const auto &[Path, Ms] : O.TimersMs)
      TimersMs[Path] += Ms;
    for (const auto &E : O.Events) {
      if (Events.size() >= MaxTraceEvents)
        break;
      Events.push_back(E);
    }
  }

  void clear() {
    Counters.clear();
    Histograms.clear();
    TimersMs.clear();
    Events.clear();
  }

private:
  static constexpr size_t MaxTraceEvents = 1 << 16;

  std::map<std::string, uint64_t> Counters;
  std::map<std::string, TelemetryHistogram> Histograms;
  std::map<std::string, double> TimersMs;
  std::vector<TraceEvent> Events;
};

/// RAII wall-clock timer accumulating into Telemetry::timerMs. Null sink
/// makes it a no-op, matching the registry's disabled mode.
class ScopedTimer {
public:
  ScopedTimer(Telemetry *T, std::string Path)
      : T(T), Path(std::move(Path)),
        Start(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    if (T)
      T->timerMs(Path) += std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - Start)
                              .count();
  }
  ScopedTimer(const ScopedTimer &) = delete;
  ScopedTimer &operator=(const ScopedTimer &) = delete;

private:
  Telemetry *T;
  std::string Path;
  std::chrono::steady_clock::time_point Start;
};

/// Dynamic counters for one profiling site (one check or metadata
/// instruction; see Module::assignCheckSites).
struct SiteCounters {
  uint64_t Executed = 0;      ///< Check/metadata op actually performed.
  uint64_t GuardElided = 0;   ///< Guarded check skipped (guard false).
  uint64_t FallbackFired = 0; ///< Guarded check whose guard was true.
  uint64_t Traps = 0;         ///< Violations raised at this site.
};

/// Dense per-site profile, indexed directly by Instruction::site() — no
/// hashing on the VM hot path. Pair with Module::checkSites() to map
/// indices back to names and kinds.
struct SiteProfile {
  std::vector<SiteCounters> Sites;

  void ensure(size_t N) {
    if (Sites.size() < N)
      Sites.resize(N);
  }

  /// Adds \p O's per-site counts into this profile (deterministic
  /// multi-lane joins: lanes merge in lane-index order).
  void mergeFrom(const SiteProfile &O) {
    ensure(O.Sites.size());
    for (size_t I = 0; I < O.Sites.size(); ++I) {
      Sites[I].Executed += O.Sites[I].Executed;
      Sites[I].GuardElided += O.Sites[I].GuardElided;
      Sites[I].FallbackFired += O.Sites[I].FallbackFired;
      Sites[I].Traps += O.Sites[I].Traps;
    }
  }
};

} // namespace softbound

#endif // SOFTBOUND_SUPPORT_TELEMETRY_H
