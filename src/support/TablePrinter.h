//===- support/TablePrinter.h - aligned ASCII table output ------*- C++ -*-===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Formats benchmark results as aligned ASCII tables so that every bench
/// binary can print the same rows/series the paper reports.
///
//===----------------------------------------------------------------------===//

#ifndef SOFTBOUND_SUPPORT_TABLEPRINTER_H
#define SOFTBOUND_SUPPORT_TABLEPRINTER_H

#include <string>
#include <vector>

namespace softbound {

/// Collects rows of string cells and prints them with aligned columns.
class TablePrinter {
public:
  explicit TablePrinter(std::vector<std::string> Headers);

  /// Appends one row; pads or truncates to the header width.
  void addRow(std::vector<std::string> Cells);

  /// Convenience: formats a double with the given precision.
  static std::string fmt(double V, int Precision = 1);

  /// Convenience: formats a percentage such as "79.3%".
  static std::string pct(double Ratio, int Precision = 1);

  /// Renders the table (headers, separator, rows) to a string.
  std::string render() const;

  /// Renders and writes to stdout.
  void print() const;

private:
  std::vector<std::string> Headers;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace softbound

#endif // SOFTBOUND_SUPPORT_TABLEPRINTER_H
