//===- support/Telemetry.cpp - counters, histograms, trace export ----------===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Telemetry.h"

#include <cstdio>

using namespace softbound;

namespace {

/// Minimal JSON string escaping (quotes, backslashes, control bytes);
/// event names are function/pass names so this is rarely exercised.
std::string escaped(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char Ch : S) {
    switch (Ch) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(Ch) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", Ch);
        Out += Buf;
      } else {
        Out += Ch;
      }
    }
  }
  return Out;
}

} // namespace

std::string Telemetry::chromeTraceJson() const {
  std::string Out = "{\"traceEvents\":[";
  bool First = true;
  for (const auto &E : Events) {
    if (!First)
      Out += ",";
    First = false;
    Out += "{\"name\":\"" + escaped(E.Name) + "\",\"cat\":\"" +
           escaped(E.Cat) + "\",\"ph\":\"X\",\"ts\":" +
           std::to_string(E.TsMicros) + ",\"dur\":" +
           std::to_string(E.DurMicros) + ",\"pid\":1,\"tid\":" +
           std::to_string(E.Tid) + "}";
  }
  Out += "],\"displayTimeUnit\":\"ms\"}\n";
  return Out;
}

bool Telemetry::writeChromeTrace(const std::string &Path) const {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  std::string S = chromeTraceJson();
  size_t Written = std::fwrite(S.data(), 1, S.size(), F);
  return std::fclose(F) == 0 && Written == S.size();
}
