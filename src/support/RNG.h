//===- support/RNG.h - deterministic pseudo-random numbers ------*- C++ -*-===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny, seedable xorshift128+ generator so that workloads, property tests
/// and benchmarks are bit-for-bit reproducible across runs and platforms.
///
//===----------------------------------------------------------------------===//

#ifndef SOFTBOUND_SUPPORT_RNG_H
#define SOFTBOUND_SUPPORT_RNG_H

#include <cstdint>

namespace softbound {

/// Deterministic xorshift128+ PRNG.
class RNG {
public:
  explicit RNG(uint64_t Seed = 0x9e3779b97f4a7c15ULL) {
    // SplitMix64 seeding avoids the all-zero state.
    auto Mix = [&Seed]() {
      Seed += 0x9e3779b97f4a7c15ULL;
      uint64_t Z = Seed;
      Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
      return Z ^ (Z >> 31);
    };
    S0 = Mix();
    S1 = Mix();
  }

  /// Returns the next 64 random bits.
  uint64_t next() {
    uint64_t X = S0;
    const uint64_t Y = S1;
    S0 = Y;
    X ^= X << 23;
    S1 = X ^ Y ^ (X >> 17) ^ (Y >> 26);
    return S1 + Y;
  }

  /// Returns a value uniformly distributed in [0, N). N must be nonzero.
  uint64_t below(uint64_t N) { return next() % N; }

  /// Returns a value uniformly distributed in [Lo, Hi] inclusive.
  int64_t range(int64_t Lo, int64_t Hi) {
    return Lo + static_cast<int64_t>(below(static_cast<uint64_t>(Hi - Lo + 1)));
  }

  /// Returns true with probability Num/Den.
  bool chance(uint64_t Num, uint64_t Den) { return below(Den) < Num; }

private:
  uint64_t S0, S1;
};

} // namespace softbound

#endif // SOFTBOUND_SUPPORT_RNG_H
