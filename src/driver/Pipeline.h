//===- driver/Pipeline.h - end-to-end build & run helpers -------*- C++ -*-===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One-stop pipeline: mini-C source -> IR -> optimizer -> (optional)
/// SoftBound instrumentation -> VM execution with a chosen metadata
/// facility.
///
/// The build side is now a thin compatibility wrapper over the composable
/// PipelinePlan API (driver/PassManager.h): buildProgram translates
/// BuildOptions into the equivalent plan
/// (frontend -> optimize -> softbound -> checkopt) and BuildResult is the
/// plan's PipelineResult. New code should construct PipelinePlan directly;
/// buildProgram/compileAndRun are kept indefinitely for existing call
/// sites but gain no new knobs (see README "Pipeline API" for the
/// deprecation policy).
///
//===----------------------------------------------------------------------===//

#ifndef SOFTBOUND_DRIVER_PIPELINE_H
#define SOFTBOUND_DRIVER_PIPELINE_H

#include "driver/PassManager.h"
#include "frontend/Compiler.h"
#include "softbound/SoftBoundPass.h"
#include "vm/VM.h"

#include <memory>
#include <string>
#include <vector>

namespace softbound {

/// Which §5.1 metadata facility implementation to execute with.
enum class FacilityKind { Shadow, Hash };

/// Build-time options.
/// \deprecated Prefer composing a PipelinePlan; every field here is a
/// frozen alias for a pass (or pass knob) in the plan.
struct BuildOptions {
  bool Optimize = true;    ///< Run the optimizer before instrumentation.
  bool Instrument = false; ///< Apply the SoftBound transformation.
  SoftBoundConfig SB;      ///< Pass configuration when instrumenting.
  /// Static check-optimization subsystem (opt/checks/), run after the
  /// SoftBound pass. On by default; per-sub-pass ablation knobs inside.
  CheckOptConfig CheckOpt;
};

/// A built program ready to run (the PipelinePlan result type).
using BuildResult = PipelineResult;

/// Translates \p Opts into the equivalent PipelinePlan for \p Source:
/// frontend, then optimize / softbound / checkopt as the flags dictate.
PipelinePlan planFromBuildOptions(const std::string &Source,
                                  const BuildOptions &Opts);

/// Compiles, verifies, optimizes and (optionally) instruments \p Source.
/// \deprecated Thin wrapper: planFromBuildOptions(Source, Opts).build().
BuildResult buildProgram(const std::string &Source, const BuildOptions &Opts);

/// Run-time options.
struct RunOptions {
  FacilityKind Facility = FacilityKind::Shadow;
  MemoryChecker *Checker = nullptr; ///< Baseline checker (uninstrumented).
  uint64_t RedzonePad = 0;          ///< Heap red-zone padding.
  uint64_t GlobalPad = 0;           ///< Global guard padding.
  /// Entry function name ("_sb_"-renamed form resolved automatically).
  /// Must be "main" (or a function with no direct call sites) when the
  /// module was built with checkopt(interproc): the whole-program
  /// propagation treats internally-called functions' call sites as
  /// exhaustive, so entering one directly with arbitrary arguments
  /// bypasses the proofs that elided its entry checks. Enforced:
  /// checkopt(interproc) records the contract on the Module
  /// (Module::recordInterProcContract) and runProgram refuses — with an
  /// explanatory Message — any Entry the pass's call graph considered
  /// non-externally-reachable.
  std::string Entry = "main";
  std::vector<int64_t> Args;
  uint64_t StepLimit = 4'000'000'000ULL;
  uint64_t CheckCost = 3; ///< Simulated instructions per bounds check.
  /// Out-parameter: facility statistics after the run (optional).
  MetadataStats *MetaStatsOut = nullptr;
  /// Telemetry sink (optional; null = the zero-cost disabled mode): VM
  /// phase trace events, facility probe histograms and clear/copy
  /// volumes, aggregate run counters. Never changes counters or cycles.
  Telemetry *Telem = nullptr;
  /// Out-parameter: per-site check/metadata profile (optional). Indexed
  /// by Instruction::site(); pair with Prog.M->checkSites() for names.
  SiteProfile *ProfileOut = nullptr;
  /// Trace-event name prefix (benches set "<workload>:").
  std::string TraceTag;
};

/// Runs a built program in a fresh VM. Creates the metadata facility for
/// instrumented programs.
RunResult runProgram(const BuildResult &Prog, const RunOptions &Opts = {});

/// Builds \p Plan and runs the result. Build errors are reported as a
/// RunResult with a Segfault trap and the error text as Message.
RunResult runPipeline(const PipelinePlan &Plan, const RunOptions &Opts = {});

/// Convenience: build + run in one call.
/// \deprecated Thin wrapper: runPipeline(planFromBuildOptions(...), ROpts).
RunResult compileAndRun(const std::string &Source, const BuildOptions &BOpts,
                        const RunOptions &ROpts = {});

} // namespace softbound

#endif // SOFTBOUND_DRIVER_PIPELINE_H
