//===- driver/Pipeline.h - end-to-end build & run helpers -------*- C++ -*-===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One-stop pipeline: mini-C source -> IR -> optimizer -> (optional)
/// SoftBound instrumentation -> VM execution with a chosen metadata
/// facility.
///
/// The build side is now a thin compatibility wrapper over the composable
/// PipelinePlan API (driver/PassManager.h): buildProgram translates
/// BuildOptions into the equivalent plan
/// (frontend -> optimize -> softbound -> checkopt) and BuildResult is the
/// plan's PipelineResult. New code should construct PipelinePlan directly;
/// buildProgram/compileAndRun are kept indefinitely for existing call
/// sites but gain no new knobs (see README "Pipeline API" for the
/// deprecation policy).
///
/// The run side follows the same shape (docs/runtime.md): runSession
/// takes a RunRequest — facility kind, shard count, lane count, sinks —
/// and returns a SessionResult with the lane-merged Combined view plus
/// per-lane results. runProgram / runPipeline / compileAndRun are frozen
/// wrappers over it.
///
//===----------------------------------------------------------------------===//

#ifndef SOFTBOUND_DRIVER_PIPELINE_H
#define SOFTBOUND_DRIVER_PIPELINE_H

#include "driver/PassManager.h"
#include "frontend/Compiler.h"
#include "softbound/SoftBoundPass.h"
#include "vm/VM.h"

#include <memory>
#include <string>
#include <vector>

namespace softbound {

/// Which §5.1 metadata facility implementation to execute with.
enum class FacilityKind { Shadow, Hash };

/// Build-time options.
/// \deprecated Prefer composing a PipelinePlan; every field here is a
/// frozen alias for a pass (or pass knob) in the plan.
struct BuildOptions {
  bool Optimize = true;    ///< Run the optimizer before instrumentation.
  bool Instrument = false; ///< Apply the SoftBound transformation.
  SoftBoundConfig SB;      ///< Pass configuration when instrumenting.
  /// Static check-optimization subsystem (opt/checks/), run after the
  /// SoftBound pass. On by default; per-sub-pass ablation knobs inside.
  CheckOptConfig CheckOpt;
};

/// A built program ready to run (the PipelinePlan result type).
using BuildResult = PipelineResult;

/// Translates \p Opts into the equivalent PipelinePlan for \p Source:
/// frontend, then optimize / softbound / checkopt as the flags dictate.
PipelinePlan planFromBuildOptions(const std::string &Source,
                                  const BuildOptions &Opts);

/// Compiles, verifies, optimizes and (optionally) instruments \p Source.
/// \deprecated Thin wrapper: planFromBuildOptions(Source, Opts).build().
BuildResult buildProgram(const std::string &Source, const BuildOptions &Opts);

/// One run request: everything the session layer needs to execute a
/// built program — facility choice and concurrency shape, entry point
/// and arguments, cost knobs, observation sinks. This is the single
/// options struct behind runSession (and, via thin wrappers, the
/// deprecated runProgram / runPipeline / compileAndRun trio; RunOptions
/// is a frozen alias for it).
struct RunRequest {
  FacilityKind Facility = FacilityKind::Shadow;
  MemoryChecker *Checker = nullptr; ///< Baseline checker (uninstrumented).
  uint64_t RedzonePad = 0;          ///< Heap red-zone padding.
  uint64_t GlobalPad = 0;           ///< Global guard padding.
  /// Number of interpreter lanes. 1 (the default) runs exactly the
  /// classic single-threaded sequence — byte-identical counters and
  /// cycles to every release before the session API. N > 1 runs N
  /// lanes concurrently over one shared SimMemory and one shared
  /// metadata facility (forced to ConcurrencyModel::Sharded); each lane
  /// executes Entry(Args) on a private 1/N slice of the stack segment.
  /// Refused (explanatory Message, Segfault trap) when combined with a
  /// baseline Checker — checkers keep single-threaded object tables.
  unsigned Lanes = 1;
  /// Shard count for the metadata facility (rounded up to a power of
  /// two). The default 1 with Lanes == 1 keeps the facility in
  /// SingleThread mode — no locks, the gated-baseline fast path. Any
  /// other combination stripes the facility's address space over
  /// power-of-two locks (ConcurrencyModel::Sharded), which adds
  /// contention accounting but never changes lookup/update results.
  unsigned FacilityShards = 1;
  /// Lock-free facility reads (docs/runtime.md "Lock-free reads"). When
  /// true the facility runs in ConcurrencyModel::LockFreeRead — writers
  /// still take the exclusive stripe lock, but lookups validate a copied
  /// entry against the stripe's seqlock instead of acquiring anything.
  /// Lookup/update *results* are unchanged; only the contention
  /// accounting moves from lock counters to seqlock read/retry counters
  /// (both priced in the non-gated contention_* group). The default
  /// false keeps single-lane/single-shard runs in SingleThread mode,
  /// byte-identical to the gated baselines.
  bool LockFreeReads = false;
  /// Entry function name ("_sb_"-renamed form resolved automatically).
  /// Must be "main" (or a function with no direct call sites) when the
  /// module was built with checkopt(interproc): the whole-program
  /// propagation treats internally-called functions' call sites as
  /// exhaustive, so entering one directly with arbitrary arguments
  /// bypasses the proofs that elided its entry checks. Enforced:
  /// checkopt(interproc) records the contract on the Module
  /// (Module::recordInterProcContract) and runProgram refuses — with an
  /// explanatory Message — any Entry the pass's call graph considered
  /// non-externally-reachable.
  std::string Entry = "main";
  std::vector<int64_t> Args;
  uint64_t StepLimit = 4'000'000'000ULL;
  uint64_t CheckCost = 3; ///< Simulated instructions per bounds check.
  /// Out-parameter: facility statistics after the run (optional).
  MetadataStats *MetaStatsOut = nullptr;
  /// Telemetry sink (optional; null = the zero-cost disabled mode): VM
  /// phase trace events, facility probe histograms and clear/copy
  /// volumes, aggregate run counters. Never changes counters or cycles.
  Telemetry *Telem = nullptr;
  /// Out-parameter: per-site check/metadata profile (optional). Indexed
  /// by Instruction::site(); pair with Prog.M->checkSites() for names.
  SiteProfile *ProfileOut = nullptr;
  /// Trace-event name prefix (benches set "<workload>:"). Multi-lane
  /// sessions append "lane<K>:" per lane so trace events stay
  /// attributable after the deterministic merge.
  std::string TraceTag;
};

/// Frozen alias for RunRequest: the name every pre-session call site
/// used. \deprecated New code should say RunRequest.
using RunOptions = RunRequest;

/// Everything one session produced. Combined is the lane-merged view
/// (counters summed, MaxFrameDepth maxed, trap taken from the first
/// trapping lane, outputs concatenated in lane order, per-request
/// `Requests` snapshots merged elementwise); PerLane keeps each lane's
/// untouched RunResult — including its own per-request stream, which is
/// what the traffic tier's detection and divergence reporting read.
/// Single-lane sessions have exactly one PerLane entry equal to
/// Combined.
struct SessionResult {
  RunResult Combined;
  std::vector<RunResult> PerLane;
  /// Facility statistics at session end (zeros for uninstrumented
  /// runs), including the lock acquire/contention counts behind the
  /// contention sim-cost model.
  MetadataStats Meta;

  bool ok() const { return Combined.ok(); }
};

/// Runs a built program in a fresh VM session: creates the metadata
/// facility for instrumented programs (sharded per \p Req), runs
/// Req.Lanes interpreter lanes, and merges per-lane profiles and
/// telemetry deterministically (lane-index order) into Req's sinks.
/// This is the primary run entry point; runProgram / runPipeline /
/// compileAndRun are thin wrappers returning .Combined.
SessionResult runSession(const BuildResult &Prog, const RunRequest &Req = {});

/// Builds \p Plan and runs the result as a session. Build errors are
/// reported as a Combined RunResult with a Segfault trap and the error
/// text as Message.
SessionResult runSession(const PipelinePlan &Plan, const RunRequest &Req = {});

/// Runs a built program in a fresh VM. Creates the metadata facility for
/// instrumented programs.
/// \deprecated Thin wrapper: runSession(Prog, Opts).Combined.
RunResult runProgram(const BuildResult &Prog, const RunOptions &Opts = {});

/// Builds \p Plan and runs the result. Build errors are reported as a
/// RunResult with a Segfault trap and the error text as Message.
/// \deprecated Thin wrapper: runSession(Plan, Opts).Combined.
RunResult runPipeline(const PipelinePlan &Plan, const RunOptions &Opts = {});

/// Convenience: build + run in one call.
/// \deprecated Thin wrapper: runSession(planFromBuildOptions(...),
/// ROpts).Combined.
RunResult compileAndRun(const std::string &Source, const BuildOptions &BOpts,
                        const RunOptions &ROpts = {});

} // namespace softbound

#endif // SOFTBOUND_DRIVER_PIPELINE_H
