//===- driver/PassManager.h - composable pass pipeline API ------*- C++ -*-===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The composable pipeline API. The paper's toolchain is a *sequence of
/// passes* (optimize -> SoftBound instrument -> re-optimize ->
/// check-elimination, §6.1/§6.3); this header makes that sequence an
/// explicit, first-class object instead of a set of booleans:
///
///   * ModulePass — one named transformation over a verified Module,
///     recording what it did into a PassContext.
///   * PassContext — carried through the pipeline; owns the unified
///     PipelineStats registry (transformation counters, check-optimization
///     counters, per-pass wall-clock timings) and collects diagnostics.
///   * PassRegistry — maps stable string names ("optimize", "softbound",
///     "reoptimize", "checkopt", "safe-elision") to pass factories, so
///     benches and tests can ablate by string.
///   * PipelinePlan — a fluent builder:
///
///       PipelinePlan().frontend(Src).optimize().softbound(Cfg)
///                     .checkOpt(CCfg).build()
///
///     plus a textual spec parser/printer
///     ("optimize,softbound,checkopt(range,redundant,hoist)") with
///     round-trip canonicalization via spec().
///
/// The legacy BuildOptions driver (driver/Pipeline.h) is a thin wrapper
/// over this API; PipelineResult *is* the legacy BuildResult.
///
//===----------------------------------------------------------------------===//

#ifndef SOFTBOUND_DRIVER_PASSMANAGER_H
#define SOFTBOUND_DRIVER_PASSMANAGER_H

#include "softbound/SoftBoundPass.h"

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace softbound {

class Telemetry;

//===----------------------------------------------------------------------===//
// Unified statistics
//===----------------------------------------------------------------------===//

/// Wall-clock record of one executed pass.
struct PassTiming {
  std::string Pass;  ///< Canonical pass spec (name plus non-default knobs).
  double Millis = 0; ///< Time spent inside ModulePass::run.
};

/// The single owner of everything the pipeline measured. Replaces the old
/// scatter across SoftBoundStats / CheckOptStats / driver locals; the
/// legacy PipelineResult::Stats view is synthesized from this.
struct PipelineStats {
  /// SoftBound transformation counters (checks/metadata inserted, calls
  /// rewritten, post-instrumentation eliminations). Its nested CheckOpt
  /// member stays zero here — CheckOpt below is the owner.
  SoftBoundStats SB;
  /// Check-optimization counters, accumulated across every checkopt /
  /// safe-elision pass in the plan.
  CheckOptStats CheckOpt;
  /// Set by the softbound pass.
  bool Instrumented = false;
  CheckMode Mode = CheckMode::Full;
  /// Per-pass timings, in execution order.
  std::vector<PassTiming> Passes;

  double totalMillis() const {
    double S = 0;
    for (const auto &T : Passes)
      S += T.Millis;
    return S;
  }
};

//===----------------------------------------------------------------------===//
// Pass interface
//===----------------------------------------------------------------------===//

/// Carried through the pipeline: stats registry + diagnostics sink.
class PassContext {
public:
  PipelineStats &stats() { return Stats; }
  const PipelineStats &stats() const { return Stats; }

  /// Reports a pass failure; the pipeline stops after the current pass.
  void error(std::string E) { Errors.push_back(std::move(E)); }
  bool hadErrors() const { return !Errors.empty(); }
  const std::vector<std::string> &errors() const { return Errors; }

private:
  PipelineStats Stats;
  std::vector<std::string> Errors;
};

/// One named module transformation. Implementations are immutable after
/// construction (configuration is baked in), so plans can share them.
class ModulePass {
public:
  virtual ~ModulePass() = default;

  /// Stable registry name ("softbound", "checkopt", ...).
  virtual std::string_view name() const = 0;

  /// Canonical textual form: the name, plus parenthesized knobs when the
  /// configuration differs from the registered default. Feeding this back
  /// through the spec parser reproduces the pass exactly.
  virtual std::string spec() const { return std::string(name()); }

  /// Runs over \p M, which is verifier-clean on entry and must stay so.
  virtual void run(Module &M, PassContext &Ctx) const = 0;
};

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

/// String-keyed pass factory table. The five built-in phases are
/// pre-registered; new optimizations become one `add` call instead of
/// another BuildOptions bool.
class PassRegistry {
public:
  /// Builds a pass from spec knobs. On failure, sets \p Err (naming the
  /// offending knob) and returns null.
  using Factory = std::function<std::shared_ptr<const ModulePass>(
      const std::vector<std::string> &Knobs, std::string &Err)>;

  struct Entry {
    std::string Description;        ///< One line, for --list-passes/docs.
    std::vector<std::string> Knobs; ///< Accepted knob names, for diagnostics.
    Factory Make;
  };

  /// The process-wide registry, with built-ins pre-registered.
  static PassRegistry &global();

  /// Registers \p Name; returns false (and changes nothing) if taken.
  bool add(const std::string &Name, std::string Description,
           std::vector<std::string> Knobs, Factory Make);

  const Entry *lookup(const std::string &Name) const;

  /// Creates a configured pass, or null with a diagnostic in \p Err
  /// ("unknown pass", "unknown knob") suitable for showing verbatim.
  std::shared_ptr<const ModulePass>
  create(const std::string &Name, const std::vector<std::string> &Knobs,
         std::string &Err) const;

  /// Registered names, sorted.
  std::vector<std::string> names() const;

private:
  std::map<std::string, Entry> Entries;
};

//===----------------------------------------------------------------------===//
// Pipeline plan
//===----------------------------------------------------------------------===//

/// Result of running a plan: the built module plus everything measured.
/// This *is* the legacy BuildResult (driver/Pipeline.h aliases it).
struct PipelineResult {
  std::unique_ptr<Module> M;
  /// Single owner of all pipeline statistics.
  PipelineStats Pipeline;
  /// \deprecated Legacy view for pre-PipelinePlan call sites: Pipeline.SB
  /// with Stats.CheckOpt / Stats.ChecksElidedStatically synced from
  /// Pipeline.CheckOpt. Reads the same numbers; prefer Pipeline.
  SoftBoundStats Stats;
  std::vector<std::string> Errors;
  bool Instrumented = false;
  CheckMode Mode = CheckMode::Full;

  bool ok() const { return M != nullptr && Errors.empty(); }
  std::string errorText() const {
    std::string S;
    for (const auto &E : Errors)
      S += E + "\n";
    return S;
  }
};

/// A frontend source plus an ordered pass sequence. Cheap to copy (passes
/// are shared and immutable). Misuse (unknown pass name, spec typo pushed
/// through pass()) is reported by build(), never by aborting.
class PipelinePlan {
public:
  PipelinePlan() = default;

  /// Sets the mini-C source the plan compiles. Required before build().
  PipelinePlan &frontend(std::string Source);

  // Fluent appenders for the built-in phases.
  PipelinePlan &optimize();                            ///< "optimize"
  PipelinePlan &softbound(SoftBoundConfig Cfg = {});   ///< "softbound"
  PipelinePlan &reoptimize();                          ///< "reoptimize"
  PipelinePlan &checkOpt(CheckOptConfig Cfg = {});     ///< "checkopt"
  PipelinePlan &safeElision();                         ///< "safe-elision"

  /// Appends a custom pass instance.
  PipelinePlan &pass(std::shared_ptr<const ModulePass> P);

  /// Appends a registered pass by name with default knobs; an unknown
  /// name becomes a build() error.
  PipelinePlan &pass(const std::string &Name);

  /// Parses a comma-separated pipeline spec — e.g.
  /// "optimize,softbound,checkopt(range,redundant,hoist)" — and appends
  /// the passes. On any error the plan is left unchanged, \p ErrOut (when
  /// non-null) receives the diagnostic, and false is returned.
  bool appendSpec(const std::string &Spec, std::string *ErrOut = nullptr);

  /// Routes per-pass timings and pipeline-phase trace events into \p T
  /// during build() (docs/observability.md); null detaches. \p TracePrefix
  /// namespaces event and timer names — benches pass "<workload>:" so one
  /// sink can hold several builds. Telemetry never affects the built
  /// module or its statistics.
  PipelinePlan &telemetry(Telemetry *T, std::string TracePrefix = "");

  /// Canonical spec of the whole plan (pass specs joined by commas).
  /// Round-trips: appendSpec(spec()) rebuilds an equivalent plan.
  std::string spec() const;

  size_t size() const { return Passes.size(); }

  /// Compiles, verifies, then runs each pass in order (re-verifying after
  /// each and attributing failures to the offending pass), and returns the
  /// module with unified stats. On error the module is null.
  PipelineResult build() const;

private:
  std::string Source;
  bool HaveSource = false;
  std::vector<std::shared_ptr<const ModulePass>> Passes;
  std::vector<std::string> PlanErrors; ///< Deferred to build().
  Telemetry *Telem = nullptr;
  std::string TracePrefix;
};

} // namespace softbound

#endif // SOFTBOUND_DRIVER_PASSMANAGER_H
