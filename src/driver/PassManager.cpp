//===- driver/PassManager.cpp - composable pass pipeline API ----------------===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "driver/PassManager.h"

#include "frontend/Compiler.h"
#include "ir/Verifier.h"
#include "opt/Passes.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <chrono>

using namespace softbound;

//===----------------------------------------------------------------------===//
// Built-in passes
//===----------------------------------------------------------------------===//

namespace {

/// "optimize": the pre-instrumentation optimizer (§6.1 layering).
class OptimizePass : public ModulePass {
public:
  std::string_view name() const override { return "optimize"; }
  void run(Module &M, PassContext &) const override { optimizeModule(M); }
};

/// "softbound": the §3/§5 transformation. Honors its SoftBoundConfig
/// verbatim, including the internal ReoptimizeAfter cleanup, so the bare
/// spec "optimize,softbound,checkopt" reproduces the legacy default
/// pipeline exactly.
class SoftBoundModulePass : public ModulePass {
public:
  explicit SoftBoundModulePass(SoftBoundConfig Cfg) : Cfg(Cfg) {}

  std::string_view name() const override { return "softbound"; }

  std::string spec() const override {
    std::string S(name());
    std::vector<std::string> Knobs;
    if (Cfg.Mode == CheckMode::StoreOnly)
      Knobs.push_back("store-only");
    if (Cfg.Mode == CheckMode::None)
      Knobs.push_back("metadata-only");
    if (!Cfg.ShrinkBounds)
      Knobs.push_back("no-shrink");
    if (!Cfg.InferMemcpyPointerFree)
      Knobs.push_back("no-memcpy-infer");
    if (!Cfg.CheckFunctionPointers)
      Knobs.push_back("no-funcptr-check");
    if (!Cfg.ReoptimizeAfter)
      Knobs.push_back("no-reopt");
    if (Cfg.ElideSafePointerChecks)
      Knobs.push_back("elide-safe");
    if (Knobs.empty())
      return S;
    S += '(';
    for (size_t I = 0; I < Knobs.size(); ++I)
      S += (I ? "," : "") + Knobs[I];
    return S + ')';
  }

  void run(Module &M, PassContext &Ctx) const override {
    SoftBoundStats S = applySoftBound(M, Cfg);
    // The deprecated ElideSafePointerChecks flag counts through the
    // SafeElision sub-pass; surface it in the owning registry too.
    Ctx.stats().CheckOpt.SafeChecksElided += S.ChecksElidedStatically;
    S.ChecksElidedStatically = 0;
    Ctx.stats().SB += S;
    Ctx.stats().Instrumented = true;
    Ctx.stats().Mode = Cfg.Mode;
  }

  const SoftBoundConfig Cfg;
};

/// "reoptimize": the standalone post-instrumentation cleanup, for plans
/// that stage it explicitly (softbound(no-reopt),reoptimize).
class ReoptimizePass : public ModulePass {
public:
  std::string_view name() const override { return "reoptimize"; }
  void run(Module &M, PassContext &Ctx) const override {
    Ctx.stats().SB.ChecksEliminated += reoptimizeInstrumented(M);
  }
};

/// "checkopt": the opt/checks/ subsystem with per-sub-pass knobs.
class CheckOptPass : public ModulePass {
public:
  explicit CheckOptPass(CheckOptConfig Cfg) : Cfg(Cfg) {}

  std::string_view name() const override { return "checkopt"; }

  std::string spec() const override {
    std::string S(name());
    if (!Cfg.Enable)
      return S + "(off)";
    const CheckOptConfig Default;
    if (Cfg.EliminateDominated == Default.EliminateDominated &&
        Cfg.RangeSubsumption == Default.RangeSubsumption &&
        Cfg.HoistLoopChecks == Default.HoistLoopChecks &&
        Cfg.RuntimeLimitHulls == Default.RuntimeLimitHulls &&
        Cfg.InterProc == Default.InterProc &&
        Cfg.Partition == Default.Partition &&
        Cfg.ElideSafeChecks == Default.ElideSafeChecks)
      return S;
    std::vector<std::string> Knobs;
    if (Cfg.EliminateDominated)
      Knobs.push_back("redundant");
    if (Cfg.RangeSubsumption)
      Knobs.push_back("range");
    if (Cfg.HoistLoopChecks)
      Knobs.push_back("hoist");
    if (Cfg.HoistLoopChecks && Cfg.RuntimeLimitHulls)
      Knobs.push_back("runtime-limit");
    if (Cfg.InterProc)
      Knobs.push_back("interproc");
    if (Cfg.Partition)
      Knobs.push_back("partition");
    if (Cfg.ElideSafeChecks)
      Knobs.push_back("safe");
    if (Knobs.empty())
      return S + "(none)";
    S += '(';
    for (size_t I = 0; I < Knobs.size(); ++I)
      S += (I ? "," : "") + Knobs[I];
    return S + ')';
  }

  void run(Module &M, PassContext &Ctx) const override {
    Ctx.stats().CheckOpt += optimizeChecks(M, Cfg);
  }

  const CheckOptConfig Cfg;
};

/// "safe-elision": just the CCured-SAFE sub-pass (§6.5 ablation surface).
class SafeElisionPass : public ModulePass {
public:
  std::string_view name() const override { return "safe-elision"; }
  void run(Module &M, PassContext &Ctx) const override {
    CheckOptConfig Cfg;
    Cfg.EliminateDominated = false;
    Cfg.RangeSubsumption = false;
    Cfg.HoistLoopChecks = false;
    Cfg.RuntimeLimitHulls = false;
    Cfg.InterProc = false;
    Cfg.Partition = false;
    Cfg.ElideSafeChecks = true;
    Ctx.stats().CheckOpt += optimizeChecks(M, Cfg);
  }
};

//===----------------------------------------------------------------------===//
// Knob parsing
//===----------------------------------------------------------------------===//

std::string joinList(const std::vector<std::string> &L) {
  std::string S;
  for (size_t I = 0; I < L.size(); ++I)
    S += (I ? ", " : "") + L[I];
  return S;
}

const std::vector<std::string> SoftBoundKnobs = {
    "store-only",      "metadata-only",    "no-shrink", "no-memcpy-infer",
    "no-funcptr-check", "no-reopt",        "elide-safe"};

bool parseSoftBoundKnobs(const std::vector<std::string> &Knobs,
                         SoftBoundConfig &Cfg, std::string &Err) {
  for (const auto &K : Knobs) {
    if (K == "store-only")
      Cfg.Mode = CheckMode::StoreOnly;
    else if (K == "metadata-only")
      Cfg.Mode = CheckMode::None;
    else if (K == "no-shrink")
      Cfg.ShrinkBounds = false;
    else if (K == "no-memcpy-infer")
      Cfg.InferMemcpyPointerFree = false;
    else if (K == "no-funcptr-check")
      Cfg.CheckFunctionPointers = false;
    else if (K == "no-reopt")
      Cfg.ReoptimizeAfter = false;
    else if (K == "elide-safe")
      Cfg.ElideSafePointerChecks = true;
    else {
      Err = "softbound: unknown knob '" + K +
            "' (knobs: " + joinList(SoftBoundKnobs) + ")";
      return false;
    }
  }
  return true;
}

const std::vector<std::string> CheckOptKnobs = {
    "redundant", "range",     "hoist", "runtime-limit",
    "interproc", "partition", "safe",  "none",
    "off"};

/// An empty knob list means the default configuration; a non-empty list
/// enables exactly the named sub-passes ("none" enables nothing, "off"
/// disables the whole subsystem). "runtime-limit" is a sub-knob of
/// "hoist" (and implies it): symbolic-limit hull hoisting behind run-time
/// trip/wrap guards. Note the A/B convention this implies: "partition" is
/// on by default but any explicit knob list that omits it runs without
/// partitioning, so spelling out the rest of the default set is the
/// no-partition baseline.
bool parseCheckOptKnobs(const std::vector<std::string> &Knobs,
                        CheckOptConfig &Cfg, std::string &Err) {
  if (Knobs.empty())
    return true;
  Cfg.EliminateDominated = false;
  Cfg.RangeSubsumption = false;
  Cfg.HoistLoopChecks = false;
  Cfg.RuntimeLimitHulls = false;
  Cfg.InterProc = false;
  Cfg.Partition = false;
  Cfg.ElideSafeChecks = false;
  for (const auto &K : Knobs) {
    if (K == "redundant")
      Cfg.EliminateDominated = true;
    else if (K == "range")
      Cfg.RangeSubsumption = true;
    else if (K == "hoist")
      Cfg.HoistLoopChecks = true;
    else if (K == "runtime-limit")
      Cfg.HoistLoopChecks = Cfg.RuntimeLimitHulls = true;
    else if (K == "interproc")
      Cfg.InterProc = true;
    else if (K == "partition")
      Cfg.Partition = true;
    else if (K == "safe")
      Cfg.ElideSafeChecks = true;
    else if (K == "none" || K == "off") {
      if (Knobs.size() != 1) {
        Err = "checkopt: knob '" + K + "' cannot be combined with others";
        return false;
      }
      Cfg.Enable = K != "off";
    } else {
      Err = "checkopt: unknown knob '" + K +
            "' (knobs: " + joinList(CheckOptKnobs) + ")";
      return false;
    }
  }
  return true;
}

template <typename PassT>
PassRegistry::Factory knoblessFactory(const char *Name) {
  return [Name](const std::vector<std::string> &Knobs,
                std::string &Err) -> std::shared_ptr<const ModulePass> {
    if (!Knobs.empty()) {
      Err = std::string(Name) + ": takes no knobs (got '" + Knobs.front() +
            "')";
      return nullptr;
    }
    return std::make_shared<PassT>();
  };
}

void registerBuiltins(PassRegistry &R) {
  R.add("optimize", "pre-instrumentation optimizer (mem2reg, fold, CSE, DCE)",
        {}, knoblessFactory<OptimizePass>("optimize"));
  R.add("softbound",
        "the SoftBound transformation: metadata propagation + spatial checks",
        SoftBoundKnobs,
        [](const std::vector<std::string> &Knobs,
           std::string &Err) -> std::shared_ptr<const ModulePass> {
          SoftBoundConfig Cfg;
          if (!parseSoftBoundKnobs(Knobs, Cfg, Err))
            return nullptr;
          return std::make_shared<SoftBoundModulePass>(Cfg);
        });
  R.add("reoptimize",
        "post-instrumentation cleanup: redundant-check elim + CSE + DCE", {},
        knoblessFactory<ReoptimizePass>("reoptimize"));
  R.add("checkopt",
        "static check optimization: dominance RCE, range subsumption, "
        "loop-hull hoisting (with runtime-limit hulls), inter-procedural "
        "bounds propagation, checked-region partitioning, optional "
        "CCured-SAFE elision",
        CheckOptKnobs,
        [](const std::vector<std::string> &Knobs,
           std::string &Err) -> std::shared_ptr<const ModulePass> {
          CheckOptConfig Cfg;
          if (!parseCheckOptKnobs(Knobs, Cfg, Err))
            return nullptr;
          return std::make_shared<CheckOptPass>(Cfg);
        });
  R.add("safe-elision",
        "CCured-SAFE static check elision alone (§6.5 comparison)", {},
        knoblessFactory<SafeElisionPass>("safe-elision"));
}

//===----------------------------------------------------------------------===//
// Spec tokenization
//===----------------------------------------------------------------------===//

std::string trim(const std::string &S) {
  size_t B = S.find_first_not_of(" \t\n");
  if (B == std::string::npos)
    return "";
  size_t E = S.find_last_not_of(" \t\n");
  return S.substr(B, E - B + 1);
}

/// Splits \p Spec at commas outside parentheses.
bool splitTopLevel(const std::string &Spec, std::vector<std::string> &Out,
                   std::string &Err) {
  std::string Cur;
  int Depth = 0;
  for (char C : Spec) {
    if (C == '(') {
      if (++Depth > 1) {
        Err = "pipeline spec: nested '(' in '" + Spec + "'";
        return false;
      }
    } else if (C == ')') {
      if (--Depth < 0) {
        Err = "pipeline spec: unmatched ')' in '" + Spec + "'";
        return false;
      }
    }
    if (C == ',' && Depth == 0) {
      Out.push_back(Cur);
      Cur.clear();
    } else {
      Cur += C;
    }
  }
  if (Depth != 0) {
    Err = "pipeline spec: unmatched '(' in '" + Spec + "'";
    return false;
  }
  Out.push_back(Cur);
  return true;
}

/// Parses one "name" or "name(knob,knob)" element.
bool parseElement(const std::string &Elem, std::string &Name,
                  std::vector<std::string> &Knobs, std::string &Err) {
  std::string E = trim(Elem);
  if (E.empty()) {
    Err = "pipeline spec: empty pass name";
    return false;
  }
  size_t Open = E.find('(');
  if (Open == std::string::npos) {
    Name = E;
    return true;
  }
  if (E.back() != ')') {
    Err = "pipeline spec: trailing text after ')' in '" + E + "'";
    return false;
  }
  Name = trim(E.substr(0, Open));
  if (Name.empty()) {
    Err = "pipeline spec: empty pass name before '(' in '" + E + "'";
    return false;
  }
  std::string Inner = E.substr(Open + 1, E.size() - Open - 2);
  if (trim(Inner).empty())
    return true; // "checkopt()" == "checkopt".
  std::string Cur;
  for (char C : Inner) {
    if (C == ',') {
      Knobs.push_back(trim(Cur));
      Cur.clear();
    } else {
      Cur += C;
    }
  }
  Knobs.push_back(trim(Cur));
  for (const auto &K : Knobs)
    if (K.empty()) {
      Err = "pipeline spec: empty knob in '" + E + "'";
      return false;
    }
  return true;
}

} // namespace

//===----------------------------------------------------------------------===//
// PassRegistry
//===----------------------------------------------------------------------===//

PassRegistry &PassRegistry::global() {
  static PassRegistry R = [] {
    PassRegistry Init;
    registerBuiltins(Init);
    return Init;
  }();
  return R;
}

bool PassRegistry::add(const std::string &Name, std::string Description,
                       std::vector<std::string> Knobs, Factory Make) {
  return Entries
      .emplace(Name, Entry{std::move(Description), std::move(Knobs),
                           std::move(Make)})
      .second;
}

const PassRegistry::Entry *PassRegistry::lookup(const std::string &Name) const {
  auto It = Entries.find(Name);
  return It == Entries.end() ? nullptr : &It->second;
}

std::shared_ptr<const ModulePass>
PassRegistry::create(const std::string &Name,
                     const std::vector<std::string> &Knobs,
                     std::string &Err) const {
  const Entry *E = lookup(Name);
  if (!E) {
    Err = "unknown pass '" + Name + "' (known: " + joinList(names()) + ")";
    return nullptr;
  }
  return E->Make(Knobs, Err);
}

std::vector<std::string> PassRegistry::names() const {
  std::vector<std::string> N;
  for (const auto &[Name, E] : Entries)
    N.push_back(Name);
  return N; // std::map iteration is already sorted.
}

//===----------------------------------------------------------------------===//
// PipelinePlan
//===----------------------------------------------------------------------===//

PipelinePlan &PipelinePlan::frontend(std::string Src) {
  Source = std::move(Src);
  HaveSource = true;
  return *this;
}

PipelinePlan &PipelinePlan::optimize() {
  return pass(std::make_shared<OptimizePass>());
}

PipelinePlan &PipelinePlan::softbound(SoftBoundConfig Cfg) {
  return pass(std::make_shared<SoftBoundModulePass>(Cfg));
}

PipelinePlan &PipelinePlan::reoptimize() {
  return pass(std::make_shared<ReoptimizePass>());
}

PipelinePlan &PipelinePlan::checkOpt(CheckOptConfig Cfg) {
  return pass(std::make_shared<CheckOptPass>(Cfg));
}

PipelinePlan &PipelinePlan::safeElision() {
  return pass(std::make_shared<SafeElisionPass>());
}

PipelinePlan &PipelinePlan::pass(std::shared_ptr<const ModulePass> P) {
  Passes.push_back(std::move(P));
  return *this;
}

PipelinePlan &PipelinePlan::pass(const std::string &Name) {
  std::string Err;
  if (auto P = PassRegistry::global().create(Name, {}, Err))
    Passes.push_back(std::move(P));
  else
    PlanErrors.push_back("pipeline plan: " + Err);
  return *this;
}

bool PipelinePlan::appendSpec(const std::string &Spec, std::string *ErrOut) {
  std::string Err;
  std::vector<std::string> Elems;
  std::vector<std::shared_ptr<const ModulePass>> Parsed;
  if (splitTopLevel(Spec, Elems, Err)) {
    for (const auto &Elem : Elems) {
      std::string Name;
      std::vector<std::string> Knobs;
      if (!parseElement(Elem, Name, Knobs, Err))
        break;
      auto P = PassRegistry::global().create(Name, Knobs, Err);
      if (!P) {
        Err = "pipeline spec: " + Err;
        break;
      }
      Parsed.push_back(std::move(P));
    }
  }
  if (!Err.empty()) {
    if (ErrOut)
      *ErrOut = Err;
    return false;
  }
  for (auto &P : Parsed)
    Passes.push_back(std::move(P));
  return true;
}

std::string PipelinePlan::spec() const {
  std::string S;
  for (size_t I = 0; I < Passes.size(); ++I)
    S += (I ? "," : "") + Passes[I]->spec();
  return S;
}

PipelinePlan &PipelinePlan::telemetry(Telemetry *T, std::string Prefix) {
  Telem = T;
  TracePrefix = std::move(Prefix);
  return *this;
}

PipelineResult PipelinePlan::build() const {
  PipelineResult Out;
  Out.Errors = PlanErrors;
  if (!HaveSource)
    Out.Errors.push_back("pipeline plan: no frontend source set");
  if (!Out.Errors.empty())
    return Out;

  CompileResult CR = compileC(Source);
  if (!CR.ok()) {
    Out.Errors = CR.Errors;
    return Out;
  }
  Out.M = std::move(CR.M);

  auto Errs = verifyModule(*Out.M);
  if (!Errs.empty()) {
    Out.Errors = std::move(Errs);
    Out.M.reset();
    return Out;
  }

  PassContext Ctx;
  auto BuildStart = std::chrono::steady_clock::now();
  for (const auto &P : Passes) {
    auto T0 = std::chrono::steady_clock::now();
    P->run(*Out.M, Ctx);
    auto T1 = std::chrono::steady_clock::now();
    double Ms = std::chrono::duration<double, std::milli>(T1 - T0).count();
    Ctx.stats().Passes.push_back({P->spec(), Ms});
    if (Telem) {
      // Timings mirror into the shared registry; pipeline-phase trace
      // events carry wall-clock offsets from the start of this build
      // (never baseline-gated — see docs/observability.md).
      Telem->timerMs(TracePrefix + "pass/" + P->spec()) += Ms;
      Telem->addCompleteEvent(
          TracePrefix + P->spec(), "pipeline", Telemetry::TidPipeline,
          static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::microseconds>(
                  T0 - BuildStart)
                  .count()),
          static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::microseconds>(T1 - T0)
                  .count()));
    }
    for (auto &E : verifyModule(*Out.M))
      Ctx.error("after pass '" + std::string(P->name()) + "': " + E);
    if (Ctx.hadErrors())
      break;
  }

  if (Ctx.hadErrors()) {
    Out.Errors = Ctx.errors();
    Out.M.reset();
    return Out;
  }

  // Stable profiling site IDs for every check/metadata instruction the
  // final module carries; after the pass loop so hoisting-created checks
  // are named too (docs/observability.md).
  Out.M->assignCheckSites();

  Out.Pipeline = Ctx.stats();
  Out.Instrumented = Out.Pipeline.Instrumented;
  Out.Mode = Out.Pipeline.Mode;
  // Legacy view: SB counters with the check-opt registry mirrored into the
  // deprecated alias fields.
  Out.Stats = Out.Pipeline.SB;
  Out.Stats.CheckOpt = Out.Pipeline.CheckOpt;
  Out.Stats.ChecksElidedStatically = Out.Pipeline.CheckOpt.SafeChecksElided;
  return Out;
}
