//===- driver/Pipeline.cpp - end-to-end build & run helpers -----------------===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"

#include "ir/Verifier.h"
#include "opt/Passes.h"
#include "runtime/HashTableMetadata.h"
#include "runtime/ShadowSpaceMetadata.h"

using namespace softbound;

BuildResult softbound::buildProgram(const std::string &Source,
                                    const BuildOptions &Opts) {
  BuildResult Out;
  CompileResult CR = compileC(Source);
  if (!CR.ok()) {
    Out.Errors = CR.Errors;
    return Out;
  }
  Out.M = std::move(CR.M);

  auto Errs = verifyModule(*Out.M);
  if (!Errs.empty()) {
    Out.Errors = std::move(Errs);
    Out.M.reset();
    return Out;
  }

  if (Opts.Optimize)
    optimizeModule(*Out.M);

  if (Opts.Instrument) {
    Out.Stats = applySoftBound(*Out.M, Opts.SB);
    Out.Instrumented = true;
    Out.Mode = Opts.SB.Mode;
    // Static check optimization (range analysis, dominance RCE, loop
    // hoisting) runs on the instrumented module, before execution.
    Out.Stats.CheckOpt = optimizeChecks(*Out.M, Opts.CheckOpt);
  }

  Errs = verifyModule(*Out.M);
  if (!Errs.empty()) {
    Out.Errors = std::move(Errs);
    Out.M.reset();
  }
  return Out;
}

RunResult softbound::runProgram(const BuildResult &Prog,
                                const RunOptions &Opts) {
  std::unique_ptr<MetadataFacility> Meta;
  VMConfig Cfg;
  Cfg.StepLimit = Opts.StepLimit;
  Cfg.Checker = Opts.Checker;
  Cfg.RedzonePad = Opts.RedzonePad;
  Cfg.GlobalPad = Opts.GlobalPad;
  Cfg.CheckCost = Opts.CheckCost;

  if (Prog.Instrumented) {
    if (Opts.Facility == FacilityKind::Shadow)
      Meta = std::make_unique<ShadowSpaceMetadata>();
    else
      Meta = std::make_unique<HashTableMetadata>();
    Cfg.Meta = Meta.get();
    Cfg.Instrumented = true;
    switch (Prog.Mode) {
    case CheckMode::Full:
      Cfg.Wrappers = WrapperMode::Full;
      break;
    case CheckMode::StoreOnly:
      Cfg.Wrappers = WrapperMode::StoreOnly;
      break;
    case CheckMode::None:
      Cfg.Wrappers = WrapperMode::None;
      break;
    }
  } else {
    Cfg.Wrappers = WrapperMode::None;
  }

  VM Machine(*Prog.M, Cfg);
  RunResult R = Machine.run(Opts.Entry, Opts.Args);
  if (Meta && Opts.MetaStatsOut)
    *Opts.MetaStatsOut = Meta->stats();
  return R;
}

RunResult softbound::compileAndRun(const std::string &Source,
                                   const BuildOptions &BOpts,
                                   const RunOptions &ROpts) {
  BuildResult Prog = buildProgram(Source, BOpts);
  if (!Prog.ok()) {
    RunResult R;
    R.Trap = TrapKind::Segfault;
    R.Message = "build failed: " + Prog.errorText();
    return R;
  }
  return runProgram(Prog, ROpts);
}
