//===- driver/Pipeline.cpp - end-to-end build & run helpers -----------------===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"

#include "runtime/HashTableMetadata.h"
#include "runtime/ShadowSpaceMetadata.h"

using namespace softbound;

PipelinePlan softbound::planFromBuildOptions(const std::string &Source,
                                             const BuildOptions &Opts) {
  PipelinePlan Plan;
  Plan.frontend(Source);
  if (Opts.Optimize)
    Plan.optimize();
  if (Opts.Instrument)
    Plan.softbound(Opts.SB).checkOpt(Opts.CheckOpt);
  return Plan;
}

BuildResult softbound::buildProgram(const std::string &Source,
                                    const BuildOptions &Opts) {
  return planFromBuildOptions(Source, Opts).build();
}

RunResult softbound::runProgram(const BuildResult &Prog,
                                const RunOptions &Opts) {
  // Whole-program contract (checkopt interproc + partition): an
  // internally-called function's checks were elided — or its metadata
  // propagation stripped — on the strength of its analyzed call sites, so
  // entering it directly with arbitrary arguments would silently bypass
  // those proofs. The module records the unsafe set; refuse such entries.
  if (Prog.M && Prog.M->hasInterProcContract()) {
    Function *EntryF = Prog.M->resolveEntry(Opts.Entry);
    if (EntryF && !Prog.M->isSafeEntry(EntryF)) {
      RunResult R;
      R.Trap = TrapKind::Segfault;
      R.Message = "entry function '" + Opts.Entry +
                  "' was internally called when checkopt(interproc) or "
                  "checkopt(partition) elided checks or metadata; enter at "
                  "'main' or rebuild without those sub-passes";
      return R;
    }
  }

  std::unique_ptr<MetadataFacility> Meta;
  VMConfig Cfg;
  Cfg.StepLimit = Opts.StepLimit;
  Cfg.Checker = Opts.Checker;
  Cfg.RedzonePad = Opts.RedzonePad;
  Cfg.GlobalPad = Opts.GlobalPad;
  Cfg.CheckCost = Opts.CheckCost;
  Cfg.Telem = Opts.Telem;
  Cfg.Profile = Opts.ProfileOut;
  Cfg.TraceTag = Opts.TraceTag;

  if (Prog.Instrumented) {
    if (Opts.Facility == FacilityKind::Shadow)
      Meta = std::make_unique<ShadowSpaceMetadata>();
    else
      Meta = std::make_unique<HashTableMetadata>();
    Cfg.Meta = Meta.get();
    Cfg.Instrumented = true;
    switch (Prog.Mode) {
    case CheckMode::Full:
      Cfg.Wrappers = WrapperMode::Full;
      break;
    case CheckMode::StoreOnly:
      Cfg.Wrappers = WrapperMode::StoreOnly;
      break;
    case CheckMode::None:
      Cfg.Wrappers = WrapperMode::None;
      break;
    }
  } else {
    Cfg.Wrappers = WrapperMode::None;
  }

  if (Meta && Opts.Telem)
    Meta->attachTelemetry(Opts.Telem,
                          std::string("facility/") + Meta->name());

  VM Machine(*Prog.M, Cfg);
  RunResult R = Machine.run(Opts.Entry, Opts.Args);
  if (Meta && Opts.MetaStatsOut)
    *Opts.MetaStatsOut = Meta->stats();
  if (Meta && Opts.Telem)
    Meta->flushTelemetry();
  return R;
}

RunResult softbound::runPipeline(const PipelinePlan &Plan,
                                 const RunOptions &Opts) {
  BuildResult Prog = Plan.build();
  if (!Prog.ok()) {
    RunResult R;
    R.Trap = TrapKind::Segfault;
    R.Message = "build failed: " + Prog.errorText();
    return R;
  }
  return runProgram(Prog, Opts);
}

RunResult softbound::compileAndRun(const std::string &Source,
                                   const BuildOptions &BOpts,
                                   const RunOptions &ROpts) {
  return runPipeline(planFromBuildOptions(Source, BOpts), ROpts);
}
