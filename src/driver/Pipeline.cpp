//===- driver/Pipeline.cpp - end-to-end build & run helpers -----------------===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"

#include "runtime/HashTableMetadata.h"
#include "runtime/ShadowSpaceMetadata.h"

#include <algorithm>

using namespace softbound;

PipelinePlan softbound::planFromBuildOptions(const std::string &Source,
                                             const BuildOptions &Opts) {
  PipelinePlan Plan;
  Plan.frontend(Source);
  if (Opts.Optimize)
    Plan.optimize();
  if (Opts.Instrument)
    Plan.softbound(Opts.SB).checkOpt(Opts.CheckOpt);
  return Plan;
}

BuildResult softbound::buildProgram(const std::string &Source,
                                    const BuildOptions &Opts) {
  return planFromBuildOptions(Source, Opts).build();
}

namespace {

/// A SessionResult whose Combined run refused to start.
SessionResult refuse(std::string Message) {
  SessionResult S;
  S.Combined.Trap = TrapKind::Segfault;
  S.Combined.Message = std::move(Message);
  return S;
}

} // namespace

SessionResult softbound::runSession(const BuildResult &Prog,
                                    const RunRequest &Req) {
  // Whole-program contract (checkopt interproc + partition): an
  // internally-called function's checks were elided — or its metadata
  // propagation stripped — on the strength of its analyzed call sites, so
  // entering it directly with arbitrary arguments would silently bypass
  // those proofs. The module records the unsafe set; refuse such entries.
  if (Prog.M && Prog.M->hasInterProcContract()) {
    Function *EntryF = Prog.M->resolveEntry(Req.Entry);
    if (EntryF && !Prog.M->isSafeEntry(EntryF))
      return refuse("entry function '" + Req.Entry +
                    "' was internally called when checkopt(interproc) or "
                    "checkopt(partition) elided checks or metadata; enter at "
                    "'main' or rebuild without those sub-passes");
  }

  unsigned Lanes = Req.Lanes ? Req.Lanes : 1;
  if (Lanes > 1 && Req.Checker)
    return refuse("multi-lane sessions cannot use a baseline checker: "
                  "checker object tables are single-threaded; run with "
                  "Lanes = 1 or drop the Checker");

  std::unique_ptr<MetadataFacility> Meta;
  VMConfig Cfg;
  Cfg.StepLimit = Req.StepLimit;
  Cfg.Checker = Req.Checker;
  Cfg.RedzonePad = Req.RedzonePad;
  Cfg.GlobalPad = Req.GlobalPad;
  Cfg.CheckCost = Req.CheckCost;

  if (Prog.Instrumented) {
    // Lanes == 1 with one shard (and no LockFreeReads) keeps the
    // unlocked SingleThread facility — the configuration every gated
    // baseline was recorded under. Otherwise the facility stripes its
    // address space: LockFreeReads selects the seqlock read path,
    // anything else the shared-mutex Sharded model.
    FacilityOptions FO;
    FO.Shards = Req.FacilityShards ? Req.FacilityShards : 1;
    FO.Model = Req.LockFreeReads ? ConcurrencyModel::LockFreeRead
               : (Lanes > 1 || FO.Shards > 1) ? ConcurrencyModel::Sharded
                                              : ConcurrencyModel::SingleThread;
    if (Req.Facility == FacilityKind::Shadow)
      Meta = std::make_unique<ShadowSpaceMetadata>(FO);
    else
      Meta = std::make_unique<HashTableMetadata>(/*InitialLog2Size=*/16, FO);
    Cfg.Meta = Meta.get();
    Cfg.Instrumented = true;
    switch (Prog.Mode) {
    case CheckMode::Full:
      Cfg.Wrappers = WrapperMode::Full;
      break;
    case CheckMode::StoreOnly:
      Cfg.Wrappers = WrapperMode::StoreOnly;
      break;
    case CheckMode::None:
      Cfg.Wrappers = WrapperMode::None;
      break;
    }
  } else {
    Cfg.Wrappers = WrapperMode::None;
  }

  // The facility records probe histograms through thread-safe paths and
  // publishes its aggregates only at flushTelemetry (post-join), so the
  // caller's sink is safe to attach even for multi-lane sessions.
  if (Meta && Req.Telem)
    Meta->attachTelemetry(Req.Telem, std::string("facility/") + Meta->name());

  SessionResult S;
  if (Lanes == 1) {
    // Exactly the classic single-threaded sequence: the VM reads the
    // caller's sinks straight from its config and runs inline.
    Cfg.Telem = Req.Telem;
    Cfg.Profile = Req.ProfileOut;
    Cfg.TraceTag = Req.TraceTag;
    VM Machine(*Prog.M, Cfg);
    S.Combined = Machine.run(Req.Entry, Req.Args);
    S.PerLane.push_back(S.Combined);
  } else {
    // Per-lane private sinks, merged in lane-index order after the
    // join, keep the combined registry deterministic even though lane
    // scheduling is not.
    std::vector<Telemetry> LaneTelems(Req.Telem ? Lanes : 0);
    std::vector<SiteProfile> LaneProfiles(Req.ProfileOut ? Lanes : 0);
    std::vector<LaneSpec> Specs(Lanes);
    for (unsigned I = 0; I < Lanes; ++I) {
      Specs[I].Entry = Req.Entry;
      Specs[I].Args = Req.Args;
      Specs[I].Profile = Req.ProfileOut ? &LaneProfiles[I] : nullptr;
      Specs[I].Telem = Req.Telem ? &LaneTelems[I] : nullptr;
      Specs[I].TraceTag = Req.TraceTag + "lane" + std::to_string(I) + ":";
    }

    VM Machine(*Prog.M, Cfg);
    S.PerLane = Machine.runLanes(Specs);

    for (const RunResult &L : S.PerLane) {
      S.Combined.Counters.accumulate(L.Counters);
      S.Combined.Output += L.Output;
      if (S.Combined.Trap == TrapKind::None && L.Trap != TrapKind::None) {
        S.Combined.Trap = L.Trap;
        S.Combined.Message = L.Message;
        S.Combined.HijackTarget = L.HijackTarget;
        S.Combined.ExitCode = L.ExitCode;
      }
    }
    if (S.Combined.Trap == TrapKind::None && !S.PerLane.empty())
      S.Combined.ExitCode = S.PerLane.front().ExitCode;
    // Per-request streams merge elementwise in lane order: counters add,
    // the first lane (in lane order) with a contained trap at an index
    // names the combined trap. Lanes run the same driver, so streams
    // normally agree in length; a lane that died early truncates the
    // combined stream to what every lane completed.
    size_t MinReq = S.PerLane.empty() ? 0 : S.PerLane.front().Requests.size();
    for (const RunResult &L : S.PerLane)
      MinReq = std::min(MinReq, L.Requests.size());
    S.Combined.Requests.resize(MinReq);
    for (size_t RI = 0; RI < MinReq; ++RI)
      for (const RunResult &L : S.PerLane) {
        S.Combined.Requests[RI].Delta.accumulate(L.Requests[RI].Delta);
        if (S.Combined.Requests[RI].Trap == TrapKind::None)
          S.Combined.Requests[RI].Trap = L.Requests[RI].Trap;
      }
    if (Meta)
      S.Combined.MetadataMemory = Meta->memoryBytes();
    S.Combined.HeapHighWater = Machine.memory().heapHighWater();

    for (unsigned I = 0; I < Lanes; ++I) {
      if (Req.Telem)
        Req.Telem->mergeFrom(LaneTelems[I]);
      if (Req.ProfileOut)
        Req.ProfileOut->mergeFrom(LaneProfiles[I]);
    }
  }

  if (Meta) {
    S.Meta = Meta->stats();
    if (Req.MetaStatsOut)
      *Req.MetaStatsOut = S.Meta;
    if (Req.Telem)
      Meta->flushTelemetry();
  }
  return S;
}

SessionResult softbound::runSession(const PipelinePlan &Plan,
                                    const RunRequest &Req) {
  BuildResult Prog = Plan.build();
  if (!Prog.ok())
    return refuse("build failed: " + Prog.errorText());
  return runSession(Prog, Req);
}

RunResult softbound::runProgram(const BuildResult &Prog,
                                const RunOptions &Opts) {
  return runSession(Prog, Opts).Combined;
}

RunResult softbound::runPipeline(const PipelinePlan &Plan,
                                 const RunOptions &Opts) {
  return runSession(Plan, Opts).Combined;
}

RunResult softbound::compileAndRun(const std::string &Source,
                                   const BuildOptions &BOpts,
                                   const RunOptions &ROpts) {
  return runSession(planFromBuildOptions(Source, BOpts), ROpts).Combined;
}
