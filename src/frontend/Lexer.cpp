//===- frontend/Lexer.cpp - mini-C lexer ------------------------------------===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "frontend/Lexer.h"

#include <cctype>
#include <map>

using namespace softbound;

namespace {

const std::map<std::string, Tok> Keywords = {
    {"void", Tok::KwVoid},       {"char", Tok::KwChar},
    {"short", Tok::KwShort},     {"int", Tok::KwInt},
    {"long", Tok::KwLong},       {"unsigned", Tok::KwUnsigned},
    {"struct", Tok::KwStruct},   {"union", Tok::KwUnion},
    {"if", Tok::KwIf},           {"else", Tok::KwElse},
    {"while", Tok::KwWhile},     {"for", Tok::KwFor},
    {"do", Tok::KwDo},           {"return", Tok::KwReturn},
    {"break", Tok::KwBreak},     {"continue", Tok::KwContinue},
    {"sizeof", Tok::KwSizeof},   {"NULL", Tok::KwNull},
};

/// Decodes one (possibly escaped) character starting at Src[I]; advances I.
int decodeChar(const std::string &Src, size_t &I) {
  char C = Src[I++];
  if (C != '\\')
    return static_cast<unsigned char>(C);
  char E = I < Src.size() ? Src[I++] : 0;
  switch (E) {
  case 'n':
    return '\n';
  case 't':
    return '\t';
  case 'r':
    return '\r';
  case '0':
    return 0;
  case '\\':
    return '\\';
  case '\'':
    return '\'';
  case '"':
    return '"';
  default:
    return static_cast<unsigned char>(E);
  }
}

} // namespace

Lexer::Lexer(const std::string &Source) { lex(Source); }

void Lexer::lex(const std::string &Src) {
  size_t I = 0;
  int Line = 1;
  auto Push = [&](Tok K) {
    Token T;
    T.Kind = K;
    T.Line = Line;
    Tokens.push_back(std::move(T));
  };

  while (I < Src.size()) {
    char C = Src[I];
    if (C == '\n') {
      ++Line;
      ++I;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(C))) {
      ++I;
      continue;
    }
    // Comments.
    if (C == '/' && I + 1 < Src.size() && Src[I + 1] == '/') {
      while (I < Src.size() && Src[I] != '\n')
        ++I;
      continue;
    }
    if (C == '/' && I + 1 < Src.size() && Src[I + 1] == '*') {
      I += 2;
      while (I + 1 < Src.size() && !(Src[I] == '*' && Src[I + 1] == '/')) {
        if (Src[I] == '\n')
          ++Line;
        ++I;
      }
      I += 2;
      continue;
    }
    // Identifiers and keywords.
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      size_t Start = I;
      while (I < Src.size() &&
             (std::isalnum(static_cast<unsigned char>(Src[I])) ||
              Src[I] == '_'))
        ++I;
      std::string Word = Src.substr(Start, I - Start);
      auto It = Keywords.find(Word);
      if (It != Keywords.end()) {
        Push(It->second);
      } else {
        Token T;
        T.Kind = Tok::Ident;
        T.Text = std::move(Word);
        T.Line = Line;
        Tokens.push_back(std::move(T));
      }
      continue;
    }
    // Numbers.
    if (std::isdigit(static_cast<unsigned char>(C))) {
      int64_t Val = 0;
      if (C == '0' && I + 1 < Src.size() &&
          (Src[I + 1] == 'x' || Src[I + 1] == 'X')) {
        I += 2;
        while (I < Src.size() &&
               std::isxdigit(static_cast<unsigned char>(Src[I]))) {
          char D = Src[I++];
          Val = Val * 16 + (std::isdigit(static_cast<unsigned char>(D))
                                ? D - '0'
                                : std::tolower(D) - 'a' + 10);
        }
      } else {
        while (I < Src.size() &&
               std::isdigit(static_cast<unsigned char>(Src[I])))
          Val = Val * 10 + (Src[I++] - '0');
      }
      // Optional L/U suffixes are accepted and ignored.
      while (I < Src.size() && (Src[I] == 'L' || Src[I] == 'l' ||
                                Src[I] == 'U' || Src[I] == 'u'))
        ++I;
      Token T;
      T.Kind = Tok::IntLit;
      T.IntVal = Val;
      T.Line = Line;
      Tokens.push_back(std::move(T));
      continue;
    }
    // String literal.
    if (C == '"') {
      ++I;
      std::string S;
      while (I < Src.size() && Src[I] != '"')
        S.push_back(static_cast<char>(decodeChar(Src, I)));
      if (I >= Src.size()) {
        Error = "line " + std::to_string(Line) + ": unterminated string";
        return;
      }
      ++I;
      Token T;
      T.Kind = Tok::StrLit;
      T.Text = std::move(S);
      T.Line = Line;
      Tokens.push_back(std::move(T));
      continue;
    }
    // Char literal.
    if (C == '\'') {
      ++I;
      int V = decodeChar(Src, I);
      if (I >= Src.size() || Src[I] != '\'') {
        Error = "line " + std::to_string(Line) + ": bad char literal";
        return;
      }
      ++I;
      Token T;
      T.Kind = Tok::CharLit;
      T.IntVal = V;
      T.Line = Line;
      Tokens.push_back(std::move(T));
      continue;
    }
    // Punctuators, longest match first.
    auto Match = [&](const char *S, Tok K) {
      size_t N = std::char_traits<char>::length(S);
      if (Src.compare(I, N, S) != 0)
        return false;
      I += N;
      Push(K);
      return true;
    };
    if (Match("...", Tok::Ellipsis) || Match("<<=", Tok::ShlAssign) ||
        Match(">>=", Tok::ShrAssign) || Match("->", Tok::Arrow) ||
        Match("++", Tok::PlusPlus) || Match("--", Tok::MinusMinus) ||
        Match("<<", Tok::Shl) || Match(">>", Tok::Shr) ||
        Match("<=", Tok::Le) || Match(">=", Tok::Ge) ||
        Match("==", Tok::EqEq) || Match("!=", Tok::NotEq) ||
        Match("&&", Tok::AmpAmp) || Match("||", Tok::PipePipe) ||
        Match("+=", Tok::PlusAssign) || Match("-=", Tok::MinusAssign) ||
        Match("*=", Tok::StarAssign) || Match("/=", Tok::SlashAssign) ||
        Match("%=", Tok::PercentAssign) || Match("&=", Tok::AmpAssign) ||
        Match("|=", Tok::PipeAssign) || Match("^=", Tok::CaretAssign) ||
        Match("(", Tok::LParen) || Match(")", Tok::RParen) ||
        Match("{", Tok::LBrace) || Match("}", Tok::RBrace) ||
        Match("[", Tok::LBracket) || Match("]", Tok::RBracket) ||
        Match(";", Tok::Semi) || Match(",", Tok::Comma) ||
        Match(".", Tok::Dot) || Match("?", Tok::Question) ||
        Match(":", Tok::Colon) || Match("=", Tok::Assign) ||
        Match("+", Tok::Plus) || Match("-", Tok::Minus) ||
        Match("*", Tok::Star) || Match("/", Tok::Slash) ||
        Match("%", Tok::Percent) || Match("&", Tok::Amp) ||
        Match("|", Tok::Pipe) || Match("^", Tok::Caret) ||
        Match("~", Tok::Tilde) || Match("!", Tok::Bang) ||
        Match("<", Tok::Lt) || Match(">", Tok::Gt))
      continue;

    Error = "line " + std::to_string(Line) + ": unexpected character '" +
            std::string(1, C) + "'";
    return;
  }
  Push(Tok::End);
}
