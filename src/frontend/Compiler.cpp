//===- frontend/Compiler.cpp - mini-C to IR compiler ------------------------===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "frontend/Compiler.h"

#include "frontend/Lexer.h"
#include "ir/IRBuilder.h"
#include "support/Compiler.h"

#include <cstring>
#include <functional>
#include <map>

using namespace softbound;

namespace {

/// A parsed C value: either an lvalue (V is the address of an object of
/// type Ty) or an rvalue (V is the value itself).
struct CVal {
  Value *V = nullptr;
  Type *Ty = nullptr;
  bool LV = false;
};

/// One scope's name bindings. For variables, V is the object address
/// (alloca or global) and Ty the object type; for functions, F is set.
struct Binding {
  Value *Addr = nullptr;
  Type *Ty = nullptr;
  Function *F = nullptr;
};

/// The single-pass parser/emitter.
class Parser {
public:
  Parser(const std::vector<Token> &Toks, Module &M)
      : Toks(Toks), M(M), Ctx(M.ctx()), B(M) {}

  bool run();
  std::vector<std::string> takeErrors() { return std::move(Errors); }

private:
  //===--------------------------------------------------------------------===//
  // Token plumbing
  //===--------------------------------------------------------------------===//

  const Token &cur() const { return Toks[Pos]; }
  const Token &peek(unsigned N = 1) const {
    return Toks[std::min(Pos + N, Toks.size() - 1)];
  }
  bool is(Tok K) const { return cur().Kind == K; }
  bool accept(Tok K) {
    if (!is(K))
      return false;
    ++Pos;
    return true;
  }
  void next() { ++Pos; }
  void expect(Tok K, const char *What) {
    if (!accept(K))
      error(std::string("expected ") + What);
  }
  [[noreturn]] void fatal(const std::string &Msg);
  void error(const std::string &Msg) { fatal(Msg); }

  //===--------------------------------------------------------------------===//
  // Types
  //===--------------------------------------------------------------------===//

  bool startsType() const;
  bool startsTypeAt(unsigned N) const {
    switch (peek(N).Kind) {
    case Tok::KwVoid:
    case Tok::KwChar:
    case Tok::KwShort:
    case Tok::KwInt:
    case Tok::KwLong:
    case Tok::KwUnsigned:
    case Tok::KwStruct:
    case Tok::KwUnion:
      return true;
    default:
      return false;
    }
  }
  Type *parseTypeSpec();
  Type *parseDeclarator(Type *Base, std::string &Name,
                        FunctionType **FnTy = nullptr,
                        std::vector<std::string> *ParamNames = nullptr);
  Type *parseDirectDeclarator(Type *Base, std::string &Name,
                              FunctionType **FnTy,
                              std::vector<std::string> *ParamNames);
  Type *parseSuffixes(Type *Base, FunctionType **FnTy,
                      std::vector<std::string> *ParamNames);
  Type *parseAbstractType();
  void skipToMatchingParen();

  //===--------------------------------------------------------------------===//
  // Declarations
  //===--------------------------------------------------------------------===//

  void parseTopLevel();
  void parseStructDef(bool IsUnion);
  void parseFunctionRest(Type *RetTy, const std::string &Name,
                         FunctionType *FnTy,
                         const std::vector<std::string> &ParamNames);
  void parseGlobalRest(Type *Base, Type *FirstTy, const std::string &Name);
  GlobalInitializer parseGlobalInit(Type *Ty);
  void encodeConstInto(Type *Ty, GlobalInitializer &Init, uint64_t Offset);
  int64_t parseConstIntExpr();

  //===--------------------------------------------------------------------===//
  // Statements
  //===--------------------------------------------------------------------===//

  void parseBlock();
  void parseStatement();
  void parseLocalDecl();
  void ensureBlock();

  //===--------------------------------------------------------------------===//
  // Expressions
  //===--------------------------------------------------------------------===//

  CVal parseExpr() { return parseAssign(); }
  CVal parseAssign();
  CVal parseCondExpr();
  CVal parseLogOr();
  CVal parseLogAnd();
  CVal parseBinary(int MinPrec);
  CVal parseUnary();
  CVal parsePostfix();
  CVal parsePrimary();
  CVal parseCall(CVal Callee);

  //===--------------------------------------------------------------------===//
  // Value helpers
  //===--------------------------------------------------------------------===//

  Value *rvalue(CVal C);
  Value *convert(Value *V, Type *To);
  Value *toBool(Value *V);
  Value *emitBinop(Tok Op, Value *L, Value *R);
  Type *promote2(Value *&L, Value *&R);
  CVal makeRV(Value *V) { return CVal{V, V->type(), false}; }

  AllocaInst *createLocal(Type *Ty, const std::string &Name);

  Binding *lookup(const std::string &Name);
  void bind(const std::string &Name, Binding Bd) { Scopes.back()[Name] = Bd; }

  //===--------------------------------------------------------------------===//
  // State
  //===--------------------------------------------------------------------===//

  const std::vector<Token> &Toks;
  size_t Pos = 0;
  Module &M;
  TypeContext &Ctx;
  IRBuilder B;
  std::vector<std::string> Errors;

  Function *CurFn = nullptr;
  BasicBlock *EntryBlock = nullptr; ///< Allocas live here.
  std::vector<std::map<std::string, Binding>> Scopes;
  std::vector<std::pair<BasicBlock *, BasicBlock *>> LoopStack; // break/cont
  unsigned TmpId = 0;

  struct ParseAbort {};
};

[[noreturn]] void Parser::fatal(const std::string &Msg) {
  Errors.push_back("line " + std::to_string(cur().Line) + ": " + Msg);
  throw ParseAbort();
}

//===----------------------------------------------------------------------===//
// Types
//===----------------------------------------------------------------------===//

bool Parser::startsType() const {
  switch (cur().Kind) {
  case Tok::KwVoid:
  case Tok::KwChar:
  case Tok::KwShort:
  case Tok::KwInt:
  case Tok::KwLong:
  case Tok::KwUnsigned:
  case Tok::KwStruct:
  case Tok::KwUnion:
    return true;
  default:
    return false;
  }
}

Type *Parser::parseTypeSpec() {
  accept(Tok::KwUnsigned); // Parsed, treated as signed (documented).
  switch (cur().Kind) {
  case Tok::KwVoid:
    next();
    return Ctx.voidTy();
  case Tok::KwChar:
    next();
    return Ctx.i8();
  case Tok::KwShort:
    next();
    return Ctx.i16();
  case Tok::KwInt:
    next();
    return Ctx.i32();
  case Tok::KwLong:
    next();
    accept(Tok::KwLong); // long long
    accept(Tok::KwInt);  // long int
    return Ctx.i64();
  case Tok::KwStruct:
  case Tok::KwUnion: {
    bool IsUnion = cur().Kind == Tok::KwUnion;
    next();
    if (!is(Tok::Ident))
      error("expected struct tag");
    std::string Tag = (IsUnion ? "union." : "struct.") + cur().Text;
    next();
    StructType *ST = Ctx.getStruct(Tag);
    if (!ST)
      ST = Ctx.createStruct(Tag);
    return ST;
  }
  default:
    error("expected a type");
  }
  return nullptr;
}

void Parser::skipToMatchingParen() {
  // Called with Pos just past an opening '('.
  int Depth = 1;
  while (Depth > 0) {
    if (is(Tok::End))
      error("unbalanced parentheses in declarator");
    if (is(Tok::LParen))
      ++Depth;
    if (is(Tok::RParen))
      --Depth;
    next();
  }
}

Type *Parser::parseDeclarator(Type *Base, std::string &Name,
                              FunctionType **FnTy,
                              std::vector<std::string> *ParamNames) {
  while (accept(Tok::Star))
    Base = Ctx.ptrTo(Base);
  return parseDirectDeclarator(Base, Name, FnTy, ParamNames);
}

Type *Parser::parseDirectDeclarator(Type *Base, std::string &Name,
                                    FunctionType **FnTy,
                                    std::vector<std::string> *ParamNames) {
  // Grouped declarator: "( * ... )" — the function-pointer shape.
  if (is(Tok::LParen) && peek().Kind == Tok::Star) {
    next(); // (
    size_t InnerStart = Pos;
    skipToMatchingParen();
    Type *Suffixed = parseSuffixes(Base, nullptr, nullptr);
    size_t After = Pos;
    Pos = InnerStart;
    Type *Result = parseDeclarator(Suffixed, Name, FnTy, ParamNames);
    expect(Tok::RParen, ")");
    Pos = After;
    return Result;
  }
  if (is(Tok::Ident)) {
    Name = cur().Text;
    next();
  }
  return parseSuffixes(Base, FnTy, ParamNames);
}

Type *Parser::parseSuffixes(Type *Base, FunctionType **FnTy,
                            std::vector<std::string> *ParamNames) {
  // Array suffixes: collect dimensions, fold innermost-last.
  if (is(Tok::LBracket)) {
    std::vector<uint64_t> Dims;
    while (accept(Tok::LBracket)) {
      if (is(Tok::RBracket)) {
        // Unsized "[]": only valid with an initializer; use size 0 marker.
        Dims.push_back(0);
        next();
        continue;
      }
      Dims.push_back(static_cast<uint64_t>(parseConstIntExpr()));
      expect(Tok::RBracket, "]");
    }
    Type *T = Base;
    for (auto It = Dims.rbegin(); It != Dims.rend(); ++It)
      T = Ctx.arrayOf(T, *It);
    return T;
  }
  // Parameter list suffix.
  if (is(Tok::LParen)) {
    next();
    std::vector<Type *> Params;
    std::vector<std::string> Names;
    bool VarArg = false;
    if (!is(Tok::RParen)) {
      if (is(Tok::KwVoid) && peek().Kind == Tok::RParen) {
        next();
      } else {
        while (true) {
          if (accept(Tok::Ellipsis)) {
            VarArg = true;
            break;
          }
          Type *PT = parseTypeSpec();
          std::string PName;
          PT = parseDeclarator(PT, PName, nullptr, nullptr);
          if (PT->isArray()) // Parameters of array type decay.
            PT = Ctx.ptrTo(cast<ArrayType>(PT)->element());
          Params.push_back(PT);
          Names.push_back(PName);
          if (!accept(Tok::Comma))
            break;
        }
      }
    }
    expect(Tok::RParen, ")");
    FunctionType *FT = Ctx.funcTy(Base, Params, VarArg);
    if (FnTy) {
      *FnTy = FT;
      if (ParamNames)
        *ParamNames = Names;
      return Base; // Top-level function: caller uses FnTy.
    }
    return FT; // Function type in a pointer declarator.
  }
  return Base;
}

Type *Parser::parseAbstractType() {
  Type *T = parseTypeSpec();
  while (accept(Tok::Star))
    T = Ctx.ptrTo(T);
  // Abstract function-pointer types: "int (*)(int)".
  if (is(Tok::LParen) && peek().Kind == Tok::Star &&
      peek(2).Kind == Tok::RParen) {
    next();
    next();
    next();
    std::vector<Type *> Params;
    bool VarArg = false;
    expect(Tok::LParen, "(");
    if (!is(Tok::RParen)) {
      while (true) {
        if (accept(Tok::Ellipsis)) {
          VarArg = true;
          break;
        }
        std::string Ignored;
        Type *PT = parseDeclarator(parseTypeSpec(), Ignored, nullptr, nullptr);
        if (PT->isArray())
          PT = Ctx.ptrTo(cast<ArrayType>(PT)->element());
        Params.push_back(PT);
        if (!accept(Tok::Comma))
          break;
      }
    }
    expect(Tok::RParen, ")");
    T = Ctx.ptrTo(Ctx.funcTy(T, Params, VarArg));
  }
  return T;
}

//===----------------------------------------------------------------------===//
// Top level
//===----------------------------------------------------------------------===//

bool Parser::run() {
  Scopes.emplace_back(); // Global scope.

  // Pre-declare the builtin library.
  auto DeclBuiltin = [&](const char *Name, Type *Ret,
                         std::vector<Type *> Params, bool VarArg = false) {
    Function *F =
        M.createFunction(Name, Ctx.funcTy(Ret, std::move(Params), VarArg),
                         /*Builtin=*/true);
    Binding Bd;
    Bd.F = F;
    Scopes.front()[Name] = Bd;
  };
  Type *I8P = Ctx.ptrTo(Ctx.i8());
  Type *I64P = Ctx.ptrTo(Ctx.i64());
  DeclBuiltin("malloc", I8P, {Ctx.i64()});
  DeclBuiltin("free", Ctx.voidTy(), {I8P});
  DeclBuiltin("memcpy", I8P, {I8P, I8P, Ctx.i64()});
  DeclBuiltin("memset", I8P, {I8P, Ctx.i32(), Ctx.i64()});
  DeclBuiltin("strlen", Ctx.i64(), {I8P});
  DeclBuiltin("strcpy", I8P, {I8P, I8P});
  DeclBuiltin("strcat", I8P, {I8P, I8P});
  DeclBuiltin("strcmp", Ctx.i32(), {I8P, I8P});
  DeclBuiltin("print_int", Ctx.voidTy(), {Ctx.i64()});
  DeclBuiltin("print_char", Ctx.voidTy(), {Ctx.i32()});
  DeclBuiltin("print_str", Ctx.voidTy(), {I8P});
  DeclBuiltin("exit", Ctx.voidTy(), {Ctx.i32()});
  DeclBuiltin("sb_rand", Ctx.i64(), {});
  DeclBuiltin("sb_srand", Ctx.voidTy(), {Ctx.i64()});
  DeclBuiltin("setjmp", Ctx.i32(), {I64P});
  DeclBuiltin("longjmp", Ctx.voidTy(), {I64P, Ctx.i32()});
  DeclBuiltin("sb_guard", Ctx.i32(), {});
  DeclBuiltin("sb_request_end", Ctx.voidTy(), {});
  DeclBuiltin("__setbound", I8P, {I8P, Ctx.i64()});
  DeclBuiltin("__unbound", I8P, {I8P});

  try {
    while (!is(Tok::End))
      parseTopLevel();
  } catch (ParseAbort &) {
    return false;
  }
  return Errors.empty();
}

void Parser::parseTopLevel() {
  // Struct/union definition: "struct T { ... };"
  if ((is(Tok::KwStruct) || is(Tok::KwUnion)) && peek().Kind == Tok::Ident &&
      peek(2).Kind == Tok::LBrace) {
    parseStructDef(is(Tok::KwUnion));
    return;
  }

  Type *Base = parseTypeSpec();
  if (accept(Tok::Semi))
    return; // Bare "struct T;" forward declaration.

  std::string Name;
  FunctionType *FnTy = nullptr;
  std::vector<std::string> ParamNames;
  Type *Ty = parseDeclarator(Base, Name, &FnTy, &ParamNames);
  if (Name.empty())
    error("expected a name in declaration");

  if (FnTy) {
    parseFunctionRest(Ty, Name, FnTy, ParamNames);
    return;
  }
  parseGlobalRest(Base, Ty, Name);
}

void Parser::parseStructDef(bool IsUnion) {
  next(); // struct/union
  std::string Tag = (IsUnion ? "union." : "struct.") + cur().Text;
  next(); // tag
  next(); // {
  StructType *ST = Ctx.getStruct(Tag);
  if (!ST)
    ST = Ctx.createStruct(Tag);
  if (!ST->isOpaque())
    error("redefinition of " + Tag);

  std::vector<Type *> Fields;
  std::vector<std::string> Names;
  while (!accept(Tok::RBrace)) {
    Type *Base = parseTypeSpec();
    while (true) {
      std::string FName;
      Type *FTy = parseDeclarator(Base, FName, nullptr, nullptr);
      if (FName.empty())
        error("expected field name");
      Fields.push_back(FTy);
      Names.push_back(FName);
      if (!accept(Tok::Comma))
        break;
    }
    expect(Tok::Semi, ";");
  }
  expect(Tok::Semi, ";");
  ST->setBody(std::move(Fields), std::move(Names), IsUnion);
}

void Parser::parseFunctionRest(Type *RetTy, const std::string &Name,
                               FunctionType *FnTy,
                               const std::vector<std::string> &ParamNames) {
  // Prototype only?
  if (accept(Tok::Semi)) {
    if (!M.getFunction(Name)) {
      Function *F = M.createFunction(Name, FnTy);
      Binding Bd;
      Bd.F = F;
      Scopes.front()[Name] = Bd;
    }
    return;
  }

  Function *F = M.getFunction(Name);
  if (!F) {
    F = M.createFunction(Name, FnTy);
    Binding Bd;
    Bd.F = F;
    Scopes.front()[Name] = Bd;
  } else if (F->isDefinition()) {
    error("redefinition of function " + Name);
  }

  CurFn = F;
  EntryBlock = F->createBlock("entry");
  BasicBlock *Body = F->createBlock("body");
  B.setInsertPoint(EntryBlock);
  B.br(Body);
  B.setInsertPoint(Body);

  Scopes.emplace_back();
  // Spill parameters to allocas so their address can be taken; mem2reg
  // promotes the ones that never are.
  for (unsigned I = 0; I < F->numArgs(); ++I) {
    std::string PN = I < ParamNames.size() && !ParamNames[I].empty()
                         ? ParamNames[I]
                         : "arg" + std::to_string(I);
    AllocaInst *Slot = createLocal(FnTy->param(I), PN);
    B.store(F->arg(I), Slot);
    Binding Bd;
    Bd.Addr = Slot;
    Bd.Ty = FnTy->param(I);
    bind(PN, Bd);
  }

  expect(Tok::LBrace, "{");
  while (!accept(Tok::RBrace))
    parseStatement();
  Scopes.pop_back();

  // Terminate a fall-through tail.
  if (!B.blockTerminated()) {
    if (RetTy->isVoid())
      B.ret();
    else if (RetTy->isPointer())
      B.ret(M.nullPtr(cast<PointerType>(RetTy)));
    else
      B.ret(M.constInt(cast<IntType>(RetTy), 0));
  }
  CurFn = nullptr;
}

//===----------------------------------------------------------------------===//
// Globals
//===----------------------------------------------------------------------===//

int64_t Parser::parseConstIntExpr() {
  // Small constant-expression evaluator: literals, sizeof, + - * / and
  // parentheses; enough for array bounds and global scalar initializers.
  std::function<int64_t()> Mul, Add, Prim;
  Prim = [&]() -> int64_t {
    if (accept(Tok::Minus))
      return -Prim();
    if (is(Tok::IntLit) || is(Tok::CharLit)) {
      int64_t V = cur().IntVal;
      next();
      return V;
    }
    if (accept(Tok::KwSizeof)) {
      expect(Tok::LParen, "(");
      Type *T = parseAbstractType();
      expect(Tok::RParen, ")");
      return static_cast<int64_t>(T->sizeInBytes());
    }
    if (accept(Tok::LParen)) {
      int64_t V = Add();
      expect(Tok::RParen, ")");
      return V;
    }
    error("expected a constant expression");
    return 0;
  };
  Mul = [&]() -> int64_t {
    int64_t V = Prim();
    while (is(Tok::Star) || is(Tok::Slash)) {
      bool IsMul = is(Tok::Star);
      next();
      int64_t R = Prim();
      V = IsMul ? V * R : (R ? V / R : 0);
    }
    return V;
  };
  Add = [&]() -> int64_t {
    int64_t V = Mul();
    while (is(Tok::Plus) || is(Tok::Minus)) {
      bool IsAdd = is(Tok::Plus);
      next();
      int64_t R = Mul();
      V = IsAdd ? V + R : V - R;
    }
    return V;
  };
  return Add();
}

void Parser::encodeConstInto(Type *Ty, GlobalInitializer &Init,
                             uint64_t Offset) {
  auto PutInt = [&](uint64_t V, uint64_t Size) {
    if (Init.Bytes.size() < Offset + Size)
      Init.Bytes.resize(Offset + Size, 0);
    std::memcpy(Init.Bytes.data() + Offset, &V, Size);
  };

  // Pointer initializers: NULL, &global, function name, string literal.
  if (Ty->isPointer()) {
    if (accept(Tok::KwNull) || (is(Tok::IntLit) && cur().IntVal == 0)) {
      if (is(Tok::IntLit))
        next();
      PutInt(0, 8);
      return;
    }
    if (is(Tok::StrLit)) {
      GlobalVariable *S = M.createStringLiteral(cur().Text);
      next();
      PutInt(0, 8);
      Init.Relocs.push_back({Offset, S});
      return;
    }
    bool TookAddr = accept(Tok::Amp);
    (void)TookAddr;
    if (!is(Tok::Ident))
      error("unsupported pointer initializer");
    Binding *Bd = lookup(cur().Text);
    if (!Bd)
      error("unknown name in initializer: " + cur().Text);
    next();
    PutInt(0, 8);
    if (Bd->F) {
      Init.Relocs.push_back({Offset, Bd->F});
      return;
    }
    Init.Relocs.push_back({Offset, cast<Constant>(Bd->Addr)});
    return;
  }

  if (Ty->isInt()) {
    int64_t V = parseConstIntExpr();
    PutInt(static_cast<uint64_t>(V), Ty->sizeInBytes());
    return;
  }

  if (auto *AT = dyn_cast<ArrayType>(Ty)) {
    // String initializer for char arrays.
    if (AT->element() == Ctx.i8() && is(Tok::StrLit)) {
      const std::string &S = cur().Text;
      if (Init.Bytes.size() < Offset + S.size() + 1)
        Init.Bytes.resize(Offset + S.size() + 1, 0);
      std::memcpy(Init.Bytes.data() + Offset, S.data(), S.size());
      next();
      return;
    }
    expect(Tok::LBrace, "{");
    uint64_t ElemSize = AT->element()->sizeInBytes();
    uint64_t Idx = 0;
    if (!is(Tok::RBrace)) {
      do {
        encodeConstInto(AT->element(), Init, Offset + Idx * ElemSize);
        ++Idx;
      } while (accept(Tok::Comma) && !is(Tok::RBrace));
    }
    expect(Tok::RBrace, "}");
    return;
  }

  if (auto *ST = dyn_cast<StructType>(Ty)) {
    expect(Tok::LBrace, "{");
    unsigned Idx = 0;
    if (!is(Tok::RBrace)) {
      do {
        if (Idx >= ST->numFields())
          error("too many struct initializers");
        encodeConstInto(ST->field(Idx), Init, Offset + ST->fieldOffset(Idx));
        ++Idx;
      } while (accept(Tok::Comma) && !is(Tok::RBrace));
    }
    expect(Tok::RBrace, "}");
    return;
  }

  error("unsupported global initializer");
}

void Parser::parseGlobalRest(Type *Base, Type *FirstTy,
                             const std::string &Name) {
  std::string CurName = Name;
  Type *CurTy = FirstTy;
  while (true) {
    GlobalInitializer Init;
    if (accept(Tok::Assign)) {
      // Unsized arrays take their size from a string initializer.
      if (auto *AT = dyn_cast<ArrayType>(CurTy);
          AT && AT->count() == 0 && is(Tok::StrLit))
        CurTy = Ctx.arrayOf(AT->element(), cur().Text.size() + 1);
      encodeConstInto(CurTy, Init, 0);
    }
    GlobalVariable *G = M.createGlobal(CurName, CurTy, std::move(Init));
    Binding Bd;
    Bd.Addr = G;
    Bd.Ty = CurTy;
    Scopes.front()[CurName] = Bd;

    if (!accept(Tok::Comma))
      break;
    CurName.clear();
    CurTy = parseDeclarator(Base, CurName, nullptr, nullptr);
    if (CurName.empty())
      error("expected a name in declaration");
  }
  expect(Tok::Semi, ";");
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

AllocaInst *Parser::createLocal(Type *Ty, const std::string &Name) {
  // Allocas live in the entry block, before its terminator.
  auto Term = std::prev(EntryBlock->end());
  auto *AI = new AllocaInst(Ctx.ptrTo(Ty), Ty, Name);
  EntryBlock->insertBefore(Term, std::unique_ptr<Instruction>(AI));
  return AI;
}

void Parser::ensureBlock() {
  // After a return/break the block is closed; open an unreachable
  // continuation block so further statements have a home.
  if (B.blockTerminated())
    B.setInsertPoint(CurFn->createBlock("dead"));
}

void Parser::parseBlock() {
  expect(Tok::LBrace, "{");
  Scopes.emplace_back();
  while (!accept(Tok::RBrace))
    parseStatement();
  Scopes.pop_back();
}

void Parser::parseLocalDecl() {
  Type *Base = parseTypeSpec();
  while (true) {
    std::string Name;
    Type *Ty = parseDeclarator(Base, Name, nullptr, nullptr);
    if (Name.empty())
      error("expected a variable name");

    // Unsized char array with string init takes its size from the string.
    if (auto *AT = dyn_cast<ArrayType>(Ty); AT && AT->count() == 0) {
      if (is(Tok::Assign) && peek().Kind == Tok::StrLit)
        Ty = Ctx.arrayOf(AT->element(), peek().Text.size() + 1);
      else
        error("unsized local array needs a string initializer");
    }

    AllocaInst *Slot = createLocal(Ty, Name);
    Binding Bd;
    Bd.Addr = Slot;
    Bd.Ty = Ty;
    bind(Name, Bd);

    if (accept(Tok::Assign)) {
      if (auto *AT = dyn_cast<ArrayType>(Ty)) {
        if (is(Tok::StrLit)) {
          // Local char array initialized from a string constant: memcpy.
          GlobalVariable *S = M.createStringLiteral(cur().Text);
          uint64_t N = cur().Text.size() + 1;
          next();
          Function *Memcpy = M.getFunction("memcpy");
          Value *Dst = B.gep(AT, Slot, {M.constI64(0), M.constI64(0)});
          Value *Src =
              B.gep(S->valueType(), S, {M.constI64(0), M.constI64(0)});
          B.call(Memcpy, {Dst, Src, M.constI64(static_cast<int64_t>(N))});
        } else {
          // Brace-initialized local array: element stores.
          expect(Tok::LBrace, "{");
          uint64_t Idx = 0;
          if (!is(Tok::RBrace)) {
            do {
              Value *V = rvalue(parseAssign());
              Value *Slot2 = B.gep(
                  AT, Slot,
                  {M.constI64(0), M.constI64(static_cast<int64_t>(Idx))});
              B.store(convert(V, AT->element()), Slot2);
              ++Idx;
            } while (accept(Tok::Comma) && !is(Tok::RBrace));
          }
          expect(Tok::RBrace, "}");
        }
      } else {
        Value *V = rvalue(parseAssign());
        B.store(convert(V, Ty), Slot);
      }
    }
    if (!accept(Tok::Comma))
      break;
  }
  expect(Tok::Semi, ";");
}

void Parser::parseStatement() {
  ensureBlock();

  if (is(Tok::LBrace)) {
    parseBlock();
    return;
  }
  if (accept(Tok::Semi))
    return;

  if (startsType()) {
    parseLocalDecl();
    return;
  }

  if (accept(Tok::KwReturn)) {
    Type *RetTy = CurFn->returnType();
    if (accept(Tok::Semi)) {
      B.ret();
      return;
    }
    Value *V = rvalue(parseExpr());
    expect(Tok::Semi, ";");
    B.ret(convert(V, RetTy));
    return;
  }

  if (accept(Tok::KwIf)) {
    expect(Tok::LParen, "(");
    Value *Cond = toBool(rvalue(parseExpr()));
    expect(Tok::RParen, ")");
    BasicBlock *Then = CurFn->createBlock("if.then");
    BasicBlock *Else = CurFn->createBlock("if.else");
    BasicBlock *Merge = CurFn->createBlock("if.end");
    B.condBr(Cond, Then, Else);
    B.setInsertPoint(Then);
    parseStatement();
    if (!B.blockTerminated())
      B.br(Merge);
    B.setInsertPoint(Else);
    if (accept(Tok::KwElse))
      parseStatement();
    if (!B.blockTerminated())
      B.br(Merge);
    B.setInsertPoint(Merge);
    return;
  }

  if (accept(Tok::KwWhile)) {
    expect(Tok::LParen, "(");
    BasicBlock *CondBB = CurFn->createBlock("while.cond");
    BasicBlock *BodyBB = CurFn->createBlock("while.body");
    BasicBlock *EndBB = CurFn->createBlock("while.end");
    B.br(CondBB);
    B.setInsertPoint(CondBB);
    Value *Cond = toBool(rvalue(parseExpr()));
    expect(Tok::RParen, ")");
    B.condBr(Cond, BodyBB, EndBB);
    B.setInsertPoint(BodyBB);
    LoopStack.push_back({EndBB, CondBB});
    parseStatement();
    LoopStack.pop_back();
    if (!B.blockTerminated())
      B.br(CondBB);
    B.setInsertPoint(EndBB);
    return;
  }

  if (accept(Tok::KwDo)) {
    BasicBlock *BodyBB = CurFn->createBlock("do.body");
    BasicBlock *CondBB = CurFn->createBlock("do.cond");
    BasicBlock *EndBB = CurFn->createBlock("do.end");
    B.br(BodyBB);
    B.setInsertPoint(BodyBB);
    LoopStack.push_back({EndBB, CondBB});
    parseStatement();
    LoopStack.pop_back();
    if (!B.blockTerminated())
      B.br(CondBB);
    expect(Tok::KwWhile, "while");
    expect(Tok::LParen, "(");
    B.setInsertPoint(CondBB);
    Value *Cond = toBool(rvalue(parseExpr()));
    expect(Tok::RParen, ")");
    expect(Tok::Semi, ";");
    B.condBr(Cond, BodyBB, EndBB);
    B.setInsertPoint(EndBB);
    return;
  }

  if (accept(Tok::KwFor)) {
    expect(Tok::LParen, "(");
    Scopes.emplace_back();
    if (!accept(Tok::Semi)) {
      if (startsType())
        parseLocalDecl(); // Consumes the ';'.
      else {
        parseExpr();
        expect(Tok::Semi, ";");
      }
    }
    BasicBlock *CondBB = CurFn->createBlock("for.cond");
    BasicBlock *BodyBB = CurFn->createBlock("for.body");
    BasicBlock *StepBB = CurFn->createBlock("for.step");
    BasicBlock *EndBB = CurFn->createBlock("for.end");
    B.br(CondBB);
    B.setInsertPoint(CondBB);
    if (is(Tok::Semi)) {
      B.br(BodyBB);
    } else {
      Value *Cond = toBool(rvalue(parseExpr()));
      B.condBr(Cond, BodyBB, EndBB);
    }
    expect(Tok::Semi, ";");
    // Step expression: parse later; remember tokens.
    size_t StepStart = Pos;
    int Depth = 0;
    while (!(Depth == 0 && is(Tok::RParen))) {
      if (is(Tok::LParen))
        ++Depth;
      if (is(Tok::RParen))
        --Depth;
      if (is(Tok::End))
        error("unterminated for header");
      next();
    }
    size_t StepEnd = Pos;
    expect(Tok::RParen, ")");

    B.setInsertPoint(BodyBB);
    LoopStack.push_back({EndBB, StepBB});
    parseStatement();
    LoopStack.pop_back();
    if (!B.blockTerminated())
      B.br(StepBB);

    B.setInsertPoint(StepBB);
    if (StepEnd > StepStart) {
      size_t Resume = Pos;
      Pos = StepStart;
      parseExpr();
      Pos = Resume;
    }
    B.br(CondBB);
    B.setInsertPoint(EndBB);
    Scopes.pop_back();
    return;
  }

  if (accept(Tok::KwBreak)) {
    expect(Tok::Semi, ";");
    if (LoopStack.empty())
      error("break outside a loop");
    B.br(LoopStack.back().first);
    return;
  }
  if (accept(Tok::KwContinue)) {
    expect(Tok::Semi, ";");
    if (LoopStack.empty())
      error("continue outside a loop");
    B.br(LoopStack.back().second);
    return;
  }

  parseExpr();
  expect(Tok::Semi, ";");
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

Binding *Parser::lookup(const std::string &Name) {
  for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
    auto F = It->find(Name);
    if (F != It->end())
      return &F->second;
  }
  return nullptr;
}

Value *Parser::rvalue(CVal C) {
  if (!C.LV)
    return C.V;
  if (auto *AT = dyn_cast<ArrayType>(C.Ty))
    return B.gep(AT, C.V, {M.constI64(0), M.constI64(0)}, "decay");
  return B.load(C.Ty, C.V);
}

Value *Parser::convert(Value *V, Type *To) {
  Type *From = V->type();
  if (From == To)
    return V;
  if (From->isInt() && To->isInt()) {
    unsigned FB = cast<IntType>(From)->bits(), TB = cast<IntType>(To)->bits();
    if (FB == TB)
      return V;
    if (FB > TB)
      return B.castOp(CastInst::Op::Trunc, V, To);
    // i1 widens with zero extension (comparison results are 0/1).
    return B.castOp(FB == 1 ? CastInst::Op::ZExt : CastInst::Op::SExt, V, To);
  }
  if (From->isPointer() && To->isPointer())
    return B.bitcast(V, To);
  if (From->isInt() && To->isPointer()) {
    if (auto *CI = dyn_cast<ConstantInt>(V); CI && CI->isZero())
      return M.nullPtr(cast<PointerType>(To));
    if (cast<IntType>(From)->bits() != 64)
      V = B.castOp(CastInst::Op::SExt, V, Ctx.i64());
    return B.castOp(CastInst::Op::IntToPtr, V, To);
  }
  if (From->isPointer() && To->isInt()) {
    Value *I = B.castOp(CastInst::Op::PtrToInt, V, Ctx.i64());
    return convert(I, To);
  }
  error("invalid conversion from " + From->str() + " to " + To->str());
  return nullptr;
}

Value *Parser::toBool(Value *V) {
  if (V->type()->isPointer())
    return B.icmp(ICmpInst::Pred::NE, V,
                  M.nullPtr(cast<PointerType>(V->type())));
  if (cast<IntType>(V->type())->bits() == 1)
    return V;
  return B.icmp(ICmpInst::Pred::NE, V,
                M.constInt(cast<IntType>(V->type()), 0));
}

Type *Parser::promote2(Value *&L, Value *&R) {
  // Usual arithmetic promotions: everything to int, then to the wider.
  auto Widen = [&](Value *V) -> Value * {
    unsigned Bits = cast<IntType>(V->type())->bits();
    return Bits < 32 ? convert(V, Ctx.i32()) : V;
  };
  L = Widen(L);
  R = Widen(R);
  unsigned LB = cast<IntType>(L->type())->bits();
  unsigned RB = cast<IntType>(R->type())->bits();
  if (LB < RB)
    L = convert(L, R->type());
  else if (RB < LB)
    R = convert(R, L->type());
  return L->type();
}

Value *Parser::emitBinop(Tok Op, Value *L, Value *R) {
  // Pointer arithmetic and comparisons.
  bool LP = L->type()->isPointer(), RP = R->type()->isPointer();
  if (LP || RP) {
    switch (Op) {
    case Tok::Plus: {
      if (RP)
        std::swap(L, R);
      Type *Elem = cast<PointerType>(L->type())->pointee();
      return B.gep(Elem, L, {convert(R, Ctx.i64())}, "padd");
    }
    case Tok::Minus: {
      if (LP && RP) {
        Value *LI = B.castOp(CastInst::Op::PtrToInt, L, Ctx.i64());
        Value *RI = B.castOp(CastInst::Op::PtrToInt, R, Ctx.i64());
        Value *D = B.sub(LI, RI);
        uint64_t ES = cast<PointerType>(L->type())->pointee()->sizeInBytes();
        return B.binop(BinOpInst::Op::SDiv, D,
                       M.constI64(static_cast<int64_t>(ES ? ES : 1)));
      }
      Type *Elem = cast<PointerType>(L->type())->pointee();
      Value *Neg = B.sub(M.constI64(0), convert(R, Ctx.i64()));
      return B.gep(Elem, L, {Neg}, "psub");
    }
    case Tok::EqEq:
    case Tok::NotEq:
    case Tok::Lt:
    case Tok::Gt:
    case Tok::Le:
    case Tok::Ge: {
      if (!LP)
        L = convert(L, R->type());
      if (!RP)
        R = convert(R, L->type());
      if (L->type() != R->type())
        R = B.bitcast(R, L->type());
      ICmpInst::Pred P;
      switch (Op) {
      case Tok::EqEq:
        P = ICmpInst::Pred::EQ;
        break;
      case Tok::NotEq:
        P = ICmpInst::Pred::NE;
        break;
      case Tok::Lt:
        P = ICmpInst::Pred::ULT;
        break;
      case Tok::Gt:
        P = ICmpInst::Pred::UGT;
        break;
      case Tok::Le:
        P = ICmpInst::Pred::ULE;
        break;
      default:
        P = ICmpInst::Pred::UGE;
        break;
      }
      return convert(B.icmp(P, L, R), Ctx.i32());
    }
    default:
      error("invalid operands to binary operator");
    }
  }

  promote2(L, R);
  switch (Op) {
  case Tok::Plus:
    return B.add(L, R);
  case Tok::Minus:
    return B.sub(L, R);
  case Tok::Star:
    return B.mul(L, R);
  case Tok::Slash:
    return B.binop(BinOpInst::Op::SDiv, L, R);
  case Tok::Percent:
    return B.binop(BinOpInst::Op::SRem, L, R);
  case Tok::Amp:
    return B.binop(BinOpInst::Op::And, L, R);
  case Tok::Pipe:
    return B.binop(BinOpInst::Op::Or, L, R);
  case Tok::Caret:
    return B.binop(BinOpInst::Op::Xor, L, R);
  case Tok::Shl:
    return B.binop(BinOpInst::Op::Shl, L, R);
  case Tok::Shr:
    return B.binop(BinOpInst::Op::AShr, L, R);
  case Tok::EqEq:
    return convert(B.icmp(ICmpInst::Pred::EQ, L, R), Ctx.i32());
  case Tok::NotEq:
    return convert(B.icmp(ICmpInst::Pred::NE, L, R), Ctx.i32());
  case Tok::Lt:
    return convert(B.icmp(ICmpInst::Pred::SLT, L, R), Ctx.i32());
  case Tok::Gt:
    return convert(B.icmp(ICmpInst::Pred::SGT, L, R), Ctx.i32());
  case Tok::Le:
    return convert(B.icmp(ICmpInst::Pred::SLE, L, R), Ctx.i32());
  case Tok::Ge:
    return convert(B.icmp(ICmpInst::Pred::SGE, L, R), Ctx.i32());
  default:
    sb_unreachable("not a binary operator");
  }
}

namespace {
int precOf(Tok K) {
  switch (K) {
  case Tok::Star:
  case Tok::Slash:
  case Tok::Percent:
    return 10;
  case Tok::Plus:
  case Tok::Minus:
    return 9;
  case Tok::Shl:
  case Tok::Shr:
    return 8;
  case Tok::Lt:
  case Tok::Gt:
  case Tok::Le:
  case Tok::Ge:
    return 7;
  case Tok::EqEq:
  case Tok::NotEq:
    return 6;
  case Tok::Amp:
    return 5;
  case Tok::Caret:
    return 4;
  case Tok::Pipe:
    return 3;
  default:
    return -1;
  }
}
} // namespace

CVal Parser::parseBinary(int MinPrec) {
  CVal L = parseUnary();
  while (true) {
    int P = precOf(cur().Kind);
    if (P < MinPrec)
      return L;
    Tok Op = cur().Kind;
    next();
    CVal Rv = parseBinary(P + 1);
    L = makeRV(emitBinop(Op, rvalue(L), rvalue(Rv)));
  }
}

CVal Parser::parseLogAnd() {
  CVal L = parseBinary(0);
  if (!is(Tok::AmpAmp))
    return L;
  AllocaInst *Tmp = createLocal(Ctx.i32(), "andtmp");
  BasicBlock *FalseBB = CurFn->createBlock("land.false");
  BasicBlock *EndBB = CurFn->createBlock("land.end");
  while (accept(Tok::AmpAmp)) {
    Value *C = toBool(rvalue(L));
    BasicBlock *NextBB = CurFn->createBlock("land.rhs");
    B.condBr(C, NextBB, FalseBB);
    B.setInsertPoint(NextBB);
    L = parseBinary(0);
  }
  Value *Last = toBool(rvalue(L));
  B.store(convert(Last, Ctx.i32()), Tmp);
  B.br(EndBB);
  B.setInsertPoint(FalseBB);
  B.store(M.constI32(0), Tmp);
  B.br(EndBB);
  B.setInsertPoint(EndBB);
  return CVal{Tmp, Ctx.i32(), true};
}

CVal Parser::parseLogOr() {
  CVal L = parseLogAnd();
  if (!is(Tok::PipePipe))
    return L;
  AllocaInst *Tmp = createLocal(Ctx.i32(), "ortmp");
  BasicBlock *TrueBB = CurFn->createBlock("lor.true");
  BasicBlock *EndBB = CurFn->createBlock("lor.end");
  while (accept(Tok::PipePipe)) {
    Value *C = toBool(rvalue(L));
    BasicBlock *NextBB = CurFn->createBlock("lor.rhs");
    B.condBr(C, TrueBB, NextBB);
    B.setInsertPoint(NextBB);
    L = parseLogAnd();
  }
  Value *Last = toBool(rvalue(L));
  B.store(convert(Last, Ctx.i32()), Tmp);
  B.br(EndBB);
  B.setInsertPoint(TrueBB);
  B.store(M.constI32(1), Tmp);
  B.br(EndBB);
  B.setInsertPoint(EndBB);
  return CVal{Tmp, Ctx.i32(), true};
}

CVal Parser::parseCondExpr() {
  CVal C = parseLogOr();
  if (!is(Tok::Question))
    return C;
  next();
  Value *Cond = toBool(rvalue(C));
  BasicBlock *TrueBB = CurFn->createBlock("sel.true");
  BasicBlock *FalseBB = CurFn->createBlock("sel.false");
  BasicBlock *EndBB = CurFn->createBlock("sel.end");
  B.condBr(Cond, TrueBB, FalseBB);

  B.setInsertPoint(TrueBB);
  Value *TV = rvalue(parseAssign());
  BasicBlock *TrueOut = B.insertBlock();
  expect(Tok::Colon, ":");

  B.setInsertPoint(FalseBB);
  Value *FV = rvalue(parseCondExpr());
  BasicBlock *FalseOut = B.insertBlock();

  // Unify the result type.
  Type *RTy;
  if (TV->type()->isPointer() || FV->type()->isPointer())
    RTy = TV->type()->isPointer() ? TV->type() : FV->type();
  else
    RTy = cast<IntType>(TV->type())->bits() >=
                  cast<IntType>(FV->type())->bits()
              ? TV->type()
              : FV->type();
  if (RTy->isInt() && cast<IntType>(RTy)->bits() < 32)
    RTy = Ctx.i32();

  AllocaInst *Tmp = createLocal(RTy, "seltmp");
  B.setInsertPoint(TrueOut);
  B.store(convert(TV, RTy), Tmp);
  B.br(EndBB);
  B.setInsertPoint(FalseOut);
  B.store(convert(FV, RTy), Tmp);
  B.br(EndBB);
  B.setInsertPoint(EndBB);
  return CVal{Tmp, RTy, true};
}

CVal Parser::parseAssign() {
  CVal L = parseCondExpr();
  Tok K = cur().Kind;
  bool Simple = K == Tok::Assign;
  Tok Under;
  switch (K) {
  case Tok::PlusAssign:
    Under = Tok::Plus;
    break;
  case Tok::MinusAssign:
    Under = Tok::Minus;
    break;
  case Tok::StarAssign:
    Under = Tok::Star;
    break;
  case Tok::SlashAssign:
    Under = Tok::Slash;
    break;
  case Tok::PercentAssign:
    Under = Tok::Percent;
    break;
  case Tok::AmpAssign:
    Under = Tok::Amp;
    break;
  case Tok::PipeAssign:
    Under = Tok::Pipe;
    break;
  case Tok::CaretAssign:
    Under = Tok::Caret;
    break;
  case Tok::ShlAssign:
    Under = Tok::Shl;
    break;
  case Tok::ShrAssign:
    Under = Tok::Shr;
    break;
  default:
    if (!Simple)
      return L;
    Under = Tok::Assign;
    break;
  }
  next();
  if (!L.LV)
    error("assignment to a non-lvalue");
  CVal Rv = parseAssign();
  Value *RV = rvalue(Rv);
  if (!Simple) {
    Value *Old = B.load(L.Ty, L.V);
    RV = emitBinop(Under, Old, RV);
  }
  RV = convert(RV, L.Ty);
  B.store(RV, L.V);
  return makeRV(RV);
}

CVal Parser::parseUnary() {
  switch (cur().Kind) {
  case Tok::Plus:
    next();
    return makeRV(rvalue(parseUnary()));
  case Tok::Minus: {
    next();
    Value *V = rvalue(parseUnary());
    Value *Z = M.constInt(cast<IntType>(V->type()), 0);
    return makeRV(B.sub(Z, V));
  }
  case Tok::Tilde: {
    next();
    Value *V = rvalue(parseUnary());
    Value *AllOnes = M.constInt(cast<IntType>(V->type()), -1);
    return makeRV(B.binop(BinOpInst::Op::Xor, V, AllOnes));
  }
  case Tok::Bang: {
    next();
    Value *V = toBool(rvalue(parseUnary()));
    Value *NotV = B.binop(BinOpInst::Op::Xor, V, M.constI1(true));
    return makeRV(convert(NotV, Ctx.i32()));
  }
  case Tok::Star: {
    next();
    Value *P = rvalue(parseUnary());
    if (!P->type()->isPointer())
      error("dereference of a non-pointer");
    Type *Pointee = cast<PointerType>(P->type())->pointee();
    return CVal{P, Pointee, true};
  }
  case Tok::Amp: {
    next();
    CVal L = parseUnary();
    if (!L.LV) {
      // &function is the function value itself.
      if (L.V->type()->isPointer() &&
          cast<PointerType>(L.V->type())->pointee()->isFunction())
        return L;
      error("address of a non-lvalue");
    }
    if (L.Ty->isArray()) {
      // &array decays to a pointer to the first element (paper §3.1 usage).
      return makeRV(rvalue(L));
    }
    return CVal{L.V, Ctx.ptrTo(L.Ty), false};
  }
  case Tok::PlusPlus:
  case Tok::MinusMinus: {
    bool Inc = cur().Kind == Tok::PlusPlus;
    next();
    CVal L = parseUnary();
    if (!L.LV)
      error("++/-- on a non-lvalue");
    Value *Old = B.load(L.Ty, L.V);
    Value *New = emitBinop(Inc ? Tok::Plus : Tok::Minus, Old,
                           M.constI32(1));
    New = convert(New, L.Ty);
    B.store(New, L.V);
    return makeRV(New);
  }
  case Tok::KwSizeof: {
    next();
    if (is(Tok::LParen) && startsTypeAt(1)) {
      next();
      Type *T = parseAbstractType();
      expect(Tok::RParen, ")");
      return makeRV(M.constI64(static_cast<int64_t>(T->sizeInBytes())));
    }
    CVal V = parseUnary();
    return makeRV(M.constI64(static_cast<int64_t>(V.Ty->sizeInBytes())));
  }
  case Tok::LParen:
    // Cast expression?
    if (startsTypeAt(1)) {
      next();
      Type *T = parseAbstractType();
      expect(Tok::RParen, ")");
      Value *V = rvalue(parseUnary());
      if (T->isVoid())
        return makeRV(M.constI32(0));
      return makeRV(convert(V, T));
    }
    return parsePostfix();
  default:
    return parsePostfix();
  }
}

CVal Parser::parsePostfix() {
  CVal C = parsePrimary();
  while (true) {
    if (accept(Tok::LBracket)) {
      Value *P = rvalue(C);
      Value *Idx = rvalue(parseExpr());
      expect(Tok::RBracket, "]");
      if (!P->type()->isPointer())
        error("subscript of a non-pointer");
      Type *Elem = cast<PointerType>(P->type())->pointee();
      Value *Addr = B.gep(Elem, P, {convert(Idx, Ctx.i64())}, "idx");
      C = CVal{Addr, Elem, true};
      continue;
    }
    if (is(Tok::LParen)) {
      C = parseCall(C);
      continue;
    }
    if (accept(Tok::Dot) || (is(Tok::Arrow) && (next(), true))) {
      bool WasArrow = Toks[Pos - 1].Kind == Tok::Arrow;
      if (!is(Tok::Ident))
        error("expected field name");
      std::string FName = cur().Text;
      next();
      Value *BaseAddr;
      Type *AggTy;
      if (WasArrow) {
        Value *P = rvalue(C);
        if (!P->type()->isPointer())
          error("-> on a non-pointer");
        AggTy = cast<PointerType>(P->type())->pointee();
        BaseAddr = P;
      } else {
        if (!C.LV)
          error(". on a non-lvalue");
        AggTy = C.Ty;
        BaseAddr = C.V;
      }
      auto *ST = dyn_cast<StructType>(AggTy);
      if (!ST || ST->isOpaque())
        error("member access on a non-struct");
      int FieldIdx = ST->fieldIndex(FName);
      if (FieldIdx < 0)
        error("no field named " + FName + " in " + ST->name());
      Value *Addr =
          B.gep(ST, BaseAddr, {M.constI64(0), M.constI64(FieldIdx)}, FName);
      C = CVal{Addr, ST->field(FieldIdx), true};
      continue;
    }
    if (is(Tok::PlusPlus) || is(Tok::MinusMinus)) {
      bool Inc = is(Tok::PlusPlus);
      next();
      if (!C.LV)
        error("++/-- on a non-lvalue");
      Value *Old = B.load(C.Ty, C.V);
      Value *New =
          emitBinop(Inc ? Tok::Plus : Tok::Minus, Old, M.constI32(1));
      B.store(convert(New, C.Ty), C.V);
      C = makeRV(Old);
      continue;
    }
    return C;
  }
}

CVal Parser::parseCall(CVal Callee) {
  expect(Tok::LParen, "(");
  std::vector<Value *> Args;
  if (!is(Tok::RParen)) {
    do {
      Args.push_back(rvalue(parseAssign()));
    } while (accept(Tok::Comma));
  }
  expect(Tok::RParen, ")");

  // Determine the callee: a function constant or a function-pointer value.
  Value *CalleeV = Callee.LV ? rvalue(Callee) : Callee.V;
  FunctionType *FTy = nullptr;
  Function *Direct = dyn_cast<Function>(CalleeV);
  if (Direct) {
    FTy = Direct->functionType();
  } else if (CalleeV->type()->isPointer() &&
             cast<PointerType>(CalleeV->type())->pointee()->isFunction()) {
    FTy = cast<FunctionType>(cast<PointerType>(CalleeV->type())->pointee());
  } else {
    error("call of a non-function");
  }

  if (Args.size() < FTy->numParams() ||
      (Args.size() > FTy->numParams() && !FTy->isVarArg()))
    error("wrong number of arguments");
  for (unsigned I = 0; I < FTy->numParams(); ++I)
    Args[I] = convert(Args[I], FTy->param(I));
  // Default promotions for variadic extras.
  for (size_t I = FTy->numParams(); I < Args.size(); ++I)
    if (Args[I]->type()->isInt() &&
        cast<IntType>(Args[I]->type())->bits() < 32)
      Args[I] = convert(Args[I], Ctx.i32());

  CallInst *CI =
      Direct ? B.call(Direct, Args) : B.callIndirect(FTy, CalleeV, Args);
  if (FTy->returnType()->isVoid())
    return makeRV(M.constI32(0));
  return makeRV(CI);
}

CVal Parser::parsePrimary() {
  switch (cur().Kind) {
  case Tok::IntLit: {
    int64_t V = cur().IntVal;
    next();
    bool Fits32 = V >= INT32_MIN && V <= INT32_MAX;
    return makeRV(Fits32 ? static_cast<Value *>(M.constI32(V))
                         : static_cast<Value *>(M.constI64(V)));
  }
  case Tok::CharLit: {
    int64_t V = cur().IntVal;
    next();
    return makeRV(M.constI32(V));
  }
  case Tok::StrLit: {
    GlobalVariable *S = M.createStringLiteral(cur().Text);
    next();
    Value *P = B.gep(S->valueType(), S, {M.constI64(0), M.constI64(0)}, "str");
    return makeRV(P);
  }
  case Tok::KwNull:
    next();
    return makeRV(M.nullPtr(Ctx.ptrTo(Ctx.i8())));
  case Tok::LParen: {
    next();
    CVal C = parseExpr();
    expect(Tok::RParen, ")");
    return C;
  }
  case Tok::Ident: {
    Binding *Bd = lookup(cur().Text);
    if (!Bd)
      error("unknown identifier: " + cur().Text);
    next();
    if (Bd->F)
      return makeRV(Bd->F);
    return CVal{Bd->Addr, Bd->Ty, true};
  }
  default:
    error("expected an expression");
    return {};
  }
}

} // namespace

CompileResult softbound::compileC(const std::string &Source) {
  CompileResult Out;
  Lexer L(Source);
  if (L.hadError()) {
    Out.Errors.push_back(L.error());
    return Out;
  }
  auto M = std::make_unique<Module>();
  Parser P(L.tokens(), *M);
  bool Ok = P.run();
  Out.Errors = P.takeErrors();
  if (Ok)
    Out.M = std::move(M);
  return Out;
}
