//===- frontend/Compiler.h - mini-C to IR compiler --------------*- C++ -*-===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compiles the mini-C dialect to IR in one pass (lex + parse + emit). The
/// dialect covers the C features the paper's transformation must handle:
/// arbitrary pointer arithmetic, arrays conflated with pointers, structs
/// with internal arrays, unions (via casts), function pointers, varargs,
/// setjmp/longjmp, string/heap library calls, and global initializers.
///
/// Deliberate simplifications (documented in DESIGN.md): no floating point
/// (fixed-point arithmetic instead), `unsigned` parsed but treated as
/// signed, no typedef/switch/goto.
///
//===----------------------------------------------------------------------===//

#ifndef SOFTBOUND_FRONTEND_COMPILER_H
#define SOFTBOUND_FRONTEND_COMPILER_H

#include "ir/Module.h"

#include <memory>
#include <string>
#include <vector>

namespace softbound {

/// Result of compiling one source buffer.
struct CompileResult {
  std::unique_ptr<Module> M;
  std::vector<std::string> Errors;

  bool ok() const { return M != nullptr && Errors.empty(); }
  /// All errors joined for test assertions / diagnostics.
  std::string errorText() const {
    std::string S;
    for (const auto &E : Errors)
      S += E + "\n";
    return S;
  }
};

/// Compiles mini-C source into a fresh module. Builtins (malloc, memcpy,
/// print_*, setjmp, …) are pre-declared. On error, M may be null or partial
/// and Errors is non-empty.
CompileResult compileC(const std::string &Source);

} // namespace softbound

#endif // SOFTBOUND_FRONTEND_COMPILER_H
