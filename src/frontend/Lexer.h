//===- frontend/Lexer.h - mini-C lexer --------------------------*- C++ -*-===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for the mini-C dialect the workloads are written in: C's
/// expression/statement core, pointers, arrays, structs/unions, function
/// pointers and varargs — the features SoftBound's transformation must
/// handle (§5.2).
///
//===----------------------------------------------------------------------===//

#ifndef SOFTBOUND_FRONTEND_LEXER_H
#define SOFTBOUND_FRONTEND_LEXER_H

#include <cstdint>
#include <string>
#include <vector>

namespace softbound {

/// Token kinds. Punctuators are named after their spelling.
enum class Tok {
  End,
  Ident,
  IntLit,
  StrLit,
  CharLit,
  // Keywords.
  KwVoid,
  KwChar,
  KwShort,
  KwInt,
  KwLong,
  KwUnsigned,
  KwStruct,
  KwUnion,
  KwIf,
  KwElse,
  KwWhile,
  KwFor,
  KwDo,
  KwReturn,
  KwBreak,
  KwContinue,
  KwSizeof,
  KwNull,
  // Punctuation.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Semi,
  Comma,
  Dot,
  Arrow,
  Ellipsis,
  Question,
  Colon,
  // Operators.
  Assign,
  PlusAssign,
  MinusAssign,
  StarAssign,
  SlashAssign,
  PercentAssign,
  AmpAssign,
  PipeAssign,
  CaretAssign,
  ShlAssign,
  ShrAssign,
  PlusPlus,
  MinusMinus,
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Amp,
  Pipe,
  Caret,
  Tilde,
  Bang,
  Shl,
  Shr,
  Lt,
  Gt,
  Le,
  Ge,
  EqEq,
  NotEq,
  AmpAmp,
  PipePipe,
};

/// One lexed token.
struct Token {
  Tok Kind = Tok::End;
  std::string Text;  ///< Identifier or string-literal contents.
  int64_t IntVal = 0;
  int Line = 0;
};

/// Tokenizes a whole source buffer up front.
class Lexer {
public:
  /// Lexes \p Source. On bad input an error is recorded and lexing stops.
  explicit Lexer(const std::string &Source);

  const std::vector<Token> &tokens() const { return Tokens; }
  const std::string &error() const { return Error; }
  bool hadError() const { return !Error.empty(); }

private:
  void lex(const std::string &Src);

  std::vector<Token> Tokens;
  std::string Error;
};

} // namespace softbound

#endif // SOFTBOUND_FRONTEND_LEXER_H
