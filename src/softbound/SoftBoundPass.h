//===- softbound/SoftBoundPass.h - the SoftBound transformation -*- C++ -*-===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's core contribution (§3, §5): a module transformation that
///   1. associates base/bound metadata with every pointer SSA value,
///   2. loads/stores that metadata through the disjoint metadata space on
///      every load/store of a pointer value (§3.2),
///   3. inserts a spatial check before every dereference (full mode) or
///      before stores only (store-only mode, §6.3),
///   4. rewrites every function to `_sb_<name>` with extra bounds
///      parameters, returning {ptr, base, bound} for pointer returns (§3.3),
///   5. shrinks bounds at struct-field accesses to catch sub-object
///      overflows (§3.1), and
///   6. maps C library calls to checked wrappers (§5.2).
///
/// The transformation is strictly intra-procedural: no whole-program
/// analysis, which is what gives SoftBound separate compilation (§5.2).
///
//===----------------------------------------------------------------------===//

#ifndef SOFTBOUND_SOFTBOUND_SOFTBOUNDPASS_H
#define SOFTBOUND_SOFTBOUND_SOFTBOUNDPASS_H

#include "ir/Module.h"
#include "opt/checks/CheckOpt.h"

namespace softbound {

/// Which dereferences get checks (§6: full vs store-only checking).
enum class CheckMode {
  Full,      ///< Check every load and store (complete spatial safety).
  StoreOnly, ///< Check stores only; metadata still fully propagated.
  None,      ///< Propagate metadata but insert no checks (for ablation).
};

/// Pass configuration.
struct SoftBoundConfig {
  CheckMode Mode = CheckMode::Full;
  /// Shrink bounds when deriving a pointer to a struct field (§3.1). Off
  /// reproduces schemes that cannot detect sub-object overflows (MSCC).
  bool ShrinkBounds = true;
  /// §5.2: infer pointer-free memcpy from argument types and skip the
  /// metadata copy for them.
  bool InferMemcpyPointerFree = true;
  /// Check the base==bound==ptr function-pointer encoding at indirect
  /// calls (§5.2).
  bool CheckFunctionPointers = true;
  /// Run redundant-check elimination + DCE after instrumentation (the
  /// paper re-runs LLVM's optimizers, §6.1).
  bool ReoptimizeAfter = true;
  /// CCured-style SAFE-pointer elision (§6.5 comparison): statically prove
  /// constant-offset accesses into known-size objects in bounds and delete
  /// their checks. SoftBound proper leaves this to later passes.
  /// \deprecated The logic lives in opt/checks/SafeElision.cpp; prefer
  /// CheckOptConfig::ElideSafeChecks (the `checkopt(safe)` /
  /// `safe-elision` pipeline passes). This flag now invokes that sub-pass
  /// after instrumentation and keeps old call sites working.
  bool ElideSafePointerChecks = false;
};

/// What the pass did (for tests and the instrumentation-cost benches).
struct SoftBoundStats {
  unsigned FunctionsTransformed = 0;
  unsigned ChecksInserted = 0;
  unsigned FuncPtrChecksInserted = 0;
  unsigned MetaLoadsInserted = 0;
  unsigned MetaStoresInserted = 0;
  unsigned BoundsShrunk = 0;
  unsigned CallsRewritten = 0;
  unsigned ChecksEliminated = 0;
  /// \deprecated Alias of CheckOptStats::SafeChecksElided for old call
  /// sites; PipelineStats::CheckOpt is the owner of elision counters.
  unsigned ChecksElidedStatically = 0;
  /// \deprecated Alias filled by the driver from PipelineStats::CheckOpt
  /// (the single owner) when the post-instrumentation check-optimization
  /// subsystem (opt/checks/) runs; zeroed otherwise.
  CheckOptStats CheckOpt;

  SoftBoundStats &operator+=(const SoftBoundStats &O) {
    FunctionsTransformed += O.FunctionsTransformed;
    ChecksInserted += O.ChecksInserted;
    FuncPtrChecksInserted += O.FuncPtrChecksInserted;
    MetaLoadsInserted += O.MetaLoadsInserted;
    MetaStoresInserted += O.MetaStoresInserted;
    BoundsShrunk += O.BoundsShrunk;
    CallsRewritten += O.CallsRewritten;
    ChecksEliminated += O.ChecksEliminated;
    ChecksElidedStatically += O.ChecksElidedStatically;
    CheckOpt += O.CheckOpt;
    return *this;
  }
};

/// Applies the SoftBound transformation to every defined function in \p M.
/// The module must be verified beforehand; it verifies afterwards too.
SoftBoundStats applySoftBound(Module &M, const SoftBoundConfig &Cfg);

/// Queries over the `_sb_` calling convention the transformation emits
/// (§3.3): every pointer parameter gets one bounds parameter appended
/// after the original parameter list, in pointer-parameter order, and
/// call sites pass arguments in the same layout. The inter-procedural
/// check optimizer (opt/checks/InterProc.cpp) keys its argument summaries
/// on this contract, so the mapping lives here with the transformation
/// rather than being re-derived by every analysis.
namespace sbabi {

/// Number of parameters the function had before the signature rewrite
/// (the appended bounds parameters are exactly the trailing boundsTy
/// run). Equals numArgs() for untransformed functions.
unsigned originalParamCount(const Function &F);

/// Index of the bounds parameter paired with pointer parameter
/// \p PtrParam, or -1 when \p PtrParam is not a pointer parameter (or the
/// function was never transformed).
int boundsParamIndex(const Function &F, unsigned PtrParam);

/// The bounds value a transformed call site passes for pointer argument
/// \p ArgIdx, or null when the call does not follow the `_sb_` layout for
/// \p Callee (e.g. argument-count mismatch on a weird indirect call).
Value *passedBounds(const CallInst &Call, const Function &Callee,
                    unsigned ArgIdx);

} // namespace sbabi
} // namespace softbound

#endif // SOFTBOUND_SOFTBOUND_SOFTBOUNDPASS_H
