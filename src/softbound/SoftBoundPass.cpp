//===- softbound/SoftBoundPass.cpp - the SoftBound transformation -----------===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "softbound/SoftBoundPass.h"

#include "opt/Dominators.h"
#include "opt/Passes.h"
#include "support/Compiler.h"

#include <map>
#include <set>

using namespace softbound;

namespace {

/// True if values of \p Ty can contain pointers (drives the §5.2 memcpy
/// metadata inference).
bool typeContainsPointer(const Type *Ty) {
  if (Ty->isPointer())
    return true;
  if (const auto *AT = dyn_cast<ArrayType>(Ty))
    return typeContainsPointer(AT->element());
  if (const auto *ST = dyn_cast<StructType>(Ty)) {
    for (unsigned I = 0; I < ST->numFields(); ++I)
      if (typeContainsPointer(ST->field(I)))
        return true;
  }
  return false;
}

/// The whole-module transformation driver.
class SoftBoundTransform {
public:
  SoftBoundTransform(Module &M, const SoftBoundConfig &Cfg)
      : M(M), Ctx(M.ctx()), Cfg(Cfg) {}

  SoftBoundStats run();

private:
  //===--------------------------------------------------------------------===//
  // Phase 1: signature rewriting (§3.3)
  //===--------------------------------------------------------------------===//

  void rewriteSignature(Function &F);
  FunctionType *transformedType(FunctionType *FTy);

  //===--------------------------------------------------------------------===//
  // Phase 2: per-function instrumentation
  //===--------------------------------------------------------------------===//

  void instrumentFunction(Function &F);

  /// Returns the bounds SSA value for pointer \p V, materializing constant
  /// bounds in the entry block on first use.
  Value *getBounds(Value *V);

  /// Inserts \p I before \p Where in \p BB, marks it synthetic (so the
  /// walk does not re-instrument it), and returns it.
  template <typename T>
  T *insertBefore(BasicBlock *BB, BasicBlock::iterator Where, T *I) {
    Synthetic.insert(I);
    BB->insertBefore(Where, std::unique_ptr<Instruction>(I));
    return I;
  }

  Value *makeNullBounds();
  Value *makeUnboundedBounds();

  // Per-instruction handlers; each may insert around *It and may erase the
  // current instruction (returning the next iterator position).
  void handleAlloca(AllocaInst *AI, BasicBlock *BB, BasicBlock::iterator It);
  void handleLoad(LoadInst *LI, BasicBlock *BB, BasicBlock::iterator It);
  void handleStore(StoreInst *SI, BasicBlock *BB, BasicBlock::iterator It);
  void handleGEP(GEPInst *GI, BasicBlock *BB, BasicBlock::iterator It);
  void handleCast(CastInst *CI, BasicBlock *BB, BasicBlock::iterator It);
  void handleSelect(SelectInst *SI, BasicBlock *BB, BasicBlock::iterator It);
  void handlePhi(PhiInst *PI, BasicBlock *BB, BasicBlock::iterator It);
  void handleRet(RetInst *RI, BasicBlock *BB, BasicBlock::iterator It);
  BasicBlock::iterator handleCall(CallInst *CI, BasicBlock *BB,
                                  BasicBlock::iterator It);
  BasicBlock::iterator handleBuiltinCall(CallInst *CI, Function *Callee,
                                         BasicBlock *BB,
                                         BasicBlock::iterator It);

  Function *getWrapper(const std::string &Name, Type *Ret,
                       std::vector<Type *> Params);

  Module &M;
  TypeContext &Ctx;
  const SoftBoundConfig &Cfg;
  SoftBoundStats Stats;

  // Phase-1 records.
  struct FnInfo {
    Type *OrigRetTy = nullptr;
    unsigned OrigNumParams = 0;
  };
  std::map<Function *, FnInfo> Transformed;
  std::map<FunctionType *, FunctionType *> TypeCache;

  // Phase-2 per-function state.
  std::set<Instruction *> Synthetic;
  Function *CurF = nullptr;
  std::map<Value *, Value *> BoundsOf;
  std::map<Value *, Value *> ConstBoundsCache;
  std::vector<std::pair<PhiInst *, PhiInst *>> PendingPhis; // ptr-phi, b-phi
  Value *NullBounds = nullptr;
  Value *UnboundedBounds = nullptr;
};

//===----------------------------------------------------------------------===//
// Phase 1
//===----------------------------------------------------------------------===//

FunctionType *SoftBoundTransform::transformedType(FunctionType *FTy) {
  auto It = TypeCache.find(FTy);
  if (It != TypeCache.end())
    return It->second;
  std::vector<Type *> Params(FTy->params());
  for (auto *P : FTy->params())
    if (P->isPointer())
      Params.push_back(Ctx.boundsTy());
  Type *Ret = FTy->returnType()->isPointer() ? Ctx.ptrPairTy()
                                             : FTy->returnType();
  FunctionType *NewTy = Ctx.funcTy(Ret, std::move(Params), FTy->isVarArg());
  TypeCache[FTy] = NewTy;
  return NewTy;
}

void SoftBoundTransform::rewriteSignature(Function &F) {
  FnInfo Info;
  Info.OrigRetTy = F.returnType();
  Info.OrigNumParams = F.numArgs();

  FunctionType *NewTy = transformedType(F.functionType());
  // Append one bounds argument per original pointer argument, in order.
  for (unsigned I = 0; I < Info.OrigNumParams; ++I) {
    if (!F.arg(I)->type()->isPointer())
      continue;
    F.appendArg(Ctx.boundsTy(), F.arg(I)->name() + ".bounds", NewTy);
  }
  F.setFunctionType(NewTy);
  M.renameFunction(&F, "_sb_" + F.name());
  F.setTransformed();
  Transformed[&F] = Info;
  ++Stats.FunctionsTransformed;
}

//===----------------------------------------------------------------------===//
// Bounds sources
//===----------------------------------------------------------------------===//

Value *SoftBoundTransform::makeNullBounds() {
  if (!NullBounds) {
    auto *MB = new MakeBoundsInst(Ctx.boundsTy(), M.constI64(0),
                                  M.constI64(0), "nullb");
    Synthetic.insert(MB);
    BasicBlock *Entry = CurF->entry();
    Entry->insertBefore(Entry->begin(), std::unique_ptr<Instruction>(MB));
    NullBounds = MB;
  }
  return NullBounds;
}

Value *SoftBoundTransform::makeUnboundedBounds() {
  if (!UnboundedBounds) {
    auto *MB = new MakeBoundsInst(Ctx.boundsTy(), M.constI64(0),
                                  M.constI64(INT64_MAX), "unboundb");
    Synthetic.insert(MB);
    BasicBlock *Entry = CurF->entry();
    Entry->insertBefore(Entry->begin(), std::unique_ptr<Instruction>(MB));
    UnboundedBounds = MB;
  }
  return UnboundedBounds;
}

Value *SoftBoundTransform::getBounds(Value *V) {
  auto It = BoundsOf.find(V);
  if (It != BoundsOf.end())
    return It->second;

  // Constants: materialize in the entry block once per function.
  auto CIt = ConstBoundsCache.find(V);
  if (CIt != ConstBoundsCache.end())
    return CIt->second;

  BasicBlock *Entry = CurF->entry();
  auto InsertEntry = [&](Instruction *I) {
    Synthetic.insert(I);
    Entry->insertBefore(Entry->begin(), std::unique_ptr<Instruction>(I));
    return I;
  };

  if (auto *G = dyn_cast<GlobalVariable>(V)) {
    // Global objects: base = &g, bound = &g + sizeof(g) (§3.1).
    auto *End = new GEPInst(Ctx.ptrTo(G->valueType()), G->valueType(), G,
                            {M.constI64(1)}, G->name() + ".end");
    auto *MB =
        new MakeBoundsInst(Ctx.boundsTy(), G, End, G->name() + ".bnd");
    InsertEntry(MB);
    InsertEntry(End); // Inserted before MB (both prepend to entry).
    ConstBoundsCache[V] = MB;
    return MB;
  }
  if (auto *F = dyn_cast<Function>(V)) {
    // Function pointers use the base == bound == ptr encoding (§5.2).
    auto *MB = new MakeBoundsInst(Ctx.boundsTy(), F, F, F->name() + ".fb");
    InsertEntry(MB);
    ConstBoundsCache[V] = MB;
    return MB;
  }
  if (isa<ConstantNull>(V) || isa<ConstantUndef>(V)) {
    ConstBoundsCache[V] = makeNullBounds();
    return ConstBoundsCache[V];
  }

  // Non-constant pointer without recorded bounds: conservative null bounds
  // (any dereference traps). This matches the paper's default for pointers
  // manufactured from integers (§5.2).
  return makeNullBounds();
}

//===----------------------------------------------------------------------===//
// Instruction handlers
//===----------------------------------------------------------------------===//

void SoftBoundTransform::handleAlloca(AllocaInst *AI, BasicBlock *BB,
                                      BasicBlock::iterator It) {
  auto Next = std::next(It);
  auto *End = insertBefore(
      BB, Next,
      new GEPInst(Ctx.ptrTo(AI->allocatedType()), AI->allocatedType(), AI,
                  {M.constI64(1)}, AI->name() + ".end"));
  auto *MB = insertBefore(BB, Next,
                          new MakeBoundsInst(Ctx.boundsTy(), AI, End,
                                             AI->name() + ".bnd"));
  BoundsOf[AI] = MB;
}

void SoftBoundTransform::handleLoad(LoadInst *LI, BasicBlock *BB,
                                    BasicBlock::iterator It) {
  Value *Ptr = LI->pointer();
  // Scalar local/global direct accesses are not C-level pointer
  // dereferences; the compiler generates them correctly (§3.1).
  bool DirectScalar = isa<AllocaInst>(Ptr) || isa<GlobalVariable>(Ptr);
  if (!DirectScalar && Cfg.Mode == CheckMode::Full) {
    insertBefore(BB, It,
                 new SpatialCheckInst(Ctx.voidTy(), Ptr, getBounds(Ptr),
                                      LI->type()->sizeInBytes(),
                                      /*IsStore=*/false));
    ++Stats.ChecksInserted;
  }
  if (LI->type()->isPointer()) {
    // §3.2: pointer load pulls bounds from the disjoint metadata space.
    auto *ML = insertBefore(BB, std::next(It),
                            new MetaLoadInst(Ctx.boundsTy(), Ptr,
                                             LI->name() + ".mb"));
    BoundsOf[LI] = ML;
    ++Stats.MetaLoadsInserted;
  }
}

void SoftBoundTransform::handleStore(StoreInst *SI, BasicBlock *BB,
                                     BasicBlock::iterator It) {
  Value *Ptr = SI->pointer();
  bool DirectScalar = isa<AllocaInst>(Ptr) || isa<GlobalVariable>(Ptr);
  if (!DirectScalar && Cfg.Mode != CheckMode::None) {
    insertBefore(BB, It,
                 new SpatialCheckInst(Ctx.voidTy(), Ptr, getBounds(Ptr),
                                      SI->value()->type()->sizeInBytes(),
                                      /*IsStore=*/true));
    ++Stats.ChecksInserted;
  }
  if (SI->value()->type()->isPointer()) {
    // §3.2: pointer store records bounds in the disjoint metadata space.
    insertBefore(BB, std::next(It),
                 new MetaStoreInst(Ctx.voidTy(), Ptr,
                                   getBounds(SI->value())));
    ++Stats.MetaStoresInserted;
  }
}

void SoftBoundTransform::handleGEP(GEPInst *GI, BasicBlock *BB,
                                   BasicBlock::iterator It) {
  // §3.1: pointer arithmetic inherits bounds — except struct-field
  // derivations, which shrink to the field (sub-object protection).
  if (!Cfg.ShrinkBounds || !GI->isStructFieldAccess()) {
    BoundsOf[GI] = getBounds(GI->pointer());
    return;
  }

  // Find the index prefix ending at the last struct-field step; the bounds
  // become [&field, &field + sizeof(field)).
  Type *Cur = GI->sourceType();
  unsigned LastStructStep = 0; // Index position of the last struct step.
  for (unsigned K = 1; K < GI->numIndices(); ++K) {
    if (auto *AT = dyn_cast<ArrayType>(Cur)) {
      Cur = AT->element();
      continue;
    }
    auto *ST = cast<StructType>(Cur);
    unsigned FieldIdx =
        static_cast<unsigned>(cast<ConstantInt>(GI->index(K))->value());
    Cur = ST->field(FieldIdx);
    LastStructStep = K;
  }

  std::vector<Value *> Prefix;
  for (unsigned K = 0; K <= LastStructStep; ++K)
    Prefix.push_back(GI->index(K));
  Type *FieldTy = GEPInst::resultElementType(GI->sourceType(), Prefix);

  auto Next = std::next(It);
  auto *FieldBase = insertBefore(
      BB, Next,
      new GEPInst(Ctx.ptrTo(FieldTy), GI->sourceType(), GI->pointer(),
                  Prefix, GI->name() + ".fbase"));
  auto *FieldEnd = insertBefore(
      BB, Next,
      new GEPInst(Ctx.ptrTo(FieldTy), FieldTy, FieldBase, {M.constI64(1)},
                  GI->name() + ".fend"));
  auto *MB = insertBefore(BB, Next,
                          new MakeBoundsInst(Ctx.boundsTy(), FieldBase,
                                             FieldEnd, GI->name() + ".fbnd"));
  BoundsOf[GI] = MB;
  ++Stats.BoundsShrunk;
}

void SoftBoundTransform::handleCast(CastInst *CI, BasicBlock *BB,
                                    BasicBlock::iterator It) {
  if (!CI->type()->isPointer())
    return;
  if (CI->opcode() == CastInst::Op::Bitcast) {
    // Arbitrary pointer casts keep their bounds — the disjoint metadata
    // cannot be coerced (§5.2 "arbitrary casts and unions").
    BoundsOf[CI] = getBounds(CI->source());
    return;
  }
  // inttoptr: null bounds by default; __setbound is the escape hatch (§5.2).
  BoundsOf[CI] = makeNullBounds();
}

void SoftBoundTransform::handleSelect(SelectInst *SI, BasicBlock *BB,
                                      BasicBlock::iterator It) {
  if (!SI->type()->isPointer())
    return;
  auto *BSel = insertBefore(
      BB, std::next(It),
      new SelectInst(SI->condition(), getBounds(SI->ifTrue()),
                     getBounds(SI->ifFalse()), SI->name() + ".bsel"));
  BoundsOf[SI] = BSel;
}

void SoftBoundTransform::handlePhi(PhiInst *PI, BasicBlock *BB,
                                   BasicBlock::iterator It) {
  if (!PI->type()->isPointer())
    return;
  // Create the bounds phi now; fill incoming values after the full walk.
  auto *BPhi = new PhiInst(Ctx.boundsTy(), PI->name() + ".bphi");
  Synthetic.insert(BPhi);
  BB->insertBefore(std::next(It), std::unique_ptr<Instruction>(BPhi));
  BoundsOf[PI] = BPhi;
  PendingPhis.emplace_back(PI, BPhi);
}

void SoftBoundTransform::handleRet(RetInst *RI, BasicBlock *BB,
                                   BasicBlock::iterator It) {
  const FnInfo &Info = Transformed.at(CurF);
  if (!Info.OrigRetTy->isPointer() || !RI->hasValue())
    return;
  Value *V = RI->value();
  auto *Pack = insertBefore(BB, It,
                            new PackPBInst(Ctx.ptrPairTy(), V, getBounds(V),
                                           "retpp"));
  RI->setOp(0, Pack);
}

Function *SoftBoundTransform::getWrapper(const std::string &Name, Type *Ret,
                                         std::vector<Type *> Params) {
  if (Function *F = M.getFunction(Name))
    return F;
  return M.createFunction(Name, Ctx.funcTy(Ret, std::move(Params)),
                          /*Builtin=*/true);
}

BasicBlock::iterator
SoftBoundTransform::handleBuiltinCall(CallInst *CI, Function *Callee,
                                      BasicBlock *BB,
                                      BasicBlock::iterator It) {
  const std::string &Name = Callee->name();
  Type *I8P = Ctx.ptrTo(Ctx.i8());
  Type *BT = Ctx.boundsTy();
  auto Next = std::next(It);

  auto ReplaceCall = [&](Function *NewCallee,
                         std::vector<Value *> Args) -> CallInst * {
    auto *NewCI = new CallInst(NewCallee->functionType(), NewCallee,
                               std::move(Args),
                               NewCallee->functionType()->returnType(),
                               CI->name());
    insertBefore(BB, It, NewCI);
    CurF->replaceAllUsesWith(CI, NewCI);
    return NewCI;
  };

  if (Name == "malloc") {
    // §3.1 "creating pointers": bounds from the allocation size, null
    // bounds when malloc fails.
    Value *Size = CI->arg(0);
    auto *End = insertBefore(BB, Next,
                             new GEPInst(cast<PointerType>(I8P), Ctx.i8(), CI,
                                         {Size}, "m.end"));
    auto *MB = insertBefore(
        BB, Next, new MakeBoundsInst(BT, CI, End, "m.bnd"));
    auto *IsNull = insertBefore(
        BB, Next,
        new ICmpInst(ICmpInst::Pred::EQ, CI,
                     M.nullPtr(cast<PointerType>(CI->type())), Ctx.i1(),
                     "m.isnull"));
    auto *Sel = insertBefore(
        BB, Next,
        new SelectInst(IsNull, makeNullBounds(), MB, "m.bsel"));
    BoundsOf[CI] = Sel;
    return Next;
  }
  if (Name == "free")
    return Next; // The runtime clears metadata on free (§5.2).

  if (Name == "memcpy") {
    Value *Dst = CI->arg(0), *Src = CI->arg(1), *N = CI->arg(2);
    // §5.2 inference: look through the cast at the call site to decide
    // whether the copied data can contain pointers.
    bool MayHavePointers = true;
    if (Cfg.InferMemcpyPointerFree) {
      Value *Probe = Src;
      if (auto *BC = dyn_cast<CastInst>(Probe);
          BC && BC->opcode() == CastInst::Op::Bitcast)
        Probe = BC->source();
      if (auto *PT = dyn_cast<PointerType>(Probe->type()))
        MayHavePointers = typeContainsPointer(PT->pointee());
    }
    Function *W = getWrapper(MayHavePointers ? "_sb_memcpy"
                                             : "_sb_memcpy_nometa",
                             I8P, {I8P, I8P, Ctx.i64(), BT, BT});
    CallInst *NewCI =
        ReplaceCall(W, {Dst, Src, N, getBounds(Dst), getBounds(Src)});
    BoundsOf[NewCI] = getBounds(Dst);
    ++Stats.CallsRewritten;
    return BB->erase(It);
  }
  if (Name == "memset") {
    Value *Dst = CI->arg(0);
    Function *W =
        getWrapper("_sb_memset", I8P, {I8P, Ctx.i32(), Ctx.i64(), BT});
    CallInst *NewCI =
        ReplaceCall(W, {Dst, CI->arg(1), CI->arg(2), getBounds(Dst)});
    BoundsOf[NewCI] = getBounds(Dst);
    ++Stats.CallsRewritten;
    return BB->erase(It);
  }
  if (Name == "strcpy" || Name == "strcat") {
    Value *Dst = CI->arg(0), *Src = CI->arg(1);
    Function *W = getWrapper("_sb_" + Name, I8P, {I8P, I8P, BT, BT});
    CallInst *NewCI =
        ReplaceCall(W, {Dst, Src, getBounds(Dst), getBounds(Src)});
    BoundsOf[NewCI] = getBounds(Dst);
    ++Stats.CallsRewritten;
    return BB->erase(It);
  }
  if (Name == "strcmp") {
    Function *W = getWrapper("_sb_strcmp", Ctx.i32(), {I8P, I8P, BT, BT});
    ReplaceCall(W, {CI->arg(0), CI->arg(1), getBounds(CI->arg(0)),
                    getBounds(CI->arg(1))});
    ++Stats.CallsRewritten;
    return BB->erase(It);
  }
  if (Name == "strlen") {
    Function *W = getWrapper("_sb_strlen", Ctx.i64(), {I8P, BT});
    ReplaceCall(W, {CI->arg(0), getBounds(CI->arg(0))});
    ++Stats.CallsRewritten;
    return BB->erase(It);
  }
  if (Name == "setjmp" || Name == "longjmp") {
    // jmp_buf is written (setjmp) / read (longjmp) as a 32-byte object.
    bool IsStore = Name == "setjmp";
    if (Cfg.Mode == CheckMode::Full ||
        (IsStore && Cfg.Mode == CheckMode::StoreOnly)) {
      insertBefore(BB, It,
                   new SpatialCheckInst(Ctx.voidTy(), CI->arg(0),
                                        getBounds(CI->arg(0)), 32, IsStore));
      ++Stats.ChecksInserted;
    }
    return Next;
  }
  if (Name == "__setbound") {
    // setbound(p, n): p with bounds [p, p+n) (§5.2 escape hatch).
    Value *P = CI->arg(0);
    auto *End = insertBefore(BB, Next,
                             new GEPInst(cast<PointerType>(I8P), Ctx.i8(), CI,
                                         {CI->arg(1)}, "sb.end"));
    auto *MB = insertBefore(BB, Next,
                            new MakeBoundsInst(BT, CI, End, "sb.bnd"));
    (void)P;
    BoundsOf[CI] = MB;
    return Next;
  }
  if (Name == "__unbound") {
    BoundsOf[CI] = makeUnboundedBounds();
    return Next;
  }

  // Remaining builtins (print_*, exit, sb_rand, …) take no checked
  // pointers; pointer results (none today) would get null bounds.
  if (CI->type()->isPointer())
    BoundsOf[CI] = makeNullBounds();
  return Next;
}

BasicBlock::iterator SoftBoundTransform::handleCall(CallInst *CI,
                                                    BasicBlock *BB,
                                                    BasicBlock::iterator It) {
  Function *Callee = CI->calledFunction();
  if (Callee && (Callee->isBuiltin() || !Callee->isDefinition()))
    return handleBuiltinCall(CI, Callee, BB, It);

  // Indirect calls are checked against the function-pointer encoding.
  if (!Callee && Cfg.CheckFunctionPointers && Cfg.Mode != CheckMode::None) {
    insertBefore(BB, It,
                 new FuncPtrCheckInst(Ctx.voidTy(), CI->callee(),
                                      getBounds(CI->callee())));
    ++Stats.FuncPtrChecksInserted;
  }

  // Build the transformed argument list: originals, then bounds for each
  // pointer argument in order (§3.3).
  FunctionType *OldTy = CI->calleeType();
  FunctionType *NewTy =
      Callee ? Callee->functionType() : transformedType(OldTy);

  std::vector<Value *> Args;
  for (unsigned I = 0; I < CI->numArgs(); ++I)
    Args.push_back(CI->arg(I));
  for (unsigned I = 0; I < CI->numArgs(); ++I)
    if (CI->arg(I)->type()->isPointer())
      Args.push_back(getBounds(CI->arg(I)));

  Type *NewRetTy = NewTy->returnType();
  auto *NewCI = new CallInst(NewTy, CI->callee(), std::move(Args), NewRetTy,
                             CI->name());
  insertBefore(BB, It, NewCI);
  ++Stats.CallsRewritten;

  if (OldTy->returnType()->isPointer()) {
    auto *EP = insertBefore(
        BB, It,
        new ExtractPtrInst(cast<PointerType>(OldTy->returnType()), NewCI,
                           CI->name() + ".p"));
    auto *EB = insertBefore(BB, It,
                            new ExtractBoundsInst(Ctx.boundsTy(), NewCI,
                                                  CI->name() + ".b"));
    CurF->replaceAllUsesWith(CI, EP);
    BoundsOf[EP] = EB;
  } else {
    CurF->replaceAllUsesWith(CI, NewCI);
  }
  return BB->erase(It);
}

//===----------------------------------------------------------------------===//
// Per-function driver
//===----------------------------------------------------------------------===//

void SoftBoundTransform::instrumentFunction(Function &F) {
  CurF = &F;
  Synthetic.clear();
  BoundsOf.clear();
  ConstBoundsCache.clear();
  PendingPhis.clear();
  NullBounds = nullptr;
  UnboundedBounds = nullptr;

  const FnInfo &Info = Transformed.at(&F);

  // Bind pointer parameters to their bounds parameters.
  unsigned BoundsIdx = Info.OrigNumParams;
  for (unsigned I = 0; I < Info.OrigNumParams; ++I) {
    if (!F.arg(I)->type()->isPointer())
      continue;
    BoundsOf[F.arg(I)] = F.arg(BoundsIdx++);
  }

  // Walk blocks in reverse postorder so defs are seen before (non-phi)
  // uses; SSA dominance guarantees operand bounds exist when needed.
  DomTree DT(F);
  for (BasicBlock *BB : DT.rpo()) {
    for (auto It = BB->begin(); It != BB->end();) {
      Instruction *I = It->get();
      if (Synthetic.count(I)) {
        ++It;
        continue;
      }
      switch (I->kind()) {
      case ValueKind::Alloca:
        handleAlloca(cast<AllocaInst>(I), BB, It);
        ++It;
        break;
      case ValueKind::Load:
        handleLoad(cast<LoadInst>(I), BB, It);
        ++It;
        break;
      case ValueKind::Store:
        handleStore(cast<StoreInst>(I), BB, It);
        ++It;
        break;
      case ValueKind::GEP:
        handleGEP(cast<GEPInst>(I), BB, It);
        ++It;
        break;
      case ValueKind::Cast:
        handleCast(cast<CastInst>(I), BB, It);
        ++It;
        break;
      case ValueKind::Select:
        handleSelect(cast<SelectInst>(I), BB, It);
        ++It;
        break;
      case ValueKind::Phi:
        handlePhi(cast<PhiInst>(I), BB, It);
        ++It;
        break;
      case ValueKind::Ret:
        handleRet(cast<RetInst>(I), BB, It);
        ++It;
        break;
      case ValueKind::Call:
        It = handleCall(cast<CallInst>(I), BB, It);
        break;
      default:
        ++It;
        break;
      }
    }
  }

  // Fill the deferred bounds phis.
  for (auto &[PtrPhi, BPhi] : PendingPhis)
    for (unsigned K = 0; K < PtrPhi->numIncoming(); ++K)
      BPhi->addIncoming(getBounds(PtrPhi->incomingValue(K)),
                        PtrPhi->incomingBlock(K));
}

//===----------------------------------------------------------------------===//
// Module driver
//===----------------------------------------------------------------------===//

SoftBoundStats SoftBoundTransform::run() {
  // Phase 1: rewrite all signatures first so call rewrites see final types.
  std::vector<Function *> Work;
  for (const auto &F : M.functions()) {
    if (F->isBuiltin() || !F->isDefinition() || F->isTransformed())
      continue;
    Work.push_back(F.get());
  }
  for (Function *F : Work)
    rewriteSignature(*F);

  // Phase 2: instrument bodies.
  for (Function *F : Work)
    instrumentFunction(*F);

  // Deprecated CCured-SAFE flag: forward to the opt/checks/ SafeElision
  // sub-pass, which now owns the logic (preserving the old elide-before-
  // reoptimize ordering).
  if (Cfg.ElideSafePointerChecks) {
    CheckOptStats ES;
    for (Function *F : Work)
      checkopt::elideSafeChecks(*F, ES);
    Stats.ChecksElidedStatically += ES.SafeChecksElided;
    // Keep the seed meaning of ChecksInserted under this flag: checks that
    // instrumentation emitted *and kept* (elided ones were never counted
    // when the proof ran inline).
    Stats.ChecksInserted -= ES.SafeChecksElided;
    if (!Cfg.ReoptimizeAfter)
      for (Function *F : Work)
        dce(*F); // Sweep the bounds arithmetic the deletions stranded.
  }

  // Phase 3: re-optimize (the paper re-runs LLVM's optimizers after
  // instrumentation, §6.1).
  if (Cfg.ReoptimizeAfter)
    Stats.ChecksEliminated = reoptimizeInstrumented(M);
  return Stats;
}

} // namespace

SoftBoundStats softbound::applySoftBound(Module &M,
                                         const SoftBoundConfig &Cfg) {
  SoftBoundTransform T(M, Cfg);
  return T.run();
}

//===----------------------------------------------------------------------===//
// `_sb_` calling-convention queries (§3.3)
//===----------------------------------------------------------------------===//

unsigned softbound::sbabi::originalParamCount(const Function &F) {
  if (!F.isTransformed())
    return F.numArgs();
  // Bounds parameters are appended, and the source language has no bounds
  // type, so the original list is everything before the trailing boundsTy
  // run.
  unsigned N = F.numArgs();
  while (N > 0 && F.arg(N - 1)->type()->isBounds())
    --N;
  return N;
}

int softbound::sbabi::boundsParamIndex(const Function &F, unsigned PtrParam) {
  if (!F.isTransformed())
    return -1;
  unsigned Orig = originalParamCount(F);
  if (PtrParam >= Orig || !F.arg(PtrParam)->type()->isPointer())
    return -1;
  unsigned Rank = 0; // Pointer parameters preceding PtrParam.
  for (unsigned I = 0; I < PtrParam; ++I)
    if (F.arg(I)->type()->isPointer())
      ++Rank;
  unsigned Idx = Orig + Rank;
  return Idx < F.numArgs() ? static_cast<int>(Idx) : -1;
}

Value *softbound::sbabi::passedBounds(const CallInst &Call,
                                      const Function &Callee,
                                      unsigned ArgIdx) {
  int Idx = boundsParamIndex(Callee, ArgIdx);
  if (Idx < 0 || Call.numArgs() != Callee.numArgs())
    return nullptr;
  return Call.arg(static_cast<unsigned>(Idx));
}
