//===- formal/Semantics.h - §4 operational semantics ------------*- C++ -*-===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An executable model of the paper's §4 formalism: the straight-line C
/// fragment (lhs/rhs expressions, assignments, malloc, address-of, casts,
/// named structs), the metadata-propagating operational semantics
/// (values v(b,e)), the well-formed-environment predicate, and executable
/// statements of the Preservation and Progress theorems, checked by
/// property-based testing over randomly generated well-formed programs.
///
/// Modelling choice: locations are word-granular (sizeof(int) =
/// sizeof(ptr) = 1 word; struct fields at consecutive words), matching the
/// abstract "addresses and locations" view of the Coq development.
///
//===----------------------------------------------------------------------===//

#ifndef SOFTBOUND_FORMAL_SEMANTICS_H
#define SOFTBOUND_FORMAL_SEMANTICS_H

#include "support/RNG.h"

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace softbound {
namespace formal {

//===----------------------------------------------------------------------===//
// Syntax (§4.1)
//===----------------------------------------------------------------------===//

/// Pointer types p ::= a | s | n | void ; atomic types a ::= int | p*.
struct FType {
  enum Kind { Int, Ptr, Struct, Void } K = Int;
  /// Pointee for Ptr.
  std::shared_ptr<FType> Inner;
  /// Field types for Struct (named structures are expanded on use; the
  /// model unfolds one level, which suffices for the checked properties).
  std::vector<std::pair<std::string, std::shared_ptr<FType>>> Fields;

  bool isAtomic() const { return K == Int || K == Ptr; }
  /// Size in words.
  uint64_t size() const {
    if (K == Struct) {
      uint64_t S = 0;
      for (auto &F : Fields)
        S += F.second->size();
      return S ? S : 1;
    }
    return K == Void ? 0 : 1;
  }
};

std::shared_ptr<FType> intTy();
std::shared_ptr<FType> ptrTy(std::shared_ptr<FType> Inner);
std::shared_ptr<FType>
structTy(std::vector<std::pair<std::string, std::shared_ptr<FType>>> Fields);

/// LHS expressions: x | *lhs | lhs.id | lhs->id.
struct LHS {
  enum Kind { Var, Deref, Dot, Arrow } K = Var;
  std::string Name; ///< Variable or field name.
  std::shared_ptr<LHS> Base;
};

/// RHS expressions: i | rhs+rhs | lhs | &lhs | (a)rhs | sizeof(a) |
/// malloc(rhs).
struct RHS {
  enum Kind { Const, Add, Lhs, AddrOf, Cast, SizeOf, Malloc } K = Const;
  int64_t I = 0;
  std::shared_ptr<RHS> A, B;
  std::shared_ptr<LHS> L;
  std::shared_ptr<FType> Ty; ///< Cast target / sizeof argument.
};

/// Commands: c ; c | lhs = rhs.
struct Cmd {
  enum Kind { Seq, Assign } K = Assign;
  std::shared_ptr<Cmd> C1, C2;
  std::shared_ptr<LHS> L;
  std::shared_ptr<RHS> R;
};

std::shared_ptr<LHS> var(const std::string &N);
std::shared_ptr<LHS> deref(std::shared_ptr<LHS> B);
std::shared_ptr<LHS> dot(std::shared_ptr<LHS> B, const std::string &F);
std::shared_ptr<LHS> arrow(std::shared_ptr<LHS> B, const std::string &F);
std::shared_ptr<RHS> constant(int64_t V);
std::shared_ptr<RHS> add(std::shared_ptr<RHS> A, std::shared_ptr<RHS> B);
std::shared_ptr<RHS> lhsExpr(std::shared_ptr<LHS> L);
std::shared_ptr<RHS> addrOf(std::shared_ptr<LHS> L);
std::shared_ptr<RHS> castTo(std::shared_ptr<FType> T, std::shared_ptr<RHS> R);
std::shared_ptr<RHS> mallocOf(std::shared_ptr<RHS> N);
std::shared_ptr<Cmd> assign(std::shared_ptr<LHS> L, std::shared_ptr<RHS> R);
std::shared_ptr<Cmd> seq(std::shared_ptr<Cmd> A, std::shared_ptr<Cmd> B);

//===----------------------------------------------------------------------===//
// Environments (§4.2)
//===----------------------------------------------------------------------===//

/// A value with its base/bound metadata: v(b,e).
struct MValue {
  int64_t V = 0;
  uint64_t Base = 0, Bound = 0;
};

/// One memory cell (word-granular).
struct Cell {
  MValue D;
};

/// The environment E = (S, M): stack frame + partial memory.
struct Env {
  /// Variable name -> (address, atomic type).
  std::map<std::string, std::pair<uint64_t, std::shared_ptr<FType>>> Stack;
  /// Partial memory: only allocated locations are present.
  std::map<uint64_t, Cell> Mem;
  uint64_t NextAlloc = 0x1000;
  uint64_t MaxAddr = 0x100000;

  bool allocated(uint64_t L) const { return Mem.count(L) != 0; }
};

/// The Table-2 primitives.
bool readMem(const Env &E, uint64_t L, MValue &Out);
bool writeMem(Env &E, uint64_t L, const MValue &D);
/// Returns 0 on out-of-memory.
uint64_t mallocMem(Env &E, uint64_t Words);

//===----------------------------------------------------------------------===//
// Evaluation (§4.2) — results are values, Abort, or OutOfMem; a separate
// Stuck outcome marks exactly the cases the paper's semantics leaves
// undefined (Progress proves it is unreachable from well-formed states).
//===----------------------------------------------------------------------===//

enum class Outcome { Ok, Abort, OutOfMem, Stuck };

struct LResult {
  Outcome O = Outcome::Stuck;
  uint64_t Addr = 0;
  std::shared_ptr<FType> Ty;
};

struct RResult {
  Outcome O = Outcome::Stuck;
  MValue V;
  std::shared_ptr<FType> Ty;
};

LResult evalLHS(Env &E, const LHS &L);
RResult evalRHS(Env &E, const RHS &R);
Outcome evalCmd(Env &E, const Cmd &C);

//===----------------------------------------------------------------------===//
// Well-formedness (§4.3)
//===----------------------------------------------------------------------===//

/// `M |-D d(b,e)`: b = 0, or every location in [b, e) is allocated and
/// minAddr <= b <= e < maxAddr.
bool wfValue(const Env &E, const MValue &D);

/// `|-M M`: every allocated location's contents are well formed.
bool wfMem(const Env &E);

/// Well-formed stack: every variable maps to an allocated address.
bool wfStack(const Env &E);

/// `|-E E`.
bool wfEnv(const Env &E);

/// `S |-c c`: the command typechecks against the stack frame's types.
bool wfCmd(const Env &E, const Cmd &C);

//===----------------------------------------------------------------------===//
// Theorem checking (§4.3)
//===----------------------------------------------------------------------===//

/// One theorem-check run over a program.
struct TheoremCheck {
  bool PreservationHolds = true; ///< wfEnv preserved by evaluation.
  bool ProgressHolds = true;     ///< Never Stuck from a well-formed state.
  Outcome Result = Outcome::Ok;
};

/// Evaluates \p C from \p E, checking Preservation and Progress.
TheoremCheck checkTheorems(Env E, const Cmd &C);

/// Builds a well-formed initial environment with int/ptr/struct variables.
Env makeInitialEnv(RNG &R);

/// Generates a random well-typed command of roughly \p Size assignments.
std::shared_ptr<Cmd> generateProgram(RNG &R, const Env &E, int Size);

} // namespace formal
} // namespace softbound

#endif // SOFTBOUND_FORMAL_SEMANTICS_H
