//===- formal/Semantics.cpp - §4 operational semantics ----------------------===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "formal/Semantics.h"

using namespace softbound;
using namespace softbound::formal;

//===----------------------------------------------------------------------===//
// Constructors
//===----------------------------------------------------------------------===//

std::shared_ptr<FType> softbound::formal::intTy() {
  auto T = std::make_shared<FType>();
  T->K = FType::Int;
  return T;
}

std::shared_ptr<FType> softbound::formal::ptrTy(std::shared_ptr<FType> In) {
  auto T = std::make_shared<FType>();
  T->K = FType::Ptr;
  T->Inner = std::move(In);
  return T;
}

std::shared_ptr<FType> softbound::formal::structTy(
    std::vector<std::pair<std::string, std::shared_ptr<FType>>> Fields) {
  auto T = std::make_shared<FType>();
  T->K = FType::Struct;
  T->Fields = std::move(Fields);
  return T;
}

std::shared_ptr<LHS> softbound::formal::var(const std::string &N) {
  auto L = std::make_shared<LHS>();
  L->K = LHS::Var;
  L->Name = N;
  return L;
}

std::shared_ptr<LHS> softbound::formal::deref(std::shared_ptr<LHS> B) {
  auto L = std::make_shared<LHS>();
  L->K = LHS::Deref;
  L->Base = std::move(B);
  return L;
}

std::shared_ptr<LHS> softbound::formal::dot(std::shared_ptr<LHS> B,
                                            const std::string &F) {
  auto L = std::make_shared<LHS>();
  L->K = LHS::Dot;
  L->Base = std::move(B);
  L->Name = F;
  return L;
}

std::shared_ptr<LHS> softbound::formal::arrow(std::shared_ptr<LHS> B,
                                              const std::string &F) {
  auto L = std::make_shared<LHS>();
  L->K = LHS::Arrow;
  L->Base = std::move(B);
  L->Name = F;
  return L;
}

std::shared_ptr<RHS> softbound::formal::constant(int64_t V) {
  auto R = std::make_shared<RHS>();
  R->K = RHS::Const;
  R->I = V;
  return R;
}

std::shared_ptr<RHS> softbound::formal::add(std::shared_ptr<RHS> A,
                                            std::shared_ptr<RHS> B) {
  auto R = std::make_shared<RHS>();
  R->K = RHS::Add;
  R->A = std::move(A);
  R->B = std::move(B);
  return R;
}

std::shared_ptr<RHS> softbound::formal::lhsExpr(std::shared_ptr<LHS> L) {
  auto R = std::make_shared<RHS>();
  R->K = RHS::Lhs;
  R->L = std::move(L);
  return R;
}

std::shared_ptr<RHS> softbound::formal::addrOf(std::shared_ptr<LHS> L) {
  auto R = std::make_shared<RHS>();
  R->K = RHS::AddrOf;
  R->L = std::move(L);
  return R;
}

std::shared_ptr<RHS> softbound::formal::castTo(std::shared_ptr<FType> T,
                                               std::shared_ptr<RHS> R0) {
  auto R = std::make_shared<RHS>();
  R->K = RHS::Cast;
  R->Ty = std::move(T);
  R->A = std::move(R0);
  return R;
}

std::shared_ptr<RHS> softbound::formal::mallocOf(std::shared_ptr<RHS> N) {
  auto R = std::make_shared<RHS>();
  R->K = RHS::Malloc;
  R->A = std::move(N);
  return R;
}

std::shared_ptr<Cmd> softbound::formal::assign(std::shared_ptr<LHS> L,
                                               std::shared_ptr<RHS> R) {
  auto C = std::make_shared<Cmd>();
  C->K = Cmd::Assign;
  C->L = std::move(L);
  C->R = std::move(R);
  return C;
}

std::shared_ptr<Cmd> softbound::formal::seq(std::shared_ptr<Cmd> A,
                                            std::shared_ptr<Cmd> B) {
  auto C = std::make_shared<Cmd>();
  C->K = Cmd::Seq;
  C->C1 = std::move(A);
  C->C2 = std::move(B);
  return C;
}

//===----------------------------------------------------------------------===//
// Memory primitives (Table 2, with the axioms realized directly)
//===----------------------------------------------------------------------===//

bool softbound::formal::readMem(const Env &E, uint64_t L, MValue &Out) {
  auto It = E.Mem.find(L);
  if (It == E.Mem.end())
    return false; // Access to unallocated memory: read fails.
  Out = It->second.D;
  return true;
}

bool softbound::formal::writeMem(Env &E, uint64_t L, const MValue &D) {
  auto It = E.Mem.find(L);
  if (It == E.Mem.end())
    return false;
  It->second.D = D;
  return true;
}

uint64_t softbound::formal::mallocMem(Env &E, uint64_t Words) {
  if (Words == 0)
    Words = 1;
  if (E.NextAlloc + Words >= E.MaxAddr)
    return 0; // Out of memory.
  uint64_t Base = E.NextAlloc;
  E.NextAlloc += Words;
  // "malloc returns a region that was previously unallocated": fresh cells.
  for (uint64_t I = 0; I < Words; ++I)
    E.Mem[Base + I] = Cell();
  return Base;
}

//===----------------------------------------------------------------------===//
// Typing helpers
//===----------------------------------------------------------------------===//

namespace {

bool sameTy(const FType &A, const FType &B) {
  if (A.K != B.K)
    return false;
  switch (A.K) {
  case FType::Int:
  case FType::Void:
    return true;
  case FType::Ptr:
    return sameTy(*A.Inner, *B.Inner);
  case FType::Struct: {
    if (A.Fields.size() != B.Fields.size())
      return false;
    for (size_t I = 0; I < A.Fields.size(); ++I)
      if (A.Fields[I].first != B.Fields[I].first ||
          !sameTy(*A.Fields[I].second, *B.Fields[I].second))
        return false;
    return true;
  }
  }
  return false;
}

/// Static type of an lhs, or null if ill-typed. Mirrors `S |- lhs : a`.
std::shared_ptr<FType> typeOfLHS(const Env &E, const LHS &L) {
  switch (L.K) {
  case LHS::Var: {
    auto It = E.Stack.find(L.Name);
    return It == E.Stack.end() ? nullptr : It->second.second;
  }
  case LHS::Deref: {
    auto BT = typeOfLHS(E, *L.Base);
    if (!BT || BT->K != FType::Ptr || !BT->Inner->isAtomic())
      return nullptr;
    return BT->Inner;
  }
  case LHS::Dot: {
    auto BT = typeOfLHS(E, *L.Base);
    if (!BT || BT->K != FType::Struct)
      return nullptr;
    for (auto &F : BT->Fields)
      if (F.first == L.Name)
        return F.second;
    return nullptr;
  }
  case LHS::Arrow: {
    auto BT = typeOfLHS(E, *L.Base);
    if (!BT || BT->K != FType::Ptr || BT->Inner->K != FType::Struct)
      return nullptr;
    for (auto &F : BT->Inner->Fields)
      if (F.first == L.Name)
        return F.second;
    return nullptr;
  }
  }
  return nullptr;
}

std::shared_ptr<FType> typeOfRHS(const Env &E, const RHS &R) {
  switch (R.K) {
  case RHS::Const:
  case RHS::SizeOf:
    return intTy();
  case RHS::Add: {
    auto A = typeOfRHS(E, *R.A);
    auto B = typeOfRHS(E, *R.B);
    if (!A || !B)
      return nullptr;
    // int + int, or ptr + int (pointer arithmetic).
    if (A->K == FType::Int && B->K == FType::Int)
      return A;
    if (A->K == FType::Ptr && B->K == FType::Int)
      return A;
    return nullptr;
  }
  case RHS::Lhs:
    return typeOfLHS(E, *R.L);
  case RHS::AddrOf: {
    auto T = typeOfLHS(E, *R.L);
    return T ? ptrTy(T) : nullptr;
  }
  case RHS::Cast: {
    auto T = typeOfRHS(E, *R.A);
    if (!T || !R.Ty || !R.Ty->isAtomic())
      return nullptr;
    return R.Ty; // Arbitrary casts between atomic types are permitted.
  }
  case RHS::Malloc: {
    auto T = typeOfRHS(E, *R.A);
    if (!T || T->K != FType::Int)
      return nullptr;
    return ptrTy(intTy()); // Model: malloc yields int* (cast as needed).
  }
  }
  return nullptr;
}

} // namespace

//===----------------------------------------------------------------------===//
// Evaluation (§4.2)
//===----------------------------------------------------------------------===//

LResult softbound::formal::evalLHS(Env &E, const LHS &L) {
  LResult Out;
  switch (L.K) {
  case LHS::Var: {
    auto It = E.Stack.find(L.Name);
    if (It == E.Stack.end())
      return Out; // Stuck: unknown variable.
    Out.O = Outcome::Ok;
    Out.Addr = It->second.first;
    Out.Ty = It->second.second;
    return Out;
  }
  case LHS::Deref: {
    LResult B = evalLHS(E, *L.Base);
    if (B.O != Outcome::Ok) {
      Out.O = B.O;
      return Out;
    }
    if (!B.Ty || B.Ty->K != FType::Ptr)
      return Out; // Stuck: dereference of non-pointer.
    MValue D;
    if (!readMem(E, B.Addr, D))
      return Out; // Stuck: the underlying location vanished.
    // The two §4.2 rules: check succeeds -> value; fails -> Abort.
    uint64_t V = static_cast<uint64_t>(D.V);
    uint64_t Size = B.Ty->Inner->size();
    // The Coq model works over unbounded naturals; a 64-bit realization
    // must also reject v + size wrapping past 2^64 (found by the property
    // sweep: p = q + (-1) on a null-bounds pointer wraps the check).
    if (!(D.Base <= V && V + Size >= V && V + Size <= D.Bound)) {
      Out.O = Outcome::Abort;
      return Out;
    }
    Out.O = Outcome::Ok;
    Out.Addr = V;
    Out.Ty = B.Ty->Inner;
    return Out;
  }
  case LHS::Dot: {
    LResult B = evalLHS(E, *L.Base);
    if (B.O != Outcome::Ok) {
      Out.O = B.O;
      return Out;
    }
    if (!B.Ty || B.Ty->K != FType::Struct)
      return Out;
    uint64_t Off = 0;
    for (auto &F : B.Ty->Fields) {
      if (F.first == L.Name) {
        Out.O = Outcome::Ok;
        Out.Addr = B.Addr + Off;
        Out.Ty = F.second;
        return Out;
      }
      Off += F.second->size();
    }
    return Out; // Stuck: no such field.
  }
  case LHS::Arrow: {
    // lhs->id == (*lhs).id
    LHS D;
    D.K = LHS::Deref;
    D.Base = L.Base;
    LHS Dotted;
    Dotted.K = LHS::Dot;
    Dotted.Base = std::make_shared<LHS>(D);
    Dotted.Name = L.Name;
    // Deref through a pointer-to-struct needs its own rule because Deref
    // above requires an atomic pointee; inline it here.
    LResult B = evalLHS(E, *L.Base);
    if (B.O != Outcome::Ok) {
      Out.O = B.O;
      return Out;
    }
    if (!B.Ty || B.Ty->K != FType::Ptr || B.Ty->Inner->K != FType::Struct)
      return Out;
    MValue DV;
    if (!readMem(E, B.Addr, DV))
      return Out;
    uint64_t V = static_cast<uint64_t>(DV.V);
    uint64_t Size = B.Ty->Inner->size();
    if (!(DV.Base <= V && V + Size >= V && V + Size <= DV.Bound)) {
      Out.O = Outcome::Abort;
      return Out;
    }
    uint64_t Off = 0;
    for (auto &F : B.Ty->Inner->Fields) {
      if (F.first == L.Name) {
        Out.O = Outcome::Ok;
        Out.Addr = V + Off;
        Out.Ty = F.second;
        return Out;
      }
      Off += F.second->size();
    }
    return Out;
  }
  }
  return Out;
}

RResult softbound::formal::evalRHS(Env &E, const RHS &R) {
  RResult Out;
  switch (R.K) {
  case RHS::Const:
    Out.O = Outcome::Ok;
    Out.V = MValue{R.I, 0, 0}; // Integers carry null metadata.
    Out.Ty = intTy();
    return Out;
  case RHS::SizeOf:
    Out.O = Outcome::Ok;
    Out.V = MValue{static_cast<int64_t>(R.Ty ? R.Ty->size() : 1), 0, 0};
    Out.Ty = intTy();
    return Out;
  case RHS::Add: {
    RResult A = evalRHS(E, *R.A);
    if (A.O != Outcome::Ok)
      return A;
    RResult B = evalRHS(E, *R.B);
    if (B.O != Outcome::Ok)
      return B;
    if (!A.Ty || !B.Ty || B.Ty->K != FType::Int)
      return Out;
    Out.O = Outcome::Ok;
    // Pointer arithmetic propagates the metadata (§3.1).
    Out.V = MValue{A.V.V + B.V.V * static_cast<int64_t>(
                                       A.Ty->K == FType::Ptr
                                           ? A.Ty->Inner->size()
                                           : 1),
                   A.V.Base, A.V.Bound};
    Out.Ty = A.Ty;
    return Out;
  }
  case RHS::Lhs: {
    LResult L = evalLHS(E, *R.L);
    if (L.O != Outcome::Ok) {
      Out.O = L.O;
      return Out;
    }
    if (!L.Ty->isAtomic())
      return Out; // Stuck: reading a whole struct is not in the fragment.
    MValue D;
    if (!readMem(E, L.Addr, D))
      return Out; // Stuck: unallocated — Progress says unreachable.
    Out.O = Outcome::Ok;
    Out.V = D;
    Out.Ty = L.Ty;
    return Out;
  }
  case RHS::AddrOf: {
    LResult L = evalLHS(E, *R.L);
    if (L.O != Outcome::Ok) {
      Out.O = L.O;
      return Out;
    }
    Out.O = Outcome::Ok;
    // &lhs has the bounds of the object it points into (§3.1).
    Out.V = MValue{static_cast<int64_t>(L.Addr), L.Addr,
                   L.Addr + L.Ty->size()};
    Out.Ty = ptrTy(L.Ty);
    return Out;
  }
  case RHS::Cast: {
    RResult A = evalRHS(E, *R.A);
    if (A.O != Outcome::Ok)
      return A;
    Out.O = Outcome::Ok;
    // Casts preserve the value and its metadata; int->ptr yields null
    // bounds (§5.2) unless the integer came from a pointer (the model
    // keeps the conservative rule: metadata survives ptr->ptr only).
    if (R.Ty->K == FType::Ptr && A.Ty->K == FType::Ptr)
      Out.V = A.V;
    else if (R.Ty->K == FType::Ptr)
      Out.V = MValue{A.V.V, 0, 0};
    else
      Out.V = MValue{A.V.V, 0, 0};
    Out.Ty = R.Ty;
    return Out;
  }
  case RHS::Malloc: {
    RResult N = evalRHS(E, *R.A);
    if (N.O != Outcome::Ok)
      return N;
    if (N.V.V <= 0) {
      // Zero/negative requests produce a null pointer with null bounds.
      Out.O = Outcome::Ok;
      Out.V = MValue{0, 0, 0};
      Out.Ty = ptrTy(intTy());
      return Out;
    }
    uint64_t Base = mallocMem(E, static_cast<uint64_t>(N.V.V));
    if (!Base) {
      Out.O = Outcome::OutOfMem;
      return Out;
    }
    Out.O = Outcome::Ok;
    Out.V = MValue{static_cast<int64_t>(Base), Base,
                   Base + static_cast<uint64_t>(N.V.V)};
    Out.Ty = ptrTy(intTy());
    return Out;
  }
  }
  return Out;
}

Outcome softbound::formal::evalCmd(Env &E, const Cmd &C) {
  if (C.K == Cmd::Seq) {
    Outcome O = evalCmd(E, *C.C1);
    if (O != Outcome::Ok)
      return O;
    return evalCmd(E, *C.C2);
  }
  // Assignment: evaluate rhs, then the lhs location, then write.
  RResult R = evalRHS(E, *C.R);
  if (R.O != Outcome::Ok)
    return R.O;
  LResult L = evalLHS(E, *C.L);
  if (L.O != Outcome::Ok)
    return L.O;
  if (!L.Ty->isAtomic())
    return Outcome::Stuck;
  if (!writeMem(E, L.Addr, R.V))
    return Outcome::Stuck; // Unallocated write: Progress-excluded.
  return Outcome::Ok;
}

//===----------------------------------------------------------------------===//
// Well-formedness (§4.3)
//===----------------------------------------------------------------------===//

bool softbound::formal::wfValue(const Env &E, const MValue &D) {
  if (D.Base == 0)
    return true;
  if (!(D.Base <= D.Bound && D.Bound < E.MaxAddr && D.Base >= 1))
    return false;
  for (uint64_t I = D.Base; I < D.Bound; ++I)
    if (!E.allocated(I))
      return false;
  return true;
}

bool softbound::formal::wfMem(const Env &E) {
  for (const auto &[L, C] : E.Mem)
    if (!wfValue(E, C.D))
      return false;
  return true;
}

bool softbound::formal::wfStack(const Env &E) {
  for (const auto &[Name, Slot] : E.Stack) {
    auto &[Addr, Ty] = Slot;
    if (!Ty || !Ty->isAtomic())
      return false;
    if (!E.allocated(Addr))
      return false;
  }
  return true;
}

bool softbound::formal::wfEnv(const Env &E) { return wfStack(E) && wfMem(E); }

namespace {

bool wfLHSType(const Env &E, const LHS &L) { return typeOfLHS(E, L) != nullptr; }

bool wfRHSType(const Env &E, const RHS &R) { return typeOfRHS(E, R) != nullptr; }

} // namespace

bool softbound::formal::wfCmd(const Env &E, const Cmd &C) {
  if (C.K == Cmd::Seq)
    return wfCmd(E, *C.C1) && wfCmd(E, *C.C2);
  auto LT = typeOfLHS(E, *C.L);
  auto RT = typeOfRHS(E, *C.R);
  if (!LT || !RT || !LT->isAtomic())
    return false;
  // Assignments require matching atomic types, except int-constant-to-
  // pointer zeroing is excluded here (the fragment's typing is strict).
  return sameTy(*LT, *RT);
}

//===----------------------------------------------------------------------===//
// Theorem checking
//===----------------------------------------------------------------------===//

TheoremCheck softbound::formal::checkTheorems(Env E, const Cmd &C) {
  TheoremCheck Out;
  if (!wfEnv(E) || !wfCmd(E, C)) {
    // Premises not met; the theorems say nothing. Report vacuous success.
    return Out;
  }

  // Evaluate command-by-command (Seq is the only composition) so that the
  // invariant is re-checked at every intermediate state, which is exactly
  // what Preservation asserts.
  std::vector<const Cmd *> Stack{&C};
  std::vector<const Cmd *> Linear;
  while (!Stack.empty()) {
    const Cmd *Cur = Stack.back();
    Stack.pop_back();
    if (Cur->K == Cmd::Seq) {
      Stack.push_back(Cur->C2.get());
      Stack.push_back(Cur->C1.get());
    } else {
      Linear.push_back(Cur);
    }
  }

  for (const Cmd *Step : Linear) {
    Outcome O = evalCmd(E, *Step);
    Out.Result = O;
    if (O == Outcome::Stuck) {
      Out.ProgressHolds = false; // Progress violated: evaluation stuck.
      return Out;
    }
    if (!wfEnv(E)) {
      Out.PreservationHolds = false;
      return Out;
    }
    if (O != Outcome::Ok)
      return Out; // Abort / OutOfMem: legal terminal outcomes.
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Random program generation
//===----------------------------------------------------------------------===//

Env softbound::formal::makeInitialEnv(RNG &R) {
  Env E;
  auto AllocVar = [&](const std::string &Name, std::shared_ptr<FType> Ty) {
    uint64_t Addr = mallocMem(E, 1);
    E.Stack[Name] = {Addr, Ty};
  };
  // A few ints, pointers to int, pointer-to-pointer, and a pointer to a
  // named-struct-like record (one unfolding).
  AllocVar("i0", intTy());
  AllocVar("i1", intTy());
  AllocVar("i2", intTy());
  AllocVar("p0", ptrTy(intTy()));
  AllocVar("p1", ptrTy(intTy()));
  AllocVar("pp", ptrTy(ptrTy(intTy())));
  auto Node = structTy({{"val", intTy()}, {"tag", intTy()}});
  AllocVar("ps", ptrTy(Node));
  return E;
}

std::shared_ptr<Cmd> softbound::formal::generateProgram(RNG &R, const Env &E,
                                                        int Size) {
  auto IntVar = [&]() {
    const char *Names[] = {"i0", "i1", "i2"};
    return var(Names[R.below(3)]);
  };
  auto PtrVar = [&]() {
    const char *Names[] = {"p0", "p1"};
    return var(Names[R.below(2)]);
  };

  auto GenIntRhs = [&]() -> std::shared_ptr<RHS> {
    switch (R.below(4)) {
    case 0:
      return constant(R.range(-8, 64));
    case 1:
      return lhsExpr(IntVar());
    case 2:
      return add(lhsExpr(IntVar()), constant(R.range(0, 9)));
    default:
      return lhsExpr(deref(PtrVar()));
    }
  };

  auto GenPtrRhs = [&]() -> std::shared_ptr<RHS> {
    switch (R.below(5)) {
    case 0:
      return mallocOf(constant(R.range(1, 6)));
    case 1:
      return addrOf(IntVar());
    case 2:
      return lhsExpr(PtrVar());
    case 3:
      return add(lhsExpr(PtrVar()), constant(R.range(-2, 6)));
    default:
      // A wild cast chain: ptr -> ptr (metadata preserved).
      return castTo(ptrTy(intTy()), lhsExpr(PtrVar()));
    }
  };

  std::shared_ptr<Cmd> Prog;
  for (int I = 0; I < Size; ++I) {
    std::shared_ptr<Cmd> Step;
    switch (R.below(6)) {
    case 0:
    case 1:
      Step = assign(IntVar(), GenIntRhs());
      break;
    case 2:
    case 3:
      Step = assign(PtrVar(), GenPtrRhs());
      break;
    case 4:
      Step = assign(deref(PtrVar()), GenIntRhs());
      break;
    default:
      Step = assign(var("pp"), addrOf(PtrVar()));
      if (R.chance(1, 2))
        Step = seq(Step, assign(deref(var("pp")), GenPtrRhs()));
      break;
    }
    Prog = Prog ? seq(Prog, Step) : Step;
  }
  return Prog;
}
