//===- vm/VM.cpp - IR interpreter with simulated process image -------------===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "vm/VM.h"

#include "support/Compiler.h"

#include <cstring>
#include <deque>
#include <thread>

using namespace softbound;
using namespace softbound::simlayout;

const char *softbound::trapName(TrapKind K) {
  switch (K) {
  case TrapKind::None:
    return "none";
  case TrapKind::SpatialViolation:
    return "spatial-violation";
  case TrapKind::FuncPtrViolation:
    return "funcptr-violation";
  case TrapKind::BaselineViolation:
    return "baseline-violation";
  case TrapKind::Segfault:
    return "segfault";
  case TrapKind::OutOfMemory:
    return "out-of-memory";
  case TrapKind::InvalidFree:
    return "invalid-free";
  case TrapKind::CorruptedReturn:
    return "corrupted-return";
  case TrapKind::CorruptedFrame:
    return "corrupted-frame";
  case TrapKind::CorruptedJmpBuf:
    return "corrupted-jmpbuf";
  case TrapKind::BadIndirectCall:
    return "bad-indirect-call";
  case TrapKind::DivByZero:
    return "div-by-zero";
  case TrapKind::UnreachableExecuted:
    return "unreachable-executed";
  case TrapKind::StackOverflow:
    return "stack-overflow";
  case TrapKind::StepLimit:
    return "step-limit";
  case TrapKind::Hijacked:
    return "hijacked";
  }
  sb_unreachable("covered switch");
}

namespace {

/// Builtin functions the VM implements natively. The `SB` variants are the
/// instrumented library wrappers of §5.2 carrying bounds arguments.
enum class Builtin {
  NotABuiltin,
  Malloc,
  Free,
  Memcpy,
  Memset,
  Strlen,
  Strcpy,
  Strcat,
  Strcmp,
  PrintInt,
  PrintChar,
  PrintStr,
  Exit,
  Rand,
  Srand,
  Setjmp,
  Longjmp,
  RequestGuard,
  RequestEnd,
  SetBound,
  Unbound,
  SBMemcpy,
  SBMemcpyNoMeta,
  SBMemset,
  SBStrlen,
  SBStrcpy,
  SBStrcat,
  SBStrcmp,
};

Builtin builtinByName(const std::string &N) {
  static const std::unordered_map<std::string, Builtin> Map = {
      {"malloc", Builtin::Malloc},
      {"free", Builtin::Free},
      {"memcpy", Builtin::Memcpy},
      {"memset", Builtin::Memset},
      {"strlen", Builtin::Strlen},
      {"strcpy", Builtin::Strcpy},
      {"strcat", Builtin::Strcat},
      {"strcmp", Builtin::Strcmp},
      {"print_int", Builtin::PrintInt},
      {"print_char", Builtin::PrintChar},
      {"print_str", Builtin::PrintStr},
      {"exit", Builtin::Exit},
      {"sb_rand", Builtin::Rand},
      {"sb_srand", Builtin::Srand},
      {"setjmp", Builtin::Setjmp},
      {"longjmp", Builtin::Longjmp},
      {"sb_guard", Builtin::RequestGuard},
      {"sb_request_end", Builtin::RequestEnd},
      {"__setbound", Builtin::SetBound},
      {"__unbound", Builtin::Unbound},
      {"_sb_memcpy", Builtin::SBMemcpy},
      {"_sb_memcpy_nometa", Builtin::SBMemcpyNoMeta},
      {"_sb_memset", Builtin::SBMemset},
      {"_sb_strlen", Builtin::SBStrlen},
      {"_sb_strcpy", Builtin::SBStrcpy},
      {"_sb_strcat", Builtin::SBStrcat},
      {"_sb_strcmp", Builtin::SBStrcmp},
  };
  auto It = Map.find(N);
  return It == Map.end() ? Builtin::NotABuiltin : It->second;
}

/// Sign-extends the low \p Bits of \p V.
uint64_t canon(uint64_t V, unsigned Bits) {
  if (Bits >= 64)
    return V;
  uint64_t Mask = (1ULL << Bits) - 1;
  V &= Mask;
  if (Bits > 1 && ((V >> (Bits - 1)) & 1))
    V |= ~Mask;
  return V;
}

uint64_t maskTo(uint64_t V, unsigned Bits) {
  return Bits >= 64 ? V : V & ((1ULL << Bits) - 1);
}

constexpr uint64_t RetTokenTag = 0x5EC0'0000'0000'0000ULL;
constexpr uint64_t JmpMagic = 0x4A4D'5042'5546'4D41ULL;

} // namespace

namespace softbound {

/// All per-run execution state. One VMExec per lane of a VM::run /
/// VM::runLanes call. The lane's stack slice and observation sinks are
/// constructor parameters (not read from VMConfig) so concurrent lanes
/// never share mutable state through the shared config.
class VMExec {
public:
  VMExec(VM &Owner, Module &M, VMConfig &Cfg, SimMemory &Mem,
         uint64_t StackTop, uint64_t StackLimit, SiteProfile *Prof,
         Telemetry *Telem, std::string TraceTag)
      : Owner(Owner), M(M), Cfg(Cfg), Mem(Mem), StackTop(StackTop),
        StackLimit(StackLimit), Prof(Prof), Telem(Telem),
        TraceTag(std::move(TraceTag)) {
    if (this->Prof)
      this->Prof->ensure(M.checkSites().size());
  }

  RunResult run(const std::string &EntryName,
                const std::vector<int64_t> &Args);

private:
  struct Frame {
    Function *F = nullptr;
    std::vector<VMVal> Regs;
    BasicBlock *BB = nullptr;
    BasicBlock::iterator IP;
    BasicBlock *Prev = nullptr;
    uint64_t FrameTop = 0;  ///< SP at call entry (exclusive top).
    uint64_t FrameLow = 0;  ///< New SP after frame allocation.
    uint64_t RetSlot = 0;   ///< Address of the return-address word.
    uint64_t FPSlot = 0;    ///< Address of the saved-frame-pointer word.
    uint64_t RetToken = 0;
    uint64_t SavedFP = 0;
    uint64_t Gen = 0;
    const CallInst *CallSite = nullptr; ///< Call in the *caller* frame.
    std::vector<VMVal> VarArgs;
    std::vector<std::pair<uint64_t, uint64_t>> Allocas;
    uint64_t EntryCycle = 0; ///< C.Cycles at frame entry (trace events).
  };

  struct JmpRecord {
    uint64_t Token;
    size_t FrameIdx;
    uint64_t FrameGen;
    BasicBlock *BB;
    BasicBlock::iterator IP;
    int ResultSlot;
  };

  //===--------------------------------------------------------------------===//
  // Helpers
  //===--------------------------------------------------------------------===//

  void trap(TrapKind K, const std::string &Msg) {
    if (Halted)
      return;
    // SoftBound traps fire *before* the offending access, so memory is
    // still sound at this point — a violation inside an armed request
    // window can be contained: unwind to the sb_guard resume point and
    // let the driver move on to the next request. Every other trap kind
    // (and any violation outside a window) stays fatal.
    if (GuardArmed &&
        (K == TrapKind::SpatialViolation || K == TrapKind::FuncPtrViolation) &&
        recoverToGuard(K))
      return;
    Res.Trap = K;
    Res.Message = Msg;
    Halted = true;
  }

  /// Pops frames until \p KeepIdx is the top, running the same alloca
  /// bookkeeping as normal frame exit (checker onFree + metadata range
  /// clears). Shared by longjmp and guard recovery.
  void unwindFramesAbove(size_t KeepIdx);

  /// Attempts to resume at the sb_guard record. Returns false when the
  /// guard's frame is gone (record stale), leaving the trap fatal.
  bool recoverToGuard(TrapKind K);

  void hijack(const std::string &Target) {
    Res.Trap = TrapKind::Hijacked;
    Res.HijackTarget = Target;
    Res.Message = "control flow redirected to " + Target;
    Halted = true;
  }

  Function *funcAt(uint64_t Addr) const {
    if (Addr < FuncBase || (Addr - FuncBase) % FuncStride != 0)
      return nullptr;
    uint64_t Idx = (Addr - FuncBase) / FuncStride;
    if (Idx >= Owner.FuncByIndex.size())
      return nullptr;
    return Owner.FuncByIndex[Idx];
  }

  VMVal eval(const Frame &Fr, const Value *V) const {
    switch (V->kind()) {
    case ValueKind::ConstInt:
      return {static_cast<uint64_t>(cast<ConstantInt>(V)->value()), 0, 0};
    case ValueKind::ConstNull:
    case ValueKind::ConstUndef:
      return {0, 0, 0};
    case ValueKind::Global:
      return {Owner.GlobalAddr.at(cast<GlobalVariable>(V)), 0, 0};
    case ValueKind::Func:
      return {Owner.FuncAddr.at(cast<Function>(V)), 0, 0};
    default:
      assert(V->slot() >= 0 && "use of unregistered value");
      return Fr.Regs[V->slot()];
    }
  }

  void setResult(Frame &Fr, const Instruction &I, VMVal V) {
    if (I.slot() >= 0)
      Fr.Regs[I.slot()] = V;
  }

  /// The per-site profile row for \p I, or null in the disabled mode
  /// (no profile attached, or the instruction never got a site ID). One
  /// pointer test when profiling is off; never touches C.Cycles.
  SiteCounters *siteOf(const Instruction &I) {
    if (!Prof || I.site() < 0 ||
        static_cast<size_t>(I.site()) >= Prof->Sites.size())
      return nullptr;
    return &Prof->Sites[I.site()];
  }

  std::string traceName(const std::string &What) const {
    return TraceTag + What;
  }

  void emit(const std::string &S) {
    if (Res.Output.size() + S.size() <= Cfg.OutputLimit)
      Res.Output += S;
  }

  std::string where(const Instruction &I) const {
    return "@" + I.parent()->parent()->name() + "/" + I.parent()->name();
  }

  //===--------------------------------------------------------------------===//
  // Frames
  //===--------------------------------------------------------------------===//

  bool pushFrame(Function *F, const std::vector<VMVal> &Args,
                 const CallInst *CallSite);
  void popFrame(VMVal RetVal);

  //===--------------------------------------------------------------------===//
  // Execution
  //===--------------------------------------------------------------------===//

  void step();
  void execute(Instruction &I, Frame &Fr);
  void enterBlock(Frame &Fr, BasicBlock *To);
  void execBuiltin(Frame &Fr, const CallInst &CI, Builtin B);

  // Builtin helpers.
  /// Baseline-checker validation of a native (builtin) memory access —
  /// models Valgrind/Mudflap interposing on libc. Returns false and traps
  /// on a violation.
  bool checkNative(uint64_t Addr, uint64_t N, bool IsStore,
                   const char *What) {
    if (!Cfg.Checker || N == 0)
      return true;
    C.Cycles += Cfg.Checker->accessCost();
    if (Cfg.Checker->checkAccess(Addr, N, IsStore))
      return true;
    trap(TrapKind::BaselineViolation,
         std::string(Cfg.Checker->name()) + ": violation in " + What);
    return false;
  }
  uint64_t simStrlenAt(uint64_t Addr, bool &Ok);
  bool wrapperCheckStore(uint64_t Ptr, uint64_t N, const VMVal &Bounds,
                         const std::string &What);
  bool wrapperCheckLoad(uint64_t Ptr, uint64_t N, const VMVal &Bounds,
                        const std::string &What);

  VM &Owner;
  Module &M;
  VMConfig &Cfg;
  SimMemory &Mem;
  uint64_t StackTop;    ///< Exclusive top of this lane's stack slice.
  uint64_t StackLimit;  ///< Inclusive floor of this lane's stack slice.
  SiteProfile *Prof;    ///< This lane's profile; null = disabled.
  Telemetry *Telem;     ///< This lane's telemetry sink; null = disabled.
  std::string TraceTag; ///< Trace-event name prefix for this lane.

  std::deque<Frame> Frames;
  std::vector<JmpRecord> JmpRecords;
  RunResult Res;
  VMCounters &C = Res.Counters;
  /// Per-request machinery (sb_guard / sb_request_end builtins).
  VMCounters RequestMark;                     ///< Counters at last window end.
  JmpRecord GuardRec{};                       ///< Resume point armed by sb_guard.
  bool GuardArmed = false;                    ///< A live sb_guard resume point.
  TrapKind RequestTrap = TrapKind::None;      ///< Contained trap this window.
  /// Frame trace events only for call depths up to this (the full call
  /// tree of a recursive Olden kernel would be millions of events).
  static constexpr size_t MaxTraceDepth = 3;
  bool Halted = false;
  uint64_t NextGen = 1;
  uint64_t NextJmpToken = 0x1000;
  RNG Rand{42};
};

} // namespace softbound

//===----------------------------------------------------------------------===//
// VM: image loading
//===----------------------------------------------------------------------===//

VM::VM(Module &M, VMConfig Config)
    : M(M), Cfg(Config),
      Mem(Config.GlobalSize, Config.HeapSize, Config.StackSize), Rand(42) {
  loadImage();
}

VM::~VM() = default;

uint64_t VM::functionAddress(const Function *F) const {
  auto It = FuncAddr.find(F);
  return It == FuncAddr.end() ? 0 : It->second;
}

uint64_t VM::globalAddress(const GlobalVariable *G) const {
  auto It = GlobalAddr.find(G);
  return It == GlobalAddr.end() ? 0 : It->second;
}

void VM::loadImage() {
  // Assign function addresses.
  for (const auto &F : M.functions()) {
    uint64_t Addr = FuncBase + FuncStride * FuncByIndex.size();
    FuncByIndex.push_back(F.get());
    FuncAddr[F.get()] = Addr;
    BuiltinOf[F.get()] = static_cast<int>(builtinByName(F->name()));
    if (F->isDefinition())
      F->renumber();
  }

  // Assign global addresses (two passes so relocs can reference any global).
  for (const auto &G : M.globals()) {
    uint64_t Size = G->valueType()->sizeInBytes();
    // Checker baselines (Mudflap-style) pad objects with guard zones.
    uint64_t Addr = Mem.allocateGlobal(Size + Cfg.GlobalPad,
                                       G->valueType()->alignment());
    assert(Addr && "global segment exhausted");
    GlobalAddr[G.get()] = Addr;
  }

  for (const auto &G : M.globals()) {
    uint64_t Addr = GlobalAddr[G.get()];
    const GlobalInitializer &Init = G->initializer();
    if (!Init.Bytes.empty())
      Mem.writeBytes(Addr, Init.Bytes.size(), Init.Bytes.data());
    for (const auto &R : Init.Relocs) {
      uint64_t Target = 0, TBase = 0, TBound = 0;
      if (const auto *TG = dyn_cast<GlobalVariable>(R.Target)) {
        Target = GlobalAddr[TG];
        TBase = Target;
        TBound = Target + TG->valueType()->sizeInBytes();
      } else if (const auto *TF = dyn_cast<Function>(R.Target)) {
        Target = FuncAddr[TF];
        TBase = TBound = Target; // Function-pointer encoding (§5.2).
      }
      Mem.write(Addr + R.Offset, 8, Target);
      // The paper initializes metadata for global pointer initializers with
      // constructor-style hooks; the loader is our equivalent.
      if (Cfg.Instrumented && Cfg.Meta)
        Cfg.Meta->update(Addr + R.Offset, TBase, TBound);
    }
    if (Cfg.Checker)
      Cfg.Checker->onAlloc(ObjectRegion::Global, Addr,
                           G->valueType()->sizeInBytes());
  }
}

RunResult VM::run(const std::string &EntryName,
                  const std::vector<int64_t> &Args) {
  VMExec Exec(*this, M, Cfg, Mem, Mem.stackTop(), Mem.stackLimit(),
              Cfg.Profile, Cfg.Telem, Cfg.TraceTag);
  return Exec.run(EntryName, Args);
}

std::vector<RunResult> VM::runLanes(const std::vector<LaneSpec> &Lanes) {
  std::vector<RunResult> Results(Lanes.size());
  if (Lanes.empty())
    return Results;

  if (Lanes.size() == 1) {
    // One lane runs inline with the full stack segment: byte-identical
    // to run(), no concurrent mode, no host threads.
    const LaneSpec &L = Lanes[0];
    VMExec Exec(*this, M, Cfg, Mem, Mem.stackTop(), Mem.stackLimit(), L.Profile,
                L.Telem, L.TraceTag);
    Results[0] = Exec.run(L.Entry, L.Args);
    return Results;
  }

  // Partition the stack segment into 16-aligned per-lane slices, top
  // lane first (lane 0 gets the highest addresses, like a single-lane
  // run would).
  uint64_t Top = Mem.stackTop();
  uint64_t Span = ((Top - Mem.stackLimit()) / Lanes.size()) & ~15ULL;

  Mem.setConcurrent(true);
  std::vector<std::thread> Threads;
  Threads.reserve(Lanes.size());
  for (size_t I = 0; I < Lanes.size(); ++I)
    Threads.emplace_back([this, &Lanes, &Results, Top, Span, I] {
      const LaneSpec &L = Lanes[I];
      uint64_t LaneTop = Top - I * Span;
      VMExec Exec(*this, M, Cfg, Mem, LaneTop, LaneTop - Span, L.Profile,
                  L.Telem, L.TraceTag);
      Results[I] = Exec.run(L.Entry, L.Args);
    });
  for (auto &T : Threads)
    T.join();
  Mem.setConcurrent(false);
  return Results;
}

//===----------------------------------------------------------------------===//
// VMExec: frames
//===----------------------------------------------------------------------===//

bool VMExec::pushFrame(Function *F, const std::vector<VMVal> &Args,
                       const CallInst *CallSite) {
  assert(F->isDefinition() && "cannot push a frame for a declaration");
  if (Frames.size() >= Cfg.MaxFrames) {
    trap(TrapKind::StackOverflow, "frame limit exceeded in @" + F->name());
    return false;
  }

  Frame Fr;
  Fr.F = F;
  Fr.Gen = NextGen++;
  Fr.CallSite = CallSite;
  Fr.FrameTop = Frames.empty() ? StackTop : Frames.back().FrameLow;
  Fr.RetSlot = Fr.FrameTop - 8;
  Fr.FPSlot = Fr.FrameTop - 16;
  Fr.RetToken = RetTokenTag | Fr.Gen;
  Fr.SavedFP = Frames.empty() ? 0 : Frames.back().FrameTop;

  // Lay out allocas below the saved-FP word, in declaration order from high
  // to low addresses: the first local sits closest to the control data, so
  // an overflow of a later-declared buffer sweeps over earlier locals, then
  // the saved FP, then the return address — the classic stack smash.
  uint64_t Cur = Fr.FPSlot;
  std::vector<std::pair<const AllocaInst *, uint64_t>> AllocaAddrs;
  for (const auto &BB : F->blocks())
    for (const auto &I : *BB) {
      const auto *AI = dyn_cast<AllocaInst>(I.get());
      if (!AI)
        continue;
      uint64_t Size = AI->allocatedType()->sizeInBytes();
      uint64_t Align = AI->allocatedType()->alignment();
      Cur -= Size;
      Cur &= ~(Align - 1);
      AllocaAddrs.emplace_back(AI, Cur);
    }
  Fr.FrameLow = Cur & ~15ULL;
  if (Fr.FrameLow < StackLimit + 64) {
    trap(TrapKind::StackOverflow, "stack exhausted in @" + F->name());
    return false;
  }

  // Zero the locals area (deterministic runs) and install control words.
  Mem.zeroRange(Fr.FrameLow, Fr.FPSlot - Fr.FrameLow);
  Mem.write(Fr.RetSlot, 8, Fr.RetToken);
  Mem.write(Fr.FPSlot, 8, Fr.SavedFP);

  Fr.Regs.assign(F->numRegs(), VMVal());
  for (unsigned I = 0; I < F->numArgs() && I < Args.size(); ++I)
    Fr.Regs[F->arg(I)->slot()] = Args[I];
  if (F->functionType()->isVarArg())
    for (size_t I = F->numArgs(); I < Args.size(); ++I)
      Fr.VarArgs.push_back(Args[I]);

  for (auto &[AI, Addr] : AllocaAddrs) {
    Fr.Regs[AI->slot()] = VMVal{Addr, 0, 0};
    Fr.Allocas.emplace_back(Addr, AI->allocatedType()->sizeInBytes());
    if (Cfg.Checker)
      Cfg.Checker->onAlloc(ObjectRegion::Stack, Addr,
                           AI->allocatedType()->sizeInBytes());
  }

  Fr.BB = F->entry();
  Fr.IP = Fr.BB->begin();
  Fr.EntryCycle = C.Cycles;
  Frames.push_back(std::move(Fr));
  ++C.Calls;
  if (Frames.size() > C.MaxFrameDepth)
    C.MaxFrameDepth = Frames.size();
  return true;
}

void VMExec::popFrame(VMVal RetVal) {
  Frame Fr = std::move(Frames.back());
  Frames.pop_back();

  // Shallow frames become VM-phase trace events: timestamps are
  // simulated cycles (deterministic), duration is the frame's inclusive
  // cycle span. Deep recursion is capped by depth and the event buffer.
  if (Telem && Frames.size() < MaxTraceDepth)
    Telem->addCompleteEvent(traceName(Fr.F->name()), "vm", Telemetry::TidVM,
                            Fr.EntryCycle, C.Cycles - Fr.EntryCycle);

  if (Cfg.Checker)
    for (auto &[Addr, Size] : Fr.Allocas)
      Cfg.Checker->onFree(ObjectRegion::Stack, Addr, Size);

  // §5.2 "memory reuse and stale metadata": drop metadata for frame slots.
  if (Cfg.Instrumented && Cfg.Meta && Cfg.ClearMetadataOnFrameExit)
    C.Cycles += Cfg.Meta->clearRange(Fr.FrameLow, Fr.FrameTop - Fr.FrameLow);

  if (Frames.empty()) {
    Res.ExitCode = static_cast<int64_t>(RetVal.A);
    Halted = true;
    return;
  }
  if (Fr.CallSite) {
    Frame &Caller = Frames.back();
    if (Fr.CallSite->slot() >= 0)
      Caller.Regs[Fr.CallSite->slot()] = RetVal;
  }
}

//===----------------------------------------------------------------------===//
// VMExec: main loop
//===----------------------------------------------------------------------===//

RunResult VMExec::run(const std::string &EntryName,
                      const std::vector<int64_t> &Args) {
  Function *F = M.resolveEntry(EntryName);
  if (!F || !F->isDefinition()) {
    trap(TrapKind::Segfault, "entry function not found: " + EntryName);
    return Res;
  }
  std::vector<VMVal> ArgVals;
  for (int64_t A : Args)
    ArgVals.push_back(VMVal{static_cast<uint64_t>(A), 0, 0});
  if (pushFrame(F, ArgVals, nullptr))
    while (!Halted)
      step();

  if (Cfg.Meta)
    Res.MetadataMemory = Cfg.Meta->memoryBytes();
  Res.HeapHighWater = Mem.heapHighWater();

  if (Telem) {
    // One covering event for the whole run (frames live at halt — a trap
    // or exit() — never reached popFrame, so this is their summary too),
    // plus the aggregate counters for the report.
    Telem->addCompleteEvent(traceName("run:" + EntryName), "vm",
                            Telemetry::TidVM, 0, C.Cycles);
    Telem->counter("vm/insts") += C.Insts;
    Telem->counter("vm/checks") += C.Checks;
    Telem->counter("vm/check_guards") += C.CheckGuards;
    Telem->counter("vm/guard_skips") += C.GuardSkips;
    Telem->counter("vm/meta_loads") += C.MetaLoads;
    Telem->counter("vm/meta_stores") += C.MetaStores;
    Telem->counter("vm/cycles") += C.Cycles;
  }
  return Res;
}

void VMExec::step() {
  Frame &Fr = Frames.back();
  assert(Fr.IP != Fr.BB->end() && "fell off a basic block");
  Instruction &I = **Fr.IP;
  ++Fr.IP;

  if (isa<AllocaInst>(I))
    return; // Resolved at frame entry; models zero-cost frame setup.
  if (!isa<PhiInst>(I)) {
    if (++C.Insts > Cfg.StepLimit) {
      trap(TrapKind::StepLimit, "step limit exceeded " + where(I));
      return;
    }
    ++C.Cycles;
  }
  execute(I, Fr);
}

void VMExec::enterBlock(Frame &Fr, BasicBlock *To) {
  Fr.Prev = Fr.BB;
  Fr.BB = To;
  Fr.IP = To->begin();
  // Evaluate all phis as one parallel assignment.
  std::vector<std::pair<int, VMVal>> Pending;
  for (auto It = To->begin(); It != To->end(); ++It) {
    auto *P = dyn_cast<PhiInst>(It->get());
    if (!P)
      break;
    Value *In = P->incomingFor(Fr.Prev);
    assert(In && "phi has no incoming value for predecessor");
    Pending.emplace_back(P->slot(), eval(Fr, In));
    Fr.IP = std::next(It);
  }
  for (auto &[Slot, V] : Pending)
    if (Slot >= 0)
      Fr.Regs[Slot] = V;
}

void VMExec::execute(Instruction &I, Frame &Fr) {
  switch (I.kind()) {
  case ValueKind::Load: {
    auto &L = cast<LoadInst>(I);
    uint64_t Addr = eval(Fr, L.pointer()).A;
    unsigned Size = static_cast<unsigned>(I.type()->sizeInBytes());
    if (Cfg.Checker) {
      C.Cycles += Cfg.Checker->accessCost();
      if (!Cfg.Checker->checkAccess(Addr, Size, /*IsStore=*/false)) {
        trap(TrapKind::BaselineViolation,
             std::string(Cfg.Checker->name()) + ": load violation " +
                 where(I));
        return;
      }
    }
    uint64_t Raw;
    if (!Mem.read(Addr, Size, Raw)) {
      trap(TrapKind::Segfault, "load from unmapped address " + where(I));
      return;
    }
    ++C.Loads;
    if (I.type()->isPointer()) {
      ++C.PtrLoads;
      setResult(Fr, I, VMVal{Raw, 0, 0});
    } else {
      setResult(Fr, I,
                VMVal{canon(Raw, cast<IntType>(I.type())->bits()), 0, 0});
    }
    return;
  }
  case ValueKind::Store: {
    auto &S = cast<StoreInst>(I);
    uint64_t Addr = eval(Fr, S.pointer()).A;
    uint64_t Val = eval(Fr, S.value()).A;
    unsigned Size = static_cast<unsigned>(S.value()->type()->sizeInBytes());
    if (Cfg.Checker) {
      C.Cycles += Cfg.Checker->accessCost();
      if (!Cfg.Checker->checkAccess(Addr, Size, /*IsStore=*/true)) {
        trap(TrapKind::BaselineViolation,
             std::string(Cfg.Checker->name()) + ": store violation " +
                 where(I));
        return;
      }
    }
    if (!Mem.write(Addr, Size, Val)) {
      trap(TrapKind::Segfault, "store to unmapped address " + where(I));
      return;
    }
    ++C.Stores;
    if (S.value()->type()->isPointer())
      ++C.PtrStores;
    return;
  }
  case ValueKind::GEP: {
    auto &G = cast<GEPInst>(I);
    uint64_t Base = eval(Fr, G.pointer()).A;
    uint64_t Addr = Base;
    Type *Cur = G.sourceType();
    Addr += static_cast<uint64_t>(
        static_cast<int64_t>(eval(Fr, G.index(0)).A) *
        static_cast<int64_t>(Cur->sizeInBytes()));
    for (unsigned K = 1; K < G.numIndices(); ++K) {
      if (auto *AT = dyn_cast<ArrayType>(Cur)) {
        Addr += static_cast<uint64_t>(
            static_cast<int64_t>(eval(Fr, G.index(K)).A) *
            static_cast<int64_t>(AT->element()->sizeInBytes()));
        Cur = AT->element();
        continue;
      }
      auto *ST = cast<StructType>(Cur);
      unsigned FieldIdx =
          static_cast<unsigned>(cast<ConstantInt>(G.index(K))->value());
      Addr += ST->fieldOffset(FieldIdx);
      Cur = ST->field(FieldIdx);
    }
    if (Cfg.Checker && !Cfg.Checker->checkDerive(Base, Addr)) {
      trap(TrapKind::BaselineViolation,
           std::string(Cfg.Checker->name()) +
               ": out-of-object pointer arithmetic " + where(I));
      return;
    }
    setResult(Fr, I, VMVal{Addr, 0, 0});
    return;
  }
  case ValueKind::BinOp: {
    auto &B = cast<BinOpInst>(I);
    unsigned Bits = cast<IntType>(I.type())->bits();
    uint64_t L = eval(Fr, B.lhs()).A;
    uint64_t R = eval(Fr, B.rhs()).A;
    uint64_t Out = 0;
    switch (B.opcode()) {
    case BinOpInst::Op::Add:
      Out = L + R;
      break;
    case BinOpInst::Op::Sub:
      Out = L - R;
      break;
    case BinOpInst::Op::Mul:
      Out = L * R;
      break;
    case BinOpInst::Op::SDiv:
    case BinOpInst::Op::SRem: {
      int64_t SL = static_cast<int64_t>(L), SR = static_cast<int64_t>(R);
      if (SR == 0) {
        trap(TrapKind::DivByZero, "division by zero " + where(I));
        return;
      }
      if (SL == INT64_MIN && SR == -1)
        Out = B.opcode() == BinOpInst::Op::SDiv ? static_cast<uint64_t>(SL)
                                                : 0;
      else
        Out = static_cast<uint64_t>(
            B.opcode() == BinOpInst::Op::SDiv ? SL / SR : SL % SR);
      break;
    }
    case BinOpInst::Op::UDiv:
    case BinOpInst::Op::URem: {
      uint64_t UL = maskTo(L, Bits), UR = maskTo(R, Bits);
      if (UR == 0) {
        trap(TrapKind::DivByZero, "division by zero " + where(I));
        return;
      }
      Out = B.opcode() == BinOpInst::Op::UDiv ? UL / UR : UL % UR;
      break;
    }
    case BinOpInst::Op::And:
      Out = L & R;
      break;
    case BinOpInst::Op::Or:
      Out = L | R;
      break;
    case BinOpInst::Op::Xor:
      Out = L ^ R;
      break;
    case BinOpInst::Op::Shl:
      Out = maskTo(L, Bits) << (R & (Bits - 1));
      break;
    case BinOpInst::Op::LShr:
      Out = maskTo(L, Bits) >> (R & (Bits - 1));
      break;
    case BinOpInst::Op::AShr:
      Out = static_cast<uint64_t>(static_cast<int64_t>(canon(L, Bits)) >>
                                  (R & (Bits - 1)));
      break;
    }
    setResult(Fr, I, VMVal{canon(Out, Bits), 0, 0});
    return;
  }
  case ValueKind::ICmp: {
    auto &Cmp = cast<ICmpInst>(I);
    unsigned Bits =
        Cmp.lhs()->type()->isPointer()
            ? 64
            : cast<IntType>(Cmp.lhs()->type())->bits();
    uint64_t L = eval(Fr, Cmp.lhs()).A;
    uint64_t R = eval(Fr, Cmp.rhs()).A;
    int64_t SL = static_cast<int64_t>(L), SR = static_cast<int64_t>(R);
    uint64_t UL = maskTo(L, Bits), UR = maskTo(R, Bits);
    bool Out = false;
    switch (Cmp.pred()) {
    case ICmpInst::Pred::EQ:
      Out = L == R;
      break;
    case ICmpInst::Pred::NE:
      Out = L != R;
      break;
    case ICmpInst::Pred::SLT:
      Out = SL < SR;
      break;
    case ICmpInst::Pred::SLE:
      Out = SL <= SR;
      break;
    case ICmpInst::Pred::SGT:
      Out = SL > SR;
      break;
    case ICmpInst::Pred::SGE:
      Out = SL >= SR;
      break;
    case ICmpInst::Pred::ULT:
      Out = UL < UR;
      break;
    case ICmpInst::Pred::ULE:
      Out = UL <= UR;
      break;
    case ICmpInst::Pred::UGT:
      Out = UL > UR;
      break;
    case ICmpInst::Pred::UGE:
      Out = UL >= UR;
      break;
    }
    setResult(Fr, I, VMVal{Out ? 1ULL : 0ULL, 0, 0});
    return;
  }
  case ValueKind::Cast: {
    auto &Ca = cast<CastInst>(I);
    uint64_t V = eval(Fr, Ca.source()).A;
    switch (Ca.opcode()) {
    case CastInst::Op::Bitcast:
    case CastInst::Op::IntToPtr:
      setResult(Fr, I, VMVal{V, 0, 0});
      return;
    case CastInst::Op::PtrToInt:
      setResult(Fr, I,
                VMVal{canon(V, cast<IntType>(I.type())->bits()), 0, 0});
      return;
    case CastInst::Op::Trunc:
    case CastInst::Op::SExt:
      setResult(Fr, I,
                VMVal{canon(V, cast<IntType>(I.type())->bits()), 0, 0});
      return;
    case CastInst::Op::ZExt: {
      unsigned SrcBits = cast<IntType>(Ca.source()->type())->bits();
      setResult(Fr, I, VMVal{maskTo(V, SrcBits), 0, 0});
      return;
    }
    }
    return;
  }
  case ValueKind::Select: {
    auto &S = cast<SelectInst>(I);
    uint64_t Cond = eval(Fr, S.condition()).A;
    setResult(Fr, I, eval(Fr, Cond & 1 ? S.ifTrue() : S.ifFalse()));
    return;
  }
  case ValueKind::Phi:
    sb_unreachable("phi executed outside enterBlock");
  case ValueKind::Call: {
    auto &Call = cast<CallInst>(I);
    Function *Callee = Call.calledFunction();
    if (!Callee) {
      uint64_t Addr = eval(Fr, Call.callee()).A;
      Callee = funcAt(Addr);
      if (!Callee) {
        trap(TrapKind::BadIndirectCall,
             "indirect call to non-function address " + where(I));
        return;
      }
    }
    Builtin B = static_cast<Builtin>(Owner.BuiltinOf.at(Callee));
    if (Callee->isBuiltin() || !Callee->isDefinition()) {
      if (B == Builtin::NotABuiltin) {
        trap(TrapKind::BadIndirectCall,
             "call to undefined function @" + Callee->name());
        return;
      }
      execBuiltin(Fr, Call, B);
      return;
    }
    std::vector<VMVal> Args;
    Args.reserve(Call.numArgs());
    for (unsigned K = 0; K < Call.numArgs(); ++K)
      Args.push_back(eval(Fr, Call.arg(K)));
    pushFrame(Callee, Args, &Call);
    return;
  }
  case ValueKind::Ret: {
    auto &R = cast<RetInst>(I);
    VMVal V = R.hasValue() ? eval(Fr, R.value()) : VMVal();
    // Validate the in-memory control words: the attack surface.
    uint64_t RetWord = 0, FPWord = 0;
    Mem.read(Fr.RetSlot, 8, RetWord);
    Mem.read(Fr.FPSlot, 8, FPWord);
    if (RetWord != Fr.RetToken) {
      if (Function *Target = funcAt(RetWord))
        hijack(Target->name());
      else
        trap(TrapKind::CorruptedReturn,
             "return address corrupted in @" + Fr.F->name());
      return;
    }
    if (FPWord != Fr.SavedFP) {
      if (Function *Target = funcAt(FPWord))
        hijack(Target->name());
      else
        trap(TrapKind::CorruptedFrame,
             "saved frame pointer corrupted in @" + Fr.F->name());
      return;
    }
    popFrame(V);
    return;
  }
  case ValueKind::Br: {
    auto &B = cast<BrInst>(I);
    BasicBlock *To = B.isConditional()
                         ? (eval(Fr, B.condition()).A & 1 ? B.successor(0)
                                                          : B.successor(1))
                         : B.successor(0);
    enterBlock(Fr, To);
    return;
  }
  case ValueKind::Unreachable:
    trap(TrapKind::UnreachableExecuted, "unreachable executed " + where(I));
    return;

  //===------------------------------------------------------------------===//
  // SoftBound instrumentation
  //===------------------------------------------------------------------===//

  case ValueKind::MakeBounds: {
    auto &B = cast<MakeBoundsInst>(I);
    setResult(Fr, I,
              VMVal{eval(Fr, B.base()).A, eval(Fr, B.bound()).A, 0});
    return;
  }
  case ValueKind::SpatialCheck: {
    auto &Chk = cast<SpatialCheckInst>(I);
    SiteCounters *SC = siteOf(I);
    if (Value *G = Chk.guard()) {
      // Guarded check: the guard test costs one simulated instruction on
      // every execution; the check itself only runs (and only counts as a
      // dynamic check) when the guard is true — so a hull whose window
      // guard failed falls back to honest per-iteration check accounting,
      // and a skipped fallback costs its one-cycle test, not a free ride.
      ++C.CheckGuards;
      C.Cycles += 1;
      if ((eval(Fr, G).A & 1) == 0) {
        ++C.GuardSkips;
        if (SC)
          ++SC->GuardElided;
        return;
      }
      if (SC)
        ++SC->FallbackFired;
    }
    VMVal P = eval(Fr, Chk.pointer());
    VMVal B = eval(Fr, Chk.bounds());
    ++C.Checks;
    C.Cycles += Cfg.CheckCost;
    if (SC)
      ++SC->Executed;
    if (P.A < B.A || P.A + Chk.accessSize() > B.B) {
      if (SC)
        ++SC->Traps;
      trap(TrapKind::SpatialViolation,
           std::string("softbound: out-of-bounds ") +
               (Chk.isStoreCheck() ? "store" : "load") + " " + where(I));
    }
    return;
  }
  case ValueKind::FuncPtrCheck: {
    auto &Chk = cast<FuncPtrCheckInst>(I);
    SiteCounters *SC = siteOf(I);
    VMVal P = eval(Fr, Chk.pointer());
    VMVal B = eval(Fr, Chk.bounds());
    ++C.FuncPtrChecks;
    C.Cycles += Cfg.CheckCost;
    if (SC)
      ++SC->Executed;
    if (!(B.A == B.B && B.A == P.A && P.A != 0)) {
      if (SC)
        ++SC->Traps;
      trap(TrapKind::FuncPtrViolation,
           "softbound: indirect call through non-function pointer " +
               where(I));
    }
    return;
  }
  case ValueKind::MetaLoad: {
    auto &ML = cast<MetaLoadInst>(I);
    assert(Cfg.Meta && "meta.load without a metadata facility");
    Bounds B = Cfg.Meta->lookup(eval(Fr, ML.address()).A);
    ++C.MetaLoads;
    C.Cycles += Cfg.Meta->lookupCost();
    if (SiteCounters *SC = siteOf(I))
      ++SC->Executed;
    setResult(Fr, I, VMVal{B.Base, B.Bound, 0});
    return;
  }
  case ValueKind::MetaStore: {
    auto &MS = cast<MetaStoreInst>(I);
    assert(Cfg.Meta && "meta.store without a metadata facility");
    VMVal B = eval(Fr, MS.bounds());
    Cfg.Meta->update(eval(Fr, MS.address()).A, B.A, B.B);
    ++C.MetaStores;
    C.Cycles += Cfg.Meta->updateCost();
    if (SiteCounters *SC = siteOf(I))
      ++SC->Executed;
    return;
  }
  case ValueKind::PackPB: {
    auto &P = cast<PackPBInst>(I);
    VMVal Ptr = eval(Fr, P.pointer());
    VMVal B = eval(Fr, P.bounds());
    setResult(Fr, I, VMVal{Ptr.A, B.A, B.B});
    return;
  }
  case ValueKind::ExtractPtr:
    setResult(Fr, I, VMVal{eval(Fr, cast<ExtractPtrInst>(I).pair()).A, 0, 0});
    return;
  case ValueKind::ExtractBounds: {
    VMVal PP = eval(Fr, cast<ExtractBoundsInst>(I).pair());
    setResult(Fr, I, VMVal{PP.B, PP.C, 0});
    return;
  }
  default:
    sb_unreachable("unhandled instruction kind");
  }
}

//===----------------------------------------------------------------------===//
// VMExec: builtins
//===----------------------------------------------------------------------===//

uint64_t VMExec::simStrlenAt(uint64_t Addr, bool &Ok) {
  Ok = true;
  for (uint64_t N = 0; N < (1u << 20); ++N) {
    uint64_t Byte;
    if (!Mem.read(Addr + N, 1, Byte)) {
      Ok = false;
      return N;
    }
    if (Byte == 0)
      return N;
  }
  Ok = false;
  return 0;
}

bool VMExec::wrapperCheckStore(uint64_t Ptr, uint64_t N, const VMVal &Bounds,
                               const std::string &What) {
  if (Cfg.Wrappers == WrapperMode::None)
    return true;
  ++C.Checks;
  C.Cycles += Cfg.CheckCost;
  if (Ptr >= Bounds.A && Ptr + N <= Bounds.B)
    return true;
  trap(TrapKind::SpatialViolation,
       "softbound: out-of-bounds store in " + What + " wrapper");
  return false;
}

bool VMExec::wrapperCheckLoad(uint64_t Ptr, uint64_t N, const VMVal &Bounds,
                              const std::string &What) {
  if (Cfg.Wrappers != WrapperMode::Full)
    return true;
  ++C.Checks;
  C.Cycles += Cfg.CheckCost;
  if (Ptr >= Bounds.A && Ptr + N <= Bounds.B)
    return true;
  trap(TrapKind::SpatialViolation,
       "softbound: out-of-bounds load in " + What + " wrapper");
  return false;
}

void VMExec::unwindFramesAbove(size_t KeepIdx) {
  while (Frames.size() > KeepIdx + 1) {
    Frame &Dead = Frames.back();
    if (Cfg.Checker)
      for (auto &[Addr, Size] : Dead.Allocas)
        Cfg.Checker->onFree(ObjectRegion::Stack, Addr, Size);
    if (Cfg.Instrumented && Cfg.Meta && Cfg.ClearMetadataOnFrameExit)
      C.Cycles +=
          Cfg.Meta->clearRange(Dead.FrameLow, Dead.FrameTop - Dead.FrameLow);
    Frames.pop_back();
  }
}

bool VMExec::recoverToGuard(TrapKind K) {
  if (GuardRec.FrameIdx >= Frames.size() ||
      Frames[GuardRec.FrameIdx].Gen != GuardRec.FrameGen)
    return false;
  unwindFramesAbove(GuardRec.FrameIdx);
  Frame &Target = Frames.back();
  Target.BB = GuardRec.BB;
  Target.IP = GuardRec.IP;
  if (GuardRec.ResultSlot >= 0)
    Target.Regs[GuardRec.ResultSlot] =
        VMVal{K == TrapKind::SpatialViolation ? 1ULL : 2ULL, 0, 0};
  RequestTrap = K;
  C.Cycles += 20; // Unwind, priced like longjmp.
  return true;
}

void VMExec::execBuiltin(Frame &Fr, const CallInst &CI, Builtin B) {
  ++C.Calls;
  std::vector<VMVal> A;
  A.reserve(CI.numArgs());
  for (unsigned K = 0; K < CI.numArgs(); ++K)
    A.push_back(eval(Fr, CI.arg(K)));
  auto Ret = [&](VMVal V) {
    if (CI.slot() >= 0)
      Fr.Regs[CI.slot()] = V;
  };

  switch (B) {
  case Builtin::NotABuiltin:
    sb_unreachable("dispatched a non-builtin");
  case Builtin::Malloc: {
    uint64_t Size = A[0].A;
    uint64_t Addr = Mem.heapAlloc(Size, Cfg.RedzonePad);
    C.Cycles += 30;
    if (Addr && Cfg.Checker)
      Cfg.Checker->onAlloc(ObjectRegion::Heap, Addr, Size);
    Ret(VMVal{Addr, 0, 0});
    return;
  }
  case Builtin::Free: {
    uint64_t Addr = A[0].A;
    C.Cycles += 20;
    if (Addr == 0)
      return;
    uint64_t Size = Mem.heapFree(Addr);
    if (Size == UINT64_MAX) {
      trap(TrapKind::InvalidFree, "free of a non-heap address");
      return;
    }
    if (Cfg.Checker)
      Cfg.Checker->onFree(ObjectRegion::Heap, Addr, Size);
    // §5.2: clear metadata when the freed block could have held pointers.
    if (Cfg.Instrumented && Cfg.Meta && Cfg.ClearMetadataOnFree)
      C.Cycles += Cfg.Meta->clearRange(Addr, Size);
    return;
  }
  case Builtin::Memcpy:
  case Builtin::SBMemcpy:
  case Builtin::SBMemcpyNoMeta: {
    uint64_t Dst = A[0].A, Src = A[1].A, N = A[2].A;
    if (B != Builtin::Memcpy) {
      // §5.2: bounds of source and target checked once, before the copy.
      if (!wrapperCheckStore(Dst, N, A[3], "memcpy") ||
          !wrapperCheckLoad(Src, N, A[4], "memcpy"))
        return;
    }
    if (!checkNative(Src, N, /*IsStore=*/false, "memcpy") ||
        !checkNative(Dst, N, /*IsStore=*/true, "memcpy"))
      return;
    std::vector<uint8_t> Buf(N);
    if (!Mem.readBytes(Src, N, Buf.data()) ||
        !Mem.writeBytes(Dst, N, Buf.data())) {
      trap(TrapKind::Segfault, "memcpy touches unmapped memory");
      return;
    }
    C.Cycles += 10 + N / 8;
    if (B == Builtin::SBMemcpy && Cfg.Meta) {
      // Scan every source slot for metadata and mirror it (§5.2).
      uint64_t Moved = Cfg.Meta->copyRange(Dst, Src, N);
      C.Cycles += (N / 8) * Cfg.Meta->lookupCost() +
                  Moved * Cfg.Meta->updateCost();
    } else if (B == Builtin::SBMemcpyNoMeta && Cfg.Meta) {
      // §5.2 pointer-free inference: no per-slot scan; the destination
      // shadow region is bulk-cleared (memset-like, ~1 insn per slot).
      Cfg.Meta->clearRange(Dst, N);
      C.Cycles += N / 8;
    }
    Ret(VMVal{Dst, 0, 0});
    return;
  }
  case Builtin::Memset:
  case Builtin::SBMemset: {
    uint64_t Dst = A[0].A, Fill = A[1].A & 0xff, N = A[2].A;
    if (B == Builtin::SBMemset && !wrapperCheckStore(Dst, N, A[3], "memset"))
      return;
    if (!checkNative(Dst, N, /*IsStore=*/true, "memset"))
      return;
    std::vector<uint8_t> Buf(N, static_cast<uint8_t>(Fill));
    if (!Mem.writeBytes(Dst, N, Buf.data())) {
      trap(TrapKind::Segfault, "memset touches unmapped memory");
      return;
    }
    C.Cycles += 10 + N / 8;
    if (Cfg.Instrumented && Cfg.Meta)
      C.Cycles += Cfg.Meta->clearRange(Dst, N);
    Ret(VMVal{Dst, 0, 0});
    return;
  }
  case Builtin::Strlen:
  case Builtin::SBStrlen: {
    bool Ok;
    uint64_t N = simStrlenAt(A[0].A, Ok);
    if (!Ok) {
      trap(TrapKind::Segfault, "strlen ran off mapped memory");
      return;
    }
    if (B == Builtin::SBStrlen &&
        !wrapperCheckLoad(A[0].A, N + 1, A[1], "strlen"))
      return;
    C.Cycles += 2 + N;
    Ret(VMVal{N, 0, 0});
    return;
  }
  case Builtin::Strcpy:
  case Builtin::SBStrcpy: {
    uint64_t Dst = A[0].A, Src = A[1].A;
    bool Ok;
    uint64_t N = simStrlenAt(Src, Ok);
    if (!Ok) {
      trap(TrapKind::Segfault, "strcpy source not NUL-terminated in memory");
      return;
    }
    if (B == Builtin::SBStrcpy) {
      if (!wrapperCheckLoad(Src, N + 1, A[3], "strcpy") ||
          !wrapperCheckStore(Dst, N + 1, A[2], "strcpy"))
        return;
    }
    if (!checkNative(Src, N + 1, /*IsStore=*/false, "strcpy") ||
        !checkNative(Dst, N + 1, /*IsStore=*/true, "strcpy"))
      return;
    std::vector<uint8_t> Buf(N + 1);
    Mem.readBytes(Src, N + 1, Buf.data());
    if (!Mem.writeBytes(Dst, N + 1, Buf.data())) {
      trap(TrapKind::Segfault, "strcpy writes unmapped memory");
      return;
    }
    C.Cycles += 10 + N;
    if (Cfg.Instrumented && Cfg.Meta)
      C.Cycles += Cfg.Meta->clearRange(Dst, N + 1);
    Ret(VMVal{Dst, 0, 0});
    return;
  }
  case Builtin::Strcat:
  case Builtin::SBStrcat: {
    uint64_t Dst = A[0].A, Src = A[1].A;
    bool Ok1, Ok2;
    uint64_t DN = simStrlenAt(Dst, Ok1);
    uint64_t SN = simStrlenAt(Src, Ok2);
    if (!Ok1 || !Ok2) {
      trap(TrapKind::Segfault, "strcat operand not NUL-terminated");
      return;
    }
    if (B == Builtin::SBStrcat) {
      if (!wrapperCheckLoad(Src, SN + 1, A[3], "strcat") ||
          !wrapperCheckStore(Dst, DN + SN + 1, A[2], "strcat"))
        return;
    }
    if (!checkNative(Src, SN + 1, /*IsStore=*/false, "strcat") ||
        !checkNative(Dst, DN + SN + 1, /*IsStore=*/true, "strcat"))
      return;
    std::vector<uint8_t> Buf(SN + 1);
    Mem.readBytes(Src, SN + 1, Buf.data());
    if (!Mem.writeBytes(Dst + DN, SN + 1, Buf.data())) {
      trap(TrapKind::Segfault, "strcat writes unmapped memory");
      return;
    }
    C.Cycles += 10 + DN + SN;
    Ret(VMVal{Dst, 0, 0});
    return;
  }
  case Builtin::Strcmp:
  case Builtin::SBStrcmp: {
    uint64_t P = A[0].A, Q = A[1].A;
    int64_t Out = 0;
    uint64_t N = 0;
    for (;; ++N, ++P, ++Q) {
      uint64_t X, Y;
      if (!Mem.read(P, 1, X) || !Mem.read(Q, 1, Y)) {
        trap(TrapKind::Segfault, "strcmp ran off mapped memory");
        return;
      }
      if (X != Y) {
        Out = X < Y ? -1 : 1;
        break;
      }
      if (X == 0)
        break;
    }
    C.Cycles += 2 + N;
    Ret(VMVal{static_cast<uint64_t>(Out), 0, 0});
    return;
  }
  case Builtin::PrintInt:
    C.Cycles += 5;
    emit(std::to_string(static_cast<int64_t>(A[0].A)));
    return;
  case Builtin::PrintChar:
    C.Cycles += 5;
    emit(std::string(1, static_cast<char>(A[0].A & 0xff)));
    return;
  case Builtin::PrintStr: {
    bool Ok;
    uint64_t N = simStrlenAt(A[0].A, Ok);
    if (!Ok) {
      trap(TrapKind::Segfault, "print_str of non-terminated string");
      return;
    }
    std::vector<uint8_t> Buf(N);
    Mem.readBytes(A[0].A, N, Buf.data());
    C.Cycles += 5 + N;
    emit(std::string(Buf.begin(), Buf.end()));
    return;
  }
  case Builtin::Exit:
    Res.ExitCode = static_cast<int64_t>(canon(A[0].A, 32));
    Halted = true;
    return;
  case Builtin::Rand:
    C.Cycles += 5;
    Ret(VMVal{Rand.next() >> 1, 0, 0});
    return;
  case Builtin::Srand:
    Rand = RNG(A[0].A);
    return;
  case Builtin::Setjmp: {
    uint64_t Buf = A[0].A;
    uint64_t Token = NextJmpToken++;
    if (!Mem.write(Buf, 8, JmpMagic) || !Mem.write(Buf + 8, 8, Token) ||
        !Mem.write(Buf + 16, 8, 0) || !Mem.write(Buf + 24, 8, 0)) {
      trap(TrapKind::Segfault, "setjmp buffer unmapped");
      return;
    }
    C.Cycles += 10;
    JmpRecords.push_back(JmpRecord{Token, Frames.size() - 1, Fr.Gen, Fr.BB,
                                   Fr.IP, CI.slot()});
    Ret(VMVal{0, 0, 0});
    return;
  }
  case Builtin::Longjmp: {
    uint64_t Buf = A[0].A;
    uint64_t V = A[1].A;
    uint64_t Magic = 0, Token = 0, Pc = 0;
    if (!Mem.read(Buf, 8, Magic) || !Mem.read(Buf + 8, 8, Token) ||
        !Mem.read(Buf + 16, 8, Pc)) {
      trap(TrapKind::Segfault, "longjmp buffer unmapped");
      return;
    }
    C.Cycles += 20;
    // A corrupted PC field models the classic jmp_buf attack target.
    if (Pc != 0) {
      if (Function *Target = funcAt(Pc))
        hijack(Target->name());
      else
        trap(TrapKind::CorruptedJmpBuf, "longjmp PC field corrupted");
      return;
    }
    if (Magic != JmpMagic) {
      trap(TrapKind::CorruptedJmpBuf, "longjmp buffer magic corrupted");
      return;
    }
    const JmpRecord *Rec = nullptr;
    for (const auto &R : JmpRecords)
      if (R.Token == Token)
        Rec = &R;
    if (!Rec || Rec->FrameIdx >= Frames.size() ||
        Frames[Rec->FrameIdx].Gen != Rec->FrameGen) {
      trap(TrapKind::CorruptedJmpBuf,
           "longjmp to a frame that is no longer live");
      return;
    }
    unwindFramesAbove(Rec->FrameIdx);
    Frame &Target = Frames.back();
    Target.BB = Rec->BB;
    Target.IP = Rec->IP;
    if (Rec->ResultSlot >= 0)
      Target.Regs[Rec->ResultSlot] = VMVal{V == 0 ? 1 : V, 0, 0};
    return;
  }
  case Builtin::RequestGuard:
    // Arms (or re-arms) the request-window resume point right after this
    // call: returns 0 now, or the contained-trap code (1 = spatial,
    // 2 = function-pointer) when a violation unwinds back here.
    C.Cycles += 2;
    GuardRec =
        JmpRecord{0, Frames.size() - 1, Fr.Gen, Fr.BB, Fr.IP, CI.slot()};
    GuardArmed = true;
    Ret(VMVal{0, 0, 0});
    return;
  case Builtin::RequestEnd: {
    // Closes the current request window: records the counter delta and
    // the contained trap (if any), then disarms the guard so traps
    // between requests stay fatal.
    C.Cycles += 2;
    RequestSample S;
    S.Delta = C.since(RequestMark);
    S.Trap = RequestTrap;
    Res.Requests.push_back(S);
    RequestMark = C;
    RequestTrap = TrapKind::None;
    GuardArmed = false;
    return;
  }
  case Builtin::SetBound:
  case Builtin::Unbound:
    // Uninstrumented semantics: identity. The SoftBound pass intercepts
    // these calls and rewrites the bounds (§5.2).
    Ret(VMVal{A[0].A, 0, 0});
    return;
  }
  sb_unreachable("covered switch");
}
