//===- vm/MemoryChecker.h - baseline checker hook ---------------*- C++ -*-===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hook interface the VM drives so that comparison baselines (the Valgrind-
/// style red-zone checker and the Jones–Kelly/Mudflap-style object table)
/// observe allocations and validate accesses of *uninstrumented* programs.
///
//===----------------------------------------------------------------------===//

#ifndef SOFTBOUND_VM_MEMORYCHECKER_H
#define SOFTBOUND_VM_MEMORYCHECKER_H

#include <cstdint>

namespace softbound {

/// Where an object lives; baselines differ in which regions they track.
enum class ObjectRegion { Heap, Global, Stack };

/// Observes allocation events and validates memory accesses.
class MemoryChecker {
public:
  virtual ~MemoryChecker() = default;

  virtual const char *name() const = 0;

  /// Object lifetime events.
  virtual void onAlloc(ObjectRegion Region, uint64_t Addr, uint64_t Size) {}
  virtual void onFree(ObjectRegion Region, uint64_t Addr, uint64_t Size) {}

  /// Validates one access; false = spatial violation detected.
  virtual bool checkAccess(uint64_t Addr, uint64_t Size, bool IsStore) = 0;

  /// Validates pointer arithmetic deriving To from From (object-table
  /// schemes check derivations; others accept everything).
  virtual bool checkDerive(uint64_t From, uint64_t To) { return true; }

  /// Simulated instruction cost charged per validated access.
  virtual uint64_t accessCost() const = 0;

  /// Resets all state between runs.
  virtual void reset() = 0;
};

} // namespace softbound

#endif // SOFTBOUND_VM_MEMORYCHECKER_H
