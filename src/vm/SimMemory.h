//===- vm/SimMemory.h - simulated address space -----------------*- C++ -*-===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulated 64-bit address space programs execute in: a function
/// segment (code addresses), a global/data segment, a heap with a first-fit
/// free-list allocator, and a downward-growing stack. Return addresses,
/// saved frame pointers and jmp_bufs live as ordinary words in this space,
/// which is what makes the Wilander attack suite (§6.2) expressible.
///
//===----------------------------------------------------------------------===//

#ifndef SOFTBOUND_VM_SIMMEMORY_H
#define SOFTBOUND_VM_SIMMEMORY_H

#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

namespace softbound {

/// Segment base addresses. The layout mirrors a classic process image; the
/// null page is never mapped so null dereferences fault.
namespace simlayout {
inline constexpr uint64_t FuncBase = 0x0000'0010'0000ULL;
inline constexpr uint64_t FuncStride = 16; ///< Address distance of functions.
inline constexpr uint64_t GlobalBase = 0x0000'1000'0000ULL;
inline constexpr uint64_t HeapBase = 0x0000'2000'0000ULL;
inline constexpr uint64_t StackBase = 0x0000'7000'0000ULL;
} // namespace simlayout

/// Byte-addressable simulated memory with segment bounds checking.
/// read/write return false on access outside mapped segments — the VM turns
/// that into a simulated segmentation fault.
class SimMemory {
public:
  SimMemory(uint64_t GlobalSize, uint64_t HeapSize, uint64_t StackSize);

  //===--------------------------------------------------------------------===//
  // Raw access
  //===--------------------------------------------------------------------===//

  /// Reads \p Size (1/2/4/8) bytes at \p Addr, zero-extended into \p Out.
  bool read(uint64_t Addr, unsigned Size, uint64_t &Out) const;

  /// Writes the low \p Size bytes of \p Val at \p Addr.
  bool write(uint64_t Addr, unsigned Size, uint64_t Val);

  bool readBytes(uint64_t Addr, uint64_t N, uint8_t *Out) const;
  bool writeBytes(uint64_t Addr, uint64_t N, const uint8_t *In);

  /// True if [Addr, Addr+N) lies entirely inside one mapped segment.
  bool accessible(uint64_t Addr, uint64_t N) const;

  //===--------------------------------------------------------------------===//
  // Globals
  //===--------------------------------------------------------------------===//

  /// Reserves \p Size bytes (aligned) in the global segment; returns the
  /// address, or 0 when the segment is exhausted.
  uint64_t allocateGlobal(uint64_t Size, uint64_t Align);

  //===--------------------------------------------------------------------===//
  // Heap (first-fit free list, 16-byte aligned, no headers so that
  // consecutive allocations are adjacent — heap overflow attacks depend on
  // deterministic adjacency)
  //===--------------------------------------------------------------------===//

  /// Allocates \p Size bytes (plus \p RedzonePad bytes of unusable padding
  /// after the block, for the red-zone baseline). Returns 0 on OOM.
  uint64_t heapAlloc(uint64_t Size, uint64_t RedzonePad = 0);

  /// Frees a heap block. Returns the block size, or UINT64_MAX for an
  /// invalid free.
  uint64_t heapFree(uint64_t Addr);

  /// Returns the size of the live allocation starting at \p Addr, or 0.
  uint64_t heapBlockSize(uint64_t Addr) const;

  /// Returns the live allocation containing \p Addr as {start, size}, or
  /// {0, 0} when the address is not inside any live block.
  std::pair<uint64_t, uint64_t> heapBlockContaining(uint64_t Addr) const;

  uint64_t heapBytesLive() const {
    std::lock_guard<std::mutex> L(HeapMu);
    return HeapLive;
  }
  uint64_t heapHighWater() const {
    std::lock_guard<std::mutex> L(HeapMu);
    return HeapHigh;
  }

  //===--------------------------------------------------------------------===//
  // Stack
  //===--------------------------------------------------------------------===//

  uint64_t stackTop() const { return StackTopAddr; }
  uint64_t stackLimit() const { return simlayout::StackBase; }

  /// Zeroes a byte range (used when reusing stack memory).
  void zeroRange(uint64_t Addr, uint64_t Size);

  //===--------------------------------------------------------------------===//
  // Concurrency (multi-lane VM sessions)
  //===--------------------------------------------------------------------===//

  /// Multi-lane mode: byte accesses go through relaxed host atomics so
  /// that racing simulated accesses from concurrent lanes have defined
  /// host behavior (a race stays the simulated program's bug, but never
  /// becomes host UB or a TSan report against the VM). The heap
  /// allocator always serializes behind a mutex regardless of this flag.
  /// Single-lane runs leave this off and keep the plain memcpy path.
  void setConcurrent(bool On) { Concurrent = On; }
  bool concurrent() const { return Concurrent; }

private:
  const uint8_t *resolve(uint64_t Addr, uint64_t N) const;
  uint8_t *resolve(uint64_t Addr, uint64_t N) {
    return const_cast<uint8_t *>(
        static_cast<const SimMemory *>(this)->resolve(Addr, N));
  }

  std::vector<uint8_t> Globals;
  std::vector<uint8_t> Heap;
  std::vector<uint8_t> Stack;
  uint64_t GlobalUsed = 0;
  uint64_t StackTopAddr;

  // Heap allocator state.
  std::map<uint64_t, uint64_t> Allocs;   ///< start -> size (live blocks).
  std::map<uint64_t, uint64_t> FreeList; ///< start -> size (freed blocks).
  uint64_t HeapBump = simlayout::HeapBase;
  uint64_t HeapLive = 0;
  uint64_t HeapHigh = 0;

  bool Concurrent = false;
  mutable std::mutex HeapMu; ///< Guards the allocator maps and counters.
};

} // namespace softbound

#endif // SOFTBOUND_VM_SIMMEMORY_H
