//===- vm/VM.h - IR interpreter with simulated process image ----*- C++ -*-===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The execution substrate standing in for the paper's native x86 runs: an
/// IR interpreter whose call frames live in simulated memory (return
/// address and saved frame-pointer words included), with deterministic
/// cycle accounting (1 per instruction, §5.1 costs per metadata operation,
/// 3 per bounds check) so the overhead ratios of Figure 2 are reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef SOFTBOUND_VM_VM_H
#define SOFTBOUND_VM_VM_H

#include "ir/Module.h"
#include "runtime/MetadataFacility.h"
#include "support/RNG.h"
#include "support/Telemetry.h"
#include "vm/MemoryChecker.h"
#include "vm/SimMemory.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace softbound {

/// How a run ended (TrapKind::None = normal exit).
enum class TrapKind {
  None,
  SpatialViolation, ///< SoftBound bounds check failed.
  FuncPtrViolation, ///< SoftBound function-pointer encoding check failed.
  BaselineViolation, ///< A comparison baseline (red zone / object table) hit.
  Segfault,
  OutOfMemory,
  InvalidFree,
  CorruptedReturn,
  CorruptedFrame,
  CorruptedJmpBuf,
  BadIndirectCall,
  DivByZero,
  UnreachableExecuted,
  StackOverflow,
  StepLimit,
  Hijacked, ///< Corrupted control data redirected control flow (attack won).
};

/// Human-readable trap name.
const char *trapName(TrapKind K);

/// Dynamic execution statistics.
struct VMCounters {
  uint64_t Insts = 0;
  uint64_t Loads = 0;
  uint64_t Stores = 0;
  uint64_t PtrLoads = 0;  ///< Loads whose result type is a pointer (Fig. 1).
  uint64_t PtrStores = 0; ///< Stores whose value type is a pointer (Fig. 1).
  uint64_t Checks = 0;
  uint64_t CheckGuards = 0; ///< Guard evaluations on guarded spatial checks.
  uint64_t GuardSkips = 0;  ///< Guarded checks skipped (guard was false).
  uint64_t FuncPtrChecks = 0;
  uint64_t MetaLoads = 0;
  uint64_t MetaStores = 0;
  uint64_t Calls = 0;
  uint64_t Cycles = 0;
  uint64_t MaxFrameDepth = 0;

  uint64_t memOps() const { return Loads + Stores; }
  double ptrOpFraction() const {
    uint64_t M = memOps();
    return M ? static_cast<double>(PtrLoads + PtrStores) / M : 0.0;
  }

  /// Folds \p O into this counter set (multi-lane joins): every count
  /// adds except MaxFrameDepth, which takes the max across lanes.
  void accumulate(const VMCounters &O) {
    Insts += O.Insts;
    Loads += O.Loads;
    Stores += O.Stores;
    PtrLoads += O.PtrLoads;
    PtrStores += O.PtrStores;
    Checks += O.Checks;
    CheckGuards += O.CheckGuards;
    GuardSkips += O.GuardSkips;
    FuncPtrChecks += O.FuncPtrChecks;
    MetaLoads += O.MetaLoads;
    MetaStores += O.MetaStores;
    Calls += O.Calls;
    Cycles += O.Cycles;
    if (O.MaxFrameDepth > MaxFrameDepth)
      MaxFrameDepth = O.MaxFrameDepth;
  }

  /// Counter delta since snapshot \p Prev (per-request windows). Every
  /// count subtracts; MaxFrameDepth keeps the current absolute value —
  /// a per-window depth delta has no meaning.
  VMCounters since(const VMCounters &Prev) const {
    VMCounters D;
    D.Insts = Insts - Prev.Insts;
    D.Loads = Loads - Prev.Loads;
    D.Stores = Stores - Prev.Stores;
    D.PtrLoads = PtrLoads - Prev.PtrLoads;
    D.PtrStores = PtrStores - Prev.PtrStores;
    D.Checks = Checks - Prev.Checks;
    D.CheckGuards = CheckGuards - Prev.CheckGuards;
    D.GuardSkips = GuardSkips - Prev.GuardSkips;
    D.FuncPtrChecks = FuncPtrChecks - Prev.FuncPtrChecks;
    D.MetaLoads = MetaLoads - Prev.MetaLoads;
    D.MetaStores = MetaStores - Prev.MetaStores;
    D.Calls = Calls - Prev.Calls;
    D.Cycles = Cycles - Prev.Cycles;
    D.MaxFrameDepth = MaxFrameDepth;
    return D;
  }
};

/// One request window recorded by the `sb_request_end` builtin: the
/// counter delta since the previous window boundary plus the contained
/// trap (if any) that `sb_guard` recovered from inside the window.
/// Traffic drivers (src/workloads/Traffic.h) bracket each simulated
/// server request with sb_guard/sb_request_end so per-request cost and
/// detection outcomes are observable without re-running single shots.
struct RequestSample {
  VMCounters Delta;
  TrapKind Trap = TrapKind::None; ///< Contained violation, or None.
};

/// Result of one VM run.
struct RunResult {
  TrapKind Trap = TrapKind::None;
  int64_t ExitCode = 0;
  std::string Message;
  std::string HijackTarget; ///< Function name control flow escaped to.
  std::string Output;       ///< Text produced by print builtins.
  VMCounters Counters;
  /// Per-request counter windows, in program order (sb_request_end
  /// calls). By traffic-driver convention sample 0 covers the program
  /// prologue (globals/table setup before the request loop).
  std::vector<RequestSample> Requests;
  uint64_t MetadataMemory = 0;
  uint64_t HeapHighWater = 0;

  bool ok() const { return Trap == TrapKind::None; }
  /// True when the run shows the attacker winning (for the attack suite).
  bool attackLanded() const {
    return Trap == TrapKind::Hijacked || ExitCode == 66;
  }
  /// True when a spatial-safety tool stopped the program.
  bool violationDetected() const {
    return Trap == TrapKind::SpatialViolation ||
           Trap == TrapKind::FuncPtrViolation ||
           Trap == TrapKind::BaselineViolation;
  }
};

/// Which accesses the instrumented-builtin wrappers check (§6: full vs
/// store-only checking).
enum class WrapperMode { None, StoreOnly, Full };

/// VM construction options.
struct VMConfig {
  MetadataFacility *Meta = nullptr;  ///< Required for instrumented modules.
  MemoryChecker *Checker = nullptr;  ///< Baseline checker (uninstrumented).
  WrapperMode Wrappers = WrapperMode::Full;
  uint64_t GlobalSize = 4ULL << 20;
  uint64_t HeapSize = 64ULL << 20;
  uint64_t StackSize = 2ULL << 20;
  uint64_t StepLimit = 4'000'000'000ULL;
  uint64_t CheckCost = 3;      ///< Simulated instructions per bounds check.
  uint64_t RedzonePad = 0;     ///< Heap padding for checker baselines.
  uint64_t GlobalPad = 0;      ///< Global padding for checker baselines.
  bool ClearMetadataOnFree = true;
  bool ClearMetadataOnFrameExit = true;
  bool Instrumented = false;   ///< Module carries SoftBound instrumentation.
  size_t OutputLimit = 1u << 20;
  uint64_t MaxFrames = 100'000;
  /// Optional per-site dynamic profile, indexed by Instruction::site()
  /// (null = telemetry's zero-cost disabled mode). Recording never
  /// changes counters or cycle accounting.
  SiteProfile *Profile = nullptr;
  /// Optional telemetry sink for VM phase trace events and aggregate
  /// run counters (null = off). Trace timestamps are simulated cycles,
  /// so timelines are deterministic.
  Telemetry *Telem = nullptr;
  /// Prefix for trace-event names (benches set "<workload>:").
  std::string TraceTag;
};

/// One interpreter lane of a multi-lane run: entry point, arguments, and
/// per-lane observation sinks. Lanes share the module image, the global
/// and heap segments, and the metadata facility; each lane gets a
/// private slice of the stack segment. Sinks must not be shared between
/// lanes — the session layer merges them deterministically at join.
struct LaneSpec {
  std::string Entry = "main";
  std::vector<int64_t> Args;
  SiteProfile *Profile = nullptr; ///< Per-lane profile (null = off).
  Telemetry *Telem = nullptr;     ///< Per-lane telemetry sink (null = off).
  std::string TraceTag;           ///< Trace-event name prefix for this lane.
};

/// One SSA value at runtime: scalars use A; bounds use {A=base, B=bound};
/// ptrpair uses {A=ptr, B=base, C=bound}.
struct VMVal {
  uint64_t A = 0;
  uint64_t B = 0;
  uint64_t C = 0;
};

/// The interpreter. One VM instance loads one module image and can run one
/// entry function (construct a fresh VM per run for isolation).
class VM {
public:
  VM(Module &M, VMConfig Config);
  ~VM();

  /// Runs \p EntryName (falls back to the `_sb_`-renamed form), passing
  /// integer arguments to the leading integer parameters.
  RunResult run(const std::string &EntryName = "main",
                const std::vector<int64_t> &Args = {});

  /// Runs N interpreter lanes over this VM's shared image, heap, and
  /// metadata facility; returns one RunResult per lane, in lane order.
  /// One lane runs inline on the caller's thread with the full stack
  /// segment (byte-identical to run()); N > 1 lanes each get a
  /// 16-aligned 1/N slice of the stack and run on their own host
  /// threads with SimMemory in concurrent mode. Multi-lane callers must
  /// use a Sharded metadata facility and no baseline Checker (checkers
  /// keep single-threaded object tables) — the session layer enforces
  /// this.
  std::vector<RunResult> runLanes(const std::vector<LaneSpec> &Lanes);

  uint64_t functionAddress(const Function *F) const;
  uint64_t globalAddress(const GlobalVariable *G) const;
  SimMemory &memory() { return Mem; }

private:
  struct Frame;
  struct JmpRecord;
  class Impl;

  Module &M;
  VMConfig Cfg;
  SimMemory Mem;
  RNG Rand;

  // Module image.
  std::vector<Function *> FuncByIndex;
  std::unordered_map<const Function *, uint64_t> FuncAddr;
  std::unordered_map<const GlobalVariable *, uint64_t> GlobalAddr;
  std::unordered_map<const Function *, int> BuiltinOf;

  void loadImage();

  friend class VMExec;
};

} // namespace softbound

#endif // SOFTBOUND_VM_VM_H
