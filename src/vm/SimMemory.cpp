//===- vm/SimMemory.cpp - simulated address space ---------------------------===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "vm/SimMemory.h"

#include <cassert>
#include <cstring>

using namespace softbound;
using namespace softbound::simlayout;

SimMemory::SimMemory(uint64_t GlobalSize, uint64_t HeapSize,
                     uint64_t StackSize) {
  Globals.resize(GlobalSize, 0);
  Heap.resize(HeapSize, 0);
  Stack.resize(StackSize, 0);
  StackTopAddr = StackBase + StackSize;
}

namespace {
/// Relaxed per-byte copies for concurrent mode. Lanes racing on the same
/// simulated bytes is the workload's race, not the host's: routing every
/// byte through __atomic builtins keeps the host behavior defined (and
/// ThreadSanitizer quiet) at the cost of a per-byte loop instead of
/// memcpy. Only multi-lane sessions pay it.
void atomicCopyOut(uint8_t *Dst, const uint8_t *Src, uint64_t N) {
  for (uint64_t I = 0; I < N; ++I)
    Dst[I] = __atomic_load_n(Src + I, __ATOMIC_RELAXED);
}
void atomicCopyIn(uint8_t *Dst, const uint8_t *Src, uint64_t N) {
  for (uint64_t I = 0; I < N; ++I)
    __atomic_store_n(Dst + I, Src[I], __ATOMIC_RELAXED);
}
} // namespace

const uint8_t *SimMemory::resolve(uint64_t Addr, uint64_t N) const {
  if (Addr >= GlobalBase && Addr + N <= GlobalBase + Globals.size() &&
      Addr + N >= Addr)
    return Globals.data() + (Addr - GlobalBase);
  if (Addr >= HeapBase && Addr + N <= HeapBase + Heap.size() && Addr + N >= Addr)
    return Heap.data() + (Addr - HeapBase);
  if (Addr >= StackBase && Addr + N <= StackBase + Stack.size() &&
      Addr + N >= Addr)
    return Stack.data() + (Addr - StackBase);
  return nullptr;
}

bool SimMemory::read(uint64_t Addr, unsigned Size, uint64_t &Out) const {
  const uint8_t *P = resolve(Addr, Size);
  if (!P)
    return false;
  Out = 0;
  if (Concurrent)
    atomicCopyOut(reinterpret_cast<uint8_t *>(&Out), P, Size);
  else
    std::memcpy(&Out, P, Size); // Little-endian host assumed (x86-64).
  return true;
}

bool SimMemory::write(uint64_t Addr, unsigned Size, uint64_t Val) {
  uint8_t *P = resolve(Addr, Size);
  if (!P)
    return false;
  if (Concurrent)
    atomicCopyIn(P, reinterpret_cast<const uint8_t *>(&Val), Size);
  else
    std::memcpy(P, &Val, Size);
  return true;
}

bool SimMemory::readBytes(uint64_t Addr, uint64_t N, uint8_t *Out) const {
  const uint8_t *P = resolve(Addr, N);
  if (!P)
    return false;
  if (Concurrent)
    atomicCopyOut(Out, P, N);
  else
    std::memcpy(Out, P, N);
  return true;
}

bool SimMemory::writeBytes(uint64_t Addr, uint64_t N, const uint8_t *In) {
  uint8_t *P = resolve(Addr, N);
  if (!P)
    return false;
  if (Concurrent)
    atomicCopyIn(P, In, N);
  else
    std::memcpy(P, In, N);
  return true;
}

bool SimMemory::accessible(uint64_t Addr, uint64_t N) const {
  return resolve(Addr, N) != nullptr;
}

uint64_t SimMemory::allocateGlobal(uint64_t Size, uint64_t Align) {
  std::lock_guard<std::mutex> L(HeapMu);
  uint64_t Start = (GlobalUsed + Align - 1) / Align * Align;
  if (Start + Size > Globals.size())
    return 0;
  GlobalUsed = Start + Size;
  return GlobalBase + Start;
}

uint64_t SimMemory::heapAlloc(uint64_t Size, uint64_t RedzonePad) {
  std::lock_guard<std::mutex> L(HeapMu);
  if (Size == 0)
    Size = 1;
  uint64_t Need = (Size + RedzonePad + 15) & ~15ULL;

  // First fit in the free list.
  for (auto It = FreeList.begin(); It != FreeList.end(); ++It) {
    if (It->second < Need)
      continue;
    uint64_t Addr = It->first;
    uint64_t Remain = It->second - Need;
    FreeList.erase(It);
    if (Remain >= 16)
      FreeList[Addr + Need] = Remain;
    Allocs[Addr] = Size;
    HeapLive += Size;
    return Addr;
  }

  // Bump allocation.
  uint64_t Addr = HeapBump;
  if (Addr + Need > HeapBase + Heap.size())
    return 0;
  HeapBump += Need;
  if (HeapBump - HeapBase > HeapHigh)
    HeapHigh = HeapBump - HeapBase;
  Allocs[Addr] = Size;
  HeapLive += Size;
  return Addr;
}

uint64_t SimMemory::heapFree(uint64_t Addr) {
  std::lock_guard<std::mutex> L(HeapMu);
  auto It = Allocs.find(Addr);
  if (It == Allocs.end())
    return UINT64_MAX;
  uint64_t Size = It->second;
  uint64_t Padded = (Size + 15) & ~15ULL;
  Allocs.erase(It);
  HeapLive -= Size;
  FreeList[Addr] = Padded;
  return Size;
}

uint64_t SimMemory::heapBlockSize(uint64_t Addr) const {
  std::lock_guard<std::mutex> L(HeapMu);
  auto It = Allocs.find(Addr);
  return It == Allocs.end() ? 0 : It->second;
}

std::pair<uint64_t, uint64_t>
SimMemory::heapBlockContaining(uint64_t Addr) const {
  std::lock_guard<std::mutex> L(HeapMu);
  auto It = Allocs.upper_bound(Addr);
  if (It == Allocs.begin())
    return {0, 0};
  --It;
  if (Addr >= It->first && Addr < It->first + It->second)
    return {It->first, It->second};
  return {0, 0};
}

void SimMemory::zeroRange(uint64_t Addr, uint64_t Size) {
  uint8_t *P = resolve(Addr, Size);
  if (!P)
    return;
  if (Concurrent) {
    for (uint64_t I = 0; I < Size; ++I)
      __atomic_store_n(P + I, uint8_t(0), __ATOMIC_RELAXED);
  } else {
    std::memset(P, 0, Size);
  }
}
