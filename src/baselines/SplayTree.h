//===- baselines/SplayTree.h - interval splay tree --------------*- C++ -*-===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A top-down splay tree over address intervals. Object-table bounds
/// checkers (Jones–Kelly, Mudflap, and successors) classically use a splay
/// tree for the object lookup; the paper cites it as their performance
/// bottleneck (§2.1), which the object-table baseline reproduces by
/// charging lookup cost proportional to the comparisons performed.
///
//===----------------------------------------------------------------------===//

#ifndef SOFTBOUND_BASELINES_SPLAYTREE_H
#define SOFTBOUND_BASELINES_SPLAYTREE_H

#include <cstdint>
#include <memory>

namespace softbound {

/// Splay tree of disjoint [Start, Start+Size) intervals.
class IntervalSplayTree {
public:
  IntervalSplayTree() = default;
  ~IntervalSplayTree() { clear(); }
  IntervalSplayTree(const IntervalSplayTree &) = delete;
  IntervalSplayTree &operator=(const IntervalSplayTree &) = delete;

  /// Inserts an interval (intervals are assumed disjoint).
  void insert(uint64_t Start, uint64_t Size);

  /// Removes the interval starting exactly at \p Start; returns its size or
  /// 0 when absent.
  uint64_t erase(uint64_t Start);

  /// Finds the interval containing \p Addr. Returns true and fills
  /// Start/Size on success. \p Comparisons is incremented per node visited
  /// (the baseline's cost model).
  bool find(uint64_t Addr, uint64_t &Start, uint64_t &Size,
            uint64_t &Comparisons);

  size_t size() const { return Count; }
  void clear();

private:
  struct Node {
    uint64_t Start, Size;
    Node *L = nullptr, *R = nullptr;
  };

  /// Top-down splay: moves the node whose interval is nearest \p Addr to
  /// the root. Counts visited nodes into \p Comparisons.
  Node *splay(Node *T, uint64_t Addr, uint64_t &Comparisons);

  Node *Root = nullptr;
  size_t Count = 0;
};

} // namespace softbound

#endif // SOFTBOUND_BASELINES_SPLAYTREE_H
