//===- baselines/SplayTree.cpp - interval splay tree -------------------------===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "baselines/SplayTree.h"

#include <vector>

using namespace softbound;

IntervalSplayTree::Node *IntervalSplayTree::splay(Node *T, uint64_t Addr,
                                                  uint64_t &Comparisons) {
  if (!T)
    return nullptr;
  Node Header;
  Node *L = &Header, *R = &Header;
  for (;;) {
    ++Comparisons;
    if (Addr < T->Start) {
      if (!T->L)
        break;
      if (Addr < T->L->Start) { // Zig-zig: rotate right.
        ++Comparisons;
        Node *Y = T->L;
        T->L = Y->R;
        Y->R = T;
        T = Y;
        if (!T->L)
          break;
      }
      R->L = T; // Link right.
      R = T;
      T = T->L;
    } else if (Addr >= T->Start + T->Size) {
      if (!T->R)
        break;
      if (Addr >= T->R->Start + T->R->Size) { // Zag-zag: rotate left.
        ++Comparisons;
        Node *Y = T->R;
        T->R = Y->L;
        Y->L = T;
        T = Y;
        if (!T->R)
          break;
      }
      L->R = T; // Link left.
      L = T;
      T = T->R;
    } else {
      break; // Containing interval found.
    }
  }
  L->R = T->L;
  R->L = T->R;
  T->L = Header.R;
  T->R = Header.L;
  return T;
}

void IntervalSplayTree::insert(uint64_t Start, uint64_t Size) {
  uint64_t Ignored = 0;
  Node *N = new Node{Start, Size, nullptr, nullptr};
  if (!Root) {
    Root = N;
    ++Count;
    return;
  }
  Root = splay(Root, Start, Ignored);
  if (Start < Root->Start) {
    N->L = Root->L;
    N->R = Root;
    Root->L = nullptr;
  } else {
    N->R = Root->R;
    N->L = Root;
    Root->R = nullptr;
  }
  Root = N;
  ++Count;
}

uint64_t IntervalSplayTree::erase(uint64_t Start) {
  if (!Root)
    return 0;
  uint64_t Ignored = 0;
  Root = splay(Root, Start, Ignored);
  if (Root->Start != Start)
    return 0;
  uint64_t Size = Root->Size;
  Node *Old = Root;
  if (!Root->L) {
    Root = Root->R;
  } else {
    Node *NewRoot = splay(Root->L, Start, Ignored);
    NewRoot->R = Root->R;
    Root = NewRoot;
  }
  delete Old;
  --Count;
  return Size;
}

bool IntervalSplayTree::find(uint64_t Addr, uint64_t &Start, uint64_t &Size,
                             uint64_t &Comparisons) {
  if (!Root)
    return false;
  Root = splay(Root, Addr, Comparisons);
  if (Addr >= Root->Start && Addr < Root->Start + Root->Size) {
    Start = Root->Start;
    Size = Root->Size;
    return true;
  }
  return false;
}

void IntervalSplayTree::clear() {
  std::vector<Node *> Work;
  if (Root)
    Work.push_back(Root);
  while (!Work.empty()) {
    Node *N = Work.back();
    Work.pop_back();
    if (N->L)
      Work.push_back(N->L);
    if (N->R)
      Work.push_back(N->R);
    delete N;
  }
  Root = nullptr;
  Count = 0;
}
