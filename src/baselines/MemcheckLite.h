//===- baselines/MemcheckLite.h - Valgrind-style heap checker ---*- C++ -*-===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A red-zone heap checker in the spirit of Valgrind's memcheck as the
/// paper uses it (Table 4): accesses inside the heap segment must hit a
/// live allocation; the VM's RedzonePad keeps allocations apart so small
/// overflows land in no-man's land. Stack and global accesses are not
/// checked — which is why this baseline misses the `go`/`compress` bugs in
/// the Table 4 reproduction, just as Valgrind did in the paper.
///
//===----------------------------------------------------------------------===//

#ifndef SOFTBOUND_BASELINES_MEMCHECKLITE_H
#define SOFTBOUND_BASELINES_MEMCHECKLITE_H

#include "vm/MemoryChecker.h"
#include "vm/SimMemory.h"

#include <map>

namespace softbound {

/// Tracks live heap blocks; flags heap accesses outside any live block.
class MemcheckLite : public MemoryChecker {
public:
  /// The recommended VM configuration sets RedzonePad to this value.
  static constexpr uint64_t RecommendedRedzone = 16;

  const char *name() const override { return "memcheck"; }

  void onAlloc(ObjectRegion Region, uint64_t Addr, uint64_t Size) override {
    if (Region == ObjectRegion::Heap)
      Blocks[Addr] = Size;
  }
  void onFree(ObjectRegion Region, uint64_t Addr, uint64_t Size) override {
    if (Region == ObjectRegion::Heap)
      Blocks.erase(Addr);
  }

  bool checkAccess(uint64_t Addr, uint64_t Size, bool IsStore) override {
    if (Addr < simlayout::HeapBase || Addr >= simlayout::StackBase)
      return true; // Only the heap is shadowed.
    auto It = Blocks.upper_bound(Addr);
    if (It == Blocks.begin())
      return false;
    --It;
    return Addr >= It->first && Addr + Size <= It->first + It->second;
  }

  /// Valgrind-style shadow-state maintenance cost per access (memcheck's
  /// published slowdowns are an order of magnitude; we only need its
  /// detection profile, so a flat moderate cost suffices).
  uint64_t accessCost() const override { return 12; }

  void reset() override { Blocks.clear(); }

private:
  std::map<uint64_t, uint64_t> Blocks;
};

} // namespace softbound

#endif // SOFTBOUND_BASELINES_MEMCHECKLITE_H
