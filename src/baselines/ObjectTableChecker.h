//===- baselines/ObjectTableChecker.h - Jones-Kelly/Mudflap -----*- C++ -*-===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The object-table baseline (§2.1): every allocated object (heap, global,
/// stack) is registered in a splay tree; each dereference must land inside
/// some registered object. By construction this cannot see *sub-object*
/// overflows — an access that stays inside the enclosing struct passes —
/// which is exactly the incompleteness the paper's Table 1 records for
/// JKRLDA-style schemes.
///
//===----------------------------------------------------------------------===//

#ifndef SOFTBOUND_BASELINES_OBJECTTABLECHECKER_H
#define SOFTBOUND_BASELINES_OBJECTTABLECHECKER_H

#include "baselines/SplayTree.h"
#include "vm/MemoryChecker.h"

namespace softbound {

/// Splay-tree object-lookup checker (Mudflap-style dereference checking;
/// optionally Jones–Kelly-style derivation checking).
class ObjectTableChecker : public MemoryChecker {
public:
  /// \p CheckDerivations additionally rejects pointer arithmetic that
  /// leaves the source object (Jones–Kelly). Off by default: it breaks
  /// legal C idioms, which is why later systems check dereferences only.
  explicit ObjectTableChecker(bool CheckDerivations = false)
      : CheckDerivations(CheckDerivations) {}

  const char *name() const override { return "objtable"; }

  void onAlloc(ObjectRegion Region, uint64_t Addr, uint64_t Size) override {
    Objects.insert(Addr, Size ? Size : 1);
  }
  void onFree(ObjectRegion Region, uint64_t Addr, uint64_t Size) override {
    Objects.erase(Addr);
  }

  bool checkAccess(uint64_t Addr, uint64_t Size, bool IsStore) override {
    uint64_t Start, ObjSize;
    uint64_t Before = Comparisons;
    if (!Objects.find(Addr, Start, ObjSize, Comparisons)) {
      LastCost = baseCost() + 3 * (Comparisons - Before);
      return false;
    }
    LastCost = baseCost() + 3 * (Comparisons - Before);
    return Addr + Size <= Start + ObjSize;
  }

  bool checkDerive(uint64_t From, uint64_t To) override {
    if (!CheckDerivations)
      return true;
    uint64_t Start, ObjSize;
    if (!Objects.find(From, Start, ObjSize, Comparisons))
      return true; // Unknown source: cannot judge (out-of-bounds object).
    // One-past-the-end is legal C and must be representable.
    return To >= Start && To <= Start + ObjSize;
  }

  uint64_t accessCost() const override { return LastCost; }

  void reset() override {
    Objects.clear();
    Comparisons = 0;
    LastCost = baseCost();
  }

  uint64_t totalComparisons() const { return Comparisons; }
  size_t liveObjects() const { return Objects.size(); }

private:
  /// Fixed per-check overhead before tree traversal (call + range math).
  static uint64_t baseCost() { return 6; }

  IntervalSplayTree Objects;
  bool CheckDerivations;
  uint64_t Comparisons = 0;
  uint64_t LastCost = 6;
};

} // namespace softbound

#endif // SOFTBOUND_BASELINES_OBJECTTABLECHECKER_H
