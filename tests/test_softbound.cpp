//===- tests/test_softbound.cpp - SoftBound transformation tests -----------===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Behavioural tests of the SoftBound pass: transparency on correct
/// programs, detection of spatial violations (paper §3, §6.2), sub-object
/// overflow protection, both checking modes, and both metadata facilities.
///
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"

#include <gtest/gtest.h>

using namespace softbound;

namespace {

struct ModeCase {
  CheckMode Mode;
  FacilityKind Facility;
};

/// Builds + runs under a given mode/facility.
RunResult runSB(const std::string &Src, CheckMode Mode,
                FacilityKind Facility = FacilityKind::Shadow,
                std::vector<int64_t> Args = {}) {
  BuildOptions B;
  B.Instrument = true;
  B.SB.Mode = Mode;
  RunOptions R;
  R.Facility = Facility;
  R.Args = std::move(Args);
  RunResult Out = runSession(planFromBuildOptions(Src, B), R).Combined;
  EXPECT_NE(Out.Message.substr(0, 12), "build failed") << Out.Message;
  return Out;
}

RunResult runPlain(const std::string &Src, std::vector<int64_t> Args = {}) {
  RunOptions R;
  R.Args = std::move(Args);
  return runSession(planFromBuildOptions(Src, BuildOptions{}), R).Combined;
}

//===----------------------------------------------------------------------===//
// Transparency: instrumented correct programs behave identically.
//===----------------------------------------------------------------------===//

class SoftBoundTransparency
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

const char *TransparentPrograms[] = {
    // Pointer-heavy linked list.
    "struct node { int val; struct node* next; };\n"
    "int main() {\n"
    "  struct node* head = NULL;\n"
    "  for (int i = 1; i <= 50; i++) {\n"
    "    struct node* n = (struct node*)malloc(sizeof(struct node));\n"
    "    n->val = i; n->next = head; head = n;\n"
    "  }\n"
    "  int sum = 0;\n"
    "  while (head) { sum += head->val; head = head->next; }\n"
    "  return sum % 251;\n" // 1275 % 251 = 20
    "}",
    // Array/string workload.
    "int main() {\n"
    "  char buf[32];\n"
    "  strcpy(buf, \"softbound\");\n"
    "  strcat(buf, \"-2009\");\n"
    "  return (int)strlen(buf);\n" // 14
    "}",
    // Function pointers + struct fields.
    "struct ops { int (*f)(int); int bias; };\n"
    "int dbl(int x) { return 2 * x; }\n"
    "int main() {\n"
    "  struct ops o;\n"
    "  o.f = dbl; o.bias = 2;\n"
    "  return o.f(10) + o.bias;\n" // 22
    "}",
    // Pointer returned through calls.
    "int* pick(int* a, int* b, int which) { return which ? a : b; }\n"
    "int main() {\n"
    "  int x = 7; int y = 9;\n"
    "  int* p = pick(&x, &y, 1);\n"
    "  return *p + *pick(&x, &y, 0);\n" // 16
    "}",
    // memcpy of a pointer-containing struct keeps metadata usable.
    "struct box { int* p; int pad; };\n"
    "int main() {\n"
    "  int v = 31;\n"
    "  struct box a; struct box b;\n"
    "  a.p = &v; a.pad = 1;\n"
    "  memcpy((char*)&b, (char*)&a, sizeof(struct box));\n"
    "  return *b.p;\n" // 31
    "}",
};
const int TransparentExpected[] = {20, 14, 22, 16, 31};

TEST_P(SoftBoundTransparency, MatchesUninstrumented) {
  int ProgIdx = std::get<0>(GetParam());
  int CfgIdx = std::get<1>(GetParam());
  const ModeCase Cases[] = {
      {CheckMode::Full, FacilityKind::Shadow},
      {CheckMode::Full, FacilityKind::Hash},
      {CheckMode::StoreOnly, FacilityKind::Shadow},
      {CheckMode::StoreOnly, FacilityKind::Hash},
  };
  const std::string Src = TransparentPrograms[ProgIdx];

  RunResult Plain = runPlain(Src);
  ASSERT_TRUE(Plain.ok()) << Plain.Message;
  EXPECT_EQ(Plain.ExitCode, TransparentExpected[ProgIdx]);

  RunResult SB = runSB(Src, Cases[CfgIdx].Mode, Cases[CfgIdx].Facility);
  EXPECT_TRUE(SB.ok()) << SB.Message << " (" << trapName(SB.Trap) << ")";
  EXPECT_EQ(SB.ExitCode, Plain.ExitCode);
  EXPECT_EQ(SB.Output, Plain.Output);
}

INSTANTIATE_TEST_SUITE_P(AllProgramsAllModes, SoftBoundTransparency,
                         ::testing::Combine(::testing::Range(0, 5),
                                            ::testing::Range(0, 4)));

//===----------------------------------------------------------------------===//
// Detection: spatial violations trap.
//===----------------------------------------------------------------------===//

TEST(SoftBoundDetect, HeapWriteOverflow) {
  const char *Src = "int main() {\n"
                    "  int* p = (int*)malloc(10 * sizeof(int));\n"
                    "  for (int i = 0; i <= 10; i++) p[i] = i;\n" // one past
                    "  return 0;\n"
                    "}";
  EXPECT_TRUE(runPlain(Src).ok()); // Silent corruption without SoftBound.
  EXPECT_EQ(runSB(Src, CheckMode::Full).Trap, TrapKind::SpatialViolation);
  EXPECT_EQ(runSB(Src, CheckMode::StoreOnly).Trap,
            TrapKind::SpatialViolation);
}

TEST(SoftBoundDetect, HeapReadOverflowFullOnly) {
  const char *Src = "int main() {\n"
                    "  int* p = (int*)malloc(10 * sizeof(int));\n"
                    "  int sum = 0;\n"
                    "  for (int i = 0; i <= 10; i++) sum += p[i];\n"
                    "  return sum;\n"
                    "}";
  // Read overflows are exactly what store-only checking gives up (§6.3).
  EXPECT_EQ(runSB(Src, CheckMode::Full).Trap, TrapKind::SpatialViolation);
  EXPECT_TRUE(runSB(Src, CheckMode::StoreOnly).ok());
}

TEST(SoftBoundDetect, StackBufferWriteOverflow) {
  const char *Src = "int main() {\n"
                    "  char buf[8];\n"
                    "  for (int i = 0; i < 9; i++) buf[i] = 'x';\n"
                    "  return 0;\n"
                    "}";
  EXPECT_EQ(runSB(Src, CheckMode::Full).Trap, TrapKind::SpatialViolation);
  EXPECT_EQ(runSB(Src, CheckMode::StoreOnly).Trap,
            TrapKind::SpatialViolation);
}

TEST(SoftBoundDetect, GlobalArrayOverflow) {
  const char *Src = "int table[16];\n"
                    "int main(int n) {\n"
                    "  for (int i = 0; i < n; i++) table[i] = i;\n"
                    "  return 0;\n"
                    "}";
  BuildOptions B;
  B.Instrument = true;
  B.SB.Mode = CheckMode::Full;
  BuildResult Prog = buildProgram(Src, B);
  ASSERT_TRUE(Prog.ok()) << Prog.errorText();
  RunOptions R;
  R.Args = {16};
  EXPECT_TRUE(runSession(Prog, R).Combined.ok());
  R.Args = {17};
  EXPECT_EQ(runSession(Prog, R).Combined.Trap, TrapKind::SpatialViolation);
}

TEST(SoftBoundDetect, SubObjectOverflowCaught) {
  // §2.1's motivating example: overflow of a struct-internal array into an
  // adjacent field. Object-based approaches cannot catch this; SoftBound's
  // shrunk field bounds do (§3.1).
  const char *Src =
      "struct node { char str[8]; int count; };\n"
      "int main() {\n"
      "  struct node n;\n"
      "  n.count = 1000;\n"
      "  char* ptr = n.str;\n"
      "  strcpy(ptr, \"overflow...\");\n" // 11 chars + NUL into str[8]
      "  return n.count;\n"
      "}";
  EXPECT_EQ(runSB(Src, CheckMode::Full).Trap, TrapKind::SpatialViolation);
  EXPECT_EQ(runSB(Src, CheckMode::StoreOnly).Trap,
            TrapKind::SpatialViolation);

  // With bound shrinking disabled (the MSCC-like configuration) the
  // overflow stays inside the struct object: silent data corruption.
  BuildOptions B;
  B.Instrument = true;
  B.SB.Mode = CheckMode::Full;
  B.SB.ShrinkBounds = false;
  RunResult R = runSession(planFromBuildOptions(Src, B)).Combined;
  EXPECT_TRUE(R.ok()) << R.Message;
  EXPECT_NE(R.ExitCode, 1000); // n.count was silently overwritten.
}

TEST(SoftBoundDetect, SubObjectOverflowIntoFunctionPointer) {
  // The full §2.1 scenario with a function pointer target. Even without
  // shrunk bounds, the forged pointer is caught at the indirect call: the
  // disjoint metadata still holds the *old* bounds, which no longer match
  // the overwritten pointer bits (base == bound == ptr fails, §5.2).
  const char *Src =
      "struct node { char str[8]; int (*func)(int); };\n"
      "int id(int x) { return x; }\n"
      "int main() {\n"
      "  struct node n;\n"
      "  n.func = id;\n"
      "  char* ptr = n.str;\n"
      "  strcpy(ptr, \"overflow...\");\n"
      "  return n.func(0);\n"
      "}";
  // With shrinking: caught at the overflowing write itself.
  EXPECT_EQ(runSB(Src, CheckMode::Full).Trap, TrapKind::SpatialViolation);

  // Without shrinking: caught later, at the corrupted indirect call.
  BuildOptions B;
  B.Instrument = true;
  B.SB.ShrinkBounds = false;
  RunResult R = runSession(planFromBuildOptions(Src, B)).Combined;
  EXPECT_EQ(R.Trap, TrapKind::FuncPtrViolation) << trapName(R.Trap);
}

TEST(SoftBoundDetect, StaleMetadataClearedOnFree) {
  // §5.2 "memory reuse and stale metadata": when freed memory is
  // reallocated, pointer slots in it must not resurrect old bounds.
  const char *Src =
      "long g;\n"
      "int main() {\n"
      "  long** p = (long**)malloc(8);\n"
      "  p[0] = &g;\n"          // Record metadata for this heap slot.
      "  free((char*)p);\n"
      "  char* raw = malloc(8);\n" // First fit: same address, old bits.
      "  long** q = (long**)raw;\n"
      "  long* d = q[0];\n"     // Stale pointer bits from before the free.
      "  *d = 1;\n"             // Metadata was cleared: must trap.
      "  return 0;\n"
      "}";
  EXPECT_EQ(runSB(Src, CheckMode::Full).Trap, TrapKind::SpatialViolation);
}

TEST(SoftBoundDetect, ForgedFunctionPointerBlocked) {
  // A function pointer manufactured from an integer has null bounds, so
  // the base==bound==ptr encoding check fails at the indirect call (§5.2).
  const char *Src = "int main(long addr) {\n"
                    "  int (*fp)(int);\n"
                    "  fp = (int (*)(int))(char*)addr;\n"
                    "  return fp(1);\n"
                    "}";
  RunResult R = runSB(Src, CheckMode::Full, FacilityKind::Shadow,
                      {0x100010});
  EXPECT_EQ(R.Trap, TrapKind::FuncPtrViolation) << trapName(R.Trap);
}

TEST(SoftBoundDetect, WildCastStillChecked) {
  // Casts do not change bounds: casting int* to char* then overflowing is
  // still caught (disjoint metadata cannot be coerced, §5.2).
  const char *Src = "int main() {\n"
                    "  int x[2];\n"
                    "  char* p = (char*)x;\n"
                    "  p[8] = 1;\n" // one byte past the 8-byte array
                    "  return 0;\n"
                    "}";
  EXPECT_EQ(runSB(Src, CheckMode::Full).Trap, TrapKind::SpatialViolation);
}

TEST(SoftBoundDetect, IntToPtrGetsNullBounds) {
  const char *Src = "int main() {\n"
                    "  long fake = 0x20000040;\n"
                    "  int* p = (int*)(char*)fake;\n"
                    "  return *p;\n"
                    "}";
  EXPECT_EQ(runSB(Src, CheckMode::Full).Trap, TrapKind::SpatialViolation);
}

TEST(SoftBoundDetect, SetboundEscapeHatch) {
  // __setbound gives a programmer-asserted extent to a manufactured
  // pointer (custom allocators, §5.2).
  const char *Src = "int main() {\n"
                    "  char* arena = malloc(64);\n"
                    "  long base = (long)arena;\n"
                    "  char* p = __setbound((char*)base, 8);\n"
                    "  p[7] = 1;\n"  // In asserted bounds.
                    "  p[8] = 1;\n"  // Out.
                    "  return 0;\n"
                    "}";
  EXPECT_EQ(runSB(Src, CheckMode::Full).Trap, TrapKind::SpatialViolation);
}

TEST(SoftBoundDetect, AccessSizeMatters) {
  // Casting a char pointer to int* makes a 4-byte access overflow a
  // 1-byte extent — the check includes the access size (§3.1).
  const char *Src = "int main() {\n"
                    "  char* c = malloc(1);\n"
                    "  int* p = (int*)c;\n"
                    "  *p = 5;\n"
                    "  return 0;\n"
                    "}";
  EXPECT_EQ(runSB(Src, CheckMode::Full).Trap, TrapKind::SpatialViolation);
}

TEST(SoftBoundDetect, NegativeIndexUnderflow) {
  const char *Src = "int main() {\n"
                    "  int* p = (int*)malloc(8 * sizeof(int));\n"
                    "  p[-1] = 3;\n"
                    "  return 0;\n"
                    "}";
  EXPECT_EQ(runSB(Src, CheckMode::Full).Trap, TrapKind::SpatialViolation);
}

TEST(SoftBoundDetect, OutOfBoundsPointerCreationIsAllowed) {
  // C allows creating out-of-bounds pointers; only dereferences trap
  // (§3.1 "pointer arithmetic and pointer assignment").
  const char *Src = "int main() {\n"
                    "  int a[4];\n"
                    "  int* p = a + 9;\n" // Way past the end: fine.
                    "  p = p - 7;\n"      // Back in bounds.
                    "  *p = 12;\n"        // a[2]: fine.
                    "  return a[2];\n"
                    "}";
  RunResult R = runSB(Src, CheckMode::Full);
  EXPECT_TRUE(R.ok()) << R.Message;
  EXPECT_EQ(R.ExitCode, 12);
}

//===----------------------------------------------------------------------===//
// Pass-level structural checks
//===----------------------------------------------------------------------===//

TEST(SoftBoundPassStats, ChecksAndMetadataInserted) {
  const char *Src = "struct n { int v; struct n* next; };\n"
                    "struct n* g;\n"
                    "int main() {\n"
                    "  g = (struct n*)malloc(sizeof(struct n));\n"
                    "  g->next = g;\n"
                    "  return g->next->v;\n"
                    "}";
  BuildOptions B;
  B.Instrument = true;
  BuildResult Prog = buildProgram(Src, B);
  ASSERT_TRUE(Prog.ok()) << Prog.errorText();
  EXPECT_GT(Prog.Stats.ChecksInserted, 0u);
  EXPECT_GT(Prog.Stats.MetaLoadsInserted, 0u);
  EXPECT_GT(Prog.Stats.MetaStoresInserted, 0u);
  EXPECT_EQ(Prog.Stats.FunctionsTransformed, 1u);
  // Functions are renamed with the _sb_ prefix (§3.3).
  EXPECT_NE(Prog.M->getFunction("_sb_main"), nullptr);
  EXPECT_EQ(Prog.M->getFunction("main"), nullptr);
}

TEST(SoftBoundPassStats, StoreOnlyInsertsFewerChecks) {
  const char *Src = "int main() {\n"
                    "  int* p = (int*)malloc(64);\n"
                    "  int s = 0;\n"
                    "  for (int i = 0; i < 16; i++) { p[i] = i; s += p[i]; }\n"
                    "  return s;\n"
                    "}";
  BuildOptions Full, Store;
  Full.Instrument = Store.Instrument = true;
  Full.SB.Mode = CheckMode::Full;
  Store.SB.Mode = CheckMode::StoreOnly;
  BuildResult F = buildProgram(Src, Full);
  BuildResult S = buildProgram(Src, Store);
  ASSERT_TRUE(F.ok() && S.ok());
  EXPECT_LT(S.Stats.ChecksInserted, F.Stats.ChecksInserted);
  // Metadata propagation is identical in both modes (§6.3).
  EXPECT_EQ(S.Stats.MetaLoadsInserted, F.Stats.MetaLoadsInserted);
  EXPECT_EQ(S.Stats.MetaStoresInserted, F.Stats.MetaStoresInserted);
}

TEST(SoftBoundPassStats, RedundantCheckElimination) {
  const char *Src = "int main() {\n"
                    "  int* p = (int*)malloc(16);\n"
                    "  p[1] = 1;\n"
                    "  p[1] = 2;\n" // Same pointer, same bounds: redundant.
                    "  p[1] = 3;\n"
                    "  return p[1];\n"
                    "}";
  BuildOptions B;
  B.Instrument = true;
  B.SB.ReoptimizeAfter = true;
  BuildResult Prog = buildProgram(Src, B);
  ASSERT_TRUE(Prog.ok()) << Prog.errorText();
  EXPECT_GT(Prog.Stats.ChecksEliminated, 0u);
  RunResult R = runSession(Prog).Combined;
  EXPECT_TRUE(R.ok()) << R.Message;
  EXPECT_EQ(R.ExitCode, 3);
}

} // namespace
