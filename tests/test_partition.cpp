//===- tests/test_partition.cpp - checked-region partitioning ---------------===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests of checked-region partitioning (opt/checks/Partition.h) and the
/// structural invariants around it:
///
///   * the Verifier: metadata instructions are rejected inside
///     `uninstrumented` functions and with malformed operands,
///   * the verdict lattice: proven functions are stripped, functions
///     with remaining checks / taken addresses / escaping metadata
///     stores / leaking stripped bounds are demoted with the right
///     reason, including the function-pointer-table case,
///   * boundary reconstruction: null-bounds meta.stores into fresh
///     mallocs are elided, and not elided when a call intervenes or the
///     address roots at an argument,
///   * the whole-program entry contract after stripping,
///   * the acceptance criterion: fewer dynamic metadata operations on
///     bh, perimeter, and treeadd with identical results and identical
///     check counts, and zero missed detections across the attack and
///     BugBench suites under a partition-enabled pipeline.
///
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "ir/IRBuilder.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"
#include "opt/checks/CallGraph.h"
#include "opt/checks/CheckOpt.h"
#include "opt/checks/Partition.h"
#include "support/Casting.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace softbound;

namespace {

BuildResult buildSpec(const std::string &Src, const std::string &Spec) {
  PipelinePlan Plan;
  Plan.frontend(Src);
  std::string Err;
  EXPECT_TRUE(Plan.appendSpec(Spec, &Err)) << Err;
  BuildResult R = Plan.build();
  EXPECT_TRUE(R.ok()) << R.errorText();
  return R;
}

const PartitionVerdict *verdictFor(const CheckOptStats &S,
                                   const std::string &Substr) {
  auto It = std::find_if(S.Partition.begin(), S.Partition.end(),
                         [&](const PartitionVerdict &V) {
                           return V.Func.find(Substr) != std::string::npos;
                         });
  return It == S.Partition.end() ? nullptr : &*It;
}

unsigned countMetaOpsIn(const Function &F) {
  unsigned N = 0;
  for (const auto &BB : F.blocks())
    for (const auto &I : *BB)
      if (isa<MetaLoadInst>(I.get()) || isa<MetaStoreInst>(I.get()))
        ++N;
  return N;
}

const Workload &mustFindWorkload(const std::string &Name) {
  for (const Workload &W : benchmarkSuite())
    if (W.Name == Name)
      return W;
  ADD_FAILURE() << "no workload " << Name;
  static Workload Empty;
  return Empty;
}

/// The explicit knob list reproducing the pre-partition default.
constexpr const char *NoPartitionSpec =
    "optimize,softbound,checkopt(redundant,range,hoist,runtime-limit,"
    "interproc)";

} // namespace

//===----------------------------------------------------------------------===//
// Verifier: the uninstrumented contract and metadata operand rules
//===----------------------------------------------------------------------===//

TEST(PartitionVerifier, RejectsMetaLoadInUninstrumentedFunction) {
  Module M;
  TypeContext &Ctx = M.ctx();
  Type *I8P = Ctx.ptrTo(Ctx.i8());
  Function *F = M.createFunction("f", Ctx.funcTy(Ctx.voidTy(), {I8P}));
  IRBuilder B(M);
  B.setInsertPoint(F->createBlock("entry"));
  B.metaLoad(F->arg(0));
  B.ret();
  std::vector<std::string> Errors;
  verifyFunction(*F, Errors);
  EXPECT_TRUE(Errors.empty()) << "instrumented functions may hold metadata";

  F->setUninstrumented();
  Errors.clear();
  verifyFunction(*F, Errors);
  ASSERT_FALSE(Errors.empty());
  EXPECT_NE(Errors[0].find("uninstrumented"), std::string::npos)
      << Errors[0];
}

TEST(PartitionVerifier, RejectsMetaStoreInUninstrumentedFunction) {
  Module M;
  TypeContext &Ctx = M.ctx();
  Type *I8P = Ctx.ptrTo(Ctx.i8());
  Function *F = M.createFunction("f", Ctx.funcTy(Ctx.voidTy(), {I8P}));
  F->setUninstrumented();
  IRBuilder B(M);
  B.setInsertPoint(F->createBlock("entry"));
  B.metaStore(F->arg(0), B.makeBounds(M.constI64(0), M.constI64(0)));
  B.ret();
  std::vector<std::string> Errors;
  verifyFunction(*F, Errors);
  ASSERT_FALSE(Errors.empty());
  EXPECT_NE(Errors[0].find("meta.store inside uninstrumented"),
            std::string::npos)
      << Errors[0];
}

TEST(PartitionVerifier, RejectsNonPointerMetadataAddresses) {
  Module M;
  TypeContext &Ctx = M.ctx();
  Function *F = M.createFunction("f", Ctx.funcTy(Ctx.voidTy(), {}));
  BasicBlock *BB = F->createBlock("entry");
  IRBuilder B(M);
  B.setInsertPoint(BB);
  // Address operands are i64 constants, not pointers.
  BB->append(std::make_unique<MetaLoadInst>(Ctx.boundsTy(), M.constI64(8),
                                            "bad.ml"));
  BB->append(std::make_unique<MetaStoreInst>(
      Ctx.voidTy(), M.constI64(8),
      B.makeBounds(M.constI64(0), M.constI64(0))));
  B.ret();
  std::vector<std::string> Errors;
  verifyFunction(*F, Errors);
  ASSERT_GE(Errors.size(), 2u);
  EXPECT_NE(Errors[0].find("meta.load address is not a pointer"),
            std::string::npos)
      << Errors[0];
  EXPECT_NE(Errors[1].find("meta.store address is not a pointer"),
            std::string::npos)
      << Errors[1];
}

TEST(PartitionVerifier, RejectsNonBoundsMetaLoadResult) {
  Module M;
  TypeContext &Ctx = M.ctx();
  Type *I8P = Ctx.ptrTo(Ctx.i8());
  Function *F = M.createFunction("f", Ctx.funcTy(Ctx.voidTy(), {I8P}));
  BasicBlock *BB = F->createBlock("entry");
  IRBuilder B(M);
  B.setInsertPoint(BB);
  BB->append(
      std::make_unique<MetaLoadInst>(Ctx.i64(), F->arg(0), "bad.ml"));
  B.ret();
  std::vector<std::string> Errors;
  verifyFunction(*F, Errors);
  ASSERT_FALSE(Errors.empty());
  EXPECT_NE(Errors[0].find("not bounds-typed"), std::string::npos)
      << Errors[0];
}

//===----------------------------------------------------------------------===//
// The verdict lattice on hand-built modules
//===----------------------------------------------------------------------===//

TEST(PartitionLattice, ProvenFunctionIsStrippedAndContractRecorded) {
  Module M;
  TypeContext &Ctx = M.ctx();
  Type *I8P = Ctx.ptrTo(Ctx.i8());
  IRBuilder B(M);

  // g: transformed, check-free, one meta.load from a local whose result
  // feeds nothing — the canonical fully-proven leaf.
  Function *G = M.createFunction("g", Ctx.funcTy(Ctx.voidTy(), {}));
  G->setTransformed();
  B.setInsertPoint(G->createBlock("entry"));
  Value *Slot = B.alloca_(I8P, "slot");
  B.metaLoad(Slot);
  B.ret();

  Function *Main = M.createFunction("main", Ctx.funcTy(Ctx.i32(), {}));
  Main->setTransformed();
  B.setInsertPoint(Main->createBlock("entry"));
  B.call(G, {});
  B.ret(M.constI32(0));

  CheckOptStats Stats;
  unsigned Removed = checkopt::partitionCheckedRegions(M, Stats);
  EXPECT_EQ(Removed, 1u);
  EXPECT_EQ(Stats.PartitionProven, 2u) << "g and main are both proven";
  EXPECT_EQ(Stats.PartitionMetaLoadsRemoved, 1u);

  const PartitionVerdict *V = verdictFor(Stats, "g");
  ASSERT_NE(V, nullptr);
  EXPECT_TRUE(V->FullyProven);
  EXPECT_EQ(V->Reason, "proven");
  EXPECT_TRUE(G->isUninstrumented());
  EXPECT_EQ(countMetaOpsIn(*G), 0u);
  EXPECT_NE(printFunction(*G).find("uninstrumented"), std::string::npos);
  EXPECT_TRUE(verifyModule(M).empty()) << verifyModule(M).front();

  // Stripping leaned on closed-module caller reasoning: internal
  // functions are no longer safe custom entries.
  EXPECT_TRUE(M.hasInterProcContract());
  EXPECT_TRUE(M.isSafeEntry(Main));
  EXPECT_FALSE(M.isSafeEntry(G));
}

TEST(PartitionLattice, RemainingChecksBlockTheVerdict) {
  Module M;
  TypeContext &Ctx = M.ctx();
  Type *I8P = Ctx.ptrTo(Ctx.i8());
  IRBuilder B(M);
  Function *F = M.createFunction("f", Ctx.funcTy(Ctx.voidTy(), {I8P}));
  F->setTransformed();
  BasicBlock *BB = F->createBlock("entry");
  B.setInsertPoint(BB);
  Value *Bounds = B.makeBounds(F->arg(0), F->arg(0));
  BB->append(std::make_unique<SpatialCheckInst>(Ctx.voidTy(), F->arg(0),
                                                Bounds, 8, true));
  B.ret();

  CheckOptStats Stats;
  EXPECT_EQ(checkopt::partitionCheckedRegions(M, Stats), 0u);
  const PartitionVerdict *V = verdictFor(Stats, "f");
  ASSERT_NE(V, nullptr);
  EXPECT_FALSE(V->FullyProven);
  EXPECT_NE(V->Reason.find("spatial check"), std::string::npos)
      << V->Reason;
  EXPECT_FALSE(F->isUninstrumented());
}

TEST(PartitionLattice, AddressTakenFunctionIsNeverProven) {
  Module M;
  TypeContext &Ctx = M.ctx();
  Type *I8P = Ctx.ptrTo(Ctx.i8());
  IRBuilder B(M);

  // h is check-free and metadata-free, but its address escapes into a
  // bounds value (the §5.2 function-pointer encoding), so unknown
  // indirect call sites could exist.
  Function *H = M.createFunction("h", Ctx.funcTy(Ctx.voidTy(), {}));
  H->setTransformed();
  B.setInsertPoint(H->createBlock("entry"));
  B.ret();

  Function *Main = M.createFunction("main", Ctx.funcTy(Ctx.i32(), {}));
  Main->setTransformed();
  B.setInsertPoint(Main->createBlock("entry"));
  B.makeBounds(H, H);
  B.callIndirect(H->functionType(), B.bitcast(H, I8P), {});
  B.ret(M.constI32(0));

  checkopt::CallGraph CG(M);
  EXPECT_TRUE(CG.isAddressTaken(H));
  EXPECT_TRUE(CG.externallyReachable(H));

  CheckOptStats Stats;
  checkopt::partitionCheckedRegions(M, Stats);
  const PartitionVerdict *V = verdictFor(Stats, "h");
  ASSERT_NE(V, nullptr);
  EXPECT_FALSE(V->FullyProven);
  EXPECT_NE(V->Reason.find("address taken"), std::string::npos)
      << V->Reason;
  EXPECT_FALSE(H->isUninstrumented());
}

TEST(PartitionLattice, FunctionPointerTableMembersStayInstrumented) {
  const char *Src = "int one(int x) { return x + 1; }\n"
                    "int two(int x) { return x + 2; }\n"
                    "int main() {\n"
                    "  int (*tab[2])(int);\n"
                    "  tab[0] = one; tab[1] = two;\n"
                    "  int s = 0;\n"
                    "  for (int i = 0; i < 2; i++) s += tab[i](5);\n"
                    "  return s;\n"
                    "}";
  BuildResult R = buildSpec(Src, "optimize,softbound,checkopt");
  const CheckOptStats &S = R.Pipeline.CheckOpt;
  for (const char *Name : {"one", "two"}) {
    const PartitionVerdict *V = verdictFor(S, Name);
    ASSERT_NE(V, nullptr) << Name;
    EXPECT_FALSE(V->FullyProven) << Name;
    EXPECT_NE(V->Reason.find("address taken"), std::string::npos)
        << Name << ": " << V->Reason;
  }
  RunResult RR = runSession(R).Combined;
  ASSERT_TRUE(RR.ok()) << RR.Message;
  EXPECT_EQ(RR.ExitCode, 13);
}

TEST(PartitionLattice, EscapingMetaStoreBlocksTheVerdict) {
  Module M;
  TypeContext &Ctx = M.ctx();
  Type *I8P = Ctx.ptrTo(Ctx.i8());
  IRBuilder B(M);
  // f writes metadata through its pointer argument: instrumented code
  // could meta.load it later, so stripping would erase real bounds.
  Function *F = M.createFunction("f", Ctx.funcTy(Ctx.voidTy(), {I8P}));
  F->setTransformed();
  B.setInsertPoint(F->createBlock("entry"));
  B.metaStore(F->arg(0), B.makeBounds(F->arg(0), F->arg(0)));
  B.ret();

  CheckOptStats Stats;
  checkopt::partitionCheckedRegions(M, Stats);
  const PartitionVerdict *V = verdictFor(Stats, "f");
  ASSERT_NE(V, nullptr);
  EXPECT_FALSE(V->FullyProven);
  EXPECT_NE(V->Reason.find("visible outside the frame"), std::string::npos)
      << V->Reason;
}

TEST(PartitionLattice, StrippedBoundsLeakDemotesTheFunction) {
  Module M;
  TypeContext &Ctx = M.ctx();
  Type *I8P = Ctx.ptrTo(Ctx.i8());
  IRBuilder B(M);

  // f keeps a check, so it stays instrumented and consumes its bounds
  // parameter for real.
  Function *F = M.createFunction(
      "f", Ctx.funcTy(Ctx.voidTy(), {I8P, Ctx.boundsTy()}));
  F->setTransformed();
  BasicBlock *FB = F->createBlock("entry");
  B.setInsertPoint(FB);
  FB->append(std::make_unique<SpatialCheckInst>(Ctx.voidTy(), F->arg(0),
                                                F->arg(1), 8, true));
  B.ret();

  // g is check-free, but the bounds its meta.load produces flow into
  // f's checked parameter; stripping g would feed f null bounds.
  Function *G = M.createFunction("g", Ctx.funcTy(Ctx.voidTy(), {I8P}));
  G->setTransformed();
  B.setInsertPoint(G->createBlock("entry"));
  Value *Slot = B.alloca_(I8P, "slot");
  Value *ML = B.metaLoad(Slot);
  B.call(F, {G->arg(0), ML});
  B.ret();

  Function *Main = M.createFunction("main", Ctx.funcTy(Ctx.i32(), {}));
  Main->setTransformed();
  B.setInsertPoint(Main->createBlock("entry"));
  B.call(G, {M.nullPtr(cast<PointerType>(I8P))});
  B.ret(M.constI32(0));

  CheckOptStats Stats;
  checkopt::partitionCheckedRegions(M, Stats);
  const PartitionVerdict *V = verdictFor(Stats, "g");
  ASSERT_NE(V, nullptr);
  EXPECT_FALSE(V->FullyProven);
  EXPECT_NE(V->Reason.find("stripped bounds reach instrumented callee"),
            std::string::npos)
      << V->Reason;
  EXPECT_EQ(countMetaOpsIn(*G), 1u) << "demotion keeps g's metadata";
}

TEST(PartitionLattice, ExternallyVisibleReturnBoundsDemote) {
  Module M;
  TypeContext &Ctx = M.ctx();
  Type *I8P = Ctx.ptrTo(Ctx.i8());
  IRBuilder B(M);

  // k has no recorded call sites, so the call graph treats it as
  // externally reachable — its returned bounds value could reach any
  // caller, and stripping would replace it with null bounds.
  Function *K = M.createFunction("k", Ctx.funcTy(Ctx.boundsTy(), {}));
  K->setTransformed();
  B.setInsertPoint(K->createBlock("entry"));
  Value *Slot = B.alloca_(I8P, "slot");
  B.ret(B.metaLoad(Slot));

  checkopt::CallGraph CG(M);
  EXPECT_TRUE(CG.externallyReachable(K)) << "no recorded call sites";

  CheckOptStats Stats;
  checkopt::partitionCheckedRegions(M, Stats);
  const PartitionVerdict *V = verdictFor(Stats, "k");
  ASSERT_NE(V, nullptr);
  EXPECT_FALSE(V->FullyProven);
  EXPECT_NE(V->Reason.find("externally visible"), std::string::npos)
      << V->Reason;
}

//===----------------------------------------------------------------------===//
// Boundary reconstruction: null-init stores into fresh mallocs
//===----------------------------------------------------------------------===//

TEST(PartitionReconstruction, NullInitStoreIntoFreshMallocElided) {
  const char *Src = "struct node { int v; struct node* next; };\n"
                    "int main() {\n"
                    "  struct node* n = (struct node*)malloc(16);\n"
                    "  n->v = 7;\n"
                    "  n->next = 0;\n"
                    "  return n->v;\n"
                    "}";
  BuildResult Off = buildSpec(Src, NoPartitionSpec);
  BuildResult On = buildSpec(Src, "optimize,softbound,checkopt");
  EXPECT_GE(On.Pipeline.CheckOpt.PartitionMetaStoresRemoved, 1u);

  RunResult ROff = runSession(Off).Combined;
  RunResult ROn = runSession(On).Combined;
  ASSERT_TRUE(ROff.ok() && ROn.ok());
  EXPECT_EQ(ROn.ExitCode, ROff.ExitCode);
  EXPECT_LT(ROn.Counters.MetaStores, ROff.Counters.MetaStores);
}

TEST(PartitionReconstruction, InterveningCallBlocksTheElision) {
  // touch() runs between the malloc and the null init: the callee could
  // have planted real metadata over the fresh slot, so the store must
  // stay.
  const char *Src = "struct node { int v; struct node* next; };\n"
                    "void touch(struct node* n) { n->v = 1; }\n"
                    "int main() {\n"
                    "  struct node* m = (struct node*)malloc(16);\n"
                    "  touch(m);\n"
                    "  m->next = 0;\n"
                    "  return 0;\n"
                    "}";
  BuildResult On = buildSpec(Src, "optimize,softbound,checkopt");
  EXPECT_EQ(On.Pipeline.CheckOpt.PartitionMetaStoresRemoved, 0u);
}

TEST(PartitionReconstruction, ArgumentRootedNullStoreIsKept) {
  // The slot roots at an argument, not a fresh allocation: the caller's
  // object may carry real metadata that the null store overwrites.
  const char *Src = "struct node { int v; struct node* next; };\n"
                    "void clearnext(struct node* n) { n->next = 0; }\n"
                    "int main() {\n"
                    "  struct node n;\n"
                    "  n.next = (struct node*)&n;\n"
                    "  clearnext(&n);\n"
                    "  return 0;\n"
                    "}";
  BuildResult On = buildSpec(Src, "optimize,softbound,checkopt");
  const CheckOptStats &S = On.Pipeline.CheckOpt;
  const PartitionVerdict *V = verdictFor(S, "clearnext");
  ASSERT_NE(V, nullptr);
  EXPECT_EQ(V->MetaStoresRemoved, 0u)
      << "argument-rooted null store must not be elided";
}

//===----------------------------------------------------------------------===//
// Acceptance: metadata-op reduction, identical behavior, no missed bugs
//===----------------------------------------------------------------------===//

TEST(PartitionAcceptance, ReducesMetadataOpsOnPointerChasingWorkloads) {
  for (const char *Name : {"bh", "perimeter", "treeadd"}) {
    const Workload &W = mustFindWorkload(Name);
    BuildResult Off = buildSpec(W.Source, NoPartitionSpec);
    BuildResult On = buildSpec(W.Source, "optimize,softbound,checkopt");
    EXPECT_GE(On.Pipeline.CheckOpt.PartitionProven, 1u) << Name;

    RunResult ROff = runSession(Off).Combined;
    RunResult ROn = runSession(On).Combined;
    ASSERT_TRUE(ROff.ok() && ROn.ok()) << Name;
    EXPECT_EQ(ROn.ExitCode, ROff.ExitCode) << Name;
    EXPECT_EQ(ROn.Output, ROff.Output) << Name;
    EXPECT_EQ(ROn.Counters.Checks, ROff.Counters.Checks)
        << Name << ": partition must not touch checks";
    EXPECT_LT(ROn.Counters.MetaLoads + ROn.Counters.MetaStores,
              ROff.Counters.MetaLoads + ROff.Counters.MetaStores)
        << Name << ": metadata traffic must drop";
  }
}

TEST(PartitionSoundness, AttackAndBugBenchSuitesStayDetected) {
  // Partition alone — its reconstruction elision fires without any
  // check-optimization help, so it must preserve every detection by
  // itself.
  for (const AttackCase &A : attackSuite()) {
    BuildResult R =
        buildSpec(A.Source, "optimize,softbound,checkopt(partition)");
    RunResult RR = runSession(R).Combined;
    EXPECT_TRUE(RR.violationDetected())
        << A.Name << ": trap=" << trapName(RR.Trap);
    EXPECT_FALSE(RR.attackLanded()) << A.Name;
  }
  for (const BugCase &Bug : bugbenchSuite()) {
    BuildResult R =
        buildSpec(Bug.Source, "optimize,softbound,checkopt(partition)");
    RunResult RR = runSession(R).Combined;
    EXPECT_TRUE(RR.violationDetected())
        << Bug.Name << ": trap=" << trapName(RR.Trap);
  }
}

TEST(PartitionContract, StrippedModuleRefusesCustomEntry) {
  // use() chases a pointer whose check interproc discharges; once
  // partition strips its metadata, entering it directly would bypass
  // the call-site proofs.
  // The loaded pointer crosses a call boundary, so SoftBound must
  // materialize its bounds with a meta.load; both functions end up in
  // the proven region, so the bounds value never leaks and the
  // meta.load is stripped.
  const char *Src = "int sink(int* p) { if (p == 0) return 1; return 42; }\n"
                    "int use(int** pp) { return sink(*pp); }\n"
                    "int main() {\n"
                    "  int* a = (int*)malloc(40);\n"
                    "  int** pp = (int**)malloc(8);\n"
                    "  *pp = a;\n"
                    "  return use(pp);\n"
                    "}";
  BuildResult On = buildSpec(Src, "optimize,softbound,checkopt");
  const PartitionVerdict *V = verdictFor(On.Pipeline.CheckOpt, "use");
  ASSERT_NE(V, nullptr);
  EXPECT_TRUE(V->FullyProven) << V->Reason;
  EXPECT_GE(V->MetaLoadsRemoved, 1u);
  EXPECT_TRUE(On.M->hasInterProcContract());

  RunResult Main = runSession(On).Combined;
  ASSERT_TRUE(Main.ok()) << Main.Message;
  EXPECT_EQ(Main.ExitCode, 42);

  RunOptions RO;
  RO.Entry = "use";
  RunResult RR = runSession(On, RO).Combined;
  EXPECT_FALSE(RR.ok());
  EXPECT_NE(RR.Message.find("partition"), std::string::npos) << RR.Message;
}
