//===- tests/test_opt.cpp - optimizer pass tests ----------------------------===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests of the optimizer the instrumentation rides on: mem2reg promotes
/// scalars (and leaves address-taken ones alone), folding/CSE/DCE shrink
/// code without changing behaviour, and the whole pipeline keeps modules
/// verifier-clean.
///
//===----------------------------------------------------------------------===//

#include "frontend/Compiler.h"
#include "ir/IRBuilder.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"
#include "opt/Passes.h"
#include "vm/VM.h"

#include <gtest/gtest.h>

using namespace softbound;

namespace {

/// Counts instructions of a kind in a function.
unsigned countKind(Function &F, ValueKind K) {
  unsigned N = 0;
  for (auto &BB : F.blocks())
    for (auto &I : *BB)
      if (I->kind() == K)
        ++N;
  return N;
}

std::unique_ptr<Module> compileOk(const std::string &Src) {
  CompileResult CR = compileC(Src);
  EXPECT_TRUE(CR.ok()) << CR.errorText();
  return std::move(CR.M);
}

TEST(Mem2Reg, PromotesScalarLocals) {
  auto M = compileOk("int main() {\n"
                     "  int a = 1;\n"
                     "  int b = 2;\n"
                     "  for (int i = 0; i < 10; i++) a += b;\n"
                     "  return a;\n"
                     "}");
  Function *F = M->getFunction("main");
  EXPECT_GT(countKind(*F, ValueKind::Alloca), 0u);
  simplifyCFG(*F);
  mem2reg(*F);
  EXPECT_EQ(countKind(*F, ValueKind::Alloca), 0u);
  EXPECT_GT(countKind(*F, ValueKind::Phi), 0u) << "loop vars need phis";
  EXPECT_TRUE(verifyModule(*M).empty());

  VM Machine(*M, VMConfig{});
  EXPECT_EQ(Machine.run("main").ExitCode, 21);
}

TEST(Mem2Reg, AddressTakenStaysInMemory) {
  auto M = compileOk("int main() {\n"
                     "  int a = 5;\n"
                     "  int* p = &a;\n"
                     "  *p = 7;\n"
                     "  return a;\n"
                     "}");
  Function *F = M->getFunction("main");
  simplifyCFG(*F);
  mem2reg(*F);
  // `a` is address-taken: must remain an alloca; `p` is promotable.
  EXPECT_EQ(countKind(*F, ValueKind::Alloca), 1u);
  VM Machine(*M, VMConfig{});
  EXPECT_EQ(Machine.run("main").ExitCode, 7);
}

TEST(Mem2Reg, ArraysAreNotPromoted) {
  auto M = compileOk("int main() {\n"
                     "  int a[4];\n"
                     "  a[0] = 3;\n"
                     "  return a[0];\n"
                     "}");
  Function *F = M->getFunction("main");
  simplifyCFG(*F);
  mem2reg(*F);
  EXPECT_EQ(countKind(*F, ValueKind::Alloca), 1u);
}

TEST(ConstantFold, FoldsArithmeticAndBranches) {
  auto M = compileOk("int main() {\n"
                     "  int x = 2 + 3 * 4;\n"
                     "  if (1) return x;\n"
                     "  return 99;\n"
                     "}");
  Function *F = M->getFunction("main");
  optimizeFunction(*F, *M);
  // Everything folds to "ret 14": no binops, no conditional branches.
  EXPECT_EQ(countKind(*F, ValueKind::BinOp), 0u);
  EXPECT_TRUE(verifyModule(*M).empty());
  VM Machine(*M, VMConfig{});
  EXPECT_EQ(Machine.run("main").ExitCode, 14);
}

TEST(LocalCSE, DeduplicatesPureExpressions) {
  auto M = compileOk("int f(int* p, int i) { return p[i] + p[i]; }\n"
                     "int main() { int a[4]; a[2] = 21; return f(a, 2); }");
  Function *F = M->getFunction("f");
  simplifyCFG(*F);
  mem2reg(*F);
  unsigned GepsBefore = countKind(*F, ValueKind::GEP);
  localCSE(*F);
  EXPECT_LT(countKind(*F, ValueKind::GEP), GepsBefore);
  EXPECT_TRUE(verifyModule(*M).empty());
  VM Machine(*M, VMConfig{});
  EXPECT_EQ(Machine.run("main").ExitCode, 42);
}

TEST(DCE, RemovesUnusedPureCode) {
  auto M = compileOk("int main() {\n"
                     "  int unused = 3 * 14;\n"
                     "  int kept = 6;\n"
                     "  return kept * 7;\n"
                     "}");
  Function *F = M->getFunction("main");
  optimizeFunction(*F, *M);
  // After the pipeline only the return path's computation remains.
  unsigned Total = 0;
  for (auto &BB : F->blocks())
    Total += BB->size();
  EXPECT_LE(Total, 2u) << printFunction(*F);
  VM Machine(*M, VMConfig{});
  EXPECT_EQ(Machine.run("main").ExitCode, 42);
}

TEST(SimplifyCFG, RemovesDeadBlocksAfterReturn) {
  auto M = compileOk("int main() {\n"
                     "  return 1;\n"
                     "  return 2;\n"
                     "}");
  Function *F = M->getFunction("main");
  simplifyCFG(*F);
  EXPECT_LE(F->blocks().size(), 2u);
  EXPECT_TRUE(verifyModule(*M).empty());
}

TEST(Pipeline, OptimizationPreservesRecursion) {
  auto M = compileOk("int ack(int m, int n) {\n"
                     "  if (m == 0) return n + 1;\n"
                     "  if (n == 0) return ack(m - 1, 1);\n"
                     "  return ack(m - 1, ack(m, n - 1));\n"
                     "}\n"
                     "int main() { return ack(2, 3); }");
  optimizeModule(*M);
  EXPECT_TRUE(verifyModule(*M).empty());
  VM Machine(*M, VMConfig{});
  EXPECT_EQ(Machine.run("main").ExitCode, 9);
}

TEST(CheckElim, RemovesDominatedDuplicateChecksOnly) {
  // Build a function with two identical checks and one different-size
  // check; elimination must drop exactly the duplicate and the subsumed
  // smaller check.
  Module M;
  TypeContext &Ctx = M.ctx();
  auto *FTy = Ctx.funcTy(Ctx.voidTy(), {Ctx.ptrTo(Ctx.i8())});
  Function *F = M.createFunction("probe", FTy);
  BasicBlock *BB = F->createBlock("entry");
  IRBuilder B(M);
  B.setInsertPoint(BB);
  Value *P = F->arg(0);
  Value *Bounds = B.makeBounds(M.constI64(0), M.constI64(64));
  B.spatialCheck(P, Bounds, 8, /*IsStore=*/true);
  B.spatialCheck(P, Bounds, 8, /*IsStore=*/true);  // Duplicate.
  B.spatialCheck(P, Bounds, 4, /*IsStore=*/false); // Subsumed by size 8.
  B.spatialCheck(P, Bounds, 16, /*IsStore=*/true); // Larger: must stay.
  B.ret();
  ASSERT_TRUE(verifyModule(M).empty());

  unsigned Removed = eliminateRedundantChecks(*F);
  EXPECT_EQ(Removed, 2u);
  unsigned Left = 0;
  for (auto &I : *BB)
    if (isa<SpatialCheckInst>(I.get()))
      ++Left;
  EXPECT_EQ(Left, 2u);
}

} // namespace
