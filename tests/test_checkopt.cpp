//===- tests/test_checkopt.cpp - check-optimization subsystem tests ---------===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests of the static check-optimization subsystem (opt/checks/):
///
///   * Soundness: with every sub-pass enabled (and each enabled alone),
///     the full Table 3 attack corpus and the BugBench kernels are still
///     detected — the optimizer never removes a check that would have
///     fired — and correct programs keep their exact behaviour.
///   * Precision: deterministic elimination counts on the monotonic-loop
///     and struct-field exemplars, hull placement for counted loops, and
///     unit tests of the range analysis and instruction-dominance helper.
///
/// Source-level builds go through the PipelinePlan API
/// (driver/PassManager.h); spec-parser and wrapper-equivalence coverage
/// lives in test_pipeline.cpp.
///
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "ir/IRBuilder.h"
#include "ir/IRPrinter.h"
#include "ir/InstOrder.h"
#include "ir/Verifier.h"
#include "opt/Dominators.h"
#include "opt/Passes.h"
#include "opt/checks/RangeAnalysis.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace softbound;

namespace {

unsigned countChecks(const Module &M) {
  unsigned N = 0;
  for (const auto &F : M.functions())
    for (const auto &BB : F->blocks())
      for (const auto &I : *BB)
        if (isa<SpatialCheckInst>(I.get()))
          ++N;
  return N;
}

/// The instrumenting pipeline through the PassManager API (the source-level
/// tests below all ablate via the softbound/checkopt pass configs).
PipelinePlan plan(const std::string &Src, const SoftBoundConfig &SB = {},
                  const CheckOptConfig &CO = {}) {
  return PipelinePlan().frontend(Src).optimize().softbound(SB).checkOpt(CO);
}

BuildResult planBuild(const std::string &Src, const SoftBoundConfig &SB = {},
                      const CheckOptConfig &CO = {}) {
  return plan(Src, SB, CO).build();
}

RunResult planRun(const std::string &Src, const SoftBoundConfig &SB = {},
                  const CheckOptConfig &CO = {}, const RunOptions &RO = {}) {
  return runSession(plan(Src, SB, CO), RO).Combined;
}

//===----------------------------------------------------------------------===//
// Range analysis units
//===----------------------------------------------------------------------===//

TEST(IntervalSet, MergesAdjacentAndOverlapping) {
  checkopt::IntervalSet S;
  S.add(0, 4);
  S.add(8, 16);
  EXPECT_EQ(S.size(), 2u);
  EXPECT_TRUE(S.covers(0, 4));
  EXPECT_FALSE(S.covers(0, 8));
  S.add(4, 8); // Bridges the two: one interval [0, 16).
  EXPECT_EQ(S.size(), 1u);
  EXPECT_TRUE(S.covers(0, 16));
  EXPECT_FALSE(S.covers(0, 17));
  S.add(-8, -4);
  EXPECT_FALSE(S.covers(-8, 0));
  EXPECT_TRUE(S.covers(-8, -5));
}

TEST(ProvenRanges, ScopeRollbackDropsInnerFacts) {
  checkopt::ProvenRanges PR;
  int RootA, BoundsA; // Addresses stand in for Value pointers.
  const Value *R = reinterpret_cast<Value *>(&RootA);
  const Value *B = reinterpret_cast<Value *>(&BoundsA);
  checkopt::ProvenRanges::Scope Outer(PR);
  PR.add(R, B, 0, 8);
  {
    checkopt::ProvenRanges::Scope Inner(PR);
    PR.add(R, B, 8, 16);
    EXPECT_TRUE(PR.covers(R, B, 0, 16));
  }
  EXPECT_TRUE(PR.covers(R, B, 0, 8));
  EXPECT_FALSE(PR.covers(R, B, 8, 16)) << "inner-scope fact must roll back";
}

TEST(RangeAnalysis, DecomposesConstantGEPChains) {
  Module M;
  TypeContext &Ctx = M.ctx();
  auto *FTy = Ctx.funcTy(Ctx.voidTy(), {Ctx.ptrTo(Ctx.i64())});
  Function *F = M.createFunction("probe", FTy);
  BasicBlock *BB = F->createBlock("entry");
  IRBuilder B(M);
  B.setInsertPoint(BB);
  Value *P = F->arg(0);
  Value *G1 = B.gep(Ctx.i64(), P, {M.constI64(2)});   // +16 bytes
  Value *BC = B.bitcast(G1, Ctx.ptrTo(Ctx.i8()));
  Value *G2 = B.gep(Ctx.i8(), BC, {M.constI64(-4)});  // -4 bytes
  B.ret();

  checkopt::PtrOffset PO = checkopt::decomposePointer(G2);
  EXPECT_EQ(PO.Root, P);
  EXPECT_EQ(PO.Offset, 12);
}

//===----------------------------------------------------------------------===//
// Instruction dominance helper
//===----------------------------------------------------------------------===//

TEST(InstDominates, OrdersWithinAndAcrossBlocks) {
  Module M;
  TypeContext &Ctx = M.ctx();
  Function *F = M.createFunction("f", Ctx.funcTy(Ctx.voidTy(), {}));
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Left = F->createBlock("left");
  BasicBlock *Right = F->createBlock("right");
  IRBuilder B(M);
  B.setInsertPoint(Entry);
  Instruction *A = B.makeBounds(M.constI64(0), M.constI64(8));
  Instruction *C = B.makeBounds(M.constI64(0), M.constI64(16));
  B.condBr(M.constI1(true), Left, Right);
  B.setInsertPoint(Left);
  Instruction *InLeft = B.makeBounds(M.constI64(0), M.constI64(24));
  B.ret();
  B.setInsertPoint(Right);
  Instruction *InRight = B.makeBounds(M.constI64(0), M.constI64(32));
  B.ret();

  DomTree DT(*F);
  InstOrder Ord(*F);
  EXPECT_TRUE(instDominates(DT, Ord, A, C));
  EXPECT_FALSE(instDominates(DT, Ord, C, A));
  EXPECT_FALSE(instDominates(DT, Ord, A, A)) << "strict dominance";
  EXPECT_TRUE(instDominates(DT, Ord, A, InLeft));
  EXPECT_FALSE(instDominates(DT, Ord, InLeft, InRight));
}

//===----------------------------------------------------------------------===//
// Precision: dominance + range elimination on hand-built IR
//===----------------------------------------------------------------------===//

/// Builds `probe(i8* p)` with a diamond CFG and a configurable list of
/// checks; returns the function.
struct DiamondFixture {
  Module M;
  Function *F = nullptr;
  BasicBlock *Entry = nullptr, *Left = nullptr, *Right = nullptr,
             *Merge = nullptr;
  Value *P = nullptr;
  Value *Bounds = nullptr;

  DiamondFixture() {
    TypeContext &Ctx = M.ctx();
    F = M.createFunction("probe",
                         Ctx.funcTy(Ctx.voidTy(), {Ctx.ptrTo(Ctx.i8())}));
    Entry = F->createBlock("entry");
    Left = F->createBlock("left");
    Right = F->createBlock("right");
    Merge = F->createBlock("merge");
    P = F->arg(0);
    IRBuilder B(M);
    B.setInsertPoint(Entry);
    Bounds = B.makeBounds(M.constI64(0x1000), M.constI64(0x1040));
  }

  void finish() {
    IRBuilder B(M);
    B.setInsertPoint(Entry);
    B.condBr(M.constI1(true), Left, Right);
    B.setInsertPoint(Left);
    B.br(Merge);
    B.setInsertPoint(Right);
    B.br(Merge);
    B.setInsertPoint(Merge);
    B.ret();
    ASSERT_TRUE(verifyModule(M).empty());
  }
};

TEST(CheckOptRCE, DominatingCheckKillsDescendants) {
  DiamondFixture D;
  IRBuilder B(D.M);
  B.setInsertPoint(D.Entry);
  B.spatialCheck(D.P, D.Bounds, 8, true); // Dominates everything below.
  B.setInsertPoint(D.Left);
  B.spatialCheck(D.P, D.Bounds, 8, true);  // Killed (equal).
  B.setInsertPoint(D.Right);
  B.spatialCheck(D.P, D.Bounds, 4, false); // Killed (weaker).
  B.setInsertPoint(D.Merge);
  B.spatialCheck(D.P, D.Bounds, 16, true); // Stronger: stays.
  D.finish();

  CheckOptStats S;
  optimizeChecks(*D.F, CheckOptConfig{}, S);
  EXPECT_EQ(S.DominatedEliminated, 2u);
  EXPECT_EQ(S.ChecksBefore, 4u);
  EXPECT_EQ(S.ChecksAfter, 2u);
}

TEST(CheckOptRCE, SiblingBranchFactsDoNotLeak) {
  DiamondFixture D;
  IRBuilder B(D.M);
  B.setInsertPoint(D.Left);
  B.spatialCheck(D.P, D.Bounds, 8, true);
  B.setInsertPoint(D.Right);
  B.spatialCheck(D.P, D.Bounds, 8, true); // Sibling, not dominated: stays.
  B.setInsertPoint(D.Merge);
  B.spatialCheck(D.P, D.Bounds, 8, true); // Post-merge, not dominated.
  D.finish();

  CheckOptStats S;
  optimizeChecks(*D.F, CheckOptConfig{}, S);
  EXPECT_EQ(S.ChecksAfter, 3u)
      << "facts from one branch must not kill checks in the sibling or "
         "below the merge";
}

TEST(CheckOptRCE, RangeSubsumptionCoversConstantOffsets) {
  // The paper's monotonically increasing pointer, generalized: a wide
  // dominating check proves narrower interior accesses through different
  // GEPs in bounds.
  DiamondFixture D;
  TypeContext &Ctx = D.M.ctx();
  IRBuilder B(D.M);
  B.setInsertPoint(D.Entry);
  B.spatialCheck(D.P, D.Bounds, 16, true); // Proves [0, 16).
  Value *G1 = B.gep(Ctx.i8(), D.P, {D.M.constI64(8)});
  B.setInsertPoint(D.Left);
  B.spatialCheck(G1, D.Bounds, 8, true);   // [8, 16): range-covered.
  B.setInsertPoint(D.Right);
  Value *G2;
  {
    IRBuilder B2(D.M);
    B2.setInsertPoint(D.Entry);
    G2 = B2.gep(Ctx.i8(), D.P, {D.M.constI64(12)});
  }
  B.spatialCheck(G2, D.Bounds, 8, true);   // [12, 20): tail out, stays.
  D.finish();

  CheckOptStats S;
  optimizeChecks(*D.F, CheckOptConfig{}, S);
  EXPECT_EQ(S.RangeEliminated, 1u);
  EXPECT_EQ(S.ChecksAfter, 2u);

  // With range subsumption disabled the same input keeps all checks.
  DiamondFixture D2;
  IRBuilder C(D2.M);
  C.setInsertPoint(D2.Entry);
  C.spatialCheck(D2.P, D2.Bounds, 16, true);
  Value *G3 = C.gep(Ctx.i8(), D2.P, {D2.M.constI64(8)});
  C.setInsertPoint(D2.Left);
  C.spatialCheck(G3, D2.Bounds, 8, true);
  D2.finish();
  CheckOptConfig NoRange;
  NoRange.RangeSubsumption = false;
  CheckOptStats S2;
  optimizeChecks(*D2.F, NoRange, S2);
  EXPECT_EQ(S2.RangeEliminated, 0u);
  EXPECT_EQ(S2.ChecksAfter, 2u);
}

TEST(CheckOptRCE, AdjacentIntervalsMergeToCoverWideAccess) {
  DiamondFixture D;
  TypeContext &Ctx = D.M.ctx();
  IRBuilder B(D.M);
  B.setInsertPoint(D.Entry);
  Value *G8 = B.gep(Ctx.i8(), D.P, {D.M.constI64(8)});
  B.spatialCheck(D.P, D.Bounds, 8, true);  // [0, 8)
  B.spatialCheck(G8, D.Bounds, 8, true);   // [8, 16)
  B.spatialCheck(D.P, D.Bounds, 16, true); // [0, 16): merged cover, killed.
  D.finish();

  CheckOptStats S;
  optimizeChecks(*D.F, CheckOptConfig{}, S);
  EXPECT_EQ(S.RangeEliminated, 1u);
  EXPECT_EQ(S.ChecksAfter, 2u);
}

//===----------------------------------------------------------------------===//
// Precision: the monotonic-loop exemplar (source level)
//===----------------------------------------------------------------------===//

TEST(CheckOptLoops, MonotonicLoopCollapsesToHull) {
  // The §6.1 example: p[i] with i monotonically increasing over a counted
  // range. Full checking inserts one store check per iteration; the hull
  // replaces them with exactly two pre-loop checks (offsets 0 and 60).
  const char *Src = "int main() {\n"
                    "  int* p = (int*)malloc(64);\n"
                    "  int s = 0;\n"
                    "  for (int i = 0; i < 16; i++) { p[i] = i; s += p[i]; }\n"
                    "  return s;\n"
                    "}";
  BuildResult Prog = planBuild(Src);
  ASSERT_TRUE(Prog.ok()) << Prog.errorText();
  EXPECT_GE(Prog.Pipeline.CheckOpt.LoopChecksHoisted, 1u);
  EXPECT_EQ(countChecks(*Prog.M), 2u) << "one hull check per endpoint";

  RunResult R = runSession(Prog).Combined;
  ASSERT_TRUE(R.ok()) << R.Message;
  EXPECT_EQ(R.ExitCode, 120);
  EXPECT_EQ(R.Counters.Checks, 2u) << "O(trip count) -> O(1) dynamic checks";

  // Unoptimized build for reference: one dynamic check per iteration.
  CheckOptConfig Off;
  Off.Enable = false;
  BuildResult ProgOff = planBuild(Src, {}, Off);
  ASSERT_TRUE(ProgOff.ok());
  RunResult ROff = runSession(ProgOff).Combined;
  EXPECT_EQ(ROff.ExitCode, R.ExitCode);
  EXPECT_GE(ROff.Counters.Checks, 16u);
}

TEST(CheckOptLoops, NestedCountedLoopsCascade) {
  // Rectangular nest over a flat array: inner hulls are constants, so the
  // outer pass hoists them again — whole-nest checks become O(1).
  const char *Src =
      "int g[64];\n"
      "int main() {\n"
      "  for (int r = 0; r < 10; r++)\n"
      "    for (int i = 0; i < 8; i++)\n"
      "      for (int j = 0; j < 8; j++)\n"
      "        g[i * 8 + j] = g[i * 8 + j] + r;\n"
      "  return g[63];\n"
      "}";
  BuildResult Prog = planBuild(Src);
  ASSERT_TRUE(Prog.ok()) << Prog.errorText();
  RunResult R = runSession(Prog).Combined;
  ASSERT_TRUE(R.ok()) << R.Message;
  EXPECT_EQ(R.ExitCode, 45);
  EXPECT_LE(R.Counters.Checks, 8u)
      << "the 640 per-iteration checks must collapse to a handful of hulls";
}

TEST(CheckOptLoops, VariantRootBlocksEnclosingWidening) {
  // The base pointer is recomputed every outer iteration, so the inner
  // hull may only be widened over the inner IV: pairing the current
  // iteration's root with another outer iteration's offset would check
  // an address the program never computes. Only buf[64..71] is ever
  // written; this must stay clean.
  const char *Src = "int buf[72];\n"
                    "int main() {\n"
                    "  for (int r = 0; r < 8; r++) {\n"
                    "    int* p = buf + (64 - r * 8);\n"
                    "    for (int i = 0; i < 8; i++) p[r * 8 + i] = 1;\n"
                    "  }\n"
                    "  return buf[64] + buf[71];\n"
                    "}";
  RunResult R = planRun(Src);
  ASSERT_TRUE(R.ok()) << trapName(R.Trap) << " " << R.Message;
  EXPECT_EQ(R.ExitCode, 2);
}

TEST(CheckOptLoops, ExtremeConstantsDoNotWrapTripCount) {
  // Near-full-range i64 loop constants overflow a naive int64 Lim - Lo;
  // a wrapped trip count of zero would erase the live (and violating)
  // body check as provably dead. The analysis must reject or count this
  // loop exactly — either way the OOB store still traps.
  const char *Src =
      "int a[4];\n"
      "int main() {\n"
      "  for (long i = -9223372036854775807; i < 9223372036854775806;\n"
      "       i = i + 4611686018427387904) { a[7] = 1; }\n"
      "  return 0;\n"
      "}";
  BuildResult Prog = planBuild(Src);
  ASSERT_TRUE(Prog.ok()) << Prog.errorText();
  EXPECT_EQ(runSession(Prog).Combined.Trap, TrapKind::SpatialViolation);
}

TEST(CheckOptLoops, ZeroTripLoopNeverFalselyTraps) {
  // The hull of an empty iteration space is nothing: a constant zero-trip
  // loop over out-of-bounds indices must not introduce a trap.
  const char *Src = "int main() {\n"
                    "  int a[4];\n"
                    "  a[0] = 7;\n"
                    "  for (int i = 100; i < 100; i++) a[i] = 1;\n"
                    "  return a[0];\n"
                    "}";
  RunResult R = planRun(Src);
  ASSERT_TRUE(R.ok()) << trapName(R.Trap) << " " << R.Message;
  EXPECT_EQ(R.ExitCode, 7);
}

TEST(CheckOptLoops, BreakLoopIsNotWidened) {
  // A loop with a second exit edge is not a hoisting candidate: the break
  // at i == 2 keeps the out-of-bounds tail from ever executing, and the
  // optimizer must not check it pre-loop.
  const char *Src = "int main() {\n"
                    "  int a[4];\n"
                    "  int s = 0;\n"
                    "  for (int i = 0; i < 100; i++) {\n"
                    "    if (i == 2) break;\n"
                    "    a[i] = i; s += a[i];\n"
                    "  }\n"
                    "  return s + 40;\n"
                    "}";
  RunResult R = planRun(Src);
  ASSERT_TRUE(R.ok()) << trapName(R.Trap) << " " << R.Message;
  EXPECT_EQ(R.ExitCode, 41);
}

TEST(CheckOptLoops, HoistedOverflowStillTraps) {
  // The classic off-by-one: hoisting moves the trap before the loop, but
  // it must still be a spatial violation in both checking modes.
  const char *Src = "int main() {\n"
                    "  int* p = (int*)malloc(10 * sizeof(int));\n"
                    "  for (int i = 0; i <= 10; i++) p[i] = i;\n"
                    "  return 0;\n"
                    "}";
  for (CheckMode Mode : {CheckMode::Full, CheckMode::StoreOnly}) {
    SoftBoundConfig SB;
    SB.Mode = Mode;
    RunResult R = planRun(Src, SB);
    EXPECT_EQ(R.Trap, TrapKind::SpatialViolation) << trapName(R.Trap);
  }
}

TEST(CheckOptLoops, StoreOnlyStillMissesReadOverflow) {
  // Hoisting must not manufacture load checks that store-only checking
  // deliberately omits (§6.3).
  const char *Src = "int main() {\n"
                    "  int* p = (int*)malloc(10 * sizeof(int));\n"
                    "  int sum = 0;\n"
                    "  for (int i = 0; i <= 10; i++) sum += p[i];\n"
                    "  return sum;\n"
                    "}";
  SoftBoundConfig SB;
  SB.Mode = CheckMode::StoreOnly;
  EXPECT_TRUE(planRun(Src, SB).ok());
  SB.Mode = CheckMode::Full;
  EXPECT_EQ(planRun(Src, SB).Trap, TrapKind::SpatialViolation);
}

//===----------------------------------------------------------------------===//
// Runtime-limit hull hoisting (checkopt(hoist,runtime-limit))
//===----------------------------------------------------------------------===//

TEST(RuntimeHulls, GuardedCheckShapeIsVerified) {
  Module M;
  TypeContext &Ctx = M.ctx();
  Function *F = M.createFunction(
      "probe", Ctx.funcTy(Ctx.voidTy(), {Ctx.ptrTo(Ctx.i8()), Ctx.i64()}));
  BasicBlock *BB = F->createBlock("entry");
  IRBuilder B(M);
  B.setInsertPoint(BB);
  Value *Bounds = B.makeBounds(M.constI64(0x1000), M.constI64(0x1040));
  Value *G = B.icmp(ICmpInst::Pred::SGE, F->arg(1), M.constI64(1));
  SpatialCheckInst *C = B.spatialCheck(F->arg(0), Bounds, 8, true, G);
  B.ret();
  EXPECT_TRUE(C->isGuarded());
  EXPECT_EQ(C->guard(), G);
  EXPECT_TRUE(verifyModule(M).empty());
  EXPECT_NE(printInstruction(*C).find(", if "), std::string::npos)
      << "the printer must show the guarded-check shape";

  // A non-i1 guard violates the verifier rule for the guarded shape.
  Module M2;
  TypeContext &Ctx2 = M2.ctx();
  Function *F2 = M2.createFunction(
      "probe", Ctx2.funcTy(Ctx2.voidTy(), {Ctx2.ptrTo(Ctx2.i8()), Ctx2.i64()}));
  BasicBlock *BB2 = F2->createBlock("entry");
  IRBuilder B2(M2);
  B2.setInsertPoint(BB2);
  Value *Bounds2 = B2.makeBounds(M2.constI64(0x1000), M2.constI64(0x1040));
  B2.spatialCheck(F2->arg(0), Bounds2, 8, true, F2->arg(1));
  B2.ret();
  EXPECT_FALSE(verifyModule(M2).empty());
}

/// The GlobalArrayOverflow shape: a global array swept under a limit only
/// known at run time (main's integer argument — externally reachable, so
/// no argument range can discharge the guard statically).
const char *VarLimitSweepSrc = "long buf[64];\n"
                               "int main(int n) {\n"
                               "  long s = 0;\n"
                               "  for (int i = 0; i < n; i++) {\n"
                               "    buf[i] = 7; s = s + buf[i];\n"
                               "  }\n"
                               "  return (int)(s % 100);\n"
                               "}";

TEST(RuntimeHulls, VariableLimitLoopCollapsesToGuardedHull) {
  BuildResult Prog = planBuild(VarLimitSweepSrc);
  ASSERT_TRUE(Prog.ok()) << Prog.errorText();
  const CheckOptStats &S = Prog.Pipeline.CheckOpt;
  EXPECT_GE(S.LoopsCountedRuntime, 1u);
  EXPECT_EQ(S.RuntimeHullChecks, 2u) << "one guarded hull per endpoint";
  EXPECT_GE(S.RuntimeGuardedFallbacks, 1u);

  RunOptions RO;
  RO.Args = {16};
  RunResult R = runSession(Prog, RO).Combined;
  ASSERT_TRUE(R.ok()) << R.Message;
  EXPECT_EQ(R.ExitCode, 12);
  EXPECT_EQ(R.Counters.Checks, 2u) << "O(n) -> O(1) dynamic checks";
  EXPECT_GE(R.Counters.CheckGuards, 2u);

  // Without the runtime-limit knob the loop keeps per-iteration checks.
  CheckOptConfig NoRT;
  NoRT.RuntimeLimitHulls = false;
  BuildResult Off = planBuild(VarLimitSweepSrc, {}, NoRT);
  ASSERT_TRUE(Off.ok());
  EXPECT_EQ(Off.Pipeline.CheckOpt.RuntimeHullChecks, 0u);
  RunResult ROff = runSession(Off, RO).Combined;
  EXPECT_EQ(ROff.ExitCode, R.ExitCode);
  EXPECT_GE(ROff.Counters.Checks, 16u);
}

TEST(RuntimeHulls, ZeroTripAndNegativeLimitsPerformNoCheck) {
  BuildResult Prog = planBuild(VarLimitSweepSrc);
  ASSERT_TRUE(Prog.ok()) << Prog.errorText();
  for (int64_t N : {int64_t(0), int64_t(-3)}) {
    RunOptions RO;
    RO.Args = {N};
    RunResult R = runSession(Prog, RO).Combined;
    ASSERT_TRUE(R.ok()) << "n=" << N << " " << trapName(R.Trap) << " "
                        << R.Message;
    EXPECT_EQ(R.ExitCode, 0);
    EXPECT_EQ(R.Counters.Checks, 0u)
        << "a zero-trip loop must perform no check at all";
    EXPECT_GE(R.Counters.GuardSkips, 2u) << "hull guards tested and skipped";
  }
}

TEST(RuntimeHulls, OverflowingLimitTrapsViaHull) {
  BuildResult Prog = planBuild(VarLimitSweepSrc);
  ASSERT_TRUE(Prog.ok()) << Prog.errorText();
  RunOptions RO;
  RO.Args = {64};
  EXPECT_TRUE(runSession(Prog, RO).Combined.ok()) << "n == extent is clean";
  RO.Args = {65};
  RunResult R = runSession(Prog, RO).Combined;
  EXPECT_EQ(R.Trap, TrapKind::SpatialViolation) << trapName(R.Trap);
  EXPECT_EQ(R.Counters.Checks, 2u) << "the hull traps before the loop";
}

TEST(RuntimeHulls, DecreasingLoopWithSymbolicLowerLimit) {
  const char *Src = "long buf[64];\n"
                    "int main(int n) {\n"
                    "  long s = 0;\n"
                    "  for (int i = 63; i >= n; i--) { buf[i] = 2; s = s + 1; }\n"
                    "  return (int)s;\n"
                    "}";
  BuildResult Prog = planBuild(Src);
  ASSERT_TRUE(Prog.ok()) << Prog.errorText();
  EXPECT_GE(Prog.Pipeline.CheckOpt.LoopsCountedRuntime, 1u);

  RunOptions RO;
  RO.Args = {60};
  RunResult R = runSession(Prog, RO).Combined;
  ASSERT_TRUE(R.ok()) << R.Message;
  EXPECT_EQ(R.ExitCode, 4);
  EXPECT_EQ(R.Counters.Checks, 2u);

  RO.Args = {64}; // Zero-trip downward loop.
  R = runSession(Prog, RO).Combined;
  ASSERT_TRUE(R.ok()) << R.Message;
  EXPECT_EQ(R.ExitCode, 0);
  EXPECT_EQ(R.Counters.Checks, 0u);

  RO.Args = {-1}; // Underflows buf[-1]: the low hull corner traps.
  EXPECT_EQ(runSession(Prog, RO).Combined.Trap, TrapKind::SpatialViolation);
}

TEST(RuntimeHulls, LimitMutatedInLoopIsRejected) {
  // The exit test reloads lim[0] every iteration and the body stores to
  // it: the limit's SSA value is defined inside the loop, so symbolic
  // recognition must refuse — behaviour stays per-iteration checked and
  // identical to the unoptimized build.
  const char *Src =
      "int a[16]; int lim[1];\n"
      "int main() {\n"
      "  lim[0] = 16;\n"
      "  long s = 0;\n"
      "  for (int i = 0; i < lim[0]; i++) {\n"
      "    a[i] = i; lim[0] = lim[0] - 1; s = s + a[i];\n"
      "  }\n"
      "  return (int)s;\n"
      "}";
  BuildResult Prog = planBuild(Src);
  ASSERT_TRUE(Prog.ok()) << Prog.errorText();
  EXPECT_EQ(Prog.Pipeline.CheckOpt.LoopsCountedRuntime, 0u);
  EXPECT_EQ(Prog.Pipeline.CheckOpt.RuntimeHullChecks, 0u);
  RunResult R = runSession(Prog).Combined;
  ASSERT_TRUE(R.ok()) << R.Message;

  EXPECT_GE(R.Counters.Checks, 8u)
      << "the a[i] accesses keep one dynamic check per iteration";

  CheckOptConfig Off;
  Off.Enable = false;
  RunResult ROff = planRun(Src, {}, Off);
  EXPECT_EQ(R.ExitCode, ROff.ExitCode);
}

TEST(RuntimeHulls, OutOfWindowLimitFallsBackToInLoopChecks) {
  // a[i % 4] linearizes as the identity only while i stays in [0, 4), so
  // the window is n <= 4. Inside it the hull pair covers the loop;
  // outside it the guarded fallback keeps honest per-iteration checking.
  const char *Src = "long a[4];\n"
                    "int main(int n) {\n"
                    "  long s = 0;\n"
                    "  for (int i = 0; i < n; i++) {\n"
                    "    a[i % 4] = i; s = s + a[i % 4];\n"
                    "  }\n"
                    "  return (int)s;\n"
                    "}";
  BuildResult Prog = planBuild(Src);
  ASSERT_TRUE(Prog.ok()) << Prog.errorText();
  EXPECT_EQ(Prog.Pipeline.CheckOpt.RuntimeHullChecks, 2u);

  RunOptions RO;
  RO.Args = {4};
  RunResult RIn = runSession(Prog, RO).Combined;
  ASSERT_TRUE(RIn.ok()) << RIn.Message;
  EXPECT_EQ(RIn.ExitCode, 6);
  EXPECT_EQ(RIn.Counters.Checks, 2u) << "inside the window: hulls only";

  RO.Args = {6};
  RunResult ROut = runSession(Prog, RO).Combined;
  ASSERT_TRUE(ROut.ok()) << ROut.Message;
  EXPECT_EQ(ROut.ExitCode, 15);
  EXPECT_EQ(ROut.Counters.Checks, 6u)
      << "outside the window every fallback check must execute and count";
  EXPECT_GE(ROut.Counters.CheckGuards, 8u);
}

TEST(RuntimeHulls, WrappingEndpointFallsBackAndStillTraps) {
  // Mirrors PR 3's WrappedI64ArithmeticIsNotRangeElided: the hull
  // endpoint (2^57+1)*8*(n-1) escapes the far-from-wrap window for every
  // n > 1, so the guard must route those runs to the unmodified in-loop
  // checks — which still trap on the wild address.
  const char *Src =
      "long a[4];\n"
      "int main(int n) {\n"
      "  long s = 0;\n"
      "  for (long i = 0; i < n; i++) { s = s + a[i * 144115188075855873]; }\n"
      "  return (int)s;\n"
      "}";
  BuildResult Prog = planBuild(Src);
  ASSERT_TRUE(Prog.ok()) << Prog.errorText();

  RunOptions RO;
  RO.Args = {1};
  EXPECT_TRUE(runSession(Prog, RO).Combined.ok())
      << "n=1 stays inside the window";
  RO.Args = {2};
  EXPECT_EQ(runSession(Prog, RO).Combined.Trap, TrapKind::SpatialViolation);

  CheckOptConfig Off;
  Off.Enable = false;
  BuildResult POff = planBuild(Src, {}, Off);
  ASSERT_TRUE(POff.ok());
  EXPECT_EQ(runSession(POff, RO).Combined.Trap, TrapKind::SpatialViolation)
      << "reference: the unoptimized build traps identically";
}

TEST(RuntimeHulls, InterProcArgumentRangesDischargeGuards) {
  // Both call sites pass literal limits, so the propagated range [30, 50]
  // proves the trip and wrap windows: unguarded hulls, no fallback — and
  // the module must record the whole-program contract the proof used.
  const char *Src =
      "long buf[64];\n"
      "int fill(long* p, int n) {\n"
      "  long s = 0;\n"
      "  for (int i = 0; i < n; i++) { p[i] = i; s = s + p[i]; }\n"
      "  return (int)(s % 100);\n"
      "}\n"
      "int main() { return fill(buf, 30) + fill(buf, 50); }";
  BuildResult Prog = planBuild(Src);
  ASSERT_TRUE(Prog.ok()) << Prog.errorText();
  EXPECT_GE(Prog.Pipeline.CheckOpt.RuntimeGuardsDischarged, 1u);
  EXPECT_TRUE(Prog.M->hasInterProcContract());

  RunResult R = runSession(Prog).Combined;
  ASSERT_TRUE(R.ok()) << R.Message;
  EXPECT_EQ(R.ExitCode, 60);
  EXPECT_EQ(R.Counters.Checks, 4u) << "two unguarded hulls per call";
  EXPECT_EQ(R.Counters.CheckGuards, 0u) << "discharged guards emit no test";

  // Entering fill directly would bypass the range proof; refused.
  RunOptions RO;
  RO.Entry = "fill";
  RunResult RBad = runSession(Prog, RO).Combined;
  EXPECT_FALSE(RBad.ok());
}

TEST(RuntimeHulls, SymbolicNestWithDistinctLimitsStaysSound) {
  // Re-hoisting the inner loop's guarded hull out of the outer *symbolic*
  // loop conjoins the outer trip test onto the moved guard. The moved
  // guard chain (sext/icmp on m) must be spliced into the preheader
  // before the conjunction that uses it — a use-before-def there reads 0,
  // silently disabling both the hull and its fallback. Distinct limits
  // keep localCSE from accidentally repairing the order.
  const char *Src = "long a[64];\n"
                    "int main(int n, int m) {\n"
                    "  long s = 0;\n"
                    "  for (int i = 0; i < n; i++)\n"
                    "    for (int j = 0; j < m; j++) { a[j] = j; s = s + 1; }\n"
                    "  return (int)(s % 100);\n"
                    "}";
  BuildResult Prog = planBuild(Src);
  ASSERT_TRUE(Prog.ok()) << Prog.errorText();
  ASSERT_TRUE(verifyModule(*Prog.M).empty())
      << verifyModule(*Prog.M).front();

  RunOptions RO;
  RO.Args = {8, 32};
  RunResult R = runSession(Prog, RO).Combined;
  ASSERT_TRUE(R.ok()) << R.Message;
  EXPECT_EQ(R.ExitCode, 56);
  EXPECT_GE(R.Counters.Checks, 1u) << "the hull must actually execute";
  EXPECT_LE(R.Counters.Checks, 4u);

  RO.Args = {8, 65}; // Inner limit overruns a[64]: must trap, not run clean.
  EXPECT_EQ(runSession(Prog, RO).Combined.Trap, TrapKind::SpatialViolation);

  RO.Args = {0, 65}; // Outer zero-trip: nothing runs, nothing traps.
  RunResult RZ = runSession(Prog, RO).Combined;
  ASSERT_TRUE(RZ.ok()) << RZ.Message;
  EXPECT_EQ(RZ.Counters.Checks, 0u);
}

//===----------------------------------------------------------------------===//
// Two-symbol affine hulls: symbolic init, decreasing, strided shapes
//===----------------------------------------------------------------------===//

/// The `for (i = lo; i < hi; i++)` shape: both endpoints only known at
/// run time (main's arguments — externally reachable, so no argument
/// range can discharge the guard statically).
const char *TwoSymSweepSrc = "long buf[64];\n"
                             "int main(int lo, int hi) {\n"
                             "  long s = 0;\n"
                             "  for (int i = lo; i < hi; i++) {\n"
                             "    buf[i] = 7; s = s + buf[i];\n"
                             "  }\n"
                             "  return (int)(s % 100);\n"
                             "}";

TEST(RuntimeHulls, TwoSymbolSweepCollapsesToGuardedHull) {
  BuildResult Prog = planBuild(TwoSymSweepSrc);
  ASSERT_TRUE(Prog.ok()) << Prog.errorText();
  const CheckOptStats &S = Prog.Pipeline.CheckOpt;
  EXPECT_GE(S.LoopsCountedRuntime, 1u);
  EXPECT_GE(S.LoopsCountedSymInit, 1u);
  EXPECT_EQ(S.RuntimeHullChecks, 2u) << "one guarded hull per endpoint";
  EXPECT_GE(S.RuntimeGuardedFallbacks, 1u);

  RunOptions RO;
  RO.Args = {0, 16};
  RunResult R = runSession(Prog, RO).Combined;
  ASSERT_TRUE(R.ok()) << R.Message;
  EXPECT_EQ(R.ExitCode, 12);
  EXPECT_EQ(R.Counters.Checks, 2u) << "O(hi-lo) -> O(1) dynamic checks";

  RO.Args = {5, 13}; // Interior window.
  R = runSession(Prog, RO).Combined;
  ASSERT_TRUE(R.ok()) << R.Message;
  EXPECT_EQ(R.ExitCode, 56);
  EXPECT_EQ(R.Counters.Checks, 2u);

  // Without the runtime-limit knob the loop keeps per-iteration checks.
  CheckOptConfig NoRT;
  NoRT.RuntimeLimitHulls = false;
  BuildResult Off = planBuild(TwoSymSweepSrc, {}, NoRT);
  ASSERT_TRUE(Off.ok());
  EXPECT_EQ(Off.Pipeline.CheckOpt.RuntimeHullChecks, 0u);
  RO.Args = {0, 16};
  RunResult ROff = runSession(Off, RO).Combined;
  EXPECT_EQ(ROff.ExitCode, 12);
  EXPECT_GE(ROff.Counters.Checks, 16u);
}

TEST(RuntimeHulls, TwoSymbolZeroTripPerformsNoCheck) {
  // lo > hi (and lo == hi): the exact trip test fails, the hull pair is
  // skipped, and the never-executing fallback performs no check either —
  // even though both "endpoints" would be wildly out of bounds.
  BuildResult Prog = planBuild(TwoSymSweepSrc);
  ASSERT_TRUE(Prog.ok()) << Prog.errorText();
  for (auto [Lo, Hi] : {std::pair<int64_t, int64_t>{5, 2},
                        {9, 9},
                        {100, -100}}) {
    RunOptions RO;
    RO.Args = {Lo, Hi};
    RunResult R = runSession(Prog, RO).Combined;
    ASSERT_TRUE(R.ok()) << "lo=" << Lo << " hi=" << Hi << " "
                        << trapName(R.Trap) << " " << R.Message;
    EXPECT_EQ(R.ExitCode, 0);
    EXPECT_EQ(R.Counters.Checks, 0u)
        << "a zero-trip lo..hi loop must perform no check at all";
    EXPECT_GE(R.Counters.GuardSkips, 2u);
  }
}

TEST(RuntimeHulls, TwoSymbolHullTrapsOnEitherEndpoint) {
  BuildResult Prog = planBuild(TwoSymSweepSrc);
  ASSERT_TRUE(Prog.ok()) << Prog.errorText();
  RunOptions RO;
  RO.Args = {0, 64};
  EXPECT_TRUE(runSession(Prog, RO).Combined.ok()) << "hi == extent is clean";
  RO.Args = {0, 65}; // Overflow: the high hull corner traps.
  RunResult RHi = runSession(Prog, RO).Combined;
  EXPECT_EQ(RHi.Trap, TrapKind::SpatialViolation) << trapName(RHi.Trap);
  EXPECT_EQ(RHi.Counters.Checks, 2u) << "the hull traps before the loop";
  RO.Args = {-1, 4}; // Underflow: the low hull corner traps first.
  RunResult RLo = runSession(Prog, RO).Combined;
  EXPECT_EQ(RLo.Trap, TrapKind::SpatialViolation) << trapName(RLo.Trap);
  EXPECT_EQ(RLo.Counters.Checks, 1u);
}

TEST(RuntimeHulls, DecreasingFromSymbolicInitStillTrapsUnderflow) {
  // The decreasing shape `i = n - 1; i >= 0; i--`: symbolic *init*
  // (an SSA subtraction peeled down to the live value), constant limit.
  const char *Src = "long buf[64];\n"
                    "int main(int n) {\n"
                    "  long s = 0;\n"
                    "  for (int i = n - 1; i >= 0; i--) {\n"
                    "    buf[i] = 2; s = s + 1;\n"
                    "  }\n"
                    "  return (int)s;\n"
                    "}";
  BuildResult Prog = planBuild(Src);
  ASSERT_TRUE(Prog.ok()) << Prog.errorText();
  EXPECT_GE(Prog.Pipeline.CheckOpt.LoopsCountedSymInit, 1u);
  EXPECT_EQ(Prog.Pipeline.CheckOpt.RuntimeHullChecks, 2u);

  RunOptions RO;
  RO.Args = {64};
  RunResult R = runSession(Prog, RO).Combined;
  ASSERT_TRUE(R.ok()) << R.Message;
  EXPECT_EQ(R.ExitCode, 64);
  EXPECT_EQ(R.Counters.Checks, 2u) << "O(n) -> O(1) dynamic checks";

  RO.Args = {0}; // i starts at -1: zero-trip downward, no check.
  R = runSession(Prog, RO).Combined;
  ASSERT_TRUE(R.ok()) << R.Message;
  EXPECT_EQ(R.ExitCode, 0);
  EXPECT_EQ(R.Counters.Checks, 0u);

  RO.Args = {65}; // buf[64] overflows: the high hull corner traps.
  EXPECT_EQ(runSession(Prog, RO).Combined.Trap, TrapKind::SpatialViolation);
}

const char *StridedSweepSrc = "long buf[96];\n"
                              "int main(int n) {\n"
                              "  long s = 0;\n"
                              "  for (int i = 0; i < n; i = i + 4) {\n"
                              "    buf[i] = 1; s = s + 1;\n"
                              "  }\n"
                              "  return (int)s;\n"
                              "}";

TEST(RuntimeHulls, StrideDivisibilityGuardGatesTheHull) {
  BuildResult Prog = planBuild(StridedSweepSrc);
  ASSERT_TRUE(Prog.ok()) << Prog.errorText();
  const CheckOptStats &S = Prog.Pipeline.CheckOpt;
  EXPECT_GE(S.LoopsCountedStrided, 1u);
  EXPECT_GE(S.RuntimeDivisGuards, 1u);
  EXPECT_EQ(S.RuntimeHullChecks, 2u);

  RunOptions RO;
  RO.Args = {16}; // Divisible span: hull pair covers the loop.
  RunResult RIn = runSession(Prog, RO).Combined;
  ASSERT_TRUE(RIn.ok()) << RIn.Message;
  EXPECT_EQ(RIn.ExitCode, 4);
  EXPECT_EQ(RIn.Counters.Checks, 2u) << "divisible: hulls only";

  RO.Args = {14}; // 14 % 4 != 0: the divisibility fallback must fire.
  RunResult ROut = runSession(Prog, RO).Combined;
  ASSERT_TRUE(ROut.ok()) << ROut.Message;
  EXPECT_EQ(ROut.ExitCode, 4);
  EXPECT_EQ(ROut.Counters.Checks, 4u)
      << "non-divisible spans keep exact per-iteration checking";

  RO.Args = {100}; // buf[96] overflows; 100 % 4 == 0: the hull traps.
  RunResult RTrap = runSession(Prog, RO).Combined;
  EXPECT_EQ(RTrap.Trap, TrapKind::SpatialViolation) << trapName(RTrap.Trap);
  EXPECT_EQ(RTrap.Counters.Checks, 2u);

  RO.Args = {99}; // Overflow on a non-divisible span: the fallback traps.
  EXPECT_EQ(runSession(Prog, RO).Combined.Trap, TrapKind::SpatialViolation);
}

TEST(RuntimeHulls, MutatedBoundVariablesStaySound) {
  // `hi` is reassigned inside the loop: after mem2reg the limit is a phi
  // defined in the loop, so symbolic recognition must refuse the loop
  // outright. `lo` mutated in the body is different: the IV's init
  // operand is the *pre-loop* SSA value, which a body assignment cannot
  // change, so recognition is sound either way. Both must match the
  // unoptimized build exactly.
  const char *MutHi = "int a[16];\n"
                      "int main(int n) {\n"
                      "  int hi = 12;\n"
                      "  long s = 0;\n"
                      "  for (int i = 0; i < hi; i++) {\n"
                      "    a[i] = i; hi = hi - n; s = s + a[i];\n"
                      "  }\n"
                      "  return (int)s;\n"
                      "}";
  BuildResult Prog = planBuild(MutHi);
  ASSERT_TRUE(Prog.ok()) << Prog.errorText();
  EXPECT_EQ(Prog.Pipeline.CheckOpt.LoopsCountedRuntime, 0u)
      << "an in-loop-mutated limit must not be recognized";
  CheckOptConfig Off;
  Off.Enable = false;
  for (int64_t N : {int64_t(0), int64_t(1), int64_t(3)}) {
    RunOptions RO;
    RO.Args = {N};
    RunResult R = runSession(Prog, RO).Combined;
    RunResult ROff = planRun(MutHi, {}, Off, RO);
    ASSERT_TRUE(R.ok() && ROff.ok()) << "n=" << N;
    EXPECT_EQ(R.ExitCode, ROff.ExitCode) << "n=" << N;
  }

  const char *MutLo = "int a[16];\n"
                      "int main(int n) {\n"
                      "  int lo = n;\n"
                      "  long s = 0;\n"
                      "  for (int i = lo; i < 12; i++) {\n"
                      "    a[i] = i; lo = lo + 100; s = s + a[i];\n"
                      "  }\n"
                      "  return (int)s;\n"
                      "}";
  BuildResult Prog2 = planBuild(MutLo);
  ASSERT_TRUE(Prog2.ok()) << Prog2.errorText();
  for (int64_t N : {int64_t(0), int64_t(5), int64_t(12)}) {
    RunOptions RO;
    RO.Args = {N};
    RunResult R = runSession(Prog2, RO).Combined;
    RunResult ROff = planRun(MutLo, {}, Off, RO);
    ASSERT_TRUE(R.ok() && ROff.ok()) << "n=" << N;
    EXPECT_EQ(R.ExitCode, ROff.ExitCode) << "n=" << N;
  }
}

TEST(RuntimeHulls, TriangularNestWithDerivedSymbolNeverFalselyTraps) {
  // The inner init `j + 1` is *derived from* the outer IV, so the nest is
  // triangular, not rectangular: widening the hull over j while the
  // corners read the live value of j+1 would mix iterations and check
  // a[16*(n-1)+7] = a[71] — an address the program never computes. The
  // hoister must refuse the widening (symbol not invariant in the
  // enclosing loop); max real index at n=5 is 4*16+3 = 67, in bounds.
  const char *Src = "int a[68];\n"
                    "int main(int n) {\n"
                    "  long s = 0;\n"
                    "  for (int j = 0; j < 8; j++)\n"
                    "    for (int i = j + 1; i < n; i++)\n"
                    "      s = s + a[i * 16 + j];\n"
                    "  return (int)s;\n"
                    "}";
  BuildResult Prog = planBuild(Src);
  ASSERT_TRUE(Prog.ok()) << Prog.errorText();
  CheckOptConfig Off;
  Off.Enable = false;
  for (int64_t N : {int64_t(0), int64_t(2), int64_t(5)}) {
    RunOptions RO;
    RO.Args = {N};
    RunResult R = runSession(Prog, RO).Combined;
    RunResult ROff = planRun(Src, {}, Off, RO);
    ASSERT_TRUE(ROff.ok()) << "n=" << N;
    ASSERT_TRUE(R.ok()) << "n=" << N << " " << trapName(R.Trap) << " "
                        << R.Message << " (clean runs are never affected)";
    EXPECT_EQ(R.ExitCode, ROff.ExitCode) << "n=" << N;
  }
  // And the genuinely violating span still traps.
  RunOptions RO;
  RO.Args = {6}; // i reaches 5: a[5*16+7] = a[87] >= 68.
  EXPECT_EQ(runSession(Prog, RO).Combined.Trap, TrapKind::SpatialViolation);
}

TEST(RuntimeHulls, TwoSymbolInterProcRangesDischargeGuards) {
  // Both call sites pass literal windows, so the propagated ranges
  // lo in [2, 10], hi in [30, 50] prove the trip and every region
  // constraint over *both* symbols: unguarded hulls, no fallback — and
  // the module must record the whole-program contract the proof used.
  const char *Src =
      "long buf[64];\n"
      "int fill(long* p, int lo, int hi) {\n"
      "  long s = 0;\n"
      "  for (int i = lo; i < hi; i++) { p[i] = i; s = s + p[i]; }\n"
      "  return (int)(s % 100);\n"
      "}\n"
      "int main() { return fill(buf, 2, 30) + fill(buf, 10, 50); }";
  BuildResult Prog = planBuild(Src);
  ASSERT_TRUE(Prog.ok()) << Prog.errorText();
  EXPECT_GE(Prog.Pipeline.CheckOpt.RuntimeGuardsDischarged, 1u);
  EXPECT_TRUE(Prog.M->hasInterProcContract());

  RunResult R = runSession(Prog).Combined;
  ASSERT_TRUE(R.ok()) << R.Message;
  EXPECT_EQ(R.ExitCode, 114);
  EXPECT_EQ(R.Counters.Checks, 4u) << "two unguarded hulls per call";
  EXPECT_EQ(R.Counters.CheckGuards, 0u) << "discharged guards emit no test";

  // Entering fill directly would bypass the range proof; refused.
  RunOptions RO;
  RO.Entry = "fill";
  RunResult RBad = runSession(Prog, RO).Combined;
  EXPECT_FALSE(RBad.ok());
}

TEST(RuntimeHulls, NestedConstantLoopRehoistsGuardedHulls) {
  // The inner symbolic loop's guarded hulls are invariant in the outer
  // constant loop (guard and address computed from n alone), so the outer
  // pass moves them out: the whole nest runs O(1) hull checks, not O(r).
  const char *Src =
      "long xs[2048];\n"
      "int cfg[1];\n"
      "int smooth(int n) {\n"
      "  for (int r = 0; r < 10; r++)\n"
      "    for (int i = 0; i < n; i++)\n"
      "      xs[i] = (xs[i] * 3 + 2048) / 4;\n"
      "  return (int)xs[0];\n"
      "}\n"
      "int main() {\n"
      "  cfg[0] = 1024;\n"
      "  int n = cfg[0];\n"
      "  for (int i = 0; i < n; i++) xs[i] = i;\n"
      "  return smooth(n) % 100;\n"
      "}";
  BuildResult Prog = planBuild(Src);
  ASSERT_TRUE(Prog.ok()) << Prog.errorText();
  RunResult R = runSession(Prog).Combined;
  ASSERT_TRUE(R.ok()) << R.Message;
  EXPECT_LE(R.Counters.Checks, 4u)
      << "11k per-iteration checks collapse to one hull pair per loop nest";
}

//===----------------------------------------------------------------------===//
// Precision: the struct-field exemplar
//===----------------------------------------------------------------------===//

TEST(CheckOptRCE, StructFieldRepeatsEliminatedAcrossBlocks) {
  // Repeated accesses to the same field through one derived pointer: the
  // seed's block-local pass cannot remove the branch-body check, the
  // dominance walk can. ReoptimizeAfter is off so every elimination below
  // is attributable to the subsystem.
  const char *Src = "struct rec { long pad; long y; };\n"
                    "int main(int n) {\n"
                    "  struct rec* r = (struct rec*)malloc(16);\n"
                    "  long* q = &r->y;\n"
                    "  *q = 5;\n"
                    "  if (n) { *q = 6; }\n"
                    "  return (int)*q;\n"
                    "}";
  SoftBoundConfig SB;
  SB.ReoptimizeAfter = false;
  BuildResult Prog = planBuild(Src, SB);
  ASSERT_TRUE(Prog.ok()) << Prog.errorText();
  EXPECT_GE(Prog.Pipeline.CheckOpt.DominatedEliminated +
                Prog.Pipeline.CheckOpt.RangeEliminated,
            2u)
      << "branch store and final load are both covered by the first check";
  RunOptions RO;
  RO.Args = {1};
  RunResult R = runSession(Prog, RO).Combined;
  ASSERT_TRUE(R.ok()) << R.Message;
  EXPECT_EQ(R.ExitCode, 6);
}

TEST(CheckOptRCE, ShrunkFieldBoundsAreNotConflated) {
  // With sub-object shrinking, neighbouring fields carry different bounds
  // values: a check on one field must never subsume a check on another,
  // or the §2.1 sub-object overflow would slip through.
  const char *Src =
      "struct node { char str[8]; int count; };\n"
      "int main() {\n"
      "  struct node n;\n"
      "  n.count = 1000;\n"
      "  char* ptr = n.str;\n"
      "  strcpy(ptr, \"overflow...\");\n"
      "  return n.count;\n"
      "}";
  RunResult R = planRun(Src);
  EXPECT_EQ(R.Trap, TrapKind::SpatialViolation) << trapName(R.Trap);
}

//===----------------------------------------------------------------------===//
// Soundness: the attack corpus and BugBench under every knob combination
//===----------------------------------------------------------------------===//

CheckOptConfig knobConfig(int Which) {
  CheckOptConfig Cfg;
  Cfg.EliminateDominated = Which == 0 || Which == 3;
  Cfg.RangeSubsumption = Which == 1 || Which == 3;
  Cfg.HoistLoopChecks = Which == 2 || Which == 3;
  return Cfg;
}

class CheckOptAttackSweep : public ::testing::TestWithParam<int> {};

TEST_P(CheckOptAttackSweep, AttacksStillDetected) {
  // Every attack needs at least one out-of-bounds write; no sub-pass (nor
  // their combination) may lose it, in either checking mode.
  const CheckOptConfig Cfg = knobConfig(GetParam());
  for (const auto &A : attackSuite()) {
    for (CheckMode Mode : {CheckMode::Full, CheckMode::StoreOnly}) {
      SoftBoundConfig SB;
      SB.Mode = Mode;
      RunResult R = planRun(A.Source, SB, Cfg);
      EXPECT_TRUE(R.violationDetected())
          << A.Name << " knobs=" << GetParam()
          << " trap=" << trapName(R.Trap);
      EXPECT_FALSE(R.attackLanded()) << A.Name << " knobs=" << GetParam();
    }
  }
}

std::string knobName(const ::testing::TestParamInfo<int> &Info) {
  static const char *const Names[4] = {"dominated", "range", "hoist", "all"};
  return Names[Info.param];
}

INSTANTIATE_TEST_SUITE_P(AllKnobs, CheckOptAttackSweep,
                         ::testing::Range(0, 4), knobName);

TEST(CheckOptSoundness, BugBenchStillDetected) {
  for (const auto &Bug : bugbenchSuite()) {
    RunResult R = planRun(Bug.Source);
    EXPECT_TRUE(R.violationDetected())
        << Bug.Name << " trap=" << trapName(R.Trap);
  }
}

TEST(CheckOptSoundness, BenchmarksKeepExactBehaviour) {
  // Optimized instrumented runs must match the unoptimized instrumented
  // runs bit-for-bit in exit code and output on the whole suite.
  for (const auto &W : benchmarkSuite()) {
    CheckOptConfig Off;
    Off.Enable = false;
    RunResult ROn = planRun(W.Source);
    RunResult ROff = planRun(W.Source, {}, Off);
    ASSERT_TRUE(ROn.ok() && ROff.ok()) << W.Name;
    EXPECT_EQ(ROn.ExitCode, ROff.ExitCode) << W.Name;
    EXPECT_EQ(ROn.Output, ROff.Output) << W.Name;
    EXPECT_LE(ROn.Counters.Checks, ROff.Counters.Checks) << W.Name;
  }
}

} // namespace
