//===- tests/test_frontend_vm.cpp - frontend + VM end-to-end ---------------===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end tests: mini-C source -> IR -> VM execution, uninstrumented.
///
//===----------------------------------------------------------------------===//

#include "frontend/Compiler.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"
#include "vm/VM.h"

#include <gtest/gtest.h>

using namespace softbound;

namespace {

/// Compiles, verifies and runs a program; returns the RunResult.
RunResult runProgram(const std::string &Src,
                     const std::vector<int64_t> &Args = {}) {
  CompileResult CR = compileC(Src);
  EXPECT_TRUE(CR.ok()) << CR.errorText();
  if (!CR.ok())
    return RunResult{};
  auto Errors = verifyModule(*CR.M);
  EXPECT_TRUE(Errors.empty()) << Errors.front() << "\n" << printModule(*CR.M);
  VM Machine(*CR.M, VMConfig{});
  return Machine.run("main", Args);
}

TEST(FrontendVM, ReturnsConstant) {
  RunResult R = runProgram("int main() { return 42; }");
  EXPECT_TRUE(R.ok()) << R.Message;
  EXPECT_EQ(R.ExitCode, 42);
}

TEST(FrontendVM, Arithmetic) {
  RunResult R = runProgram(
      "int main() { int a = 6; int b = 7; return a * b + 10 / 2 - 5; }");
  EXPECT_EQ(R.ExitCode, 42);
}

TEST(FrontendVM, WhileLoopSum) {
  RunResult R = runProgram("int main() {\n"
                           "  int i = 0; int sum = 0;\n"
                           "  while (i < 10) { sum += i; i++; }\n"
                           "  return sum;\n"
                           "}");
  EXPECT_EQ(R.ExitCode, 45);
}

TEST(FrontendVM, ForLoopAndBreakContinue) {
  RunResult R = runProgram("int main() {\n"
                           "  int sum = 0;\n"
                           "  for (int i = 0; i < 100; i++) {\n"
                           "    if (i % 2 == 0) continue;\n"
                           "    if (i > 10) break;\n"
                           "    sum += i;\n"
                           "  }\n"
                           "  return sum;\n" // 1+3+5+7+9 = 25
                           "}");
  EXPECT_EQ(R.ExitCode, 25);
}

TEST(FrontendVM, PointersAndArrays) {
  RunResult R = runProgram("int main() {\n"
                           "  int a[10];\n"
                           "  int* p = a;\n"
                           "  for (int i = 0; i < 10; i++) p[i] = i * i;\n"
                           "  int* q = &a[4];\n"
                           "  return *q + a[3];\n" // 16 + 9
                           "}");
  EXPECT_EQ(R.ExitCode, 25);
}

TEST(FrontendVM, PointerArithmetic) {
  RunResult R = runProgram("int main() {\n"
                           "  int a[8];\n"
                           "  int* p = a;\n"
                           "  int* q = p + 5;\n"
                           "  *q = 7;\n"
                           "  long d = q - p;\n"
                           "  return a[5] * 10 + (int)d;\n" // 75
                           "}");
  EXPECT_EQ(R.ExitCode, 75);
}

TEST(FrontendVM, StructsAndFields) {
  RunResult R = runProgram("struct point { int x; int y; };\n"
                           "int main() {\n"
                           "  struct point p;\n"
                           "  p.x = 11; p.y = 31;\n"
                           "  struct point* q = &p;\n"
                           "  return q->x + q->y;\n"
                           "}");
  EXPECT_EQ(R.ExitCode, 42);
}

TEST(FrontendVM, StructWithInternalArray) {
  RunResult R = runProgram(
      "struct node { char str[8]; int tag; };\n"
      "int main() {\n"
      "  struct node n;\n"
      "  n.tag = 5;\n"
      "  for (int i = 0; i < 7; i++) n.str[i] = 'a' + i;\n"
      "  n.str[7] = 0;\n"
      "  return (int)strlen(n.str) + n.tag;\n" // 7 + 5
      "}");
  EXPECT_EQ(R.ExitCode, 12);
}

TEST(FrontendVM, HeapAllocation) {
  RunResult R = runProgram("int main() {\n"
                           "  int* p = (int*)malloc(10 * sizeof(int));\n"
                           "  for (int i = 0; i < 10; i++) p[i] = i;\n"
                           "  int sum = 0;\n"
                           "  for (int i = 0; i < 10; i++) sum += p[i];\n"
                           "  free((char*)p);\n"
                           "  return sum;\n"
                           "}");
  EXPECT_EQ(R.ExitCode, 45);
}

TEST(FrontendVM, FunctionsAndRecursion) {
  RunResult R = runProgram("int fib(int n) {\n"
                           "  if (n < 2) return n;\n"
                           "  return fib(n - 1) + fib(n - 2);\n"
                           "}\n"
                           "int main() { return fib(10); }");
  EXPECT_EQ(R.ExitCode, 55);
}

TEST(FrontendVM, GlobalsWithInitializers) {
  RunResult R = runProgram("int counter = 40;\n"
                           "int table[4] = {1, 2, 3, 4};\n"
                           "int main() { return counter + table[1]; }");
  EXPECT_EQ(R.ExitCode, 42);
}

TEST(FrontendVM, GlobalPointerInitializer) {
  RunResult R = runProgram("int value = 33;\n"
                           "int* vp = &value;\n"
                           "int main() { return *vp + 9; }");
  EXPECT_EQ(R.ExitCode, 42);
}

TEST(FrontendVM, StringsAndBuiltins) {
  RunResult R = runProgram("int main() {\n"
                           "  char buf[16];\n"
                           "  strcpy(buf, \"hello\");\n"
                           "  print_str(buf);\n"
                           "  return (int)strlen(buf);\n"
                           "}");
  EXPECT_EQ(R.ExitCode, 5);
  EXPECT_EQ(R.Output, "hello");
}

TEST(FrontendVM, FunctionPointers) {
  RunResult R = runProgram("int add(int a, int b) { return a + b; }\n"
                           "int mul(int a, int b) { return a * b; }\n"
                           "int apply(int (*f)(int, int), int a, int b) {\n"
                           "  return f(a, b);\n"
                           "}\n"
                           "int main() {\n"
                           "  int (*op)(int, int);\n"
                           "  op = add;\n"
                           "  int s = apply(op, 2, 3);\n"
                           "  op = mul;\n"
                           "  return s + apply(op, 4, 5);\n" // 5 + 20
                           "}");
  EXPECT_EQ(R.ExitCode, 25);
}

TEST(FrontendVM, LinkedList) {
  RunResult R = runProgram(
      "struct node { int val; struct node* next; };\n"
      "int main() {\n"
      "  struct node* head = NULL;\n"
      "  for (int i = 1; i <= 5; i++) {\n"
      "    struct node* n = (struct node*)malloc(sizeof(struct node));\n"
      "    n->val = i; n->next = head; head = n;\n"
      "  }\n"
      "  int sum = 0;\n"
      "  while (head != NULL) { sum += head->val; head = head->next; }\n"
      "  return sum;\n"
      "}");
  EXPECT_EQ(R.ExitCode, 15);
}

TEST(FrontendVM, SetjmpLongjmp) {
  RunResult R = runProgram("long jb[4];\n"
                           "void thrower(int depth) {\n"
                           "  if (depth == 0) longjmp(jb, 7);\n"
                           "  thrower(depth - 1);\n"
                           "}\n"
                           "int main() {\n"
                           "  int v = setjmp(jb);\n"
                           "  if (v != 0) return v;\n"
                           "  thrower(5);\n"
                           "  return 0;\n"
                           "}");
  EXPECT_EQ(R.ExitCode, 7);
}

TEST(FrontendVM, TernaryAndLogicalOps) {
  RunResult R = runProgram("int main() {\n"
                           "  int a = 5;\n"
                           "  int b = (a > 3 && a < 10) ? 30 : 1;\n"
                           "  int c = (a == 0 || a == 5) ? 12 : 2;\n"
                           "  return b + c;\n"
                           "}");
  EXPECT_EQ(R.ExitCode, 42);
}

TEST(FrontendVM, CharAndSignExtension) {
  RunResult R = runProgram("int main() {\n"
                           "  char c = 200;\n" // Wraps to -56 as signed char.
                           "  int i = c;\n"
                           "  return i == -56;\n"
                           "}");
  EXPECT_EQ(R.ExitCode, 1);
}

TEST(FrontendVM, UnionThroughCast) {
  RunResult R = runProgram("int main() {\n"
                           "  long x = 0x0102030405060708;\n"
                           "  char* p = (char*)&x;\n"
                           "  return p[0] + p[7];\n" // 8 + 1 little endian
                           "}");
  EXPECT_EQ(R.ExitCode, 9);
}

TEST(FrontendVM, MultiDimensionalArray) {
  RunResult R = runProgram("int m[3][4];\n"
                           "int main() {\n"
                           "  for (int i = 0; i < 3; i++)\n"
                           "    for (int j = 0; j < 4; j++)\n"
                           "      m[i][j] = i * 4 + j;\n"
                           "  return m[2][3];\n"
                           "}");
  EXPECT_EQ(R.ExitCode, 11);
}

TEST(FrontendVM, NullDerefSegfaults) {
  RunResult R = runProgram("int main() { int* p = NULL; return *p; }");
  EXPECT_EQ(R.Trap, TrapKind::Segfault);
}

TEST(FrontendVM, DivByZeroTraps) {
  RunResult R = runProgram("int main(int x) { return 10 / x; }", {0});
  EXPECT_EQ(R.Trap, TrapKind::DivByZero);
}

TEST(FrontendVM, ExitBuiltin) {
  RunResult R = runProgram("int main() { exit(3); return 9; }");
  EXPECT_EQ(R.ExitCode, 3);
}

TEST(FrontendVM, SizeofSemantics) {
  RunResult R = runProgram(
      "struct s { char c; long l; int i; };\n"
      "int main() {\n"
      "  return sizeof(char) + sizeof(int) + sizeof(long) + sizeof(int*) +\n"
      "         sizeof(struct s);\n" // 1 + 4 + 8 + 8 + 24
      "}");
  EXPECT_EQ(R.ExitCode, 45);
}

TEST(FrontendVM, StackSmashIsDetectedByVM) {
  // Without SoftBound, overflowing into the return-address word corrupts
  // control data; the VM notices at function return.
  // buf is the first local, so it sits just below the saved-FP word and
  // the return-address word: 24 bytes of overflow covers both.
  RunResult R = runProgram("int smash() {\n"
                           "  char buf[8];\n"
                           "  for (int i = 0; i < 24; i++) buf[i] = 0x41;\n"
                           "  return 0;\n"
                           "}\n"
                           "int main() { return smash(); }");
  EXPECT_TRUE(R.Trap == TrapKind::CorruptedReturn ||
              R.Trap == TrapKind::CorruptedFrame)
      << trapName(R.Trap);
}

} // namespace
