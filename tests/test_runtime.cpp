//===- tests/test_runtime.cpp - metadata facility unit tests ---------------===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit and property tests of the §5.1 metadata facilities: basic
/// lookup/update semantics, range clearing and copying, hash growth and
/// collision accounting, and an equivalence sweep using the shadow space
/// as oracle for the hash table.
///
//===----------------------------------------------------------------------===//

#include "runtime/HashTableMetadata.h"
#include "runtime/ShadowSpaceMetadata.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

using namespace softbound;

namespace {

template <typename T> class FacilityTest : public ::testing::Test {
public:
  T Facility;
};

using Facilities = ::testing::Types<HashTableMetadata, ShadowSpaceMetadata>;
TYPED_TEST_SUITE(FacilityTest, Facilities);

TYPED_TEST(FacilityTest, MissingLookupYieldsNullBounds) {
  uint64_t Base = 99, Bound = 99;
  this->Facility.lookup(0x2000'0000, Base, Bound);
  EXPECT_EQ(Base, 0u);
  EXPECT_EQ(Bound, 0u);
}

TYPED_TEST(FacilityTest, UpdateThenLookup) {
  this->Facility.update(0x2000'0008, 0x1000, 0x1040);
  uint64_t Base = 0, Bound = 0;
  this->Facility.lookup(0x2000'0008, Base, Bound);
  EXPECT_EQ(Base, 0x1000u);
  EXPECT_EQ(Bound, 0x1040u);
  // A different slot is unaffected.
  this->Facility.lookup(0x2000'0010, Base, Bound);
  EXPECT_EQ(Base, 0u);
}

TYPED_TEST(FacilityTest, OverwriteReplacesBounds) {
  this->Facility.update(0x3000'0000, 1, 2);
  this->Facility.update(0x3000'0000, 10, 20);
  uint64_t Base, Bound;
  this->Facility.lookup(0x3000'0000, Base, Bound);
  EXPECT_EQ(Base, 10u);
  EXPECT_EQ(Bound, 20u);
}

TYPED_TEST(FacilityTest, ClearRangeDropsCoveredSlots) {
  for (uint64_t A = 0x4000'0000; A < 0x4000'0040; A += 8)
    this->Facility.update(A, A, A + 8);
  uint64_t Cleared = this->Facility.clearRange(0x4000'0010, 0x18);
  EXPECT_EQ(Cleared, 3u);
  uint64_t Base, Bound;
  this->Facility.lookup(0x4000'0008, Base, Bound);
  EXPECT_NE(Base, 0u); // Below the range: intact.
  this->Facility.lookup(0x4000'0010, Base, Bound);
  EXPECT_EQ(Base, 0u); // In range: gone.
  this->Facility.lookup(0x4000'0028, Base, Bound);
  EXPECT_NE(Base, 0u); // Above the range: intact.
}

TYPED_TEST(FacilityTest, CopyRangeMirrorsMetadata) {
  this->Facility.update(0x5000'0000, 7, 70);
  this->Facility.update(0x5000'0010, 9, 90);
  // Destination has a stale entry that the copy must overwrite/clear.
  this->Facility.update(0x6000'0008, 5, 50);
  this->Facility.copyRange(0x6000'0000, 0x5000'0000, 0x18);
  uint64_t Base, Bound;
  this->Facility.lookup(0x6000'0000, Base, Bound);
  EXPECT_EQ(Base, 7u);
  this->Facility.lookup(0x6000'0008, Base, Bound);
  EXPECT_EQ(Base, 0u) << "stale destination metadata must not survive";
  this->Facility.lookup(0x6000'0010, Base, Bound);
  EXPECT_EQ(Base, 9u);
  EXPECT_EQ(Bound, 90u);
}

TYPED_TEST(FacilityTest, ResetDropsEverything) {
  this->Facility.update(0x7000'0000, 1, 2);
  this->Facility.reset();
  uint64_t Base, Bound;
  this->Facility.lookup(0x7000'0000, Base, Bound);
  EXPECT_EQ(Base, 0u);
  EXPECT_EQ(this->Facility.stats().Lookups, 1u);
}

TYPED_TEST(FacilityTest, CostModelMatchesPaper) {
  // §5.1: hash ≈ 9 instructions per op, shadow ≈ 5.
  if (std::string(this->Facility.name()) == "hashtable") {
    EXPECT_EQ(this->Facility.lookupCost(), 9u);
  } else {
    EXPECT_EQ(this->Facility.lookupCost(), 5u);
  }
}

TEST(HashTableMetadata, GrowsPastInitialCapacity) {
  HashTableMetadata M(4); // 16 entries.
  for (uint64_t I = 0; I < 1000; ++I)
    M.update(0x1000 + I * 8, I + 1, I + 100);
  for (uint64_t I = 0; I < 1000; ++I) {
    uint64_t Base, Bound;
    M.lookup(0x1000 + I * 8, Base, Bound);
    ASSERT_EQ(Base, I + 1);
    ASSERT_EQ(Bound, I + 100);
  }
}

TEST(HashTableMetadata, TombstonesDoNotBreakProbing) {
  HashTableMetadata M(4);
  // Insert colliding-ish entries, delete some, reinsert, verify all.
  for (uint64_t I = 0; I < 64; ++I)
    M.update(0x9000 + I * 8, I + 1, I + 2);
  M.clearRange(0x9000, 64 * 8 / 2);
  for (uint64_t I = 0; I < 32; ++I)
    M.update(0x9000 + I * 8, 100 + I, 200 + I);
  for (uint64_t I = 0; I < 64; ++I) {
    uint64_t Base, Bound;
    M.lookup(0x9000 + I * 8, Base, Bound);
    if (I < 32) {
      EXPECT_EQ(Base, 100 + I);
    } else {
      EXPECT_EQ(Base, I + 1);
    }
  }
}

TEST(FacilityEquivalence, HashMatchesShadowOracle) {
  // Randomized op sequence: both facilities must agree on every lookup.
  HashTableMetadata Hash(6);
  ShadowSpaceMetadata Shadow;
  RNG R(20260611);
  for (int Op = 0; Op < 20000; ++Op) {
    uint64_t Addr = 0x2000'0000 + (R.below(1 << 12) << 3);
    switch (R.below(4)) {
    case 0:
    case 1: {
      uint64_t Base = R.below(1 << 20) + 1;
      uint64_t Bound = Base + R.below(256);
      Hash.update(Addr, Base, Bound);
      Shadow.update(Addr, Base, Bound);
      break;
    }
    case 2: {
      uint64_t HB, HE, SB, SE;
      Hash.lookup(Addr, HB, HE);
      Shadow.lookup(Addr, SB, SE);
      ASSERT_EQ(HB, SB) << "divergence at op " << Op;
      ASSERT_EQ(HE, SE);
      break;
    }
    default: {
      uint64_t Len = (R.below(8) + 1) * 8;
      Hash.clearRange(Addr, Len);
      Shadow.clearRange(Addr, Len);
      break;
    }
    }
  }
}

} // namespace
