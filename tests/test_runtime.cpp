//===- tests/test_runtime.cpp - metadata facility unit tests ---------------===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit and property tests of the §5.1 metadata facilities: basic
/// lookup/update semantics, range clearing and copying, hash growth and
/// collision accounting, and an equivalence sweep using the shadow space
/// as oracle for the hash table.
///
//===----------------------------------------------------------------------===//

#include "runtime/HashTableMetadata.h"
#include "runtime/ShadowSpaceMetadata.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

#include <vector>

using namespace softbound;

namespace {

template <typename T> class FacilityTest : public ::testing::Test {
public:
  T Facility;
};

using Facilities = ::testing::Types<HashTableMetadata, ShadowSpaceMetadata>;
TYPED_TEST_SUITE(FacilityTest, Facilities);

TYPED_TEST(FacilityTest, MissingLookupYieldsNullBounds) {
  Bounds B = this->Facility.lookup(0x2000'0000);
  EXPECT_EQ(B.Base, 0u);
  EXPECT_EQ(B.Bound, 0u);
  EXPECT_TRUE(B.null());
}

TYPED_TEST(FacilityTest, UpdateThenLookup) {
  this->Facility.update(0x2000'0008, 0x1000, 0x1040);
  Bounds B = this->Facility.lookup(0x2000'0008);
  EXPECT_EQ(B.Base, 0x1000u);
  EXPECT_EQ(B.Bound, 0x1040u);
  // A different slot is unaffected.
  EXPECT_EQ(this->Facility.lookup(0x2000'0010).Base, 0u);
}

TYPED_TEST(FacilityTest, OverwriteReplacesBounds) {
  this->Facility.update(0x3000'0000, 1, 2);
  this->Facility.update(0x3000'0000, 10, 20);
  Bounds B = this->Facility.lookup(0x3000'0000);
  EXPECT_EQ(B.Base, 10u);
  EXPECT_EQ(B.Bound, 20u);
}

TYPED_TEST(FacilityTest, ClearRangeDropsCoveredSlots) {
  for (uint64_t A = 0x4000'0000; A < 0x4000'0040; A += 8)
    this->Facility.update(A, A, A + 8);
  uint64_t Cleared = this->Facility.clearRange(0x4000'0010, 0x18);
  EXPECT_EQ(Cleared, 3u);
  EXPECT_NE(this->Facility.lookup(0x4000'0008).Base, 0u)
      << "below the range: intact";
  EXPECT_EQ(this->Facility.lookup(0x4000'0010).Base, 0u)
      << "in range: gone";
  EXPECT_NE(this->Facility.lookup(0x4000'0028).Base, 0u)
      << "above the range: intact";
}

TYPED_TEST(FacilityTest, CopyRangeMirrorsMetadata) {
  this->Facility.update(0x5000'0000, 7, 70);
  this->Facility.update(0x5000'0010, 9, 90);
  // Destination has a stale entry that the copy must overwrite/clear.
  this->Facility.update(0x6000'0008, 5, 50);
  this->Facility.copyRange(0x6000'0000, 0x5000'0000, 0x18);
  EXPECT_EQ(this->Facility.lookup(0x6000'0000).Base, 7u);
  EXPECT_EQ(this->Facility.lookup(0x6000'0008).Base, 0u)
      << "stale destination metadata must not survive";
  Bounds B = this->Facility.lookup(0x6000'0010);
  EXPECT_EQ(B.Base, 9u);
  EXPECT_EQ(B.Bound, 90u);
}

TYPED_TEST(FacilityTest, ZeroLengthRangesAreNoOps) {
  this->Facility.update(0xC000'0000, 7, 70);
  EXPECT_EQ(this->Facility.clearRange(0xC000'0000, 0), 0u);
  EXPECT_EQ(this->Facility.copyRange(0xC000'1000, 0xC000'0000, 0), 0u);
  EXPECT_EQ(this->Facility.lookup(0xC000'0000).Base, 7u)
      << "zero-length clear must not touch the slot";
  EXPECT_EQ(this->Facility.lookup(0xC000'1000).Base, 0u)
      << "zero-length copy must not materialize metadata";
}

TYPED_TEST(FacilityTest, UnalignedClearCoversEveryTouchedSlot) {
  // [Addr, Addr+Size) is interpreted over 8-byte pointer slots: a range
  // starting mid-slot still invalidates that slot (a freed object's first
  // pointer slot must never survive because the free was byte-offset).
  this->Facility.update(0xB000'0000, 5, 50);
  this->Facility.update(0xB000'0008, 6, 60);
  EXPECT_EQ(this->Facility.clearRange(0xB000'0004, 8), 2u)
      << "range [4, 12) touches both slot 0 and slot 8";
  EXPECT_EQ(this->Facility.lookup(0xB000'0000).Base, 0u);
  EXPECT_EQ(this->Facility.lookup(0xB000'0008).Base, 0u);
}

TYPED_TEST(FacilityTest, UnalignedSizeCopyCoversPartialSlot) {
  this->Facility.update(0xD000'0000, 8, 80);
  EXPECT_EQ(this->Facility.copyRange(0xD000'1000, 0xD000'0000, 5), 1u)
      << "a 5-byte copy still moves the metadata of the slot it touches";
  Bounds B = this->Facility.lookup(0xD000'1000);
  EXPECT_EQ(B.Base, 8u);
  EXPECT_EQ(B.Bound, 80u);
}

TYPED_TEST(FacilityTest, OverlappingCopyDstBelowSrcIsMoveLike) {
  // Copies walk the source ascending, so a destination below the source
  // reads each slot before anything overwrites it — memmove semantics.
  this->Facility.update(0xA000'0008, 2, 20);
  this->Facility.update(0xA000'0010, 3, 30);
  EXPECT_EQ(this->Facility.copyRange(0xA000'0000, 0xA000'0008, 0x10), 2u);
  EXPECT_EQ(this->Facility.lookup(0xA000'0000).Base, 2u);
  EXPECT_EQ(this->Facility.lookup(0xA000'0008).Base, 3u);
}

TYPED_TEST(FacilityTest, OverlappingCopyDstAboveSrcPropagatesForward) {
  // The same ascending walk means a destination *inside* the source range
  // re-reads already-copied slots, smearing the first slot forward —
  // exactly like a naive forward memcpy. Both implementations must agree
  // on this (documented) behaviour rather than silently diverge.
  this->Facility.update(0x9000'0000, 1, 10);
  this->Facility.update(0x9000'0008, 2, 20);
  this->Facility.update(0x9000'0010, 3, 30);
  EXPECT_EQ(this->Facility.copyRange(0x9000'0008, 0x9000'0000, 0x18), 3u);
  for (uint64_t A = 0x9000'0000; A <= 0x9000'0018; A += 8) {
    Bounds B = this->Facility.lookup(A);
    EXPECT_EQ(B.Base, 1u) << "slot " << std::hex << A;
    EXPECT_EQ(B.Bound, 10u);
  }
}

TYPED_TEST(FacilityTest, ResetDropsEverything) {
  this->Facility.update(0x7000'0000, 1, 2);
  this->Facility.reset();
  EXPECT_EQ(this->Facility.lookup(0x7000'0000).Base, 0u);
  EXPECT_EQ(this->Facility.stats().Lookups, 1u);
}

TYPED_TEST(FacilityTest, BatchLookupMatchesScalar) {
  // lookupN over a mix of present, missing, and shard-crossing slots
  // must agree element-wise with scalar lookup.
  for (uint64_t I = 0; I < 16; I += 2)
    this->Facility.update(0x2000'0000 + I * 8, I + 1, I + 100);
  std::vector<uint64_t> Addrs;
  for (uint64_t I = 0; I < 16; ++I)
    Addrs.push_back(0x2000'0000 + I * 8);
  Addrs.push_back(0x2000'0000 + (1ULL << 20)); // Different stripe.
  std::vector<Bounds> Out(Addrs.size());
  this->Facility.lookupN(Addrs.data(), Out.data(), Addrs.size());
  for (size_t I = 0; I < Addrs.size(); ++I) {
    Bounds Want = this->Facility.lookup(Addrs[I]);
    EXPECT_EQ(Out[I].Base, Want.Base) << "index " << I;
    EXPECT_EQ(Out[I].Bound, Want.Bound) << "index " << I;
  }
}

TYPED_TEST(FacilityTest, BatchUpdateMatchesScalar) {
  std::vector<uint64_t> Addrs;
  std::vector<Bounds> Vals;
  for (uint64_t I = 0; I < 24; ++I) {
    Addrs.push_back(0x8000'0000 + I * (1ULL << 17)); // Spans stripes.
    Vals.push_back(Bounds{I + 1, I + 50});
  }
  this->Facility.updateN(Addrs.data(), Vals.data(), Addrs.size());
  for (size_t I = 0; I < Addrs.size(); ++I) {
    Bounds B = this->Facility.lookup(Addrs[I]);
    EXPECT_EQ(B.Base, Vals[I].Base) << "index " << I;
    EXPECT_EQ(B.Bound, Vals[I].Bound) << "index " << I;
  }
}

TYPED_TEST(FacilityTest, CostModelMatchesPaper) {
  // §5.1: hash ≈ 9 instructions per op, shadow ≈ 5.
  if (std::string(this->Facility.name()) == "hashtable") {
    EXPECT_EQ(this->Facility.lookupCost(), 9u);
  } else {
    EXPECT_EQ(this->Facility.lookupCost(), 5u);
  }
}

TYPED_TEST(FacilityTest, DefaultConfigurationIsSingleThread) {
  EXPECT_EQ(this->Facility.shards(), 1u);
  EXPECT_EQ(this->Facility.concurrency(), ConcurrencyModel::SingleThread);
  this->Facility.update(0x2000'0000, 1, 2);
  this->Facility.lookup(0x2000'0000);
  MetadataStats S = this->Facility.stats();
  EXPECT_EQ(S.LockAcquires, 0u) << "SingleThread mode must stay lock-free";
  EXPECT_EQ(S.contentionSimCost(), 0u);
}

TEST(HashTableMetadata, GrowsPastInitialCapacity) {
  HashTableMetadata M(4); // 16 entries.
  for (uint64_t I = 0; I < 1000; ++I)
    M.update(0x1000 + I * 8, I + 1, I + 100);
  for (uint64_t I = 0; I < 1000; ++I) {
    Bounds B = M.lookup(0x1000 + I * 8);
    ASSERT_EQ(B.Base, I + 1);
    ASSERT_EQ(B.Bound, I + 100);
  }
}

TEST(HashTableMetadata, TombstonesDoNotBreakProbing) {
  HashTableMetadata M(4);
  // Insert colliding-ish entries, delete some, reinsert, verify all.
  for (uint64_t I = 0; I < 64; ++I)
    M.update(0x9000 + I * 8, I + 1, I + 2);
  M.clearRange(0x9000, 64 * 8 / 2);
  for (uint64_t I = 0; I < 32; ++I)
    M.update(0x9000 + I * 8, 100 + I, 200 + I);
  for (uint64_t I = 0; I < 64; ++I) {
    Bounds B = M.lookup(0x9000 + I * 8);
    if (I < 32) {
      EXPECT_EQ(B.Base, 100 + I);
    } else {
      EXPECT_EQ(B.Base, I + 1);
    }
  }
}

TEST(FacilityEquivalence, HashMatchesShadowOracle) {
  // Randomized op sequence: both facilities must agree on every lookup.
  HashTableMetadata Hash(6);
  ShadowSpaceMetadata Shadow;
  RNG R(20260611);
  for (int Op = 0; Op < 20000; ++Op) {
    uint64_t Addr = 0x2000'0000 + (R.below(1 << 12) << 3);
    switch (R.below(4)) {
    case 0:
    case 1: {
      uint64_t Base = R.below(1 << 20) + 1;
      uint64_t Bound = Base + R.below(256);
      Hash.update(Addr, Base, Bound);
      Shadow.update(Addr, Base, Bound);
      break;
    }
    case 2: {
      Bounds H = Hash.lookup(Addr);
      Bounds S = Shadow.lookup(Addr);
      ASSERT_EQ(H.Base, S.Base) << "divergence at op " << Op;
      ASSERT_EQ(H.Bound, S.Bound);
      break;
    }
    default: {
      uint64_t Len = (R.below(8) + 1) * 8;
      Hash.clearRange(Addr, Len);
      Shadow.clearRange(Addr, Len);
      break;
    }
    }
  }
}

} // namespace
