//===- tests/test_bugbench.cpp - Table 4 detection matrix ------------------===//
//
// Part of the SoftBound reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Table 4: detection of the BugBench overflow kernels by the Valgrind-
/// style red-zone baseline, the Mudflap-style object table, and SoftBound
/// in store-only and full modes. The expected matrix is the paper's:
///
///   benchmark  valgrind  mudflap  store  full
///   go         no        no       no     yes
///   compress   no        yes      yes    yes
///   polymorph  yes       yes      yes    yes
///   gzip       yes       yes      yes    yes
///
//===----------------------------------------------------------------------===//

#include "baselines/MemcheckLite.h"
#include "baselines/ObjectTableChecker.h"
#include "driver/Pipeline.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace softbound;

namespace {

bool detectedByMemcheck(const std::string &Src) {
  MemcheckLite Checker;
  RunOptions R;
  R.Checker = &Checker;
  R.RedzonePad = MemcheckLite::RecommendedRedzone;
  return runSession(planFromBuildOptions(Src, BuildOptions{}), R)
      .Combined.violationDetected();
}

bool detectedByObjTable(const std::string &Src) {
  // Mudflap-style deployments pad tracked objects with guard zones so
  // off-by-one overflows into a neighbour are distinguishable.
  ObjectTableChecker Checker;
  RunOptions R;
  R.Checker = &Checker;
  R.RedzonePad = 16;
  R.GlobalPad = 16;
  return runSession(planFromBuildOptions(Src, BuildOptions{}), R)
      .Combined.violationDetected();
}

bool detectedBySoftBound(const std::string &Src, CheckMode Mode) {
  BuildOptions B;
  B.Instrument = true;
  B.SB.Mode = Mode;
  return runSession(planFromBuildOptions(Src, B)).Combined.violationDetected();
}

struct Expect {
  const char *Name;
  bool Valgrind, Mudflap, StoreOnly, Full;
};

// The paper's Table 4 rows.
const Expect Table4[] = {
    {"go", false, false, false, true},
    {"compress", false, true, true, true},
    {"polymorph", true, true, true, true},
    {"gzip", true, true, true, true},
};

class BugBenchMatrix : public ::testing::TestWithParam<int> {};

TEST_P(BugBenchMatrix, MatchesPaperTable4) {
  const BugCase &Bug = bugbenchSuite()[GetParam()];
  const Expect &E = Table4[GetParam()];
  ASSERT_EQ(Bug.Name, E.Name);

  EXPECT_EQ(detectedByMemcheck(Bug.Source), E.Valgrind)
      << Bug.Name << " (valgrind-style)";
  EXPECT_EQ(detectedByObjTable(Bug.Source), E.Mudflap)
      << Bug.Name << " (mudflap-style)";
  EXPECT_EQ(detectedBySoftBound(Bug.Source, CheckMode::StoreOnly),
            E.StoreOnly)
      << Bug.Name << " (store-only)";
  EXPECT_EQ(detectedBySoftBound(Bug.Source, CheckMode::Full), E.Full)
      << Bug.Name << " (full)";
}

INSTANTIATE_TEST_SUITE_P(AllBugs, BugBenchMatrix, ::testing::Range(0, 4),
                         [](const ::testing::TestParamInfo<int> &Info) {
                           return bugbenchSuite()[Info.param].Name;
                         });

//===----------------------------------------------------------------------===//
// §6.4 server case studies
//===----------------------------------------------------------------------===//

TEST(Servers, HttpTransformsWithNoFalsePositives) {
  RunOptions Plain;
  Plain.Args = {0};
  RunResult Base =
      runSession(planFromBuildOptions(httpServerSource(), BuildOptions{}),
                 Plain)
          .Combined;
  ASSERT_TRUE(Base.ok()) << Base.Message;
  ASSERT_EQ(Base.ExitCode, 0);

  for (CheckMode Mode : {CheckMode::Full, CheckMode::StoreOnly}) {
    BuildOptions B;
    B.Instrument = true;
    B.SB.Mode = Mode;
    RunResult R =
        runSession(planFromBuildOptions(httpServerSource(), B), Plain)
            .Combined;
    EXPECT_TRUE(R.ok()) << R.Message;
    EXPECT_EQ(R.ExitCode, 0);
    EXPECT_EQ(R.Output, Base.Output);
  }
}

TEST(Servers, HttpVulnerableModeCaught) {
  RunOptions Vuln;
  Vuln.Args = {1};
  // Without protection: the long query overruns query[32] into path[],
  // silently corrupting the response (no crash).
  RunResult Base =
      runSession(planFromBuildOptions(httpServerSource(), BuildOptions{}),
                 Vuln)
          .Combined;
  EXPECT_TRUE(Base.ok());

  BuildOptions B;
  B.Instrument = true;
  B.SB.Mode = CheckMode::StoreOnly; // Production mode is enough (§6.3).
  RunResult R =
      runSession(planFromBuildOptions(httpServerSource(), B), Vuln).Combined;
  EXPECT_EQ(R.Trap, TrapKind::SpatialViolation) << trapName(R.Trap);
}

TEST(Servers, FtpTransformsWithNoFalsePositives) {
  RunResult Base =
      runSession(planFromBuildOptions(ftpServerSource(), BuildOptions{}))
          .Combined;
  ASSERT_TRUE(Base.ok()) << Base.Message;

  for (CheckMode Mode : {CheckMode::Full, CheckMode::StoreOnly}) {
    BuildOptions B;
    B.Instrument = true;
    B.SB.Mode = Mode;
    RunResult R =
        runSession(planFromBuildOptions(ftpServerSource(), B)).Combined;
    EXPECT_TRUE(R.ok()) << R.Message;
    EXPECT_EQ(R.ExitCode, Base.ExitCode);
    EXPECT_EQ(R.Output, Base.Output);
  }
}

} // namespace
